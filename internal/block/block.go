// Package block is the data plane's buffer arena: a size-classed,
// sync.Pool-backed allocator for the byte buffers that carry every 128 KB
// block, frame, and record through the stream, tunnel, and Nephele layers.
//
// The paper's decision model adapts on the observed per-window application
// rate (Section III-A), so allocator and GC churn on the per-block hot path
// directly distorts the signal Algorithm 1 reacts to. The arena removes the
// per-block make([]byte, ...) cost: steady-state stream traffic recycles a
// small working set of pooled buffers instead of allocating fresh ones.
//
// # Lifecycle contract
//
// A Buf has exactly one owner at any time. Get transfers ownership to the
// caller; Release transfers it back to the arena. Ownership moves across
// goroutines and package boundaries (e.g. a stream.Writer hands a full
// block Buf to its compression pipeline, which releases it after the frame
// reaches the wire); whoever holds a Buf last releases it exactly once.
// After Release the buffer's backing array may be handed to any other
// goroutine — a released Buf must not be read, written, or released again.
// Double releases panic when detected (best effort, see Release).
//
// The contents of a freshly acquired Buf are NOT zeroed; callers that need
// zeroed memory must clear it themselves.
//
// docs/performance.md documents the per-package ownership rules; the
// blocktest subpackage provides a leak tracker that test suites use to
// assert every acquired Buf is released.
package block

import "sync"

// classSizes are the arena's size classes in ascending order. They are
// tailored to the data plane's block geometry rather than powers of two:
//
//   - 4 KB: record headers, small records, miscellaneous scratch
//   - 16 KB / 64 KB: typical records and copy buffers
//   - 160 KB: the hot class — a 128 KB block (stream.DefaultBlockSize)
//     plus frame header and worst-case codec expansion (see
//     stream.maxFrameSize)
//   - 512 KB .. 8 MB: oversized application blocks and records
//   - 20 MB: a MaxBlockSize (16 MB) frame with worst-case expansion
//
// Requests larger than the top class fall back to exact, unpooled
// allocations that are dropped on Release.
var classSizes = [...]int{
	4 << 10,
	16 << 10,
	64 << 10,
	160 << 10,
	512 << 10,
	2 << 20,
	8 << 20,
	20 << 20,
}

const numClasses = len(classSizes)

// unpooled marks a Buf whose backing array came straight from the heap
// because the request exceeded the largest class.
const unpooled = -1

// Buf is one pooled buffer. B is the caller-visible slice: callers append
// to it, re-slice it, and hand it across goroutines freely while they own
// the Buf. If an append outgrows the backing array, the grown array simply
// travels with the Buf back into its pool (classes are minimum capacities).
type Buf struct {
	// B is the buffer contents. Get returns len(B) == 0; GetLen returns
	// len(B) == n. Capacity is at least the requested size.
	B []byte

	class int // size-class index, or unpooled

	// mu guards released. A mutex (not an atomic) keeps the double-release
	// panic reliable in the common same-goroutine case and makes the
	// tracking bookkeeping atomic with the state change.
	mu       sync.Mutex
	released bool

	// seq distinguishes incarnations of a recycled Buf for the leak
	// tracker (pointer identity alone is ambiguous across pool cycles).
	seq uint64
}

// pools holds one sync.Pool per size class. Pool entries are *Buf with
// cap(B) >= the class size.
var pools [numClasses]sync.Pool

func init() {
	for i := range pools {
		size := classSizes[i]
		class := i
		pools[i].New = func() any {
			return &Buf{B: make([]byte, 0, size), class: class, released: true}
		}
	}
}

// classFor returns the smallest class index whose size covers n, or
// unpooled if n exceeds the largest class.
func classFor(n int) int {
	for i, size := range classSizes {
		if n <= size {
			return i
		}
	}
	return unpooled
}

// Get returns a Buf with len(B) == 0 and cap(B) >= n. The caller owns the
// Buf until it calls Release.
func Get(n int) *Buf {
	if n < 0 {
		panic("block: negative buffer size")
	}
	class := classFor(n)
	var b *Buf
	if class == unpooled {
		b = &Buf{B: make([]byte, 0, n), class: unpooled}
	} else {
		b = pools[class].Get().(*Buf)
		b.B = b.B[:0]
	}
	b.released = false
	arenaGets.Add(1)
	trackGet(b)
	return b
}

// GetLen returns a Buf with len(B) == n and cap(B) >= n. The contents are
// not zeroed.
func GetLen(n int) *Buf {
	b := Get(n)
	b.B = b.B[:n]
	return b
}

// Release returns the Buf to the arena. The caller must not touch the Buf
// (or any slice of its backing array) afterwards. Releasing the same Buf
// twice panics; the check is best-effort — if the Buf was already recycled
// to another owner, the second release corrupts that owner instead, which
// the blocktest leak tracker catches in tests.
func (b *Buf) Release() {
	b.mu.Lock()
	if b.released {
		b.mu.Unlock()
		panic("block: Buf released twice")
	}
	b.released = true
	b.mu.Unlock()
	arenaReleases.Add(1)
	trackRelease(b)
	if b.class == unpooled {
		arenaDiscards.Add(1)
		return // dropped; the GC reclaims oversized one-offs
	}
	if cap(b.B) < classSizes[b.class] {
		// The owner swapped in a smaller backing array (e.g. kept a
		// decompressor's output slice). Pooling it would poison the class
		// invariant cap(B) >= class size, so drop this Buf instead.
		arenaDiscards.Add(1)
		return
	}
	b.B = b.B[:0]
	pools[b.class].Put(b)
}

// Cap returns the capacity of the backing array.
func (b *Buf) Cap() int { return cap(b.B) }
