package block

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Leak tracking (test mode). When enabled — via blocktest.Track(t) in test
// suites — every Get records the acquiring call stack and every Release
// removes it, so a test can assert that the set of live buffers it created
// drained to empty. Tracking is refcounted so overlapping tests compose,
// and disabled entirely in production: the fast path is one atomic load.

// trackingRefs counts active trackers; tracking is on while > 0.
var trackingRefs atomic.Int32

var trackState struct {
	sync.Mutex
	seq  uint64          // next Buf incarnation id
	live map[*Buf]string // live tracked bufs -> acquiring stack
}

// Snapshot identifies the live tracked buffers at one instant. Buffers
// present in a snapshot are ignored by LeakedSince, so concurrent
// long-lived owners do not produce false positives.
type Snapshot map[*Buf]uint64

// StartTracking enables leak tracking and returns a snapshot of the
// currently live tracked buffers plus a stop function that decrements the
// tracking refcount. Intended to be used through blocktest.Track.
func StartTracking() (Snapshot, func()) {
	trackState.Lock()
	if trackState.live == nil {
		trackState.live = make(map[*Buf]string)
	}
	snap := make(Snapshot, len(trackState.live))
	for b := range trackState.live {
		snap[b] = b.seq
	}
	trackState.Unlock()
	trackingRefs.Add(1)
	var once sync.Once
	return snap, func() { once.Do(func() { trackingRefs.Add(-1) }) }
}

// LeakedSince returns the acquiring stacks of tracked buffers that are
// still live and were acquired after the snapshot was taken.
func LeakedSince(snap Snapshot) []string {
	trackState.Lock()
	defer trackState.Unlock()
	var out []string
	for b, stack := range trackState.live {
		if seq, ok := snap[b]; ok && seq == b.seq {
			continue // already live when the snapshot was taken
		}
		out = append(out, stack)
	}
	sort.Strings(out)
	return out
}

func trackGet(b *Buf) {
	if trackingRefs.Load() == 0 {
		return
	}
	stack := callerStack()
	trackState.Lock()
	trackState.seq++
	b.seq = trackState.seq
	if trackState.live == nil {
		trackState.live = make(map[*Buf]string)
	}
	trackState.live[b] = stack
	trackState.Unlock()
}

func trackRelease(b *Buf) {
	if trackingRefs.Load() == 0 {
		// Still remove stale entries so buffers acquired while tracking
		// was on do not linger after it is switched off.
		trackState.Lock()
		if trackState.live != nil {
			delete(trackState.live, b)
		}
		trackState.Unlock()
		return
	}
	trackState.Lock()
	delete(trackState.live, b)
	trackState.Unlock()
}

// callerStack formats the Get call site chain (skipping the block package
// frames) for leak reports.
func callerStack() string {
	var pcs [12]uintptr
	n := runtime.Callers(4, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	var out string
	for {
		f, more := frames.Next()
		out += fmt.Sprintf("  %s\n    %s:%d\n", f.Function, f.File, f.Line)
		if !more {
			break
		}
	}
	return out
}
