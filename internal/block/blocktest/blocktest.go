// Package blocktest wires the block arena's leak tracker into tests: a
// suite calls Track(t) as its first line and the test fails if any buffer
// acquired during the test is still unreleased when the test (including
// its cleanups) finishes. It mirrors faultio/leakcheck for goroutines.
package blocktest

import (
	"strings"
	"testing"
	"time"

	"adaptio/internal/block"
)

// Track enables buffer leak tracking for the duration of the test.
// Register it before creating the resources under test: t.Cleanup runs
// last-in-first-out, so the leak check executes after the test's own
// cleanups have torn everything down. Shutdown is asynchronous in the
// pipelined paths, so the check polls with a grace window before failing.
func Track(t testing.TB) {
	t.Helper()
	snap, stop := block.StartTracking()
	t.Cleanup(func() {
		defer stop()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = block.LeakedSince(snap)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("blocktest: %d buffer(s) leaked; acquired at:\n%s",
			len(leaked), strings.Join(leaked, "\n"))
	})
}
