package block

import (
	"sync"
	"testing"
)

func TestGetSizes(t *testing.T) {
	cases := []int{0, 1, 100, 4 << 10, (4 << 10) + 1, 128 << 10, 160 << 10, 1 << 20, 20 << 20, (20 << 20) + 1}
	for _, n := range cases {
		b := GetLen(n)
		if len(b.B) != n {
			t.Errorf("GetLen(%d): len = %d", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Errorf("GetLen(%d): cap = %d < n", n, cap(b.B))
		}
		b.Release()
	}
}

func TestClassFor(t *testing.T) {
	if c := classFor(1); c != 0 {
		t.Errorf("classFor(1) = %d, want 0", c)
	}
	for i, size := range classSizes {
		if c := classFor(size); c != i {
			t.Errorf("classFor(%d) = %d, want %d", size, c, i)
		}
	}
	if c := classFor(classSizes[numClasses-1] + 1); c != unpooled {
		t.Errorf("classFor(max+1) = %d, want unpooled", c)
	}
}

func TestOversizedUnpooled(t *testing.T) {
	n := classSizes[numClasses-1] + 1
	b := Get(n)
	if b.class != unpooled {
		t.Fatalf("class = %d, want unpooled", b.class)
	}
	if cap(b.B) != n {
		t.Fatalf("oversized cap = %d, want exact %d", cap(b.B), n)
	}
	b.Release()
}

func TestRecycleKeepsCapacity(t *testing.T) {
	b := Get(100 << 10)
	// Outgrow the class: the grown array must travel back into the pool.
	b.B = append(b.B[:0], make([]byte, 300<<10)...)
	grownCap := cap(b.B)
	b.Release()
	if grownCap < 300<<10 {
		t.Fatalf("grown cap = %d", grownCap)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	b := Get(64)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(-1) did not panic")
		}
	}()
	Get(-1)
}

// TestCrossGoroutineHandoff moves ownership producer -> consumer through a
// channel, the pattern the stream pipeline and Nephele in-memory channels
// use. Run under -race this doubles as a happens-before check on the
// arena's recycling.
func TestCrossGoroutineHandoff(t *testing.T) {
	const bufs = 1000
	ch := make(chan *Buf, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < bufs; i++ {
			b := GetLen(1024)
			b.B[0] = byte(i)
			ch <- b
		}
		close(ch)
	}()
	got := 0
	for b := range ch {
		_ = b.B[0]
		b.Release()
		got++
	}
	wg.Wait()
	if got != bufs {
		t.Fatalf("received %d bufs, want %d", got, bufs)
	}
}

func TestLeakTracking(t *testing.T) {
	snap, stop := StartTracking()
	defer stop()

	held := Get(512)
	if leaked := LeakedSince(snap); len(leaked) != 1 {
		t.Fatalf("LeakedSince = %d entries, want 1", len(leaked))
	}
	held.Release()
	if leaked := LeakedSince(snap); len(leaked) != 0 {
		t.Fatalf("LeakedSince after release = %d entries, want 0", len(leaked))
	}
}

// TestLeakTrackingSnapshotExcludesPriorBufs: buffers alive before the
// snapshot never count as leaks of that snapshot.
func TestLeakTrackingSnapshotExcludesPriorBufs(t *testing.T) {
	_, stopOuter := StartTracking()
	defer stopOuter()
	prior := Get(512)
	defer prior.Release()

	snap, stop := StartTracking()
	defer stop()
	if leaked := LeakedSince(snap); len(leaked) != 0 {
		t.Fatalf("prior buf reported as leak: %v", leaked)
	}
}

func BenchmarkGetRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(128 << 10)
		buf.Release()
	}
}
