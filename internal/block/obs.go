package block

import (
	"sync/atomic"

	"adaptio/internal/obs"
)

// Arena accounting. Plain package-level atomics rather than obs metrics so
// Get/Release pay one uncontended atomic add each whether or not metrics are
// published; PublishMetrics exposes them as derived (snapshot-time) values.
var (
	arenaGets     atomic.Int64
	arenaReleases atomic.Int64
	arenaDiscards atomic.Int64
)

// Stats reports the arena's lifetime counters: buffers handed out, buffers
// returned, and returns that were dropped instead of pooled (oversized
// one-offs and shrunk backing arrays). gets - releases is the number of
// buffers currently owned by callers.
func Stats() (gets, releases, discards int64) {
	return arenaGets.Load(), arenaReleases.Load(), arenaDiscards.Load()
}

// PublishMetrics registers the arena's counters under scope.arena:
// gets, puts, discards, and the derived in_use gauge (gets - puts).
// Call it once per process with the registry's root scope, e.g.
// block.PublishMetrics(reg.Scope("block")) yields "block.arena.in_use".
func PublishMetrics(scope *obs.Scope) {
	a := scope.Scope("arena")
	a.IntFunc("gets", arenaGets.Load)
	a.IntFunc("puts", arenaReleases.Load)
	a.IntFunc("discards", arenaDiscards.Load)
	a.IntFunc("in_use", func() int64 {
		return arenaGets.Load() - arenaReleases.Load()
	})
}
