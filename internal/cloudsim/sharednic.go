package cloudsim

import (
	"errors"
	"fmt"
	"math"

	"adaptio/internal/xrand"
)

// This file is the shared-NIC fleet model: N concurrent streams of one host
// contending for a single simulated NIC, the setting the coordinator
// (internal/coord) exists for. RunTransfer models one stream against
// *background* traffic it cannot see; RunFleet models the streams against
// *each other*, which is what turns N solo deciders into mutual noise
// sources — stream A's probe shifts everyone's share, B..N observe a rate
// change that has nothing to do with their own level, and the fleet flaps.
//
// The NIC divides wire capacity by weighted max-min fairness (water-fill),
// the behaviour of a host-side WFQ qdisc: each unsatisfied stream receives
// capacity proportional to its weight, streams demanding less than their
// share keep the smaller demand, and the surplus is redistributed. The
// redistribution is the coupling that makes contention contagious: whether
// stream i is NIC-bound depends on every other stream's demand.

// WindowScheme is a Scheme that additionally receives the completed
// window's byte totals at both layers, letting it estimate the achieved
// compression ratio. coord.Stream satisfies it; plain Schemes (the solo
// core.Decider) receive Observe only.
type WindowScheme interface {
	Scheme
	// ObserveWindowStats reports the window's application data rate in
	// bytes/second plus the window's application- and wire-layer byte
	// counts, and returns the level for the next window.
	ObserveWindowStats(rate float64, appBytes, wireBytes int64) int
}

// FleetStream describes one of the host's concurrent streams.
type FleetStream struct {
	// Kind schedules the stream's data compressibility by its own
	// application-byte offset.
	Kind KindSchedule
	// Scheme picks the stream's compression levels. If it also satisfies
	// WindowScheme it receives byte totals; otherwise just the rate.
	Scheme Scheme
	// Weight is the stream's share weight in the NIC's weighted fair
	// queueing; zero means 1.
	Weight float64
	// CPUFactor scales the stream's compression throughput relative to
	// the profile ladder (crowded cores compress slower); zero means 1.
	CPUFactor float64
	// Tenant is an owner label carried into the per-stream results.
	Tenant string
	// DemandMBps, if non-nil, is the stream's offered application load at
	// simulated time t in MB/s: the stream sends at most this rate even
	// when CPU and NIC would allow more (request-driven traffic instead
	// of a saturating bulk sender). Negative values count as 0. Must be a
	// pure function of t. Nil means a saturating sender.
	DemandMBps func(tSec float64) float64
}

// FleetConfig describes a shared-NIC fleet run.
type FleetConfig struct {
	// NICMBps is the host NIC's wire-layer capacity shared by all
	// streams, in MB/s. Zero means the Native platform's 1 Gbit/s
	// achievable rate.
	NICMBps float64
	// Windows is the number of decision windows to simulate.
	Windows int
	// WindowSeconds is the decision interval t; zero means the paper's 2 s.
	WindowSeconds float64
	// Profiles is the codec profile ladder (index = level).
	Profiles []CodecProfile
	// Streams is the fleet; all share the NIC for the whole run.
	Streams []FleetStream
	// Seed drives all stochastic components; equal seeds give
	// bit-identical runs.
	Seed uint64
	// NICSigma is the per-window multiplicative lognormal noise on NIC
	// capacity (co-located hosts' traffic). Zero means a quiet NIC.
	NICSigma float64
	// CPUSigma is the per-stream per-window noise on compression
	// throughput (scheduling jitter). Zero means none.
	CPUSigma float64
	// FlapWindow is the harness's flap horizon: a level switch reversing
	// the stream's previous switch direction within this many windows
	// counts as a flap. Zero means 8. The harness counts switches and
	// flaps itself, from the levels the schemes actually return — a
	// scheme cannot game the flap metric by under-reporting.
	FlapWindow int
	// Env, if non-nil, applies time-varying environment perturbations:
	// capacity curves, jitter, packet loss (see FleetEnv).
	Env *FleetEnv
	// Trace, if non-nil, receives one aggregate sample per window.
	Trace func(FleetWindowSample)
}

// FleetWindowSample is one decision window of a fleet run, aggregated.
type FleetWindowSample struct {
	Window   int
	Time     float64 // simulated seconds at the start of the window
	AppMBps  float64 // fleet-wide application-layer throughput
	WireMBps float64 // fleet-wide wire-layer throughput (≤ NIC capacity)
	// AppBytes and WireBytes are the window's exact fleet-wide byte
	// totals (the integers the per-stream results accumulate), which is
	// what the scenario engine's deterministic artifacts record.
	AppBytes  int64
	WireBytes int64
}

// FleetStreamResult is one stream's totals.
type FleetStreamResult struct {
	AppBytes   int64
	WireBytes  int64
	Switches   int
	Flaps      int
	FinalLevel int
	Tenant     string
}

// FleetResult summarizes a fleet run.
type FleetResult struct {
	// AppBytes is the fleet's aggregate goodput in application bytes —
	// the quantity the coordinator exists to maximize.
	AppBytes  int64
	WireBytes int64
	// Switches and Flaps are harness-counted across all streams.
	Switches  int
	Flaps     int
	Windows   int
	PerStream []FleetStreamResult
}

// GoodputMBps is the fleet's aggregate application-layer throughput.
func (r FleetResult) GoodputMBps(windowSeconds float64) float64 {
	if r.Windows == 0 || windowSeconds <= 0 {
		return 0
	}
	return float64(r.AppBytes) / 1e6 / (float64(r.Windows) * windowSeconds)
}

// fleetStreamState is the simulator's per-stream mutable state.
type fleetStreamState struct {
	cfg       FleetStream
	rng       *xrand.RNG
	level     int
	sentApp   int64 // drives the kind schedule
	appBytes  int64
	wireBytes int64

	switches, flaps int
	lastSwitchWin   int
	lastSwitchDir   int
}

// RunFleet simulates cfg.Windows decision windows of the whole fleet
// sharing one NIC and returns per-stream and aggregate totals.
//
// Per window, for each stream: the CPU-bound application rate is the
// pipeline rate of RunTransfer's sender stage (compression plus TCP-stack
// cost, scaled by the stream's CPUFactor and jitter); its wire demand is
// that rate times the level's ratio. The NIC then water-fills wire capacity
// across demands by weight, and each stream's achieved application rate is
// its wire allocation divided by its ratio (capped by its CPU-bound rate).
// Schemes observe the achieved rate — never the demand — exactly as a real
// sender only observes what the contended link let through.
func RunFleet(cfg FleetConfig) (FleetResult, error) {
	var res FleetResult
	if len(cfg.Streams) == 0 {
		return res, errors.New("cloudsim: fleet needs at least one stream")
	}
	if cfg.Windows <= 0 {
		return res, errors.New("cloudsim: fleet needs Windows > 0")
	}
	if err := ValidateLadder(cfg.Profiles); err != nil {
		return res, err
	}
	if cfg.WindowSeconds <= 0 {
		cfg.WindowSeconds = 2
	}
	if cfg.NICMBps == 0 {
		cfg.NICMBps = netTable[Native].appMBps
	}
	if cfg.NICMBps < 0 {
		return res, fmt.Errorf("cloudsim: negative NIC capacity %v", cfg.NICMBps)
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = 8
	}

	rng := xrand.New(cfg.Seed ^ 0xF1EE7)
	nicRNG := rng.Fork()
	states := make([]*fleetStreamState, len(cfg.Streams))
	for i, sc := range cfg.Streams {
		if sc.Scheme == nil {
			return res, fmt.Errorf("cloudsim: stream %d has nil scheme", i)
		}
		if sc.Kind == nil {
			return res, fmt.Errorf("cloudsim: stream %d has nil kind schedule", i)
		}
		lvl := sc.Scheme.Level()
		if lvl < 0 || lvl >= len(cfg.Profiles) {
			return res, fmt.Errorf("cloudsim: stream %d starts at invalid level %d", i, lvl)
		}
		if sc.Weight == 0 {
			sc.Weight = 1
		}
		if sc.Weight < 0 {
			return res, fmt.Errorf("cloudsim: stream %d has negative weight", i)
		}
		if sc.CPUFactor == 0 {
			sc.CPUFactor = 1
		}
		if sc.CPUFactor < 0 {
			return res, fmt.Errorf("cloudsim: stream %d has negative CPU factor", i)
		}
		states[i] = &fleetStreamState{cfg: sc, rng: rng.Fork(), level: lvl, lastSwitchWin: -1}
	}

	n := len(states)
	demand := make([]float64, n) // wire MB/s each stream could push
	weight := make([]float64, n)
	ratio := make([]float64, n)
	cpuApp := make([]float64, n) // CPU-bound application MB/s
	alloc := make([]float64, n)

	for w := 0; w < cfg.Windows; w++ {
		t := float64(w) * cfg.WindowSeconds

		// Resolve the window's environment: capacity multiplier, jitter
		// sigma and the loss model's parameters.
		capMul, sigma, loss, rtt := 1.0, cfg.NICSigma, 0.0, 0.0
		if cfg.Env != nil {
			if cfg.Env.Capacity != nil {
				capMul = cfg.Env.Capacity(t)
				if capMul < 0 || math.IsNaN(capMul) {
					capMul = 0
				}
			}
			if cfg.Env.ExtraSigma != nil {
				if es := cfg.Env.ExtraSigma(t); es > 0 {
					sigma += es
				}
			}
			if cfg.Env.Loss != nil {
				loss = cfg.Env.Loss(t)
			}
			if cfg.Env.RTTSeconds != nil {
				rtt = cfg.Env.RTTSeconds(t)
			}
		}
		nicCap := cfg.NICMBps * capMul * nicRNG.NoiseFactor(sigma)

		for i, s := range states {
			kind := s.cfg.Kind(s.sentApp)
			p := cfg.Profiles[s.level]
			r := p.Ratio[kind]
			// Sender pipeline rate: compression plus TCP-stack cost on
			// the stream's core share (RunTransfer's cpu stage).
			comp := p.CompMBps[kind] * s.cfg.CPUFactor * s.rng.NoiseFactor(cfg.CPUSigma)
			app := 1 / (1/comp + r/wireCPUMBps)
			// Offered-load cap: a request-driven stream sends no faster
			// than its demand curve, however fast its pipeline is.
			if s.cfg.DemandMBps != nil {
				if dm := s.cfg.DemandMBps(t); !(dm > 0) {
					app = 0
				} else if dm < app {
					app = dm
				}
			}
			// Loss cap: on a lossy link each stream's wire rate is bounded
			// by the Mathis throughput of its effective RTT, which includes
			// the level's per-block compression latency.
			if loss > 0 {
				if capWire := lossWireCapMBps(loss, rtt, comp); app*r > capWire {
					app = capWire / r
				}
			}
			cpuApp[i] = app
			ratio[i] = r
			demand[i] = app * r
			weight[i] = s.cfg.Weight
		}

		waterFill(nicCap, demand, weight, alloc)

		var aggApp, aggWire float64
		var winAppBytes, winWireBytes int64
		for i, s := range states {
			achievedWire := alloc[i]
			achievedApp := achievedWire / ratio[i]
			if achievedApp > cpuApp[i] {
				achievedApp = cpuApp[i]
			}
			appBytes := int64(achievedApp * 1e6 * cfg.WindowSeconds)
			wireBytes := int64(float64(appBytes) * ratio[i])
			s.sentApp += appBytes
			s.appBytes += appBytes
			s.wireBytes += wireBytes
			winAppBytes += appBytes
			winWireBytes += wireBytes
			aggApp += achievedApp
			aggWire += achievedWire

			rate := achievedApp * 1e6 // bytes/second, as the stream layer measures
			var next int
			if ws, ok := s.cfg.Scheme.(WindowScheme); ok {
				next = ws.ObserveWindowStats(rate, appBytes, wireBytes)
			} else {
				next = s.cfg.Scheme.Observe(rate)
			}
			if next < 0 || next >= len(cfg.Profiles) {
				return res, fmt.Errorf("cloudsim: stream %d chose invalid level %d", i, next)
			}
			if next != s.level {
				dir := 1
				if next < s.level {
					dir = -1
				}
				s.switches++
				if s.lastSwitchDir != 0 && dir == -s.lastSwitchDir && w-s.lastSwitchWin <= cfg.FlapWindow {
					s.flaps++
				}
				s.lastSwitchWin = w
				s.lastSwitchDir = dir
				s.level = next
			}
		}
		if cfg.Trace != nil {
			cfg.Trace(FleetWindowSample{
				Window: w, Time: t,
				AppMBps: aggApp, WireMBps: aggWire,
				AppBytes: winAppBytes, WireBytes: winWireBytes,
			})
		}
	}

	res.Windows = cfg.Windows
	res.PerStream = make([]FleetStreamResult, n)
	for i, s := range states {
		res.PerStream[i] = FleetStreamResult{
			AppBytes:   s.appBytes,
			WireBytes:  s.wireBytes,
			Switches:   s.switches,
			Flaps:      s.flaps,
			FinalLevel: s.level,
			Tenant:     s.cfg.Tenant,
		}
		res.AppBytes += s.appBytes
		res.WireBytes += s.wireBytes
		res.Switches += s.switches
		res.Flaps += s.flaps
	}
	return res, nil
}

// waterFill allocates cap across demands by weighted max-min fairness and
// writes the result into alloc. Streams demanding less than their weighted
// share keep their demand; the surplus is redistributed among the rest
// until every stream is either satisfied or pinned at its share.
func waterFill(cap float64, demand, weight, alloc []float64) {
	n := len(demand)
	satisfied := make([]bool, n)
	for i := range alloc {
		alloc[i] = 0
	}
	for {
		var sumW float64
		for i := 0; i < n; i++ {
			if !satisfied[i] && demand[i] > 0 {
				sumW += weight[i]
			}
		}
		if sumW == 0 {
			return
		}
		remaining := cap
		for i := 0; i < n; i++ {
			if satisfied[i] {
				remaining -= alloc[i]
			}
		}
		if remaining <= 0 {
			return
		}
		progress := false
		for i := 0; i < n; i++ {
			if satisfied[i] || demand[i] <= 0 {
				continue
			}
			if share := remaining * weight[i] / sumW; demand[i] <= share {
				alloc[i] = demand[i]
				satisfied[i] = true
				progress = true
			}
		}
		if progress {
			continue
		}
		// Everyone left demands more than their share: pin them there.
		for i := 0; i < n; i++ {
			if !satisfied[i] && demand[i] > 0 {
				alloc[i] = remaining * weight[i] / sumW
			}
		}
		return
	}
}
