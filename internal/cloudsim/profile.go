package cloudsim

import (
	"errors"
	"fmt"

	"adaptio/internal/corpus"
)

// CodecProfile characterizes one compression level for the transfer engine:
// single-core compression/decompression speed and the achieved compression
// ratio, each per corpus kind. Speeds are in MB/s of application
// (uncompressed) bytes; Ratio is compressedBytes/originalBytes.
type CodecProfile struct {
	Name       string
	CompMBps   map[corpus.Kind]float64
	DecompMBps map[corpus.Kind]float64
	Ratio      map[corpus.Kind]float64
}

// Validate checks the profile covers every corpus kind with sane values.
func (p CodecProfile) Validate() error {
	for _, k := range corpus.Kinds() {
		c, ok := p.CompMBps[k]
		if !ok || c <= 0 {
			return fmt.Errorf("cloudsim: profile %q: bad compression speed for %v", p.Name, k)
		}
		d, ok := p.DecompMBps[k]
		if !ok || d <= 0 {
			return fmt.Errorf("cloudsim: profile %q: bad decompression speed for %v", p.Name, k)
		}
		r, ok := p.Ratio[k]
		if !ok || r <= 0 || r > 1.5 {
			return fmt.Errorf("cloudsim: profile %q: bad ratio %v for %v", p.Name, r, k)
		}
	}
	return nil
}

// ReferenceProfiles returns the four-level profile ladder calibrated against
// Table II of the paper (QuickLZ level 1 and 3, LZMA, on two Xeon E5430-era
// cores). Every speed below is derived by inverting the paper's completion
// times through the pipeline model of RunTransfer; see EXPERIMENTS.md for
// the arithmetic. Use experiments.Calibrate to obtain the equivalent profile
// measured live from this repository's own codecs instead.
func ReferenceProfiles() []CodecProfile {
	return []CodecProfile{
		{
			Name: "NO",
			// Identity "compression" is a memcpy.
			CompMBps:   map[corpus.Kind]float64{corpus.High: 5000, corpus.Moderate: 5000, corpus.Low: 5000},
			DecompMBps: map[corpus.Kind]float64{corpus.High: 5000, corpus.Moderate: 5000, corpus.Low: 5000},
			Ratio:      map[corpus.Kind]float64{corpus.High: 1, corpus.Moderate: 1, corpus.Low: 1},
		},
		{
			Name:       "LIGHT", // QuickLZ, best compression speed
			CompMBps:   map[corpus.Kind]float64{corpus.High: 250, corpus.Moderate: 104, corpus.Low: 132},
			DecompMBps: map[corpus.Kind]float64{corpus.High: 700, corpus.Moderate: 420, corpus.Low: 520},
			Ratio:      map[corpus.Kind]float64{corpus.High: 0.15, corpus.Moderate: 0.45, corpus.Low: 0.95},
		},
		{
			Name:       "MEDIUM", // QuickLZ favouring compressed size
			CompMBps:   map[corpus.Kind]float64{corpus.High: 163, corpus.Moderate: 71, corpus.Low: 64},
			DecompMBps: map[corpus.Kind]float64{corpus.High: 700, corpus.Moderate: 420, corpus.Low: 520},
			Ratio:      map[corpus.Kind]float64{corpus.High: 0.12, corpus.Moderate: 0.40, corpus.Low: 0.92},
		},
		{
			Name:       "HEAVY", // LZMA
			CompMBps:   map[corpus.Kind]float64{corpus.High: 26.7, corpus.Moderate: 8.9, corpus.Low: 5.6},
			DecompMBps: map[corpus.Kind]float64{corpus.High: 180, corpus.Moderate: 70, corpus.Low: 48},
			Ratio:      map[corpus.Kind]float64{corpus.High: 0.10, corpus.Moderate: 0.33, corpus.Low: 0.90},
		},
	}
}

// ValidateLadder checks a profile ladder: non-empty, level 0 is the identity
// profile (ratio 1 everywhere), all profiles valid.
func ValidateLadder(profiles []CodecProfile) error {
	if len(profiles) == 0 {
		return errors.New("cloudsim: empty profile ladder")
	}
	for i, p := range profiles {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("level %d: %w", i, err)
		}
	}
	for _, k := range corpus.Kinds() {
		if profiles[0].Ratio[k] != 1 {
			return fmt.Errorf("cloudsim: level 0 must be identity, ratio[%v]=%v", k, profiles[0].Ratio[k])
		}
	}
	return nil
}
