package cloudsim

import (
	"testing"

	"adaptio/internal/core"
	"adaptio/internal/corpus"
)

func TestIOOpStrings(t *testing.T) {
	for _, op := range IOOps() {
		if op.String() == "" {
			t.Fatalf("op %d has empty label", int(op))
		}
	}
	if IOOp(9).String() == "" || Platform(9).String() == "" {
		t.Fatal("unknown enum labels empty")
	}
}

func TestCPUBreakdownArithmetic(t *testing.T) {
	a := CPUBreakdown{USR: 1, SYS: 2, HIRQ: 3, SIRQ: 4, STEAL: 5}
	if a.Total() != 15 {
		t.Fatalf("Total = %v", a.Total())
	}
	s := a.Scale(2)
	if s.USR != 2 || s.STEAL != 10 || s.Total() != 30 {
		t.Fatalf("Scale = %+v", s)
	}
	sum := a.Add(a)
	if sum.Total() != 30 || sum.SIRQ != 8 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestRunFileTransferKVMMatchesDiskRate(t *testing.T) {
	res, err := RunFileTransfer(TransferConfig{
		Platform:   KVMParavirt,
		Kind:       ConstantKind(corpus.Low),
		TotalBytes: 10e9,
		Scheme:     StaticScheme(0),
		Profiles:   ReferenceProfiles(),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// KVM paravirt disk: ~74 MB/s -> 10 GB in ~135 s.
	if res.CompletionSeconds < 110 || res.CompletionSeconds > 165 {
		t.Fatalf("completion %.0f s implausible for a 74 MB/s disk", res.CompletionSeconds)
	}
	if res.DurableSeconds != res.CompletionSeconds {
		t.Fatal("KVM has no host cache: durable must equal completion")
	}
	if res.CacheResidentAtCompletion != 0 {
		t.Fatal("KVM left bytes in a host cache")
	}
}

func TestRunFileTransferXenCacheBehaviour(t *testing.T) {
	res, err := RunFileTransfer(TransferConfig{
		Platform:   XenParavirt,
		Kind:       ConstantKind(corpus.Low),
		TotalBytes: 20e9,
		Scheme:     StaticScheme(0),
		Profiles:   ReferenceProfiles(),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheResidentAtCompletion <= 0 {
		t.Fatal("XEN run should end with dirty cache")
	}
	if res.DurableSeconds <= res.CompletionSeconds {
		t.Fatal("durable time must exceed VM-visible completion with dirty cache")
	}
	// Compression below the disk drain rate avoids the cache entirely.
	comp, err := RunFileTransfer(TransferConfig{
		Platform:   XenParavirt,
		Kind:       ConstantKind(corpus.High),
		TotalBytes: 20e9,
		Scheme:     StaticScheme(1),
		Profiles:   ReferenceProfiles(),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if comp.CacheResidentAtCompletion != 0 {
		t.Fatalf("LIGHT on HIGH keeps wire below disk rate; cache should stay empty, got %d bytes",
			comp.CacheResidentAtCompletion)
	}
}

func TestRunFileTransferDynamicTrace(t *testing.T) {
	windows := 0
	_, err := RunFileTransfer(TransferConfig{
		Platform:   XenParavirt,
		Kind:       ConstantKind(corpus.High),
		TotalBytes: 5e9,
		Scheme:     core.MustNewDecider(core.Config{Levels: 4}),
		Profiles:   ReferenceProfiles(),
		Seed:       2,
		Trace:      func(WindowSample) { windows++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 {
		t.Fatal("no trace windows emitted")
	}
}

func TestRunFileTransferGuards(t *testing.T) {
	base := TransferConfig{
		Platform:   KVMParavirt,
		Kind:       ConstantKind(corpus.High),
		TotalBytes: 1e9,
		Scheme:     StaticScheme(0),
		Profiles:   ReferenceProfiles(),
	}
	mutations := []func(*TransferConfig){
		func(c *TransferConfig) { c.TotalBytes = -1 },
		func(c *TransferConfig) { c.Scheme = nil },
		func(c *TransferConfig) { c.Kind = nil },
		func(c *TransferConfig) { c.Profiles = nil },
		func(c *TransferConfig) { c.Scheme = StaticScheme(11) },
		func(c *TransferConfig) { c.Platform = Platform(50) },
	}
	for i, m := range mutations {
		cfg := base
		m(&cfg)
		if _, err := RunFileTransfer(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	slow := base
	slow.MaxSimSeconds = 1
	slow.TotalBytes = 1e12
	if _, err := RunFileTransfer(slow); err == nil {
		t.Error("runaway guard did not trigger")
	}
}
