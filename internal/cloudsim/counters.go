package cloudsim

import (
	"fmt"

	"adaptio/internal/xrand"
)

// StatCounters simulates a Linux /proc/stat cumulative CPU line for a
// machine (guest or host view) under a constant I/O workload. It is the
// bridge between the simulator and internal/metrics: the metrics package's
// parser and sampler consume the exact same textual format from a real
// /proc/stat and from this simulation, so the Figure 1 methodology (1 s
// delta sampling of jiffy counters) runs unmodified against both.
type StatCounters struct {
	breakdown CPUBreakdown // percent of one core while the workload runs
	rng       *xrand.RNG
	// cumulative jiffies
	usr, nice, sys, idle, iowait, hirq, sirq, steal uint64
	// USER_HZ: jiffies per second.
	hz float64
}

// NewStatCounters creates counters for a machine whose workload consumes
// CPU according to the given breakdown (in percent of one core).
func NewStatCounters(b CPUBreakdown, seed uint64) *StatCounters {
	return &StatCounters{breakdown: b, rng: xrand.New(seed), hz: 100}
}

// Advance accumulates dt seconds of runtime with ±7 % multiplicative noise
// per component, mimicking the scheduling jitter real samplers see.
func (s *StatCounters) Advance(dt float64) {
	jif := func(pct float64) uint64 {
		if pct <= 0 {
			return 0
		}
		return uint64(pct / 100 * dt * s.hz * s.rng.NoiseFactor(0.07))
	}
	u := jif(s.breakdown.USR)
	sy := jif(s.breakdown.SYS)
	hi := jif(s.breakdown.HIRQ)
	si := jif(s.breakdown.SIRQ)
	st := jif(s.breakdown.STEAL)
	s.usr += u
	s.sys += sy
	s.hirq += hi
	s.sirq += si
	s.steal += st
	total := uint64(dt * s.hz)
	busy := u + sy + hi + si + st
	if total > busy {
		s.idle += total - busy
	}
}

// ProcStat renders the counters in /proc/stat format (the aggregate "cpu"
// line plus one "cpu0" line, btime and ctxt fields as found on real
// systems).
func (s *StatCounters) ProcStat() string {
	line := fmt.Sprintf("cpu  %d %d %d %d %d %d %d %d 0 0",
		s.usr, s.nice, s.sys, s.idle, s.iowait, s.hirq, s.sirq, s.steal)
	line0 := fmt.Sprintf("cpu0 %d %d %d %d %d %d %d %d 0 0",
		s.usr, s.nice, s.sys, s.idle, s.iowait, s.hirq, s.sirq, s.steal)
	return line + "\n" + line0 + "\nctxt 123456\nbtime 1305504000\nprocesses 4242\n"
}
