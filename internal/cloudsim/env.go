package cloudsim

import "math"

// This file is the fleet simulator's time-varying environment: the hooks the
// scenario engine (internal/scenario) uses to turn the static shared-NIC
// model of sharednic.go into diurnal, bursty, lossy and flapping workloads.
// Every hook is a pure function of simulated time, so a fleet run stays
// bit-deterministic for a given (config, seed) pair no matter how the
// scenario was authored.

// FleetEnv is the optional time-varying environment of a fleet run. Each
// function receives the simulated time in seconds at the start of the
// window; nil members mean "no perturbation". All functions must be pure
// (same t, same answer) for runs to be reproducible.
type FleetEnv struct {
	// Capacity multiplies the NIC's nominal capacity (bandwidth flaps,
	// co-located tenant load). Values are clamped at 0; nil means 1.
	Capacity func(tSec float64) float64

	// ExtraSigma adds to the per-window NIC noise sigma (link jitter).
	// Negative values are ignored; nil adds nothing.
	ExtraSigma func(tSec float64) float64

	// Loss is the packet loss fraction of the shared link in [0, 1); it
	// caps each stream's wire demand at the loss-limited TCP rate (see
	// lossWireCapMBps). Zero or nil disables the loss model.
	Loss func(tSec float64) float64

	// RTTSeconds is the link's base round-trip time used by the loss
	// model; it only matters when Loss is active. Zero or nil with active
	// loss falls back to DefaultRTTSeconds.
	RTTSeconds func(tSec float64) float64
}

// DefaultRTTSeconds is the loss model's round-trip time when a scenario
// enables packet loss without specifying one: an intra-region cloud path.
const DefaultRTTSeconds = 0.010

// simBlockBytes is the compression block size the loss model charges as
// per-block pipeline latency (the stream layer's 128 KiB default block:
// a block must be filled and compressed before its bytes can enter the
// socket, which inflates the effective RTT of slow codecs).
const simBlockBytes = 128 << 10

// mssBytes is the TCP maximum segment size used by the Mathis throughput
// bound.
const mssBytes = 1460

// lossWireCapMBps is the loss-limited wire throughput of one stream in
// MB/s: the Mathis bound MSS/(RTT*sqrt(2p/3)), with the stream's per-block
// compression latency added to the base RTT. This is the mechanism that
// lets a light codec overtake a heavy one on a lossy link — loss-limited
// TCP throughput is inversely proportional to the effective RTT, and a slow
// codec's block latency dominates that RTT: compressing a 128 KiB block at
// 8.9 MB/s adds ~15 ms before the bytes even reach the congestion window.
func lossWireCapMBps(loss, rttSec, compAppMBps float64) float64 {
	if loss <= 0 {
		return math.Inf(1)
	}
	if loss > 0.5 {
		loss = 0.5
	}
	if rttSec <= 0 {
		rttSec = DefaultRTTSeconds
	}
	effRTT := rttSec
	if compAppMBps > 0 {
		effRTT += simBlockBytes / (compAppMBps * 1e6)
	}
	return mssBytes / (effRTT * math.Sqrt(2*loss/3)) / 1e6
}
