package cloudsim

import (
	"errors"

	"adaptio/internal/xrand"
)

// ChunkBytes is the measurement granularity of Section II-B: the paper's
// auxiliary programs "record timestamps after every 20 MB of generated or
// consumed I/O data".
const ChunkBytes = 20 << 20

// NetThroughputSamples simulates the Figure 2 experiment for one platform:
// a VM sends totalBytes over a single TCP stream and records the
// application-layer rate of every 20 MB chunk. The returned samples are in
// MBit/s, matching the figure's axis.
func NetThroughputSamples(p Platform, totalBytes int64, seed uint64) ([]float64, error) {
	net, ok := netTable[p]
	if !ok {
		return nil, errors.New("cloudsim: unknown platform")
	}
	rng := xrand.New(seed ^ uint64(p)<<32 ^ 0xF16002)
	flake := newFlakeProcess(net, rng.Fork())
	var samples []float64
	now := 0.0
	for sent := int64(0); sent < totalBytes; sent += ChunkBytes {
		rate := net.appMBps * rng.NoiseFactor(net.sigma) * flake.factor(now)
		if rate < minNetMBps {
			rate = minNetMBps
		}
		now += (ChunkBytes / 1e6) / rate
		samples = append(samples, rate*8) // MB/s -> MBit/s
	}
	return samples, nil
}

// FileWriteSamples simulates the Figure 3 experiment: a VM writes totalBytes
// to its virtual disk and records the rate of every 20 MB chunk, in MB/s.
//
// On XEN the guest's raw writes land in the *host's* page cache: the
// observed rate is the cache's RAM-speed rate until the host's dirty limit
// is reached, at which point the host flushes to the physical disk and the
// guest observes a near-stall ("the data rate displayed inside the virtual
// machine dropped to a few MB/s"). The alternation produces the spuriously
// high mean and extreme variance the paper reports.
func FileWriteSamples(p Platform, totalBytes int64, seed uint64) ([]float64, error) {
	d, ok := diskTable[p]
	if !ok {
		return nil, errors.New("cloudsim: unknown platform")
	}
	rng := xrand.New(seed ^ uint64(p)<<32 ^ 0xD15C)
	var samples []float64
	dirty := 0.0 // bytes buffered in the host page cache
	for written := int64(0); written < totalBytes; written += ChunkBytes {
		var rate float64
		if d.hostCache {
			if dirty < d.dirtyLimit {
				// Absorbed by host RAM at cache speed.
				rate = d.cacheMBps * rng.NoiseFactor(0.10)
				dirty += ChunkBytes
			} else {
				// Host flushing: guest sees a stall until the
				// cache has drained. Model one stalled chunk per
				// disk-speed's worth of drain.
				rate = d.stallMBps * rng.NoiseFactor(0.30)
				dirty -= d.dirtyLimit * 0.45 // flusher writes out a batch
				if dirty < 0 {
					dirty = 0
				}
			}
		} else {
			rate = d.diskMBps * rng.NoiseFactor(d.sigma)
		}
		if rate < 0.1 {
			rate = 0.1
		}
		samples = append(samples, rate)
	}
	return samples, nil
}

// CacheResident reports how many bytes would remain un-flushed in the host
// page cache after writing totalBytes on the platform (zero for platforms
// without the host-cache anomaly). The paper: "after having written the
// 50 GB ... large portions of the data had not actually been written to the
// physical hard drive".
func CacheResident(p Platform, totalBytes int64, seed uint64) int64 {
	d, ok := diskTable[p]
	if !ok || !d.hostCache {
		return 0
	}
	rng := xrand.New(seed ^ uint64(p)<<32 ^ 0xD15C)
	dirty := 0.0
	for written := int64(0); written < totalBytes; written += ChunkBytes {
		if dirty < d.dirtyLimit {
			_ = rng.NoiseFactor(0.10)
			dirty += ChunkBytes
		} else {
			_ = rng.NoiseFactor(0.30)
			dirty -= d.dirtyLimit * 0.45
			if dirty < 0 {
				dirty = 0
			}
		}
	}
	return int64(dirty)
}
