package cloudsim

import (
	"math"
	"testing"
	"testing/quick"

	"adaptio/internal/core"
	"adaptio/internal/corpus"
)

// TestTransferInvariantsProperty checks structural invariants over random
// (kind, background, scheme, seed) draws: volume accounting is exact,
// compression never inflates the wire, time accounting is consistent.
func TestTransferInvariantsProperty(t *testing.T) {
	prop := func(kindSel, bgSel, schemeSel uint8, seed uint64) bool {
		kind := corpus.Kind(int(kindSel) % 3)
		bg := int(bgSel) % 5
		var scheme Scheme
		if schemeSel%5 == 4 {
			scheme = core.MustNewDecider(core.Config{Levels: 4})
		} else {
			scheme = StaticScheme(int(schemeSel) % 4)
		}
		res, err := RunTransfer(TransferConfig{
			Platform:   KVMParavirt,
			Kind:       ConstantKind(kind),
			TotalBytes: 5e9,
			Background: bg,
			Scheme:     scheme,
			Profiles:   ReferenceProfiles(),
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		if res.AppBytes != 5e9 {
			return false
		}
		if res.WireBytes > res.AppBytes {
			return false // ratio <= 1 for every profile level
		}
		var levelSum float64
		for _, s := range res.LevelSeconds {
			levelSum += s
		}
		if math.Abs(levelSum-res.CompletionSeconds) > 1e-6*res.CompletionSeconds {
			return false
		}
		return res.CompletionSeconds > 0 && res.Windows > 0
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestContentionMonotoneProperty: for network-bound configurations (NO
// compression), more co-located connections never make the transfer faster.
func TestContentionMonotoneProperty(t *testing.T) {
	prop := func(kindSel uint8, seed uint64) bool {
		kind := corpus.Kind(int(kindSel) % 3)
		prev := 0.0
		for bg := 0; bg <= 4; bg++ {
			res, err := RunTransfer(TransferConfig{
				Platform:   KVMParavirt,
				Kind:       ConstantKind(kind),
				TotalBytes: 10e9,
				Background: bg,
				Scheme:     StaticScheme(0),
				Profiles:   ReferenceProfiles(),
				Seed:       seed,
			})
			if err != nil {
				return false
			}
			// Allow 3% slack for the independent noise draws.
			if res.CompletionSeconds < prev*0.97 {
				return false
			}
			prev = res.CompletionSeconds
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicBoundedByStaticsProperty: the adaptive scheme can probe, but it
// can never do better than the best static level by more than noise, nor
// worse than the worst.
func TestDynamicBoundedByStaticsProperty(t *testing.T) {
	prop := func(kindSel, bgSel uint8, seed uint64) bool {
		kind := corpus.Kind(int(kindSel) % 3)
		bg := int(bgSel) % 4
		best, worst := math.Inf(1), 0.0
		for lvl := 0; lvl < 4; lvl++ {
			res, err := RunTransfer(TransferConfig{
				Platform:   KVMParavirt,
				Kind:       ConstantKind(kind),
				TotalBytes: 10e9,
				Background: bg,
				Scheme:     StaticScheme(lvl),
				Profiles:   ReferenceProfiles(),
				Seed:       seed,
			})
			if err != nil {
				return false
			}
			best = math.Min(best, res.CompletionSeconds)
			worst = math.Max(worst, res.CompletionSeconds)
		}
		dyn, err := RunTransfer(TransferConfig{
			Platform:   KVMParavirt,
			Kind:       ConstantKind(kind),
			TotalBytes: 10e9,
			Background: bg,
			Scheme:     core.MustNewDecider(core.Config{Levels: 4}),
			Profiles:   ReferenceProfiles(),
			Seed:       seed,
		})
		if err != nil {
			return false
		}
		return dyn.CompletionSeconds >= best*0.9 && dyn.CompletionSeconds <= worst*1.1
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNetShareMonotone: the calibrated share table decreases monotonically
// and hands off smoothly to the extrapolation formula.
func TestNetShareMonotone(t *testing.T) {
	prev := NetShare(0)
	if prev != 1 {
		t.Fatalf("NetShare(0) = %v", prev)
	}
	for k := 1; k <= 12; k++ {
		s := NetShare(k)
		if s <= 0 || s >= prev {
			t.Fatalf("NetShare(%d) = %v, prev %v: not strictly decreasing", k, s, prev)
		}
		prev = s
	}
	if CPUShare(0) != 1 || CPUShare(3) >= CPUShare(1) {
		t.Fatal("CPUShare not monotone")
	}
}
