package cloudsim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"adaptio/internal/corpus"
)

func TestWaterFill(t *testing.T) {
	cases := []struct {
		name   string
		cap    float64
		demand []float64
		weight []float64
		want   []float64
	}{
		{
			name:   "all saturated equal weights",
			cap:    90,
			demand: []float64{100, 100, 100},
			weight: []float64{1, 1, 1},
			want:   []float64{30, 30, 30},
		},
		{
			name:   "small demand returns surplus",
			cap:    90,
			demand: []float64{10, 100, 100},
			weight: []float64{1, 1, 1},
			want:   []float64{10, 40, 40},
		},
		{
			name:   "under capacity everyone satisfied",
			cap:    90,
			demand: []float64{10, 20, 30},
			weight: []float64{1, 1, 1},
			want:   []float64{10, 20, 30},
		},
		{
			name:   "weighted 3:1 split",
			cap:    80,
			demand: []float64{100, 100},
			weight: []float64{3, 1},
			want:   []float64{60, 20},
		},
		{
			name:   "zero demand excluded",
			cap:    80,
			demand: []float64{0, 100, 100},
			weight: []float64{5, 1, 1},
			want:   []float64{0, 40, 40},
		},
		{
			name:   "cascade of satisfactions",
			cap:    100,
			demand: []float64{5, 30, 1000},
			weight: []float64{1, 1, 1},
			want:   []float64{5, 30, 65},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			alloc := make([]float64, len(tc.demand))
			waterFill(tc.cap, tc.demand, tc.weight, alloc)
			for i := range alloc {
				if math.Abs(alloc[i]-tc.want[i]) > 1e-9 {
					t.Fatalf("alloc = %v, want %v", alloc, tc.want)
				}
			}
		})
	}
}

func moderateFleet(n int, scheme func(i int) Scheme) []FleetStream {
	streams := make([]FleetStream, n)
	for i := range streams {
		streams[i] = FleetStream{
			Kind:   ConstantKind(corpus.Moderate),
			Scheme: scheme(i),
		}
	}
	return streams
}

func TestRunFleetValidation(t *testing.T) {
	profiles := ReferenceProfiles()
	base := func() FleetConfig {
		return FleetConfig{
			Windows:  4,
			Profiles: profiles,
			Streams:  moderateFleet(2, func(int) Scheme { return StaticScheme(0) }),
		}
	}
	cases := []struct {
		name string
		mut  func(*FleetConfig)
		want string
	}{
		{"no streams", func(c *FleetConfig) { c.Streams = nil }, "at least one stream"},
		{"no windows", func(c *FleetConfig) { c.Windows = 0 }, "Windows > 0"},
		{"nil scheme", func(c *FleetConfig) { c.Streams[0].Scheme = nil }, "nil scheme"},
		{"nil kind", func(c *FleetConfig) { c.Streams[1].Kind = nil }, "nil kind schedule"},
		{"bad start level", func(c *FleetConfig) { c.Streams[0].Scheme = StaticScheme(9) }, "invalid level"},
		{"negative weight", func(c *FleetConfig) { c.Streams[0].Weight = -1 }, "negative weight"},
		{"negative cpu factor", func(c *FleetConfig) { c.Streams[0].CPUFactor = -1 }, "negative CPU factor"},
		{"negative nic", func(c *FleetConfig) { c.NICMBps = -5 }, "negative NIC capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			_, err := RunFleet(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("RunFleet error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestRunFleetDeterministic(t *testing.T) {
	cfg := FleetConfig{
		NICMBps:  50,
		Windows:  30,
		Profiles: ReferenceProfiles(),
		Streams:  moderateFleet(8, func(int) Scheme { return StaticScheme(1) }),
		Seed:     42,
		NICSigma: 0.1,
		CPUSigma: 0.05,
	}
	a, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Streams = moderateFleet(8, func(int) Scheme { return StaticScheme(1) })
	b, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestRunFleetCompressionBeatsIdentityOnContendedNIC(t *testing.T) {
	// 10 streams on a 50 MB/s NIC: uncompressed each gets 5 MB/s of
	// goodput; LIGHT (ratio 0.45 on MODERATE) turns the same wire share
	// into ~11 MB/s of application bytes. The fleet model must reproduce
	// the paper's core economics.
	run := func(level int) FleetResult {
		res, err := RunFleet(FleetConfig{
			NICMBps:  50,
			Windows:  20,
			Profiles: ReferenceProfiles(),
			Streams:  moderateFleet(10, func(int) Scheme { return StaticScheme(level) }),
			Seed:     7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	no, light := run(0), run(1)
	if light.AppBytes <= no.AppBytes {
		t.Fatalf("LIGHT goodput %d <= NO goodput %d on a contended NIC", light.AppBytes, no.AppBytes)
	}
	// Wire usage must respect the NIC in both runs (quiet NIC: hard cap).
	wireMBps := float64(no.WireBytes) / 1e6 / (20 * 2)
	if wireMBps > 50*1.001 {
		t.Fatalf("NO run pushed %v MB/s of wire bytes through a 50 MB/s NIC", wireMBps)
	}
}

func TestRunFleetUncontendedPrefersCPUBound(t *testing.T) {
	// One stream on a fat NIC is CPU-bound: identity framing moves data
	// at nearly wire-stack speed, far above any compressor.
	res, err := RunFleet(FleetConfig{
		NICMBps:  1000,
		Windows:  10,
		Profiles: ReferenceProfiles(),
		Streams:  moderateFleet(1, func(int) Scheme { return StaticScheme(0) }),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.GoodputMBps(2)
	// 1/(1/5000 + 1/150) ≈ 145.6 MB/s.
	if got < 120 || got > 160 {
		t.Fatalf("uncontended identity goodput = %v MB/s, want ~145", got)
	}
}

// seesaw flips between two levels every window — maximal flapping, which
// the harness must count no matter what the scheme itself reports.
type seesaw struct{ level int }

func (s *seesaw) Observe(float64) int {
	s.level = 1 - s.level
	return s.level
}
func (s *seesaw) Level() int { return s.level }

func TestRunFleetHarnessCountsFlaps(t *testing.T) {
	res, err := RunFleet(FleetConfig{
		NICMBps:  50,
		Windows:  21,
		Profiles: ReferenceProfiles(),
		Streams:  moderateFleet(1, func(int) Scheme { return &seesaw{} }),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 21 windows → 21 switches; every switch after the first reverses the
	// previous direction one window later → 20 flaps.
	if res.Switches != 21 || res.Flaps != 20 {
		t.Fatalf("switches/flaps = %d/%d, want 21/20", res.Switches, res.Flaps)
	}
}

func TestRunFleetWeightedSharesSkewGoodput(t *testing.T) {
	streams := moderateFleet(4, func(int) Scheme { return StaticScheme(1) })
	streams[0].Weight = 3
	streams[0].Tenant = "gold"
	res, err := RunFleet(FleetConfig{
		NICMBps:  40,
		Windows:  10,
		Profiles: ReferenceProfiles(),
		Streams:  streams,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	gold, silver := res.PerStream[0], res.PerStream[1]
	if gold.Tenant != "gold" {
		t.Fatalf("tenant label lost: %+v", gold)
	}
	ratioBytes := float64(gold.AppBytes) / float64(silver.AppBytes)
	if ratioBytes < 2.5 || ratioBytes > 3.5 {
		t.Fatalf("gold/silver goodput ratio = %v, want ~3 (weight 3 vs 1)", ratioBytes)
	}
}
