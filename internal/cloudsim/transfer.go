package cloudsim

import (
	"errors"
	"fmt"
	"math"

	"adaptio/internal/corpus"
	"adaptio/internal/xrand"
)

// Scheme decides the compression level for the next decision window given
// the application data rate observed in the previous one. *core.Decider
// satisfies it; static levels and the related-work baselines
// (internal/baseline) provide alternative implementations.
type Scheme interface {
	// Observe consumes the application data rate (bytes/second) of the
	// completed window and returns the level for the next window.
	Observe(rate float64) int
	// Level returns the currently selected level.
	Level() int
}

// GuestMetrics is the set of OS-displayed system metrics a metric-driven
// compression scheme (Section V's related work) can query inside the guest.
// Crucially these carry the virtualization distortions of Section II: the
// displayed idle percentage reflects the guest's skewed accounting, not the
// host's true cost.
type GuestMetrics struct {
	// DisplayedIdlePct is the idle CPU percentage shown by the guest's
	// /proc/stat. Under paravirtualized I/O it stays high even when the
	// host burns a full core on the VM's traffic.
	DisplayedIdlePct float64
	// DisplayedBandwidthMBps is what a guest-side bandwidth probe (an
	// NWS-style sensor) reports for the network path, wire bytes per
	// second, including contention fluctuation.
	DisplayedBandwidthMBps float64
	// CompressorMBps is the rate (application MB/s) at which a dedicated
	// compression thread could produce output at the current level.
	CompressorMBps float64
	// NetDrainMBps is the wire-layer rate the network actually drains.
	NetDrainMBps float64
	// WindowSeconds is the length of the elapsed window.
	WindowSeconds float64
}

// MetricsScheme is implemented by schemes that additionally consume
// guest-displayed metrics. The engine calls ObserveMetrics immediately
// before Observe for every window.
type MetricsScheme interface {
	Scheme
	ObserveMetrics(GuestMetrics)
}

// StaticScheme pins one compression level forever (the paper's NO / LIGHT /
// MEDIUM / HEAVY rows in Table II).
type StaticScheme int

// Observe implements Scheme.
func (s StaticScheme) Observe(float64) int { return int(s) }

// Level implements Scheme.
func (s StaticScheme) Level() int { return int(s) }

// KindSchedule maps a byte offset of the application stream to a corpus
// kind; it expresses workloads whose compressibility changes over time
// (Figure 6 alternates HIGH and LOW every 10 GB).
type KindSchedule func(offset int64) corpus.Kind

// ConstantKind returns a schedule that always yields k.
func ConstantKind(k corpus.Kind) KindSchedule {
	return func(int64) corpus.Kind { return k }
}

// AlternatingKinds returns a schedule cycling through kinds every `every`
// bytes.
func AlternatingKinds(every int64, kinds ...corpus.Kind) KindSchedule {
	if every <= 0 || len(kinds) == 0 {
		panic("cloudsim: invalid alternating schedule")
	}
	return func(off int64) corpus.Kind {
		return kinds[(off/every)%int64(len(kinds))]
	}
}

// TransferConfig describes one sender->receiver bulk transfer experiment
// (the Section IV sample job: a Nephele sender task streaming a test file
// over a TCP network channel to a receiver task on another VM).
type TransferConfig struct {
	// Platform of both VMs. The evaluation used KVM paravirt.
	Platform Platform
	// Kind schedules the data compressibility by stream offset.
	Kind KindSchedule
	// TotalBytes is the application data volume (paper: 50 GB).
	TotalBytes int64
	// Background is the number of co-located concurrent TCP connections.
	Background int
	// WindowSeconds is the decision interval t (paper: 2 s).
	WindowSeconds float64
	// Scheme picks compression levels. Must select levels within
	// len(Profiles).
	Scheme Scheme
	// Profiles is the codec profile ladder (index = level).
	Profiles []CodecProfile
	// Seed drives all stochastic components.
	Seed uint64
	// Trace, if non-nil, receives one sample per decision window.
	Trace func(WindowSample)
	// MaxSimSeconds aborts runaway simulations; zero means 24 h.
	MaxSimSeconds float64
}

// WindowSample is one decision window of a simulated transfer; it carries
// everything Figures 4–6 plot: time, throughput at both layers, the selected
// level and the sender's CPU utilization as displayed inside the VM.
type WindowSample struct {
	// Time is the window's end, in seconds since transfer start.
	Time float64
	// Level active during the window.
	Level int
	// AppMBps is the application-layer throughput (pre-compression).
	AppMBps float64
	// WireMBps is the network-layer throughput (post-compression).
	WireMBps float64
	// GuestCPU is the CPU utilization displayed inside the sending VM.
	GuestCPU CPUBreakdown
	// Kind is the data compressibility during this window.
	Kind corpus.Kind
}

// TransferResult summarizes a completed transfer.
type TransferResult struct {
	// CompletionSeconds is the job completion time (Table II's metric).
	CompletionSeconds float64
	// AppBytes and WireBytes total the two layers.
	AppBytes  int64
	WireBytes int64
	// Windows is the number of decision windows executed.
	Windows int
	// LevelSeconds accumulates simulated time spent per level.
	LevelSeconds []float64
	// LevelSwitches counts level changes.
	LevelSwitches int
}

// MeanLevel returns the time-weighted mean compression level.
func (r TransferResult) MeanLevel() float64 {
	var num, den float64
	for l, s := range r.LevelSeconds {
		num += float64(l) * s
		den += s
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RunTransfer simulates one bulk transfer and returns its completion time.
//
// # Pipeline model
//
// Within one decision window the sender VM (1 vCPU, as in the appendix)
// runs compression and the network stack on the same core, while the NIC
// transfer overlaps with computation through kernel buffering. The steady
// state application rate is therefore the inverse of the slowest stage:
//
//	cpuSecPerByte  = (1/comp(l,k) + ratio(l,k)/wireCPUMBps) / CPUShare(bg)
//	netSecPerByte  = ratio(l,k) / (net.appMBps * NetShare(bg) * noise)
//	recvSecPerByte = 1/decomp(l,k) + ratio(l,k)/wireCPUMBps
//	rate           = 1 / max(cpuSecPerByte, netSecPerByte, recvSecPerByte)
//
// wireCPUMBps (150 MB/s) is the VM's TCP-stack processing capacity per wire
// byte, calibrated with the level speeds in ReferenceProfiles so the model
// inverts Table II (see EXPERIMENTS.md). The network's flow control
// backpressures the whole pipeline, which is why the receiver's
// decompression appears in the max — exactly the effect the paper describes
// ("the application data rate also includes the decompression time at the
// receiver because of the network's flow control mechanisms").
func RunTransfer(cfg TransferConfig) (TransferResult, error) {
	var res TransferResult
	if cfg.TotalBytes <= 0 {
		return res, errors.New("cloudsim: TotalBytes must be positive")
	}
	if cfg.Scheme == nil {
		return res, errors.New("cloudsim: nil scheme")
	}
	if cfg.Kind == nil {
		return res, errors.New("cloudsim: nil kind schedule")
	}
	if err := ValidateLadder(cfg.Profiles); err != nil {
		return res, err
	}
	if cfg.WindowSeconds <= 0 {
		cfg.WindowSeconds = 2
	}
	if cfg.MaxSimSeconds <= 0 {
		cfg.MaxSimSeconds = 24 * 3600
	}
	net, ok := netTable[cfg.Platform]
	if !ok {
		return res, fmt.Errorf("cloudsim: unknown platform %v", cfg.Platform)
	}

	rng := xrand.New(cfg.Seed ^ 0xC0FFEE)
	flake := newFlakeProcess(net, rng.Fork())
	slow := newSlowNoise(cfg.Background, rng.Fork())

	res.LevelSeconds = make([]float64, len(cfg.Profiles))
	level := cfg.Scheme.Level()
	if level < 0 || level >= len(cfg.Profiles) {
		return res, fmt.Errorf("cloudsim: scheme starts at invalid level %d", level)
	}

	var sent int64
	now := 0.0
	prevLevel := level
	for sent < cfg.TotalBytes {
		if now > cfg.MaxSimSeconds {
			return res, fmt.Errorf("cloudsim: transfer exceeded %v simulated seconds (sent %d of %d)",
				cfg.MaxSimSeconds, sent, cfg.TotalBytes)
		}
		kind := cfg.Kind(sent)
		p := cfg.Profiles[level]
		ratio := p.Ratio[kind]

		// Stage costs in seconds per application byte (MB units cancel).
		// The small multiplicative noise on the CPU stage reflects
		// scheduling jitter; it gives CPU-bound configurations the
		// nonzero run-to-run deviations Table II reports.
		compSec := 1 / p.CompMBps[kind]
		ioSec := ratio / wireCPUMBps
		cpu := (compSec + ioSec) / CPUShare(cfg.Background) * rng.NoiseFactor(0.012)
		compFrac := compSec / (compSec + ioSec)
		netRate := net.appMBps * NetShare(cfg.Background) * thinFlowShare(cfg.Background, ratio) *
			rng.NoiseFactor(net.sigma) * slow.factor(now) * flake.factor(now)
		if netRate < minNetMBps {
			netRate = minNetMBps
		}
		netSec := ratio / netRate
		recv := 1/p.DecompMBps[kind] + ratio/wireCPUMBps
		secPerMB := math.Max(cpu, math.Max(netSec, recv))
		rateMBps := 1 / secPerMB

		// Advance one window (or less if the transfer finishes inside it).
		windowBytes := int64(rateMBps * 1e6 * cfg.WindowSeconds)
		if windowBytes < 1 {
			windowBytes = 1
		}
		dt := cfg.WindowSeconds
		if sent+windowBytes >= cfg.TotalBytes {
			remaining := cfg.TotalBytes - sent
			dt = float64(remaining) / (rateMBps * 1e6)
			windowBytes = remaining
		}
		sent += windowBytes
		now += dt
		res.AppBytes += windowBytes
		res.WireBytes += int64(float64(windowBytes) * ratio)
		res.LevelSeconds[level] += dt
		res.Windows++

		appMBps := float64(windowBytes) / 1e6 / dt
		if ms, ok := cfg.Scheme.(MetricsScheme); ok {
			guestCPU := senderGuestCPU(cfg.Platform, cpu, compFrac, appMBps, rng)
			idle := 100 - guestCPU.Total()
			if idle < 0 {
				idle = 0
			}
			ms.ObserveMetrics(GuestMetrics{
				DisplayedIdlePct:       idle,
				DisplayedBandwidthMBps: netRate,
				CompressorMBps:         (1 / cpu) * rng.NoiseFactor(0.02),
				NetDrainMBps:           netRate,
				WindowSeconds:          dt,
			})
		}
		if cfg.Trace != nil {
			cfg.Trace(WindowSample{
				Time:     now,
				Level:    level,
				AppMBps:  appMBps,
				WireMBps: appMBps * ratio,
				GuestCPU: senderGuestCPU(cfg.Platform, cpu, compFrac, appMBps, rng),
				Kind:     kind,
			})
		}

		// Feed the observed rate (bytes/second, as the stream layer
		// measures it) to the decision scheme.
		level = cfg.Scheme.Observe(appMBps * 1e6)
		if level < 0 || level >= len(cfg.Profiles) {
			return res, fmt.Errorf("cloudsim: scheme chose invalid level %d", level)
		}
		if level != prevLevel {
			res.LevelSwitches++
			prevLevel = level
		}
	}
	res.CompletionSeconds = now
	return res, nil
}

// wireCPUMBps is the sender VM's TCP-stack capacity: how many MB of wire
// bytes one vCPU can push per second if it did nothing else. Calibrated
// jointly with ReferenceProfiles against Table II.
const wireCPUMBps = 150

// minNetMBps floors the fluctuating network rate; EC2's collapses go "to
// zero" at millisecond scale but a 2 s window always moves some bytes.
const minNetMBps = 0.5

// thinFlowShare models a second-order TCP effect visible in Table II: under
// contention a *compressed* flow demands fewer wire bytes, holds a smaller
// congestion window and therefore recovers more slowly against saturating
// background flows, losing a little more than its volume-proportional share.
// The penalty scales with how thin the flow is (1-ratio) and vanishes
// without background traffic. Calibrated so LIGHT and MEDIUM on MODERATE
// data approach the near-tie the paper reports at three background
// connections (1027 s vs 953 s).
func thinFlowShare(bg int, ratio float64) float64 {
	if bg <= 0 {
		return 1
	}
	if ratio > 1 {
		ratio = 1
	}
	return 1 - 0.25*(1-ratio)
}

// slowNoise is a low-frequency contention process: co-located VM load
// varies on a tens-of-seconds timescale, which is what gives the paper's
// completion times their run-to-run standard deviations. One multiplicative
// factor is drawn per epoch; its amplitude grows with the number of
// background connections.
type slowNoise struct {
	rng      *xrand.RNG
	sigma    float64
	epochSec float64
	epoch    int
	value    float64
}

func newSlowNoise(bg int, rng *xrand.RNG) *slowNoise {
	return &slowNoise{rng: rng, sigma: 0.03 * float64(bg), epochSec: 40, epoch: -1, value: 1}
}

func (s *slowNoise) factor(now float64) float64 {
	if s.sigma == 0 {
		return 1
	}
	e := int(now / s.epochSec)
	if e != s.epoch {
		s.epoch = e
		s.value = s.rng.NoiseFactor(s.sigma)
	}
	return s.value
}

// senderGuestCPU converts the window's CPU cost into the utilization split
// displayed inside the guest, applying the platform's accounting distortion
// (the guest systematically under-reports I/O processing, Section II-A).
// compFrac is the fraction of the true cost spent in user-mode compression,
// which the guest accounts correctly; the I/O remainder is shown shrunk by
// the platform's guest/host visibility ratio.
func senderGuestCPU(p Platform, cpuSecPerMB, compFrac, appMBps float64, rng *xrand.RNG) CPUBreakdown {
	util := cpuSecPerMB * appMBps * 100 // percent of one core, true cost
	if util > 100 {
		util = 100
	}
	guest, host, _ := Accounting(p, NetSend)
	hostTotal := host.Total()
	visibility := 1.0
	if hostTotal > 0 && p != Native {
		visibility = guest.Total() / hostTotal
	}
	usr := util * compFrac
	ioPart := util - usr
	visIO := ioPart * visibility
	scale := func(f float64) float64 { return f * (1 + 0.05*rng.Norm()) }
	gt := guest.Total()
	if gt == 0 {
		gt = 1
	}
	return CPUBreakdown{
		USR:   scale(usr + visIO*guest.USR/gt),
		SYS:   scale(visIO * guest.SYS / gt),
		HIRQ:  scale(visIO * guest.HIRQ / gt),
		SIRQ:  scale(visIO * guest.SIRQ / gt),
		STEAL: scale(visIO * guest.STEAL / gt),
	}
}

// flakeProcess models EC2's regime-switching throughput: occasional windows
// where the achievable rate collapses, as reported by Wang & Ng and
// reproduced in Section II-B.
type flakeProcess struct {
	enabled bool
	rng     *xrand.RNG
	lowTil  float64
}

func newFlakeProcess(net netParams, rng *xrand.RNG) *flakeProcess {
	return &flakeProcess{enabled: net.flaky, rng: rng}
}

func (f *flakeProcess) factor(now float64) float64 {
	if !f.enabled {
		return 1
	}
	if now < f.lowTil {
		return 0.05 + 0.1*f.rng.Float64()
	}
	// ~8% of windows enter a collapse lasting up to ~3 s.
	if f.rng.Float64() < 0.08 {
		f.lowTil = now + 0.5 + 2.5*f.rng.Float64()
		return 0.05 + 0.1*f.rng.Float64()
	}
	return 1
}
