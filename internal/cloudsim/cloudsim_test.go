package cloudsim

import (
	"math"
	"testing"

	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/stats"
)

const fiftyGB = 50e9 // the paper's 50 GB data volume

func run(t *testing.T, kind corpus.Kind, bg int, scheme Scheme, seed uint64) TransferResult {
	t.Helper()
	res, err := RunTransfer(TransferConfig{
		Platform:   KVMParavirt,
		Kind:       ConstantKind(kind),
		TotalBytes: fiftyGB,
		Background: bg,
		Scheme:     scheme,
		Profiles:   ReferenceProfiles(),
		Seed:       seed,
	})
	if err != nil {
		t.Fatalf("RunTransfer(%v, bg=%d): %v", kind, bg, err)
	}
	return res
}

func dynamic(t *testing.T) Scheme {
	t.Helper()
	return core.MustNewDecider(core.Config{Levels: 4})
}

func TestPlatformStrings(t *testing.T) {
	if len(Platforms()) != 5 {
		t.Fatal("expected 5 platforms")
	}
	for _, p := range Platforms() {
		if p.String() == "" {
			t.Fatalf("platform %d has empty label", int(p))
		}
	}
	if len(IOOps()) != 4 {
		t.Fatal("expected 4 I/O operations")
	}
}

func TestStaticScheme(t *testing.T) {
	s := StaticScheme(2)
	if s.Level() != 2 || s.Observe(123) != 2 {
		t.Fatal("static scheme moved")
	}
}

func TestKindSchedules(t *testing.T) {
	c := ConstantKind(corpus.Low)
	if c(0) != corpus.Low || c(1<<40) != corpus.Low {
		t.Fatal("constant kind not constant")
	}
	a := AlternatingKinds(10, corpus.High, corpus.Low)
	if a(0) != corpus.High || a(9) != corpus.High || a(10) != corpus.Low || a(20) != corpus.High {
		t.Fatal("alternating schedule wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid schedule")
		}
	}()
	AlternatingKinds(0, corpus.High)
}

func TestProfileValidation(t *testing.T) {
	if err := ValidateLadder(nil); err == nil {
		t.Error("empty ladder accepted")
	}
	good := ReferenceProfiles()
	if err := ValidateLadder(good); err != nil {
		t.Errorf("reference profiles rejected: %v", err)
	}
	bad := ReferenceProfiles()
	delete(bad[1].CompMBps, corpus.Low)
	if err := ValidateLadder(bad); err == nil {
		t.Error("incomplete profile accepted")
	}
	bad2 := ReferenceProfiles()
	bad2[0].Ratio[corpus.High] = 0.5
	if err := ValidateLadder(bad2); err == nil {
		t.Error("non-identity level 0 accepted")
	}
}

func TestRunTransferValidation(t *testing.T) {
	base := TransferConfig{
		Platform:   KVMParavirt,
		Kind:       ConstantKind(corpus.High),
		TotalBytes: 1e9,
		Scheme:     StaticScheme(0),
		Profiles:   ReferenceProfiles(),
	}
	cases := []func(*TransferConfig){
		func(c *TransferConfig) { c.TotalBytes = 0 },
		func(c *TransferConfig) { c.Scheme = nil },
		func(c *TransferConfig) { c.Kind = nil },
		func(c *TransferConfig) { c.Profiles = nil },
		func(c *TransferConfig) { c.Scheme = StaticScheme(9) },
		func(c *TransferConfig) { c.Platform = Platform(42) },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := RunTransfer(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := RunTransfer(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestTransferDeterministicPerSeed(t *testing.T) {
	a := run(t, corpus.Moderate, 1, StaticScheme(1), 42)
	b := run(t, corpus.Moderate, 1, StaticScheme(1), 42)
	if a.CompletionSeconds != b.CompletionSeconds {
		t.Fatalf("same seed diverged: %v vs %v", a.CompletionSeconds, b.CompletionSeconds)
	}
	c := run(t, corpus.Moderate, 1, StaticScheme(1), 43)
	if a.CompletionSeconds == c.CompletionSeconds {
		t.Fatal("different seeds produced identical noisy results")
	}
}

// TestTableIIZeroConnCalibration pins the simulated completion times for the
// no-contention column of Table II to within 8% of the paper's values —
// this is the calibration anchor of the whole evaluation.
func TestTableIIZeroConnCalibration(t *testing.T) {
	paper := map[corpus.Kind][4]float64{
		corpus.High:     {569, 252, 347, 1881},
		corpus.Moderate: {567, 629, 795, 5760},
		corpus.Low:      {566, 688, 1095, 9011},
	}
	for kind, want := range paper {
		for lvl := 0; lvl < 4; lvl++ {
			got := run(t, kind, 0, StaticScheme(lvl), 7).CompletionSeconds
			if rel := math.Abs(got-want[lvl]) / want[lvl]; rel > 0.08 {
				t.Errorf("%v level %d: %0.f s vs paper %0.f s (%.0f%% off)",
					kind, lvl, got, want[lvl], rel*100)
			}
		}
	}
}

// TestTableIIShape verifies the qualitative structure of Table II that the
// paper's conclusions rest on.
func TestTableIIShape(t *testing.T) {
	grid := map[corpus.Kind]map[int][4]float64{} // kind -> level -> per-bg times
	for _, kind := range corpus.Kinds() {
		grid[kind] = map[int][4]float64{}
		for lvl := 0; lvl < 4; lvl++ {
			var times [4]float64
			for bg := 0; bg <= 3; bg++ {
				times[bg] = run(t, kind, bg, StaticScheme(lvl), uint64(17+bg)).CompletionSeconds
			}
			grid[kind][lvl] = times
		}
	}
	// LIGHT is the fastest static level on HIGH data at every contention
	// level (Table II bold values).
	for bg := 0; bg <= 3; bg++ {
		light := grid[corpus.High][1][bg]
		for _, lvl := range []int{0, 2, 3} {
			if grid[corpus.High][lvl][bg] <= light {
				t.Errorf("HIGH bg=%d: level %d (%.0f s) not slower than LIGHT (%.0f s)",
					bg, lvl, grid[corpus.High][lvl][bg], light)
			}
		}
	}
	// NO wins on LOW data without contention.
	if grid[corpus.Low][0][0] >= grid[corpus.Low][1][0] {
		t.Error("LOW bg=0: NO should beat LIGHT")
	}
	// HEAVY is by far the worst everywhere at 1 Gbit/s (factor >= 2.5 vs
	// the best).
	for _, kind := range corpus.Kinds() {
		best := math.Inf(1)
		for lvl := 0; lvl < 3; lvl++ {
			best = math.Min(best, grid[kind][lvl][0])
		}
		if grid[kind][3][0] < 2.5*best {
			t.Errorf("%v: HEAVY (%.0f s) not clearly worst vs best %.0f s", kind, grid[kind][3][0], best)
		}
	}
	// NO-compression times grow monotonically with contention (it is
	// network bound).
	for _, kind := range corpus.Kinds() {
		ts := grid[kind][0]
		for bg := 1; bg <= 3; bg++ {
			if ts[bg] <= ts[bg-1] {
				t.Errorf("%v NO: time did not grow with contention: %v", kind, ts)
			}
		}
	}
	// HEAVY is CPU bound: contention barely moves it (< 15% from bg 0 to 3).
	for _, kind := range corpus.Kinds() {
		ts := grid[kind][3]
		if ts[3] > ts[0]*1.15 {
			t.Errorf("%v HEAVY: should be CPU-bound, got %v -> %v", kind, ts[0], ts[3])
		}
	}
	// The MODERATE near-tie at bg=3: LIGHT and MEDIUM within 15% of each
	// other (the paper reports 1027 vs 953, a crossover within noise).
	l3, m3 := grid[corpus.Moderate][1][3], grid[corpus.Moderate][2][3]
	if gap := math.Abs(l3-m3) / math.Min(l3, m3); gap > 0.15 {
		t.Errorf("MODERATE bg=3: LIGHT %.0f vs MEDIUM %.0f differ by %.0f%%, want near-tie", l3, m3, gap*100)
	}
}

// TestDynamicWithin22Percent pins the paper's headline claim: "our adaptive
// scheme yielded job completion times which were at most 22% worse than the
// fastest completion times with statically set compression levels."
func TestDynamicWithin22Percent(t *testing.T) {
	for _, kind := range corpus.Kinds() {
		for bg := 0; bg <= 3; bg++ {
			best := math.Inf(1)
			for lvl := 0; lvl < 4; lvl++ {
				if ct := run(t, kind, bg, StaticScheme(lvl), uint64(31+bg)).CompletionSeconds; ct < best {
					best = ct
				}
			}
			dyn := run(t, kind, bg, dynamic(t), uint64(31+bg)).CompletionSeconds
			if dyn > best*1.22 {
				t.Errorf("%v bg=%d: DYNAMIC %.0f s is %.0f%% worse than best static %.0f s",
					kind, bg, dyn, (dyn/best-1)*100, best)
			}
		}
	}
}

// TestDynamicBeatsNoCompressionUpTo4x checks the paper's throughput-gain
// claim ("improved the overall application throughput up to a factor of 4"):
// on highly compressible data under contention, DYNAMIC beats NO by >= 4x.
func TestDynamicBeatsNoCompressionUpTo4x(t *testing.T) {
	no := run(t, corpus.High, 3, StaticScheme(0), 3).CompletionSeconds
	dyn := run(t, corpus.High, 3, dynamic(t), 3).CompletionSeconds
	if no < 4*dyn {
		t.Fatalf("HIGH bg=3: NO %.0f s vs DYNAMIC %.0f s — gain %.1fx < 4x", no, dyn, no/dyn)
	}
}

// TestDynamicConvergesToLight: on HIGH data with no contention the decider
// must spend most of its time at LIGHT, the level Figure 4 shows it locking
// onto.
func TestDynamicConvergesToLight(t *testing.T) {
	res := run(t, corpus.High, 0, dynamic(t), 11)
	var total float64
	for _, s := range res.LevelSeconds {
		total += s
	}
	if frac := res.LevelSeconds[1] / total; frac < 0.7 {
		t.Fatalf("DYNAMIC spent only %.0f%% of time at LIGHT", frac*100)
	}
	if res.LevelSwitches == 0 {
		t.Fatal("no probing happened at all")
	}
}

func TestMeanLevel(t *testing.T) {
	r := TransferResult{LevelSeconds: []float64{10, 10, 0, 0}}
	if got := r.MeanLevel(); got != 0.5 {
		t.Fatalf("MeanLevel = %v, want 0.5", got)
	}
	var empty TransferResult
	if empty.MeanLevel() != 0 {
		t.Fatal("empty MeanLevel should be 0")
	}
}

func TestTraceSamples(t *testing.T) {
	var samples []WindowSample
	_, err := RunTransfer(TransferConfig{
		Platform:   KVMParavirt,
		Kind:       ConstantKind(corpus.High),
		TotalBytes: 2e9,
		Scheme:     core.MustNewDecider(core.Config{Levels: 4}),
		Profiles:   ReferenceProfiles(),
		Seed:       5,
		Trace:      func(ws WindowSample) { samples = append(samples, ws) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 3 {
		t.Fatalf("too few trace samples: %d", len(samples))
	}
	prev := 0.0
	for i, s := range samples {
		if s.Time <= prev {
			t.Fatalf("sample %d: time not increasing (%v after %v)", i, s.Time, prev)
		}
		prev = s.Time
		if s.AppMBps <= 0 {
			t.Fatalf("sample %d: non-positive app rate", i)
		}
		if s.WireMBps > s.AppMBps*1.01 {
			t.Fatalf("sample %d: wire rate above app rate on compressible data", i)
		}
		if s.Level < 0 || s.Level > 3 {
			t.Fatalf("sample %d: invalid level %d", i, s.Level)
		}
		if s.GuestCPU.Total() < 0 || s.GuestCPU.Total() > 200 {
			t.Fatalf("sample %d: implausible guest CPU %v", i, s.GuestCPU.Total())
		}
	}
}

func TestMaxSimSecondsGuard(t *testing.T) {
	_, err := RunTransfer(TransferConfig{
		Platform:      KVMParavirt,
		Kind:          ConstantKind(corpus.Low),
		TotalBytes:    fiftyGB,
		Scheme:        StaticScheme(3),
		Profiles:      ReferenceProfiles(),
		MaxSimSeconds: 10,
	})
	if err == nil {
		t.Fatal("runaway guard did not trigger")
	}
}

// ---------- Figure 1: accounting ----------

func TestAccountingGuestUnderReportsIO(t *testing.T) {
	for _, p := range []Platform{KVMFull, KVMParavirt, XenParavirt} {
		for _, op := range IOOps() {
			guest, host, vis := Accounting(p, op)
			if !vis {
				t.Fatalf("%v should expose host accounting", p)
			}
			if guest.Total() >= host.Total() {
				t.Errorf("%v/%v: guest (%.0f%%) does not under-report vs host (%.0f%%)",
					p, op, guest.Total(), host.Total())
			}
		}
	}
}

func TestAccountingXenFileReadGap(t *testing.T) {
	guest, host, _ := Accounting(XenParavirt, FileRead)
	gap := host.Total() / guest.Total()
	if gap < 10 || gap > 20 {
		t.Fatalf("XEN file-read gap %.1fx outside the paper's ~15x", gap)
	}
}

func TestAccountingKVMParavirtNetSendGap(t *testing.T) {
	guest, host, _ := Accounting(KVMParavirt, NetSend)
	if gap := host.Total() / guest.Total(); gap < 5 {
		t.Fatalf("KVM paravirt net-send gap %.1fx, paper shows a large gap", gap)
	}
}

func TestAccountingEC2HostInvisible(t *testing.T) {
	_, host, vis := Accounting(EC2, NetSend)
	if vis {
		t.Fatal("EC2 host accounting should be unobservable")
	}
	if host.Total() != 0 {
		t.Fatal("EC2 host breakdown should be zero")
	}
	guest, _, _ := Accounting(EC2, NetSend)
	if guest.STEAL < 10 {
		t.Fatal("EC2 m1.small should show significant steal time")
	}
}

func TestAccountingNativeTruthful(t *testing.T) {
	for _, op := range IOOps() {
		guest, host, _ := Accounting(Native, op)
		if guest != host {
			t.Fatalf("native %v: guest and host accounting must agree", op)
		}
	}
}

// ---------- Figures 2 and 3: throughput distributions ----------

func TestNetThroughputDistributions(t *testing.T) {
	const vol = 10e9
	cov := map[Platform]float64{}
	means := map[Platform]float64{}
	for _, p := range Platforms() {
		samples, err := NetThroughputSamples(p, vol, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(samples) != int(vol)/ChunkBytes+1 && len(samples) != int(vol)/ChunkBytes {
			t.Fatalf("%v: unexpected sample count %d", p, len(samples))
		}
		cov[p] = stats.CoefficientOfVariation(samples)
		means[p] = stats.Mean(samples)
	}
	// Native is the fastest and the most stable ("fluctuations ...
	// increased marginally compared to ... native").
	for _, p := range []Platform{KVMFull, KVMParavirt, XenParavirt, EC2} {
		if means[p] >= means[Native] {
			t.Errorf("%v mean %.0f MBit/s >= native %.0f", p, means[p], means[Native])
		}
		if cov[p] <= cov[Native] {
			t.Errorf("%v variation %.3f <= native %.3f", p, cov[p], cov[Native])
		}
	}
	// EC2 shows "heavy throughput variations" — an order of magnitude
	// above the local cloud platforms.
	if cov[EC2] < 5*cov[KVMParavirt] {
		t.Errorf("EC2 CoV %.3f not dramatically above KVM paravirt %.3f", cov[EC2], cov[KVMParavirt])
	}
	// Native saturates gigabit: mean within [850, 1000] MBit/s.
	if means[Native] < 850 || means[Native] > 1000 {
		t.Errorf("native mean %.0f MBit/s implausible for 1 GbE", means[Native])
	}
}

func TestFileWriteXenCachingAnomaly(t *testing.T) {
	const vol = 50e9
	xen, err := FileWriteSamples(XenParavirt, vol, 1)
	if err != nil {
		t.Fatal(err)
	}
	kvm, err := FileWriteSamples(KVMParavirt, vol, 1)
	if err != nil {
		t.Fatal(err)
	}
	sx, sk := stats.Summarize(xen), stats.Summarize(kvm)
	// XEN's displayed rate is bimodal: RAM-speed bursts and near-stalls.
	if sx.Max < 500 {
		t.Errorf("XEN max %.0f MB/s: cache bursts missing", sx.Max)
	}
	if sx.Min > 10 {
		t.Errorf("XEN min %.0f MB/s: flush stalls missing", sx.Min)
	}
	// The average *appears* higher than KVM's despite the same disk
	// ("the average data throughput for the XEN-based experiments also
	// spuriously appears to be higher").
	if sx.Mean <= sk.Mean {
		t.Errorf("XEN mean %.0f not spuriously above KVM %.0f", sx.Mean, sk.Mean)
	}
	// KVM file writes look like the native disk: unimodal, tens of MB/s.
	if sk.Mean < 40 || sk.Mean > 110 {
		t.Errorf("KVM file-write mean %.0f MB/s implausible", sk.Mean)
	}
	// Large portions of the 50 GB remain in the host cache afterwards.
	if res := CacheResident(XenParavirt, vol, 1); res < 1<<30 {
		t.Errorf("XEN cache residue %d bytes, want > 1 GiB", res)
	}
	if res := CacheResident(KVMParavirt, vol, 1); res != 0 {
		t.Errorf("KVM cache residue %d, want 0", res)
	}
}

// ---------- simulated /proc/stat counters ----------

func TestStatCountersAdvance(t *testing.T) {
	c := NewStatCounters(CPUBreakdown{USR: 10, SYS: 30, SIRQ: 10}, 1)
	for i := 0; i < 100; i++ {
		c.Advance(1)
	}
	text := c.ProcStat()
	if len(text) == 0 {
		t.Fatal("empty /proc/stat output")
	}
	// The text must be parseable by the metrics package format (checked
	// in internal/metrics tests); here check raw plausibility: busy share
	// close to 50%.
}

func BenchmarkRunTransfer50GB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := RunTransfer(TransferConfig{
			Platform:   KVMParavirt,
			Kind:       ConstantKind(corpus.High),
			TotalBytes: fiftyGB,
			Scheme:     core.MustNewDecider(core.Config{Levels: 4}),
			Profiles:   ReferenceProfiles(),
			Seed:       uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
