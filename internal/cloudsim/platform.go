// Package cloudsim is the virtualization substrate: a discrete-event model
// of the paper's experimental environment — physical hosts with 1 Gbit/s
// NICs and SATA disks, virtual machines under different hypervisors, the
// CPU-accounting distortion those hypervisors introduce, shared-I/O
// contention from co-located virtual machines, and the host page cache whose
// flush behaviour produces the XEN file-write anomalies of Figure 3.
//
// The paper ran on a local Eucalyptus cloud (XEN and KVM) plus Amazon EC2;
// none of those are available here, so the substrate encodes their observed
// behaviour as explicit, documented parameters calibrated against the
// paper's published numbers (see DESIGN.md, "Substitutions"). The decision
// algorithm under test — internal/core — is the real production code and is
// driven, unmodified, inside this simulation.
package cloudsim

import "fmt"

// Platform identifies a virtualization environment from Section II.
type Platform int

// The five environments of Figures 1–3.
const (
	Native      Platform = iota // unvirtualized host (baseline)
	KVMFull                     // KVM with emulated devices (e1000/scsi)
	KVMParavirt                 // KVM with virtio drivers — the evaluation platform of Section IV
	XenParavirt                 // XEN with xennet/xenblk drivers
	EC2                         // Amazon EC2 m1.small
)

// String returns the paper's label for the platform.
func (p Platform) String() string {
	switch p {
	case Native:
		return "Native"
	case KVMFull:
		return "KVM (Full V.)"
	case KVMParavirt:
		return "KVM (Parav.)"
	case XenParavirt:
		return "XEN (Parav.)"
	case EC2:
		return "Amazon EC2"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// Platforms lists all platforms in the paper's plotting order.
func Platforms() []Platform {
	return []Platform{Native, KVMFull, KVMParavirt, XenParavirt, EC2}
}

// IOOp is one of the four I/O operation types of Figure 1.
type IOOp int

// The four operations of Figure 1 (a)-(d).
const (
	NetSend IOOp = iota
	NetRecv
	FileWrite
	FileRead
)

// String returns the paper's label for the operation.
func (op IOOp) String() string {
	switch op {
	case NetSend:
		return "Network I/O (send)"
	case NetRecv:
		return "Network I/O (receive)"
	case FileWrite:
		return "File I/O (write)"
	case FileRead:
		return "File I/O (read)"
	default:
		return fmt.Sprintf("IOOp(%d)", int(op))
	}
}

// IOOps lists the four operations in the paper's order.
func IOOps() []IOOp { return []IOOp{NetSend, NetRecv, FileWrite, FileRead} }

// CPUBreakdown is a CPU utilization split in percent of one core, matching
// the stacked bars of Figure 1: user mode, kernel mode, hardware interrupts,
// software interrupts and (XEN/EC2 only) steal time.
type CPUBreakdown struct {
	USR   float64
	SYS   float64
	HIRQ  float64
	SIRQ  float64
	STEAL float64
}

// Total returns the summed utilization in percent.
func (c CPUBreakdown) Total() float64 { return c.USR + c.SYS + c.HIRQ + c.SIRQ + c.STEAL }

// Scale returns the breakdown with every component multiplied by f.
func (c CPUBreakdown) Scale(f float64) CPUBreakdown {
	return CPUBreakdown{c.USR * f, c.SYS * f, c.HIRQ * f, c.SIRQ * f, c.STEAL * f}
}

// Add returns the componentwise sum.
func (c CPUBreakdown) Add(o CPUBreakdown) CPUBreakdown {
	return CPUBreakdown{c.USR + o.USR, c.SYS + o.SYS, c.HIRQ + o.HIRQ, c.SIRQ + o.SIRQ, c.STEAL + o.STEAL}
}

// accountingEntry holds the ground-truth CPU cost of running one saturating
// I/O operation (as the host observes it) and the distorted view the guest's
// /proc/stat presents, both in percent of one core. Values are calibrated to
// the qualitative magnitudes of Figure 1: small guest/host gaps for KVM-full
// and XEN network send, a gap of roughly an order of magnitude for
// KVM-paravirt network send, and up to 15x for XEN file read.
type accountingEntry struct {
	guest CPUBreakdown
	host  CPUBreakdown // zero for EC2 (the paper could not observe the host)
}

// accountingTable: [platform][op].
var accountingTable = map[Platform]map[IOOp]accountingEntry{
	Native: {
		// On the native host guest==host by definition; the entry is the
		// true cost of saturating the respective device.
		NetSend:   {guest: CPUBreakdown{USR: 3, SYS: 22, HIRQ: 2, SIRQ: 10}, host: CPUBreakdown{USR: 3, SYS: 22, HIRQ: 2, SIRQ: 10}},
		NetRecv:   {guest: CPUBreakdown{USR: 3, SYS: 26, HIRQ: 3, SIRQ: 14}, host: CPUBreakdown{USR: 3, SYS: 26, HIRQ: 3, SIRQ: 14}},
		FileWrite: {guest: CPUBreakdown{USR: 2, SYS: 12, HIRQ: 1, SIRQ: 2}, host: CPUBreakdown{USR: 2, SYS: 12, HIRQ: 1, SIRQ: 2}},
		FileRead:  {guest: CPUBreakdown{USR: 2, SYS: 9, HIRQ: 1, SIRQ: 2}, host: CPUBreakdown{USR: 2, SYS: 9, HIRQ: 1, SIRQ: 2}},
	},
	KVMFull: {
		// Emulated e1000/scsi devices: the guest kernel does real work
		// (high SYS) and the host qemu process adds device emulation on
		// top; the *relative* gap is small for sends (the paper calls it
		// out as one of the small-discrepancy cases).
		NetSend:   {guest: CPUBreakdown{USR: 4, SYS: 58, HIRQ: 6, SIRQ: 16}, host: CPUBreakdown{USR: 62, SYS: 40, HIRQ: 2, SIRQ: 8}},
		NetRecv:   {guest: CPUBreakdown{USR: 4, SYS: 52, HIRQ: 8, SIRQ: 20}, host: CPUBreakdown{USR: 68, SYS: 44, HIRQ: 2, SIRQ: 10}},
		FileWrite: {guest: CPUBreakdown{USR: 2, SYS: 14, HIRQ: 2, SIRQ: 2}, host: CPUBreakdown{USR: 26, SYS: 16, HIRQ: 1, SIRQ: 2}},
		FileRead:  {guest: CPUBreakdown{USR: 2, SYS: 10, HIRQ: 2, SIRQ: 2}, host: CPUBreakdown{USR: 22, SYS: 12, HIRQ: 1, SIRQ: 2}},
	},
	KVMParavirt: {
		// virtio: the guest sees almost nothing (thin virtio queues)
		// while the host does the entire network stack's work — the
		// paper's prime example of a misleading guest display for sends
		// (gap near an order of magnitude).
		NetSend:   {guest: CPUBreakdown{USR: 2, SYS: 7, HIRQ: 1, SIRQ: 3}, host: CPUBreakdown{USR: 38, SYS: 64, HIRQ: 3, SIRQ: 18}},
		NetRecv:   {guest: CPUBreakdown{USR: 3, SYS: 16, HIRQ: 2, SIRQ: 9}, host: CPUBreakdown{USR: 42, SYS: 58, HIRQ: 3, SIRQ: 16}},
		FileWrite: {guest: CPUBreakdown{USR: 2, SYS: 8, HIRQ: 1, SIRQ: 2}, host: CPUBreakdown{USR: 20, SYS: 18, HIRQ: 1, SIRQ: 3}},
		FileRead:  {guest: CPUBreakdown{USR: 2, SYS: 6, HIRQ: 1, SIRQ: 1}, host: CPUBreakdown{USR: 18, SYS: 14, HIRQ: 1, SIRQ: 2}},
	},
	XenParavirt: {
		// XEN paravirtual drivers: dom0 performs the device work which
		// xentop partially attributes back; sends show a small gap, file
		// reads the paper's headline 15x gap.
		NetSend:   {guest: CPUBreakdown{USR: 2, SYS: 24, HIRQ: 0, SIRQ: 8, STEAL: 6}, host: CPUBreakdown{USR: 6, SYS: 34, HIRQ: 2, SIRQ: 10}},
		NetRecv:   {guest: CPUBreakdown{USR: 3, SYS: 22, HIRQ: 0, SIRQ: 10, STEAL: 8}, host: CPUBreakdown{USR: 8, SYS: 40, HIRQ: 2, SIRQ: 14}},
		FileWrite: {guest: CPUBreakdown{USR: 2, SYS: 9, HIRQ: 0, SIRQ: 1, STEAL: 3}, host: CPUBreakdown{USR: 10, SYS: 28, HIRQ: 1, SIRQ: 4}},
		FileRead:  {guest: CPUBreakdown{USR: 1, SYS: 2, HIRQ: 0, SIRQ: 0, STEAL: 0}, host: CPUBreakdown{USR: 12, SYS: 30, HIRQ: 1, SIRQ: 4}},
	},
	EC2: {
		// m1.small: heavy steal time (CPU sharing is how EC2 throttles
		// small instances); the host side is unobservable.
		NetSend:   {guest: CPUBreakdown{USR: 3, SYS: 28, HIRQ: 0, SIRQ: 9, STEAL: 28}},
		NetRecv:   {guest: CPUBreakdown{USR: 3, SYS: 26, HIRQ: 0, SIRQ: 11, STEAL: 30}},
		FileWrite: {guest: CPUBreakdown{USR: 2, SYS: 12, HIRQ: 0, SIRQ: 2, STEAL: 18}},
		FileRead:  {guest: CPUBreakdown{USR: 2, SYS: 8, HIRQ: 0, SIRQ: 2, STEAL: 14}},
	},
}

// Accounting returns the guest-displayed and host-observed CPU breakdown for
// a saturating run of op on the platform. hostVisible is false for EC2,
// where the paper "were unable to observe the CPU utilization as reported by
// the host system".
func Accounting(p Platform, op IOOp) (guest, host CPUBreakdown, hostVisible bool) {
	e, ok := accountingTable[p][op]
	if !ok {
		panic(fmt.Sprintf("cloudsim: no accounting entry for %v/%v", p, op))
	}
	return e.guest, e.host, p != EC2
}

// netParams describes a platform's network path as seen by a sender VM.
type netParams struct {
	// appMBps is the achievable application-layer throughput in MB/s for
	// a single uncontended TCP stream (wire bytes).
	appMBps float64
	// sigma is the lognormal per-window/per-chunk relative fluctuation.
	sigma float64
	// flaky enables the EC2 regime-switching process: throughput collapses
	// toward zero for short periods ("TCP/UDP throughput on Amazon EC2
	// can fluctuate rapidly between 1 GBit/s and zero").
	flaky bool
}

var netTable = map[Platform]netParams{
	// 1 Gbit/s switch: the native host reaches wire speed minus protocol
	// overhead; virtualization shaves throughput and adds variance.
	// KVMParavirt is calibrated so a NO-compression 50 GB transfer takes
	// ~569 s (Table II): 50 GB / 569 s = 87.9 MB/s.
	Native:      {appMBps: 111, sigma: 0.008},
	KVMFull:     {appMBps: 62, sigma: 0.035},
	KVMParavirt: {appMBps: 87.9, sigma: 0.02},
	XenParavirt: {appMBps: 79, sigma: 0.045},
	EC2:         {appMBps: 58, sigma: 0.35, flaky: true},
}

// diskParams describes a platform's file-write path.
type diskParams struct {
	// diskMBps is the sustained physical write throughput.
	diskMBps float64
	sigma    float64
	// hostCache enables the XEN host-page-cache anomaly of Figure 3: the
	// guest's writes land in the host's RAM at cacheMBps until dirtyLimit
	// bytes accumulate, then the host flushes and the guest observes a
	// near-stall at stallMBps.
	hostCache  bool
	cacheMBps  float64
	dirtyLimit float64 // bytes
	stallMBps  float64
}

var diskTable = map[Platform]diskParams{
	// Seagate Barracuda ES.2 (appendix): ~80-90 MB/s sequential writes.
	Native:      {diskMBps: 84, sigma: 0.06},
	KVMFull:     {diskMBps: 66, sigma: 0.12},
	KVMParavirt: {diskMBps: 74, sigma: 0.10},
	XenParavirt: {diskMBps: 72, sigma: 0.08, hostCache: true, cacheMBps: 950, dirtyLimit: 3 << 30, stallMBps: 4},
	EC2:         {diskMBps: 52, sigma: 0.22},
}

// NetShare returns the fraction of the uncontended application-layer
// bandwidth available to the observed VM's TCP stream when k co-located
// background connections compete for the host NIC. The values for k <= 3
// are calibrated from Table II's NO-compression rows (569/908/1393/1642 s);
// beyond that a smooth 1/(1+0.63k) extrapolation is used.
func NetShare(k int) float64 {
	switch {
	case k <= 0:
		return 1
	case k == 1:
		return 0.627
	case k == 2:
		return 0.408
	case k == 3:
		return 0.347
	default:
		return 1 / (1 + 0.63*float64(k))
	}
}

// CPUShare returns the fraction of guest CPU capacity that remains available
// to the observed VM when k co-located connections generate host-side I/O
// interrupt load. Calibrated so MEDIUM/HIGH in Table II degrades from 347 s
// (k=0) to ~397 s (k=3).
func CPUShare(k int) float64 {
	if k <= 0 {
		return 1
	}
	return 1 / (1 + 0.04*float64(k))
}
