package cloudsim

import (
	"errors"
	"fmt"
	"math"

	"adaptio/internal/xrand"
)

// FileTransferResult extends TransferResult with durability accounting: on
// platforms with the host-page-cache anomaly, the VM considers the job done
// while gigabytes still sit in the host's RAM. The paper calls this out as
// the obstacle that made them exclude file I/O from the evaluation ("we
// found the aggressive caching mechanisms of some virtualization
// technologies to be a major obstacle which we intend to address for future
// work") — RunFileTransfer implements that future-work experiment.
type FileTransferResult struct {
	TransferResult
	// DurableSeconds is when the last byte actually reached the physical
	// disk (>= CompletionSeconds).
	DurableSeconds float64
	// CacheResidentAtCompletion is how many wire bytes sat in the host
	// cache when the application finished writing.
	CacheResidentAtCompletion int64
}

// RunFileTransfer simulates a bulk write to the VM's virtual disk through
// the compression module, mirroring Nephele's file channels. The decision
// scheme observes the application data rate exactly as in the network case
// — which, on platforms whose host absorbs writes into its page cache,
// means it observes RAM-speed bursts alternating with flush stalls instead
// of anything related to the disk. The experiment quantifies how badly this
// distorts the rate-based decisions.
func RunFileTransfer(cfg TransferConfig) (FileTransferResult, error) {
	var res FileTransferResult
	if cfg.TotalBytes <= 0 {
		return res, errors.New("cloudsim: TotalBytes must be positive")
	}
	if cfg.Scheme == nil {
		return res, errors.New("cloudsim: nil scheme")
	}
	if cfg.Kind == nil {
		return res, errors.New("cloudsim: nil kind schedule")
	}
	if err := ValidateLadder(cfg.Profiles); err != nil {
		return res, err
	}
	if cfg.WindowSeconds <= 0 {
		cfg.WindowSeconds = 2
	}
	if cfg.MaxSimSeconds <= 0 {
		cfg.MaxSimSeconds = 48 * 3600
	}
	disk, ok := diskTable[cfg.Platform]
	if !ok {
		return res, fmt.Errorf("cloudsim: unknown platform %v", cfg.Platform)
	}

	rng := xrand.New(cfg.Seed ^ 0xF11E)
	res.LevelSeconds = make([]float64, len(cfg.Profiles))
	level := cfg.Scheme.Level()
	if level < 0 || level >= len(cfg.Profiles) {
		return res, fmt.Errorf("cloudsim: scheme starts at invalid level %d", level)
	}

	// Host page cache state (XEN model): wire bytes buffered but not yet
	// on disk. The flusher drains at disk speed continuously once dirty
	// data exists.
	var dirty float64
	var sent int64
	now := 0.0
	prevLevel := level
	for sent < cfg.TotalBytes {
		if now > cfg.MaxSimSeconds {
			return res, fmt.Errorf("cloudsim: file transfer exceeded %v simulated seconds", cfg.MaxSimSeconds)
		}
		kind := cfg.Kind(sent)
		p := cfg.Profiles[level]
		ratio := p.Ratio[kind]

		cpuSec := (1/p.CompMBps[kind] + ratio/wireCPUMBps) * rng.NoiseFactor(0.012)
		diskRate := disk.diskMBps * rng.NoiseFactor(disk.sigma) // wire MB/s to platters

		var ingestWire float64 // wire MB/s the VM's writes are accepted at
		if disk.hostCache {
			if dirty < disk.dirtyLimit {
				// Cache absorbs at RAM speed.
				ingestWire = disk.cacheMBps * rng.NoiseFactor(0.10)
			} else {
				// Writeback throttling: the guest is stalled to a
				// trickle until the flusher catches up.
				ingestWire = disk.stallMBps * rng.NoiseFactor(0.30)
			}
		} else {
			ingestWire = diskRate
		}

		appRate := 1 / math.Max(cpuSec, ratio/ingestWire)
		windowBytes := int64(appRate * 1e6 * cfg.WindowSeconds)
		if windowBytes < 1 {
			windowBytes = 1
		}
		dt := cfg.WindowSeconds
		if sent+windowBytes >= cfg.TotalBytes {
			remaining := cfg.TotalBytes - sent
			dt = float64(remaining) / (appRate * 1e6)
			windowBytes = remaining
		}
		wireBytes := float64(windowBytes) * ratio

		if disk.hostCache {
			dirty += wireBytes / 1e6 * 1e6 // bytes
			dirty -= diskRate * 1e6 * dt   // flusher drains continuously
			if dirty < 0 {
				dirty = 0
			}
		}

		sent += windowBytes
		now += dt
		res.AppBytes += windowBytes
		res.WireBytes += int64(wireBytes)
		res.LevelSeconds[level] += dt
		res.Windows++

		appMBps := float64(windowBytes) / 1e6 / dt
		if cfg.Trace != nil {
			cfg.Trace(WindowSample{
				Time:     now,
				Level:    level,
				AppMBps:  appMBps,
				WireMBps: appMBps * ratio,
				GuestCPU: senderGuestCPU(cfg.Platform, cpuSec, 0.5, appMBps, rng),
				Kind:     kind,
			})
		}
		level = cfg.Scheme.Observe(appMBps * 1e6)
		if level < 0 || level >= len(cfg.Profiles) {
			return res, fmt.Errorf("cloudsim: scheme chose invalid level %d", level)
		}
		if level != prevLevel {
			res.LevelSwitches++
			prevLevel = level
		}
	}
	res.CompletionSeconds = now
	res.CacheResidentAtCompletion = int64(dirty)
	res.DurableSeconds = now
	if dirty > 0 {
		res.DurableSeconds = now + dirty/1e6/disk.diskMBps
	}
	return res, nil
}
