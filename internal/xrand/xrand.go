// Package xrand is a tiny deterministic random number generator (splitmix64)
// with the distributions the cloud simulator needs. It exists instead of
// math/rand so that experiment outputs are bit-reproducible across Go
// releases: the experiments are regression-tested against the paper's
// qualitative results, and a silently reshuffled stream would turn those
// tests flaky.
package xrand

import "math"

// RNG is a splitmix64 generator. The zero value is a valid generator seeded
// with 0; prefer New.
type RNG struct{ state uint64 }

// New returns a generator for the given seed.
func New(seed uint64) *RNG { return &RNG{state: seed ^ 0x9E3779B97F4A7C15} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns exp(N(mu, sigma)). With mu = -sigma^2/2 the mean is 1,
// which is how the simulator applies multiplicative throughput noise without
// biasing the mean rate.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// NoiseFactor returns a mean-1 multiplicative lognormal noise factor with
// the given sigma.
func (r *RNG) NoiseFactor(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return r.LogNormal(-sigma*sigma/2, sigma)
}

// Fork derives an independent generator; useful to give each simulated
// entity its own stream so adding one entity does not perturb the others.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}
