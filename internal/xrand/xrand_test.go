package xrand_test

import (
	"math"
	"testing"

	"adaptio/internal/xrand"
)

func TestDeterminism(t *testing.T) {
	a, b := xrand.New(7), xrand.New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := xrand.New(8)
	if a.Uint64() == c.Uint64() {
		t.Fatal("different seeds collided immediately")
	}
}

func TestFloat64Range(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := xrand.New(2)
	const n = 200000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		buckets[int(f*10)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > n/10*0.05 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntn(t *testing.T) {
	r := xrand.New(3)
	seen := make([]bool, 7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("value %d never produced", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := xrand.New(4)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("norm variance = %v", variance)
	}
}

func TestNoiseFactorMeanOne(t *testing.T) {
	r := xrand.New(5)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		f := r.NoiseFactor(0.3)
		if f <= 0 {
			t.Fatalf("noise factor non-positive: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Fatalf("noise factor mean = %v, want ~1", mean)
	}
	if r.NoiseFactor(0) != 1 {
		t.Fatal("sigma=0 should give exactly 1")
	}
}

func TestFork(t *testing.T) {
	r := xrand.New(6)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams collided immediately")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r xrand.RNG
	_ = r.Uint64() // must not panic
}
