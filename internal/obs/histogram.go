package obs

import (
	"math"
	"sync/atomic"
)

// DefaultBucketCount sizes DefaultBuckets and ExpBuckets' usual spans.
const DefaultBucketCount = 24

// DefaultBuckets covers [1, ~8.4e6) in powers of two — a reasonable span
// for millisecond durations, block counts, and MB-scale rates.
var DefaultBuckets = ExpBuckets(1, 2, DefaultBucketCount)

// ExpBuckets returns n ascending bucket upper bounds starting at start and
// growing by factor: {start, start*factor, ...}.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("obs: invalid exponential bucket spec")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n ascending bucket upper bounds {start, start+width,
// ...}.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("obs: invalid linear bucket spec")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// Histogram is a bounded histogram over fixed ascending bucket upper
// bounds. Observe is lock-free and allocation-free; quantiles are estimated
// from the bucket counts by linear interpolation inside the bucket that
// crosses the requested rank. Observations above the last bound land in an
// overflow bucket whose quantile estimate saturates at the last bound.
type Histogram struct {
	bounds []float64       // ascending upper bounds, immutable after creation
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// NewHistogram creates an unregistered histogram (nil bounds mean
// DefaultBuckets). Prefer Scope.Histogram for registered metrics.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; bucket len(bounds) is
	// overflow. Inlined (no sort.SearchFloat64s) to keep the hot path
	// free of interface calls.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts.
// With no observations it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Snapshot the counts; a concurrent Observe skews the estimate by at
	// most its own weight, which is fine for monitoring.
	total := int64(0)
	snap := make([]uint64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
		total += int64(snap[i])
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range snap {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(snap)-1 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // overflow saturates
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + (upper-lower)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) appendJSON(dst []byte) []byte {
	dst = append(dst, `{"count":`...)
	dst = appendInt(dst, h.Count())
	dst = append(dst, `,"sum":`...)
	dst = appendFloat(dst, h.Sum())
	dst = append(dst, `,"mean":`...)
	dst = appendFloat(dst, h.Mean())
	dst = append(dst, `,"p50":`...)
	dst = appendFloat(dst, h.Quantile(0.50))
	dst = append(dst, `,"p95":`...)
	dst = appendFloat(dst, h.Quantile(0.95))
	dst = append(dst, `,"p99":`...)
	dst = appendFloat(dst, h.Quantile(0.99))
	dst = append(dst, '}')
	return dst
}
