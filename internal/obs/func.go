package obs

// IntFuncMetric exposes a derived int64 value (e.g. "buffers in use" =
// gets - releases) computed at snapshot time.
type IntFuncMetric struct{ fn func() int64 }

// Value evaluates the function.
func (m *IntFuncMetric) Value() int64 { return m.fn() }

func (m *IntFuncMetric) appendJSON(dst []byte) []byte {
	return appendInt(dst, m.fn())
}

// FloatFuncMetric exposes a derived float64 value (e.g. a compression
// ratio) computed at snapshot time.
type FloatFuncMetric struct{ fn func() float64 }

// Value evaluates the function.
func (m *FloatFuncMetric) Value() float64 { return m.fn() }

func (m *FloatFuncMetric) appendJSON(dst []byte) []byte {
	return appendFloat(dst, m.fn())
}

// IntFunc registers a derived int64 metric under the scope's prefix + name.
// fn must be safe for concurrent calls; it runs at snapshot time.
func (s *Scope) IntFunc(name string, fn func() int64) *IntFuncMetric {
	m := &IntFuncMetric{fn: fn}
	if s == nil {
		return m
	}
	return attach(s.reg, s.prefix+"."+name, m)
}

// FloatFunc registers a derived float64 metric under the scope's prefix +
// name. fn must be safe for concurrent calls; it runs at snapshot time.
func (s *Scope) FloatFunc(name string, fn func() float64) *FloatFuncMetric {
	m := &FloatFuncMetric{fn: fn}
	if s == nil {
		return m
	}
	return attach(s.reg, s.prefix+"."+name, m)
}
