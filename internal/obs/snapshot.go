package obs

import (
	"expvar"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Snapshot renders the registry as deterministic JSON: one flat object with
// metric names as keys, sorted lexicographically. Counters and gauges
// render as numbers, histograms as {count,sum,mean,p50,p95,p99} objects,
// event logs as arrays of {seq,time,kind,detail}. The encoding is
// hand-rolled so two snapshots of identical state are byte-identical
// (stable key order, stable float formatting) — the property the golden
// tests pin.
func (r *Registry) Snapshot() []byte {
	if r == nil {
		return []byte("{}")
	}
	names := r.Names()
	dst := make([]byte, 0, 64+64*len(names))
	dst = append(dst, '{')
	for i, name := range names {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendString(dst, name)
		dst = append(dst, ':')
		dst = r.Get(name).appendJSON(dst)
	}
	dst = append(dst, '}')
	return dst
}

// RenderText formats the registry as a human-readable report: one
// "name value" line per metric, sorted by name, values in the same
// deterministic JSON encoding the snapshot uses. CLIs print it as an
// end-of-run summary.
func (r *Registry) RenderText() string {
	if r == nil {
		return ""
	}
	var dst []byte
	for _, name := range r.Names() {
		dst = append(dst, name...)
		dst = append(dst, ' ')
		dst = r.Get(name).appendJSON(dst)
		dst = append(dst, '\n')
	}
	return string(dst)
}

// Handler returns an http.Handler serving the JSON snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(r.Snapshot())
	})
}

// expvarMu serializes PublishExpvar: expvar.Publish panics on duplicate
// names, so re-publishing the same registry name must be idempotent.
var expvarMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name, so the
// snapshot also appears on the standard /debug/vars page next to the
// runtime's memstats. Publishing the same name twice is a no-op.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		return rawJSON(r.Snapshot())
	}))
}

// rawJSON makes a pre-encoded snapshot pass through expvar's
// encoding/json marshalling verbatim.
type rawJSON []byte

func (j rawJSON) MarshalJSON() ([]byte, error) { return j, nil }

// ListenAndServe serves the registry's snapshot at /metrics (and /) plus
// the standard expvar page at /debug/vars on addr. It blocks like
// http.ListenAndServe; CLIs run it in a goroutine.
func ListenAndServe(addr string, r *Registry) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/", r.Handler())
	return http.ListenAndServe(addr, mux)
}

// ---------- deterministic JSON helpers ----------

func appendInt(dst []byte, v int64) []byte {
	return strconv.AppendInt(dst, v, 10)
}

// appendFloat renders floats with strconv's shortest 'g' representation;
// integral values render without an exponent where possible, matching what
// encoding/json produces, so the output stays both stable and familiar.
func appendFloat(dst []byte, v float64) []byte {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	fmtByte := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		fmtByte = 'e'
	}
	return strconv.AppendFloat(dst, v, fmtByte, -1, 64)
}

// appendString appends a JSON string literal. Metric names and event
// payloads are ASCII in practice; the escaper still handles control
// characters, quotes and invalid UTF-8 safely.
func appendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
			i++
		case c == '\n':
			dst = append(dst, '\\', 'n')
			i++
		case c == '\r':
			dst = append(dst, '\\', 'r')
			i++
		case c == '\t':
			dst = append(dst, '\\', 't')
			i++
		case c < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
			i++
		case c < utf8.RuneSelf:
			dst = append(dst, c)
			i++
		default:
			r, size := utf8.DecodeRuneInString(s[i:])
			if r == utf8.RuneError && size == 1 {
				dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
				i++
				continue
			}
			dst = append(dst, s[i:i+size]...)
			i += size
		}
	}
	return append(dst, '"')
}

func hexDigit(b byte) byte {
	if b < 10 {
		return '0' + b
	}
	return 'a' + b - 10
}
