package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCompare checks got against testdata/<name>, rewriting the file when
// -update is set.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("output differs from %s (run with -update after intentional changes)\ngot:  %s\nwant: %s",
			path, got, want)
	}
}

// goldenRegistry builds a registry with one metric of every kind and fully
// deterministic contents (fixed clock, fixed observations).
func goldenRegistry() *Registry {
	reg := NewRegistry()
	w := reg.Scope("stream").Scope("writer")
	w.Counter("app_bytes").Add(1 << 20)
	w.Counter("wire_bytes").Add(300 << 10)
	w.CounterFamily("app_bytes", "level").With("1").Add(1 << 20)
	w.FloatFunc("ratio", func() float64 { return 0.29296875 })

	tn := reg.Scope("tunnel")
	tn.Scope("conns").Gauge("active").Set(2)
	tn.Scope("dial").Counter("retries").Add(3)

	h := w.Histogram("window_rate", ExpBuckets(1e3, 2, 8))
	for _, v := range []float64{1500, 3000, 3000, 48000, 1e9} {
		h.Observe(v)
	}

	l := w.EventLog("decisions", 4)
	base := time.Date(2026, 2, 3, 4, 5, 6, 700000000, time.UTC)
	n := 0
	l.SetNow(func() time.Time {
		n++
		return base.Add(time.Duration(n) * 2 * time.Second)
	})
	l.Add("probe", "level 0 -> 1 rate 52428800 B/s prev 52428800 B/s bck[0]=0")
	l.Add("reward", "level 1 -> 1 rate 62914560 B/s prev 52428800 B/s bck[1]=1")
	l.Add("revert", "level 1 -> 0 rate 41943040 B/s prev 62914560 B/s bck[1]=0")
	return reg
}

// TestSnapshotGolden pins the exact bytes of the JSON snapshot: key order,
// float formatting, histogram layout, event rendering. Any encoding change
// must be deliberate (-update) because external scrapers parse this.
func TestSnapshotGolden(t *testing.T) {
	reg := goldenRegistry()
	goldenCompare(t, "snapshot.golden", reg.Snapshot())
}

// TestRenderTextGolden pins the human-readable summary the CLIs print.
func TestRenderTextGolden(t *testing.T) {
	reg := goldenRegistry()
	goldenCompare(t, "rendertext.golden", []byte(reg.RenderText()))
}
