package obs

import "testing"

// The data plane increments counters on every block and observes the window
// rate histogram on every decision window; any allocation there is GC churn
// that distorts the very signal the paper's algorithm reacts to. These gates
// pin the hot-path operations at zero allocations.
func TestHotPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("alloc")
	c := s.Counter("counter")
	g := s.Gauge("gauge")
	h := s.Histogram("hist", nil)

	for name, fn := range map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Counter.Value":     func() { _ = c.Value() },
		"Gauge.Set":         func() { g.Set(9) },
		"Gauge.Add":         func() { g.Add(-1) },
		"Gauge.SetMax":      func() { g.SetMax(12) },
		"Histogram.Observe": func() { h.Observe(4096) },
	} {
		if avg := testing.AllocsPerRun(200, fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", name, avg)
		}
	}

	// Unregistered (nil-scope) metrics share the same hot path and must be
	// equally free.
	var ns *Scope
	nc := ns.Counter("c")
	if avg := testing.AllocsPerRun(200, func() { nc.Inc() }); avg != 0 {
		t.Errorf("nil-scope Counter.Inc allocates %.1f times per op, want 0", avg)
	}
}
