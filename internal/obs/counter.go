package obs

import (
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. Inc and Add are lock-free
// and allocation-free (proven by an AllocsPerRun gate in alloc_test.go), so
// they are safe on the per-block data-plane hot path.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are a programming error but are not checked
// on the hot path; use a Gauge for values that go down.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) appendJSON(dst []byte) []byte {
	return strconv.AppendInt(dst, c.v.Load(), 10)
}

// Gauge is an instantaneous level: it can move both ways. All operations
// are lock-free and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) appendJSON(dst []byte) []byte {
	return strconv.AppendInt(dst, g.v.Load(), 10)
}
