package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	for _, tc := range []struct {
		set  int64
		want int64
	}{
		{10, 10}, // raises
		{5, 10},  // lower value is a no-op
		{10, 10}, // equal value is a no-op
		{11, 11}, // raises again
	} {
		g.SetMax(tc.set)
		if got := g.Value(); got != tc.want {
			t.Fatalf("after SetMax(%d): gauge = %d, want %d", tc.set, got, tc.want)
		}
	}
}

func TestScopeNaming(t *testing.T) {
	reg := NewRegistry()
	c := reg.Scope("stream").Scope("writer").Counter("level_switches")
	c.Inc()
	if got := reg.Get("stream.writer.level_switches"); got != Metric(c) {
		t.Fatalf("registry lookup returned %v, want the registered counter", got)
	}
	names := reg.Names()
	if len(names) != 1 || names[0] != "stream.writer.level_switches" {
		t.Fatalf("names = %v", names)
	}
}

func TestNilScopeIsFunctional(t *testing.T) {
	var s *Scope
	// Every constructor on a nil scope must return a usable metric.
	s.Counter("c").Inc()
	s.Gauge("g").Set(1)
	s.Histogram("h", nil).Observe(1)
	s.EventLog("e", 0).Add("k", "d")
	s.IntFunc("i", func() int64 { return 1 })
	s.FloatFunc("f", func() float64 { return 1 })
	s.CounterFamily("fam", "label").With("x").Inc()
	if s.Scope("child") != nil {
		t.Fatal("child of nil scope should be nil")
	}
	if s.Name() != "" || s.Registry() != nil {
		t.Fatal("nil scope identity accessors should be zero")
	}
}

func TestAttachSharesSameKind(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("tunnel")
	a := s.Counter("conns")
	b := s.Counter("conns")
	if a != b {
		t.Fatal("same name + same kind must return the existing counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("shared counter does not share state")
	}
}

func TestAttachPanicsOnKindMismatch(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("x")
	s.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	s.Gauge("m")
}

func TestCounterFamilyLabels(t *testing.T) {
	reg := NewRegistry()
	fam := reg.Scope("stream").CounterFamily("wire_bytes", "level")
	fam.With("0").Add(10)
	fam.With("1").Add(20)
	if got := fam.With("0"); got.Value() != 10 {
		t.Fatalf("family member 0 = %d, want 10", got.Value())
	}
	want := []string{"stream.wire_bytes{level=0}", "stream.wire_bytes{level=1}"}
	names := reg.Names()
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("names = %v, want %v", names, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // bounds 10..100
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 5050 {
		t.Fatalf("sum = %v", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v", got)
	}
	// 10 observations per bucket: the q-quantile should land within one
	// bucket width of the exact order statistic.
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want-10 || got > tc.want+10 {
			t.Errorf("q%.0f = %v, want within one bucket of %v", tc.q*100, got, tc.want)
		}
	}
}

func TestHistogramOverflowSaturates(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want saturation at last bound 2", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	if got := h.Mean(); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}

func TestBucketSpecValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"exp n<1":        func() { ExpBuckets(1, 2, 0) },
		"exp start<=0":   func() { ExpBuckets(0, 2, 4) },
		"exp factor<=1":  func() { ExpBuckets(1, 1, 4) },
		"linear n<1":     func() { LinearBuckets(0, 1, 0) },
		"linear width<0": func() { LinearBuckets(0, -1, 4) },
		"not ascending":  func() { NewHistogram([]float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3)
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	i := 0
	l.SetNow(func() time.Time {
		i++
		return base.Add(time.Duration(i) * time.Second)
	})
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		l.Add(k, "detail "+k)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", l.Len())
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	events := l.Events()
	wantKinds := []string{"c", "d", "e"}
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind = %q, want %q (oldest first, ring evicted)", i, e.Kind, wantKinds[i])
		}
		if e.Seq != uint64(i+3) {
			t.Fatalf("event %d seq = %d, want %d (seq survives eviction)", i, e.Seq, i+3)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("app")
	s.Counter("b").Add(2)
	s.Counter("a").Add(1)
	s.Gauge("g").Set(-7)
	one := string(reg.Snapshot())
	two := string(reg.Snapshot())
	if one != two {
		t.Fatalf("snapshots of identical state differ:\n%s\n%s", one, two)
	}
	// Keys sorted lexicographically regardless of registration order.
	if !strings.Contains(one, `"app.a":1,"app.b":2`) {
		t.Fatalf("snapshot keys not sorted: %s", one)
	}
}

func TestNilRegistrySafety(t *testing.T) {
	var r *Registry
	if r.Scope("x") != nil {
		t.Fatal("nil registry scope should be nil")
	}
	if got := string(r.Snapshot()); got != "{}" {
		t.Fatalf("nil registry snapshot = %q", got)
	}
	if r.Names() != nil || r.Get("x") != nil {
		t.Fatal("nil registry lookups should be zero")
	}
	if r.RenderText() != "" {
		t.Fatal("nil registry RenderText should be empty")
	}
}

func TestRenderText(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("a").Counter("c").Add(3)
	reg.Scope("a").Gauge("g").Set(4)
	got := reg.RenderText()
	want := "a.c 3\na.g 4\n"
	if got != want {
		t.Fatalf("RenderText = %q, want %q", got, want)
	}
}

func TestFuncMetrics(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("derived")
	n := int64(0)
	im := s.IntFunc("i", func() int64 { return n })
	fm := s.FloatFunc("f", func() float64 { return float64(n) / 2 })
	n = 8
	if im.Value() != 8 || fm.Value() != 4 {
		t.Fatalf("func metrics = %d, %v", im.Value(), fm.Value())
	}
	snap := string(reg.Snapshot())
	if !strings.Contains(snap, `"derived.i":8`) || !strings.Contains(snap, `"derived.f":4`) {
		t.Fatalf("snapshot missing derived values: %s", snap)
	}
}
