package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestFamilySnapshotDeterministicUnderConcurrentRegistration pins the
// property the coord.* metrics depend on: labeled family members minted
// from many goroutines in arbitrary interleavings must produce exactly the
// same snapshot bytes as the same members registered sequentially in any
// other order — rendering sorts by name, never by registration time — and
// scraping mid-registration must be safe. Run under -race in CI.
func TestFamilySnapshotDeterministicUnderConcurrentRegistration(t *testing.T) {
	const (
		workers = 8
		iters   = 200 // divisible by len(levels) and len(tenants)
	)
	levels := []string{"0", "1", "2", "3"}
	tenants := []string{"gold", "silver"}

	reg := NewRegistry()
	scope := reg.Scope("coord")
	switches := scope.CounterFamily("level.switches", "level")
	goodput := scope.CounterFamily("goodput.bytes", "tenant")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker starts the cycle at its own offset, so first
			// registration of any given member can fall to any worker.
			for i := 0; i < iters; i++ {
				switches.With(levels[(w+i)%len(levels)]).Inc()
				goodput.With(tenants[(w+i)%len(tenants)]).Add(3)
				if i%50 == 0 {
					// Scrapes racing registration must see a valid
					// snapshot (checked for data races, not content:
					// mid-flight totals are unordered).
					_ = reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	// The same members built sequentially, in reverse order, with the
	// totals the concurrent run must have reached: iters/len evenly
	// distributes every worker's cycle across the members.
	want := NewRegistry()
	ws := want.Scope("coord")
	wantGoodput := ws.CounterFamily("goodput.bytes", "tenant")
	wantSwitches := ws.CounterFamily("level.switches", "level")
	for i := len(tenants) - 1; i >= 0; i-- {
		wantGoodput.With(tenants[i]).Add(3 * workers * iters / int64(len(tenants)))
	}
	for i := len(levels) - 1; i >= 0; i-- {
		wantSwitches.With(levels[i]).Add(workers * iters / int64(len(levels)))
	}

	if got, exp := reg.Snapshot(), want.Snapshot(); !bytes.Equal(got, exp) {
		t.Fatalf("concurrent registration changed the snapshot:\ngot:  %s\nwant: %s", got, exp)
	}
	if got, exp := reg.RenderText(), want.RenderText(); got != exp {
		t.Fatalf("concurrent registration changed the text rendering:\ngot:  %s\nwant: %s", got, exp)
	}
	// And the bytes themselves are pinned: family encoding is part of the
	// scrape contract, same as the main snapshot golden.
	goldenCompare(t, "family_concurrent.golden", reg.Snapshot())
}
