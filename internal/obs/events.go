package obs

import (
	"sync"
	"time"
)

// DefaultEventCap bounds an EventLog when no capacity is given.
const DefaultEventCap = 256

// Event is one entry of an EventLog: a controller decision, a state
// transition, a lifecycle marker. Seq increases monotonically per log and
// survives ring-buffer eviction, so consumers can detect dropped events.
type Event struct {
	// Seq is the 1-based position of the event in the log's history.
	Seq uint64
	// Time is the wall-clock instant the event was appended.
	Time time.Time
	// Kind classifies the event ("probe", "revert", "task_done", ...).
	Kind string
	// Detail is a human-readable free-form payload.
	Detail string
}

// EventLog is a bounded ring buffer of events. Appends are O(1) and evict
// the oldest entry once the capacity is reached. Safe for concurrent use.
type EventLog struct {
	mu    sync.Mutex
	buf   []Event // ring storage, len == cap once full
	start int     // index of the oldest event
	size  int
	seq   uint64
	now   func() time.Time
}

// NewEventLog creates an unregistered event log with the given capacity
// (<=0 means DefaultEventCap). Prefer Scope.EventLog for registered logs.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{buf: make([]Event, 0, capacity), now: time.Now}
}

// SetNow overrides the log's clock; tests use it to make snapshots
// deterministic. Not intended for production callers.
func (l *EventLog) SetNow(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Add appends an event with the given kind and detail.
func (l *EventLog) Add(kind, detail string) {
	l.mu.Lock()
	l.seq++
	e := Event{Seq: l.seq, Time: l.now(), Kind: kind, Detail: detail}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % len(l.buf)
	}
	l.size = len(l.buf)
	l.mu.Unlock()
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Total returns the number of events ever appended (>= Len once the ring
// has wrapped).
func (l *EventLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.size)
	for i := 0; i < l.size; i++ {
		out = append(out, l.buf[(l.start+i)%len(l.buf)])
	}
	return out
}

func (l *EventLog) appendJSON(dst []byte) []byte {
	events := l.Events()
	dst = append(dst, '[')
	for i, e := range events {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"seq":`...)
		dst = appendInt(dst, int64(e.Seq))
		dst = append(dst, `,"time":`...)
		dst = appendString(dst, e.Time.UTC().Format(time.RFC3339Nano))
		dst = append(dst, `,"kind":`...)
		dst = appendString(dst, e.Kind)
		dst = append(dst, `,"detail":`...)
		dst = appendString(dst, e.Detail)
		dst = append(dst, '}')
	}
	dst = append(dst, ']')
	return dst
}
