// Package obs is the data plane's unified observability layer: a
// dependency-free, race-safe metrics registry for the signals the paper
// argues are the only trustworthy ones in a shared-I/O cloud — the
// application's own internal counters (Section II shows every OS-provided
// metric can be skewed by an order of magnitude inside a VM).
//
// The package provides four metric kinds:
//
//   - Counter: a monotonically increasing atomic int64. Increments on the
//     stream hot path are lock-free and allocation-free.
//   - Gauge: an atomic int64 level (in-use buffers, active connections),
//     with Set/Add/SetMax.
//   - Histogram: a bounded histogram over fixed bucket boundaries with
//     lock-free Observe and p50/p95/p99 estimation from the buckets.
//   - EventLog: a bounded ring buffer of timestamped events, used for
//     controller decisions (probe/revert/backoff transitions).
//
// Metrics live in a Registry under hierarchical dotted names
// ("stream.writer.level_switches", "tunnel.dial.retries",
// "block.arena.in_use"). Components never concatenate strings on hot
// paths: they resolve their metrics once at setup time through a Scope and
// hold the returned pointers.
//
// A Registry renders a deterministic JSON snapshot (keys sorted, stable
// float formatting — see snapshot.go), publishes itself under
// expvar-compatible names, and serves the snapshot over HTTP
// (actunnel/acsend/acrecv -metrics-addr).
//
// # Nil safety
//
// Every constructor on *Scope accepts a nil receiver and returns a fully
// functional, unregistered metric. Instrumented components therefore never
// branch on "is observability configured": they resolve metrics
// unconditionally and the zero-configuration case costs one unreachable
// atomic per operation.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Registry holds a flat namespace of metrics under dotted hierarchical
// names. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]Metric
}

// Metric is implemented by every registrable metric kind. appendJSON
// renders the metric's current value as a JSON value (deterministically:
// object keys in fixed order, floats in strconv 'g' format).
type Metric interface {
	appendJSON(dst []byte) []byte
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// Scope returns a scope rooted at name (e.g. "stream"). Scopes are cheap
// handles; components pass them down and derive sub-scopes freely.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{reg: r, prefix: name}
}

// Names returns the sorted list of registered metric names.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Get returns the metric registered under name, or nil.
func (r *Registry) Get(name string) Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.metrics[name]
}

// attach registers m under name. Registering a name twice panics unless the
// existing metric is the same kind, in which case the existing one is
// returned so two components sharing a scope see the same counter.
func attach[M Metric](r *Registry, name string, m M) M {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.metrics[name]; ok {
		if pm, ok := prev.(M); ok {
			return pm
		}
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind (%T vs %T)", name, prev, m))
	}
	r.metrics[name] = m
	return m
}

// Scope derives hierarchical metric names. A nil *Scope is valid: every
// constructor returns an unregistered but functional metric.
type Scope struct {
	reg    *Registry
	prefix string
}

// Name returns the scope's full prefix ("stream.writer").
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.prefix
}

// Registry returns the underlying registry (nil for a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Scope derives a child scope: s("stream").Scope("writer") names metrics
// "stream.writer.*".
func (s *Scope) Scope(name string) *Scope {
	if s == nil {
		return nil
	}
	return &Scope{reg: s.reg, prefix: s.prefix + "." + name}
}

// Counter returns the counter registered under the scope's prefix + name,
// creating it if needed.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return &Counter{}
	}
	return attach(s.reg, s.prefix+"."+name, &Counter{})
}

// Gauge returns the gauge registered under the scope's prefix + name,
// creating it if needed.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return &Gauge{}
	}
	return attach(s.reg, s.prefix+"."+name, &Gauge{})
}

// Histogram returns the histogram registered under the scope's prefix +
// name, creating it with the given ascending bucket upper bounds. Nil
// bounds mean DefaultBuckets.
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return newHistogram(bounds)
	}
	return attach(s.reg, s.prefix+"."+name, newHistogram(bounds))
}

// EventLog returns the event log registered under the scope's prefix +
// name, creating it with the given capacity (<=0 means DefaultEventCap).
func (s *Scope) EventLog(name string, capacity int) *EventLog {
	if s == nil {
		return NewEventLog(capacity)
	}
	return attach(s.reg, s.prefix+"."+name, NewEventLog(capacity))
}

// CounterFamily returns a labeled counter family: a set of counters sharing
// one name, distinguished by a label value ("stream.writer.wire_bytes"
// labeled by level). Family members register as name{label=value}.
func (s *Scope) CounterFamily(name, label string) *CounterFamily {
	return &CounterFamily{scope: s, name: name, label: label}
}

// CounterFamily mints labeled counters. With is not for hot paths: resolve
// members once at setup time.
type CounterFamily struct {
	scope *Scope
	name  string
	label string

	mu      sync.Mutex
	members map[string]*Counter
}

// With returns the family member for the given label value, creating it if
// needed.
func (f *CounterFamily) With(value string) *Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.members[value]; ok {
		return c
	}
	var c *Counter
	if f.scope == nil {
		c = &Counter{}
	} else {
		c = attach(f.scope.reg, fmt.Sprintf("%s.%s{%s=%s}", f.scope.prefix, f.name, f.label, value), &Counter{})
	}
	if f.members == nil {
		f.members = make(map[string]*Counter)
	}
	f.members[value] = c
	return c
}
