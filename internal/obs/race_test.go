package obs

import (
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentHammer drives every metric kind plus the snapshot path from
// many goroutines at once. Run under -race (the CI obs job and `make
// test-obs` do) it proves the registry is race-clean; run without it, the
// final counts prove no increments are lost.
func TestConcurrentHammer(t *testing.T) {
	const (
		workers = 16
		iters   = 2000
	)
	reg := NewRegistry()
	s := reg.Scope("hammer")
	c := s.Counter("counter")
	g := s.Gauge("gauge")
	h := s.Histogram("hist", nil)
	l := s.EventLog("events", 64)
	fam := s.CounterFamily("fam", "worker")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolving metrics concurrently must also be safe: half the
			// workers re-attach by name instead of using the shared pointer.
			mc := c
			if w%2 == 0 {
				mc = s.Counter("counter")
			}
			fc := fam.With(strconv.Itoa(w % 4))
			for i := 0; i < iters; i++ {
				mc.Inc()
				g.Add(1)
				g.SetMax(int64(i))
				h.Observe(float64(i % 128))
				fc.Inc()
				if i%256 == 0 {
					l.Add("tick", "worker tick")
				}
			}
		}(w)
	}
	// Snapshot and quantile readers run concurrently with the writers.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		for i := 0; i < 200; i++ {
			_ = reg.Snapshot()
			_ = h.Quantile(0.95)
			_ = l.Events()
			_ = reg.Names()
		}
	}()
	wg.Wait()
	<-readDone

	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d (lost increments)", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	famTotal := int64(0)
	for w := 0; w < 4; w++ {
		famTotal += fam.With(strconv.Itoa(w)).Value()
	}
	if famTotal != workers*iters {
		t.Fatalf("family total = %d, want %d", famTotal, workers*iters)
	}
	if got := g.Value(); got < int64(iters-1) {
		t.Fatalf("gauge = %d, want >= %d (SetMax floor)", got, iters-1)
	}
}

// TestConcurrentAttach races attach() on one name from many goroutines: all
// callers must end up with the same underlying counter.
func TestConcurrentAttach(t *testing.T) {
	reg := NewRegistry()
	s := reg.Scope("x")
	var wg sync.WaitGroup
	counters := make([]*Counter, 16)
	for i := range counters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = s.Counter("shared")
			counters[i].Inc()
		}(i)
	}
	wg.Wait()
	for i, c := range counters {
		if c != counters[0] {
			t.Fatalf("goroutine %d attached a different counter instance", i)
		}
	}
	if got := counters[0].Value(); got != 16 {
		t.Fatalf("shared counter = %d, want 16", got)
	}
}
