// Package faultio is a deterministic fault-injection layer for I/O tests.
// It wraps io.Reader, io.Writer and net.Conn with adversarial behaviour —
// short reads, partial writes, latency spikes, mid-stream connection
// resets, stalls, truncation and bit corruption — driven entirely by a
// seeded RNG (internal/xrand), so a failing scenario replays bit-for-bit
// from its seed alone, with no wall-clock dependence in any decision.
//
// The fault model mirrors what shared cloud I/O actually does to a
// connection (the premise of the source paper): bandwidth shifts appear as
// latency spikes and short reads, noisy neighbours as stalls, and failing
// paths as resets and truncation. The chaos suite in this package drives
// seeded combinations of these faults through the writer→tunnel→reader
// stack and asserts byte-identical delivery or a bounded-time typed error.
//
// Faults split into two classes. Benign faults (short reads, partial
// writes, latency) reorder and fragment I/O but lose nothing: consumers
// must still deliver byte-identical data. Destructive faults (reset,
// stall, truncation, corruption) lose or damage data: consumers must fail
// fast with a typed error — never panic, never hang, never deliver silently
// corrupted bytes. See docs/robustness.md for the full fault model.
package faultio

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"adaptio/internal/xrand"
)

// ErrInjected is the base sentinel wrapped by every error this package
// injects. Tests distinguish injected faults from genuine bugs with
// errors.Is(err, faultio.ErrInjected).
var ErrInjected = errors.New("faultio: injected fault")

// Kind enumerates the fault classes.
type Kind int

const (
	KindNone Kind = iota
	KindShortRead
	KindPartialWrite
	KindLatency
	KindReset
	KindStall
	KindTruncate
	KindCorrupt
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindShortRead:
		return "short-read"
	case KindPartialWrite:
		return "partial-write"
	case KindLatency:
		return "latency"
	case KindReset:
		return "reset"
	case KindStall:
		return "stall"
	case KindTruncate:
		return "truncate"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is the concrete error injected for destructive faults. It wraps
// ErrInjected and implements net.Error, so consumers that special-case
// timeouts (deadline handling in the tunnel) see expired stalls as
// timeouts.
type Error struct {
	Op      string // "read" or "write"
	Kind    Kind
	timeout bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultio: injected %s during %s", e.Kind, e.Op)
}

// Unwrap makes errors.Is(err, ErrInjected) true.
func (e *Error) Unwrap() error { return ErrInjected }

// Timeout implements net.Error.
func (e *Error) Timeout() bool { return e.timeout }

// Temporary implements the legacy half of net.Error.
func (e *Error) Temporary() bool { return false }

// Config parameterizes a fault plan. Probabilities are per-operation in
// [0, 1]; byte thresholds trigger once the given number of bytes has
// crossed the wrapper in the faulted direction. The zero value injects
// nothing (a transparent wrapper).
type Config struct {
	// Seed drives every random decision. Two wrappers built from equal
	// configs behave identically. A Conn forks independent read- and
	// write-side generators from the seed, so each direction's fault
	// sequence is reproducible regardless of goroutine interleaving.
	Seed uint64

	// ShortRead is the probability that a Read asks the underlying
	// reader for only a 1..len(p)-1 byte prefix of the caller's buffer.
	// Benign: no data is lost, it just arrives in smaller pieces.
	ShortRead float64
	// PartialWrite is the probability that a Write forwards only a
	// 1..len(p)-1 byte prefix and reports the short count with a nil
	// error. Callers must notice n < len(p) and resend the tail (the
	// stream layer's writeFull does); callers that assume full writes
	// lose the tail.
	PartialWrite float64
	// Latency is the probability of sleeping before an operation.
	// MaxLatency bounds the spike; zero means 2ms. Durations are drawn
	// from the seeded RNG, so a replay sleeps the same amounts.
	Latency    float64
	MaxLatency time.Duration

	// CorruptBit is the probability that one seeded bit of the
	// transferred data is flipped (read path: in the caller's buffer
	// after reading; write path: in a private copy, never in the
	// caller's buffer). Destructive: consumers must detect it (CRC) and
	// fail typed.
	CorruptBit float64

	// ResetAfter, if > 0, fails every operation in the faulted direction
	// with a KindReset Error once that many bytes have crossed. A Conn
	// additionally closes the underlying connection so the peer observes
	// the reset, and fails its other direction too.
	ResetAfter int64
	// TruncateAfter, if > 0, ends the stream silently after that many
	// bytes: reads return io.EOF, writes report success but drop the
	// excess (bytes "lost in flight").
	TruncateAfter int64
	// StallAfter, if > 0, blocks operations once that many bytes have
	// crossed, until the wrapper is closed or its deadline expires (the
	// injected error then reports Timeout() == true).
	StallAfter int64
}

// state is the mutable core of one faulted direction: one RNG and one byte
// counter, mutex-guarded.
type state struct {
	mu     sync.Mutex
	rng    *xrand.RNG
	cfg    Config
	bytes  int64 // bytes crossed so far
	closed chan struct{}
	once   sync.Once

	// reset is shared between a Conn's two directions (a reset kills the
	// whole connection); onReset, if non-nil, runs once when it trips.
	reset   *bool
	resetMu *sync.Mutex
	onReset func()
}

func newState(cfg Config, seedSalt uint64) *state {
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 2 * time.Millisecond
	}
	var reset bool
	return &state{
		rng:     xrand.New(cfg.Seed ^ seedSalt),
		cfg:     cfg,
		closed:  make(chan struct{}),
		reset:   &reset,
		resetMu: &sync.Mutex{},
	}
}

func (s *state) close() {
	s.once.Do(func() { close(s.closed) })
}

func (s *state) isReset() bool {
	s.resetMu.Lock()
	defer s.resetMu.Unlock()
	return *s.reset
}

func (s *state) tripReset() {
	s.resetMu.Lock()
	already := *s.reset
	*s.reset = true
	cb := s.onReset
	s.resetMu.Unlock()
	if !already && cb != nil {
		cb()
	}
}

// chance draws one seeded Bernoulli trial; callers hold mu.
func (s *state) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return s.rng.Float64() < p
}

// stall blocks until close or the given deadline (zero means none) and
// returns the injected error to surface.
func (s *state) stall(op string, deadline time.Time) error {
	var expiry <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d < 0 {
			d = 0
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		expiry = timer.C
	}
	select {
	case <-s.closed:
		return &Error{Op: op, Kind: KindStall}
	case <-expiry:
		return &Error{Op: op, Kind: KindStall, timeout: true}
	}
}

// corrupt flips one seeded bit of b in place; callers hold mu.
func (s *state) corrupt(b []byte) {
	if len(b) == 0 {
		return
	}
	i := s.rng.Intn(len(b))
	b[i] ^= byte(1) << uint(s.rng.Intn(8))
}

// capAtThresholds shrinks max so byte-threshold faults trigger at their
// exact configured positions rather than mid-buffer; callers hold mu.
func (s *state) capAtThresholds(max int) int {
	for _, limit := range []int64{s.cfg.ResetAfter, s.cfg.TruncateAfter, s.cfg.StallAfter} {
		if limit > 0 && s.bytes < limit && limit-s.bytes < int64(max) {
			max = int(limit - s.bytes)
		}
	}
	return max
}

// readFaulty is the shared faulty read path; deadline bounds stalls.
func readFaulty(st *state, src io.Reader, p []byte, deadline time.Time) (int, error) {
	if len(p) == 0 {
		return src.Read(p)
	}
	st.mu.Lock()
	cfg := st.cfg
	if st.isReset() {
		st.mu.Unlock()
		return 0, &Error{Op: "read", Kind: KindReset}
	}
	if cfg.ResetAfter > 0 && st.bytes >= cfg.ResetAfter {
		st.mu.Unlock()
		st.tripReset()
		return 0, &Error{Op: "read", Kind: KindReset}
	}
	if cfg.StallAfter > 0 && st.bytes >= cfg.StallAfter {
		st.mu.Unlock()
		return 0, st.stall("read", deadline)
	}
	if cfg.TruncateAfter > 0 && st.bytes >= cfg.TruncateAfter {
		st.mu.Unlock()
		return 0, io.EOF
	}
	max := st.capAtThresholds(len(p))
	if max > 1 && st.chance(cfg.ShortRead) {
		max = 1 + st.rng.Intn(max-1)
	}
	var nap time.Duration
	if st.chance(cfg.Latency) {
		nap = time.Duration(st.rng.Float64() * float64(cfg.MaxLatency))
	}
	st.mu.Unlock()

	if nap > 0 {
		time.Sleep(nap)
	}
	n, err := src.Read(p[:max])

	st.mu.Lock()
	if n > 0 && st.chance(cfg.CorruptBit) {
		st.corrupt(p[:n])
	}
	st.bytes += int64(n)
	st.mu.Unlock()
	return n, err
}

// writeFaulty is the shared faulty write path; deadline bounds stalls.
func writeFaulty(st *state, dst io.Writer, p []byte, scratch *[]byte, deadline time.Time) (int, error) {
	if len(p) == 0 {
		return dst.Write(p)
	}
	st.mu.Lock()
	cfg := st.cfg
	if st.isReset() {
		st.mu.Unlock()
		return 0, &Error{Op: "write", Kind: KindReset}
	}
	if cfg.ResetAfter > 0 && st.bytes >= cfg.ResetAfter {
		st.mu.Unlock()
		st.tripReset()
		return 0, &Error{Op: "write", Kind: KindReset}
	}
	if cfg.StallAfter > 0 && st.bytes >= cfg.StallAfter {
		st.mu.Unlock()
		return 0, st.stall("write", deadline)
	}
	if cfg.TruncateAfter > 0 && st.bytes >= cfg.TruncateAfter {
		// Bytes vanish in flight: report success, deliver nothing.
		st.bytes += int64(len(p))
		st.mu.Unlock()
		return len(p), nil
	}

	max := st.capAtThresholds(len(p))
	if max > 1 && st.chance(cfg.PartialWrite) {
		max = 1 + st.rng.Intn(max-1)
	}
	out := p[:max]
	if st.chance(cfg.CorruptBit) {
		*scratch = append((*scratch)[:0], out...)
		st.corrupt(*scratch)
		out = *scratch
	}
	var nap time.Duration
	if st.chance(cfg.Latency) {
		nap = time.Duration(st.rng.Float64() * float64(cfg.MaxLatency))
	}
	st.mu.Unlock()

	if nap > 0 {
		time.Sleep(nap)
	}
	n, err := dst.Write(out)

	st.mu.Lock()
	st.bytes += int64(n)
	st.mu.Unlock()
	return n, err
}

// Reader wraps an io.Reader with injected faults.
type Reader struct {
	src io.Reader
	st  *state
}

// NewReader wraps src with the fault plan described by cfg.
func NewReader(src io.Reader, cfg Config) *Reader {
	return &Reader{src: src, st: newState(cfg, 'r')}
}

// Read implements io.Reader with the configured faults.
func (r *Reader) Read(p []byte) (int, error) {
	return readFaulty(r.st, r.src, p, time.Time{})
}

// Close releases any stalled operations. It does not close the underlying
// reader.
func (r *Reader) Close() error {
	r.st.close()
	return nil
}

// Writer wraps an io.Writer with injected faults.
type Writer struct {
	dst io.Writer
	st  *state
	buf []byte // scratch for corrupted copies
}

// NewWriter wraps dst with the fault plan described by cfg.
func NewWriter(dst io.Writer, cfg Config) *Writer {
	return &Writer{dst: dst, st: newState(cfg, 'w')}
}

// Write implements io.Writer with the configured faults.
func (w *Writer) Write(p []byte) (int, error) {
	return writeFaulty(w.st, w.dst, p, &w.buf, time.Time{})
}

// Close releases any stalled operations. It does not close the underlying
// writer.
func (w *Writer) Close() error {
	w.st.close()
	return nil
}
