package faultio

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"adaptio/internal/corpus"
)

func payload(n int) []byte { return corpus.Generate(corpus.Moderate, n, 1) }

func TestZeroConfigIsTransparent(t *testing.T) {
	src := payload(64 << 10)
	var sink bytes.Buffer
	w := NewWriter(&sink, Config{})
	if _, err := io.Copy(w, bytes.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(sink.Bytes()), Config{})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("transparent wrapper altered data")
	}
}

func TestShortReadsLoseNothing(t *testing.T) {
	src := payload(128 << 10)
	r := NewReader(bytes.NewReader(src), Config{Seed: 7, ShortRead: 0.9})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("short reads lost data")
	}
}

func TestPartialWritesReportShortCounts(t *testing.T) {
	src := payload(64 << 10)
	var sink bytes.Buffer
	w := NewWriter(&sink, Config{Seed: 3, PartialWrite: 0.9})
	// Caller that handles short counts: resend the tail until done.
	sawShort := false
	for off := 0; off < len(src); {
		end := off + 1024
		if end > len(src) {
			end = len(src)
		}
		n, err := w.Write(src[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if n < end-off {
			sawShort = true
		}
		off += n
	}
	if !sawShort {
		t.Fatal("no partial write was injected at p=0.9")
	}
	if !bytes.Equal(sink.Bytes(), src) {
		t.Fatal("partial writes with a correct caller lost data")
	}
}

func TestCorruptionFlipsBits(t *testing.T) {
	src := payload(32 << 10)
	r := NewReader(bytes.NewReader(src), Config{Seed: 11, CorruptBit: 0.5})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(src) {
		t.Fatalf("corruption changed length: %d != %d", len(got), len(src))
	}
	if bytes.Equal(got, src) {
		t.Fatal("no bit was flipped at p=0.5")
	}
}

func TestTruncateEndsStreamEarly(t *testing.T) {
	src := payload(32 << 10)
	r := NewReader(bytes.NewReader(src), Config{Seed: 5, TruncateAfter: 1000})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("delivered %d bytes, want exactly 1000", len(got))
	}
	if !bytes.Equal(got, src[:1000]) {
		t.Fatal("prefix before truncation was altered")
	}
}

func TestResetTripsBothDirectionsAndPeer(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, Config{Seed: 9, ResetAfter: 100})

	go io.Copy(io.Discard, b) // drain the peer
	buf := payload(4096)
	var total int
	var err error
	for {
		var n int
		n, err = fc.Write(buf)
		total += n
		if err != nil {
			break
		}
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindReset {
		t.Fatalf("got %v, want KindReset *Error", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("reset error does not wrap ErrInjected")
	}
	if total != 100 {
		t.Fatalf("reset after %d bytes, want exactly 100", total)
	}
	// The other direction fails too, and the peer observes the close.
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read after reset: %v", err)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer did not observe the reset")
	}
}

func TestStallHonorsDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, Config{Seed: 1, StallAfter: 0, TruncateAfter: 0})
	fc.rst.cfg.StallAfter = 1 // stall immediately after first byte
	go b.Write(payload(16))

	one := make([]byte, 1)
	if _, err := fc.Read(one); err != nil {
		t.Fatal(err)
	}
	fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := fc.Read(one)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stalled read returned %v, want timeout net.Error", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stall outlived deadline by far: %v", elapsed)
	}
}

func TestStallReleasedByClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, Config{Seed: 1, StallAfter: 1})
	go b.Write(payload(16))
	one := make([]byte, 1)
	if _, err := fc.Read(one); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		fc.Close()
	}()
	_, err := fc.Read(one) // no deadline: only Close can release it
	var fe *Error
	if !errors.As(err, &fe) || fe.Kind != KindStall {
		t.Fatalf("got %v, want KindStall", err)
	}
}

// TestDeterministicReplay: the same seed produces bit-identical fault
// behaviour — same delivered bytes, same error.
func TestDeterministicReplay(t *testing.T) {
	src := payload(64 << 10)
	run := func() ([]byte, error) {
		cfg := Config{Seed: 1234, ShortRead: 0.4, CorruptBit: 0.01, TruncateAfter: 50000}
		r := NewReader(bytes.NewReader(src), cfg)
		return io.ReadAll(r)
	}
	got1, err1 := run()
	got2, err2 := run()
	if !bytes.Equal(got1, got2) {
		t.Fatal("replay delivered different bytes")
	}
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("replay produced different errors: %v vs %v", err1, err2)
	}
}

// TestScenarioDeterminism: scenario derivation is a pure function of
// (seed, payload size).
func TestScenarioDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		a := ScenarioFromSeed(seed, 1<<20)
		b := ScenarioFromSeed(seed, 1<<20)
		if a != b {
			t.Fatalf("seed %d: scenarios differ: %+v vs %+v", seed, a, b)
		}
	}
}

// TestScenarioCoverage: the generator produces every profile within a
// modest seed range, so "50 seeded scenarios" really covers the model.
func TestScenarioCoverage(t *testing.T) {
	seen := map[string]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		seen[ScenarioFromSeed(seed, 1<<20).Profile] = true
	}
	for _, p := range []string{"clean", "benign-fragmented", "benign-slow", "corrupt", "reset", "truncate", "stall", "mixed"} {
		if !seen[p] {
			t.Errorf("profile %q never generated in 64 seeds", p)
		}
	}
}
