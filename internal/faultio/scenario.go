package faultio

import (
	"fmt"
	"time"

	"adaptio/internal/xrand"
)

// Scenario is one seeded chaos scenario: a fault configuration plus the
// ground truth of whether it can lose or damage data. Benign scenarios must
// deliver byte-identical payloads; destructive ones are allowed to fail,
// but only fast and typed.
type Scenario struct {
	Seed        uint64
	Profile     string
	Cfg         Config
	Destructive bool
}

// String names the scenario for test output.
func (s Scenario) String() string {
	return fmt.Sprintf("seed=%d/%s", s.Seed, s.Profile)
}

// ScenarioFromSeed derives a reproducible scenario for a transfer of
// roughly payloadBytes application bytes. The seed picks a fault profile
// and its magnitudes; byte thresholds land inside the transfer so
// mid-stream faults actually strike mid-stream. Equal (seed, payloadBytes)
// always yield the equal scenarios.
func ScenarioFromSeed(seed uint64, payloadBytes int) Scenario {
	rng := xrand.New(seed)
	// A threshold somewhere in the first ~80% of the wire stream. The
	// wire carries compressed bytes, so aim low to strike before EOF.
	threshold := func() int64 {
		if payloadBytes < 64 {
			return 1
		}
		return 1 + int64(rng.Intn(payloadBytes*4/5))
	}
	s := Scenario{Seed: seed, Cfg: Config{Seed: rng.Uint64(), MaxLatency: time.Millisecond}}
	switch rng.Intn(8) {
	case 0:
		s.Profile = "clean"
	case 1:
		s.Profile = "benign-fragmented"
		s.Cfg.ShortRead = 0.3 + 0.6*rng.Float64()
		s.Cfg.PartialWrite = 0.3 + 0.6*rng.Float64()
	case 2:
		s.Profile = "benign-slow"
		s.Cfg.ShortRead = 0.5 * rng.Float64()
		s.Cfg.PartialWrite = 0.5 * rng.Float64()
		s.Cfg.Latency = 0.05 + 0.1*rng.Float64()
	case 3:
		s.Profile = "corrupt"
		s.Cfg.CorruptBit = 0.05 + 0.3*rng.Float64()
		s.Destructive = true
	case 4:
		s.Profile = "reset"
		s.Cfg.ResetAfter = threshold()
		s.Destructive = true
	case 5:
		s.Profile = "truncate"
		s.Cfg.TruncateAfter = threshold()
		s.Destructive = true
	case 6:
		s.Profile = "stall"
		s.Cfg.StallAfter = threshold()
		s.Destructive = true
	case 7:
		s.Profile = "mixed"
		s.Cfg.ShortRead = 0.4 * rng.Float64()
		s.Cfg.PartialWrite = 0.4 * rng.Float64()
		s.Cfg.Latency = 0.05 * rng.Float64()
		switch rng.Intn(3) {
		case 0:
			s.Cfg.CorruptBit = 0.02 + 0.1*rng.Float64()
		case 1:
			s.Cfg.ResetAfter = threshold()
		case 2:
			s.Cfg.TruncateAfter = threshold()
		}
		s.Destructive = true
	}
	return s
}
