package faultio_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/faultio"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/stream"
	"adaptio/internal/tunnel"
)

// The chaos suite drives seeded fault scenarios through the compression
// stack and asserts the robustness contract from docs/robustness.md:
//
//   - benign faults (fragmentation, latency): byte-identical delivery;
//   - destructive faults (reset, stall, truncation, corruption): either
//     byte-identical delivery (the fault struck after the payload), an
//     intact prefix (truncation cut at a frame boundary — undetectable
//     without a length trailer), or a bounded-time error wrapping a typed
//     sentinel (stream.ErrBadFrame, faultio.ErrInjected, tunnel sentinels,
//     or a transport net.Error);
//   - never: a panic, a hang, or silently corrupted delivered bytes;
//   - and replaying a seed reproduces the outcome.
//
// TestChaosStream runs 32 seeds through writer→faulty wire→reader;
// TestChaosTunnel runs 24 seeds through client→entry→exit→echo over real
// TCP with a faulty wire. 56 scenarios total.

const (
	chaosStreamSeeds = 32
	chaosTunnelSeeds = 24
)

// outcome classifies one scenario run; comparable across replays.
type outcome struct {
	class     string // "identical", "prefix", "failed"
	delivered int
	sentinel  string
}

func (o outcome) String() string {
	return fmt.Sprintf("%s/%d/%s", o.class, o.delivered, o.sentinel)
}

// classifyErr names the typed sentinel err wraps, or "untyped".
func classifyErr(err error) string {
	var fe *stream.FrameError
	switch {
	case errors.As(err, &fe):
		return "ErrBadFrame"
	case errors.Is(err, stream.ErrBadFrame):
		return "ErrBadFrame"
	case errors.Is(err, faultio.ErrInjected):
		return "ErrInjected"
	case errors.Is(err, tunnel.ErrIdleTimeout):
		return "ErrIdleTimeout"
	case errors.Is(err, tunnel.ErrDial):
		return "ErrDial"
	case errors.Is(err, io.ErrClosedPipe):
		return "ClosedPipe"
	default:
		var ne net.Error
		if errors.As(err, &ne) {
			return "net.Error"
		}
		return "untyped"
	}
}

// chaosPayload derives the scenario's application payload: size and
// compressibility vary with the seed.
func chaosPayload(seed uint64) []byte {
	kind := corpus.Kind(seed % 3)
	size := 96<<10 + int(seed%7)*32<<10 // 96 KB .. 288 KB
	return corpus.Generate(kind, size, seed)
}

// runStreamScenario pushes payload through stream.Writer → faulty wire →
// stream.Reader (ParallelReader on odd seeds) with faults on the write side
// for even seeds and on the read side for odd ones. It enforces a bounded
// runtime: a stalled transfer is released after stallRelease and must then
// surface the stall error.
func runStreamScenario(t *testing.T, seed uint64, payload []byte) outcome {
	t.Helper()
	sc := faultio.ScenarioFromSeed(seed, len(payload))
	faultWriteSide := seed%2 == 0

	type result struct {
		got []byte
		err error
	}
	resCh := make(chan result, 1)

	// Wrappers are visible to the watchdog so it can release a stall on
	// either side. The write-side wrapper exists before the transfer
	// starts; the read-side one is published once writing completes.
	var wireBuf bytes.Buffer
	var wireW io.Writer = &wireBuf
	var fw *faultio.Writer
	if faultWriteSide {
		fw = faultio.NewWriter(&wireBuf, sc.Cfg)
		wireW = fw
	}
	var frMu sync.Mutex
	var fr *faultio.Reader
	release := func() {
		if fw != nil {
			fw.Close()
		}
		frMu.Lock()
		r := fr
		frMu.Unlock()
		if r != nil {
			r.Close()
		}
	}

	go func() {
		w, err := stream.NewWriter(wireW, stream.WriterConfig{
			Static: true, StaticLevel: 1 + int(seed%3), BlockSize: 8 << 10,
			Parallelism: int(seed % 3), // 0..2: cover sync and parallel writers
		})
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		_, werr := io.Copy(w, bytes.NewReader(payload))
		if cerr := w.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			resCh <- result{nil, werr}
			return
		}

		var wireR io.Reader = bytes.NewReader(wireBuf.Bytes())
		if !faultWriteSide {
			frMu.Lock()
			fr = faultio.NewReader(wireR, sc.Cfg)
			wireR = fr
			frMu.Unlock()
		}
		if seed%2 == 1 {
			pr, err := stream.NewParallelReader(wireR, 3)
			if err != nil {
				resCh <- result{nil, err}
				return
			}
			defer pr.Close()
			got, rerr := io.ReadAll(pr)
			resCh <- result{got, rerr}
			return
		}
		r, err := stream.NewReader(wireR)
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		got, rerr := io.ReadAll(r)
		resCh <- result{got, rerr}
	}()

	// Watchdog: a non-stalled scenario completes in well under a second;
	// anything still running after 2 s is stalled. Releasing the wrappers
	// (the application-level timeout) must then produce a prompt typed
	// failure — never a hang.
	var res result
	select {
	case res = <-resCh:
	case <-time.After(2 * time.Second):
		release()
		select {
		case res = <-resCh:
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: transfer still hung 5s after stall release", sc)
		}
	}

	got, err := res.got, res.err
	switch {
	case err == nil && bytes.Equal(got, payload):
		return outcome{class: "identical", delivered: len(got)}
	case err == nil && len(got) < len(payload) && bytes.Equal(got, payload[:len(got)]):
		return outcome{class: "prefix", delivered: len(got)}
	case err != nil:
		if !bytes.Equal(got, payload[:min(len(got), len(payload))]) {
			t.Fatalf("%v: delivered bytes before the error are not an intact prefix", sc)
		}
		return outcome{class: "failed", delivered: len(got), sentinel: classifyErr(err)}
	default:
		t.Fatalf("%v: delivered %d bytes (payload %d) without error and without prefix property", sc, len(got), len(payload))
		return outcome{}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestChaosStream(t *testing.T) {
	leakcheck.Check(t)
	for seed := uint64(0); seed < chaosStreamSeeds; seed++ {
		seed := seed
		payload := chaosPayload(seed)
		sc := faultio.ScenarioFromSeed(seed, len(payload))
		t.Run(sc.String(), func(t *testing.T) {
			o := runStreamScenario(t, seed, payload)
			t.Logf("%v -> %v", sc, o)
			switch {
			case !sc.Destructive && o.class != "identical":
				t.Fatalf("benign scenario did not deliver identical payload: %v", o)
			case sc.Destructive && o.class == "failed" && o.sentinel == "untyped":
				t.Fatalf("destructive scenario failed with an untyped error: %v", o)
			case o.class == "prefix" && sc.Profile != "truncate" && sc.Profile != "mixed":
				t.Fatalf("profile %s silently delivered a prefix: %v", sc.Profile, o)
			}
		})
	}
}

// TestChaosStreamReplay: the stream-level scenarios are fully
// deterministic — same seed, same outcome, byte for byte.
func TestChaosStreamReplay(t *testing.T) {
	leakcheck.Check(t)
	for _, seed := range []uint64{1, 4, 9, 14, 19, 24, 29} {
		payload := chaosPayload(seed)
		a := runStreamScenario(t, seed, payload)
		b := runStreamScenario(t, seed, payload)
		if a != b {
			t.Errorf("seed %d: outcomes differ across replays: %v vs %v", seed, a, b)
		}
	}
}

// runTunnelScenario drives payload through client → entry ⇒ exit → echo
// with the scenario's faults injected on one endpoint's wire (alternating
// by seed), and classifies what the client observes.
func runTunnelScenario(t *testing.T, seed uint64, payload []byte) outcome {
	t.Helper()
	sc := faultio.ScenarioFromSeed(seed, len(payload))
	wrap := func(c net.Conn) net.Conn { return faultio.WrapConn(c, sc.Cfg) }

	base := tunnel.Config{
		Static: true, StaticLevel: 1,
		IdleTimeout:   300 * time.Millisecond, // bounds stalls
		ShutdownGrace: 100 * time.Millisecond,
		DialRetries:   2,
		DialBackoff:   10 * time.Millisecond,
	}
	cfgEntry, cfgExit := base, base
	if seed%2 == 0 {
		cfgEntry.WrapWire = wrap
	} else {
		cfgExit.WrapWire = wrap
	}

	// Echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}()
		}
	}()

	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", ln.Addr().String(), cfgExit)
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfgEntry)
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(20 * time.Second)
	conn.SetDeadline(deadline)

	writeErrCh := make(chan error, 1)
	go func() {
		_, werr := conn.Write(payload)
		conn.(*net.TCPConn).CloseWrite()
		writeErrCh <- werr
	}()
	start := time.Now()
	echoed, readErr := io.ReadAll(conn)
	writeErr := <-writeErrCh
	if time.Since(start) > 19*time.Second {
		t.Fatalf("%v: transfer ran into the outer deadline — teardown not bounded", sc)
	}

	// Whatever arrived must be an intact prefix of the payload: frames
	// are CRC-verified before delivery, so corruption can shorten the
	// stream but never alter delivered bytes.
	if !bytes.Equal(echoed, payload[:min(len(echoed), len(payload))]) {
		t.Fatalf("%v: echoed bytes are not an intact prefix (got %d bytes)", sc, len(echoed))
	}

	err = readErr
	if err == nil {
		err = writeErr
	}
	switch {
	case len(echoed) == len(payload) && err == nil:
		return outcome{class: "identical", delivered: len(echoed)}
	case err != nil:
		return outcome{class: "failed", delivered: len(echoed), sentinel: classifyErr(err)}
	default:
		return outcome{class: "prefix", delivered: len(echoed)}
	}
}

func TestChaosTunnel(t *testing.T) {
	leakcheck.Check(t)
	for seed := uint64(1000); seed < 1000+chaosTunnelSeeds; seed++ {
		seed := seed
		payload := chaosPayload(seed)
		sc := faultio.ScenarioFromSeed(seed, len(payload))
		t.Run(sc.String(), func(t *testing.T) {
			o := runTunnelScenario(t, seed, payload)
			t.Logf("%v -> %v", sc, o)
			if !sc.Destructive && o.class != "identical" {
				t.Fatalf("benign scenario did not deliver identical payload: %v", o)
			}
			// Destructive scenarios: prefix property and bounded time
			// are asserted inside runTunnelScenario; the client's error,
			// when TCP surfaces one, is a transport error by nature.
		})
	}
}
