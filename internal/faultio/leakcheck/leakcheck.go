// Package leakcheck asserts that tests do not leak goroutines. It is a
// dependency-free take on the well-known goleak pattern: snapshot the
// goroutines alive when the test starts, and at cleanup time poll until
// every goroutine created since has exited (shutdown is asynchronous, so a
// grace window avoids flakes) or fail with the offending stacks.
//
// Usage, first line of a test:
//
//	leakcheck.Check(t)
//
// Register it before creating the resources under test: t.Cleanup runs
// last-in-first-out, so the leak check then executes after the test's own
// cleanups have torn everything down.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// ignoredSubstrings mark goroutines that are not leaks: test harness
// machinery and long-lived runtime helpers.
var ignoredSubstrings = []string{
	"testing.tRunner",
	"testing.(*T).Run",
	"testing.runTests",
	"testing.(*M).",
	"testing.runFuzzing",
	"testing.fRunner",
	"runtime.goexit0",
	"signal.signal_recv",
	"runtime/trace.Start",
	"leakcheck.snapshot",
	"runtime.gc",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"os/signal.loop",
	"net.runtime_pollWait, locked to thread", // netpoll init helper
}

// goroutine is one parsed stack block from runtime.Stack(all=true).
type goroutine struct {
	id    string
	stack string
}

// snapshot parses all current goroutine stacks.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		header, _, _ := strings.Cut(block, "\n")
		// header looks like "goroutine 12 [running]:".
		fields := strings.Fields(header)
		if len(fields) < 2 || fields[0] != "goroutine" {
			continue
		}
		out = append(out, goroutine{id: fields[1], stack: block})
	}
	return out
}

// interesting reports whether g could be a leak worth reporting.
func interesting(g goroutine) bool {
	for _, s := range ignoredSubstrings {
		if strings.Contains(g.stack, s) {
			return false
		}
	}
	return true
}

// Check registers a cleanup that fails t if goroutines created after this
// call are still running when the test (including its other cleanups)
// finishes. Call it before creating the resources under test.
func Check(t testing.TB) {
	t.Helper()
	before := map[string]bool{}
	for _, g := range snapshot() {
		before[g.id] = true
	}
	t.Cleanup(func() {
		var leaked []goroutine
		// Shutdown is asynchronous; give goroutines a grace window.
		deadline := time.Now().Add(2 * time.Second)
		for {
			leaked = leaked[:0]
			for _, g := range snapshot() {
				if !before[g.id] && interesting(g) {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Slice(leaked, func(i, j int) bool { return leaked[i].id < leaked[j].id })
		var sb strings.Builder
		for _, g := range leaked {
			fmt.Fprintf(&sb, "\n%s\n", g.stack)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:%s", len(leaked), sb.String())
	})
}
