package faultio

import (
	"errors"
	"net"
	"sync"
	"time"
)

// Conn wraps a net.Conn with injected faults on both directions. The read
// and write sides draw from independent generators forked from Config.Seed,
// so each direction's fault sequence is reproducible regardless of how the
// two sides' goroutines interleave. Byte thresholds (ResetAfter, ...) apply
// per direction.
//
// A tripped reset closes the underlying connection (the peer observes it)
// and fails both directions of this side with a KindReset Error.
//
// Stalls respect the deadline that was in force when the operation started:
// an expired deadline surfaces a net.Error with Timeout() == true, which is
// how a stalled cloud connection looks to a peer using read deadlines.
type Conn struct {
	inner net.Conn
	rst   *state
	wst   *state

	mu            sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
}

// WrapConn wraps c with the fault plan described by cfg.
func WrapConn(c net.Conn, cfg Config) *Conn {
	fc := &Conn{
		inner: c,
		rst:   newState(cfg, 'r'),
		wst:   newState(cfg, 'w'),
	}
	// Share the reset flag between the directions and close the inner
	// conn when it trips, so the peer sees the teardown too.
	fc.wst.reset = fc.rst.reset
	fc.wst.resetMu = fc.rst.resetMu
	onReset := func() { c.Close() }
	fc.rst.onReset = onReset
	fc.wst.onReset = onReset
	return fc
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	deadline := c.readDeadline
	c.mu.Unlock()
	return readFaulty(c.rst, c.inner, p, deadline)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	deadline := c.writeDeadline
	c.mu.Unlock()
	var scratch []byte
	return writeFaulty(c.wst, c.inner, p, &scratch, deadline)
}

// Close implements net.Conn: it releases stalled operations and closes the
// underlying connection.
func (c *Conn) Close() error {
	c.rst.close()
	c.wst.close()
	return c.inner.Close()
}

// CloseWrite half-closes the write side when the underlying connection
// supports it (*net.TCPConn does); consumers use half-close to signal EOF
// while still reading, and hiding it behind the wrapper would deadlock
// request/response flows. Without support it reports errors.ErrUnsupported.
func (c *Conn) CloseWrite() error {
	if hc, ok := c.inner.(interface{ CloseWrite() error }); ok {
		return hc.CloseWrite()
	}
	return errors.ErrUnsupported
}

// CloseRead half-closes the read side when the underlying connection
// supports it; see CloseWrite.
func (c *Conn) CloseRead() error {
	if hc, ok := c.inner.(interface{ CloseRead() error }); ok {
		return hc.CloseRead()
	}
	return errors.ErrUnsupported
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
