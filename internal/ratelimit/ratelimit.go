// Package ratelimit provides a token-bucket rate-limited io.Writer. The
// examples and integration tests use it to emulate the scarce, shared wire
// bandwidth of a cloud NIC on top of fast local transports, which is the
// regime where adaptive compression pays off.
package ratelimit

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Writer throttles writes to an underlying writer at a fixed byte rate.
// It is safe for concurrent use (writes serialize).
type Writer struct {
	mu    sync.Mutex
	w     io.Writer
	rate  float64 // bytes per second
	burst float64 // bucket capacity in bytes

	tokens float64
	last   time.Time
	sleep  func(time.Duration) // test seam
	now    func() time.Time    // test seam
}

// NewWriter wraps w with a byte-rate limit. burst is the bucket size; zero
// means one typical block (128 KB). rate must be positive.
func NewWriter(w io.Writer, bytesPerSecond float64, burst int) (*Writer, error) {
	if w == nil {
		return nil, errors.New("ratelimit: nil writer")
	}
	if bytesPerSecond <= 0 {
		return nil, errors.New("ratelimit: non-positive rate")
	}
	b := float64(burst)
	if burst <= 0 {
		b = 128 << 10
	}
	return &Writer{
		w:      w,
		rate:   bytesPerSecond,
		burst:  b,
		tokens: b,
		sleep:  time.Sleep,
		now:    time.Now,
	}, nil
}

// Write implements io.Writer. Large writes are split so the instantaneous
// rate stays close to the configured one.
func (rl *Writer) Write(p []byte) (int, error) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	total := 0
	for len(p) > 0 {
		chunk := len(p)
		if float64(chunk) > rl.burst {
			chunk = int(rl.burst)
		}
		rl.take(float64(chunk))
		n, err := rl.w.Write(p[:chunk])
		total += n
		if err != nil {
			return total, err
		}
		p = p[chunk:]
	}
	return total, nil
}

// take blocks until amount tokens are available and consumes them.
func (rl *Writer) take(amount float64) {
	now := rl.now()
	if !rl.last.IsZero() {
		rl.tokens += now.Sub(rl.last).Seconds() * rl.rate
		if rl.tokens > rl.burst {
			rl.tokens = rl.burst
		}
	}
	rl.last = now
	if rl.tokens >= amount {
		rl.tokens -= amount
		return
	}
	deficit := amount - rl.tokens
	wait := time.Duration(deficit / rl.rate * float64(time.Second))
	rl.sleep(wait)
	rl.last = rl.now()
	rl.tokens = 0
}

// SetRate changes the target rate; used to emulate appearing/disappearing
// background contention mid-stream.
func (rl *Writer) SetRate(bytesPerSecond float64) error {
	if bytesPerSecond <= 0 {
		return errors.New("ratelimit: non-positive rate")
	}
	rl.mu.Lock()
	rl.rate = bytesPerSecond
	rl.mu.Unlock()
	return nil
}
