package ratelimit

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	if _, err := NewWriter(nil, 100, 0); err == nil {
		t.Error("nil writer accepted")
	}
	if _, err := NewWriter(io.Discard, 0, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewWriter(io.Discard, -5, 0); err == nil {
		t.Error("negative rate accepted")
	}
	w, err := NewWriter(io.Discard, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetRate(-1); err == nil {
		t.Error("negative SetRate accepted")
	}
}

// fakeTime lets the token bucket run on virtual time so the test is exact
// and instant.
type fakeTime struct {
	now     time.Time
	slept   time.Duration
	history []time.Duration
}

func (f *fakeTime) Now() time.Time { return f.now }

func (f *fakeTime) Sleep(d time.Duration) {
	f.slept += d
	f.history = append(f.history, d)
	f.now = f.now.Add(d)
}

func newVirtual(t *testing.T, dst io.Writer, rate float64, burst int) (*Writer, *fakeTime) {
	t.Helper()
	w, err := NewWriter(dst, rate, burst)
	if err != nil {
		t.Fatal(err)
	}
	ft := &fakeTime{now: time.Unix(1e9, 0)}
	w.now = ft.Now
	w.sleep = ft.Sleep
	return w, ft
}

func TestRateEnforcedVirtualTime(t *testing.T) {
	var buf bytes.Buffer
	// 1 MB/s, small burst.
	w, ft := newVirtual(t, &buf, 1e6, 64<<10)
	data := make([]byte, 10<<20) // 10 MB
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	// 10 MB at 1 MB/s should take ~10 s of (virtual) sleeping, minus the
	// initial burst allowance.
	got := ft.slept.Seconds()
	if got < 9 || got > 10.5 {
		t.Fatalf("slept %.2f s for 10 MB at 1 MB/s", got)
	}
	if buf.Len() != len(data) {
		t.Fatalf("wrote %d of %d", buf.Len(), len(data))
	}
}

func TestBurstPassesWithoutSleep(t *testing.T) {
	var buf bytes.Buffer
	w, ft := newVirtual(t, &buf, 1e6, 1<<20)
	if _, err := w.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if ft.slept != 0 {
		t.Fatalf("initial burst slept %v", ft.slept)
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	var buf bytes.Buffer
	w, ft := newVirtual(t, &buf, 1e6, 1024)
	if _, err := w.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	before := ft.slept
	if err := w.SetRate(4e6); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	second := ft.slept - before
	if second > before/2 {
		t.Fatalf("4x rate did not speed up: first %.2fs, second %.2fs", before.Seconds(), second.Seconds())
	}
}

type errAfter struct{ n int }

func (e *errAfter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errors.New("broken")
	}
	e.n -= len(p)
	return len(p), nil
}

func TestUnderlyingErrorSurfaces(t *testing.T) {
	w, _ := newVirtual(t, &errAfter{n: 100}, 1e9, 64)
	if _, err := w.Write(make([]byte, 1024)); err == nil {
		t.Fatal("underlying error swallowed")
	}
}

func TestRealTimeSmoke(t *testing.T) {
	// A tiny real-time sanity check: 200 KB at 2 MB/s takes ~100 ms.
	w, err := NewWriter(io.Discard, 2e6, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := w.Write(make([]byte, 200<<10)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("200 KB at 2 MB/s took %v", elapsed)
	}
}
