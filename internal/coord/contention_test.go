// Contention-regression suite: the test harness the fleet coordinator lands
// inside. 100+ concurrent streams share one simulated NIC
// (cloudsim.RunFleet), and the coordinated fleet must beat the same fleet
// running 100+ independent paper deciders on BOTH axes at once:
//
//   - strictly higher aggregate goodput (application bytes through the
//     contended link), and
//   - strictly lower flap rate (level-switch direction reversals, counted
//     by the harness — not by the policy under test).
//
// The two-axis bound is what makes the suite cheat-resistant: a policy can
// trivially zero the flap metric by never adapting, and can always buy
// goodput with unbounded oscillation; beating both at once requires actual
// coordination. TestContentionSentinelFreeze proves the bound has teeth by
// running exactly such a rigged policy (Config.CheatFreeze) and asserting
// the goodput criterion catches it — the DisableRevert sentinel pattern of
// internal/experiments/shape_test.go applied to the fleet layer.
package coord_test

import (
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/coord"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/obs"
)

// fleetSpec pins the contention scenario: a Native-platform host NIC
// (111 MB/s application-achievable, the paper's 1 Gbit/s link) shared by
// 110 streams — 100 best-effort ("silver", weight 1) and 10 priority
// ("gold", weight 2) — with heterogeneous per-stream CPU speed and a mix of
// corpus kinds, over 240 paper-default 2 s windows.
const (
	fleetNIC     = 111.0 // MB/s, netTable[Native]
	fleetSilver  = 100
	fleetGold    = 10
	fleetWindows = 240
	fleetWinSec  = 2.0
	goldWeight   = 2.0
)

// fleetStreams builds the stream set, calling mkScheme(i, weight, tenant)
// for each stream. Stream parameters are deterministic functions of the
// index so solo and coordinated runs face the identical environment.
func fleetStreams(mkScheme func(i int, weight float64, tenant string) cloudsim.Scheme) []cloudsim.FleetStream {
	n := fleetSilver + fleetGold
	streams := make([]cloudsim.FleetStream, n)
	for i := 0; i < n; i++ {
		weight, tenant := 1.0, "silver"
		if i >= fleetSilver {
			weight, tenant = goldWeight, "gold"
		}
		// CPU speed skew: factors 0.35..1.00 across the fleet, so some
		// streams are compressor-bound and some NIC-bound — the mix that
		// makes water-fill redistribution couple the streams.
		cpu := 0.35 + 0.65*float64(i%13)/12
		kind := cloudsim.ConstantKind(corpus.Moderate)
		switch {
		case i%10 == 3:
			kind = cloudsim.ConstantKind(corpus.High)
		case i%10 == 7:
			// Compressibility shifts mid-run, staggered per stream.
			kind = cloudsim.AlternatingKinds(int64(200+5*i)*1e6, corpus.Moderate, corpus.Low)
		}
		streams[i] = cloudsim.FleetStream{
			Kind:      kind,
			Scheme:    mkScheme(i, weight, tenant),
			Weight:    weight,
			CPUFactor: cpu,
			Tenant:    tenant,
		}
	}
	return streams
}

func runFleet(t *testing.T, seed uint64, mkScheme func(i int, weight float64, tenant string) cloudsim.Scheme) cloudsim.FleetResult {
	t.Helper()
	res, err := cloudsim.RunFleet(cloudsim.FleetConfig{
		NICMBps:       fleetNIC,
		Windows:       fleetWindows,
		WindowSeconds: fleetWinSec,
		Profiles:      cloudsim.ReferenceProfiles(),
		Streams:       fleetStreams(mkScheme),
		Seed:          seed,
		NICSigma:      0.08,
		CPUSigma:      0.03,
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	return res
}

func soloScheme(i int, _ float64, _ string) cloudsim.Scheme {
	return core.MustNewDecider(core.Config{Levels: 4})
}

func newFleetCoordinator(scope *obs.Scope, cheat bool) *coord.Coordinator {
	return coord.MustNew(coord.Config{
		BudgetBytesPerSec: fleetNIC * 1e6,
		Levels:            4,
		Obs:               scope,
		CheatFreeze:       cheat,
	})
}

func TestContentionCoordinatedBeatsSolo(t *testing.T) {
	for _, seed := range []uint64{1, 0xBEEF, 20260807} {
		solo := runFleet(t, seed, soloScheme)

		reg := obs.NewRegistry()
		c := newFleetCoordinator(reg.Scope("coord"), false)
		var handles []*coord.Stream
		coordinated := runFleet(t, seed, func(i int, weight float64, tenant string) cloudsim.Scheme {
			s := c.Register(coord.StreamConfig{Weight: weight, Tenant: tenant})
			handles = append(handles, s)
			return s
		})

		// The headline regression bound: strictly better on both axes.
		if coordinated.AppBytes <= solo.AppBytes {
			t.Errorf("seed %d: coordinated goodput %d <= solo %d",
				seed, coordinated.AppBytes, solo.AppBytes)
		}
		if coordinated.Flaps >= solo.Flaps {
			t.Errorf("seed %d: coordinated flaps %d >= solo %d",
				seed, coordinated.Flaps, solo.Flaps)
		}
		t.Logf("seed %d: goodput %.1f vs %.1f MB/s, flaps %d vs %d (coordinated vs solo)",
			seed,
			coordinated.GoodputMBps(fleetWinSec), solo.GoodputMBps(fleetWinSec),
			coordinated.Flaps, solo.Flaps)

		// Tenant priority: a gold stream's weighted-fair share is 2x a
		// silver stream's, which must show up as materially more goodput
		// per gold stream in the coordinated run.
		var goldBytes, silverBytes int64
		for _, ps := range coordinated.PerStream {
			if ps.Tenant == "gold" {
				goldBytes += ps.AppBytes
			} else {
				silverBytes += ps.AppBytes
			}
		}
		goldPer := float64(goldBytes) / fleetGold
		silverPer := float64(silverBytes) / fleetSilver
		if goldPer <= 1.2*silverPer {
			t.Errorf("seed %d: gold per-stream goodput %.0f not materially above silver %.0f",
				seed, goldPer, silverPer)
		}

		// Metrics cross-check: the obs counter must agree byte-for-byte
		// with the harness's own accounting (every window's appBytes went
		// through ObserveWindowStats), and the active gauge must return
		// to zero once every stream detaches.
		scope := reg.Scope("coord")
		if got := scope.Counter("goodput.bytes").Value(); got != coordinated.AppBytes {
			t.Errorf("seed %d: coord.goodput.bytes = %d, harness counted %d", seed, got, coordinated.AppBytes)
		}
		if got := scope.Gauge("streams.active").Value(); got != int64(len(handles)) {
			t.Errorf("seed %d: coord.streams.active = %d, want %d", seed, got, len(handles))
		}
		// The coordinator's own flap counter uses the same reversal
		// definition as the harness; it may only ever undercount relative
		// to the harness if a stream's returned level was clamped, never
		// overcount.
		if got := scope.Counter("level.flaps").Value(); got > int64(coordinated.Flaps) {
			t.Errorf("seed %d: coord.level.flaps = %d exceeds harness count %d", seed, got, coordinated.Flaps)
		}
		for _, h := range handles {
			h.Detach()
		}
		if got := scope.Gauge("streams.active").Value(); got != 0 {
			t.Errorf("seed %d: coord.streams.active = %d after full detach, want 0", seed, got)
		}
	}
}

// TestContentionSentinelFreeze is the suite's cheat sentinel. CheatFreeze
// pins every stream at its initial level: zero switches, zero flaps — the
// flap criterion alone would crown it the perfect policy. The goodput
// criterion must catch it: a frozen fleet (everything at level 0, i.e. no
// compression on a contended NIC) cannot beat even the flapping solo fleet.
// If this test ever fails, the contention bounds have gone soft and a
// metric-gaming policy could pass TestContentionCoordinatedBeatsSolo.
func TestContentionSentinelFreeze(t *testing.T) {
	const seed = 1
	solo := runFleet(t, seed, soloScheme)

	c := newFleetCoordinator(nil, true)
	rigged := runFleet(t, seed, func(i int, weight float64, tenant string) cloudsim.Scheme {
		return c.Register(coord.StreamConfig{Weight: weight, Tenant: tenant})
	})

	if rigged.Flaps != 0 || rigged.Switches != 0 {
		t.Fatalf("sentinel setup broken: frozen fleet recorded %d switches / %d flaps",
			rigged.Switches, rigged.Flaps)
	}
	// The teeth: the rigged policy "wins" the flap axis but must lose the
	// goodput axis, so the combined bound fails for it.
	if rigged.AppBytes > solo.AppBytes {
		t.Fatalf("cheat sentinel: frozen fleet goodput %d beat solo %d — the goodput bound no longer catches a flap-metric gamer",
			rigged.AppBytes, solo.AppBytes)
	}
}
