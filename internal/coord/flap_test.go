// Flapping-NIC contention case: the coordinator under a link whose capacity
// square-waves between 100% and 35% every 80 s (a flapping uplink, the
// tc-netem shape the scenario DSL's built-in "flaps" runs). The property
// under test is the hysteresis dwell rule as a hard rate limit: whatever the
// NIC does, no coordinated stream may switch levels more than once per
// HysteresisWindows windows — while the solo-decider fleet chases every
// capacity edge. TestFlapDwellSentinel proves the dwell bound is falsifiable
// by running a policy that flips levels every window.
package coord_test

import (
	"math"
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/coord"
	"adaptio/internal/corpus"
)

const (
	flapNIC       = 111.0
	flapStreamsN  = 48
	flapWindows   = 480
	flapWinSec    = 2.0
	flapPeriodSec = 80.0
	flapLowFrac   = 0.35
)

// flapEnv is the square-wave capacity: full for the first half of each
// period, flapLowFrac for the second.
func flapEnv() *cloudsim.FleetEnv {
	return &cloudsim.FleetEnv{
		Capacity: func(t float64) float64 {
			if math.Mod(t/flapPeriodSec, 1) < 0.5 {
				return 1.0
			}
			return flapLowFrac
		},
	}
}

func runFlapFleet(t *testing.T, seed uint64, mkScheme func(i int) cloudsim.Scheme) cloudsim.FleetResult {
	t.Helper()
	streams := make([]cloudsim.FleetStream, flapStreamsN)
	for i := range streams {
		streams[i] = cloudsim.FleetStream{
			Kind:   cloudsim.ConstantKind(corpus.Moderate),
			Scheme: mkScheme(i),
			// CPU skew 0.4..1.0 so the fleet holds both compressor-bound
			// and NIC-bound streams on either side of each flap edge.
			CPUFactor: 0.4 + 0.6*float64(i)/float64(flapStreamsN-1),
		}
	}
	res, err := cloudsim.RunFleet(cloudsim.FleetConfig{
		NICMBps:       flapNIC,
		Windows:       flapWindows,
		WindowSeconds: flapWinSec,
		Profiles:      cloudsim.ReferenceProfiles(),
		Streams:       streams,
		Seed:          seed,
		NICSigma:      0.04,
		CPUSigma:      0.02,
		Env:           flapEnv(),
	})
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	return res
}

// flapDwellBound is the hard per-stream switch ceiling hysteresis implies
// over the horizon: one switch per HysteresisWindows-window dwell, plus one
// for the initial move.
func flapDwellBound() int {
	return flapWindows/coord.DefaultHysteresisWindows + 1
}

func TestFlapDwellBoundsSwitches(t *testing.T) {
	for _, seed := range []uint64{1, 2011} {
		c := coord.MustNew(coord.Config{
			BudgetBytesPerSec: flapNIC * 1e6,
			Levels:            4,
		})
		res := runFlapFleet(t, seed, func(int) cloudsim.Scheme {
			return c.Register(coord.StreamConfig{})
		})
		bound := flapDwellBound()
		for i, ps := range res.PerStream {
			if ps.Switches > bound {
				t.Errorf("seed %d: stream %d switched %d times, dwell bound %d over %d windows",
					seed, i, ps.Switches, bound, flapWindows)
			}
		}
		t.Logf("seed %d: coordinated switches %d, flaps %d (bound %d/stream)",
			seed, res.Switches, res.Flaps, bound)
	}
}

// TestFlapCoordinationCalms pairs the dwell bound with the fleet-level
// claim: under the same flapping link, the coordinated fleet must flap
// strictly less than 48 independent paper deciders, each of which re-derives
// its level from whichever side of the square wave it last sampled.
func TestFlapCoordinationCalms(t *testing.T) {
	for _, seed := range []uint64{1, 2011} {
		solo := runFlapFleet(t, seed, func(int) cloudsim.Scheme {
			return soloScheme(0, 1, "")
		})
		c := coord.MustNew(coord.Config{
			BudgetBytesPerSec: flapNIC * 1e6,
			Levels:            4,
		})
		coordinated := runFlapFleet(t, seed, func(int) cloudsim.Scheme {
			return c.Register(coord.StreamConfig{})
		})
		if coordinated.Flaps >= solo.Flaps {
			t.Errorf("seed %d: coordinated flaps %d >= solo %d under a flapping NIC",
				seed, coordinated.Flaps, solo.Flaps)
		}
		t.Logf("seed %d: flaps %d vs %d (coordinated vs solo)", seed, coordinated.Flaps, solo.Flaps)
	}
}

// windowOscillator flips between levels 0 and 1 every observation — the
// worst-behaved policy the ladder admits.
type windowOscillator struct{ level int }

func (o *windowOscillator) Observe(float64) int { o.level ^= 1; return o.level }
func (o *windowOscillator) Level() int          { return o.level }

// TestFlapDwellSentinel proves the dwell bound can fail: a per-window
// oscillator must blow through it by an order of magnitude. If this test
// ever passes the bound, the bound has gone soft and
// TestFlapDwellBoundsSwitches no longer constrains anything.
func TestFlapDwellSentinel(t *testing.T) {
	res := runFlapFleet(t, 1, func(int) cloudsim.Scheme { return &windowOscillator{} })
	bound := flapDwellBound()
	maxSwitches := 0
	for _, ps := range res.PerStream {
		if ps.Switches > maxSwitches {
			maxSwitches = ps.Switches
		}
	}
	if maxSwitches <= bound {
		t.Fatalf("oscillating policy stayed within the dwell bound (%d <= %d) — the bound is vacuous",
			maxSwitches, bound)
	}
}
