package coord

import (
	"sync"

	"adaptio/internal/core"
)

// Stream is the per-stream handle returned by Coordinator.Register. It
// satisfies both cloudsim.Scheme and stream.WindowScheme structurally:
//
//	Observe(rate float64) int
//	ObserveWindowStats(rate float64, appBytes, wireBytes int64) int
//	Level() int
//
// While attached, every observation is an allocation round: the coordinator
// recomputes the stream's weighted-fair share, refreshes the stream's
// per-level goodput estimates from its drift-corrected priors, and moves the
// level at most one step toward the estimated optimum, damped by hysteresis.
// After Detach the handle keeps working but delegates to the stream's own
// solo core.Decider (the paper-faithful Algorithm 1 unless Config.SoloPolicy
// selects a learned policy), which the coordinator
// kept warm by feeding it every window rate while attached.
type Stream struct {
	coord  *Coordinator
	weight float64
	tenant string

	mu       sync.Mutex
	detached bool
	level    int
	windows  int // observation windows seen while attached

	// Multiplicative drift corrections to the configured priors, learned
	// from this stream's own observed windows (EWMA, gain DefaultDriftGain).
	ratioDrift float64 // observed ratio / RatioPrior[level]
	compDrift  float64 // observed app rate / CompBytesPerSec[level], CPU-bound windows only

	// Hysteresis and flap bookkeeping.
	streak          int // consecutive windows the same better target won
	streakTarget    int
	lastSwitchWin   int // window index of the last level move (-1 = never)
	lastSwitchDir   int // +1 heavier, -1 lighter, 0 none yet
	switches, flaps int64

	solo core.Decider
}

// Tenant returns the owner label the stream registered with.
func (s *Stream) Tenant() string { return s.tenant }

// Weight returns the stream's fair-share weight.
func (s *Stream) Weight() float64 { return s.weight }

// Level returns the stream's current compression level.
func (s *Stream) Level() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached {
		return s.solo.Level()
	}
	return s.level
}

// Switches and Flaps report the stream's own coordinated level moves and
// direction reversals (the same events aggregated into coord.level.switches
// and coord.level.flaps).
func (s *Stream) Switches() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.switches }

// Flaps reports direction reversals within the configured FlapWindow.
func (s *Stream) Flaps() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.flaps }

// Detach removes the stream from the coordinated fleet; subsequent
// observations are handled by the stream's solo decider, which resumes from
// the trajectory the coordinator fed it while attached. Idempotent.
func (s *Stream) Detach() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.detached {
		s.mu.Unlock()
		return
	}
	s.detached = true
	s.mu.Unlock()
	s.coord.detach(s)
}

// Observe is the window-rate-only observation path (cloudsim.Scheme). With
// no wire-byte evidence the ratio drift stays at its last value.
func (s *Stream) Observe(rate float64) int {
	return s.ObserveWindowStats(rate, 0, 0)
}

// ObserveWindowStats reports one completed window: the achieved application
// data rate in bytes/s plus the window's application and wire byte counts
// (zero counts mean "unknown", as from the rate-only Observe path). It
// returns the level the stream must use for the next window.
func (s *Stream) ObserveWindowStats(rate float64, appBytes, wireBytes int64) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	if s.detached {
		lvl := s.solo.Observe(rate)
		s.mu.Unlock()
		return lvl
	}

	// Keep the solo fallback warm: it tracks the same observed reality so
	// that Detach resumes Algorithm 1 from a live trajectory instead of a
	// cold start at level 0.
	s.solo.Observe(rate)

	cfg := &s.coord.cfg
	cur := s.level
	s.windows++

	// Learn this stream's deviation from the priors. Ratio drift needs
	// both byte counters; compression-speed drift only updates when the
	// stream was plausibly CPU-bound (wire demand comfortably below its
	// share), otherwise the NIC — not the compressor — set the rate.
	s.coord.mu.Lock()
	share := s.coord.shareLocked(s.weight)
	s.coord.mu.Unlock()
	if appBytes > 0 && wireBytes > 0 && cfg.RatioPrior[cur] > 0 {
		obsRatio := float64(wireBytes) / float64(appBytes)
		s.ratioDrift = ewma(s.ratioDrift, obsRatio/cfg.RatioPrior[cur], DefaultDriftGain)
	}
	if rate > 0 {
		wireRate := rate * s.estRatio(cfg, cur)
		if wireRate < 0.8*share {
			s.compDrift = ewma(s.compDrift, rate/cfg.CompBytesPerSec[cur], DefaultDriftGain)
		}
	}

	s.m().goodputBytes.Add(appBytes)

	if cfg.CheatFreeze {
		// Cheat sentinel: refuse to adapt. Zero switches, zero flaps —
		// and, as the contention suite proves, no goodput win either.
		s.mu.Unlock()
		return cur
	}

	// Pick the level with the best estimated goodput under the current
	// share; ties break toward the lighter level (cheaper CPU). The
	// winner only becomes a move target if it beats the *current* level's
	// estimate by the improvement margin — inside the margin is noise.
	best, target := 0.0, 0
	for l := 0; l < cfg.Levels; l++ {
		if e := s.estGoodput(cfg, l, share); e > best {
			best, target = e, l
		}
	}
	if target != cur && best <= s.estGoodput(cfg, cur, share)*(1+cfg.ImprovementMargin) {
		target = cur
	}

	if target == cur {
		s.streak = 0
		s.mu.Unlock()
		return cur
	}
	if target != s.streakTarget {
		s.streakTarget = target
		s.streak = 1
		s.mu.Unlock()
		return cur
	}
	s.streak++
	dwellOK := s.lastSwitchWin < 0 || s.windows-s.lastSwitchWin >= cfg.HysteresisWindows
	if s.streak < cfg.HysteresisWindows || !dwellOK {
		s.mu.Unlock()
		return cur
	}

	// Move one step toward the target.
	dir := 1
	if target < cur {
		dir = -1
	}
	next := cur + dir
	flap := s.lastSwitchDir != 0 && dir == -s.lastSwitchDir &&
		s.lastSwitchWin >= 0 && s.windows-s.lastSwitchWin <= cfg.FlapWindow
	s.level = next
	s.lastSwitchWin = s.windows
	s.lastSwitchDir = dir
	s.streak = 0
	s.switches++
	if flap {
		s.flaps++
	}
	s.mu.Unlock()

	s.m().switches.Inc()
	if flap {
		s.m().flaps.Inc()
	}
	return next
}

func (s *Stream) m() *coordMetrics { return s.coord.m }

// estRatio is the drift-corrected expected wire/app ratio at level l,
// clamped to a sane band; callers hold s.mu.
func (s *Stream) estRatio(cfg *Config, l int) float64 {
	r := cfg.RatioPrior[l] * s.ratioDrift
	if l == 0 {
		return 1 // level 0 is identity framing; drift never applies
	}
	return clampF(r, 0.01, 1.2)
}

// estGoodput is E(l) = min(share / ratio(l), comp(l)): the application-byte
// rate level l would sustain given the stream's wire share and its
// drift-corrected compressor speed. Callers hold s.mu.
func (s *Stream) estGoodput(cfg *Config, l int, share float64) float64 {
	netBound := share / s.estRatio(cfg, l)
	cpuBound := cfg.CompBytesPerSec[l] * clampF(s.compDrift, 0.05, 20)
	if cpuBound < netBound {
		return cpuBound
	}
	return netBound
}

func ewma(prev, sample, gain float64) float64 {
	return prev*(1-gain) + sample*gain
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
