package coord

import (
	"strings"
	"testing"

	"adaptio/internal/obs"
)

func testConfig(t *testing.T, mut func(*Config)) Config {
	t.Helper()
	cfg := Config{Levels: 4}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error; "" = valid
	}{
		{"defaults", nil, ""},
		{"no levels", func(c *Config) { c.Levels = 0 }, "at least 1 level"},
		{"negative budget", func(c *Config) { c.BudgetBytesPerSec = -1 }, "negative budget"},
		{"short priors", func(c *Config) { c.RatioPrior = []float64{1, 0.5} }, "priors must cover"},
		{"level0 ratio", func(c *Config) {
			c.RatioPrior = []float64{0.9, 0.5, 0.4, 0.3}
			c.CompBytesPerSec = []float64{1, 1, 1, 1}
		}, "level 0 ratio prior must be 1"},
		{"bad speed", func(c *Config) {
			c.RatioPrior = []float64{1, 0.5, 0.4, 0.3}
			c.CompBytesPerSec = []float64{1, 1, 0, 1}
		}, "compression-speed prior"},
		{"negative margin", func(c *Config) { c.ImprovementMargin = -0.1 }, "negative improvement margin"},
		{"negative hysteresis", func(c *Config) { c.HysteresisWindows = -1 }, "negative hysteresis"},
		{"negative flap window", func(c *Config) { c.FlapWindow = -2 }, "negative flap window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(testConfig(t, tc.mut))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("New: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := MustNew(Config{Levels: 4})
	if got := c.Budget(); got != DefaultBudgetBytesPerSec {
		t.Fatalf("Budget = %v, want default %v", got, DefaultBudgetBytesPerSec)
	}
	if c.cfg.HysteresisWindows != DefaultHysteresisWindows {
		t.Fatalf("HysteresisWindows = %d, want %d", c.cfg.HysteresisWindows, DefaultHysteresisWindows)
	}
	if c.cfg.ImprovementMargin != DefaultImprovementMargin {
		t.Fatalf("ImprovementMargin = %v, want %v", c.cfg.ImprovementMargin, DefaultImprovementMargin)
	}
	if c.cfg.FlapWindow != DefaultFlapWindow {
		t.Fatalf("FlapWindow = %d, want %d", c.cfg.FlapWindow, DefaultFlapWindow)
	}
}

func TestNilCoordinatorAndStream(t *testing.T) {
	var c *Coordinator
	if got := c.Register(StreamConfig{}); got != nil {
		t.Fatalf("nil Coordinator.Register = %v, want nil", got)
	}
	if got := c.ActiveStreams(); got != 0 {
		t.Fatalf("nil Coordinator.ActiveStreams = %d, want 0", got)
	}
	var s *Stream
	s.Detach() // must not panic
	if got := s.ObserveWindowStats(1e6, 10, 10); got != 0 {
		t.Fatalf("nil Stream.ObserveWindowStats = %d, want 0", got)
	}
}

// drive feeds n windows where the achieved rate is whatever the stream's
// level would plausibly sustain under the given wire share: the closed loop
// the coordinator sees in production.
func drive(s *Stream, n int, shareBps float64, ratio, comp []float64) int {
	lvl := s.Level()
	for i := 0; i < n; i++ {
		net := shareBps / ratio[lvl]
		rate := net
		if comp[lvl] < rate {
			rate = comp[lvl]
		}
		app := int64(rate * 2) // 2s windows
		wire := int64(float64(app) * ratio[lvl])
		lvl = s.ObserveWindowStats(rate, app, wire)
	}
	return lvl
}

func TestNetBoundStreamClimbsToOptimalLevel(t *testing.T) {
	ratio, comp := DefaultPriors()
	// 10 MB/s share: E(0)=10, E(1)=min(22.2,104)=22.2, E(2)=min(25,71)=25,
	// E(3)=min(30.3,8.9)=8.9 — level 2 is optimal and the stream should
	// walk there one hysteresis-gated step at a time, then hold.
	c := MustNew(Config{Levels: 4, BudgetBytesPerSec: 10e6})
	s := c.Register(StreamConfig{})
	lvl := drive(s, 60, 10e6, ratio, comp)
	if lvl != 2 {
		t.Fatalf("level after 60 windows = %d, want 2", lvl)
	}
	if got := s.Switches(); got != 2 {
		t.Fatalf("switches = %d, want exactly 2 (one per step, no wandering)", got)
	}
	if got := s.Flaps(); got != 0 {
		t.Fatalf("flaps = %d, want 0 in a stable environment", got)
	}
}

func TestFastLinkStaysUncompressed(t *testing.T) {
	ratio, comp := DefaultPriors()
	// 500 MB/s share: E(0)=500 beats every compressed level (comp caps
	// at 104). The stream must never leave level 0.
	c := MustNew(Config{Levels: 4, BudgetBytesPerSec: 500e6})
	s := c.Register(StreamConfig{})
	if lvl := drive(s, 40, 500e6, ratio, comp); lvl != 0 {
		t.Fatalf("level = %d, want 0 on an uncontended fast link", lvl)
	}
	if got := s.Switches(); got != 0 {
		t.Fatalf("switches = %d, want 0", got)
	}
}

func TestHysteresisDelaysMoves(t *testing.T) {
	ratio, comp := DefaultPriors()
	c := MustNew(Config{Levels: 4, BudgetBytesPerSec: 10e6, HysteresisWindows: 5})
	s := c.Register(StreamConfig{})
	for i := 0; i < 4; i++ {
		if lvl := drive(s, 1, 10e6, ratio, comp); lvl != 0 {
			t.Fatalf("window %d: level = %d, want 0 before hysteresis expires", i, lvl)
		}
	}
	if lvl := drive(s, 1, 10e6, ratio, comp); lvl != 1 {
		t.Fatalf("level after %d windows = %d, want first step to 1", 5, lvl)
	}
}

func TestWeightedSharesFavorHighPriorityTenant(t *testing.T) {
	ratio, comp := DefaultPriors()
	// Budget 40 MB/s split across gold (weight 3) and silver (weight 1):
	// gold's 30 MB/s share keeps E(0)=30 > E(1)=min(66,104)*... wait —
	// E(1)=66 still wins; both compress, but gold's share is 3x silver's,
	// which we can read back through the share-dependent estimates: drive
	// each in its own closed loop and compare achieved app rates.
	c := MustNew(Config{Levels: 4, BudgetBytesPerSec: 40e6})
	gold := c.Register(StreamConfig{Weight: 3, Tenant: "gold"})
	silver := c.Register(StreamConfig{Weight: 1, Tenant: "silver"})
	if gold.Tenant() != "gold" || gold.Weight() != 3 {
		t.Fatalf("gold handle carries %q/%v, want gold/3", gold.Tenant(), gold.Weight())
	}
	goldLvl := drive(gold, 40, 30e6, ratio, comp)
	silverLvl := drive(silver, 40, 10e6, ratio, comp)
	// Silver (10 MB/s share) optimizes at level 2 (E=25); gold (30 MB/s)
	// at level 1 (E=min(66,104)=66 vs E(2)=min(75,71)=71 — within margin
	// pressure; accept either 1 or 2 for gold but require a level change
	// for both and a strictly higher estimated goodput for gold.
	if silverLvl != 2 {
		t.Fatalf("silver level = %d, want 2", silverLvl)
	}
	if goldLvl == 0 {
		t.Fatalf("gold level = 0, want compressed under a shared budget")
	}
	c.mu.Lock()
	gShare, sShare := c.shareLocked(gold.weight), c.shareLocked(silver.weight)
	c.mu.Unlock()
	if gShare != 3*sShare {
		t.Fatalf("share split = %v vs %v, want 3:1", gShare, sShare)
	}
}

func TestDetachFallsBackToSolo(t *testing.T) {
	reg := obs.NewRegistry()
	c := MustNew(Config{Levels: 4, BudgetBytesPerSec: 10e6, Obs: reg.Scope("coord")})
	s := c.Register(StreamConfig{})
	ratio, comp := DefaultPriors()
	drive(s, 30, 10e6, ratio, comp)
	if got := c.ActiveStreams(); got != 1 {
		t.Fatalf("ActiveStreams = %d, want 1", got)
	}
	s.Detach()
	s.Detach() // idempotent
	if got := c.ActiveStreams(); got != 0 {
		t.Fatalf("ActiveStreams after Detach = %d, want 0", got)
	}
	if got := reg.Scope("coord").Gauge("streams.active").Value(); got != 0 {
		t.Fatalf("coord.streams.active = %d, want 0 after Detach", got)
	}
	// Post-detach observations must run the solo decider: starting from
	// its warm level, repeated stable rates still trigger the paper's
	// periodic probes — the level can move without any coordinator input.
	before := s.Level()
	moved := false
	for i := 0; i < 64; i++ {
		if s.Observe(9e6) != before {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatalf("solo fallback never probed away from level %d; decider appears disconnected", before)
	}
}

func TestCheatFreezeNeverMoves(t *testing.T) {
	ratio, comp := DefaultPriors()
	c := MustNew(Config{Levels: 4, BudgetBytesPerSec: 10e6, CheatFreeze: true})
	s := c.Register(StreamConfig{})
	if lvl := drive(s, 80, 10e6, ratio, comp); lvl != 0 {
		t.Fatalf("CheatFreeze level = %d, want pinned 0", lvl)
	}
	if s.Switches() != 0 || s.Flaps() != 0 {
		t.Fatalf("CheatFreeze switches/flaps = %d/%d, want 0/0", s.Switches(), s.Flaps())
	}
}

func TestObsMetricNamesRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	c := MustNew(Config{Levels: 4, Obs: reg.Scope("coord")})
	s := c.Register(StreamConfig{})
	s.ObserveWindowStats(1e6, 2e6, 2e6)
	for _, name := range []string{
		"coord.goodput.bytes", "coord.level.flaps", "coord.level.switches",
		"coord.streams.active", "coord.streams.total",
	} {
		if reg.Get(name) == nil {
			t.Errorf("metric %q not registered", name)
		}
	}
	if got := reg.Scope("coord").Counter("goodput.bytes").Value(); got != 2e6 {
		t.Fatalf("coord.goodput.bytes = %d, want 2e6", got)
	}
}

func TestFlapCountedOnForcedReversal(t *testing.T) {
	reg := obs.NewRegistry()
	ratio, comp := DefaultPriors()
	c := MustNew(Config{
		Levels: 4, BudgetBytesPerSec: 100e6,
		HysteresisWindows: 1, ImprovementMargin: 0.02, FlapWindow: 100,
		Obs: reg.Scope("coord"),
	})
	s := c.Register(StreamConfig{})
	// Siblings join: the share collapses from 100 MB/s to 10 MB/s and the
	// stream climbs toward heavier compression.
	var siblings []*Stream
	for i := 0; i < 9; i++ {
		siblings = append(siblings, c.Register(StreamConfig{}))
	}
	lvl := drive(s, 10, 10e6, ratio, comp)
	if lvl != 2 {
		t.Fatalf("setup: level = %d under a 10 MB/s share, want climb to 2", lvl)
	}
	// Siblings leave: the share springs back to 100 MB/s, where lighter
	// compression wins (comp speed caps level 2 at 71 MB/s but level 1
	// sustains 104), so the stream steps back down — a direction reversal
	// inside the (wide) flap window that must be counted.
	for _, sib := range siblings {
		sib.Detach()
	}
	lvl = drive(s, 10, 100e6, ratio, comp)
	if lvl != 1 {
		t.Fatalf("stream never stepped back down; level = %d, want 1", lvl)
	}
	if got := s.Flaps(); got == 0 {
		t.Fatalf("flaps = 0 after a forced reversal inside the flap window")
	}
	if got := reg.Scope("coord").Counter("level.flaps").Value(); got != s.Flaps() {
		t.Fatalf("coord.level.flaps = %d, stream flaps = %d; metric out of sync", got, s.Flaps())
	}
}
