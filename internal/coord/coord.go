// Package coord is the fleet-level compression coordinator: a host-scoped
// controller that owns a shared link-bandwidth budget and assigns
// compression levels across every registered stream, instead of letting N
// independent core.Deciders probe against each other on one contended NIC.
//
// The paper's decision model (internal/core) deliberately adapts from the
// observed application data rate alone, because inside a VM every
// OS-provided metric is suspect (Section II). That remains true per stream —
// but when many streams of the *same host* share one NIC, each solo decider
// misattributes its neighbours' probes as environment shifts and oscillates:
// a probe by stream A shifts the share of streams B..N, whose deciders see a
// "degradation", revert, shift the shares again, and the fleet flaps.
// Gridiron (PAPERS.md) models cloud workloads with explicit per-flow
// bandwidth requirements, and ADARES observes that adaptive controllers need
// shared context to stop flailing; coord is that shared context.
//
// The coordinator holds exactly one trustworthy host-local fact the solo
// decider cannot know: the link budget and how many siblings share it. From
// it, each stream's weighted-fair wire share is
//
//	share_i = Budget * weight_i / Σ weight_j
//
// and the level assigned to stream i maximizes the estimated goodput
//
//	E_i(l) = min(share_i / ratio_i(l), comp_i(l))
//
// where ratio_i(l) and comp_i(l) are per-stream estimates (configured priors
// corrected by per-stream multiplicative drift learned from the stream's own
// observed window stats — again application-side observations only, never OS
// metrics). Two damping rules suppress level flapping:
//
//   - a candidate level must beat the current one's estimate by
//     ImprovementMargin, and
//   - it must stay the winner for HysteresisWindows consecutive windows, and
//     moves step one level at a time with a minimum dwell between steps.
//
// When a stream detaches (or no coordinator is configured at all), it falls
// back to its own paper-faithful solo core.Decider, which the coordinator
// keeps warm by feeding it every observed window rate while attached.
//
// Observability (internal/obs): coord.goodput.bytes, coord.level.flaps,
// coord.streams.active, plus coord.level.switches and coord.streams.total.
// See docs/coordination.md for the budget/fairness/hysteresis contract and
// the contention-regression suite that gates this package.
package coord

import (
	"fmt"
	"sync"

	"adaptio/internal/core"
	"adaptio/internal/obs"
)

// Defaults for the damping and estimation knobs; see Config.
const (
	DefaultHysteresisWindows = 3
	DefaultImprovementMargin = 0.10
	DefaultFlapWindow        = 8
	DefaultDriftGain         = 0.4
)

// DefaultBudgetBytesPerSec is a 1 Gbit/s link's achievable application-layer
// throughput (the paper's evaluation NIC), the conventional budget when the
// operator does not specify one.
const DefaultBudgetBytesPerSec = 111e6

// Config parameterizes a Coordinator.
type Config struct {
	// BudgetBytesPerSec is the shared wire-byte budget of the link all
	// registered streams traverse (application-layer achievable bytes/s,
	// not raw line rate). Zero means DefaultBudgetBytesPerSec.
	BudgetBytesPerSec float64

	// Levels is the compression ladder size, including level 0 = no
	// compression. Must be >= 1 and match the streams' ladder.
	Levels int

	// RatioPrior[l] is the expected wire/app compression ratio at level l
	// before any stream-specific evidence (level 0 must be 1). Nil with
	// Levels == 4 means DefaultPriors' ratios.
	RatioPrior []float64

	// CompBytesPerSec[l] is the expected single-stream compression
	// throughput at level l in application bytes/s. Nil with Levels == 4
	// means DefaultPriors' speeds.
	CompBytesPerSec []float64

	// HysteresisWindows is how many consecutive windows a better target
	// level must persist before the stream moves one step toward it, and
	// also the minimum dwell (in windows) between two moves of the same
	// stream. Zero means DefaultHysteresisWindows.
	HysteresisWindows int

	// ImprovementMargin is the fractional estimated-goodput advantage a
	// candidate level needs over the current one before it is considered
	// at all; differences inside the margin are treated as noise (the
	// coordinator's analogue of the solo decider's α band). Zero means
	// DefaultImprovementMargin. Negative is invalid.
	ImprovementMargin float64

	// FlapWindow: a level move that reverses the stream's previous move
	// direction within this many windows counts as a flap
	// (coord.level.flaps). Zero means DefaultFlapWindow.
	FlapWindow int

	// Alpha is forwarded to each stream's fallback solo decider; zero
	// means the paper's default.
	Alpha float64

	// SoloPolicy names the core policy (core.PolicyNames) each stream's
	// detach fallback decider is built from; empty means the
	// paper-faithful default (core.PolicyAlgorithmOne). The policy is
	// constructed per stream, seeded from SoloSeed xor a per-stream
	// counter so stochastic policies stay deterministic per fleet.
	SoloPolicy string

	// SoloSeed seeds stochastic solo policies (ignored by deterministic
	// ones). Streams registered later fork distinct seeds from it.
	SoloSeed uint64

	// Obs, if non-nil, is the scope the coordinator registers its metrics
	// under (conventionally "coord"). Nil keeps the coordinator fully
	// functional with unregistered metrics.
	Obs *obs.Scope

	// CheatFreeze is the contention-suite's cheat sentinel knob (the
	// DisableRevert pattern of internal/experiments/shape_test.go applied
	// to fleet coordination): the coordinator never moves any stream off
	// its initial level, which trivially zeroes the flap metric while
	// giving up all adaptation. The contention-regression suite flips it
	// to prove its combined goodput+flap assertions cannot be gamed by a
	// policy that optimizes the flap metric alone. Never set in
	// production.
	CheatFreeze bool
}

// DefaultPriors returns the ratio and compression-speed priors for the
// default four-level NO/LIGHT/MEDIUM/HEAVY ladder, taken from the
// Table II-calibrated reference profiles (internal/cloudsim, MODERATE
// corpus): they only need to be order-of-magnitude right, because every
// stream corrects them multiplicatively from its own observed windows.
func DefaultPriors() (ratio, compBps []float64) {
	return []float64{1, 0.45, 0.40, 0.33},
		[]float64{5000e6, 104e6, 71e6, 8.9e6}
}

func (c Config) withDefaults() (Config, error) {
	if c.Levels < 1 {
		return c, fmt.Errorf("coord: config needs at least 1 level, got %d", c.Levels)
	}
	if c.BudgetBytesPerSec < 0 {
		return c, fmt.Errorf("coord: negative budget %v", c.BudgetBytesPerSec)
	}
	if c.BudgetBytesPerSec == 0 {
		c.BudgetBytesPerSec = DefaultBudgetBytesPerSec
	}
	if c.RatioPrior == nil && c.CompBytesPerSec == nil && c.Levels == 4 {
		c.RatioPrior, c.CompBytesPerSec = DefaultPriors()
	}
	if len(c.RatioPrior) != c.Levels || len(c.CompBytesPerSec) != c.Levels {
		return c, fmt.Errorf("coord: priors must cover all %d levels (got %d ratios, %d speeds)",
			c.Levels, len(c.RatioPrior), len(c.CompBytesPerSec))
	}
	if c.RatioPrior[0] != 1 {
		return c, fmt.Errorf("coord: level 0 ratio prior must be 1, got %v", c.RatioPrior[0])
	}
	for l := 0; l < c.Levels; l++ {
		if c.RatioPrior[l] <= 0 || c.RatioPrior[l] > 1.5 {
			return c, fmt.Errorf("coord: bad ratio prior %v for level %d", c.RatioPrior[l], l)
		}
		if c.CompBytesPerSec[l] <= 0 {
			return c, fmt.Errorf("coord: bad compression-speed prior %v for level %d", c.CompBytesPerSec[l], l)
		}
	}
	if c.HysteresisWindows == 0 {
		c.HysteresisWindows = DefaultHysteresisWindows
	}
	if c.HysteresisWindows < 0 {
		return c, fmt.Errorf("coord: negative hysteresis %d", c.HysteresisWindows)
	}
	if c.ImprovementMargin == 0 {
		c.ImprovementMargin = DefaultImprovementMargin
	}
	if c.ImprovementMargin < 0 {
		return c, fmt.Errorf("coord: negative improvement margin %v", c.ImprovementMargin)
	}
	if c.FlapWindow == 0 {
		c.FlapWindow = DefaultFlapWindow
	}
	if c.FlapWindow < 0 {
		return c, fmt.Errorf("coord: negative flap window %d", c.FlapWindow)
	}
	if c.SoloPolicy != "" && !core.ValidPolicy(c.SoloPolicy) {
		return c, fmt.Errorf("coord: unknown solo policy %q (want one of %v)", c.SoloPolicy, core.PolicyNames())
	}
	return c, nil
}

// coordMetrics are the coordinator's obs instruments, resolved once.
type coordMetrics struct {
	goodputBytes  *obs.Counter
	flaps         *obs.Counter
	switches      *obs.Counter
	streamsActive *obs.Gauge
	streamsTotal  *obs.Counter
	streamsSolo   *obs.Counter // detach events: streams fallen back to solo
}

func newCoordMetrics(scope *obs.Scope) *coordMetrics {
	return &coordMetrics{
		goodputBytes:  scope.Counter("goodput.bytes"),
		flaps:         scope.Counter("level.flaps"),
		switches:      scope.Counter("level.switches"),
		streamsActive: scope.Gauge("streams.active"),
		streamsTotal:  scope.Counter("streams.total"),
		streamsSolo:   scope.Counter("streams.solo_fallbacks"),
	}
}

// Coordinator owns the link budget and the registered stream set. All
// methods are safe for concurrent use; per-window work is one short
// critical section per stream.
type Coordinator struct {
	cfg Config
	m   *coordMetrics

	mu         sync.Mutex
	streams    map[*Stream]struct{}
	sumWeights float64
	soloSeq    uint64 // per-stream seed counter for stochastic solo policies
}

// New creates a Coordinator for the given configuration.
func New(cfg Config) (*Coordinator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:     cfg,
		m:       newCoordMetrics(cfg.Obs),
		streams: make(map[*Stream]struct{}),
	}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Coordinator {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// ActiveStreams returns the number of currently registered streams.
func (c *Coordinator) ActiveStreams() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.streams)
}

// Budget returns the configured link budget in bytes per second.
func (c *Coordinator) Budget() float64 { return c.cfg.BudgetBytesPerSec }

// StreamConfig describes one stream joining the coordinated fleet.
type StreamConfig struct {
	// Weight is the stream's share weight for weighted-fair budget
	// division (per-tenant priority). Zero means 1; negative is clamped
	// to the minimum positive weight.
	Weight float64
	// Tenant is a free-form owner label carried into diagnostics.
	Tenant string
}

// Register adds a stream to the fleet and returns its handle. The stream
// starts at level 0 (like a fresh solo decider) and is coordinated until
// Detach. Register on a nil Coordinator returns nil — callers that support
// running without a coordinator must branch, exactly as they would for a
// nil obs scope.
func (c *Coordinator) Register(sc StreamConfig) *Stream {
	if c == nil {
		return nil
	}
	w := sc.Weight
	if w <= 0 {
		w = 1
	}
	c.mu.Lock()
	seq := c.soloSeq
	c.soloSeq++
	c.mu.Unlock()
	s := &Stream{
		coord:         c,
		weight:        w,
		tenant:        sc.Tenant,
		ratioDrift:    1,
		compDrift:     1,
		lastSwitchWin: -1,
		solo: core.MustNewPolicy(c.cfg.SoloPolicy, core.PolicyConfig{
			Levels: c.cfg.Levels,
			Alpha:  c.cfg.Alpha,
			Seed:   c.cfg.SoloSeed ^ seq<<17,
		}),
	}
	c.mu.Lock()
	c.streams[s] = struct{}{}
	c.sumWeights += w
	c.mu.Unlock()
	c.m.streamsTotal.Inc()
	c.m.streamsActive.Add(1)
	return s
}

// detach removes s from the fleet; idempotence is handled by the caller
// (Stream.Detach).
func (c *Coordinator) detach(s *Stream) {
	c.mu.Lock()
	if _, ok := c.streams[s]; ok {
		delete(c.streams, s)
		c.sumWeights -= s.weight
		if c.sumWeights < 0 {
			c.sumWeights = 0
		}
	}
	c.mu.Unlock()
	c.m.streamsActive.Add(-1)
	c.m.streamsSolo.Inc()
}

// shareBytesPerSec returns the weighted-fair wire share of a stream with the
// given weight; callers hold c.mu.
func (c *Coordinator) shareLocked(weight float64) float64 {
	if c.sumWeights <= 0 {
		return c.cfg.BudgetBytesPerSec
	}
	return c.cfg.BudgetBytesPerSec * weight / c.sumWeights
}
