package corpus_test

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"adaptio/internal/compress"
	"adaptio/internal/compress/flatecodec"
	"adaptio/internal/compress/lzfast"
	"adaptio/internal/compress/lzheavy"
	"adaptio/internal/corpus"
)

func TestKindStringsAndFiles(t *testing.T) {
	cases := []struct {
		kind corpus.Kind
		name string
		file string
		size int
	}{
		{corpus.High, "HIGH", "ptt5", 513216},
		{corpus.Moderate, "MODERATE", "alice29.txt", 152089},
		{corpus.Low, "LOW", "image.jpg", 256000},
	}
	for _, c := range cases {
		if c.kind.String() != c.name {
			t.Errorf("String() = %q, want %q", c.kind.String(), c.name)
		}
		if c.kind.FileName() != c.file {
			t.Errorf("FileName() = %q, want %q", c.kind.FileName(), c.file)
		}
		if c.kind.FileSize() != c.size {
			t.Errorf("FileSize() = %d, want %d", c.kind.FileSize(), c.size)
		}
	}
	if corpus.Kind(99).String() == "" || corpus.Kind(99).FileName() != "unknown" {
		t.Error("unknown kind misbehaves")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range corpus.Kinds() {
		a := corpus.Generate(kind, 100000, 42)
		b := corpus.Generate(kind, 100000, 42)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: generation not deterministic", kind)
		}
		c := corpus.Generate(kind, 100000, 43)
		if bytes.Equal(a, c) {
			t.Errorf("%s: different seeds produced identical data", kind)
		}
	}
}

func TestGenerateExactLength(t *testing.T) {
	prop := func(n uint16, seed uint64) bool {
		for _, kind := range corpus.Kinds() {
			if got := len(corpus.Generate(kind, int(n), seed)); got != int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateFileSizes(t *testing.T) {
	for _, kind := range corpus.Kinds() {
		if got := len(corpus.GenerateFile(kind, 1)); got != kind.FileSize() {
			t.Errorf("%s: file size %d, want %d", kind, got, kind.FileSize())
		}
	}
}

// TestCompressionRatioBands pins the generators to the paper's stated
// compressibility (Section IV-A): ptt5 compresses to 10–15 % with common
// libraries, alice29.txt to 30–50 %, image.jpg to 90–95 %. We allow slack at
// the edges because four different codecs bracket the "common library" point.
func TestCompressionRatioBands(t *testing.T) {
	type band struct{ lo, hi float64 }
	bands := map[corpus.Kind]band{
		corpus.High:     {0.05, 0.20},
		corpus.Moderate: {0.28, 0.65},
		corpus.Low:      {0.85, 1.00},
	}
	codecs := []compress.Codec{lzfast.Fast{}, lzfast.HC{}, flatecodec.Codec{}, lzheavy.Codec{}}
	const block = 128 << 10
	for kind, b := range bands {
		file := corpus.GenerateFile(kind, 1)
		for _, c := range codecs {
			var comp int
			for off := 0; off < len(file); off += block {
				end := off + block
				if end > len(file) {
					end = len(file)
				}
				comp += len(c.Compress(nil, file[off:end]))
			}
			ratio := float64(comp) / float64(len(file))
			if ratio < b.lo || ratio > b.hi {
				t.Errorf("%s/%s: ratio %.3f outside band [%.2f, %.2f]",
					kind, c.Name(), ratio, b.lo, b.hi)
			}
		}
	}
}

// TestRatioOrderingAcrossLevels asserts the level-ladder premise: heavier
// levels never compress worse than lighter ones on compressible data.
func TestRatioOrderingAcrossLevels(t *testing.T) {
	for _, kind := range []corpus.Kind{corpus.High, corpus.Moderate} {
		src := corpus.GenerateFile(kind, 1)[:128<<10]
		fast := len(lzfast.Fast{}.Compress(nil, src))
		hc := len(lzfast.HC{}.Compress(nil, src))
		heavy := len(lzheavy.Codec{}.Compress(nil, src))
		if !(heavy < hc && hc < fast) {
			t.Errorf("%s: ratio ordering violated: heavy=%d hc=%d fast=%d", kind, heavy, hc, fast)
		}
	}
}

func TestFileReaderLoops(t *testing.T) {
	r := corpus.NewFileReader(corpus.Moderate, 7)
	file := corpus.GenerateFile(corpus.Moderate, 7)
	// Read two full file lengths plus a bit; content must repeat exactly.
	buf := make([]byte, 2*len(file)+100)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf[:len(file)], file) {
		t.Fatal("first pass differs from generated file")
	}
	if !bytes.Equal(buf[len(file):2*len(file)], file) {
		t.Fatal("reader does not loop the file")
	}
}

func TestLoopReader(t *testing.T) {
	r := corpus.NewLoopReader([]byte("abc"))
	buf := make([]byte, 8)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcabcab" {
		t.Fatalf("loop reader produced %q", buf)
	}
}

func TestLoopReaderPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty loop content")
		}
	}()
	corpus.NewLoopReader(nil)
}

func TestAlternatingReaderSwitchesExactly(t *testing.T) {
	const every = 1000
	r := corpus.NewAlternatingReader([]corpus.Kind{corpus.High, corpus.Low}, every, 5)
	// Reference streams with the same seeds.
	highRef := make([]byte, every)
	lowRef := make([]byte, every)
	if _, err := io.ReadFull(corpus.NewFileReader(corpus.High, 5), highRef); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(corpus.NewFileReader(corpus.Low, 6), lowRef); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*every)
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:every], highRef) {
		t.Fatal("first phase is not the HIGH stream")
	}
	if !bytes.Equal(got[every:], lowRef) {
		t.Fatal("second phase is not the LOW stream")
	}
}

func TestAlternatingReaderNeverCrossesBoundary(t *testing.T) {
	r := corpus.NewAlternatingReader([]corpus.Kind{corpus.High, corpus.Low}, 512, 1)
	total := 0
	buf := make([]byte, 300)
	for total < 5000 {
		n, err := r.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		// A single read must never span a 512-byte phase boundary.
		if (total%512)+n > 512 {
			t.Fatalf("read of %d at offset %d crossed phase boundary", n, total)
		}
		total += n
	}
}

func TestAlternatingReaderValidation(t *testing.T) {
	for _, f := range []func(){
		func() { corpus.NewAlternatingReader(nil, 10, 1) },
		func() { corpus.NewAlternatingReader([]corpus.Kind{corpus.High}, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid parameters")
				}
			}()
			f()
		}()
	}
}

func TestLoadOrGenerate(t *testing.T) {
	// Without the env var: synthetic data.
	t.Setenv(corpus.CanterburyEnv, "")
	data, real := corpus.LoadOrGenerate(corpus.High, 1)
	if real || !bytes.Equal(data, corpus.GenerateFile(corpus.High, 1)) {
		t.Fatal("expected synthetic fallback")
	}
	// With the env var pointing at a directory containing the named file:
	// the real bytes.
	dir := t.TempDir()
	want := []byte("real canterbury bytes")
	if err := os.WriteFile(filepath.Join(dir, "alice29.txt"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv(corpus.CanterburyEnv, dir)
	data, real = corpus.LoadOrGenerate(corpus.Moderate, 1)
	if !real || !bytes.Equal(data, want) {
		t.Fatalf("real file not loaded: real=%v", real)
	}
	// Missing file inside the directory: fall back without error.
	data, real = corpus.LoadOrGenerate(corpus.Low, 1)
	if real || len(data) != corpus.Low.FileSize() {
		t.Fatal("expected synthetic fallback for missing file")
	}
}

func TestHighDataIsMostlyZero(t *testing.T) {
	data := corpus.Generate(corpus.High, 1<<20, 3)
	zeros := 0
	for _, b := range data {
		if b == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(data))
	if frac < 0.70 {
		t.Fatalf("fax-like data only %.0f%% white; expected mostly-white page", frac*100)
	}
}

func TestModerateDataIsASCIIText(t *testing.T) {
	data := corpus.Generate(corpus.Moderate, 1<<20, 3)
	for i, b := range data {
		printable := b >= 32 && b < 127 || b == '\n'
		if !printable {
			t.Fatalf("non-text byte 0x%02x at offset %d", b, i)
		}
	}
	if !bytes.Contains(data, []byte(" the ")) {
		t.Fatal("text does not look like English")
	}
}

func TestLowDataHasJPEGStuffing(t *testing.T) {
	data := corpus.Generate(corpus.Low, 1<<20, 3)
	// In an entropy-coded JPEG segment every 0xFF is followed by 0x00 or a
	// marker byte (0xD0-0xD7 restarts here).
	for i := 0; i < len(data)-1; i++ {
		if data[i] == 0xFF {
			next := data[i+1]
			if next != 0x00 && (next < 0xD0 || next > 0xD7) {
				t.Fatalf("unstuffed 0xFF at offset %d (next=0x%02x)", i, next)
			}
			i++
		}
	}
}

func TestParseMix(t *testing.T) {
	cases := []struct {
		spec string
		want []corpus.Kind
		ok   bool
	}{
		{"", corpus.Kinds(), true},
		{"high,low", []corpus.Kind{corpus.High, corpus.Low}, true},
		{"HIGH=2, moderate", []corpus.Kind{corpus.High, corpus.High, corpus.Moderate}, true},
		{"low=3", []corpus.Kind{corpus.Low, corpus.Low, corpus.Low}, true},
		{"ptt5,image.jpg", []corpus.Kind{corpus.High, corpus.Low}, true},
		{"bogus", nil, false},
		{"high=0", nil, false},
		{"high=x", nil, false},
	}
	for _, c := range cases {
		got, err := corpus.ParseMix(c.spec)
		if c.ok != (err == nil) {
			t.Fatalf("ParseMix(%q) err = %v, want ok=%v", c.spec, err, c.ok)
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseMix(%q) = %v, want %v", c.spec, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseMix(%q)[%d] = %v, want %v", c.spec, i, got[i], c.want[i])
			}
		}
	}
}
