// Package corpus generates deterministic synthetic test data mirroring the
// three files the paper's evaluation transmits (Section IV-A):
//
//   - High: the Canterbury Corpus file ptt5, a CCITT fax bilevel image that
//     common compressors shrink to 10–15 % of its original size;
//   - Moderate: alice29.txt, English prose with a 30–50 % compression ratio;
//   - Low: a ~250 KB JPEG image compressing only to 90–95 %.
//
// The real files cannot be shipped, so the generators synthesize data with
// the same statistical character: long white runs with sparse line structure
// for the fax image, Zipf-weighted English-like prose for the text, and
// high-entropy data with JPEG-style marker stuffing for the image. The codec
// test suite pins the resulting compression ratios to the paper's bands.
//
// Like the paper's sender task, which "repeatedly wrote the respective test
// files to the network channel", NewFileReader loops a single generated file
// of the canonical size.
package corpus

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Kind selects a compressibility class.
type Kind int

// The three compressibility classes of Section IV-A.
const (
	High     Kind = iota // ptt5-like fax image, ratio ~0.10–0.15
	Moderate             // alice29.txt-like prose, ratio ~0.30–0.50
	Low                  // image.jpg-like entropy data, ratio ~0.90–0.95
)

// String returns the paper's label for the kind.
func (k Kind) String() string {
	switch k {
	case High:
		return "HIGH"
	case Moderate:
		return "MODERATE"
	case Low:
		return "LOW"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// FileName returns the name of the corresponding paper file.
func (k Kind) FileName() string {
	switch k {
	case High:
		return "ptt5"
	case Moderate:
		return "alice29.txt"
	case Low:
		return "image.jpg"
	default:
		return "unknown"
	}
}

// FileSize returns the canonical size of the corresponding paper file in
// bytes (ptt5 and alice29.txt from the Canterbury Corpus, image.jpg "about
// 250 KB" per the paper).
func (k Kind) FileSize() int {
	switch k {
	case High:
		return 513216
	case Moderate:
		return 152089
	case Low:
		return 256000
	default:
		return 0
	}
}

// Kinds lists all compressibility classes in the paper's order.
func Kinds() []Kind { return []Kind{High, Moderate, Low} }

// ParseKind parses a compressibility-class name ("high", "moderate", "low",
// case-insensitive; the paper file names work too).
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "high", "ptt5":
		return High, nil
	case "moderate", "alice29.txt", "text":
		return Moderate, nil
	case "low", "image.jpg", "jpeg":
		return Low, nil
	default:
		return 0, fmt.Errorf("corpus: unknown kind %q (want high, moderate or low)", s)
	}
}

// ParseMix parses a workload-mix spec into a weighted kind cycle for load
// generation (cmd/acload -mix): a comma-separated list of kind names, each
// optionally weighted with "=N" ("high,low" or "high=3,low=1"). The result
// repeats each kind weight times, so uniform sampling over it reproduces
// the requested ratio. An empty spec means all three classes, equally
// weighted.
func ParseMix(spec string) ([]Kind, error) {
	if strings.TrimSpace(spec) == "" {
		return Kinds(), nil
	}
	var mix []Kind
	for _, part := range strings.Split(spec, ",") {
		name, weightStr, weighted := strings.Cut(part, "=")
		weight := 1
		if weighted {
			w, err := strconv.Atoi(strings.TrimSpace(weightStr))
			if err != nil || w < 1 {
				return nil, fmt.Errorf("corpus: bad mix weight %q in %q", weightStr, part)
			}
			weight = w
		}
		kind, err := ParseKind(name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < weight; i++ {
			mix = append(mix, kind)
		}
	}
	return mix, nil
}

// rng is a splitmix64 generator: tiny, fast and stable across Go releases,
// so corpus bytes are reproducible forever given (kind, seed).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed ^ 0x9E3779B97F4A7C15} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Generate returns n bytes of the given kind, deterministic for (kind, seed).
func Generate(kind Kind, n int, seed uint64) []byte {
	out := make([]byte, 0, n)
	g := newGenerator(kind, seed)
	for len(out) < n {
		out = g.append(out, n-len(out))
	}
	return out[:n]
}

// GenerateFile returns one file of the canonical size for the kind.
func GenerateFile(kind Kind, seed uint64) []byte {
	return Generate(kind, kind.FileSize(), seed)
}

// generator produces data incrementally.
type generator interface {
	// append appends up to max bytes (at least 1) to dst.
	append(dst []byte, max int) []byte
}

func newGenerator(kind Kind, seed uint64) generator {
	switch kind {
	case High:
		return &faxGenerator{r: newRNG(seed)}
	case Moderate:
		return newTextGenerator(seed)
	case Low:
		return &entropyGenerator{r: newRNG(seed)}
	default:
		panic(fmt.Sprintf("corpus: unknown kind %d", int(kind)))
	}
}

// ---------- HIGH: fax-like bilevel image ----------

// faxGenerator emits mostly-white scanline data with sparse, vertically
// correlated black structures, like a scanned text page: long zero runs
// interrupted by short repeating ink patterns.
type faxGenerator struct {
	r *rng
	// pattern is the current "text line" ink pattern, reused across
	// several rows to create the vertical correlation real fax pages have.
	pattern  []byte
	rowsLeft int
}

const faxRowBytes = 216 // 1728 px / 8, the CCITT G3 scan width

func (g *faxGenerator) append(dst []byte, max int) []byte {
	row := make([]byte, faxRowBytes)
	if g.rowsLeft == 0 {
		// Start a new band: either blank space or a text band.
		if g.r.float() < 0.35 {
			g.pattern = nil // blank band
			g.rowsLeft = 4 + g.r.intn(24)
		} else {
			// A text line: a short ink pattern placed at a few
			// positions across the row.
			p := make([]byte, 2+g.r.intn(5))
			for i := range p {
				p[i] = byte(g.r.next())
			}
			g.pattern = p
			g.rowsLeft = 6 + g.r.intn(10)
		}
	}
	g.rowsLeft--
	if g.pattern != nil {
		// Stamp the pattern at regular positions with slight jitter.
		step := 24 + g.r.intn(8)
		for x := g.r.intn(8); x+len(g.pattern) < faxRowBytes; x += step {
			copy(row[x:], g.pattern)
		}
	}
	// Scanner noise: isolated specks that appear on real fax scans. This
	// is what keeps the data from compressing far below the 10–15 % band
	// the paper reports for ptt5.
	specks := 3 + g.r.intn(4)
	for i := 0; i < specks; i++ {
		x := g.r.intn(faxRowBytes - 2)
		row[x] = byte(g.r.next())
		if g.r.intn(2) == 0 {
			row[x+1] = byte(g.r.next())
		}
	}
	if max < len(row) {
		row = row[:max]
	}
	return append(dst, row...)
}

// ---------- MODERATE: English-like prose ----------

// vocabulary is a Zipf-weighted word list; common words first. The generator
// samples rank r with probability proportional to 1/(r+2), which matches the
// heavy-tailed word distribution of natural English closely enough for LZ
// compressors to land in the paper's 30–50 % band.
var vocabulary = []string{
	"the", "and", "to", "of", "a", "she", "it", "said", "in", "was",
	"you", "that", "as", "her", "at", "with", "on", "all", "had", "but",
	"alice", "for", "so", "be", "not", "very", "what", "this", "they", "little",
	"he", "out", "is", "down", "up", "one", "about", "then", "were", "went",
	"like", "know", "would", "when", "could", "there", "king", "them", "began",
	"queen", "time", "see", "how", "well", "who", "me", "thought", "into",
	"turtle", "your", "do", "off", "its", "round", "again", "have", "no",
	"way", "rabbit", "head", "voice", "looked", "mock", "quite", "gryphon",
	"first", "never", "herself", "get", "or", "thing", "say", "great", "hatter",
	"just", "some", "took", "large", "duchess", "than", "now", "more", "other",
	"over", "under", "much", "here", "once", "door", "eyes", "before", "after",
	"thing", "found", "made", "might", "come", "back", "think", "their", "got",
	"moment", "words", "long", "course", "replied", "nothing", "while", "last",
	"dormouse", "white", "things", "cat", "old", "three", "look", "curious",
	"tone", "seemed", "same", "day", "make", "march", "hare", "table", "two",
	"caterpillar", "poor", "garden", "any", "cried", "suddenly", "because",
	"mouse", "such", "talking", "rather", "right", "tell", "wonder", "soon",
	"wish", "himself", "remark", "side", "sort", "added", "only", "minute",
}

type textGenerator struct {
	r           *rng
	col         int
	wordsInSent int
	sentLen     int
	sentsInPara int
	paraLen     int
	startOfSent bool
}

func newTextGenerator(seed uint64) *textGenerator {
	g := &textGenerator{r: newRNG(seed), startOfSent: true}
	g.sentLen = 5 + g.r.intn(11)
	g.paraLen = 3 + g.r.intn(5)
	return g
}

// zipfWord samples a word by Zipf rank.
func (g *textGenerator) zipfWord() string {
	// Inverse-CDF sampling over weights 1/(r+2) is approximated by
	// exponentiating a uniform variate; cheap and close enough.
	u := g.r.float()
	idx := int(u * u * u * float64(len(vocabulary)))
	if idx >= len(vocabulary) {
		idx = len(vocabulary) - 1
	}
	return vocabulary[idx]
}

func (g *textGenerator) append(dst []byte, max int) []byte {
	var piece []byte
	w := g.zipfWord()
	if g.startOfSent {
		piece = append(piece, w[0]-'a'+'A')
		piece = append(piece, w[1:]...)
		g.startOfSent = false
	} else {
		piece = append(piece, w...)
	}
	g.wordsInSent++
	if g.wordsInSent >= g.sentLen {
		switch g.r.intn(10) {
		case 0:
			piece = append(piece, '!')
		case 1:
			piece = append(piece, '?')
		default:
			piece = append(piece, '.')
		}
		g.wordsInSent = 0
		g.sentLen = 5 + g.r.intn(11)
		g.startOfSent = true
		g.sentsInPara++
		if g.sentsInPara >= g.paraLen {
			piece = append(piece, '\n', '\n')
			g.sentsInPara = 0
			g.paraLen = 3 + g.r.intn(5)
			g.col = 0
		}
	}
	// Line wrapping at ~70 columns, like the Project Gutenberg plain text
	// alice29.txt actually ships.
	if g.col+len(piece) > 70 {
		piece = append(piece, '\n')
		g.col = 0
	} else {
		piece = append(piece, ' ')
		g.col += len(piece)
	}
	if len(piece) > max {
		piece = piece[:max]
	}
	return append(dst, piece...)
}

// ---------- LOW: JPEG-like entropy data ----------

// entropyGenerator emits high-entropy bytes with the light structure of a
// JPEG entropy-coded segment: 0xFF bytes are followed by 0x00 stuffing, and
// restart markers (0xFFD0–0xFFD7) appear periodically. A small fraction of
// short repeats keeps the data barely compressible (~90–95 %), matching the
// paper's description of image.jpg.
type entropyGenerator struct {
	r     *rng
	count int
}

func (g *entropyGenerator) append(dst []byte, max int) []byte {
	n := 256
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		b := byte(g.r.next())
		g.count++
		if b == 0xFF {
			dst = append(dst, 0xFF, 0x00)
			i++
			continue
		}
		if g.count%1719 == 0 {
			// Restart marker interval.
			dst = append(dst, 0xFF, 0xD0|byte(g.r.intn(8)))
			i++
			continue
		}
		if g.r.float() < 0.03 {
			// Short repeated runs: zero-coefficient stretches in the
			// entropy stream give real JPEGs their few compressible
			// percent.
			run := 4 + g.r.intn(8)
			for j := 0; j < run && i < n; j++ {
				dst = append(dst, b)
				i++
			}
			continue
		}
		dst = append(dst, b)
	}
	return dst
}

// ---------- readers ----------

// fileReader loops one generated file forever, mirroring the paper's sender
// task which repeatedly wrote the same test file until 50 GB were produced.
type fileReader struct {
	file []byte
	off  int
}

// NewFileReader returns an io.Reader that endlessly repeats one generated
// file of the canonical size for the kind.
func NewFileReader(kind Kind, seed uint64) io.Reader {
	return &fileReader{file: GenerateFile(kind, seed)}
}

// NewLoopReader endlessly repeats the supplied content.
func NewLoopReader(content []byte) io.Reader {
	if len(content) == 0 {
		panic("corpus: empty loop content")
	}
	return &fileReader{file: content}
}

// CanterburyEnv names the environment variable pointing at a directory with
// the real Canterbury Corpus files; when set, LoadOrGenerate serves the
// paper's actual test files instead of the synthetic stand-ins.
const CanterburyEnv = "ADAPTIO_CANTERBURY_DIR"

// LoadOrGenerate returns the kind's canonical file: the real file from
// $ADAPTIO_CANTERBURY_DIR (matching the kind's FileName) when that variable
// is set and the file exists, otherwise the deterministic synthetic file.
// The boolean reports whether real data was loaded.
func LoadOrGenerate(kind Kind, seed uint64) ([]byte, bool) {
	dir := os.Getenv(CanterburyEnv)
	if dir == "" {
		return GenerateFile(kind, seed), false
	}
	data, err := os.ReadFile(filepath.Join(dir, kind.FileName()))
	if err != nil || len(data) == 0 {
		return GenerateFile(kind, seed), false
	}
	return data, true
}

func (r *fileReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		c := copy(p[n:], r.file[r.off:])
		n += c
		r.off += c
		if r.off == len(r.file) {
			r.off = 0
		}
	}
	return n, nil
}

// alternatingReader switches between kinds every `every` bytes (the Figure 6
// workload: HIGH and LOW alternating every 10 GB).
type alternatingReader struct {
	readers []io.Reader
	every   int64
	total   int64
}

// NewAlternatingReader returns a reader cycling through the kinds, switching
// after each `every` bytes read.
func NewAlternatingReader(kinds []Kind, every int64, seed uint64) io.Reader {
	if len(kinds) == 0 || every <= 0 {
		panic("corpus: invalid alternating reader parameters")
	}
	rs := make([]io.Reader, len(kinds))
	for i, k := range kinds {
		rs[i] = NewFileReader(k, seed+uint64(i))
	}
	return &alternatingReader{readers: rs, every: every}
}

func (a *alternatingReader) Read(p []byte) (int, error) {
	phase := int(a.total / a.every % int64(len(a.readers)))
	// Do not cross a phase boundary within one Read so switches are exact.
	remain := a.every - a.total%a.every
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := a.readers[phase].Read(p)
	a.total += int64(n)
	return n, err
}
