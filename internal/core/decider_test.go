package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newTestDecider(t *testing.T, cfg Config) *AlgorithmOne {
	t.Helper()
	d, err := NewDecider(cfg)
	if err != nil {
		t.Fatalf("NewDecider(%+v): %v", cfg, err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDecider(Config{Levels: 0}); err == nil {
		t.Error("zero levels accepted")
	}
	if _, err := NewDecider(Config{Levels: 4, Alpha: -0.1}); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewDecider(Config{Levels: 4, MaxBackoffExp: -1}); err == nil {
		t.Error("negative backoff cap accepted")
	}
	d, err := NewDecider(Config{Levels: 4})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if d.cfg.Alpha != DefaultAlpha {
		t.Errorf("alpha default not applied: %v", d.cfg.Alpha)
	}
}

func TestMustNewDeciderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewDecider(Config{Levels: -1})
}

func TestInitialState(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	if d.Level() != 0 {
		t.Fatalf("initial level = %d, want 0 (Table I: ccl initially 0)", d.Level())
	}
	for i := 0; i < 4; i++ {
		if d.Backoff(i) != 0 {
			t.Fatalf("initial backoff[%d] = %d, want 0", i, d.Backoff(i))
		}
	}
}

// TestFirstCallProbesUp: on the first call pdr is primed with cdr (Table I),
// so |d| = 0 <= alpha*pdr, the zero backoff has expired (c=1 >= 2^0) and inc
// is initially TRUE, so the algorithm probes up to level 1.
func TestFirstCallProbesUp(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	if got := d.Observe(100); got != 1 {
		t.Fatalf("first observation -> level %d, want 1", got)
	}
}

// TestImprovementRewardsLevel: a rate improvement must increment the current
// level's backoff exponent and not change the level (lines 15-18).
func TestImprovementRewardsLevel(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100)        // probe 0 -> 1
	lvl := d.Observe(200) // +100% at level 1: improvement
	if lvl != 1 {
		t.Fatalf("improvement changed level to %d", lvl)
	}
	if d.Backoff(1) != 1 {
		t.Fatalf("backoff[1] = %d, want 1 after improvement", d.Backoff(1))
	}
}

// TestDegradationReverts: a degradation must reset the level's backoff and
// revert the previous change immediately (lines 19-27), i.e. within one
// window, as the paper emphasizes.
func TestDegradationReverts(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100)       // level 0 -> 1 (probe up, inc=true)
	lvl := d.Observe(50) // -50%: degradation at level 1
	if lvl != 0 {
		t.Fatalf("degradation at level 1 -> level %d, want revert to 0", lvl)
	}
	if d.Backoff(1) != 0 {
		t.Fatalf("backoff[1] = %d, want 0 after degradation", d.Backoff(1))
	}
}

// TestAlphaToleranceBand: changes within alpha*pdr count as "no change".
func TestAlphaToleranceBand(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4, Alpha: 0.2})
	d.Observe(100) // -> level 1
	// 100 -> 115 is within 20% of pdr=100: "no change". Backoff for level
	// 1 is 0, c=1 >= 2^0, so it probes again (inc=true): level 2.
	if got := d.Observe(115); got != 2 {
		t.Fatalf("stable rate did not probe: level %d, want 2", got)
	}
	// 115 -> 137 is within 20% of 115 (limit 138): still stable, probe to 3.
	if got := d.Observe(137); got != 3 {
		t.Fatalf("stable rate did not probe: level %d, want 3", got)
	}
}

// TestExponentialBackoff verifies the core scheduling property: after k
// consecutive improvements at a level, the next probe needs 2^k stable
// windows (line 6: c >= 2^bck[ccl]).
func TestExponentialBackoff(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100) // -> level 1 (probe)
	// Three improvements at level 1: backoff exponent reaches 3.
	d.Observe(200)
	d.Observe(400)
	d.Observe(800)
	if d.Backoff(1) != 3 {
		t.Fatalf("backoff[1] = %d, want 3", d.Backoff(1))
	}
	// Now the rate is stable: the next probe must take exactly 2^3 = 8
	// stable windows.
	for i := 1; i < 8; i++ {
		if got := d.Observe(800); got != 1 {
			t.Fatalf("probe fired after only %d stable windows (level %d)", i, got)
		}
	}
	if got := d.Observe(800); got == 1 {
		t.Fatal("probe did not fire after 2^3 stable windows")
	}
}

// TestBackoffResetReenablesProbing: after a degradation resets bck[ccl],
// probes at that level become frequent again (line 21 and §III-A: "optimistic
// switches ... again become more frequent ... in the future").
func TestBackoffResetReenablesProbing(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100)
	d.Observe(200)
	d.Observe(400) // backoff[1] = 2
	d.Observe(100) // degradation at level 1: revert to 0, bck[1]=0
	if d.Level() != 0 || d.Backoff(1) != 0 {
		t.Fatalf("state after degradation: level=%d bck[1]=%d", d.Level(), d.Backoff(1))
	}
}

// TestProbeDirectionFollowsInc: after a revert from an increase, inc is
// false, so the next optimistic probe goes downward.
func TestProbeDirectionFollowsInc(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100) // 0 -> 1 probe up, inc=true
	d.Observe(300) // improvement; stay at 1, bck[1]=1
	d.Observe(300) // stable, c=1 < 2^1: no probe
	d.Observe(300) // stable, c=2 >= 2^1: probe up (inc=true) -> 2
	if d.Level() != 2 {
		t.Fatalf("expected probe to 2, at %d", d.Level())
	}
	d.Observe(150) // degradation at 2: revert to 1, inc=false
	if d.Level() != 1 {
		t.Fatalf("expected revert to 1, at %d", d.Level())
	}
	d.Observe(300) // improvement back at 1 (150->300): bck[1] now 2, stay
	if d.Backoff(1) != 2 {
		t.Fatalf("backoff[1] = %d, want 2", d.Backoff(1))
	}
	d.Observe(300) // stable c=1 < 2^2
	d.Observe(300) // stable c=2 < 2^2
	d.Observe(300) // stable c=3 < 2^2
	d.Observe(300) // stable c=4 >= 2^2: probe with inc=false -> down to 0
	if d.Level() != 0 {
		t.Fatalf("probe after revert went to %d, want 0 (downward)", d.Level())
	}
}

// TestEdgeFlipAtBottom: a probe below level 0 flips to probe upward.
func TestEdgeFlipAtBottom(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100) // 0 -> 1, inc=true
	d.Observe(50)  // degradation: revert to 0, inc=false
	// Stable windows at level 0: probe direction is down, flips to up.
	lvl := d.Observe(50)
	if lvl != 1 {
		t.Fatalf("edge probe at level 0 went to %d, want flip up to 1", lvl)
	}
}

// TestEdgeRevertStaysAtBottom: a degradation at level 0 with inc=true would
// revert to -1; it must stay at 0 and not spuriously probe upward.
func TestEdgeRevertStaysAtBottom(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 1})
	d.Observe(100)
	lvl := d.Observe(10) // heavy degradation, nowhere to go
	if lvl != 0 {
		t.Fatalf("revert at single-level ladder moved to %d", lvl)
	}
}

// TestEdgeFlipAtTop: probes beyond the top level flip to probe downward.
func TestEdgeFlipAtTop(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 3})
	d.Observe(100) // -> 1
	d.Observe(100) // stable -> probe up -> 2 (top)
	if d.Level() != 2 {
		t.Fatalf("setup failed, at level %d", d.Level())
	}
	lvl := d.Observe(100) // stable at top: probe up flips to down -> 1
	if lvl != 1 {
		t.Fatalf("edge probe at top went to %d, want 1", lvl)
	}
}

// TestSingleLevelLadderNeverMoves: with n=1 every decision must return 0.
func TestSingleLevelLadderNeverMoves(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 1})
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if lvl := d.Observe(rnd.Float64() * 1000); lvl != 0 {
			t.Fatalf("single-level ladder returned %d", lvl)
		}
	}
}

// TestLevelAlwaysInRange is the safety property: whatever rate sequence is
// observed, the selected level stays within [0, n).
func TestLevelAlwaysInRange(t *testing.T) {
	prop := func(levels uint8, seed int64, n uint16) bool {
		nLevels := int(levels)%8 + 1
		d := MustNewDecider(Config{Levels: nLevels})
		rnd := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			var rate float64
			switch rnd.Intn(4) {
			case 0:
				rate = 0
			case 1:
				rate = rnd.Float64() * 1e9
			case 2:
				rate = 100
			default:
				rate = 100 * (1 + rnd.NormFloat64()*0.3)
				if rate < 0 {
					rate = 0
				}
			}
			lvl := d.Observe(rate)
			if lvl < 0 || lvl >= nLevels {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestZeroRateStream: an all-zero rate stream (stalled I/O) must not panic,
// divide by zero, or leave the valid range.
func TestZeroRateStream(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	for i := 0; i < 100; i++ {
		lvl := d.Observe(0)
		if lvl < 0 || lvl > 3 {
			t.Fatalf("level %d out of range on zero rates", lvl)
		}
	}
}

// TestConvergenceToBestLevel runs the decider against a synthetic environment
// in which level `best` yields a strictly higher application data rate and
// verifies the decider spends the large majority of windows there. This is
// the paper's headline behaviour (Figure 4).
func TestConvergenceToBestLevel(t *testing.T) {
	rates := []float64{80, 200, 140, 25} // level 1 is best (LIGHT on HIGH data)
	d := newTestDecider(t, Config{Levels: 4})
	atBest := 0
	lvl := 0
	rnd := rand.New(rand.NewSource(7))
	const windows = 600
	for i := 0; i < windows; i++ {
		rate := rates[lvl] * (1 + rnd.NormFloat64()*0.02)
		lvl = d.Observe(rate)
		if lvl == 1 {
			atBest++
		}
	}
	if frac := float64(atBest) / windows; frac < 0.80 {
		t.Fatalf("decider spent only %.0f%% of windows at the best level", frac*100)
	}
}

// TestProbingDecaysExponentially verifies that in a stable environment the
// number of probes in successive equal-length intervals decreases, the
// behaviour visible in Figure 4's compression-level timeline.
func TestProbingDecaysExponentially(t *testing.T) {
	rates := []float64{80, 200, 140, 25}
	d := newTestDecider(t, Config{Levels: 4})
	lvl := 0
	countSwitches := func(windows int) int {
		switches := 0
		prev := d.Level()
		for i := 0; i < windows; i++ {
			lvl = d.Observe(rates[lvl])
			if lvl != prev {
				switches++
			}
			prev = lvl
		}
		return switches
	}
	first := countSwitches(100)
	second := countSwitches(100)
	third := countSwitches(100)
	if !(first >= second && second >= third) {
		t.Fatalf("switch counts not decaying: %d, %d, %d", first, second, third)
	}
	if third > first && first > 0 {
		t.Fatalf("probing increased over time: %d -> %d", first, third)
	}
}

// TestImmediateReactionToDegradation: the paper claims the algorithm "can
// always react to degradations of the application data rate immediately
// (i.e. after t seconds)". Simulate a long stable phase (large backoff) and
// then a sharp drop; the level must change on the very next observation.
func TestImmediateReactionToDegradation(t *testing.T) {
	rates := []float64{80, 200, 140, 25}
	d := newTestDecider(t, Config{Levels: 4})
	lvl := 0
	for i := 0; i < 200; i++ {
		lvl = d.Observe(rates[lvl])
	}
	if lvl != 1 {
		t.Fatalf("setup: expected convergence to level 1, at %d", lvl)
	}
	before := d.Level()
	after := d.Observe(rates[lvl] * 0.2) // sharp degradation
	if after == before {
		t.Fatal("no immediate reaction to sharp degradation")
	}
}

// TestDisableBackoffProbesEveryStableWindow covers the A3 ablation knob.
func TestDisableBackoffProbesEveryStableWindow(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4, DisableBackoff: true})
	d.Observe(100)
	d.Observe(300) // improvement: would normally set bck[1]=1
	if d.Backoff(1) != 0 {
		t.Fatalf("backoff accumulated despite DisableBackoff: %d", d.Backoff(1))
	}
	lvlA := d.Observe(300) // stable: probe immediately
	lvlB := d.Observe(300) // stable: probe again immediately
	if lvlA == 1 && lvlB == 1 {
		t.Fatal("no probing with backoff disabled")
	}
}

// TestMaxBackoffExpCap covers the capped-backoff extension.
func TestMaxBackoffExpCap(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 2, MaxBackoffExp: 2})
	d.Observe(100)
	for i := 0; i < 10; i++ {
		d.Observe(100 * float64(i+2)) // continuous improvement
	}
	if d.Backoff(1) > 2 {
		t.Fatalf("backoff %d exceeds cap 2", d.Backoff(1))
	}
}

// TestStatsCounters sanity-checks the diagnostic counters.
func TestStatsCounters(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100) // probe
	d.Observe(200) // reward
	d.Observe(50)  // revert
	probes, reverts, rewards, observed := d.Stats()
	if probes != 1 || reverts != 1 || rewards != 1 || observed != 3 {
		t.Fatalf("stats = %d probes, %d reverts, %d rewards, %d observed",
			probes, reverts, rewards, observed)
	}
}

func TestSnapshotAndString(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	d.Observe(100e6)
	d.Observe(200e6)
	snap := d.Snapshot()
	if snap.CCL != d.Level() || snap.Observed != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Bck) != 4 || snap.Bck[1] != d.Backoff(1) {
		t.Fatalf("snapshot backoffs = %v", snap.Bck)
	}
	// Snapshot must be a copy, not an alias.
	snap.Bck[1] = 99
	if d.Backoff(1) == 99 {
		t.Fatal("snapshot aliases internal state")
	}
	s := d.String()
	for _, want := range []string{"ccl=", "bck=", "pdr=200.0MB/s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// TestQuickNoNaNPropagation: NaN and Inf inputs must not corrupt the state
// machine into an invalid level. (Rates come from measured byte counts so
// they are finite in practice, but the state machine must stay safe.)
func TestExtremeCdrValues(t *testing.T) {
	d := newTestDecider(t, Config{Levels: 4})
	inputs := []float64{1e308, 0, 1e-308, 5, 1e308, 3}
	for _, in := range inputs {
		lvl := d.Observe(in)
		if lvl < 0 || lvl > 3 {
			t.Fatalf("level %d out of range for input %v", lvl, in)
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	d := MustNewDecider(Config{Levels: 4})
	rnd := rand.New(rand.NewSource(1))
	rates := make([]float64, 1024)
	for i := range rates {
		rates[i] = 100 * (1 + rnd.NormFloat64()*0.2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(rates[i%len(rates)])
	}
}
