package core

import (
	"fmt"
	"math"

	"adaptio/internal/xrand"
)

// Bandit tuning constants. Calibrated against the policy-matrix suite
// (internal/experiments/decider_matrix_test.go): loose enough that the
// bandit keeps tracking regime shifts, tight enough that it stops paying
// for probes Algorithm 1 keeps wasting.
const (
	// banditQInit is the optimistic initial action value of every
	// context: unvisited contexts probe exactly like Algorithm 1 until
	// evidence arrives.
	banditQInit = 0.10
	// banditGain is the EWMA gain of the per-context action-value
	// updates — one decisively failed probe closes its context's gate.
	banditGain = 0.30
	// banditEpsilon is the exploration probability: a closed gate is
	// still probed this often, so a context whose economics improved is
	// rediscovered instead of starved.
	banditEpsilon = 0.10
	// banditTrendGain smooths the relative rate change into the trend
	// context dimension.
	banditTrendGain = 0.30
	// banditRatioGain smooths the observed compression ratio fed via
	// ObserveRatio into the ratio context dimension.
	banditRatioGain = 0.20
	// banditRevertMemory is how many windows a revert stays in the
	// context vector ("recently burned").
	banditRevertMemory = 8
	// banditMaxVetoes bounds how many consecutive windows a closed gate
	// may delay a released probe before it is forced through. The veto is
	// a delay, not a cancellation: without the bound, a context whose
	// economics silently improved (a share step at a compressor-bound
	// plateau is invisible in the rate signal) could starve probing
	// forever, and the policy would never re-converge.
	banditMaxVetoes = 8
)

// BanditDecider is a contextual bandit over Algorithm 1's probe decision:
// it keeps the paper's skeleton — tolerance band, exponential backoff
// pacing, immediate revert on degradation — but treats "take the optimistic
// probe the backoff just released" as a bandit arm whose value is learned
// per context (epsilon-greedy with optimistic initialization). Where
// Algorithm 1 probes unconditionally whenever the backoff expires, the
// bandit consults the learned value of probing in the current context and
// holds when probing there has historically degraded the rate, paying only
// an epsilon exploration tax. ADARES (PAPERS.md) motivates the approach:
// static probe rules flail exactly where context is informative.
//
// The context vector is built from the obs-layer signals the stream layer
// already exports (docs/observability.md): the current level, the probe
// direction, a smoothed window-rate trend bucket, a recent-revert bit
// (revert/backoff history) and a smoothed compression-ratio bucket (fed via
// ObserveRatio where the caller knows per-window byte totals; a neutral
// bucket otherwise). All randomness comes from the seeded RNG in the
// config, so a trace is exactly reproducible.
type BanditDecider struct {
	levels int
	alpha  float64
	rng    *xrand.RNG

	ccl int   // current level
	c   int   // calls since last level change (backoff pacing)
	inc bool  // probe direction, initially up
	bck []int // per-level backoff exponents

	pdr      float64 // previous window's rate
	havePrev bool

	trend      float64 // EWMA of relative rate change
	ratio      float64 // EWMA of observed wire/app ratio; <0 = never fed
	lastRevert int     // observation index of the latest revert
	observed   int

	// Per-context action value and visit count of the probe arm.
	q      []float64
	visits []int

	// pendingCtx is the context of a probe whose outcome the next
	// observation settles; -1 when no probe is in flight.
	pendingCtx int
	// vetoes counts consecutive gate-held windows since the last probe.
	vetoes int

	probes, reverts, rewards, wasted int
	gated, explored, forced          int // diagnostic: gate holds / epsilon overrides / veto-budget expiries
	last                             Decision
}

// NewBandit creates a contextual-bandit decider.
func NewBandit(cfg PolicyConfig) (*BanditDecider, error) {
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("core: config needs at least 1 level, got %d", cfg.Levels)
	}
	if cfg.Alpha < 0 {
		return nil, fmt.Errorf("core: negative alpha %v", cfg.Alpha)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	n := cfg.Levels * 2 * 3 * 2 * 3 // level x dir x trend x revert x ratio
	b := &BanditDecider{
		levels:     cfg.Levels,
		alpha:      alpha,
		rng:        xrand.New(cfg.Seed ^ 0xBA4D17),
		inc:        true,
		bck:        make([]int, cfg.Levels),
		ratio:      -1,
		lastRevert: -1 << 20,
		q:          make([]float64, n),
		visits:     make([]int, n),
		pendingCtx: -1,
	}
	for i := range b.q {
		b.q[i] = banditQInit
	}
	return b, nil
}

// ObserveRatio implements RatioObserver: the achieved wire/app ratio joins
// the context vector.
func (b *BanditDecider) ObserveRatio(ratio float64) {
	if ratio <= 0 || math.IsNaN(ratio) || math.IsInf(ratio, 0) {
		return
	}
	if b.ratio < 0 {
		b.ratio = ratio
		return
	}
	b.ratio += banditRatioGain * (ratio - b.ratio)
}

// Observe implements Decider.
func (b *BanditDecider) Observe(cdr float64) int {
	b.observed++
	if !b.havePrev {
		b.pdr = cdr
		b.havePrev = true
	}
	prev := b.pdr
	rel := 0.0
	if prev > 0 {
		rel = (cdr - prev) / prev
	}

	// Settle the in-flight probe: this window's relative rate change is
	// what the probe bought. Rewards are normalized by the tolerance
	// band and clipped, so an out-of-band collapse counts as -1.
	if b.pendingCtx >= 0 {
		r := rel / b.alpha
		if r > 1 {
			r = 1
		} else if r < -1 {
			r = -1
		}
		b.q[b.pendingCtx] += banditGain * (r - b.q[b.pendingCtx])
		b.visits[b.pendingCtx]++
		b.pendingCtx = -1
	}

	diff := cdr - prev
	abs := math.Abs(diff)
	from := b.ccl
	ncl := b.ccl
	kind := DecisionHold
	probeMove := false
	b.c++
	switch {
	case abs <= b.alpha*prev: // stable
		if b.backoffExpired() {
			ctx := b.context()
			take := b.q[ctx] > 0
			if !take && b.rng.Float64() < banditEpsilon {
				take = true
				b.explored++
			}
			if !take && b.vetoes >= banditMaxVetoes {
				take = true
				b.forced++
			}
			if take {
				b.vetoes = 0
				b.c = 0
				if b.inc {
					ncl++
				} else {
					ncl--
				}
				kind = DecisionProbe
				probeMove = true
				b.probes++
				b.pendingCtx = ctx
			} else {
				// A veto delays the released probe; c keeps running,
				// so the gate is re-rolled every window (epsilon gets
				// a fresh chance) until the veto budget runs out.
				b.gated++
				b.vetoes++
			}
		}
	case diff > 0: // improved: reinforce the level, as Algorithm 1 does
		if b.bck[b.ccl] < 62 {
			b.bck[b.ccl]++
		}
		b.c = 0
		b.rewards++
		kind = DecisionReward
	default: // degraded: reset backoff and retreat immediately
		b.bck[b.ccl] = 0
		if b.inc {
			ncl--
		} else {
			ncl++
		}
		kind = DecisionRevert
		b.reverts++
		b.lastRevert = b.observed
		if b.last.Kind == DecisionProbe {
			b.wasted++
		}
		b.c = 0
	}

	// Ladder-edge handling mirrors AlgorithmOne: probes flip direction,
	// reverts stay put.
	if ncl < 0 || ncl > b.levels-1 {
		if probeMove {
			if ncl < 0 {
				ncl = min(1, b.levels-1)
			} else {
				ncl = max(b.levels-2, 0)
			}
		} else {
			if ncl < 0 {
				ncl = 0
			} else {
				ncl = b.levels - 1
			}
		}
	}
	if ncl != b.ccl {
		b.inc = ncl > b.ccl
		b.ccl = ncl
	}
	b.pdr = cdr
	b.trend += banditTrendGain * (rel - b.trend)
	b.last = Decision{Kind: kind, From: from, To: b.ccl, Rate: cdr, PrevRate: prev, Backoff: b.bck[from]}
	return b.ccl
}

func (b *BanditDecider) backoffExpired() bool {
	exp := b.bck[b.ccl]
	if exp > 62 {
		return false
	}
	return b.c >= 1<<uint(exp)
}

// context discretizes the signal vector into a cell index.
func (b *BanditDecider) context() int {
	dir := 0
	if b.inc {
		dir = 1
	}
	tb := 1 // flat
	if b.trend < -b.alpha/2 {
		tb = 0
	} else if b.trend > b.alpha/2 {
		tb = 2
	}
	rr := 0
	if b.observed-b.lastRevert <= banditRevertMemory {
		rr = 1
	}
	rb := 1 // unknown or mid compressibility
	if b.ratio >= 0 {
		if b.ratio < 0.5 {
			rb = 0
		} else if b.ratio > 0.9 {
			rb = 2
		}
	}
	return (((b.ccl*2+dir)*3+tb)*2+rr)*3 + rb
}

// Level implements Decider.
func (b *BanditDecider) Level() int { return b.ccl }

// LastDecision implements Decider.
func (b *BanditDecider) LastDecision() Decision { return b.last }

// PolicyStats implements Decider.
func (b *BanditDecider) PolicyStats() PolicyStats {
	return PolicyStats{
		Probes:       b.probes,
		Reverts:      b.reverts,
		Rewards:      b.rewards,
		Observed:     b.observed,
		WastedProbes: b.wasted,
	}
}

// Name implements Decider.
func (b *BanditDecider) Name() string { return PolicyBandit }

// GateStats reports how often the learned gate held a probe Algorithm 1
// would have taken, and how often epsilon exploration overrode it
// (diagnostics for the policy catalog in docs/deciders.md).
func (b *BanditDecider) GateStats() (gated, explored int) { return b.gated, b.explored }
