package core

import (
	"testing"

	"adaptio/internal/xrand"
)

// Convergence property suite for the solo decider (satellite of the fleet
// coordinator PR): on a link whose fair share steps between regimes, a
// single paper decider must (a) settle on the goodput-optimal level and
// spend the bulk of every regime's steady state there, (b) re-converge
// after each step change, and (c) keep its excursions bounded — backoff
// must make probe/revert churn logarithmic, not linear, in time.
//
// The environment is chosen so adjacent levels differ by more than the
// alpha tolerance band in every regime; this is the regime where Algorithm
// 1 genuinely converges. (When neighbors sit inside the band the paper
// decider wanders by design — that failure mode is what internal/coord
// exists for, and what the contention suite in internal/coord measures.)
//
//	level:        0     1     2    3
//	ratio:        1.00  0.50  0.25 0.125
//	comp MB/s:    5000  40    30   6
//
//	share 100 MB/s -> achievable 100 / 40 / 30 / 6   (optimal: 0)
//	share  10 MB/s -> achievable  10 / 20 / 30 / 6   (optimal: 2)
type convergenceEnv struct {
	ratio []float64
	comp  []float64 // compressor-bound application rate cap, MB/s
}

func convEnv() convergenceEnv {
	return convergenceEnv{
		ratio: []float64{1.00, 0.50, 0.25, 0.125},
		comp:  []float64{5000, 40, 30, 6},
	}
}

// rate is the closed-loop achieved application rate at a level: the link
// share divided by the wire ratio, capped by compressor speed.
func (e convergenceEnv) rate(level int, shareMBps float64) float64 {
	r := shareMBps / e.ratio[level]
	if r > e.comp[level] {
		r = e.comp[level]
	}
	return r
}

// optimal is the argmax level for a share, ties to the lighter level.
func (e convergenceEnv) optimal(shareMBps float64) int {
	best, lvl := 0.0, 0
	for l := range e.ratio {
		if r := e.rate(l, shareMBps); r > best {
			best, lvl = r, l
		}
	}
	return lvl
}

// phase is one constant-share regime of the trace.
type phase struct {
	shareMBps float64
	windows   int
}

// runConvergence drives one decider through the phases, feeding it the
// closed-loop rate with mild multiplicative noise (sigma well inside the
// alpha band, as in the fleet simulator), and returns per-phase occupancy
// of the optimal level over each phase's second half plus the final level.
func runConvergence(t *testing.T, d Decider, phases []phase, seed uint64) (tailOcc []float64, final int) {
	t.Helper()
	env := convEnv()
	rng := xrand.New(seed)
	for _, ph := range phases {
		opt := env.optimal(ph.shareMBps)
		atOpt := 0
		for w := 0; w < ph.windows; w++ {
			r := env.rate(d.Level(), ph.shareMBps) * 1e6 * rng.NoiseFactor(0.02)
			d.Observe(r)
			if w >= ph.windows/2 && d.Level() == opt {
				atOpt++
			}
		}
		tail := ph.windows - ph.windows/2
		tailOcc = append(tailOcc, float64(atOpt)/float64(tail))
	}
	return tailOcc, d.Level()
}

func TestDeciderConvergesAcrossStepChanges(t *testing.T) {
	phases := []phase{
		{shareMBps: 100, windows: 100}, // optimal 0
		{shareMBps: 10, windows: 100},  // optimal 2
		{shareMBps: 100, windows: 100}, // optimal 0 again
	}
	env := convEnv()
	for seed := uint64(1); seed <= 20; seed++ {
		d := MustNewDecider(Config{Levels: 4})
		occ, final := runConvergence(t, d, phases, seed)
		for i, ph := range phases {
			// >= 70% of each regime's steady-state tail at the optimal
			// level: backoff-paced probes cost a bounded, shrinking
			// fraction of windows once the decider has settled.
			if occ[i] < 0.70 {
				t.Errorf("seed %d phase %d (share %.0f MB/s): optimal-level occupancy %.2f < 0.70",
					seed, i, ph.shareMBps, occ[i])
			}
		}
		if want := env.optimal(phases[len(phases)-1].shareMBps); final != want {
			t.Errorf("seed %d: final level %d, want optimal %d", seed, final, want)
		}
		probes, reverts, _, observed := d.Stats()
		// Bounded churn: with exponential backoff, excursions are
		// logarithmic per regime. 300 observations across 3 regimes must
		// stay far below one probe every other window; linear probing
		// (broken backoff) would show ~100+.
		if probes > 60 {
			t.Errorf("seed %d: %d probes over %d windows — backoff is not pacing excursions", seed, probes, observed)
		}
		if reverts > probes {
			t.Errorf("seed %d: %d reverts exceed %d probes", seed, reverts, probes)
		}
	}
}

// TestPolicyConvergence extends the convergence property to every selectable
// policy: the learned policies keep Algorithm 1's skeleton, so they must keep
// its convergence guarantees — same step-change phases, same 20 seeds, same
// >= 70% tail-occupancy bar and probe ceiling. A learned policy that gated
// its way out of re-converging (or probed linearly) fails here before the
// experiments-layer matrix ever runs.
func TestPolicyConvergence(t *testing.T) {
	phases := []phase{
		{shareMBps: 100, windows: 100}, // optimal 0
		{shareMBps: 10, windows: 100},  // optimal 2
		{shareMBps: 100, windows: 100}, // optimal 0 again
	}
	env := convEnv()
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			for seed := uint64(1); seed <= 20; seed++ {
				d := MustNewPolicy(policy, PolicyConfig{Levels: 4, Seed: seed})
				occ, final := runConvergence(t, d, phases, seed)
				for i, ph := range phases {
					if occ[i] < 0.70 {
						t.Errorf("seed %d phase %d (share %.0f MB/s): optimal-level occupancy %.2f < 0.70",
							seed, i, ph.shareMBps, occ[i])
					}
				}
				if want := env.optimal(phases[len(phases)-1].shareMBps); final != want {
					t.Errorf("seed %d: final level %d, want optimal %d", seed, final, want)
				}
				ps := d.PolicyStats()
				if ps.Probes > 60 {
					t.Errorf("seed %d: %d probes over %d windows — probe pacing broken", seed, ps.Probes, ps.Observed)
				}
				if ps.Reverts > ps.Probes {
					t.Errorf("seed %d: %d reverts exceed %d probes", seed, ps.Reverts, ps.Probes)
				}
			}
		})
	}
}

// TestPolicyDeterminism pins the reproducibility contract of the Decider
// interface: two instances of the same policy with the same seed, fed the
// same observation trace, must produce byte-for-byte identical decision
// traces — including the stochastic bandit, whose exploration must come
// entirely from the seeded RNG.
func TestPolicyDeterminism(t *testing.T) {
	phases := []phase{
		{shareMBps: 100, windows: 80},
		{shareMBps: 10, windows: 80},
		{shareMBps: 100, windows: 80},
	}
	trace := func(policy string, seed uint64) []Decision {
		d := MustNewPolicy(policy, PolicyConfig{Levels: 4, Seed: seed})
		env := convEnv()
		rng := xrand.New(seed)
		var out []Decision
		for _, ph := range phases {
			for w := 0; w < ph.windows; w++ {
				r := env.rate(d.Level(), ph.shareMBps) * 1e6 * rng.NoiseFactor(0.02)
				if ro, ok := d.(RatioObserver); ok {
					out2 := 0.3 + 0.4*rng.Float64()
					ro.ObserveRatio(out2)
				}
				d.Observe(r)
				out = append(out, d.LastDecision())
			}
		}
		return out
	}
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				a, b := trace(policy, seed), trace(policy, seed)
				if len(a) != len(b) {
					t.Fatalf("seed %d: trace lengths differ (%d vs %d)", seed, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("seed %d: decision %d differs: %+v vs %+v — policy is not deterministic",
							seed, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestDeciderConvergenceNeedsBackoff is this suite's sentinel, in the
// DisableRevert tradition of the shape-fidelity tests: with backoff
// disabled the same environment must show the linear probe churn the bound
// above rules out. If this ever fails, the churn bound has gone soft and
// TestDeciderConvergesAcrossStepChanges no longer proves backoff matters.
func TestDeciderConvergenceNeedsBackoff(t *testing.T) {
	phases := []phase{
		{shareMBps: 100, windows: 100},
		{shareMBps: 10, windows: 100},
		{shareMBps: 100, windows: 100},
	}
	d := MustNewDecider(Config{Levels: 4, DisableBackoff: true})
	runConvergence(t, d, phases, 1)
	probes, _, _, observed := d.Stats()
	if probes <= 60 {
		t.Fatalf("backoff-free decider made only %d probes over %d windows — the churn bound in the convergence test has no teeth",
			probes, observed)
	}
}
