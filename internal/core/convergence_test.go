package core

import (
	"testing"

	"adaptio/internal/xrand"
)

// Convergence property suite for the solo decider (satellite of the fleet
// coordinator PR): on a link whose fair share steps between regimes, a
// single paper decider must (a) settle on the goodput-optimal level and
// spend the bulk of every regime's steady state there, (b) re-converge
// after each step change, and (c) keep its excursions bounded — backoff
// must make probe/revert churn logarithmic, not linear, in time.
//
// The environment is chosen so adjacent levels differ by more than the
// alpha tolerance band in every regime; this is the regime where Algorithm
// 1 genuinely converges. (When neighbors sit inside the band the paper
// decider wanders by design — that failure mode is what internal/coord
// exists for, and what the contention suite in internal/coord measures.)
//
//	level:        0     1     2    3
//	ratio:        1.00  0.50  0.25 0.125
//	comp MB/s:    5000  40    30   6
//
//	share 100 MB/s -> achievable 100 / 40 / 30 / 6   (optimal: 0)
//	share  10 MB/s -> achievable  10 / 20 / 30 / 6   (optimal: 2)
type convergenceEnv struct {
	ratio []float64
	comp  []float64 // compressor-bound application rate cap, MB/s
}

func convEnv() convergenceEnv {
	return convergenceEnv{
		ratio: []float64{1.00, 0.50, 0.25, 0.125},
		comp:  []float64{5000, 40, 30, 6},
	}
}

// rate is the closed-loop achieved application rate at a level: the link
// share divided by the wire ratio, capped by compressor speed.
func (e convergenceEnv) rate(level int, shareMBps float64) float64 {
	r := shareMBps / e.ratio[level]
	if r > e.comp[level] {
		r = e.comp[level]
	}
	return r
}

// optimal is the argmax level for a share, ties to the lighter level.
func (e convergenceEnv) optimal(shareMBps float64) int {
	best, lvl := 0.0, 0
	for l := range e.ratio {
		if r := e.rate(l, shareMBps); r > best {
			best, lvl = r, l
		}
	}
	return lvl
}

// phase is one constant-share regime of the trace.
type phase struct {
	shareMBps float64
	windows   int
}

// runConvergence drives one decider through the phases, feeding it the
// closed-loop rate with mild multiplicative noise (sigma well inside the
// alpha band, as in the fleet simulator), and returns per-phase occupancy
// of the optimal level over each phase's second half plus the final level.
func runConvergence(t *testing.T, d *Decider, phases []phase, seed uint64) (tailOcc []float64, final int) {
	t.Helper()
	env := convEnv()
	rng := xrand.New(seed)
	for _, ph := range phases {
		opt := env.optimal(ph.shareMBps)
		atOpt := 0
		for w := 0; w < ph.windows; w++ {
			r := env.rate(d.Level(), ph.shareMBps) * 1e6 * rng.NoiseFactor(0.02)
			d.Observe(r)
			if w >= ph.windows/2 && d.Level() == opt {
				atOpt++
			}
		}
		tail := ph.windows - ph.windows/2
		tailOcc = append(tailOcc, float64(atOpt)/float64(tail))
	}
	return tailOcc, d.Level()
}

func TestDeciderConvergesAcrossStepChanges(t *testing.T) {
	phases := []phase{
		{shareMBps: 100, windows: 100}, // optimal 0
		{shareMBps: 10, windows: 100},  // optimal 2
		{shareMBps: 100, windows: 100}, // optimal 0 again
	}
	env := convEnv()
	for seed := uint64(1); seed <= 20; seed++ {
		d := MustNewDecider(Config{Levels: 4})
		occ, final := runConvergence(t, d, phases, seed)
		for i, ph := range phases {
			// >= 70% of each regime's steady-state tail at the optimal
			// level: backoff-paced probes cost a bounded, shrinking
			// fraction of windows once the decider has settled.
			if occ[i] < 0.70 {
				t.Errorf("seed %d phase %d (share %.0f MB/s): optimal-level occupancy %.2f < 0.70",
					seed, i, ph.shareMBps, occ[i])
			}
		}
		if want := env.optimal(phases[len(phases)-1].shareMBps); final != want {
			t.Errorf("seed %d: final level %d, want optimal %d", seed, final, want)
		}
		probes, reverts, _, observed := d.Stats()
		// Bounded churn: with exponential backoff, excursions are
		// logarithmic per regime. 300 observations across 3 regimes must
		// stay far below one probe every other window; linear probing
		// (broken backoff) would show ~100+.
		if probes > 60 {
			t.Errorf("seed %d: %d probes over %d windows — backoff is not pacing excursions", seed, probes, observed)
		}
		if reverts > probes {
			t.Errorf("seed %d: %d reverts exceed %d probes", seed, reverts, probes)
		}
	}
}

// TestDeciderConvergenceNeedsBackoff is this suite's sentinel, in the
// DisableRevert tradition of the shape-fidelity tests: with backoff
// disabled the same environment must show the linear probe churn the bound
// above rules out. If this ever fails, the churn bound has gone soft and
// TestDeciderConvergesAcrossStepChanges no longer proves backoff matters.
func TestDeciderConvergenceNeedsBackoff(t *testing.T) {
	phases := []phase{
		{shareMBps: 100, windows: 100},
		{shareMBps: 10, windows: 100},
		{shareMBps: 100, windows: 100},
	}
	d := MustNewDecider(Config{Levels: 4, DisableBackoff: true})
	runConvergence(t, d, phases, 1)
	probes, _, _, observed := d.Stats()
	if probes <= 60 {
		t.Fatalf("backoff-free decider made only %d probes over %d windows — the churn bound in the convergence test has no teeth",
			probes, observed)
	}
}
