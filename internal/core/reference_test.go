package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// referenceModel is an independent, deliberately naive transcription of
// Algorithm 1 and its surrounding prose, written without looking at the
// production Decider's structure. The property test cross-checks that the
// two implementations make identical decisions on arbitrary rate streams —
// a faithfulness guard for the paper's pseudocode.
type referenceModel struct {
	levels int
	alpha  float64

	ccl      int
	c        int
	inc      bool
	bck      []int
	pdr      float64
	havePrev bool
}

func newReferenceModel(levels int, alpha float64) *referenceModel {
	return &referenceModel{levels: levels, alpha: alpha, inc: true, bck: make([]int, levels)}
}

func (m *referenceModel) observe(cdr float64) int {
	if !m.havePrev {
		m.pdr = cdr
		m.havePrev = true
	}

	// --- Algorithm 1, lines 1-29 ---
	d := cdr - m.pdr // line 1
	m.c++            // line 2
	ncl := m.ccl     // line 3
	isProbe := false
	isRevert := false
	abs := d
	if abs < 0 {
		abs = -abs
	}
	if abs <= m.alpha*m.pdr { // line 4
		if pow2 := 1 << uint(min(m.bck[m.ccl], 62)); m.c >= pow2 { // line 6
			if m.inc { // lines 8-12
				ncl = ncl + 1
			} else {
				ncl = ncl - 1
			}
			m.c = 0 // line 13
			isProbe = true
		}
	} else if d > 0 { // line 15
		m.bck[m.ccl]++ // line 17
		m.c = 0        // line 18
	} else { // line 19
		m.bck[m.ccl] = 0 // line 21
		if m.inc {       // lines 22-26
			ncl = ncl - 1
		} else {
			ncl = ncl + 1
		}
		m.c = 0 // line 27
		isRevert = true
	}
	// --- end of Algorithm 1 ---

	m.pdr = cdr

	// Edge handling as documented on Decider.Observe: probes flip
	// direction at the ladder edges, reverts clamp.
	if ncl < 0 {
		if isProbe {
			ncl = 1
			if ncl > m.levels-1 {
				ncl = m.levels - 1
			}
		} else {
			ncl = 0
		}
	}
	if ncl > m.levels-1 {
		if isProbe {
			ncl = m.levels - 2
			if ncl < 0 {
				ncl = 0
			}
		} else {
			ncl = m.levels - 1
		}
	}
	_ = isRevert

	if ncl != m.ccl { // "inc is usually updated outside of the algorithm"
		m.inc = ncl > m.ccl
		m.ccl = ncl
	}
	return m.ccl
}

// TestDeciderMatchesReferenceModel: the production Decider and the naive
// transcription agree decision-for-decision on arbitrary rate streams.
func TestDeciderMatchesReferenceModel(t *testing.T) {
	prop := func(seed int64, levels8 uint8, alphaPct uint8, n uint16) bool {
		levels := int(levels8)%7 + 1
		alpha := float64(alphaPct%80)/100 + 0.01
		d := MustNewDecider(Config{Levels: levels, Alpha: alpha})
		ref := newReferenceModel(levels, alpha)
		rnd := rand.New(rand.NewSource(seed))
		rate := 100.0
		for i := 0; i < int(n)%2000; i++ {
			switch rnd.Intn(5) {
			case 0:
				rate = rnd.Float64() * 1000
			case 1:
				rate *= 1 + rnd.NormFloat64()*0.1
				if rate < 0 {
					rate = 0
				}
			case 2:
				rate = 0
			case 3:
				rate *= 2
			default:
				// hold
			}
			if d.Observe(rate) != ref.observe(rate) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 60
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("production decider diverged from the Algorithm 1 reference model: %v", err)
	}
}

// TestDeciderMatchesReferenceLongRun runs one long deterministic stream to
// also compare internal state evolution (backoff values).
func TestDeciderMatchesReferenceLongRun(t *testing.T) {
	d := MustNewDecider(Config{Levels: 4, Alpha: 0.2})
	ref := newReferenceModel(4, 0.2)
	rnd := rand.New(rand.NewSource(42))
	rates := []float64{80, 200, 140, 25}
	lvl, rlvl := 0, 0
	for i := 0; i < 20000; i++ {
		r := rates[lvl] * (1 + rnd.NormFloat64()*0.05)
		lvl = d.Observe(r)
		rlvl = ref.observe(r)
		if lvl != rlvl {
			t.Fatalf("step %d: decider %d vs reference %d", i, lvl, rlvl)
		}
		for l := 0; l < 4; l++ {
			if d.Backoff(l) != ref.bck[l] {
				t.Fatalf("step %d: backoff[%d] %d vs %d", i, l, d.Backoff(l), ref.bck[l])
			}
		}
	}
}
