package core

import "fmt"

// Decider is the pluggable level-selection policy interface: the contract
// every decision policy — the paper's Algorithm 1 and the learned variants —
// satisfies. A Decider is a pure, seeded state machine: no clocks, no I/O,
// no goroutines, no global randomness, so the identical policy code runs
// under the real-time stream layer (internal/stream), the fleet coordinator
// fallback (internal/coord) and the discrete-event simulator
// (internal/cloudsim, internal/scenario, internal/experiments), and two
// instances constructed with the same configuration and fed the same
// observations produce the same decision trace — the determinism the
// policy-matrix CI gate replays.
//
// Implementations are not safe for concurrent use; callers serialize.
//
// The contract (see docs/deciders.md):
//
//   - Observe consumes one completed decision window's application data
//     rate (bytes/second, pre-compression — the cdr of Algorithm 1) and
//     returns the level for the next window, within [0, Levels).
//   - Level returns the currently selected level without observing.
//   - LastDecision classifies what the most recent Observe did, feeding
//     the obs-layer decision event log.
//   - PolicyStats reports the probe/revert economics the two-axis
//     acceptance bound gates on (see PolicyStats.WastedProbes).
type Decider interface {
	// Observe feeds one window's application data rate and returns the
	// compression level for the next window.
	Observe(cdr float64) int
	// Level returns the currently selected compression level.
	Level() int
	// LastDecision returns what the most recent Observe call did.
	LastDecision() Decision
	// PolicyStats reports cumulative decision diagnostics.
	PolicyStats() PolicyStats
	// Name returns the policy's registry name (e.g. "algone").
	Name() string
}

// RatioObserver is optionally implemented by policies whose context folds
// in the achieved compression ratio. Layers that know per-window byte
// totals at both layers (the stream writer's window accounting) call
// ObserveRatio before Observe; layers that only see rates never do, and
// the policy must behave sensibly either way.
type RatioObserver interface {
	// ObserveRatio reports the completed window's achieved wire/app byte
	// ratio (1.0 = incompressible, smaller = better compression).
	ObserveRatio(ratio float64)
}

// PolicyStats is the cumulative decision economics of a policy: what the
// two-axis acceptance bound (docs/deciders.md) gates on. All counters are
// monotone.
type PolicyStats struct {
	// Probes counts exploratory level moves (DecisionProbe).
	Probes int
	// Reverts counts degradation-triggered take-backs (DecisionRevert).
	Reverts int
	// Rewards counts stable-improvement reinforcements (DecisionReward).
	Rewards int
	// Observed counts Observe calls.
	Observed int
	// WastedProbes counts probes that were undone by a revert on the
	// immediately following window: the probe moved the stream to a
	// worse level, the rate collapsed, and the policy retreated. This is
	// the probe-economy axis of the acceptance bound — a learned policy
	// must waste strictly fewer probes than AlgorithmOne while staying
	// within-or-better on converged throughput; bounding either axis
	// alone is gameable (see CheatStick).
	WastedProbes int
}

// Registry names of the built-in policies.
const (
	// PolicyAlgorithmOne is the paper-faithful default (Algorithm 1).
	PolicyAlgorithmOne = "algone"
	// PolicyBandit is the contextual-bandit probe-gating policy.
	PolicyBandit = "bandit"
	// PolicyEWMA is the EWMA trend-predictive policy.
	PolicyEWMA = "ewma"
	// PolicyCheatStick is the rigged sentinel that never probes. It
	// exists to prove the two-axis acceptance bound has teeth and must
	// never be selected outside tests.
	PolicyCheatStick = "cheatstick"
)

// PolicyNames lists the selectable policies in catalog order (the
// CheatStick sentinel is constructible by name but deliberately excluded:
// it exists to fail the acceptance bound, not to be deployed).
func PolicyNames() []string {
	return []string{PolicyAlgorithmOne, PolicyBandit, PolicyEWMA}
}

// ValidPolicy reports whether name is a constructible policy name.
func ValidPolicy(name string) bool {
	switch name {
	case PolicyAlgorithmOne, PolicyBandit, PolicyEWMA, PolicyCheatStick:
		return true
	default:
		return false
	}
}

// PolicyConfig is the shared configuration all policies are constructed
// from. Policies ignore knobs that do not apply to them (the ablation
// flags are AlgorithmOne-only; Seed matters only to stochastic policies).
type PolicyConfig struct {
	// Levels is the ladder size n (including level 0). Must be >= 1.
	Levels int
	// Alpha is the rate tolerance band; zero means DefaultAlpha.
	Alpha float64
	// Seed drives any stochastic component (the bandit's exploration).
	// Policies must be fully deterministic given (config, observations).
	Seed uint64
	// DisableBackoff, MaxBackoffExp, DisableRevert are AlgorithmOne's
	// ablation knobs, forwarded verbatim.
	DisableBackoff bool
	MaxBackoffExp  int
	DisableRevert  bool
}

// NewPolicy constructs a policy by registry name.
func NewPolicy(name string, cfg PolicyConfig) (Decider, error) {
	switch name {
	case PolicyAlgorithmOne, "": // empty selects the paper default
		return NewDecider(Config{
			Levels:         cfg.Levels,
			Alpha:          cfg.Alpha,
			DisableBackoff: cfg.DisableBackoff,
			MaxBackoffExp:  cfg.MaxBackoffExp,
			DisableRevert:  cfg.DisableRevert,
		})
	case PolicyBandit:
		return NewBandit(cfg)
	case PolicyEWMA:
		return NewEWMAPredictive(cfg)
	case PolicyCheatStick:
		return NewCheatStick(cfg)
	default:
		return nil, fmt.Errorf("core: unknown decider policy %q (want one of %v)", name, PolicyNames())
	}
}

// MustNewPolicy is NewPolicy for known-good configurations.
func MustNewPolicy(name string, cfg PolicyConfig) Decider {
	d, err := NewPolicy(name, cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// CheatStick is the acceptance-bound sentinel, in the DisableRevert /
// CheatFreeze lineage: a policy that never probes at all. It trivially
// achieves zero wasted probes — the probe-economy axis alone would wave it
// through — but it can never leave its starting level, so any workload
// where another level wins exposes it on the throughput axis. The
// policy-matrix tests run it to prove the bound is genuinely two-axis.
type CheatStick struct {
	level    int
	observed int
}

// NewCheatStick creates the never-probe sentinel pinned at level 0.
func NewCheatStick(cfg PolicyConfig) (*CheatStick, error) {
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("core: config needs at least 1 level, got %d", cfg.Levels)
	}
	return &CheatStick{}, nil
}

// Observe implements Decider: it refuses to move.
func (c *CheatStick) Observe(float64) int { c.observed++; return c.level }

// Level implements Decider.
func (c *CheatStick) Level() int { return c.level }

// LastDecision implements Decider: always a hold.
func (c *CheatStick) LastDecision() Decision {
	return Decision{Kind: DecisionHold, From: c.level, To: c.level}
}

// PolicyStats implements Decider: zero probes, zero waste — by cheating.
func (c *CheatStick) PolicyStats() PolicyStats {
	return PolicyStats{Observed: c.observed}
}

// Name implements Decider.
func (c *CheatStick) Name() string { return PolicyCheatStick }
