// Package core implements the paper's primary contribution: the rate-based
// decision model for adaptive online compression in virtualized environments
// (Algorithm 1, Section III-A of Hovestadt et al., IPDPS 2011).
//
// The model selects one of n ordered compression levels purely from the
// observed application data rate — the rate at which the application's bytes
// move through the compression module per t-second window — and deliberately
// ignores every OS-provided system metric (CPU utilization, link bandwidth),
// because Section II of the paper shows those metrics can be wrong by more
// than an order of magnitude inside virtual machines.
//
// The algorithm distinguishes three cases each window:
//
//  1. The rate is unchanged within a tolerance band α: after an
//     exponentially growing backoff expires, optimistically probe the
//     neighbouring level in the current probe direction.
//  2. The rate improved: reward the current level by incrementing its
//     backoff exponent, making future probes away from it exponentially
//     rarer.
//  3. The rate degraded: reset the current level's backoff and immediately
//     revert the previous change by moving one level against the probe
//     direction.
//
// The Decider is a pure state machine: it contains no clocks, no I/O and no
// goroutines, so the identical production code runs both under the real-time
// stream layer (internal/stream) and inside the discrete-event cloud
// simulator (internal/cloudsim) that regenerates the paper's evaluation.
package core

import (
	"fmt"
)

// Default parameter values used throughout the paper's evaluation
// (Section IV-A: "During all the experiments t was set to 2 seconds and
// α to 0.2").
const (
	// DefaultAlpha is the relative tolerance band within which two
	// consecutive application data rates are considered equal.
	DefaultAlpha = 0.2
	// DefaultWindow is the reconsideration interval t in seconds.
	DefaultWindowSeconds = 2.0
)

// Config parameterizes a Decider.
type Config struct {
	// Levels is the number of compression levels n (including level 0 =
	// no compression). Must be >= 1.
	Levels int

	// Alpha is the tolerance parameter α: cdr counts as "changed" only if
	// |cdr-pdr| > Alpha*pdr. Zero means DefaultAlpha. Negative is invalid.
	Alpha float64

	// DisableBackoff turns the exponential backoff scheme off, so an
	// optimistic probe happens every window in which the rate is stable.
	// It exists for the ablation study (DESIGN.md A3); the paper's
	// algorithm always has backoff enabled.
	DisableBackoff bool

	// MaxBackoffExp caps the backoff exponent so that probing never stops
	// entirely. Zero means the paper's behaviour (uncapped). The paper
	// notes (Fig. 6 discussion) that large backoff values for level 0 can
	// delay the reaction to increased compressibility; capping is the
	// obvious extension and is exercised by the ablation benches.
	MaxBackoffExp int

	// DisableRevert turns off the revert-on-degradation rule (Algorithm 1
	// lines 19-27 keep resetting the backoff, but the level stays put).
	// This is an ablation knob only: the shape-fidelity test suite flips
	// it to prove that the paper's headline properties genuinely depend on
	// the revert rule, not on the simulator.
	DisableRevert bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Levels < 1 {
		return c, fmt.Errorf("core: config needs at least 1 level, got %d", c.Levels)
	}
	if c.Alpha < 0 {
		return c, fmt.Errorf("core: negative alpha %v", c.Alpha)
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.MaxBackoffExp < 0 {
		return c, fmt.Errorf("core: negative backoff cap %d", c.MaxBackoffExp)
	}
	return c, nil
}

// AlgorithmOne is the paper-faithful decision model state machine and the
// default Decider policy. Its fields mirror the variables of Algorithm 1
// and Table I in the paper. An AlgorithmOne is not safe for concurrent use;
// the stream layer serializes access.
//
// Its decision sequence is pinned byte for byte by the golden-trace test
// (testdata/algone_decisions.golden): learned policies are alternatives
// behind the Decider interface, never modifications of this code.
type AlgorithmOne struct {
	cfg Config

	ccl int     // current compression level, initially 0
	c   int     // calls since last level change
	inc bool    // true if the last change was an increase, initially true
	bck []int   // per-level backoff exponents, initially 0
	pdr float64 // previous window's application data rate

	havePrev bool // pdr is valid (false only before the first observation)

	// Diagnostics, not part of the paper's algorithm.
	probes   int // optimistic switches taken
	reverts  int // degradation-triggered reverts
	rewards  int // backoff increments
	observed int // total observations
	wasted   int // probes undone by a revert on the very next window

	last Decision // outcome of the most recent Observe
}

// DecisionKind classifies what one Observe call did.
type DecisionKind int

const (
	// DecisionHold: the rate was stable and the backoff has not expired
	// (or a knob suppressed the move); the level stays.
	DecisionHold DecisionKind = iota
	// DecisionProbe: stable rate, backoff expired — optimistic probe to a
	// neighbouring level.
	DecisionProbe
	// DecisionReward: the rate improved; the current level's backoff
	// exponent was incremented.
	DecisionReward
	// DecisionRevert: the rate degraded; the previous change was reverted
	// and the level's backoff reset.
	DecisionRevert
)

// String returns the kind's event-log name.
func (k DecisionKind) String() string {
	switch k {
	case DecisionProbe:
		return "probe"
	case DecisionReward:
		return "reward"
	case DecisionRevert:
		return "revert"
	default:
		return "hold"
	}
}

// Decision records the outcome of one Observe call for observability: the
// stream layer's decision event log (internal/obs) is fed from it, giving
// probe/revert/backoff transitions external visibility without touching
// the algorithm itself.
type Decision struct {
	// Kind is what happened.
	Kind DecisionKind
	// From and To are the levels before and after the call (equal unless
	// the level changed).
	From, To int
	// Rate and PrevRate are cdr and pdr as the algorithm compared them.
	Rate, PrevRate float64
	// Backoff is the backoff exponent of the From level after the call —
	// reset to 0 by a revert, incremented by a reward.
	Backoff int
}

// LastDecision returns what the most recent Observe call did. Before the
// first Observe it is the zero Decision.
func (d *AlgorithmOne) LastDecision() Decision { return d.last }

// NewDecider creates the paper-faithful AlgorithmOne policy for the given
// configuration. (The name predates the Decider interface; use NewPolicy to
// construct a policy by name.)
func NewDecider(cfg Config) (*AlgorithmOne, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &AlgorithmOne{
		cfg: cfg,
		inc: true, // Table I: inc is initially TRUE
		bck: make([]int, cfg.Levels),
	}, nil
}

// MustNewDecider is NewDecider for known-good configurations.
func MustNewDecider(cfg Config) *AlgorithmOne {
	d, err := NewDecider(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Decider.
func (d *AlgorithmOne) Name() string { return PolicyAlgorithmOne }

// PolicyStats implements Decider.
func (d *AlgorithmOne) PolicyStats() PolicyStats {
	return PolicyStats{
		Probes:       d.probes,
		Reverts:      d.reverts,
		Rewards:      d.rewards,
		Observed:     d.observed,
		WastedProbes: d.wasted,
	}
}

// Level returns the currently selected compression level ccl.
func (d *AlgorithmOne) Level() int { return d.ccl }

// Backoff returns the current backoff exponent of the given level.
func (d *AlgorithmOne) Backoff(level int) int { return d.bck[level] }

// Stats reports probe/revert/reward counters for diagnostics and tests.
func (d *AlgorithmOne) Stats() (probes, reverts, rewards, observed int) {
	return d.probes, d.reverts, d.rewards, d.observed
}

// Snapshot is a point-in-time view of the decision model's state, exposed
// for logging and debugging. The field names follow Table I of the paper.
type Snapshot struct {
	CCL      int     // current compression level
	C        int     // calls since the last level change
	Inc      bool    // last change was an increase
	Bck      []int   // per-level backoff exponents
	PDR      float64 // previous window's application data rate
	Observed int     // total observations so far
}

// Snapshot returns a copy of the current state.
func (d *AlgorithmOne) Snapshot() Snapshot {
	return Snapshot{
		CCL:      d.ccl,
		C:        d.c,
		Inc:      d.inc,
		Bck:      append([]int(nil), d.bck...),
		PDR:      d.pdr,
		Observed: d.observed,
	}
}

// String renders the state compactly, e.g. for OnWindow logging:
// "ccl=1 c=3 inc=true bck=[0 2 0 0] pdr=87.3MB/s".
func (d *AlgorithmOne) String() string {
	return fmt.Sprintf("ccl=%d c=%d inc=%v bck=%v pdr=%.1fMB/s",
		d.ccl, d.c, d.inc, d.bck, d.pdr/1e6)
}

// Observe feeds one window's application data rate (application bytes per
// second, measured before compression) into the decision model and returns
// the compression level to use for the next window.
//
// This is Algorithm 1 plus the surrounding bookkeeping the paper describes
// in prose: pdr is primed with cdr on the first call ("On the first call of
// the decision algorithm, pdr is set to cdr", Table I), inc is updated
// outside the displayed algorithm from the relation between ccl and the
// returned ncl ("Note that inc is usually updated outside of the displayed
// algorithm"), and the result is clamped to the valid level range with the
// probe direction flipping at the edges so that probing continues at the
// ladder's ends.
func (d *AlgorithmOne) Observe(cdr float64) int {
	d.observed++
	if !d.havePrev {
		d.pdr = cdr
		d.havePrev = true
	}
	prev := d.pdr
	from := d.ccl
	ncl, move, kind := d.next(cdr, d.pdr, d.ccl)
	d.pdr = cdr

	// Clamp to the ladder. The paper leaves edge handling implicit; we
	// resolve it as follows. An optimistic *probe* that would leave the
	// ladder flips direction instead (otherwise the algorithm would
	// repeatedly try to leave the ladder in a direction that does not
	// exist and never probe the other one). A degradation *revert* that
	// would leave the ladder simply stays put: a revert is a retreat to
	// known-good ground, not an invitation to explore.
	if ncl < 0 || ncl > d.cfg.Levels-1 {
		switch move {
		case moveProbe:
			if ncl < 0 {
				ncl = min(1, d.cfg.Levels-1)
			} else {
				ncl = max(d.cfg.Levels-2, 0)
			}
		default:
			if ncl < 0 {
				ncl = 0
			} else {
				ncl = d.cfg.Levels - 1
			}
		}
	}

	if ncl != d.ccl {
		d.inc = ncl > d.ccl // inc updated from ccl and the returned ncl
		d.ccl = ncl
	}
	// A revert on the window immediately after a probe means the probe
	// moved to a worse level and the rate collapse sent us back: the
	// canonical wasted probe. Pure diagnostics — decisions are untouched
	// (the golden trace pins that).
	if kind == DecisionRevert && d.last.Kind == DecisionProbe {
		d.wasted++
	}
	d.last = Decision{
		Kind:     kind,
		From:     from,
		To:       d.ccl,
		Rate:     cdr,
		PrevRate: prev,
		Backoff:  d.bck[from],
	}
	return d.ccl
}

type moveKind int

const (
	moveNone moveKind = iota
	moveProbe
	moveRevert
)

// next is a literal transcription of Algorithm 1,
// GetNextCompressionLevel(cdr, pdr, ccl), additionally reporting whether the
// proposed change is an optimistic probe or a degradation revert so that
// Observe can resolve ladder-edge clamping correctly, plus the DecisionKind
// for the observability event log.
func (d *AlgorithmOne) next(cdr, pdr float64, ccl int) (int, moveKind, DecisionKind) {
	diff := cdr - pdr // line 1: d ← (cdr − pdr)
	d.c++             // line 2
	ncl := ccl        // line 3
	move := moveNone
	kind := DecisionHold

	abs := diff
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs <= d.cfg.Alpha*pdr: // line 4: no change in application data rate
		if d.backoffExpired() { // line 6: c >= 2^bck[ccl]
			// Backoff over, try another compression level.
			if d.inc { // lines 8-12
				ncl++
			} else {
				ncl--
			}
			d.c = 0 // line 13
			d.probes++
			move = moveProbe
			kind = DecisionProbe
		}
	case diff > 0: // line 15: application data rate has improved
		d.rewardLevel(ccl) // line 17: bck[ccl] ← bck[ccl] + 1
		d.c = 0            // line 18
		d.rewards++
		kind = DecisionReward
	default: // line 19: application data rate has decreased
		d.bck[ccl] = 0 // line 21
		if !d.cfg.DisableRevert {
			if d.inc { // lines 22-26: revert the last change
				ncl--
			} else {
				ncl++
			}
			d.reverts++
			move = moveRevert
			kind = DecisionRevert
		}
		d.c = 0 // line 27
	}
	return ncl, move, kind // line 29
}

func (d *AlgorithmOne) backoffExpired() bool {
	if d.cfg.DisableBackoff {
		return true
	}
	exp := d.bck[d.ccl]
	// 2^exp without overflow: beyond 62 the threshold exceeds any
	// realistic call count anyway.
	if exp > 62 {
		return false
	}
	return d.c >= 1<<uint(exp)
}

func (d *AlgorithmOne) rewardLevel(level int) {
	if d.cfg.DisableBackoff {
		return
	}
	if d.cfg.MaxBackoffExp > 0 && d.bck[level] >= d.cfg.MaxBackoffExp {
		return
	}
	d.bck[level]++
}
