package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaptio/internal/xrand"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestAlgorithmOneGoldenTrace pins the paper-faithful decider's decision
// sequence byte for byte. The pluggable-decider refactor (and anything that
// touches internal/core after it) must keep AlgorithmOne's decisions
// identical to the pre-refactor code: this golden file was generated from
// the pre-interface implementation and is the contract.
//
// Two trace families are pinned:
//
//   - open-loop: a synthetic rate sequence (steps, ramps, noise) fed
//     verbatim, so the pin covers every Algorithm 1 branch independently of
//     any environment model;
//   - closed-loop: the convergence suite's environment, where the rate the
//     decider sees depends on the level it chose, so drift in either
//     direction compounds and cannot hide.
func TestAlgorithmOneGoldenTrace(t *testing.T) {
	var sb strings.Builder

	configs := []struct {
		label string
		cfg   Config
	}{
		{"paper", Config{Levels: 4}},
		{"alpha=0.1", Config{Levels: 4, Alpha: 0.1}},
		{"nobackoff", Config{Levels: 4, DisableBackoff: true}},
		{"norevert", Config{Levels: 4, DisableRevert: true}},
		{"cap=3", Config{Levels: 4, MaxBackoffExp: 3}},
		{"levels=6", Config{Levels: 6}},
	}
	for _, c := range configs {
		d := MustNewDecider(c.cfg)
		fmt.Fprintf(&sb, "== open-loop %s ==\n", c.label)
		for i, r := range goldenOpenLoopRates() {
			lvl := d.Observe(r)
			dec := d.LastDecision()
			fmt.Fprintf(&sb, "%03d rate=%.0f %s %d->%d lvl=%d bck=%d\n",
				i, r, dec.Kind, dec.From, dec.To, lvl, dec.Backoff)
		}
		probes, reverts, rewards, observed := d.Stats()
		fmt.Fprintf(&sb, "stats probes=%d reverts=%d rewards=%d observed=%d\n",
			probes, reverts, rewards, observed)
	}

	for _, seed := range []uint64{1, 7, 2011} {
		d := MustNewDecider(Config{Levels: 4})
		fmt.Fprintf(&sb, "== closed-loop seed=%d ==\n", seed)
		env := convEnv()
		rng := xrand.New(seed)
		phases := []phase{
			{shareMBps: 100, windows: 60},
			{shareMBps: 10, windows: 60},
			{shareMBps: 100, windows: 60},
		}
		i := 0
		for _, ph := range phases {
			for w := 0; w < ph.windows; w++ {
				r := env.rate(d.Level(), ph.shareMBps) * 1e6 * rng.NoiseFactor(0.02)
				lvl := d.Observe(r)
				dec := d.LastDecision()
				fmt.Fprintf(&sb, "%03d %s %d->%d lvl=%d bck=%d\n",
					i, dec.Kind, dec.From, dec.To, lvl, dec.Backoff)
				i++
			}
		}
		probes, reverts, rewards, observed := d.Stats()
		fmt.Fprintf(&sb, "stats probes=%d reverts=%d rewards=%d observed=%d\n",
			probes, reverts, rewards, observed)
	}

	got := sb.String()
	path := filepath.Join("testdata", "algone_decisions.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("AlgorithmOne decision trace deviates from the pinned pre-refactor behaviour.\n"+
			"First differing line: %s\n(If this change is intentional, it breaks the paper-faithful "+
			"default policy; re-generate only with a documented reason: go test ./internal/core -run Golden -update)",
			firstDiffLine(got, string(want)))
	}
}

// firstDiffLine locates the first line where two multi-line strings differ.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: got %q want %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: got %d lines, want %d", len(al), len(bl))
}

// goldenOpenLoopRates is the synthetic open-loop rate sequence: a stable
// regime, an out-of-band step down, a ramp back up, an in-band oscillation
// (probing continues on backoff alone), and a noisy tail. Values are plain
// arithmetic so the sequence can never drift.
func goldenOpenLoopRates() []float64 {
	var rates []float64
	rng := xrand.New(0xA16)
	for i := 0; i < 40; i++ { // stable at 100 MB/s
		rates = append(rates, 100e6*rng.NoiseFactor(0.02))
	}
	for i := 0; i < 30; i++ { // step down to 10 MB/s
		rates = append(rates, 10e6*rng.NoiseFactor(0.02))
	}
	for i := 0; i < 30; i++ { // ramp 10 -> 80 MB/s
		rates = append(rates, (10e6+70e6*float64(i)/29)*rng.NoiseFactor(0.01))
	}
	for i := 0; i < 40; i++ { // in-band square wave 50/55 MB/s
		v := 50e6
		if (i/10)%2 == 1 {
			v = 55e6
		}
		rates = append(rates, v)
	}
	for i := 0; i < 20; i++ { // noisy tail straddling the band edge
		rates = append(rates, 60e6*rng.NoiseFactor(0.15))
	}
	return rates
}
