package core

import (
	"fmt"
	"math"
)

// Predictive tuning constants (see docs/deciders.md for the calibration
// discussion).
const (
	// predFastGain / predSlowGain are the two EWMA horizons whose
	// divergence is the trend-shift detector: the fast average follows
	// the last few windows, the slow one the last few tens.
	predFastGain = 0.5
	predSlowGain = 0.15
	// predShiftFrac is the divergence (as a fraction of the slow
	// average, relative to the tolerance band) that counts as a regime
	// shift: half the alpha band, so the detector fires before the raw
	// per-window comparison would.
	predShiftFrac = 0.5
	// predRewardStep is how fast backoff grows per reinforcement below
	// predFastExp: twice Algorithm 1's, so a settling stream skips the
	// cheap-but-wasteful early probe cycles (bck 1 and 3).
	predRewardStep = 2
	// predFastExp is where double-speed backoff growth stops; above it
	// reinforcement grows the exponent by 1 per cycle, exactly like
	// Algorithm 1. Without the threshold the exponent compounds past any
	// useful probing horizon (each failed cycle ends in a reward, so a
	// plateau whose share silently improved — invisible to both the rate
	// signal and the trend detector — would never be re-probed).
	predFastExp = 4
)

// EWMAPredictive is the trend-predictive policy: Algorithm 1's skeleton
// with the probe timer re-derived from the observed rate trend instead of a
// fixed exponential schedule. Two changes, both motivated by where the
// shape suite shows Algorithm 1 wasting probes:
//
//   - In steady state it backs off twice as fast (predRewardStep) until
//     the exponent reaches predFastExp, skipping the cheap early
//     probe-revert-reward cycles — the dominant source of wasted probes on
//     a converged stream. Above the threshold reinforcement slows to the
//     paper's +1 per cycle, so the probing horizon stays bounded and a
//     plateau whose share silently improves is still rediscovered.
//   - A two-horizon EWMA pair watches the smoothed rate; when the fast
//     average diverges from the slow one beyond predShiftFrac of the
//     tolerance band, the current level's backoff is zeroed so a probe
//     fires on the next stable window — probing proactively on the trend
//     shift rather than waiting out a backoff that was earned in a regime
//     that no longer exists.
//
// The detector is edge-triggered (armed only after the trend returns inside
// the band) so a long ramp re-opens probing once, not every window. The
// policy is fully deterministic: no randomness at all.
type EWMAPredictive struct {
	levels int
	alpha  float64

	ccl int
	c   int
	inc bool
	bck []int

	pdr      float64
	havePrev bool

	fast, slow float64
	armed      bool

	probes, reverts, rewards, wasted int
	shifts                           int // trend-shift firings (diagnostic)
	observed                         int
	last                             Decision
}

// NewEWMAPredictive creates a trend-predictive decider.
func NewEWMAPredictive(cfg PolicyConfig) (*EWMAPredictive, error) {
	if cfg.Levels < 1 {
		return nil, fmt.Errorf("core: config needs at least 1 level, got %d", cfg.Levels)
	}
	if cfg.Alpha < 0 {
		return nil, fmt.Errorf("core: negative alpha %v", cfg.Alpha)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	return &EWMAPredictive{
		levels: cfg.Levels,
		alpha:  alpha,
		inc:    true,
		bck:    make([]int, cfg.Levels),
		armed:  true,
	}, nil
}

// Observe implements Decider.
func (p *EWMAPredictive) Observe(cdr float64) int {
	p.observed++
	if !p.havePrev {
		p.pdr = cdr
		p.fast = cdr
		p.slow = cdr
		p.havePrev = true
	}
	prev := p.pdr

	// Trend detector: proactively re-open probing when the smoothed rate
	// regime moves.
	p.fast += predFastGain * (cdr - p.fast)
	p.slow += predSlowGain * (cdr - p.slow)
	shifted := p.slow > 0 && math.Abs(p.fast-p.slow) > predShiftFrac*p.alpha*p.slow
	if shifted {
		if p.armed {
			p.bck[p.ccl] = 0
			p.shifts++
			p.armed = false
		}
	} else {
		p.armed = true
	}

	diff := cdr - prev
	abs := math.Abs(diff)
	from := p.ccl
	ncl := p.ccl
	kind := DecisionHold
	probeMove := false
	p.c++
	switch {
	case abs <= p.alpha*prev: // stable: probe when the slow timer expires
		if p.backoffExpired() {
			if p.inc {
				ncl++
			} else {
				ncl--
			}
			p.c = 0
			p.probes++
			kind = DecisionProbe
			probeMove = true
		}
	case diff > 0: // improved: reinforce, double speed below the threshold
		if p.bck[p.ccl] < predFastExp {
			p.bck[p.ccl] += predRewardStep
		} else if p.bck[p.ccl] < 62 {
			p.bck[p.ccl]++
		}
		p.c = 0
		p.rewards++
		kind = DecisionReward
	default: // degraded: reset and retreat, exactly as Algorithm 1
		p.bck[p.ccl] = 0
		if p.inc {
			ncl--
		} else {
			ncl++
		}
		kind = DecisionRevert
		p.reverts++
		if p.last.Kind == DecisionProbe {
			p.wasted++
		}
		p.c = 0
	}

	if ncl < 0 || ncl > p.levels-1 {
		if probeMove {
			if ncl < 0 {
				ncl = min(1, p.levels-1)
			} else {
				ncl = max(p.levels-2, 0)
			}
		} else {
			if ncl < 0 {
				ncl = 0
			} else {
				ncl = p.levels - 1
			}
		}
	}
	if ncl != p.ccl {
		p.inc = ncl > p.ccl
		p.ccl = ncl
	}
	p.pdr = cdr
	p.last = Decision{Kind: kind, From: from, To: p.ccl, Rate: cdr, PrevRate: prev, Backoff: p.bck[from]}
	return p.ccl
}

func (p *EWMAPredictive) backoffExpired() bool {
	exp := p.bck[p.ccl]
	if exp > 62 {
		return false
	}
	return p.c >= 1<<uint(exp)
}

// Level implements Decider.
func (p *EWMAPredictive) Level() int { return p.ccl }

// LastDecision implements Decider.
func (p *EWMAPredictive) LastDecision() Decision { return p.last }

// PolicyStats implements Decider.
func (p *EWMAPredictive) PolicyStats() PolicyStats {
	return PolicyStats{
		Probes:       p.probes,
		Reverts:      p.reverts,
		Rewards:      p.rewards,
		Observed:     p.observed,
		WastedProbes: p.wasted,
	}
}

// Name implements Decider.
func (p *EWMAPredictive) Name() string { return PolicyEWMA }

// Shifts reports how many times the trend detector fired (diagnostic).
func (p *EWMAPredictive) Shifts() int { return p.shifts }
