package loadgen_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/loadgen"
	"adaptio/internal/obs"
	"adaptio/internal/tunnel"
)

// TestPlanDeterminism: equal (seed, worker) yield identical operation
// schedules; different seeds or workers diverge.
func TestPlanDeterminism(t *testing.T) {
	cfg := loadgen.Config{Seed: 42, MinPayload: 1 << 10, MaxPayload: 256 << 10, MaxThink: 5 * time.Millisecond}
	type op struct {
		kind  corpus.Kind
		size  int
		think time.Duration
	}
	sample := func(c loadgen.Config, w int) []op {
		p := loadgen.NewPlan(c, w)
		ops := make([]op, 64)
		for i := range ops {
			ops[i].kind, ops[i].size, ops[i].think = p.Next()
		}
		return ops
	}
	a, b := sample(cfg, 3), sample(cfg, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between identical plans: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := sample(cfg, 4)
	same := 0
	for i := range a {
		if a[i] == other[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("worker 3 and 4 produced identical schedules")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	reseeded := sample(cfg2, 3)
	same = 0
	for i := range a {
		if a[i] == reseeded[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestPlanRespectsBounds: sizes and think times stay inside the configured
// distribution bounds, and all mix kinds eventually appear.
func TestPlanRespectsBounds(t *testing.T) {
	cfg := loadgen.Config{Seed: 7, MinPayload: 2 << 10, MaxPayload: 128 << 10, MinThink: time.Millisecond, MaxThink: 4 * time.Millisecond}
	p := loadgen.NewPlan(cfg, 0)
	seen := map[corpus.Kind]bool{}
	for i := 0; i < 512; i++ {
		kind, size, think := p.Next()
		if size < cfg.MinPayload || size > cfg.MaxPayload {
			t.Fatalf("size %d outside [%d, %d]", size, cfg.MinPayload, cfg.MaxPayload)
		}
		if think < cfg.MinThink || think > cfg.MaxThink {
			t.Fatalf("think %v outside [%v, %v]", think, cfg.MinThink, cfg.MaxThink)
		}
		seen[kind] = true
	}
	for _, k := range corpus.Kinds() {
		if !seen[k] {
			t.Fatalf("kind %v never drawn in 512 ops", k)
		}
	}
}

// startEcho runs a plain TCP echo sink.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestSoakShort is the PR-sized variant of the nightly soak (cmd/acload):
// many more concurrent clients than the tunnel admits, driven through an
// entry/exit pair with a bounded pool. Asserts the acceptance criteria at
// reduced scale: goroutine count bounded by O(MaxConns), shed-vs-accepted
// visible in the obs snapshot, zero leaked goroutines after drain.
func TestSoakShort(t *testing.T) {
	leakcheck.Check(t)
	const (
		workers  = 96
		maxConns = 24
		queue    = 24
	)
	echo := startEcho(t)
	reg := obs.NewRegistry()
	tcfg := tunnel.Config{
		Static: true, StaticLevel: 1,
		MaxConns:      maxConns,
		AcceptQueue:   queue,
		ShutdownGrace: 2 * time.Second,
		Obs:           reg.Scope("tunnel"),
	}
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", echo, tunnel.Config{Static: true, StaticLevel: 1, ShutdownGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { exit.Close() })
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { entry.Close() })

	baseline := runtime.NumGoroutine()
	report, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:       entry.Addr().String(),
		Conns:      workers,
		Duration:   1500 * time.Millisecond,
		Seed:       2011,
		MinPayload: 1 << 10,
		MaxPayload: 16 << 10,
		OpTimeout:  10 * time.Second,
		Verify:     true,
		Obs:        reg.Scope("loadgen"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s", report)

	if report.Completed == 0 {
		t.Fatal("soak completed zero cycles")
	}
	if report.Failed > report.Completed/10 {
		t.Fatalf("failed cycles %d out of %d completed: broken transfers under load", report.Failed, report.Completed)
	}

	// Goroutine bound: each served conn costs a fixed handful on each
	// endpoint, each client worker a couple; growth must be O(workers +
	// MaxConns + queue), never O(arrival rate).
	bound := baseline + workers*3 + (maxConns+queue)*8*2 + 32
	if report.PeakGoroutines > bound {
		t.Fatalf("peak goroutines %d exceeds bound %d (baseline %d)", report.PeakGoroutines, bound, baseline)
	}

	// The tunnel's admission accounting must be visible in the snapshot.
	snap := reg.Snapshot()
	for _, name := range []string{"tunnel.conns.accepted", "tunnel.conns.shed", "tunnel.conns.peak", "loadgen.cycles.completed"} {
		if !bytes.Contains(snap, []byte(`"`+name+`"`)) {
			t.Fatalf("obs snapshot missing %q", name)
		}
	}
	peak, _ := reg.Get("tunnel.conns.peak").(*obs.Gauge)
	if peak.Value() > maxConns {
		t.Fatalf("tunnel served %d concurrent conns, MaxConns=%d", peak.Value(), maxConns)
	}
	accepted, _ := reg.Get("tunnel.conns.accepted").(*obs.Counter)
	shed, _ := reg.Get("tunnel.conns.shed").(*obs.Counter)
	t.Logf("tunnel: accepted=%d shed=%d peak=%d", accepted.Value(), shed.Value(), peak.Value())
	if accepted.Value() == 0 {
		t.Fatal("tunnel accepted nothing")
	}
	// 96 workers hammering a 24+24 pool with zero think time must shed —
	// and the client side must have observed at least part of it.
	if shed.Value() == 0 && report.Shed == 0 && report.DialErrs == 0 {
		t.Fatal("overload never shed: admission control inert")
	}
	// Endpoint drain + leakcheck (via t.Cleanup) then prove zero leaks.
}
