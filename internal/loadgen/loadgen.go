// Package loadgen is a seeded, deterministic connection-level load
// generator for the tunnel's overload and soak experiments (docs/scaling.md,
// cmd/acload). It models the client population the paper's evaluation only
// hints at: instead of a handful of long co-located streams (Table II), it
// ramps N concurrent clients that churn through open → send → echo → close
// cycles with configurable payload-size and think-time distributions over
// the mixed-compressibility corpus of Section IV-A.
//
// Determinism: given (Seed, Conns), every worker's operation plan — the
// sequence of payload kinds, sizes and think times — is fixed (see Plan).
// Wall-clock timings and interleavings of course vary; the offered load does
// not, which is what makes soak runs comparable across commits.
//
// The generator reports client-observed outcomes (completed/shed/failed
// cycles, echo throughput, connection-cycle latency percentiles) plus
// process peaks (goroutines, heap) so a soak run needs no external tooling:
// one Report plus the tunnel's own obs snapshot is the whole experiment.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/obs"
	"adaptio/internal/trace"
	"adaptio/internal/xrand"
)

// Config parameterizes a load run. Addr is required; every other field has
// a usable zero-value default.
type Config struct {
	// Addr is the address clients dial (normally a tunnel entry).
	Addr string
	// Conns is the number of concurrent client workers (default 1).
	Conns int
	// Ops bounds the total number of connection cycles across all workers
	// (0 = unbounded; stop on Duration/ctx instead).
	Ops int64
	// Duration bounds the run's wall clock (0 = unbounded; stop on
	// Ops/ctx instead). At least one of Ops, Duration, or a cancellable
	// ctx must bound the run.
	Duration time.Duration
	// Seed fixes every worker's operation plan.
	Seed uint64
	// Mix is the payload-kind cycle (default: all three paper classes).
	Mix []corpus.Kind
	// MinPayload/MaxPayload bound the per-cycle payload size; sizes are
	// drawn log-uniformly so small and large transfers both occur
	// (defaults 4 KiB / 64 KiB).
	MinPayload, MaxPayload int
	// MinThink/MaxThink bound the uniform think-time pause between a
	// worker's cycles (defaults 0/0 = no pause: maximum churn).
	MinThink, MaxThink time.Duration
	// DialTimeout bounds each dial attempt (default 5s).
	DialTimeout time.Duration
	// OpTimeout bounds one full cycle: dial, send, echo (default 30s).
	OpTimeout time.Duration
	// Verify checks echoed bytes against the sent payload (requires the
	// target to be an echo service end-to-end).
	Verify bool
	// Obs, if non-nil, registers the generator's client-side metrics
	// (cycle counters, latency histogram) under this scope
	// (conventionally "loadgen").
	Obs *obs.Scope
	// Recorder, if non-nil, receives every completed cycle's payload
	// bytes attributed to the decision window it finished in, producing a
	// replayable workload trace (cmd/acload -trace-out feeds it to
	// internal/scenario's trace replay).
	Recorder *trace.Recorder
	// Logf, if non-nil, receives progress and error lines.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = corpus.Kinds()
	}
	if cfg.MinPayload <= 0 {
		cfg.MinPayload = 4 << 10
	}
	if cfg.MaxPayload < cfg.MinPayload {
		cfg.MaxPayload = cfg.MinPayload
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	if cfg.MaxThink < cfg.MinThink {
		cfg.MaxThink = cfg.MinThink
	}
	return cfg
}

// Report is the outcome of one load run.
type Report struct {
	Conns   int
	Elapsed time.Duration

	// Cycle outcomes. Dialed = Completed + Shed + Failed.
	Dialed    int64 // cycles that reached a TCP connection
	Completed int64 // full echo received (and verified, when enabled)
	Shed      int64 // connection closed before any echo byte: load-shedding observed
	Failed    int64 // broken mid-transfer or corrupted echo
	DialErrs  int64 // dial attempts that never produced a connection

	BytesSent   int64
	BytesEchoed int64

	// Connection-cycle latency (dial through last echo byte), client side.
	LatencyMsP50, LatencyMsP95, LatencyMsP99, LatencyMsMean, LatencyMsMax float64

	// Process peaks sampled during the run (whole process: includes the
	// generator's own workers and any in-process tunnel endpoints).
	PeakGoroutines int
	PeakHeapBytes  uint64
}

// ThroughputMBps is the echoed application-byte rate over the run.
func (r Report) ThroughputMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesEchoed) / 1e6 / r.Elapsed.Seconds()
}

// String renders the report as a human-readable block.
func (r Report) String() string {
	return fmt.Sprintf(
		"loadgen: %d workers, %v elapsed\n"+
			"  cycles: dialed=%d completed=%d shed=%d failed=%d dial_errs=%d\n"+
			"  bytes:  sent=%d echoed=%d (%.1f MB/s echo throughput)\n"+
			"  cycle latency ms: p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f\n"+
			"  process peaks: goroutines=%d heap=%d B",
		r.Conns, r.Elapsed.Round(time.Millisecond),
		r.Dialed, r.Completed, r.Shed, r.Failed, r.DialErrs,
		r.BytesSent, r.BytesEchoed, r.ThroughputMBps(),
		r.LatencyMsP50, r.LatencyMsP95, r.LatencyMsP99, r.LatencyMsMean, r.LatencyMsMax,
		r.PeakGoroutines, r.PeakHeapBytes)
}

// Plan is one worker's deterministic operation schedule: a seeded stream of
// (kind, size, think) tuples. Equal (seed, worker) yield equal plans.
type Plan struct {
	rng *xrand.RNG
	cfg Config
}

// NewPlan returns worker w's plan under cfg.
func NewPlan(cfg Config, w int) *Plan {
	c := cfg.withDefaults()
	// Distinct odd stride decorrelates workers; the xor keeps worker 0
	// distinct from the raw seed used elsewhere.
	return &Plan{rng: xrand.New(c.Seed ^ 0xac10ad*uint64(w+1) ^ 0x5eed), cfg: c}
}

// Next returns the worker's next operation.
func (p *Plan) Next() (kind corpus.Kind, size int, think time.Duration) {
	kind = p.cfg.Mix[p.rng.Intn(len(p.cfg.Mix))]
	size = p.cfg.MinPayload
	if p.cfg.MaxPayload > p.cfg.MinPayload {
		// Log-uniform: transfers span the configured range in orders of
		// magnitude, not just linearly.
		lo, hi := math.Log(float64(p.cfg.MinPayload)), math.Log(float64(p.cfg.MaxPayload))
		size = int(math.Exp(lo + p.rng.Float64()*(hi-lo)))
		if size > p.cfg.MaxPayload {
			size = p.cfg.MaxPayload
		}
		if size < p.cfg.MinPayload {
			size = p.cfg.MinPayload
		}
	}
	if p.cfg.MaxThink > 0 {
		think = p.cfg.MinThink + time.Duration(p.rng.Float64()*float64(p.cfg.MaxThink-p.cfg.MinThink))
	}
	return kind, size, think
}

// latencyBuckets spans 0.25 ms .. ~34 s exponentially.
var latencyBuckets = obs.ExpBuckets(0.25, 2, 18)

// metrics are the generator's client-side instruments; nil-safe via obs.
type metrics struct {
	dialed    *obs.Counter
	completed *obs.Counter
	shed      *obs.Counter
	failed    *obs.Counter
	dialErrs  *obs.Counter
	sent      *obs.Counter
	echoed    *obs.Counter
	latency   *obs.Histogram
}

func newMetrics(scope *obs.Scope) *metrics {
	cycles := scope.Scope("cycles")
	return &metrics{
		dialed:    cycles.Counter("dialed"),
		completed: cycles.Counter("completed"),
		shed:      cycles.Counter("shed"),
		failed:    cycles.Counter("failed"),
		dialErrs:  cycles.Counter("dial_errors"),
		sent:      scope.Counter("bytes_sent"),
		echoed:    scope.Counter("bytes_echoed"),
		latency:   scope.Histogram("cycle_latency_ms", latencyBuckets),
	}
}

// Run executes the configured load against cfg.Addr and blocks until every
// worker has finished. The context cancels the run early; Duration and Ops
// bound it otherwise.
func Run(ctx context.Context, cfg Config) (Report, error) {
	c := cfg.withDefaults()
	if c.Addr == "" {
		return Report{}, errors.New("loadgen: Config.Addr is required")
	}
	if c.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Duration)
		defer cancel()
	}

	m := newMetrics(c.Obs)

	// Shared payload corpus: one MaxPayload-sized buffer per kind; cycles
	// send deterministic prefixes of it. Workers never mutate these.
	payloads := make(map[corpus.Kind][]byte, len(c.Mix))
	for i, k := range c.Mix {
		if _, ok := payloads[k]; !ok {
			payloads[k] = corpus.Generate(k, c.MaxPayload, c.Seed+uint64(i))
		}
	}

	var opsLeft atomic.Int64
	opsLeft.Store(c.Ops)
	takeOp := func() bool {
		if c.Ops <= 0 {
			return true
		}
		return opsLeft.Add(-1) >= 0
	}

	// Peak sampler: goroutine count every tick, heap a little less often
	// (ReadMemStats is comparatively expensive).
	peaks := struct {
		sync.Mutex
		goroutines int
		heap       uint64
	}{}
	samplerCtx, stopSampler := context.WithCancel(context.Background())
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		var ms runtime.MemStats
		for i := 0; ; i++ {
			select {
			case <-samplerCtx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
			g := runtime.NumGoroutine()
			peaks.Lock()
			if g > peaks.goroutines {
				peaks.goroutines = g
			}
			peaks.Unlock()
			if i%10 == 0 {
				runtime.ReadMemStats(&ms)
				peaks.Lock()
				if ms.HeapAlloc > peaks.heap {
					peaks.heap = ms.HeapAlloc
				}
				peaks.Unlock()
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c.Conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			plan := NewPlan(c, w)
			for ctx.Err() == nil && takeOp() {
				kind, size, think := plan.Next()
				cycle(ctx, c, m, payloads[kind][:size], start)
				if think > 0 {
					select {
					case <-ctx.Done():
					case <-time.After(think):
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stopSampler()
	samplerDone.Wait()

	lat := m.latency
	peaks.Lock()
	defer peaks.Unlock()
	return Report{
		Conns:          c.Conns,
		Elapsed:        elapsed,
		Dialed:         m.dialed.Value(),
		Completed:      m.completed.Value(),
		Shed:           m.shed.Value(),
		Failed:         m.failed.Value(),
		DialErrs:       m.dialErrs.Value(),
		BytesSent:      m.sent.Value(),
		BytesEchoed:    m.echoed.Value(),
		LatencyMsP50:   lat.Quantile(0.50),
		LatencyMsP95:   lat.Quantile(0.95),
		LatencyMsP99:   lat.Quantile(0.99),
		LatencyMsMean:  lat.Mean(),
		LatencyMsMax:   lat.Quantile(1),
		PeakGoroutines: peaks.goroutines,
		PeakHeapBytes:  peaks.heap,
	}, nil
}

// cycle runs one open → send → echo → close round and classifies the
// outcome: completed (full, verified echo), shed (closed before any echo
// byte — the tunnel refused us), or failed (broken mid-transfer).
func cycle(ctx context.Context, c Config, m *metrics, payload []byte, runStart time.Time) {
	start := time.Now()
	d := net.Dialer{Timeout: c.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		if ctx.Err() == nil {
			m.dialErrs.Inc()
			logf(c, "loadgen: dial: %v", err)
		}
		return
	}
	defer conn.Close()
	m.dialed.Inc()

	deadline := start.Add(c.OpTimeout)
	if ctxDeadline, ok := ctx.Deadline(); ok {
		// Don't let a cycle outlive the run by more than a beat.
		if d := ctxDeadline.Add(500 * time.Millisecond); d.Before(deadline) {
			deadline = d
		}
	}
	conn.SetDeadline(deadline)

	var writeErr error
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		if _, err := conn.Write(payload); err != nil {
			writeErr = err
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	echoed := make([]byte, 0, len(payload))
	buf := make([]byte, 32<<10)
	var readErr error
	for {
		n, err := conn.Read(buf)
		echoed = append(echoed, buf[:n]...)
		if err != nil {
			if err != io.EOF {
				readErr = err
			}
			break
		}
	}
	<-writeDone
	m.sent.Add(int64(len(payload)))
	m.echoed.Add(int64(len(echoed)))

	switch {
	case len(echoed) == 0:
		// Closed before a single echo byte: the far side shed us.
		m.shed.Inc()
	case readErr != nil || writeErr != nil || len(echoed) != len(payload):
		m.failed.Inc()
		logf(c, "loadgen: cycle failed: sent=%d echoed=%d writeErr=%v readErr=%v",
			len(payload), len(echoed), writeErr, readErr)
	case c.Verify && !bytes.Equal(echoed, payload):
		m.failed.Inc()
		logf(c, "loadgen: echo mismatch on %d-byte payload", len(payload))
	default:
		m.completed.Inc()
		m.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		if c.Recorder != nil {
			c.Recorder.Record(time.Since(runStart).Seconds(), int64(len(payload)))
		}
	}
}

func logf(c Config, format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
