package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestAddAndWriteFile(t *testing.T) {
	f := &File{Description: "test artifact"}
	f.Add("BenchmarkX/a", "current", Measurement{MBPerS: 123.4, NsPerOp: 8100})
	f.Add("BenchmarkX/a", "pre", Measurement{MBPerS: 100})
	f.Add("BenchmarkY", "current", Measurement{BytesPerOp: 64, AllocsPerOp: 1})

	if got := f.Names(); len(got) != 2 || got[0] != "BenchmarkX/a" || got[1] != "BenchmarkY" {
		t.Fatalf("Names() = %v", got)
	}

	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if m := back.Benchmarks["BenchmarkX/a"]["current"]; m.MBPerS != 123.4 || m.NsPerOp != 8100 {
		t.Fatalf("round-trip lost data: %+v", m)
	}
	// Omitted zero fields keep the document diffable against benchdiff's
	// parser view: an alloc-only entry must not serialize speed fields.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	benches := raw["benchmarks"].(map[string]any)
	y := benches["BenchmarkY"].(map[string]any)["current"].(map[string]any)
	if _, ok := y["mb_per_s"]; ok {
		t.Fatalf("zero mb_per_s must be omitted, got %v", y)
	}
}
