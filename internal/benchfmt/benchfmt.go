// Package benchfmt defines the shared JSON schema for performance
// artifacts: the committed baselines (BENCH_alloc.json,
// BENCH_throughput.json) that cmd/benchdiff gates against, and the
// -json-out emitters of cmd/realbench and cmd/acprobe, all speak this
// format — so a nightly soak artifact can be diffed against a committed
// baseline without translation.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Measurement is one benchmark's metrics under one set. Zero-valued fields
// are omitted: an alloc baseline carries bytes/allocs, a throughput
// baseline mb_per_s and/or ns_per_op.
type Measurement struct {
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	// Probes and WastedProbes carry decider probe economics (the
	// cmd/benchdiff decider gate's regression axis).
	Probes       int64  `json:"probes,omitempty"`
	WastedProbes int64  `json:"wasted_probes,omitempty"`
	Note         string `json:"note,omitempty"`
}

// File is a whole baseline/artifact document: benchmark name -> set name ->
// measurement. Set names identify when the numbers were taken
// ("pre_fastpath", "current") or where ("realbench", "acprobe").
type File struct {
	Description string                            `json:"description"`
	Go          string                            `json:"go,omitempty"`
	Benchtime   string                            `json:"benchtime,omitempty"`
	Benchmarks  map[string]map[string]Measurement `json:"benchmarks"`
}

// Add records one measurement, creating maps as needed.
func (f *File) Add(bench, set string, m Measurement) {
	if f.Benchmarks == nil {
		f.Benchmarks = make(map[string]map[string]Measurement)
	}
	sets := f.Benchmarks[bench]
	if sets == nil {
		sets = make(map[string]Measurement)
		f.Benchmarks[bench] = sets
	}
	sets[set] = m
}

// Names returns the benchmark names in sorted order.
func (f *File) Names() []string {
	names := make([]string, 0, len(f.Benchmarks))
	for n := range f.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteFile marshals f deterministically (json.MarshalIndent sorts map
// keys) and writes it to path with a trailing newline.
func WriteFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
