// Package baseline implements the decision models of the related adaptive
// compression schemes the paper discusses in Section V, in the simplified
// form needed to quantify its central argument: schemes that decide from
// OS-displayed system metrics (CPU utilization, probed bandwidth) or from
// offline training inherit the guest-metric distortions of Section II and
// choose unreasonable compression levels inside virtual machines, while the
// paper's rate-based model (internal/core) does not.
//
// Four families are modeled:
//
//   - NCTCSys (Motgi & Mukherjee 2001): sensor thresholds on network
//     bandwidth and server load choose the algorithm.
//   - Krintz & Sucu's ACE (2006): an offline-trained model of per-level
//     compression speed and ratio, evaluated against displayed CPU idle
//     time and probed bandwidth.
//   - Jeannot, Knutsson & Björkman's AdOC (2002): a FIFO queue between the
//     compression and send threads; the level follows the queue trend. The
//     scheme assumes higher levels always compress better — the flaw the
//     paper points out for incompressible data.
//   - Wiseman, Schwan & Widener (2004): a short sampling phase measures
//     each level once, then hard-coded parameters fix the choice.
//
// All types implement cloudsim.Scheme and cloudsim.MetricsScheme, so they
// run in the identical transfer engine as the paper's DYNAMIC scheme for
// the A4 ablation (DESIGN.md).
package baseline

import (
	"fmt"

	"adaptio/internal/cloudsim"
)

// Training holds what an offline calibration phase on a verifiably unloaded
// machine would have measured: per-level compression speed (MB/s of
// application data) and compression ratio on the training data. The paper's
// point is that in a cloud this phase (a) costs provisioned time on every
// new VM and (b) measures a machine whose load it cannot verify.
type Training struct {
	CompMBps []float64
	Ratio    []float64
}

// Validate checks the training tables are parallel and plausible.
func (t Training) Validate() error {
	if len(t.CompMBps) == 0 || len(t.CompMBps) != len(t.Ratio) {
		return fmt.Errorf("baseline: training tables empty or mismatched (%d vs %d)",
			len(t.CompMBps), len(t.Ratio))
	}
	for i := range t.CompMBps {
		if t.CompMBps[i] <= 0 || t.Ratio[i] <= 0 {
			return fmt.Errorf("baseline: non-positive training entry at level %d", i)
		}
	}
	return nil
}

// Levels returns the number of levels covered by the training.
func (t Training) Levels() int { return len(t.CompMBps) }

// DefaultTraining returns tables as measured by an offline phase on the
// paper's unloaded hardware with moderately compressible training data
// (matching the ReferenceProfiles MODERATE column).
func DefaultTraining() Training {
	return Training{
		CompMBps: []float64{5000, 104, 71, 8.9},
		Ratio:    []float64{1.0, 0.45, 0.40, 0.33},
	}
}

// ---------- NCTCSys ----------

// NCTCSys chooses the compression level from sensor modules reporting
// network bandwidth and server load, with fixed thresholds (network
// conscious text compression, Motgi & Mukherjee).
type NCTCSys struct {
	level    int
	maxLevel int

	// Bandwidth thresholds in wire MB/s, descending.
	BWLight  float64 // below: at least LIGHT
	BWMedium float64 // below: at least MEDIUM
	BWHeavy  float64 // below: HEAVY
	// MinIdlePct backs compression off when the displayed server load is
	// high (i.e. displayed idle is low).
	MinIdlePct float64

	haveMetrics bool
	bw, idle    float64
}

// NewNCTCSys returns the scheme with thresholds scaled to gigabit links.
func NewNCTCSys(levels int) *NCTCSys {
	return &NCTCSys{
		maxLevel:   levels - 1,
		BWLight:    60,
		BWMedium:   20,
		BWHeavy:    3,
		MinIdlePct: 30,
	}
}

// Level implements cloudsim.Scheme.
func (n *NCTCSys) Level() int { return n.level }

// ObserveMetrics implements cloudsim.MetricsScheme.
func (n *NCTCSys) ObserveMetrics(m cloudsim.GuestMetrics) {
	n.bw = m.DisplayedBandwidthMBps
	n.idle = m.DisplayedIdlePct
	n.haveMetrics = true
}

// Observe implements cloudsim.Scheme. The application data rate is ignored:
// NCTCSys decides from its sensors only.
func (n *NCTCSys) Observe(float64) int {
	if !n.haveMetrics {
		return n.level
	}
	lvl := 0
	switch {
	case n.bw < n.BWHeavy:
		lvl = 3
	case n.bw < n.BWMedium:
		lvl = 2
	case n.bw < n.BWLight:
		lvl = 1
	}
	if n.idle < n.MinIdlePct && lvl > 0 {
		lvl-- // server loaded: back off one level
	}
	if lvl > n.maxLevel {
		lvl = n.maxLevel
	}
	n.level = lvl
	return n.level
}

// ---------- Krintz & Sucu (ACE) ----------

// KrintzSucu estimates, for every level, the end-to-end throughput from its
// offline-trained speed/ratio tables combined with the *displayed* CPU idle
// fraction and probed bandwidth, then picks the argmax. Inside a VM the
// displayed idle stays near 100% under I/O load (Section II-A), so the
// scheme systematically overestimates the CPU available for compression and
// selects levels that are far too heavy.
type KrintzSucu struct {
	training Training
	level    int

	haveMetrics bool
	idleFrac    float64
	bw          float64
}

// NewKrintzSucu builds the scheme from an offline training run.
func NewKrintzSucu(t Training) (*KrintzSucu, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &KrintzSucu{training: t}, nil
}

// Level implements cloudsim.Scheme.
func (k *KrintzSucu) Level() int { return k.level }

// ObserveMetrics implements cloudsim.MetricsScheme.
func (k *KrintzSucu) ObserveMetrics(m cloudsim.GuestMetrics) {
	k.idleFrac = m.DisplayedIdlePct / 100
	k.bw = m.DisplayedBandwidthMBps
	k.haveMetrics = true
}

// Observe implements cloudsim.Scheme.
func (k *KrintzSucu) Observe(float64) int {
	if !k.haveMetrics {
		return k.level
	}
	best, bestRate := 0, 0.0
	for l := 0; l < k.training.Levels(); l++ {
		// Estimated pipeline rate: compression limited by the CPU the
		// guest *believes* is free; network carries ratio-scaled bytes.
		comp := k.training.CompMBps[l] * k.idleFrac
		net := k.bw / k.training.Ratio[l]
		rate := comp
		if net < rate {
			rate = net
		}
		if rate > bestRate {
			best, bestRate = l, rate
		}
	}
	k.level = best
	return k.level
}

// ---------- Jeannot et al. (AdOC) ----------

// Jeannot follows the fill trend of the FIFO queue between the compression
// thread and the send thread: a growing queue means the network is the
// bottleneck, so the level is raised; a shrinking queue means compression
// is the bottleneck, so it is lowered. The queue is reconstructed from the
// engine's compressor/drain rates using the scheme's *assumed* (trained)
// ratios — embodying the assumption, criticized by the paper, that higher
// levels always shrink the data further.
type Jeannot struct {
	training Training
	level    int

	queueMB   float64
	prevQueue float64
	// QueueCapMB bounds the modeled queue.
	QueueCapMB float64
	// TrendMB is the hysteresis: the queue must move by this much per
	// window before the level changes.
	TrendMB float64

	haveMetrics bool
	produceMB   float64 // wire MB produced into the queue this window
	drainMB     float64 // wire MB drained by the network this window
}

// NewJeannot builds the queue-trend scheme.
func NewJeannot(t Training) (*Jeannot, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Jeannot{training: t, QueueCapMB: 64, TrendMB: 1}, nil
}

// Level implements cloudsim.Scheme.
func (j *Jeannot) Level() int { return j.level }

// ObserveMetrics implements cloudsim.MetricsScheme.
func (j *Jeannot) ObserveMetrics(m cloudsim.GuestMetrics) {
	ratio := j.training.Ratio[j.level]
	j.produceMB = m.CompressorMBps * ratio * m.WindowSeconds
	j.drainMB = m.NetDrainMBps * m.WindowSeconds
	j.haveMetrics = true
}

// Observe implements cloudsim.Scheme.
func (j *Jeannot) Observe(float64) int {
	if !j.haveMetrics {
		return j.level
	}
	j.prevQueue = j.queueMB
	j.queueMB += j.produceMB - j.drainMB
	if j.queueMB < 0 {
		j.queueMB = 0
	}
	if j.queueMB > j.QueueCapMB {
		j.queueMB = j.QueueCapMB
	}
	switch {
	case j.queueMB > j.prevQueue+j.TrendMB && j.level < j.training.Levels()-1:
		j.level++ // queue filling: network-bound, compress harder
	case j.queueMB < j.prevQueue-j.TrendMB && j.level > 0:
		j.level-- // queue draining: CPU-bound, compress less
	}
	return j.level
}

// ---------- Wiseman et al. ----------

// Wiseman runs a short sampling phase — one window per level — and then
// locks in the level with the best observed application rate. The original
// system's hard-coded parameters "need a short sampling phase with unloaded
// I/O and CPU"; because the phase never repeats, the choice goes stale the
// moment contention or data compressibility changes.
type Wiseman struct {
	levels  int
	level   int
	sampled []float64
	phase   int // next level to sample; == levels when locked
	locked  int
}

// NewWiseman builds the sample-once scheme.
func NewWiseman(levels int) (*Wiseman, error) {
	if levels < 1 {
		return nil, fmt.Errorf("baseline: need at least 1 level, got %d", levels)
	}
	return &Wiseman{levels: levels, sampled: make([]float64, levels)}, nil
}

// Level implements cloudsim.Scheme.
func (w *Wiseman) Level() int { return w.level }

// Observe implements cloudsim.Scheme.
func (w *Wiseman) Observe(rate float64) int {
	if w.phase < w.levels {
		// Record the rate observed at the level just run and advance
		// the sampling sweep.
		w.sampled[w.level] = rate
		w.phase++
		if w.phase < w.levels {
			w.level = w.phase
			return w.level
		}
		best := 0
		for l, r := range w.sampled {
			if r > w.sampled[best] {
				best = l
			}
			_ = r
		}
		w.locked = best
		w.level = best
	}
	return w.level
}
