package baseline_test

import (
	"testing"

	"adaptio/internal/baseline"
	"adaptio/internal/cloudsim"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
)

// Interface conformance: all baselines must drop into the transfer engine.
var (
	_ cloudsim.MetricsScheme = (*baseline.NCTCSys)(nil)
	_ cloudsim.MetricsScheme = (*baseline.KrintzSucu)(nil)
	_ cloudsim.MetricsScheme = (*baseline.Jeannot)(nil)
	_ cloudsim.Scheme        = (*baseline.Wiseman)(nil)
)

func TestTrainingValidate(t *testing.T) {
	if err := baseline.DefaultTraining().Validate(); err != nil {
		t.Fatalf("default training invalid: %v", err)
	}
	bad := baseline.Training{CompMBps: []float64{1}, Ratio: []float64{1, 2}}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched tables accepted")
	}
	bad2 := baseline.Training{CompMBps: []float64{0}, Ratio: []float64{1}}
	if err := bad2.Validate(); err == nil {
		t.Error("zero speed accepted")
	}
	if err := (baseline.Training{}).Validate(); err == nil {
		t.Error("empty training accepted")
	}
	if baseline.DefaultTraining().Levels() != 4 {
		t.Error("default training should cover 4 levels")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := baseline.NewKrintzSucu(baseline.Training{}); err == nil {
		t.Error("KrintzSucu accepted empty training")
	}
	if _, err := baseline.NewJeannot(baseline.Training{}); err == nil {
		t.Error("Jeannot accepted empty training")
	}
	if _, err := baseline.NewWiseman(0); err == nil {
		t.Error("Wiseman accepted zero levels")
	}
}

func TestNCTCSysThresholds(t *testing.T) {
	n := baseline.NewNCTCSys(4)
	cases := []struct {
		bw, idle float64
		want     int
	}{
		{bw: 88, idle: 90, want: 0}, // fast network: no compression
		{bw: 40, idle: 90, want: 1}, // below light threshold
		{bw: 10, idle: 90, want: 2}, // below medium threshold
		{bw: 1, idle: 90, want: 3},  // nearly dead network: heavy
		{bw: 10, idle: 10, want: 1}, // loaded server backs off one level
	}
	for _, c := range cases {
		n.ObserveMetrics(cloudsim.GuestMetrics{DisplayedBandwidthMBps: c.bw, DisplayedIdlePct: c.idle})
		if got := n.Observe(0); got != c.want {
			t.Errorf("bw=%v idle=%v: level %d, want %d", c.bw, c.idle, got, c.want)
		}
	}
}

func TestNCTCSysNoMetricsNoMove(t *testing.T) {
	n := baseline.NewNCTCSys(4)
	if n.Observe(100) != 0 {
		t.Fatal("moved without metrics")
	}
}

func TestKrintzSucuPicksByTrainedModel(t *testing.T) {
	k, err := baseline.NewKrintzSucu(baseline.DefaultTraining())
	if err != nil {
		t.Fatal(err)
	}
	// Plenty of displayed idle, gigabit-class bandwidth: trained model
	// says LIGHT maximizes min(comp*idle, bw/ratio).
	k.ObserveMetrics(cloudsim.GuestMetrics{DisplayedIdlePct: 90, DisplayedBandwidthMBps: 88})
	if got := k.Observe(0); got != 1 {
		t.Fatalf("unloaded gigabit: level %d, want 1 (LIGHT)", got)
	}
	// Starved network: heavy compression pays off in the trained model.
	k.ObserveMetrics(cloudsim.GuestMetrics{DisplayedIdlePct: 90, DisplayedBandwidthMBps: 2})
	if got := k.Observe(0); got != 3 {
		t.Fatalf("starved network: level %d, want 3 (HEAVY)", got)
	}
	// Displayed CPU exhausted: compression appears unaffordable.
	k.ObserveMetrics(cloudsim.GuestMetrics{DisplayedIdlePct: 1, DisplayedBandwidthMBps: 88})
	if got := k.Observe(0); got != 0 {
		t.Fatalf("no displayed idle: level %d, want 0", got)
	}
}

func TestJeannotFollowsQueueTrend(t *testing.T) {
	j, err := baseline.NewJeannot(baseline.DefaultTraining())
	if err != nil {
		t.Fatal(err)
	}
	// Compressor far outruns the network: queue grows, level rises.
	for i := 0; i < 3; i++ {
		j.ObserveMetrics(cloudsim.GuestMetrics{CompressorMBps: 500, NetDrainMBps: 10, WindowSeconds: 2})
		j.Observe(0)
	}
	if j.Level() == 0 {
		t.Fatal("growing queue did not raise the level")
	}
	// Network far outruns the compressor: queue drains, level falls.
	for i := 0; i < 6; i++ {
		j.ObserveMetrics(cloudsim.GuestMetrics{CompressorMBps: 1, NetDrainMBps: 100, WindowSeconds: 2})
		j.Observe(0)
	}
	if j.Level() != 0 {
		t.Fatalf("draining queue did not lower the level, at %d", j.Level())
	}
}

func TestWisemanSamplesThenLocks(t *testing.T) {
	w, err := baseline.NewWiseman(4)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling sweep: levels 0,1,2,3 in turn; level 2 shows the best rate.
	rates := []float64{50, 80, 120, 20}
	for i := 0; i < 4; i++ {
		if got := w.Level(); got != i {
			t.Fatalf("sample %d runs at level %d", i, got)
		}
		w.Observe(rates[i])
	}
	if w.Level() != 2 {
		t.Fatalf("locked level %d, want 2", w.Level())
	}
	// Whatever happens later, the level never changes again (the staleness
	// the paper criticizes).
	for _, r := range []float64{1, 1000, 3} {
		if got := w.Observe(r); got != 2 {
			t.Fatalf("post-lock level %d", got)
		}
	}
}

// runScheme executes a scheme in the real transfer engine.
func runScheme(t *testing.T, s cloudsim.Scheme, kind corpus.Kind, bg int) float64 {
	t.Helper()
	return runSchemeOn(t, cloudsim.KVMParavirt, s, kind, bg)
}

func runSchemeOn(t *testing.T, p cloudsim.Platform, s cloudsim.Scheme, kind corpus.Kind, bg int) float64 {
	t.Helper()
	res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
		Platform:   p,
		Kind:       cloudsim.ConstantKind(kind),
		TotalBytes: 50e9,
		Background: bg,
		Scheme:     s,
		Profiles:   cloudsim.ReferenceProfiles(),
		Seed:       99,
	})
	if err != nil {
		t.Fatalf("RunTransfer: %v", err)
	}
	return res.CompletionSeconds
}

// TestBaselinesMisledOnIncompressibleData is one half of the A4 ablation:
// on LOW data the trained scheme keeps engaging compression (its model,
// fed by the inflated displayed-idle metric, says compression helps) and
// lands measurably above the optimal static NO level, while the rate-based
// DYNAMIC scheme stays within the paper's 22% bound.
func TestBaselinesMisledOnIncompressibleData(t *testing.T) {
	no := runScheme(t, cloudsim.StaticScheme(0), corpus.Low, 0)

	k, _ := baseline.NewKrintzSucu(baseline.DefaultTraining())
	ks := runScheme(t, k, corpus.Low, 0)

	dyn := runScheme(t, core.MustNewDecider(core.Config{Levels: 4}), corpus.Low, 0)

	if ks <= no*1.05 {
		t.Errorf("KrintzSucu on LOW (%.0f s) should be misled vs NO (%.0f s)", ks, no)
	}
	if dyn > no*1.22 {
		t.Errorf("DYNAMIC on LOW (%.0f s) should stay near NO (%.0f s)", dyn, no)
	}
}

// TestMetricSchemesFlapOnEC2 is the other half of A4: EC2's wildly
// fluctuating bandwidth probes (Section II-B) make the metric-driven
// trained scheme flap into expensive levels, while the rate-based scheme
// only reacts to sustained rate changes and finishes faster.
func TestMetricSchemesFlapOnEC2(t *testing.T) {
	k, _ := baseline.NewKrintzSucu(baseline.DefaultTraining())
	ks := runSchemeOn(t, cloudsim.EC2, k, corpus.High, 0)

	dyn := runSchemeOn(t, cloudsim.EC2, core.MustNewDecider(core.Config{Levels: 4}), corpus.High, 0)

	if dyn >= ks {
		t.Errorf("on EC2/HIGH, DYNAMIC (%.0f s) should beat the metric-driven baseline (%.0f s)", dyn, ks)
	}
}

// TestBaselinesRunEndToEnd smoke-tests every baseline inside the engine on
// every corpus kind: they must complete without error and choose only valid
// levels (the engine enforces the range).
func TestBaselinesRunEndToEnd(t *testing.T) {
	train := baseline.DefaultTraining()
	for _, kind := range corpus.Kinds() {
		schemes := map[string]cloudsim.Scheme{}
		schemes["nctcsys"] = baseline.NewNCTCSys(4)
		k, _ := baseline.NewKrintzSucu(train)
		schemes["krintz"] = k
		j, _ := baseline.NewJeannot(train)
		schemes["jeannot"] = j
		w, _ := baseline.NewWiseman(4)
		schemes["wiseman"] = w
		for name, s := range schemes {
			if ct := runScheme(t, s, kind, 1); ct <= 0 {
				t.Errorf("%s on %v: non-positive completion time", name, kind)
			}
		}
	}
}
