//go:build !race

package nephele_test

// raceSlow reports whether the race detector is active; see race_on_test.go.
const raceSlow = false
