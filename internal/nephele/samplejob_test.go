package nephele_test

import (
	"context"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/nephele"
)

// runSampleJob executes the paper's Section IV-A sample job — a sender task
// repeatedly writing a test file over a TCP network channel to a receiver
// task — inside the real engine, with the channel's wire bandwidth shaped
// to emulate a contended cloud NIC, and returns the completion time.
func runSampleJob(t *testing.T, kind corpus.Kind, spec nephele.ChannelSpec, volume int) time.Duration {
	t.Helper()
	file := corpus.GenerateFile(kind, 1)
	g := nephele.NewJobGraph("sample-job")
	src := g.AddVertex("sender", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		sent := 0
		for sent < volume {
			for off := 0; off < len(file) && sent < volume; off += 64 << 10 {
				end := off + 64<<10
				if end > len(file) {
					end = len(file)
				}
				if err := emit(file[off:end]); err != nil {
					return err
				}
				sent += end - off
			}
		}
		return nil
	}), 1)
	sink := g.AddVertex("receiver", nephele.SinkFunc(func([]byte) error { return nil }), 1)
	if _, err := g.Connect(src, sink, spec); err != nil {
		t.Fatal(err)
	}
	stats, err := (&nephele.Engine{}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Duration
}

// TestSampleJobPaperEffectEndToEnd is the paper's central result run
// through the full production stack — real corpus bytes, real codecs, the
// real decision model, the real dataflow engine, real TCP — with the
// network channel shaped to a contended-NIC bandwidth: on compressible data
// DYNAMIC must decisively beat the uncompressed channel and track the best
// static level.
func TestSampleJobPaperEffectEndToEnd(t *testing.T) {
	if testing.Short() || raceSlow {
		t.Skip("real-time wall-clock comparison")
	}
	const volume = 12 << 20
	const wire = 10.0 // MB/s
	base := nephele.ChannelSpec{Type: nephele.Network, WireMBps: wire, Window: 40 * time.Millisecond}

	no := base
	no.Compression = nephele.CompressionOff
	light := base
	light.Compression = nephele.CompressionStatic
	light.StaticLevel = 1
	dyn := base
	dyn.Compression = nephele.CompressionAdaptive

	tNo := runSampleJob(t, corpus.High, no, volume)
	tLight := runSampleJob(t, corpus.High, light, volume)
	tDyn := runSampleJob(t, corpus.High, dyn, volume)

	t.Logf("sample job on HIGH data, %0.f MB/s wire: NO %v, LIGHT %v, DYNAMIC %v", wire, tNo, tLight, tDyn)
	if tLight >= tNo {
		t.Errorf("LIGHT (%v) should beat NO (%v) on a constrained wire", tLight, tNo)
	}
	if tDyn >= tNo {
		t.Errorf("DYNAMIC (%v) should beat NO (%v) on compressible data", tDyn, tNo)
	}
	// DYNAMIC tracks LIGHT within a generous probing margin at this tiny
	// scale (the paper's 22% bound holds at 50 GB where probing
	// amortizes; at 12 MB we allow 2x).
	if tDyn > 2*tLight {
		t.Errorf("DYNAMIC (%v) far behind best static (%v)", tDyn, tLight)
	}
}

func TestWireShapingValidation(t *testing.T) {
	g := nephele.NewJobGraph("w")
	a := g.AddVertex("a", nopSource(), 1)
	b := g.AddVertex("b", nopSink(), 1)
	if _, err := g.Connect(a, b, nephele.ChannelSpec{Type: nephele.Network, WireMBps: -1}); err == nil {
		t.Fatal("negative wire rate accepted")
	}
}
