//go:build race

package nephele_test

// raceSlow reports that the race detector's slowdown invalidates wall-clock
// performance comparisons in this package.
const raceSlow = true
