package nephele_test

import (
	"context"
	"fmt"
	"log"

	"adaptio/internal/nephele"
)

// ExampleEngine_Execute builds and runs a two-stage job over an adaptively
// compressed in-process network channel.
func ExampleEngine_Execute() {
	g := nephele.NewJobGraph("example")
	src := g.AddVertex("numbers", nephele.SourceFunc(
		func(ctx *nephele.TaskContext, emit func([]byte) error) error {
			for i := 0; i < 100; i++ {
				if err := emit([]byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}), 1)
	count := 0
	sink := g.AddVertex("count", nephele.SinkFunc(func(rec []byte) error {
		count++
		return nil
	}), 1)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{
		Type:        nephele.Network,
		Compression: nephele.CompressionAdaptive,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := (&nephele.Engine{}).Execute(context.Background(), g); err != nil {
		log.Fatal(err)
	}
	fmt.Println(count)
	// Output: 100
}

// ExampleJobGraph_DOT exports an execution plan for Graphviz.
func ExampleJobGraph_DOT() {
	g := nephele.NewJobGraph("plan")
	a := g.AddVertex("extract", nephele.SourceFunc(nil), 2)
	b := g.AddVertex("load", nephele.SinkFunc(nil), 1)
	if _, err := g.Connect(a, b, nephele.ChannelSpec{Type: nephele.File, Compression: nephele.CompressionStatic, StaticLevel: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Print(g.DOT())
	// Output:
	// digraph "plan" {
	//   rankdir=LR;
	//   node [shape=box];
	//   "extract" [label="extract\nx2"];
	//   "load" [label="load\nx1"];
	//   "extract" -> "load" [label="file\nstatic L1", style=dashed];
	// }
}
