package nephele

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"adaptio/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestRenderGolden pins JobStats.Render byte-for-byte. The stats struct is
// built by hand (not by running a job) so the output is fully deterministic;
// the engine tests separately prove Execute fills the same struct from the
// per-job obs registry. Together they guarantee the obs refactor cannot
// silently change the report operators read.
func TestRenderGolden(t *testing.T) {
	s := &JobStats{
		Duration: 1234567890 * time.Nanosecond, // renders as 1.234567s rounded
		Edges: map[string]EdgeStats{
			"producer->consumer": {
				Records:       1000,
				AppBytes:      128 << 20,
				WireBytes:     37 << 20,
				LevelSwitches: 6,
			},
			"consumer->sink": {
				Records:   1000,
				AppBytes:  64 << 20,
				WireBytes: 64 << 20,
			},
			"empty->edge": {},
		},
		Vertices: map[string]VertexStats{
			"producer": {Subtasks: 4, Busiest: 2 * time.Second, Total: 7 * time.Second},
			"consumer": {Subtasks: 2, Busiest: 1500 * time.Millisecond, Total: 2900 * time.Millisecond},
			"sink":     {Subtasks: 1, Busiest: 123 * time.Millisecond, Total: 123 * time.Millisecond},
		},
	}
	got := []byte(s.Render())

	path := filepath.Join("testdata", "render.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("Render output differs from %s (run with -update after intentional changes)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestStatsDerivedFromMetrics proves the JobStats maps are a faithful view
// of the per-job obs registry: every number in Edges/Vertices must equal the
// value of the corresponding metric, and the task event log records one
// start and one completion per subtask.
func TestStatsDerivedFromMetrics(t *testing.T) {
	g := NewJobGraph("derive")
	src := g.AddVertex("src", SourceFunc(func(_ *TaskContext, emit func([]byte) error) error {
		if err := emit([]byte("aaaa")); err != nil {
			return err
		}
		return emit([]byte("bbbb"))
	}), 2)
	snk := g.AddVertex("snk", SinkFunc(func([]byte) error { return nil }), 1)
	if _, err := g.Connect(src, snk, ChannelSpec{Type: InMemory}); err != nil {
		t.Fatal(err)
	}
	var e Engine
	stats, err := e.Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Metrics == nil {
		t.Fatal("JobStats.Metrics not set")
	}
	es, ok := stats.Edges["src->snk"]
	if !ok {
		t.Fatalf("edge stats missing: %v", stats.Edges)
	}
	counter := func(name string) int64 {
		m, ok := stats.Metrics.Get(name).(interface{ Value() int64 })
		if !ok {
			t.Fatalf("metric %q missing or wrong kind (have %v)", name, stats.Metrics.Names())
		}
		return m.Value()
	}
	if got := counter("nephele.edge.src->snk.records"); got != es.Records || es.Records != 4 {
		t.Fatalf("records: metric %d, stats %d, want 4", got, es.Records)
	}
	if got := counter("nephele.edge.src->snk.app_bytes"); got != es.AppBytes {
		t.Fatalf("app_bytes: metric %d, stats %d", got, es.AppBytes)
	}
	if got := counter("nephele.edge.src->snk.wire_bytes"); got != es.WireBytes {
		t.Fatalf("wire_bytes: metric %d, stats %d", got, es.WireBytes)
	}
	vs := stats.Vertices["src"]
	if got := counter("nephele.vertex.src.subtasks"); got != int64(vs.Subtasks) || vs.Subtasks != 2 {
		t.Fatalf("subtasks: metric %d, stats %d, want 2", got, vs.Subtasks)
	}
	if got := counter("nephele.vertex.src.total_ns"); got != int64(vs.Total) {
		t.Fatalf("total_ns: metric %d, stats %v", got, vs.Total)
	}
	if got := counter("nephele.vertex.src.busiest_ns"); got != int64(vs.Busiest) {
		t.Fatalf("busiest_ns: metric %d, stats %v", got, vs.Busiest)
	}
	if vs.Total < vs.Busiest || vs.Busiest <= 0 {
		t.Fatalf("vertex runtimes implausible: busiest %v total %v", vs.Busiest, vs.Total)
	}

	logm, ok := stats.Metrics.Get("nephele.tasks").(*obs.EventLog)
	if !ok {
		t.Fatal("nephele.tasks event log missing")
	}
	var starts, dones, fails int
	for _, ev := range logm.Events() {
		switch ev.Kind {
		case "task_start":
			starts++
		case "task_done":
			dones++
		case "task_failed":
			fails++
		}
	}
	if starts != 3 || dones != 3 || fails != 0 {
		t.Fatalf("task transitions: %d starts, %d dones, %d fails; want 3/3/0", starts, dones, fails)
	}
}
