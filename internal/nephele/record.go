// Package nephele is a miniature reimplementation of the Nephele parallel
// data processing framework (Warneke & Kao, MTAGS 2009) — the system the
// paper integrated its adaptive compression scheme into (Section III-B).
//
// Jobs are expressed as directed acyclic graphs: each vertex is a task, each
// edge a communication channel. Three channel types exist, mirroring
// Nephele: in-memory, TCP network, and file channels. Network and file
// channels optionally compress their traffic — statically at a fixed level
// or adaptively through the rate-based decision model — completely
// transparently to the task code, exactly as the paper describes ("The
// implementation is completely transparent to the tasks, so there is no
// modification required to their program code").
package nephele

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"adaptio/internal/block"
)

// MaxRecordSize bounds a single record; larger writes are rejected and
// larger length prefixes on the wire are treated as corruption.
const MaxRecordSize = 16 << 20

// ErrRecordTooLarge is returned for records exceeding MaxRecordSize.
var ErrRecordTooLarge = errors.New("nephele: record exceeds maximum size")

// RecordWriter frames records onto a byte stream with a uvarint length
// prefix.
type RecordWriter struct {
	w       io.Writer
	lenBuf  [binary.MaxVarintLen64]byte
	records int64
	bytes   int64
}

// NewRecordWriter wraps w.
func NewRecordWriter(w io.Writer) *RecordWriter { return &RecordWriter{w: w} }

// WriteRecord writes one record.
func (rw *RecordWriter) WriteRecord(p []byte) error {
	if len(p) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(p))
	}
	n := binary.PutUvarint(rw.lenBuf[:], uint64(len(p)))
	if _, err := rw.w.Write(rw.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := rw.w.Write(p); err != nil {
		return err
	}
	rw.records++
	rw.bytes += int64(len(p))
	return nil
}

// Counters returns records and payload bytes written.
func (rw *RecordWriter) Counters() (records, bytes int64) { return rw.records, rw.bytes }

// RecordReader decodes records framed by RecordWriter.
//
// Buffer lifecycle (see internal/block): the record buffer comes from the
// block arena and is reused across ReadRecord calls, swapped for a larger
// class only when a record outgrows it. Any error return — including the
// io.EOF that ends a healthy stream — recycles the buffer, so a reader
// drained to EOF leaves nothing behind; a reader abandoned mid-stream
// should be Closed to return its buffer to the arena.
type RecordReader struct {
	r       io.Reader
	br      byteReaderAdapter
	arena   *block.Buf
	records int64
}

// NewRecordReader wraps r.
func NewRecordReader(r io.Reader) *RecordReader {
	rr := &RecordReader{r: r}
	rr.br.r = r
	return rr
}

// ReadRecord returns the next record. The returned slice is reused across
// calls; callers that retain it must copy. It returns io.EOF at a clean end
// of stream and io.ErrUnexpectedEOF when the stream ends inside a record.
// Any error (io.EOF included) invalidates previously returned slices.
func (rr *RecordReader) ReadRecord() ([]byte, error) {
	// binary.ReadUvarint returns io.EOF only when no byte of the varint
	// was read (a clean record boundary) and io.ErrUnexpectedEOF when the
	// stream ends mid-varint.
	size, err := binary.ReadUvarint(&rr.br)
	if err != nil {
		rr.releaseBuf()
		return nil, err
	}
	if size > MaxRecordSize {
		rr.releaseBuf()
		return nil, fmt.Errorf("nephele: corrupt stream: record length %d", size)
	}
	if rr.arena == nil {
		rr.arena = block.Get(int(size))
	} else if rr.arena.Cap() < int(size) {
		rr.arena.Release()
		rr.arena = block.Get(int(size))
	}
	buf := rr.arena.B[:size]
	if _, err := io.ReadFull(rr.r, buf); err != nil {
		rr.releaseBuf()
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	rr.records++
	return buf, nil
}

// Close returns the reader's pooled buffer to the arena. It is only needed
// when a reader is abandoned before an error return; it never fails and is
// safe to call multiple times. Close does not close the underlying source.
func (rr *RecordReader) Close() error {
	rr.releaseBuf()
	return nil
}

func (rr *RecordReader) releaseBuf() {
	if rr.arena != nil {
		rr.arena.Release()
		rr.arena = nil
	}
}

// Records returns the number of records read.
func (rr *RecordReader) Records() int64 { return rr.records }

// byteReaderAdapter provides io.ByteReader over an io.Reader.
type byteReaderAdapter struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReaderAdapter) ReadByte() (byte, error) {
	for {
		n, err := b.r.Read(b.one[:])
		if n == 1 {
			return b.one[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}
