package nephele

import (
	"errors"
	"fmt"
	"time"
)

// Task is the user-supplied processing logic of one vertex. Each parallel
// subtask gets its own Task instance from the vertex's factory.
type Task interface {
	Run(ctx *TaskContext) error
}

// TaskFactory creates one Task per parallel subtask.
type TaskFactory func() Task

// ChannelType selects the transport of an edge, matching Nephele's three
// channel types ("Currently, Nephele supports three different types of
// communication channels: file, TCP network, and in-memory channels").
type ChannelType int

// Channel types.
const (
	InMemory ChannelType = iota // intra-process buffered pipe
	Network                     // real TCP over loopback
	File                        // staged through a temporary file
)

// String returns a readable channel type name.
func (c ChannelType) String() string {
	switch c {
	case InMemory:
		return "in-memory"
	case Network:
		return "network"
	case File:
		return "file"
	default:
		return fmt.Sprintf("ChannelType(%d)", int(c))
	}
}

// CompressionMode selects how an edge compresses its traffic.
type CompressionMode int

// Compression modes.
const (
	CompressionOff      CompressionMode = iota // no compression module
	CompressionStatic                          // fixed level (paper's NO..HEAVY rows)
	CompressionAdaptive                        // rate-based decision model (DYNAMIC)
)

// Distribution selects how an edge routes records from each producer
// subtask to the consumer subtasks.
type Distribution int

// Distribution patterns.
const (
	// RoundRobin cycles over the consumers (Nephele's default bipartite
	// wiring). This is the zero value.
	RoundRobin Distribution = iota
	// Broadcast sends every record to every consumer subtask.
	Broadcast
	// HashPartition routes each record by a hash of its key, so equal
	// keys always reach the same consumer subtask (the precondition for
	// per-key aggregation).
	HashPartition
)

// String returns a readable distribution name.
func (d Distribution) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case Broadcast:
		return "broadcast"
	case HashPartition:
		return "hash-partition"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ChannelSpec configures an edge.
type ChannelSpec struct {
	Type        ChannelType
	Compression CompressionMode
	// StaticLevel is the pinned ladder level for CompressionStatic.
	StaticLevel int
	// Window and Alpha tune the adaptive decision model; zero values mean
	// the paper's t=2 s and α=0.2.
	Window time.Duration
	Alpha  float64
	// BlockSize overrides the 128 KB default block size.
	BlockSize int
	// Distribution routes records across consumer subtasks; the zero
	// value is RoundRobin.
	Distribution Distribution
	// Key extracts the partitioning key for HashPartition; nil hashes the
	// whole record.
	Key func(rec []byte) []byte
	// WireMBps, when positive, rate-limits each link's transport to the
	// given wire bandwidth (MB/s). It emulates the constrained, shared
	// NIC of a cloud VM so that the paper's network-channel experiments
	// run end to end inside the real engine with real bytes.
	WireMBps float64
}

func (s ChannelSpec) validate() error {
	switch s.Type {
	case InMemory:
		if s.Compression != CompressionOff {
			// The paper integrated compression into file and network
			// channels only; in-memory channels never leave RAM.
			return errors.New("nephele: in-memory channels do not support compression")
		}
	case Network, File:
	default:
		return fmt.Errorf("nephele: unknown channel type %d", int(s.Type))
	}
	switch s.Compression {
	case CompressionOff, CompressionStatic, CompressionAdaptive:
	default:
		return fmt.Errorf("nephele: unknown compression mode %d", int(s.Compression))
	}
	switch s.Distribution {
	case RoundRobin, Broadcast, HashPartition:
	default:
		return fmt.Errorf("nephele: unknown distribution %d", int(s.Distribution))
	}
	if s.Key != nil && s.Distribution != HashPartition {
		return errors.New("nephele: Key is only meaningful with HashPartition")
	}
	if s.BlockSize < 0 {
		return errors.New("nephele: negative block size")
	}
	if s.WireMBps < 0 {
		return errors.New("nephele: negative wire rate")
	}
	return nil
}

// Vertex is one node of the job graph.
type Vertex struct {
	name        string
	factory     TaskFactory
	parallelism int
	id          int
	graph       *JobGraph

	inputs  []*Edge
	outputs []*Edge
}

// Name returns the vertex name.
func (v *Vertex) Name() string { return v.name }

// Parallelism returns the number of parallel subtasks.
func (v *Vertex) Parallelism() int { return v.parallelism }

// Edge is one directed connection of the job graph.
type Edge struct {
	from, to *Vertex
	spec     ChannelSpec
	id       int
}

// Label returns "from->to" for stats keys.
func (e *Edge) Label() string { return e.from.name + "->" + e.to.name }

// Spec returns the edge's channel configuration.
func (e *Edge) Spec() ChannelSpec { return e.spec }

// JobGraph is a directed acyclic graph of tasks, Nephele's job abstraction.
type JobGraph struct {
	name     string
	vertices []*Vertex
	edges    []*Edge
}

// NewJobGraph creates an empty job graph.
func NewJobGraph(name string) *JobGraph {
	return &JobGraph{name: name}
}

// Name returns the job name.
func (g *JobGraph) Name() string { return g.name }

// AddVertex adds a task vertex with the given parallelism.
func (g *JobGraph) AddVertex(name string, factory TaskFactory, parallelism int) *Vertex {
	v := &Vertex{
		name:        name,
		factory:     factory,
		parallelism: parallelism,
		id:          len(g.vertices),
		graph:       g,
	}
	g.vertices = append(g.vertices, v)
	return v
}

// Connect adds a channel from one vertex to another.
func (g *JobGraph) Connect(from, to *Vertex, spec ChannelSpec) (*Edge, error) {
	if from == nil || to == nil {
		return nil, errors.New("nephele: Connect with nil vertex")
	}
	if from.graph != g || to.graph != g {
		return nil, errors.New("nephele: vertex belongs to a different graph")
	}
	if from == to {
		return nil, errors.New("nephele: self-loop")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	e := &Edge{from: from, to: to, spec: spec, id: len(g.edges)}
	g.edges = append(g.edges, e)
	from.outputs = append(from.outputs, e)
	to.inputs = append(to.inputs, e)
	return e, nil
}

// Validate checks the structural invariants required for execution: at
// least one vertex, positive parallelism, non-nil factories, and acyclicity
// (Nephele jobs are DAGs by definition).
func (g *JobGraph) Validate() error {
	if len(g.vertices) == 0 {
		return errors.New("nephele: empty job graph")
	}
	for _, v := range g.vertices {
		if v.parallelism < 1 {
			return fmt.Errorf("nephele: vertex %q has parallelism %d", v.name, v.parallelism)
		}
		if v.factory == nil {
			return fmt.Errorf("nephele: vertex %q has no task factory", v.name)
		}
	}
	// Kahn's algorithm for cycle detection.
	indeg := make(map[*Vertex]int, len(g.vertices))
	for _, v := range g.vertices {
		indeg[v] = len(v.inputs)
	}
	var queue []*Vertex
	for _, v := range g.vertices {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, e := range v.outputs {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				queue = append(queue, e.to)
			}
		}
	}
	if seen != len(g.vertices) {
		return errors.New("nephele: job graph contains a cycle")
	}
	return nil
}
