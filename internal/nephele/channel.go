package nephele

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"

	"adaptio/internal/block"
	"adaptio/internal/ratelimit"
	"adaptio/internal/stream"
)

// link is one point-to-point connection between a producer subtask and a
// consumer subtask of an edge. An edge with N producers and M consumers is
// realized as an N x M mesh of links.
type link interface {
	// openWriter returns the producer-side writer. Called once.
	openWriter() (io.WriteCloser, error)
	// openReader returns the consumer-side reader. Called once; may block
	// until data is available (file channels block until the producer
	// finished writing, mirroring Nephele's staged file channels).
	openReader() (io.Reader, error)
	// abort tears the link down when the job fails, unblocking any
	// goroutine stuck in the link's I/O.
	abort(err error)
}

// ---------- in-memory channel ----------

// memLink is a buffered in-process pipe carrying byte chunks. It bounds
// memory like Nephele's in-memory channels bound their exchange buffers.
//
// Buffer lifecycle (see internal/block): chunks travel the queue as pooled
// arena buffers. The writer acquires and fills a Buf per Write and hands
// ownership to the queue; the reader releases each Buf once its bytes are
// consumed. On abort, whichever side observes the closed link drains the
// queue and releases the stranded buffers (the post-send re-check in Write
// closes the race where a send slips in after a drain), so an aborted link
// returns its buffers to the arena too.
type memLink struct {
	ch     chan *block.Buf
	errMu  sync.Mutex
	err    error
	closed chan struct{}
	once   sync.Once
}

func newMemLink() *memLink {
	return &memLink{ch: make(chan *block.Buf, 32), closed: make(chan struct{})}
}

func (l *memLink) openWriter() (io.WriteCloser, error) { return &memWriter{l: l}, nil }

func (l *memLink) openReader() (io.Reader, error) { return &memReader{l: l}, nil }

func (l *memLink) abort(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errMu.Unlock()
	l.once.Do(func() { close(l.closed) })
	l.drain()
}

func (l *memLink) aborted() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

// drain releases every chunk currently queued. Only called once the link is
// dead (closed is closed or the writer closed the queue), when the data can
// no longer be delivered. Concurrent drains are safe: each Buf is received,
// and therefore released, exactly once.
func (l *memLink) drain() {
	for {
		select {
		case b, ok := <-l.ch:
			if !ok {
				return
			}
			b.Release()
		default:
			return
		}
	}
}

type memWriter struct {
	l    *memLink
	once sync.Once
}

func (w *memWriter) Write(p []byte) (int, error) {
	buf := block.GetLen(len(p))
	copy(buf.B, p)
	select {
	case w.l.ch <- buf:
		// Re-check after the send: if the link was aborted concurrently,
		// the aborter's drain may already have run, so reclaim the queue
		// ourselves and report the failure.
		select {
		case <-w.l.closed:
			w.l.drain()
			return 0, w.closedErr()
		default:
		}
		return len(p), nil
	case <-w.l.closed:
		buf.Release()
		return 0, w.closedErr()
	}
}

func (w *memWriter) closedErr() error {
	if err := w.l.aborted(); err != nil {
		return err
	}
	return errors.New("nephele: write on closed in-memory channel")
}

func (w *memWriter) Close() error {
	w.once.Do(func() { close(w.l.ch) })
	return nil
}

type memReader struct {
	l        *memLink
	cur      []byte
	curArena *block.Buf
}

func (r *memReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		r.releaseCur()
		select {
		case buf, ok := <-r.l.ch:
			if !ok {
				if err := r.l.aborted(); err != nil {
					return 0, err
				}
				return 0, io.EOF
			}
			r.curArena = buf
			r.cur = buf.B
		case <-r.l.closed:
			r.l.drain()
			if err := r.l.aborted(); err != nil {
				return 0, err
			}
			return 0, io.EOF
		}
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	if len(r.cur) == 0 {
		r.releaseCur()
	}
	return n, nil
}

func (r *memReader) releaseCur() {
	if r.curArena != nil {
		r.curArena.Release()
		r.curArena = nil
	}
	r.cur = nil
}

// ---------- network channel ----------

// netLink is a real TCP connection over the loopback interface: the
// consumer side listens, the producer dials. Running actual TCP keeps the
// flow-control behaviour the paper's decision model depends on.
type netLink struct {
	listener net.Listener

	mu       sync.Mutex
	conns    []net.Conn
	aborted  bool
	abortErr error
}

func newNetLink() (*netLink, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("nephele: network channel listen: %w", err)
	}
	return &netLink{listener: ln}, nil
}

func (l *netLink) openWriter() (io.WriteCloser, error) {
	conn, err := net.Dial("tcp", l.listener.Addr().String())
	if err != nil {
		return nil, fmt.Errorf("nephele: network channel dial: %w", err)
	}
	l.track(conn)
	return conn.(*net.TCPConn), nil
}

func (l *netLink) openReader() (io.Reader, error) {
	conn, err := l.listener.Accept()
	if err != nil {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.aborted {
			return nil, l.abortErr
		}
		return nil, fmt.Errorf("nephele: network channel accept: %w", err)
	}
	l.track(conn)
	return conn, nil
}

func (l *netLink) track(c net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.aborted {
		c.Close()
		return
	}
	l.conns = append(l.conns, c)
}

func (l *netLink) abort(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.aborted {
		return
	}
	l.aborted = true
	l.abortErr = err
	l.listener.Close()
	for _, c := range l.conns {
		c.Close()
	}
}

// ---------- file channel ----------

// fileLink stages data through a temporary file: the producer writes the
// complete file, then the consumer reads it. This serializes the two
// vertices, which is exactly how Nephele's file channels decouple producer
// and consumer in time.
type fileLink struct {
	path  string
	ready chan struct{} // closed when the producer is done
	once  sync.Once

	mu       sync.Mutex
	abortErr error
}

func newFileLink(dir, label string) (*fileLink, error) {
	f, err := os.CreateTemp(dir, "nephele-"+label+"-*.chan")
	if err != nil {
		return nil, fmt.Errorf("nephele: file channel: %w", err)
	}
	path := f.Name()
	f.Close()
	return &fileLink{path: path, ready: make(chan struct{})}, nil
}

func (l *fileLink) openWriter() (io.WriteCloser, error) {
	f, err := os.OpenFile(l.path, os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, err
	}
	return &fileWriter{f: f, l: l}, nil
}

type fileWriter struct {
	f *os.File
	l *fileLink
}

func (w *fileWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *fileWriter) Close() error {
	err := w.f.Close()
	w.l.once.Do(func() { close(w.l.ready) })
	return err
}

func (l *fileLink) openReader() (io.Reader, error) {
	<-l.ready
	l.mu.Lock()
	abortErr := l.abortErr
	l.mu.Unlock()
	if abortErr != nil {
		return nil, abortErr
	}
	f, err := os.Open(l.path)
	if err != nil {
		return nil, err
	}
	return &selfClosingFile{f: f}, nil
}

func (l *fileLink) abort(err error) {
	l.mu.Lock()
	if l.abortErr == nil {
		l.abortErr = err
	}
	l.mu.Unlock()
	l.once.Do(func() { close(l.ready) })
}

// cleanup removes the staging file.
func (l *fileLink) cleanup() { os.Remove(l.path) }

// selfClosingFile closes the underlying file when EOF is reached.
type selfClosingFile struct {
	f      *os.File
	closed bool
}

func (s *selfClosingFile) Read(p []byte) (int, error) {
	if s.closed {
		return 0, io.EOF
	}
	n, err := s.f.Read(p)
	if err == io.EOF {
		s.f.Close()
		s.closed = true
	}
	return n, err
}

// ---------- compression wrapping ----------

// wrapWriter layers bandwidth shaping and the adaptive compression stream
// onto a link's writer according to the edge spec. It returns the wrapped
// writer, a flush-close function, and an accessor for the compression stats
// (nil when compression is off).
func wrapWriter(w io.WriteCloser, spec ChannelSpec) (io.Writer, func() error, func() *stream.Stats, error) {
	if spec.WireMBps > 0 {
		limited, err := ratelimit.NewWriter(w, spec.WireMBps*1e6, 0)
		if err != nil {
			return nil, nil, nil, err
		}
		w = &writeCloserPair{limited, w}
	}
	if spec.Compression == CompressionOff {
		return w, w.Close, func() *stream.Stats { return nil }, nil
	}
	cfg := stream.WriterConfig{
		Window:    spec.Window,
		Alpha:     spec.Alpha,
		BlockSize: spec.BlockSize,
	}
	if spec.Compression == CompressionStatic {
		cfg.Static = true
		cfg.StaticLevel = spec.StaticLevel
	}
	sw, err := stream.NewWriter(w, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	closeAll := func() error {
		if err := sw.Close(); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	}
	statsFn := func() *stream.Stats {
		s := sw.Stats()
		return &s
	}
	return sw, closeAll, statsFn, nil
}

func wrapReader(r io.Reader, spec ChannelSpec) (io.Reader, error) {
	if spec.Compression == CompressionOff {
		return r, nil
	}
	return stream.NewReader(r)
}
