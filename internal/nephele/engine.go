package nephele

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"adaptio/internal/obs"
	"adaptio/internal/stream"
)

// TaskContext gives a running subtask access to its input and output gates
// and its position in the parallel plan.
type TaskContext struct {
	Job         string
	Vertex      string
	Subtask     int
	Parallelism int

	ctx     context.Context
	inputs  []*InputGate
	outputs []*OutputGate
}

// Context returns the job's cancellation context.
func (c *TaskContext) Context() context.Context { return c.ctx }

// NumInputs returns the number of input gates (one per incoming edge).
func (c *TaskContext) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the number of output gates (one per outgoing edge).
func (c *TaskContext) NumOutputs() int { return len(c.outputs) }

// Input returns the i-th input gate.
func (c *TaskContext) Input(i int) *InputGate { return c.inputs[i] }

// Output returns the i-th output gate.
func (c *TaskContext) Output(i int) *OutputGate { return c.outputs[i] }

// InputGate merges the record streams of all producer subtasks of one edge.
type InputGate struct {
	openFns []func() (io.Reader, error)
	start   sync.Once
	recs    chan inRec

	// stop releases producer goroutines blocked on a full recs channel when
	// the consuming subtask abandons the gate before EOF (task error).
	stop     chan struct{}
	stopOnce sync.Once
}

// abandon releases the gate's producer goroutines without draining. Safe to
// call multiple times and concurrently with ReadRecord.
func (g *InputGate) abandon() {
	g.stopOnce.Do(func() { close(g.stop) })
}

type inRec struct {
	rec []byte
	err error
}

// ReadRecord returns the next record from any producer. It returns io.EOF
// once every producer stream has ended. The returned slice is owned by the
// caller (it is not reused).
func (g *InputGate) ReadRecord() ([]byte, error) {
	g.start.Do(func() {
		ch := make(chan inRec, 64)
		g.recs = ch
		var wg sync.WaitGroup
		for _, open := range g.openFns {
			wg.Add(1)
			go func(open func() (io.Reader, error)) {
				defer wg.Done()
				send := func(r inRec) bool {
					select {
					case ch <- r:
						return true
					case <-g.stop:
						return false
					}
				}
				r, err := open()
				if err != nil {
					send(inRec{err: err})
					return
				}
				rr := NewRecordReader(r)
				defer rr.Close() // recycle the record buffer if we bail before EOF
				if sr, ok := r.(*stream.Reader); ok {
					defer sr.Close() // likewise the decompressor's block buffers
				}
				for {
					rec, err := rr.ReadRecord()
					if err == io.EOF {
						return
					}
					if err != nil {
						send(inRec{err: err})
						return
					}
					if !send(inRec{rec: append([]byte(nil), rec...)}) {
						return
					}
				}
			}(open)
		}
		go func() {
			wg.Wait()
			close(ch)
		}()
	})
	r, ok := <-g.recs
	if !ok {
		return nil, io.EOF
	}
	return r.rec, r.err
}

// OutputGate distributes records over all consumer subtasks of one edge
// according to the edge's Distribution pattern.
type OutputGate struct {
	writers []*RecordWriter
	next    int
	dist    Distribution
	key     func([]byte) []byte
	closers []func() error
	wires   []*countingWriter
	stats   []func() levelStats
}

// WriteRecord emits one record according to the edge's distribution:
// round-robin to the next consumer, broadcast to all, or hash-partitioned
// by key.
func (g *OutputGate) WriteRecord(p []byte) error {
	switch g.dist {
	case Broadcast:
		for _, w := range g.writers {
			if err := w.WriteRecord(p); err != nil {
				return err
			}
		}
		return nil
	case HashPartition:
		key := p
		if g.key != nil {
			key = g.key(p)
		}
		return g.writers[fnv1a(key)%uint64(len(g.writers))].WriteRecord(p)
	default: // RoundRobin
		w := g.writers[g.next]
		g.next = (g.next + 1) % len(g.writers)
		return w.WriteRecord(p)
	}
}

// fnv1a is the 64-bit FNV-1a hash, inlined to keep record routing
// allocation-free.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func (g *OutputGate) close() error {
	var first error
	for _, c := range g.closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

type levelStats struct{ switches int64 }

// countingWriter counts transport-level (wire) bytes.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// EdgeStats aggregates what flowed over one edge.
type EdgeStats struct {
	// Records and AppBytes count the record payloads (pre-compression).
	Records  int64
	AppBytes int64
	// WireBytes counts bytes on the transport (post-compression; equals
	// payload plus framing when compression is off).
	WireBytes int64
	// LevelSwitches counts adaptive compression level changes.
	LevelSwitches int64
}

// VertexStats aggregates one vertex's execution.
type VertexStats struct {
	// Subtasks is the vertex's parallelism.
	Subtasks int
	// Busiest and Total are the longest single subtask runtime and the
	// summed runtime across subtasks (Total/Subtasks = mean).
	Busiest time.Duration
	Total   time.Duration
}

// JobStats summarizes an executed job. Edges and Vertices are derived from
// the per-job obs registry (Metrics) when Execute returns; the registry
// itself stays available for JSON export or further inspection.
type JobStats struct {
	Duration time.Duration
	Edges    map[string]EdgeStats
	Vertices map[string]VertexStats

	// Metrics is the per-job observability registry every counter above is
	// read from: "nephele.edge.<label>.*" per channel,
	// "nephele.vertex.<name>.*" per vertex, and the "nephele.tasks" event
	// log of task state transitions.
	Metrics *obs.Registry
}

// edgeRuntime is the executable form of one edge.
type edgeRuntime struct {
	edge  *Edge
	links [][]link // [producer][consumer]

	// Per-edge obs counters; add is lock-free, so concurrent subtasks
	// account for their share without a shared mutex.
	records       *obs.Counter
	appBytes      *obs.Counter
	wireBytes     *obs.Counter
	levelSwitches *obs.Counter

	fileLinks []*fileLink
}

// bindObs resolves the edge's counters under scope ("nephele.edge.<label>").
func (rt *edgeRuntime) bindObs(scope *obs.Scope) {
	es := scope.Scope(rt.edge.Label())
	rt.records = es.Counter("records")
	rt.appBytes = es.Counter("app_bytes")
	rt.wireBytes = es.Counter("wire_bytes")
	rt.levelSwitches = es.Counter("level_switches")
}

func (rt *edgeRuntime) add(s EdgeStats) {
	rt.records.Add(s.Records)
	rt.appBytes.Add(s.AppBytes)
	rt.wireBytes.Add(s.WireBytes)
	rt.levelSwitches.Add(s.LevelSwitches)
}

// snapshot reads the edge's obs counters back into the stats struct.
func (rt *edgeRuntime) snapshot() EdgeStats {
	return EdgeStats{
		Records:       rt.records.Value(),
		AppBytes:      rt.appBytes.Value(),
		WireBytes:     rt.wireBytes.Value(),
		LevelSwitches: rt.levelSwitches.Value(),
	}
}

// vertexObs aggregates one vertex's runtime accounting through atomic obs
// instruments ("nephele.vertex.<name>.*"), replacing the former mutex-guarded
// map: Total accumulates via Counter.Add, Busiest via Gauge.SetMax.
type vertexObs struct {
	subtasks  *obs.Gauge
	busiestNS *obs.Gauge
	totalNS   *obs.Counter
}

func (vo *vertexObs) snapshot() VertexStats {
	return VertexStats{
		Subtasks: int(vo.subtasks.Value()),
		Busiest:  time.Duration(vo.busiestNS.Value()),
		Total:    time.Duration(vo.totalNS.Value()),
	}
}

// Engine executes job graphs.
type Engine struct {
	// TempDir hosts file-channel staging files; empty means os.TempDir().
	TempDir string
}

// Execute runs the job to completion. It returns the first task or channel
// error; on error all channels are torn down and every subtask unblocked.
func (e *Engine) Execute(ctx context.Context, g *JobGraph) (*JobStats, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()

	// Per-job registry: every statistic the engine reports is read back from
	// it, so JobStats is a view over obs rather than a parallel bookkeeping
	// scheme. A fresh registry per Execute keeps concurrent jobs independent.
	reg := obs.NewRegistry()
	job := reg.Scope("nephele")
	edgeScope := job.Scope("edge")
	tasks := job.EventLog("tasks", 0)

	runtimes := make(map[*Edge]*edgeRuntime, len(g.edges))
	var allLinks []link
	for _, edge := range g.edges {
		rt := &edgeRuntime{edge: edge}
		rt.bindObs(edgeScope)
		np, nc := edge.from.parallelism, edge.to.parallelism
		rt.links = make([][]link, np)
		for pi := 0; pi < np; pi++ {
			rt.links[pi] = make([]link, nc)
			for ci := 0; ci < nc; ci++ {
				l, err := e.newLink(edge, rt, pi, ci)
				if err != nil {
					abortAll(allLinks, err)
					return nil, err
				}
				rt.links[pi][ci] = l
				allLinks = append(allLinks, l)
			}
		}
		runtimes[edge] = rt
	}
	defer func() {
		for _, rt := range runtimes {
			for _, fl := range rt.fileLinks {
				fl.cleanup()
			}
		}
	}()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	vobs := make(map[string]*vertexObs, len(g.vertices))
	for _, v := range g.vertices {
		vs := job.Scope("vertex").Scope(v.name)
		vo := &vertexObs{
			subtasks:  vs.Gauge("subtasks"),
			busiestNS: vs.Gauge("busiest_ns"),
			totalNS:   vs.Counter("total_ns"),
		}
		vo.subtasks.Set(int64(v.parallelism))
		vobs[v.name] = vo
	}
	fail := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
		abortAll(allLinks, err)
	}

	// Propagate external cancellation into the channel mesh.
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-stopWatch:
		}
	}()

	for _, v := range g.vertices {
		for sub := 0; sub < v.parallelism; sub++ {
			wg.Add(1)
			go func(v *Vertex, sub int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						tasks.Add("task_failed", fmt.Sprintf("%s[%d]: panic: %v", v.name, sub, r))
						fail(fmt.Errorf("nephele: task %s[%d] panicked: %v", v.name, sub, r))
					}
				}()
				tasks.Add("task_start", fmt.Sprintf("%s[%d]", v.name, sub))
				subStart := time.Now()
				err := runSubtask(runCtx, g, v, sub, runtimes)
				elapsed := time.Since(subStart)
				vo := vobs[v.name]
				vo.totalNS.Add(int64(elapsed))
				vo.busiestNS.SetMax(int64(elapsed))
				if err != nil {
					tasks.Add("task_failed", fmt.Sprintf("%s[%d]: %v", v.name, sub, err))
					fail(fmt.Errorf("nephele: task %s[%d]: %w", v.name, sub, err))
				} else {
					tasks.Add("task_done", fmt.Sprintf("%s[%d]", v.name, sub))
				}
			}(v, sub)
		}
	}
	wg.Wait()
	close(stopWatch)

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}

	stats := &JobStats{
		Duration: time.Since(start),
		Edges:    map[string]EdgeStats{},
		Vertices: map[string]VertexStats{},
		Metrics:  reg,
	}
	for _, rt := range runtimes {
		stats.Edges[rt.edge.Label()] = rt.snapshot()
	}
	for name, vo := range vobs {
		stats.Vertices[name] = vo.snapshot()
	}
	return stats, nil
}

func (e *Engine) newLink(edge *Edge, rt *edgeRuntime, pi, ci int) (link, error) {
	switch edge.spec.Type {
	case InMemory:
		return newMemLink(), nil
	case Network:
		return newNetLink()
	case File:
		fl, err := newFileLink(e.TempDir, fmt.Sprintf("%s-%d-%d", edge.from.name, pi, ci))
		if err != nil {
			return nil, err
		}
		rt.fileLinks = append(rt.fileLinks, fl)
		return fl, nil
	default:
		return nil, fmt.Errorf("nephele: unknown channel type %v", edge.spec.Type)
	}
}

// runSubtask wires one subtask's gates, runs its task, then flushes and
// closes the output side and accounts edge statistics.
func runSubtask(ctx context.Context, g *JobGraph, v *Vertex, sub int, runtimes map[*Edge]*edgeRuntime) error {
	tc := &TaskContext{
		Job:         g.name,
		Vertex:      v.name,
		Subtask:     sub,
		Parallelism: v.parallelism,
		ctx:         ctx,
	}

	// Input gates: one per incoming edge; readers open lazily inside the
	// gate goroutines so blocking transports (file staging, TCP accept)
	// do not stall task startup.
	for _, edge := range v.inputs {
		rt := runtimes[edge]
		spec := edge.spec
		gate := &InputGate{stop: make(chan struct{})}
		for pi := 0; pi < edge.from.parallelism; pi++ {
			l := rt.links[pi][sub]
			gate.openFns = append(gate.openFns, func() (io.Reader, error) {
				r, err := l.openReader()
				if err != nil {
					return nil, err
				}
				return wrapReader(r, spec)
			})
		}
		tc.inputs = append(tc.inputs, gate)
	}
	// Whatever way the subtask exits, no producer goroutine may stay blocked
	// on an abandoned gate (the task-error path skips the drain below).
	defer func() {
		for _, gate := range tc.inputs {
			gate.abandon()
		}
	}()

	// Output gates: open writers eagerly (TCP dials succeed against the
	// listener backlog even before the consumer accepts).
	type outAccounting struct {
		rt    *edgeRuntime
		gate  *OutputGate
		wires []*countingWriter
		stats []func() levelStats
	}
	var accounting []outAccounting
	for _, edge := range v.outputs {
		rt := runtimes[edge]
		gate := &OutputGate{dist: edge.spec.Distribution, key: edge.spec.Key}
		acct := outAccounting{rt: rt, gate: gate}
		for ci := 0; ci < edge.to.parallelism; ci++ {
			wc, err := rt.links[sub][ci].openWriter()
			if err != nil {
				return err
			}
			counter := &countingWriter{w: wc}
			wrapped, closeFn, statsFn, err := wrapWriter(&writeCloserPair{counter, wc}, edge.spec)
			if err != nil {
				wc.Close()
				return err
			}
			gate.writers = append(gate.writers, NewRecordWriter(wrapped))
			gate.closers = append(gate.closers, closeFn)
			acct.wires = append(acct.wires, counter)
			sf := statsFn
			acct.stats = append(acct.stats, func() levelStats {
				if s := sf(); s != nil {
					return levelStats{switches: s.LevelSwitches}
				}
				return levelStats{}
			})
		}
		accounting = append(accounting, acct)
		tc.outputs = append(tc.outputs, gate)
	}

	task := v.factory()
	runErr := task.Run(tc)

	if runErr == nil {
		// Drain any unread input so producers blocked on full transport
		// buffers can complete: a Nephele channel is always consumed to
		// its end even if the task logic stopped early.
		for _, gate := range tc.inputs {
			for {
				if _, err := gate.ReadRecord(); err != nil {
					break
				}
			}
		}
	}

	// Flush and close outputs even on error so consumers unblock; the
	// engine's abort path handles hard failures.
	for _, acct := range accounting {
		if err := acct.gate.close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return runErr
	}

	for _, acct := range accounting {
		var s EdgeStats
		for _, w := range acct.gate.writers {
			recs, bytes := w.Counters()
			s.Records += recs
			s.AppBytes += bytes
		}
		for _, c := range acct.wires {
			s.WireBytes += c.n
		}
		for _, fn := range acct.stats {
			s.LevelSwitches += fn().switches
		}
		acct.rt.add(s)
	}
	return nil
}

// writeCloserPair writes through w and closes c.
type writeCloserPair struct {
	w io.Writer
	c io.Closer
}

func (p *writeCloserPair) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *writeCloserPair) Close() error                { return p.c.Close() }

func abortAll(links []link, err error) {
	for _, l := range links {
		l.abort(err)
	}
}
