package nephele

import (
	"fmt"
	"io"
)

// SourceFunc adapts a generator function into a TaskFactory. The function
// receives an emit callback writing to output gate 0 and runs once per
// subtask.
func SourceFunc(fn func(ctx *TaskContext, emit func([]byte) error) error) TaskFactory {
	return func() Task { return sourceTask{fn} }
}

type sourceTask struct {
	fn func(*TaskContext, func([]byte) error) error
}

func (t sourceTask) Run(ctx *TaskContext) error {
	if ctx.NumOutputs() == 0 {
		return fmt.Errorf("nephele: source task %s has no output", ctx.Vertex)
	}
	emit := func(rec []byte) error { return ctx.Output(0).WriteRecord(rec) }
	return t.fn(ctx, emit)
}

// MapFunc adapts a per-record transformation into a TaskFactory: every
// input record (from all input gates, merged) is passed to fn, which may
// emit any number of output records to gate 0.
func MapFunc(fn func(rec []byte, emit func([]byte) error) error) TaskFactory {
	return func() Task { return mapTask{fn} }
}

type mapTask struct {
	fn func([]byte, func([]byte) error) error
}

func (t mapTask) Run(ctx *TaskContext) error {
	if ctx.NumInputs() == 0 || ctx.NumOutputs() == 0 {
		return fmt.Errorf("nephele: map task %s needs input and output", ctx.Vertex)
	}
	emit := func(rec []byte) error { return ctx.Output(0).WriteRecord(rec) }
	for in := 0; in < ctx.NumInputs(); in++ {
		gate := ctx.Input(in)
		for {
			rec, err := gate.ReadRecord()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := t.fn(rec, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// SinkFunc adapts a consumer function into a TaskFactory: it is called once
// per input record.
func SinkFunc(fn func(rec []byte) error) TaskFactory {
	return func() Task { return sinkTask{fn} }
}

type sinkTask struct {
	fn func([]byte) error
}

func (t sinkTask) Run(ctx *TaskContext) error {
	if ctx.NumInputs() == 0 {
		return fmt.Errorf("nephele: sink task %s has no input", ctx.Vertex)
	}
	for in := 0; in < ctx.NumInputs(); in++ {
		gate := ctx.Input(in)
		for {
			rec, err := gate.ReadRecord()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := t.fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
