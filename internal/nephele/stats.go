package nephele

import (
	"fmt"
	"sort"
	"strings"
)

// Render formats the job statistics as a human-readable report: one row per
// edge with volume and compression accounting, one row per vertex with
// runtime, matching what a Nephele job manager would log after execution.
func (s *JobStats) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "job finished in %v\n", s.Duration.Round(1e6))

	edgeLabels := make([]string, 0, len(s.Edges))
	for label := range s.Edges {
		edgeLabels = append(edgeLabels, label)
	}
	sort.Strings(edgeLabels)
	if len(edgeLabels) > 0 {
		fmt.Fprintf(&sb, "%-28s %10s %12s %12s %7s %8s\n",
			"channel", "records", "app bytes", "wire bytes", "ratio", "switches")
		for _, label := range edgeLabels {
			es := s.Edges[label]
			ratio := 1.0
			if es.AppBytes > 0 {
				ratio = float64(es.WireBytes) / float64(es.AppBytes)
			}
			fmt.Fprintf(&sb, "%-28s %10d %12d %12d %7.3f %8d\n",
				label, es.Records, es.AppBytes, es.WireBytes, ratio, es.LevelSwitches)
		}
	}

	vertexNames := make([]string, 0, len(s.Vertices))
	for name := range s.Vertices {
		vertexNames = append(vertexNames, name)
	}
	sort.Strings(vertexNames)
	if len(vertexNames) > 0 {
		fmt.Fprintf(&sb, "%-28s %9s %12s %12s\n", "vertex", "subtasks", "busiest", "total cpu")
		for _, name := range vertexNames {
			vs := s.Vertices[name]
			fmt.Fprintf(&sb, "%-28s %9d %12v %12v\n",
				name, vs.Subtasks, vs.Busiest.Round(1e6), vs.Total.Round(1e6))
		}
	}
	return sb.String()
}
