package nephele

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the job graph in Graphviz DOT format: vertices annotated with
// their parallelism, edges with channel type, distribution and compression
// mode. Pipe the output through `dot -Tsvg` to visualize an execution plan.
func (g *JobGraph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.name)
	sb.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	for _, v := range g.vertices {
		fmt.Fprintf(&sb, "  %q [label=\"%s\\nx%d\"];\n", v.name, v.name, v.parallelism)
	}
	// Deterministic edge order for stable output.
	edges := append([]*Edge(nil), g.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].id < edges[j].id })
	for _, e := range edges {
		label := e.spec.Type.String()
		if e.spec.Distribution != RoundRobin {
			label += "\\n" + e.spec.Distribution.String()
		}
		switch e.spec.Compression {
		case CompressionStatic:
			label += fmt.Sprintf("\\nstatic L%d", e.spec.StaticLevel)
		case CompressionAdaptive:
			label += "\\nadaptive"
		}
		style := "solid"
		if e.spec.Type == File {
			style = "dashed"
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%s\", style=%s];\n", e.from.name, e.to.name, label, style)
	}
	sb.WriteString("}\n")
	return sb.String()
}
