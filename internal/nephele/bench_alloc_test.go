package nephele

import (
	"io"
	"testing"

	"adaptio/internal/corpus"
)

// BenchmarkAllocNetChannelChurn measures the per-channel cost of a Nephele
// network channel: open a TCP link, layer the compression stream and record
// framing on it, push 16 x 64 KB records through, tear it down. This is the
// channel-setup-plus-data-plane path every subtask pair pays in an N x M
// link mesh. Baseline in BENCH_alloc.json; run via make bench-alloc.
func BenchmarkAllocNetChannelChurn(b *testing.B) {
	rec := corpus.Generate(corpus.Moderate, 64<<10, 3)
	const records = 16
	spec := ChannelSpec{Type: Network, Compression: CompressionStatic, StaticLevel: 1}
	b.SetBytes(int64(records * len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := newNetLink()
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			r, err := l.openReader()
			if err != nil {
				done <- err
				return
			}
			wr, err := wrapReader(r, spec)
			if err != nil {
				done <- err
				return
			}
			rr := NewRecordReader(wr)
			for {
				_, err := rr.ReadRecord()
				if err == io.EOF {
					done <- nil
					return
				}
				if err != nil {
					done <- err
					return
				}
			}
		}()
		wc, err := l.openWriter()
		if err != nil {
			b.Fatal(err)
		}
		w, closeFn, _, err := wrapWriter(wc, spec)
		if err != nil {
			b.Fatal(err)
		}
		rw := NewRecordWriter(w)
		for j := 0; j < records; j++ {
			if err := rw.WriteRecord(rec); err != nil {
				b.Fatal(err)
			}
		}
		if err := closeFn(); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		l.abort(io.EOF) // close listener and conns
	}
}
