package nephele_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/corpus"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/nephele"
)

// ---------- record framing ----------

func TestRecordRoundTrip(t *testing.T) {
	blocktest.Track(t) // the EOF return must recycle the record buffer
	var buf bytes.Buffer
	w := nephele.NewRecordWriter(&buf)
	records := [][]byte{
		[]byte("first"),
		{},
		[]byte("third record with more payload"),
		bytes.Repeat([]byte{0xAB}, 100000),
	}
	for _, r := range records {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	var wantBytes int64
	for _, r := range records {
		wantBytes += int64(len(r))
	}
	recs, bytesW := w.Counters()
	if recs != int64(len(records)) {
		t.Fatalf("records counter = %d", recs)
	}
	if bytesW != wantBytes {
		t.Fatalf("bytes counter = %d, want %d", bytesW, wantBytes)
	}
	r := nephele.NewRecordReader(&buf)
	for i, want := range records {
		got, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch (%d vs %d bytes)", i, len(got), len(want))
		}
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r.Records() != int64(len(records)) {
		t.Fatalf("reader counter = %d", r.Records())
	}
}

func TestRecordTooLarge(t *testing.T) {
	w := nephele.NewRecordWriter(io.Discard)
	if err := w.WriteRecord(make([]byte, nephele.MaxRecordSize+1)); !errors.Is(err, nephele.ErrRecordTooLarge) {
		t.Fatalf("oversized record: %v", err)
	}
}

func TestRecordTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := nephele.NewRecordWriter(&buf)
	if err := w.WriteRecord([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{1, len(data) - 3} {
		r := nephele.NewRecordReader(bytes.NewReader(data[:cut]))
		if _, err := r.ReadRecord(); err == nil || err == io.EOF {
			t.Fatalf("truncation at %d undetected: %v", cut, err)
		}
	}
}

func TestRecordCorruptLength(t *testing.T) {
	// A huge uvarint length must be rejected, not allocated.
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	r := nephele.NewRecordReader(bytes.NewReader(data))
	if _, err := r.ReadRecord(); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

// ---------- graph construction ----------

func nopSource() nephele.TaskFactory {
	return nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		return nil
	})
}

func nopSink() nephele.TaskFactory {
	return nephele.SinkFunc(func([]byte) error { return nil })
}

func TestGraphValidation(t *testing.T) {
	g := nephele.NewJobGraph("test")
	if err := g.Validate(); err == nil {
		t.Error("empty graph accepted")
	}
	a := g.AddVertex("a", nopSource(), 1)
	b := g.AddVertex("b", nopSink(), 1)
	if _, err := g.Connect(a, a, nephele.ChannelSpec{Type: nephele.Network}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := g.Connect(nil, b, nephele.ChannelSpec{}); err == nil {
		t.Error("nil vertex accepted")
	}
	other := nephele.NewJobGraph("other")
	c := other.AddVertex("c", nopSink(), 1)
	if _, err := g.Connect(a, c, nephele.ChannelSpec{Type: nephele.Network}); err == nil {
		t.Error("cross-graph edge accepted")
	}
	if _, err := g.Connect(a, b, nephele.ChannelSpec{Type: nephele.InMemory, Compression: nephele.CompressionAdaptive}); err == nil {
		t.Error("compressed in-memory channel accepted")
	}
	if _, err := g.Connect(a, b, nephele.ChannelSpec{Type: nephele.ChannelType(9)}); err == nil {
		t.Error("unknown channel type accepted")
	}
	if _, err := g.Connect(a, b, nephele.ChannelSpec{Type: nephele.Network}); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestGraphCycleDetection(t *testing.T) {
	g := nephele.NewJobGraph("cyclic")
	a := g.AddVertex("a", nopSink(), 1)
	b := g.AddVertex("b", nopSink(), 1)
	c := g.AddVertex("c", nopSink(), 1)
	must := func(_ *nephele.Edge, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(a, b, nephele.ChannelSpec{Type: nephele.InMemory}))
	must(g.Connect(b, c, nephele.ChannelSpec{Type: nephele.InMemory}))
	must(g.Connect(c, a, nephele.ChannelSpec{Type: nephele.InMemory}))
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle undetected: %v", err)
	}
}

func TestGraphZeroParallelism(t *testing.T) {
	g := nephele.NewJobGraph("bad")
	g.AddVertex("a", nopSource(), 0)
	if err := g.Validate(); err == nil {
		t.Fatal("zero parallelism accepted")
	}
}

// ---------- end-to-end execution ----------

// runPipeline builds sender -> receiver over the given channel spec,
// streams the supplied records, and returns what the receiver saw plus the
// job stats.
func runPipeline(t *testing.T, spec nephele.ChannelSpec, records [][]byte) ([][]byte, *nephele.JobStats) {
	t.Helper()
	g := nephele.NewJobGraph("pipeline")
	src := g.AddVertex("sender", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for _, r := range records {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	var mu sync.Mutex
	var got [][]byte
	dst := g.AddVertex("receiver", nephele.SinkFunc(func(rec []byte) error {
		mu.Lock()
		got = append(got, append([]byte(nil), rec...))
		mu.Unlock()
		return nil
	}), 1)
	if _, err := g.Connect(src, dst, spec); err != nil {
		t.Fatal(err)
	}
	stats, err := (&nephele.Engine{TempDir: t.TempDir()}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func testRecords(n, size int) [][]byte {
	data := corpus.Generate(corpus.Moderate, n*size, 21)
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = data[i*size : (i+1)*size]
	}
	return recs
}

func TestPipelineAllChannelTypes(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t) // channel queues and record readers must recycle all buffers
	records := testRecords(200, 1000)
	for _, typ := range []nephele.ChannelType{nephele.InMemory, nephele.Network, nephele.File} {
		t.Run(typ.String(), func(t *testing.T) {
			got, stats := runPipeline(t, nephele.ChannelSpec{Type: typ}, records)
			if len(got) != len(records) {
				t.Fatalf("received %d of %d records", len(got), len(records))
			}
			for i := range got {
				if !bytes.Equal(got[i], records[i]) {
					t.Fatalf("record %d corrupted", i)
				}
			}
			es := stats.Edges["sender->receiver"]
			if es.Records != int64(len(records)) {
				t.Fatalf("stats records = %d", es.Records)
			}
			if es.AppBytes != int64(200*1000) {
				t.Fatalf("stats app bytes = %d", es.AppBytes)
			}
			if es.WireBytes < es.AppBytes {
				t.Fatalf("uncompressed wire bytes %d below app bytes %d", es.WireBytes, es.AppBytes)
			}
			for _, name := range []string{"sender", "receiver"} {
				vs, ok := stats.Vertices[name]
				if !ok || vs.Subtasks != 1 || vs.Total <= 0 || vs.Busiest > vs.Total {
					t.Fatalf("vertex stats for %s broken: %+v", name, vs)
				}
			}
		})
	}
}

func TestPipelineCompressionModes(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	records := testRecords(300, 1024)
	specs := map[string]nephele.ChannelSpec{
		"network-static-light": {Type: nephele.Network, Compression: nephele.CompressionStatic, StaticLevel: 1},
		"network-adaptive":     {Type: nephele.Network, Compression: nephele.CompressionAdaptive},
		"file-static-medium":   {Type: nephele.File, Compression: nephele.CompressionStatic, StaticLevel: 2},
		"file-adaptive":        {Type: nephele.File, Compression: nephele.CompressionAdaptive},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			got, stats := runPipeline(t, spec, records)
			if len(got) != len(records) {
				t.Fatalf("received %d of %d records", len(got), len(records))
			}
			for i := range got {
				if !bytes.Equal(got[i], records[i]) {
					t.Fatalf("record %d corrupted", i)
				}
			}
			es := stats.Edges["sender->receiver"]
			if spec.Compression == nephele.CompressionStatic && es.WireBytes >= es.AppBytes {
				t.Fatalf("compressed channel did not shrink: wire %d vs app %d", es.WireBytes, es.AppBytes)
			}
		})
	}
}

// TestTransparency is the paper's integration claim: the same task code runs
// unchanged whether compression is off, static, or adaptive.
func TestTransparency(t *testing.T) {
	leakcheck.Check(t)
	records := testRecords(100, 2048)
	var reference [][]byte
	for _, spec := range []nephele.ChannelSpec{
		{Type: nephele.Network, Compression: nephele.CompressionOff},
		{Type: nephele.Network, Compression: nephele.CompressionStatic, StaticLevel: 3},
		{Type: nephele.Network, Compression: nephele.CompressionAdaptive},
	} {
		got, _ := runPipeline(t, spec, records)
		if reference == nil {
			reference = got
			continue
		}
		if len(got) != len(reference) {
			t.Fatalf("record count differs across compression modes")
		}
		for i := range got {
			if !bytes.Equal(got[i], reference[i]) {
				t.Fatalf("record %d differs across compression modes", i)
			}
		}
	}
}

func TestFanOutFanIn(t *testing.T) {
	leakcheck.Check(t)
	// 1 source -> 4 parallel mappers -> 1 sink; records distributed
	// round-robin and merged.
	const n = 400
	g := nephele.NewJobGraph("fan")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; i < n; i++ {
			if err := emit([]byte(fmt.Sprintf("rec-%04d", i))); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	mapper := g.AddVertex("map", nephele.MapFunc(func(rec []byte, emit func([]byte) error) error {
		return emit(append([]byte("mapped-"), rec...))
	}), 4)
	var count int64
	sink := g.AddVertex("sink", nephele.SinkFunc(func(rec []byte) error {
		if !bytes.HasPrefix(rec, []byte("mapped-rec-")) {
			return fmt.Errorf("unexpected record %q", rec)
		}
		atomic.AddInt64(&count, 1)
		return nil
	}), 1)
	if _, err := g.Connect(src, mapper, nephele.ChannelSpec{Type: nephele.InMemory}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(mapper, sink, nephele.ChannelSpec{Type: nephele.Network, Compression: nephele.CompressionAdaptive}); err != nil {
		t.Fatal(err)
	}
	if _, err := (&nephele.Engine{}).Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("sink saw %d of %d records", count, n)
	}
}

func TestDiamondTopology(t *testing.T) {
	leakcheck.Check(t)
	// src -> (left, right) -> sink: two edges into one sink vertex.
	const n = 100
	g := nephele.NewJobGraph("diamond")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; i < n; i++ {
			if err := emit([]byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	double := func(rec []byte, emit func([]byte) error) error { return emit(rec) }
	left := g.AddVertex("left", nephele.MapFunc(double), 1)
	right := g.AddVertex("right", nephele.MapFunc(double), 1)
	var count int64
	sink := g.AddVertex("sink", nephele.SinkFunc(func(rec []byte) error {
		atomic.AddInt64(&count, 1)
		return nil
	}), 1)
	for _, pair := range [][2]*nephele.Vertex{{src, left}, {src, right}} {
		if _, err := g.Connect(pair[0], pair[1], nephele.ChannelSpec{Type: nephele.InMemory}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []*nephele.Vertex{left, right} {
		if _, err := g.Connect(v, sink, nephele.ChannelSpec{Type: nephele.Network}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := (&nephele.Engine{}).Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	// Source emits n records per output edge gate... each edge gets all n
	// records? No: the source writes to gate 0 only; the second edge gets
	// nothing. Expect n records via left only.
	if count != n {
		t.Fatalf("sink saw %d records, want %d", count, n)
	}
}

func TestAccessors(t *testing.T) {
	g := nephele.NewJobGraph("acc")
	v := g.AddVertex("v", nopSource(), 3)
	if v.Name() != "v" || v.Parallelism() != 3 {
		t.Fatalf("vertex accessors wrong: %q/%d", v.Name(), v.Parallelism())
	}
	s := g.AddVertex("s", nopSink(), 1)
	e, err := g.Connect(v, s, nephele.ChannelSpec{Type: nephele.Network})
	if err != nil {
		t.Fatal(err)
	}
	if e.Label() != "v->s" || e.Spec().Type != nephele.Network {
		t.Fatalf("edge accessors wrong: %q/%v", e.Label(), e.Spec().Type)
	}
	if g.Name() != "acc" {
		t.Fatalf("graph name %q", g.Name())
	}
}

func TestTaskContextContext(t *testing.T) {
	g := nephele.NewJobGraph("ctx")
	saw := make(chan bool, 1)
	g.AddVertex("probe", nephele.TaskFactory(func() nephele.Task {
		return ctxProbeTask{saw}
	}), 1)
	if _, err := (&nephele.Engine{}).Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if !<-saw {
		t.Fatal("task saw nil context")
	}
}

type ctxProbeTask struct{ saw chan bool }

func (p ctxProbeTask) Run(ctx *nephele.TaskContext) error {
	p.saw <- ctx.Context() != nil && ctx.Context().Err() == nil
	return nil
}

// TestInMemoryAbortUnblocksBlockedWriter: a producer blocked on a full
// in-memory channel must be released when a peer task fails.
func TestInMemoryAbortUnblocksBlockedWriter(t *testing.T) {
	leakcheck.Check(t)
	g := nephele.NewJobGraph("abort")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for {
			if err := emit(make([]byte, 64<<10)); err != nil {
				return err // must eventually fire when the job aborts
			}
		}
	}), 1)
	sink := g.AddVertex("sink", nephele.TaskFactory(func() nephele.Task { return failFastTask{} }), 1)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{Type: nephele.InMemory}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := (&nephele.Engine{}).Execute(context.Background(), g)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "immediate failure") {
			t.Fatalf("unexpected result: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("blocked producer never unblocked after task failure")
	}
}

type failFastTask struct{}

func (failFastTask) Run(*nephele.TaskContext) error { return errors.New("immediate failure") }

func TestStatsRender(t *testing.T) {
	records := testRecords(50, 100)
	_, stats := runPipeline(t, nephele.ChannelSpec{Type: nephele.Network, Compression: nephele.CompressionStatic, StaticLevel: 1}, records)
	out := stats.Render()
	for _, want := range []string{"job finished", "sender->receiver", "vertex", "sender", "receiver", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFileChannelFanOut(t *testing.T) {
	// File channels with parallel consumers: one staging file per link,
	// all cleaned up after execution.
	const n = 120
	g := nephele.NewJobGraph("filefan")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; i < n; i++ {
			if err := emit([]byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	var count int64
	sink := g.AddVertex("sink", nephele.SinkFunc(func([]byte) error {
		atomic.AddInt64(&count, 1)
		return nil
	}), 3)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{Type: nephele.File}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := (&nephele.Engine{TempDir: dir}).Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("sink saw %d of %d records", count, n)
	}
	// Staging files removed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d staging files left behind", len(entries))
	}
}

func TestDOTExport(t *testing.T) {
	g := nephele.NewJobGraph("viz")
	a := g.AddVertex("gen", nopSource(), 2)
	b := g.AddVertex("agg", nopSink(), 1)
	if _, err := g.Connect(a, b, nephele.ChannelSpec{
		Type:         nephele.Network,
		Compression:  nephele.CompressionAdaptive,
		Distribution: nephele.HashPartition,
		Key:          func(r []byte) []byte { return r },
	}); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{
		`digraph "viz"`, `"gen" [label="gen\nx2"]`, `"gen" -> "agg"`,
		"network", "hash-partition", "adaptive",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output.
	if g.DOT() != dot {
		t.Error("DOT output not deterministic")
	}
}

func TestDistributionValidation(t *testing.T) {
	g := nephele.NewJobGraph("dist")
	a := g.AddVertex("a", nopSource(), 1)
	b := g.AddVertex("b", nopSink(), 2)
	if _, err := g.Connect(a, b, nephele.ChannelSpec{Type: nephele.InMemory, Distribution: nephele.Distribution(9)}); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := g.Connect(a, b, nephele.ChannelSpec{Type: nephele.InMemory, Key: func(r []byte) []byte { return r }}); err == nil {
		t.Error("Key without HashPartition accepted")
	}
	if nephele.RoundRobin.String() == "" || nephele.Broadcast.String() == "" || nephele.HashPartition.String() == "" {
		t.Error("distribution names empty")
	}
}

func TestBroadcastDistribution(t *testing.T) {
	const n = 50
	const consumers = 3
	g := nephele.NewJobGraph("broadcast")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; i < n; i++ {
			if err := emit([]byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	var count int64
	sink := g.AddVertex("sink", nephele.SinkFunc(func([]byte) error {
		atomic.AddInt64(&count, 1)
		return nil
	}), consumers)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{Type: nephele.InMemory, Distribution: nephele.Broadcast}); err != nil {
		t.Fatal(err)
	}
	stats, err := (&nephele.Engine{}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if count != n*consumers {
		t.Fatalf("broadcast delivered %d records, want %d", count, n*consumers)
	}
	if es := stats.Edges["src->sink"]; es.Records != n*consumers {
		t.Fatalf("edge stats count %d, want %d", es.Records, n*consumers)
	}
}

func TestHashPartitionDistribution(t *testing.T) {
	// Records share 8 distinct keys; with hash partitioning every key's
	// records must land on exactly one consumer subtask.
	const n = 800
	const consumers = 4
	g := nephele.NewJobGraph("hashpart")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; i < n; i++ {
			rec := fmt.Sprintf("key%d:value%d", i%8, i)
			if err := emit([]byte(rec)); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	var mu sync.Mutex
	keyOwners := map[string]map[int]bool{} // key -> set of subtasks that saw it
	sink := g.AddVertex("sink", nephele.TaskFactory(func() nephele.Task {
		return keyRecorderTask{record: func(sub int, key string) {
			mu.Lock()
			defer mu.Unlock()
			if keyOwners[key] == nil {
				keyOwners[key] = map[int]bool{}
			}
			keyOwners[key][sub] = true
		}}
	}), consumers)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{
		Type:         nephele.Network,
		Distribution: nephele.HashPartition,
		Key:          func(rec []byte) []byte { return bytes.SplitN(rec, []byte(":"), 2)[0] },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := (&nephele.Engine{}).Execute(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if len(keyOwners) != 8 {
		t.Fatalf("saw %d keys, want 8", len(keyOwners))
	}
	owners := map[int]bool{}
	for key, subs := range keyOwners {
		if len(subs) != 1 {
			t.Fatalf("key %q reached %d subtasks, want exactly 1", key, len(subs))
		}
		for s := range subs {
			owners[s] = true
		}
	}
	if len(owners) < 2 {
		t.Fatalf("all keys landed on %d subtask(s); hashing not spreading", len(owners))
	}
}

type keyRecorderTask struct {
	record func(sub int, key string)
}

func (k keyRecorderTask) Run(ctx *nephele.TaskContext) error {
	for {
		rec, err := ctx.Input(0).ReadRecord()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		key := string(bytes.SplitN(rec, []byte(":"), 2)[0])
		k.record(ctx.Subtask, key)
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	leakcheck.Check(t)
	g := nephele.NewJobGraph("err")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; ; i++ {
			if err := emit(make([]byte, 1024)); err != nil {
				return err
			}
		}
	}), 1)
	sink := g.AddVertex("sink", nephele.SinkFunc(func(rec []byte) error {
		return errors.New("sink exploded")
	}), 1)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{Type: nephele.Network}); err != nil {
		t.Fatal(err)
	}
	_, err := (&nephele.Engine{}).Execute(context.Background(), g)
	if err == nil || !strings.Contains(err.Error(), "sink exploded") {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestTaskPanicRecovered(t *testing.T) {
	leakcheck.Check(t)
	g := nephele.NewJobGraph("panic")
	g.AddVertex("boom", nephele.TaskFactory(func() nephele.Task { return panicTask{} }), 1)
	_, err := (&nephele.Engine{}).Execute(context.Background(), g)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

type panicTask struct{}

func (panicTask) Run(*nephele.TaskContext) error { panic("kaboom") }

func TestContextCancellation(t *testing.T) {
	leakcheck.Check(t)
	g := nephele.NewJobGraph("cancel")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for {
			if err := emit(make([]byte, 4096)); err != nil {
				return err
			}
		}
	}), 1)
	sink := g.AddVertex("sink", nephele.SinkFunc(func(rec []byte) error {
		time.Sleep(time.Millisecond)
		return nil
	}), 1)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{Type: nephele.Network}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := (&nephele.Engine{}).Execute(ctx, g)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled job reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock the job")
	}
}

func TestConsumerStopsEarlyProducerStillCompletes(t *testing.T) {
	leakcheck.Check(t)
	// A sink that returns after a few records without error would stall
	// the producer if the engine did not drain the channel.
	g := nephele.NewJobGraph("early")
	src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; i < 5000; i++ {
			if err := emit(make([]byte, 4096)); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	sink := g.AddVertex("sink", nephele.TaskFactory(func() nephele.Task { return earlyStopTask{} }), 1)
	if _, err := g.Connect(src, sink, nephele.ChannelSpec{Type: nephele.InMemory}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := (&nephele.Engine{}).Execute(context.Background(), g)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("early-stopping consumer failed the job: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job hung with early-stopping consumer")
	}
}

type earlyStopTask struct{}

func (earlyStopTask) Run(ctx *nephele.TaskContext) error {
	for i := 0; i < 3; i++ {
		if _, err := ctx.Input(0).ReadRecord(); err != nil {
			return err
		}
	}
	return nil // stop early; engine must drain
}

// TestPaperSampleJob reproduces the Section IV-A setup in miniature: a
// sender task repeatedly writing a test file over an adaptively compressed
// TCP network channel to a receiver task, then verifies volume accounting.
func TestPaperSampleJob(t *testing.T) {
	leakcheck.Check(t)
	file := corpus.GenerateFile(corpus.High, 1)
	const repeats = 8
	g := nephele.NewJobGraph("sample-job")
	src := g.AddVertex("sender", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for i := 0; i < repeats; i++ {
			for off := 0; off < len(file); off += 64 << 10 {
				end := off + 64<<10
				if end > len(file) {
					end = len(file)
				}
				if err := emit(file[off:end]); err != nil {
					return err
				}
			}
		}
		return nil
	}), 1)
	var received int64
	dst := g.AddVertex("receiver", nephele.SinkFunc(func(rec []byte) error {
		atomic.AddInt64(&received, int64(len(rec)))
		return nil
	}), 1)
	if _, err := g.Connect(src, dst, nephele.ChannelSpec{
		Type:        nephele.Network,
		Compression: nephele.CompressionAdaptive,
		Window:      50 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := (&nephele.Engine{}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(repeats * len(file))
	if received != want {
		t.Fatalf("receiver got %d bytes, want %d", received, want)
	}
	es := stats.Edges["sender->receiver"]
	if es.AppBytes != want {
		t.Fatalf("edge app bytes %d, want %d", es.AppBytes, want)
	}
	// Over an uncontended loopback link the network is effectively free
	// and compression is pure CPU cost, so the rate-based model should
	// settle at (or near) level 0: the wire volume must not balloon above
	// the app volume by more than framing overhead.
	if es.WireBytes > es.AppBytes+es.AppBytes/50 {
		t.Fatalf("adaptive channel expanded data: wire %d of %d", es.WireBytes, es.AppBytes)
	}
}

// TestPaperSampleJobStaticHeavyCompresses verifies the compression path
// itself moves fewer bytes: the same job with a pinned LIGHT level must
// shrink the HIGH-compressibility wire volume dramatically.
func TestPaperSampleJobStaticLightCompresses(t *testing.T) {
	file := corpus.GenerateFile(corpus.High, 1)
	g := nephele.NewJobGraph("sample-static")
	src := g.AddVertex("sender", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
		for off := 0; off < len(file); off += 64 << 10 {
			end := off + 64<<10
			if end > len(file) {
				end = len(file)
			}
			if err := emit(file[off:end]); err != nil {
				return err
			}
		}
		return nil
	}), 1)
	dst := g.AddVertex("receiver", nephele.SinkFunc(func([]byte) error { return nil }), 1)
	if _, err := g.Connect(src, dst, nephele.ChannelSpec{
		Type:        nephele.Network,
		Compression: nephele.CompressionStatic,
		StaticLevel: 1,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := (&nephele.Engine{}).Execute(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	es := stats.Edges["sender->receiver"]
	if es.WireBytes >= es.AppBytes/2 {
		t.Fatalf("LIGHT on HIGH data: wire %d of %d", es.WireBytes, es.AppBytes)
	}
}

func BenchmarkNetworkChannelAdaptive(b *testing.B) {
	data := corpus.Generate(corpus.Moderate, 1<<20, 1)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		g := nephele.NewJobGraph("bench")
		src := g.AddVertex("src", nephele.SourceFunc(func(ctx *nephele.TaskContext, emit func([]byte) error) error {
			for off := 0; off < len(data); off += 32 << 10 {
				if err := emit(data[off : off+32<<10]); err != nil {
					return err
				}
			}
			return nil
		}), 1)
		sink := g.AddVertex("sink", nephele.SinkFunc(func([]byte) error { return nil }), 1)
		if _, err := g.Connect(src, sink, nephele.ChannelSpec{Type: nephele.Network, Compression: nephele.CompressionAdaptive}); err != nil {
			b.Fatal(err)
		}
		if _, err := (&nephele.Engine{}).Execute(context.Background(), g); err != nil {
			b.Fatal(err)
		}
	}
}
