// Package compress defines the codec abstraction used by the adaptive
// compression stream layer and a registry of available codecs.
//
// A Codec is a block compressor: it transforms a complete input block into a
// complete output block. The adaptive stream layer (internal/stream) cuts the
// application byte stream into blocks of at most 128 KB — mirroring Nephele's
// internal buffering described in Section III-B of the paper — and hands each
// block to the codec selected by the decision algorithm. Every block is
// self-contained: it can be decompressed without any state from previous
// blocks, which is what allows the compression level to change mid-stream
// without coordination with the receiver.
package compress

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrCorrupt is returned by codecs when the compressed input is malformed.
var ErrCorrupt = errors.New("compress: corrupt input")

// ErrUnknownCodec is returned when a codec ID is not registered.
var ErrUnknownCodec = errors.New("compress: unknown codec")

// Codec compresses and decompresses independent blocks.
//
// Implementations must be safe for concurrent use by multiple goroutines.
type Codec interface {
	// ID returns the stable wire identifier of the codec. It is written
	// into every block header so the receiver can decompress streams whose
	// compression level changes over time.
	ID() uint8

	// Name returns a human-readable codec name such as "lzfast".
	Name() string

	// Compress appends the compressed form of src to dst and returns the
	// extended slice. Codecs must produce output that Decompress can
	// restore exactly.
	Compress(dst, src []byte) []byte

	// Decompress appends the decompressed form of src to dst and returns
	// the extended slice. The caller supplies the exact decompressed size,
	// which is carried in the block header.
	Decompress(dst, src []byte, decompressedSize int) ([]byte, error)
}

// Wire identifiers. These values are persisted in block headers and in
// Nephele file channels, so they must never be renumbered.
const (
	IDNone    uint8 = 0 // identity (no compression)
	IDLZFast  uint8 = 1 // from-scratch fast LZ77, greedy parse (QuickLZ stand-in, LIGHT)
	IDLZFastH uint8 = 2 // from-scratch LZ77, hash-chain parse (QuickLZ level 3 stand-in, MEDIUM)
	IDLZHeavy uint8 = 3 // from-scratch LZ77 + range coder (LZMA stand-in, HEAVY)
	IDFlate   uint8 = 4 // stdlib compress/flate adapter (reference codec)
)

// noneCodec is the identity codec (compression level 0 in the paper).
type noneCodec struct{}

func (noneCodec) ID() uint8    { return IDNone }
func (noneCodec) Name() string { return "none" }

func (noneCodec) Compress(dst, src []byte) []byte { return append(dst, src...) }

func (noneCodec) Decompress(dst, src []byte, decompressedSize int) ([]byte, error) {
	if len(src) != decompressedSize {
		return dst, fmt.Errorf("%w: identity block size %d != declared %d", ErrCorrupt, len(src), decompressedSize)
	}
	return append(dst, src...), nil
}

// None returns the identity codec.
func None() Codec { return noneCodec{} }

var registry = struct {
	sync.RWMutex
	byID map[uint8]Codec
}{byID: map[uint8]Codec{IDNone: noneCodec{}}}

// Register makes a codec available for lookup by ID. Registering a second
// codec with an already-registered ID panics: codec IDs are wire identifiers
// and collisions would corrupt streams.
func Register(c Codec) {
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.byID[c.ID()]; ok && prev != c {
		panic(fmt.Sprintf("compress: duplicate codec id %d (%s vs %s)", c.ID(), prev.Name(), c.Name()))
	}
	registry.byID[c.ID()] = c
}

// ByID looks up a registered codec.
func ByID(id uint8) (Codec, error) {
	registry.RLock()
	defer registry.RUnlock()
	c, ok := registry.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownCodec, id)
	}
	return c, nil
}

// Registered returns all registered codecs sorted by ID.
func Registered() []Codec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Codec, 0, len(registry.byID))
	for _, c := range registry.byID {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Level describes one entry of the ordered compression-level ladder used by
// the decision algorithm. Levels must be ordered by increasing
// time/compression ratio (level 0 = no compression), exactly as required by
// Section III-A of the paper.
type Level struct {
	// Name is the paper's label: NO, LIGHT, MEDIUM, HEAVY.
	Name string
	// Codec performs the actual block transformation.
	Codec Codec
}

// Ladder is an ordered set of compression levels.
//
// The same codec ID may appear at multiple levels with different
// parameters — the paper explicitly allows this ("it is conceivable to use
// the same compression algorithm at multiple levels but with different
// parameters"); the wire ID only needs to identify the *decompression*
// algorithm, which is parameter-independent for every codec here. Level 0
// must be the identity codec, however: the identity level also serves as
// the stored-raw fallback for incompressible blocks.
type Ladder []Level

// Validate checks structural invariants of the ladder: non-empty, level 0
// is the identity codec, identity appears only at level 0, and no nil
// codecs.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return errors.New("compress: empty level ladder")
	}
	if l[0].Codec == nil || l[0].Codec.ID() != IDNone {
		return errors.New("compress: level 0 must be the identity codec")
	}
	for i, lv := range l[1:] {
		if lv.Codec == nil {
			return fmt.Errorf("compress: level %d has nil codec", i+1)
		}
		if lv.Codec.ID() == IDNone {
			return fmt.Errorf("compress: identity codec repeated at level %d", i+1)
		}
	}
	return nil
}

// Names returns the level names in order.
func (l Ladder) Names() []string {
	out := make([]string, len(l))
	for i, lv := range l {
		out[i] = lv.Name
	}
	return out
}
