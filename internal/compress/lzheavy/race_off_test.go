//go:build !race

package lzheavy_test

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation adds allocations and invalidates allocation-count
// assertions (correctness assertions still run).
const raceEnabled = false
