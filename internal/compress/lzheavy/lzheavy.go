// Package lzheavy implements a from-scratch LZ77 compressor with an adaptive
// binary range coder, standing in for LZMA at the paper's HEAVY compression
// level (Section III-B). Like LZMA it combines a large-window match finder
// with context-modeled arithmetic coding of literals, match lengths and
// distance slots, plus a "repeat last distance" shortcut. It is deliberately
// much slower than lzfast and achieves a better compression ratio — the
// time/compression ordering the decision algorithm depends on.
//
// # Wire format
//
// A block is a raw range-coder bitstream over the following symbol grammar
// (all probabilities are 11-bit adaptive counters, fresh per block, so blocks
// are fully self-contained):
//
//	symbol  := isMatch(ctx=prevOp) ? match : literal
//	literal := 8 bits, bit-tree, context = top 2 bits of previous byte
//	match   := isRep ? repMatch : newMatch
//	newMatch:= length(lenM) distSlot directBits    // pushes onto rep queue
//	repMatch:= isRepG0 ? (isRep0Long ? length(lenR) : <len 1 short-rep>)
//	         : isRepG1 ? length(lenR)              // distance = rep1
//	         : isRepG2 ? length(lenR)              // distance = rep2
//	         :           length(lenR)              // distance = rep3
//	           (used rep distance moves to the queue front, as in LZMA)
//	length  := choice1/choice2 split into 3-bit (2..9), 5-bit (10..41)
//	           and 8-bit (42..297) bit-trees; lenM and lenR are separate
//	           adaptive coders
//	distSlot:= 6-bit bit-tree; slots >= 4 carry (slot/2 - 1) direct bits
//
// The decoder stops after producing exactly the declared decompressed size;
// there is no end-of-stream marker.
package lzheavy

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"adaptio/internal/compress"
	"adaptio/internal/compress/probe"
)

const (
	minMatch    = 3   // minimum length for a fresh-distance match
	minRepMatch = 2   // minimum length for a rep match (short-rep is 1)
	lenBase     = 2   // lowest value the length coders encode
	maxMatchLen = 297 // lenBase + 40 + 255, the top of the 8-bit length tree

	probBits  = 11
	probInit  = 1 << (probBits - 1) // 1024
	moveBits  = 5
	topValue  = 1 << 24
	hashLog   = 16
	litCtxTop = 4 // literal contexts: top 2 bits of the previous byte
)

type prob = uint16

// defaultProbe is the entropy pre-probe consulted by Compress when no
// override is set (see internal/compress/probe).
var defaultProbe = probe.Default()

// codecProbe resolves a codec's probe override.
func codecProbe(override *probe.Config) probe.Config {
	if override != nil {
		return *override
	}
	return defaultProbe
}

// Codec is the HEAVY compressor. Depth bounds the hash-chain search; the
// zero value uses a default depth of 128.
//
// Probe overrides the entropy pre-probe consulted before compressing a
// block: hopeless blocks (near-uniform, no recurring 4-byte windows) skip
// the match finder entirely and are range-coded as bare literals — still a
// valid bitstream, but cheap to produce and guaranteed not to shrink, so
// the stream layer's stored-raw fallback engages. Nil means
// probe.Default(); set &probe.Disabled() to force the full search.
type Codec struct {
	Depth int
	Probe *probe.Config
}

// ID implements compress.Codec.
func (Codec) ID() uint8 { return compress.IDLZHeavy }

// Name implements compress.Codec.
func (Codec) Name() string { return "lzheavy" }

// lenProbs is one adaptive length coder (LZMA keeps separate coders for
// fresh matches and rep matches).
type lenProbs struct {
	choice1 prob
	choice2 prob
	low     [8]prob
	mid     [32]prob
	high    [256]prob
}

func (l *lenProbs) init() {
	l.choice1, l.choice2 = probInit, probInit
	fill := func(a []prob) {
		for i := range a {
			a[i] = probInit
		}
	}
	fill(l.low[:])
	fill(l.mid[:])
	fill(l.high[:])
}

// probs holds the complete adaptive model state for one block.
type probs struct {
	isMatch    [2]prob
	isRep      prob // 1: reuse a recent distance
	isRepG0    prob // 0: rep0, 1: consult isRepG1
	isRep0Long prob // 0: single-byte short-rep, 1: coded length
	isRepG1    prob // 0: rep1, 1: consult isRepG2
	isRepG2    prob // 0: rep2, 1: rep3
	lit        [litCtxTop][256]prob
	lenM       lenProbs // fresh-match lengths
	lenR       lenProbs // rep-match lengths
	slot       [64]prob
}

// init resets every adaptive probability to its neutral starting value;
// required before each block (a pooled model carries the previous block's
// adapted state otherwise).
func (p *probs) init() {
	p.isMatch[0], p.isMatch[1] = probInit, probInit
	p.isRep, p.isRepG0, p.isRep0Long = probInit, probInit, probInit
	p.isRepG1, p.isRepG2 = probInit, probInit
	for c := range p.lit {
		for i := range p.lit[c] {
			p.lit[c][i] = probInit
		}
	}
	p.lenM.init()
	p.lenR.init()
	fill := func(a []prob) {
		for i := range a {
			a[i] = probInit
		}
	}
	fill(p.slot[:])
}

// probsPool recycles the ~3.5 KB model state across Compress/Decompress
// calls; newProbs re-initializes it, putProbs returns it.
var probsPool = sync.Pool{New: func() any { return new(probs) }}

func newProbs() *probs {
	p := probsPool.Get().(*probs)
	p.init()
	return p
}

func putProbs(p *probs) { probsPool.Put(p) }

// mfState carries the match finder's hash-head table (256 KB) and chain
// array (4 bytes per input byte) between Compress calls. The head table is
// re-initialized per call; the chain array needs no clearing because
// entries are written before read.
type mfState struct {
	head      [1 << hashLog]int32
	prevChain []int32
}

var mfPool = sync.Pool{New: func() any { return new(mfState) }}

// ---------- range encoder ----------

type rangeEncoder struct {
	low     uint64
	rng     uint32
	cache   byte
	pending int64
	started bool
	out     []byte
}

func newRangeEncoder(dst []byte) *rangeEncoder {
	return &rangeEncoder{rng: 0xFFFFFFFF, out: dst}
}

func (e *rangeEncoder) shiftLow() {
	if e.low < 0xFF000000 || e.low > 0xFFFFFFFF {
		carry := byte(e.low >> 32)
		if e.started {
			e.out = append(e.out, e.cache+carry)
		}
		for ; e.pending > 0; e.pending-- {
			e.out = append(e.out, 0xFF+carry)
		}
		e.cache = byte(e.low >> 24)
		e.started = true
	} else {
		e.pending++
	}
	e.low = (e.low << 8) & 0xFFFFFFFF
}

func (e *rangeEncoder) encodeBit(p *prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> moveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> moveBits
	}
	for e.rng < topValue {
		e.shiftLow()
		e.rng <<= 8
	}
}

func (e *rangeEncoder) encodeDirectBits(v uint32, nbits int) {
	for i := nbits - 1; i >= 0; i-- {
		e.rng >>= 1
		if (v>>uint(i))&1 != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < topValue {
			e.shiftLow()
			e.rng <<= 8
		}
	}
}

func (e *rangeEncoder) flush() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

// encodeTree encodes an nbits-wide symbol MSB-first through a bit tree.
func (e *rangeEncoder) encodeTree(tree []prob, sym, nbits int) {
	node := 1
	for i := nbits - 1; i >= 0; i-- {
		bit := (sym >> uint(i)) & 1
		e.encodeBit(&tree[node], bit)
		node = node<<1 | bit
	}
}

// ---------- range decoder ----------

// phantomSlack bounds how many zero bytes past the input end the decoder may
// read before Decompress declares the input truncated. The decoder's byte
// consumption mirrors the encoder's output, so genuine streams need none;
// the slack only covers the final-symbol normalize running marginally ahead.
const phantomSlack = 2

type rangeDecoder struct {
	code uint32
	rng  uint32
	in   []byte
	pos  int
}

func newRangeDecoder(src []byte) *rangeDecoder {
	d := &rangeDecoder{rng: 0xFFFFFFFF, in: src}
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

// next returns the next input byte, or 0 past the end, counting how far past
// the end the decoder has read. A well-formed stream needs no phantom bytes:
// the decoder's consumption (4 priming bytes plus one byte per normalize)
// mirrors the encoder's output exactly, so Decompress treats more than
// phantomSlack reads past the end as truncation.
func (d *rangeDecoder) next() byte {
	if d.pos >= len(d.in) {
		d.pos++
		return 0
	}
	b := d.in[d.pos]
	d.pos++
	return b
}

func (d *rangeDecoder) normalize() {
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.next())
	}
}

func (d *rangeDecoder) decodeBit(p *prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> moveBits
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> moveBits
		bit = 1
	}
	d.normalize()
	return bit
}

func (d *rangeDecoder) decodeDirectBits(nbits int) uint32 {
	var v uint32
	for i := 0; i < nbits; i++ {
		d.rng >>= 1
		d.code -= d.rng
		t := 0 - (d.code >> 31)
		d.code += d.rng & t
		d.normalize()
		v = v<<1 | (t + 1)
	}
	return v
}

func (d *rangeDecoder) decodeTree(tree []prob, nbits int) int {
	node := 1
	for i := 0; i < nbits; i++ {
		node = node<<1 | d.decodeBit(&tree[node])
	}
	return node - 1<<uint(nbits)
}

// ---------- length and distance helpers ----------

func (e *rangeEncoder) encodeLength(lp *lenProbs, length int) {
	l := length - lenBase
	switch {
	case l < 8:
		e.encodeBit(&lp.choice1, 0)
		e.encodeTree(lp.low[:], l, 3)
	case l < 8+32:
		e.encodeBit(&lp.choice1, 1)
		e.encodeBit(&lp.choice2, 0)
		e.encodeTree(lp.mid[:], l-8, 5)
	default:
		e.encodeBit(&lp.choice1, 1)
		e.encodeBit(&lp.choice2, 1)
		e.encodeTree(lp.high[:], l-40, 8)
	}
}

func (d *rangeDecoder) decodeLength(lp *lenProbs) int {
	if d.decodeBit(&lp.choice1) == 0 {
		return lenBase + d.decodeTree(lp.low[:], 3)
	}
	if d.decodeBit(&lp.choice2) == 0 {
		return lenBase + 8 + d.decodeTree(lp.mid[:], 5)
	}
	return lenBase + 40 + d.decodeTree(lp.high[:], 8)
}

// distSlot maps a zero-based distance value to its LZMA-style slot.
func distSlot(d uint32) int {
	if d < 4 {
		return int(d)
	}
	n := bits.Len32(d) - 1
	return n*2 + int((d>>(uint(n)-1))&1)
}

func (e *rangeEncoder) encodeDistance(p *probs, dist int) {
	dv := uint32(dist - 1)
	slot := distSlot(dv)
	e.encodeTree(p.slot[:], slot, 6)
	if slot >= 4 {
		nb := slot/2 - 1
		base := uint32(2|slot&1) << uint(nb)
		e.encodeDirectBits(dv-base, nb)
	}
}

func (d *rangeDecoder) decodeDistance(p *probs) int {
	slot := d.decodeTree(p.slot[:], 6)
	if slot < 4 {
		return slot + 1
	}
	nb := slot/2 - 1
	base := uint32(2|slot&1) << uint(nb)
	return int(base+d.decodeDirectBits(nb)) + 1
}

// ---------- compression ----------

func litContext(prev byte) int { return int(prev >> 6) }

func load32(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[i:]) }

func hash3(b []byte, i int) uint32 {
	u := uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16
	return (u * 2654435761) >> (32 - hashLog)
}

func matchLen(src []byte, a, b, max int) int {
	n := 0
	limit := len(src) - b
	if limit > max {
		limit = max
	}
	for n+8 <= limit && binary.LittleEndian.Uint64(src[a+n:]) == binary.LittleEndian.Uint64(src[b+n:]) {
		n += 8
	}
	for n < limit && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// Compress implements compress.Codec.
func (c Codec) Compress(dst, src []byte) []byte {
	depth := c.Depth
	if depth <= 0 {
		depth = 128
	}
	p := newProbs()
	defer putProbs(p)
	enc := newRangeEncoder(dst)
	if len(src) == 0 {
		return enc.flush()
	}
	if codecProbe(c.Probe).Hopeless(src) {
		// Hopeless block: skip the hash-chain search (the expensive part)
		// and range-code bare literals. prevOp stays 0 throughout — every
		// symbol is a literal.
		prevByte := byte(0)
		for _, b := range src {
			enc.encodeBit(&p.isMatch[0], 0)
			enc.encodeLiteral(p, prevByte, b)
			prevByte = b
		}
		return enc.flush()
	}

	mf := mfPool.Get().(*mfState)
	defer mfPool.Put(mf)
	head := mf.head[:]
	for i := range head {
		head[i] = -1
	}
	if cap(mf.prevChain) < len(src) {
		mf.prevChain = make([]int32, len(src))
	}
	prevChain := mf.prevChain[:len(src)]
	insert := func(pos int) {
		if pos+minMatch > len(src) {
			return
		}
		h := hash3(src, pos)
		prevChain[pos] = head[h]
		head[h] = int32(pos)
	}
	best := func(pos int) (bLen, bDist int) {
		if pos+minMatch > len(src) {
			return 0, 0
		}
		maxLen := len(src) - pos
		if maxLen > maxMatchLen {
			maxLen = maxMatchLen
		}
		cand := int(head[hash3(src, pos)])
		for d := 0; d < depth && cand >= 0; d++ {
			if bLen == 0 || (pos+bLen < len(src) && src[cand+bLen] == src[pos+bLen]) {
				if l := matchLen(src, cand, pos, maxLen); l > bLen {
					// Distance heuristics: short matches far away
					// cost more to encode than literals.
					dist := pos - cand
					ok := l >= 5 || (l == 4 && dist < 1<<16) || (l == 3 && dist < 1<<12)
					if ok {
						bLen, bDist = l, dist
					}
				}
			}
			cand = int(prevChain[cand])
		}
		return bLen, bDist
	}

	pos := 0
	prevOp := 0
	var reps [4]int // recent distances, most recent first (LZMA rep queue)
	var prevByte byte

	emitLiteral := func() {
		enc.encodeBit(&p.isMatch[prevOp], 0)
		enc.encodeLiteral(p, prevByte, src[pos])
		prevByte = src[pos]
		prevOp = 0
		pos++
	}
	advance := func(length int) {
		for q := pos + 1; q < pos+length; q++ {
			insert(q)
		}
		pos += length
		prevByte = src[pos-1]
		prevOp = 1
	}
	emitNewMatch := func(length, dist int) {
		enc.encodeBit(&p.isMatch[prevOp], 1)
		enc.encodeBit(&p.isRep, 0)
		enc.encodeLength(&p.lenM, length)
		enc.encodeDistance(p, dist)
		reps = [4]int{dist, reps[0], reps[1], reps[2]}
		advance(length)
	}
	emitRep := func(length, idx int) {
		enc.encodeBit(&p.isMatch[prevOp], 1)
		enc.encodeBit(&p.isRep, 1)
		switch idx {
		case 0:
			enc.encodeBit(&p.isRepG0, 0)
			if length == 1 {
				enc.encodeBit(&p.isRep0Long, 0) // short rep
				advance(1)
				return
			}
			enc.encodeBit(&p.isRep0Long, 1)
		case 1:
			enc.encodeBit(&p.isRepG0, 1)
			enc.encodeBit(&p.isRepG1, 0)
			reps = [4]int{reps[1], reps[0], reps[2], reps[3]}
		case 2:
			enc.encodeBit(&p.isRepG0, 1)
			enc.encodeBit(&p.isRepG1, 1)
			enc.encodeBit(&p.isRepG2, 0)
			reps = [4]int{reps[2], reps[0], reps[1], reps[3]}
		default:
			enc.encodeBit(&p.isRepG0, 1)
			enc.encodeBit(&p.isRepG1, 1)
			enc.encodeBit(&p.isRepG2, 1)
			reps = [4]int{reps[3], reps[0], reps[1], reps[2]}
		}
		enc.encodeLength(&p.lenR, length)
		advance(length)
	}
	// bestRep finds the longest match among the recent distances (ties
	// prefer the cheaper-to-encode lower index).
	bestRep := func(at int) (bLen, bIdx int) {
		max := len(src) - at
		if max > maxMatchLen {
			max = maxMatchLen
		}
		for idx, d := range reps {
			if d <= 0 || at < d {
				continue
			}
			if l := matchLen(src, at-d, at, max); l > bLen {
				bLen, bIdx = l, idx
			}
		}
		return bLen, bIdx
	}

	for pos < len(src) {
		mLen, mDist := best(pos)
		repLen, repIdx := bestRep(pos)
		insert(pos)
		// Rep matches are far cheaper to encode than fresh distances:
		// prefer them unless the fresh match is clearly longer.
		if repLen >= minRepMatch && repLen+2 >= mLen {
			emitRep(repLen, repIdx)
			continue
		}
		if mLen >= minMatch {
			// One-step lazy: emit a literal instead if the next
			// position has a clearly better match.
			if pos+1 < len(src) {
				if nLen, _ := best(pos + 1); nLen > mLen+1 {
					emitLiteral()
					continue
				}
			}
			emitNewMatch(mLen, mDist)
			continue
		}
		// Single-byte short rep: a couple of model bits instead of a
		// full literal.
		if repLen == 1 && repIdx == 0 {
			emitRep(1, 0)
			continue
		}
		emitLiteral()
	}
	return enc.flush()
}

func (e *rangeEncoder) encodeLiteral(p *probs, prev, b byte) {
	e.encodeTree(p.lit[litContext(prev)][:], int(b), 8)
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: lzheavy: %s", compress.ErrCorrupt, fmt.Sprintf(format, args...))
}

// Decompress implements compress.Codec.
func (Codec) Decompress(dst, src []byte, decompressedSize int) ([]byte, error) {
	if decompressedSize < 0 {
		return dst, corrupt("negative declared size %d", decompressedSize)
	}
	start := len(dst)
	if cap(dst)-len(dst) < decompressedSize {
		grown := make([]byte, len(dst), len(dst)+decompressedSize)
		copy(grown, dst)
		dst = grown
	}
	p := newProbs()
	defer putProbs(p)
	dec := newRangeDecoder(src)
	prevOp := 0
	var reps [4]int
	var prevByte byte
	// out is the pre-extended output window, d its write frontier: index
	// writes instead of per-byte appends keep the literal-heavy decode
	// loop free of append bookkeeping. The range coder is untouched.
	out := dst[start : start+decompressedSize]
	d := 0
	for d < decompressedSize {
		if dec.pos > len(src)+phantomSlack {
			return dst[:start+d], corrupt("input exhausted after %d of %d declared bytes", d, decompressedSize)
		}
		if dec.decodeBit(&p.isMatch[prevOp]) == 0 {
			b := byte(dec.decodeTree(p.lit[litContext(prevByte)][:], 8))
			out[d] = b
			d++
			prevByte = b
			prevOp = 0
			continue
		}
		var dist, length int
		if dec.decodeBit(&p.isRep) == 0 {
			length = dec.decodeLength(&p.lenM)
			dist = dec.decodeDistance(p)
			reps = [4]int{dist, reps[0], reps[1], reps[2]}
		} else {
			if dec.decodeBit(&p.isRepG0) == 0 {
				dist = reps[0]
				if dec.decodeBit(&p.isRep0Long) == 0 {
					length = 1 // short rep
				} else {
					length = dec.decodeLength(&p.lenR)
				}
			} else {
				if dec.decodeBit(&p.isRepG1) == 0 {
					dist = reps[1]
					reps = [4]int{reps[1], reps[0], reps[2], reps[3]}
				} else if dec.decodeBit(&p.isRepG2) == 0 {
					dist = reps[2]
					reps = [4]int{reps[2], reps[0], reps[1], reps[3]}
				} else {
					dist = reps[3]
					reps = [4]int{reps[3], reps[0], reps[1], reps[2]}
				}
				length = dec.decodeLength(&p.lenR)
			}
			if dist == 0 {
				return dst[:start+d], corrupt("repeat distance before any match")
			}
		}
		if dist > d {
			return dst[:start+d], corrupt("distance %d exceeds produced bytes %d", dist, d)
		}
		if d+length > decompressedSize {
			return dst[:start+d], corrupt("match overruns declared size %d", decompressedSize)
		}
		srcPos := d - dist
		if dist >= length {
			copy(out[d:d+length], out[srcPos:srcPos+length])
		} else {
			// Overlapping match: copy one period, then double the
			// replicated region, capping every copy at length.
			copy(out[d:d+dist], out[srcPos:d])
			for n := dist; n < length; n *= 2 {
				copy(out[d+n:d+length], out[d:d+n])
			}
		}
		d += length
		prevByte = out[d-1]
		prevOp = 1
	}
	return dst[:start+decompressedSize], nil
}
