package lzheavy_test

import (
	"testing"

	"adaptio/internal/compress/lzheavy"
	"adaptio/internal/corpus"
)

// TestDecompressPresizedSteadyAllocs pins the satellite guarantee that a
// dst with sufficient capacity never copy-grows: with the probability model
// pooled, a presized decode settles at zero allocations per run (the pool
// may be repopulated once after a GC, hence the < 1 bound rather than an
// exact 0).
func TestDecompressPresizedSteadyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	raw := corpus.Generate(corpus.Moderate, 128<<10, 1)
	comp := lzheavy.Codec{}.Compress(nil, raw)
	dst := make([]byte, 0, len(raw))
	avg := testing.AllocsPerRun(100, func() {
		out, err := lzheavy.Codec{}.Decompress(dst, comp, len(raw))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(raw) {
			t.Fatalf("decoded %d bytes, want %d", len(out), len(raw))
		}
	})
	if avg >= 1 {
		t.Fatalf("presized Decompress allocates %.1f times per run, want < 1", avg)
	}
}

// BenchmarkCompress exercises the pooled model and match-finder state;
// -benchmem shows the per-call allocations removed by the pools.
func BenchmarkCompress(b *testing.B) {
	raw := corpus.Generate(corpus.Moderate, 128<<10, 1)
	dst := make([]byte, 0, 2*len(raw))
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lzheavy.Codec{}.Compress(dst[:0], raw)
	}
}
