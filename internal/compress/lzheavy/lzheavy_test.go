package lzheavy_test

import (
	"bytes"
	"math/rand"
	"testing"

	"adaptio/internal/compress"
	"adaptio/internal/compress/codectest"
	"adaptio/internal/compress/lzfast"
	"adaptio/internal/compress/lzheavy"
	"adaptio/internal/compress/probe"
	"adaptio/internal/corpus"
)

func TestConformance(t *testing.T) { codectest.All(t, lzheavy.Codec{}) }

func TestWireID(t *testing.T) {
	if (lzheavy.Codec{}).ID() != compress.IDLZHeavy {
		t.Fatal("lzheavy wire id changed")
	}
}

func TestBeatsLZFastOnCompressibleData(t *testing.T) {
	// The HEAVY level must achieve a strictly better ratio than the fast
	// levels on compressible data — that ordering is the premise of the
	// paper's level ladder (Section III-A).
	for _, kind := range []corpus.Kind{corpus.High, corpus.Moderate} {
		src := corpus.GenerateFile(kind, 1)[:128<<10]
		heavy := lzheavy.Codec{}.Compress(nil, src)
		fast := lzfast.Fast{}.Compress(nil, src)
		hc := lzfast.HC{}.Compress(nil, src)
		if len(heavy) >= len(fast) {
			t.Errorf("%s: heavy (%d) not better than fast (%d)", kind, len(heavy), len(fast))
		}
		if len(heavy) >= len(hc) {
			t.Errorf("%s: heavy (%d) not better than hc (%d)", kind, len(heavy), len(hc))
		}
	}
}

func TestDepthConfigurable(t *testing.T) {
	src := corpus.Generate(corpus.Moderate, 32<<10, 3)
	shallow := lzheavy.Codec{Depth: 1}.Compress(nil, src)
	deep := lzheavy.Codec{Depth: 512}.Compress(nil, src)
	if len(deep) > len(shallow) {
		t.Fatalf("deeper search worse: depth1=%d depth512=%d", len(shallow), len(deep))
	}
	out, err := lzheavy.Codec{}.Decompress(nil, deep, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("round trip failed: %v", err)
	}
}

// TestMultipleRepDistancesExploited interleaves two periodic streams so the
// encoder must alternate between two distances; the rep1 slot makes that
// nearly free, so the output must stay tiny.
func TestMultipleRepDistancesExploited(t *testing.T) {
	a := []byte("AAAABBBBCCCCDDDD")                 // period 16
	b := []byte("0123456789abcdefghijklmnopqrstuv") // period 32
	var src []byte
	for i := 0; i < 1000; i++ {
		src = append(src, a...)
		src = append(src, b...)
	}
	comp := lzheavy.Codec{}.Compress(nil, src)
	if len(comp) > len(src)/60 {
		t.Fatalf("interleaved periodic data compressed to %d of %d bytes; rep queue not effective",
			len(comp), len(src))
	}
	out, err := lzheavy.Codec{}.Decompress(nil, comp, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("round trip failed: %v", err)
	}
}

// TestShortRepPath pins the single-byte rep0 path: runs of one repeated
// byte interrupted by single different bytes.
func TestShortRepPath(t *testing.T) {
	src := bytes.Repeat([]byte("xxxxxxxy"), 2000)
	comp := lzheavy.Codec{}.Compress(nil, src)
	out, err := lzheavy.Codec{}.Decompress(nil, comp, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("short-rep round trip failed: %v", err)
	}
	if len(comp) > len(src)/30 {
		t.Fatalf("near-constant data compressed to only %d of %d", len(comp), len(src))
	}
}

func TestRepDistanceExploited(t *testing.T) {
	// Data with a fixed stride benefits enormously from the
	// repeat-distance path; this pins that the mechanism works.
	unit := []byte("0123456789abcdef")
	src := bytes.Repeat(unit, 4096) // 64 KB, period 16
	comp := lzheavy.Codec{}.Compress(nil, src)
	if len(comp) > 2048 {
		t.Fatalf("periodic data compressed to only %d bytes; rep path likely broken", len(comp))
	}
	out, err := lzheavy.Codec{}.Decompress(nil, comp, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestEmptyBlock(t *testing.T) {
	comp := lzheavy.Codec{}.Compress(nil, nil)
	out, err := lzheavy.Codec{}.Decompress(nil, comp, 0)
	if err != nil {
		t.Fatalf("empty round trip: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("expected empty output, got %d bytes", len(out))
	}
}

func BenchmarkCompressModerate(b *testing.B) {
	benchCompress(b, corpus.Moderate)
}

func BenchmarkCompressHigh(b *testing.B) {
	benchCompress(b, corpus.High)
}

func BenchmarkCompressLow(b *testing.B) {
	benchCompress(b, corpus.Low)
}

func BenchmarkDecompressModerate(b *testing.B) {
	src := corpus.Generate(corpus.Moderate, 128<<10, 1)
	comp := lzheavy.Codec{}.Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var dst []byte
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = lzheavy.Codec{}.Decompress(dst[:0], comp, len(src))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchCompress(b *testing.B, kind corpus.Kind) {
	src := corpus.Generate(kind, 128<<10, 1)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = lzheavy.Codec{}.Compress(dst[:0], src)
	}
	b.ReportMetric(float64(len(dst))/float64(len(src)), "ratio")
}

// TestProbeBailRoundTrips: a block the entropy pre-probe judges hopeless is
// range-coded as bare literals — still a valid, decodable bitstream (so the
// codec contract holds even without the stream layer's stored-raw fallback)
// that never shrinks, while skipping the match-finder cost entirely.
func TestProbeBailRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := make([]byte, 64<<10)
	rng.Read(src)

	comp := lzheavy.Codec{}.Compress(nil, src)
	if len(comp) < len(src) {
		t.Fatalf("probe-bailed block shrank (%d -> %d): probe judged a compressible block hopeless", len(src), len(comp))
	}
	out, err := lzheavy.Codec{}.Decompress(nil, comp, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("probe-bailed block does not round-trip: %v", err)
	}

	// Disabling the probe must produce an equally valid stream.
	pr := probe.Disabled()
	full := lzheavy.Codec{Probe: &pr}.Compress(nil, src)
	out, err = lzheavy.Codec{}.Decompress(nil, full, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("full-search stream does not round-trip: %v", err)
	}

	// And the probe must keep its hands off compressible corpus blocks:
	// same output with and without it.
	for _, kind := range corpus.Kinds() {
		blockSrc := corpus.Generate(kind, 64<<10, 3)
		if !bytes.Equal(lzheavy.Codec{}.Compress(nil, blockSrc), lzheavy.Codec{Probe: &pr}.Compress(nil, blockSrc)) {
			t.Fatalf("%s: probe changed the compressed output of a compressible block", kind)
		}
	}
}
