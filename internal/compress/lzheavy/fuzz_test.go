package lzheavy_test

import (
	"bytes"
	"testing"

	"adaptio/internal/compress/lzheavy"
	"adaptio/internal/corpus"
)

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Add(corpus.Generate(corpus.High, 4096, 1))
	f.Add(corpus.Generate(corpus.Low, 2048, 1))
	f.Add(bytes.Repeat([]byte("ab"), 5000))
	f.Fuzz(func(t *testing.T, src []byte) {
		c := lzheavy.Codec{Depth: 8}
		comp := c.Compress(nil, src)
		out, err := c.Decompress(nil, comp, len(src))
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(out, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecompressArbitrary(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0}, 16)
	f.Add(lzheavy.Codec{}.Compress(nil, []byte("seed")), 4)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<20 {
			size %= 1 << 20
			if size < 0 {
				size = -size
			}
		}
		// The range decoder reads zeros past the end and the produced
		// size is bounded, so this must terminate without panicking.
		_, _ = lzheavy.Codec{}.Decompress(nil, data, size)
	})
}
