package compress_test

import (
	"bytes"
	"testing"

	"adaptio/internal/compress"
	"adaptio/internal/compress/codectest"
	"adaptio/internal/compress/flatecodec"
	"adaptio/internal/compress/lzfast"
	"adaptio/internal/compress/lzheavy"
)

func TestNoneRoundTrip(t *testing.T) {
	c := compress.None()
	src := []byte("hello shared clouds")
	comp := c.Compress(nil, src)
	if !bytes.Equal(comp, src) {
		t.Fatalf("identity codec changed data: %q", comp)
	}
	out, err := c.Decompress(nil, comp, len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch: %q", out)
	}
}

func TestNoneSizeMismatch(t *testing.T) {
	c := compress.None()
	if _, err := c.Decompress(nil, []byte("abc"), 5); err == nil {
		t.Fatal("expected error for size mismatch")
	}
}

func TestByIDKnown(t *testing.T) {
	c, err := compress.ByID(compress.IDNone)
	if err != nil {
		t.Fatalf("ByID(IDNone): %v", err)
	}
	if c.Name() != "none" {
		t.Fatalf("unexpected codec %q", c.Name())
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := compress.ByID(250); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestRegisterAndLookup(t *testing.T) {
	compress.Register(lzfast.Fast{})
	got, err := compress.ByID(compress.IDLZFast)
	if err != nil {
		t.Fatalf("ByID after Register: %v", err)
	}
	if got.Name() != "lzfast" {
		t.Fatalf("unexpected codec %q", got.Name())
	}
}

func TestRegisteredSortedByID(t *testing.T) {
	compress.Register(lzfast.Fast{})
	compress.Register(lzfast.HC{})
	compress.Register(lzheavy.Codec{})
	compress.Register(flatecodec.Codec{})
	all := compress.Registered()
	if len(all) < 5 {
		t.Fatalf("expected at least 5 registered codecs, got %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID() >= all[i].ID() {
			t.Fatalf("registry not sorted: %d >= %d", all[i-1].ID(), all[i].ID())
		}
	}
}

// TestRegisteredAdversarialInputs runs the adversarial-input conformance
// pass over every registered codec — the identity codec included, which the
// per-package conformance tests do not cover.
func TestRegisteredAdversarialInputs(t *testing.T) {
	compress.Register(lzfast.Fast{})
	compress.Register(lzfast.HC{})
	compress.Register(lzheavy.Codec{})
	compress.Register(flatecodec.Codec{})
	for _, c := range compress.Registered() {
		c := c
		t.Run(c.Name(), func(t *testing.T) { codectest.AdversarialInputs(t, c) })
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate codec id")
		}
	}()
	compress.Register(badCodec{})
}

type badCodec struct{}

func (badCodec) ID() uint8                                         { return compress.IDNone }
func (badCodec) Name() string                                      { return "bad" }
func (badCodec) Compress(dst, src []byte) []byte                   { return dst }
func (badCodec) Decompress(dst, src []byte, n int) ([]byte, error) { return dst, nil }

func TestLadderValidate(t *testing.T) {
	good := compress.Ladder{
		{Name: "NO", Codec: compress.None()},
		{Name: "LIGHT", Codec: lzfast.Fast{}},
		{Name: "MEDIUM", Codec: lzfast.HC{}},
		{Name: "HEAVY", Codec: lzheavy.Codec{}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid ladder rejected: %v", err)
	}
	if got := good.Names(); len(got) != 4 || got[0] != "NO" || got[3] != "HEAVY" {
		t.Fatalf("Names() = %v", got)
	}
}

func TestLadderValidateRejectsEmpty(t *testing.T) {
	if err := (compress.Ladder{}).Validate(); err == nil {
		t.Fatal("empty ladder accepted")
	}
}

func TestLadderValidateRejectsWrongLevel0(t *testing.T) {
	bad := compress.Ladder{{Name: "LIGHT", Codec: lzfast.Fast{}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("ladder without identity level 0 accepted")
	}
}

func TestLadderAllowsSameCodecWithDifferentParameters(t *testing.T) {
	// The paper: the same algorithm may serve multiple levels with
	// different parameters. Only the decompression algorithm is on the
	// wire, so duplicate IDs are legal above level 0.
	ok := compress.Ladder{
		{Name: "NO", Codec: compress.None()},
		{Name: "HC-16", Codec: lzfast.HC{Depth: 16}},
		{Name: "HC-256", Codec: lzfast.HC{Depth: 256}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("parameterized duplicate levels rejected: %v", err)
	}
}

func TestLadderValidateRejectsRepeatedIdentity(t *testing.T) {
	bad := compress.Ladder{
		{Name: "NO", Codec: compress.None()},
		{Name: "NO2", Codec: compress.None()},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("repeated identity level accepted")
	}
}

func TestLadderValidateRejectsNilCodec(t *testing.T) {
	bad := compress.Ladder{
		{Name: "NO", Codec: compress.None()},
		{Name: "X", Codec: nil},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("ladder with nil codec accepted")
	}
}
