package flatecodec_test

import (
	"testing"

	"adaptio/internal/compress"
	"adaptio/internal/compress/codectest"
	"adaptio/internal/compress/flatecodec"
	"adaptio/internal/corpus"
)

func TestConformance(t *testing.T) { codectest.All(t, flatecodec.Codec{}) }

func TestWireID(t *testing.T) {
	if (flatecodec.Codec{}).ID() != compress.IDFlate {
		t.Fatal("flate wire id changed")
	}
	if (flatecodec.Codec{}).Name() != "flate" {
		t.Fatal("flate name changed")
	}
}

func TestLevelAffectsRatio(t *testing.T) {
	src := corpus.Generate(corpus.Moderate, 128<<10, 1)
	fast := flatecodec.Codec{Level: 1}.Compress(nil, src)
	best := flatecodec.Codec{Level: 9}.Compress(nil, src)
	if len(best) >= len(fast) {
		t.Fatalf("level 9 (%d) should beat level 1 (%d)", len(best), len(fast))
	}
}

func TestInvalidLevelFallsBack(t *testing.T) {
	src := []byte("some data to compress")
	comp := flatecodec.Codec{Level: 42}.Compress(nil, src)
	out, err := flatecodec.Codec{}.Decompress(nil, comp, len(src))
	if err != nil || string(out) != string(src) {
		t.Fatalf("fallback round trip failed: %v", err)
	}
}

func BenchmarkCompressModerate(b *testing.B) {
	src := corpus.Generate(corpus.Moderate, 128<<10, 1)
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = flatecodec.Codec{}.Compress(dst[:0], src)
	}
	b.ReportMetric(float64(len(dst))/float64(len(src)), "ratio")
}
