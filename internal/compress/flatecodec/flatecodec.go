// Package flatecodec adapts the standard library's compress/flate (DEFLATE)
// to the block-codec interface. It serves as an independently implemented
// reference codec: the test suite cross-checks that the ratio ordering of the
// from-scratch codecs (lzfast < lzfast-hc < lzheavy) brackets flate the way
// QuickLZ and LZMA bracket zlib in the compression literature the paper
// builds on.
package flatecodec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"adaptio/internal/compress"
)

// Codec compresses blocks with DEFLATE at the configured level. A zero Level
// uses flate.DefaultCompression.
type Codec struct {
	Level int
}

// ID implements compress.Codec.
func (Codec) ID() uint8 { return compress.IDFlate }

// Name implements compress.Codec.
func (Codec) Name() string { return "flate" }

// Compress implements compress.Codec.
func (c Codec) Compress(dst, src []byte) []byte {
	level := c.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	buf.Grow(len(src)/2 + 64)
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		// Only reachable with an out-of-range level; fall back to default.
		w, _ = flate.NewWriter(&buf, flate.DefaultCompression)
	}
	if _, err := w.Write(src); err != nil {
		panic(fmt.Sprintf("flatecodec: in-memory write failed: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("flatecodec: in-memory close failed: %v", err))
	}
	return append(dst, buf.Bytes()...)
}

// Decompress implements compress.Codec.
func (Codec) Decompress(dst, src []byte, decompressedSize int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out := bytes.NewBuffer(dst)
	n, err := io.Copy(out, io.LimitReader(r, int64(decompressedSize)+1))
	if err != nil {
		return out.Bytes(), fmt.Errorf("%w: flate: %v", compress.ErrCorrupt, err)
	}
	if int(n) != decompressedSize {
		return out.Bytes(), fmt.Errorf("%w: flate: decoded %d bytes, declared %d", compress.ErrCorrupt, n, decompressedSize)
	}
	return out.Bytes(), nil
}
