// Package codectest provides a reusable conformance suite for block codecs.
// Every codec implementation runs the same battery: exact round trips over a
// catalogue of adversarial input shapes, randomized property tests via
// testing/quick, corpus round trips, robustness against corrupted and
// truncated inputs, and determinism.
package codectest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptio/internal/compress"
	"adaptio/internal/corpus"
)

// shapes returns the catalogue of deterministic adversarial inputs.
func shapes() map[string][]byte {
	rnd := rand.New(rand.NewSource(42))
	random := make([]byte, 1<<16)
	rnd.Read(random)

	runs := make([]byte, 1<<16)
	for i := range runs {
		runs[i] = byte(i / 997)
	}

	period3 := make([]byte, 10000)
	for i := range period3 {
		period3[i] = "abc"[i%3]
	}

	alternating := make([]byte, 8192)
	for i := range alternating {
		if i%2 == 0 {
			alternating[i] = 0xAA
		} else {
			alternating[i] = 0x55
		}
	}

	nearlyRandom := make([]byte, 1<<15)
	rnd.Read(nearlyRandom)
	copy(nearlyRandom[1000:], nearlyRandom[:500]) // one embedded repeat

	allBytes := make([]byte, 256*64)
	for i := range allBytes {
		allBytes[i] = byte(i)
	}

	return map[string][]byte{
		"empty":        {},
		"one":          {0x42},
		"two":          {0xFF, 0x00},
		"three":        {1, 2, 3},
		"four-equal":   {7, 7, 7, 7},
		"short-text":   []byte("to be or not to be, that is the question"),
		"zeros-small":  make([]byte, 100),
		"zeros-large":  make([]byte, 1<<17),
		"random":       random,
		"byte-runs":    runs,
		"period-3":     period3,
		"alternating":  alternating,
		"near-random":  nearlyRandom,
		"all-bytes":    allBytes,
		"max-block":    corpus.Generate(corpus.Moderate, 128<<10, 7),
		"ff-only":      bytes.Repeat([]byte{0xFF}, 4096),
		"self-overlap": append(bytes.Repeat([]byte{'x'}, 20), bytes.Repeat([]byte("xy"), 300)...),
	}
}

// RoundTrip asserts Compress→Decompress is the identity for every shape.
func RoundTrip(t *testing.T, c compress.Codec) {
	t.Helper()
	for name, src := range shapes() {
		t.Run(name, func(t *testing.T) {
			comp := c.Compress(nil, src)
			out, err := c.Decompress(nil, comp, len(src))
			if err != nil {
				t.Fatalf("%s: decompress failed: %v", name, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("%s: round trip mismatch (len in=%d out=%d)", name, len(src), len(out))
			}
		})
	}
}

// RoundTripAppend asserts the dst-append contract: compressing and
// decompressing must append to non-empty destination slices without
// disturbing existing content.
func RoundTripAppend(t *testing.T, c compress.Codec) {
	t.Helper()
	src := corpus.Generate(corpus.Moderate, 4096, 3)
	prefix := []byte("PREFIX")
	comp := c.Compress(append([]byte(nil), prefix...), src)
	if !bytes.HasPrefix(comp, prefix) {
		t.Fatal("Compress disturbed dst prefix")
	}
	out, err := c.Decompress(append([]byte(nil), prefix...), comp[len(prefix):], len(src))
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Decompress disturbed dst prefix")
	}
	if !bytes.Equal(out[len(prefix):], src) {
		t.Fatal("append-mode round trip mismatch")
	}
}

// QuickRoundTrip is a testing/quick property: for arbitrary byte slices the
// round trip is the identity.
func QuickRoundTrip(t *testing.T, c compress.Codec) {
	t.Helper()
	prop := func(src []byte) bool {
		comp := c.Compress(nil, src)
		out, err := c.Decompress(nil, comp, len(src))
		return err == nil && bytes.Equal(out, src)
	}
	cfg := &quick.Config{MaxCount: 200}
	if testing.Short() {
		cfg.MaxCount = 40
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("quick round trip property failed: %v", err)
	}
}

// QuickRoundTripStructured is a property test over structured (compressible)
// inputs, which exercise the match-emitting code paths far more than uniform
// random bytes do.
func QuickRoundTripStructured(t *testing.T, c compress.Codec) {
	t.Helper()
	prop := func(seed int64, size uint16, period uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		p := int(period)%61 + 1
		src := make([]byte, int(size))
		unit := make([]byte, p)
		rnd.Read(unit)
		for i := range src {
			if rnd.Intn(20) == 0 {
				src[i] = byte(rnd.Intn(256)) // sprinkle noise
			} else {
				src[i] = unit[i%p]
			}
		}
		comp := c.Compress(nil, src)
		out, err := c.Decompress(nil, comp, len(src))
		return err == nil && bytes.Equal(out, src)
	}
	cfg := &quick.Config{MaxCount: 150}
	if testing.Short() {
		cfg.MaxCount = 30
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatalf("structured quick round trip failed: %v", err)
	}
}

// CorpusRoundTrip asserts round trips over all three paper corpora in
// 128 KB blocks (the stream layer's block size).
func CorpusRoundTrip(t *testing.T, c compress.Codec) {
	t.Helper()
	for _, kind := range corpus.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			file := corpus.GenerateFile(kind, 1)
			const block = 128 << 10
			for off := 0; off < len(file); off += block {
				end := off + block
				if end > len(file) {
					end = len(file)
				}
				src := file[off:end]
				comp := c.Compress(nil, src)
				out, err := c.Decompress(nil, comp, len(src))
				if err != nil {
					t.Fatalf("block at %d: %v", off, err)
				}
				if !bytes.Equal(out, src) {
					t.Fatalf("block at %d: mismatch", off)
				}
			}
		})
	}
}

// CorruptionRobustness asserts that decompressing corrupted or truncated
// input never panics: it must either return an error or produce output that
// differs in a controlled way (garbage is acceptable — the stream layer's
// CRC rejects it — but crashing is not).
func CorruptionRobustness(t *testing.T, c compress.Codec) {
	t.Helper()
	src := corpus.Generate(corpus.Moderate, 8192, 11)
	comp := c.Compress(nil, src)
	rnd := rand.New(rand.NewSource(99))

	decode := func(name string, data []byte, size int) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: decoder panicked: %v", name, r)
			}
		}()
		_, _ = c.Decompress(nil, data, size)
	}

	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), comp...)
		switch trial % 4 {
		case 0: // flip a random byte
			if len(mut) > 0 {
				mut[rnd.Intn(len(mut))] ^= byte(1 + rnd.Intn(255))
			}
		case 1: // truncate
			mut = mut[:rnd.Intn(len(mut)+1)]
		case 2: // random garbage
			mut = make([]byte, rnd.Intn(512))
			rnd.Read(mut)
		case 3: // extend with garbage
			extra := make([]byte, 1+rnd.Intn(64))
			rnd.Read(extra)
			mut = append(mut, extra...)
		}
		decode(fmt.Sprintf("trial-%d", trial), mut, len(src))
		decode(fmt.Sprintf("trial-%d-wrongsize", trial), mut, rnd.Intn(2*len(src)))
	}
	// Declared-size lies on valid input must not panic either.
	decode("valid-short-size", comp, len(src)/2)
	decode("valid-long-size", comp, len(src)*2)
	decode("valid-zero-size", comp, 0)
	decode("valid-negative-size", comp, -1)
}

// AdversarialInputs asserts the decoder's contract on hostile input:
//
//   - zero-length input with a positive declared size must error;
//   - truncated input (anywhere up to the final quarter) must error;
//   - bit-flipped input must error or return exactly the declared length
//     (codecs without internal redundancy — the identity codec — cannot
//     detect flips; the stream layer's per-block CRC rejects the garbage);
//   - every error wraps compress.ErrCorrupt;
//   - the decoder never panics and never allocates an output buffer beyond
//     a small multiple of the declared raw length, no matter what the
//     corrupt bytes claim.
func AdversarialInputs(t *testing.T, c compress.Codec) {
	t.Helper()
	src := corpus.Generate(corpus.Moderate, 8192, 17)
	comp := c.Compress(nil, src)
	decl := len(src)

	decode := func(t *testing.T, name string, data []byte) ([]byte, error) {
		t.Helper()
		var out []byte
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: decoder panicked: %v", name, r)
				}
			}()
			out, err = c.Decompress(nil, data, decl)
		}()
		if cap(out) > 2*decl+4096 {
			t.Fatalf("%s: decoder allocated cap %d for declared length %d", name, cap(out), decl)
		}
		if err != nil && !errors.Is(err, compress.ErrCorrupt) {
			t.Fatalf("%s: error does not wrap compress.ErrCorrupt: %v", name, err)
		}
		return out, err
	}

	t.Run("zero-length", func(t *testing.T) {
		for _, data := range [][]byte{nil, {}} {
			if _, err := decode(t, "empty", data); err == nil {
				t.Fatal("zero-length input with positive declared size decoded without error")
			}
		}
	})

	t.Run("truncated", func(t *testing.T) {
		// Deep cuts must error outright. A cut inside the final quarter may
		// leave enough stream to reproduce the declared length (range-coder
		// tails are partially redundant), so there the contract relaxes to
		// the bit-flip rule below.
		for _, quarter := range []int{1, 2, 3} {
			cut := len(comp) * quarter / 4
			if _, err := decode(t, fmt.Sprintf("cut-%d/4", quarter), comp[:cut]); err == nil {
				t.Fatalf("input truncated at %d/%d decoded without error", cut, len(comp))
			}
		}
		out, err := decode(t, "cut-last-byte", comp[:len(comp)-1])
		if err == nil && len(out) != decl {
			t.Fatalf("near-end truncation: no error and wrong length %d (declared %d)", len(out), decl)
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		rnd := rand.New(rand.NewSource(4242))
		for trial := 0; trial < 128; trial++ {
			mut := append([]byte(nil), comp...)
			mut[rnd.Intn(len(mut))] ^= 1 << rnd.Intn(8)
			out, err := decode(t, fmt.Sprintf("flip-%d", trial), mut)
			if err == nil && len(out) != decl {
				t.Fatalf("trial %d: silent success with wrong length %d (declared %d)", trial, len(out), decl)
			}
		}
	})
}

// Deterministic asserts that compressing the same input twice yields
// identical output (required for reproducible experiment runs).
func Deterministic(t *testing.T, c compress.Codec) {
	t.Helper()
	src := corpus.Generate(corpus.High, 64<<10, 5)
	a := c.Compress(nil, src)
	b := c.Compress(nil, src)
	if !bytes.Equal(a, b) {
		t.Fatal("compression is not deterministic")
	}
}

// Ratio compresses one canonical corpus file in 128 KB blocks and returns
// compressedBytes / originalBytes.
func Ratio(c compress.Codec, kind corpus.Kind) float64 {
	file := corpus.GenerateFile(kind, 1)
	const block = 128 << 10
	var compTotal int
	for off := 0; off < len(file); off += block {
		end := off + block
		if end > len(file) {
			end = len(file)
		}
		compTotal += len(c.Compress(nil, file[off:end]))
	}
	return float64(compTotal) / float64(len(file))
}

// All runs the complete conformance battery.
func All(t *testing.T, c compress.Codec) {
	t.Helper()
	t.Run("RoundTrip", func(t *testing.T) { RoundTrip(t, c) })
	t.Run("RoundTripAppend", func(t *testing.T) { RoundTripAppend(t, c) })
	t.Run("QuickRoundTrip", func(t *testing.T) { QuickRoundTrip(t, c) })
	t.Run("QuickRoundTripStructured", func(t *testing.T) { QuickRoundTripStructured(t, c) })
	t.Run("CorpusRoundTrip", func(t *testing.T) { CorpusRoundTrip(t, c) })
	t.Run("CorruptionRobustness", func(t *testing.T) { CorruptionRobustness(t, c) })
	t.Run("AdversarialInputs", func(t *testing.T) { AdversarialInputs(t, c) })
	t.Run("Deterministic", func(t *testing.T) { Deterministic(t, c) })
}
