// Package probe implements a cheap entropy pre-probe that decides, before
// any codec runs, whether a block is worth compressing at all.
//
// The probe samples a few KB spread across the block and applies two tests
// in order:
//
//  1. A byte-histogram Shannon-entropy gate. Sampled entropy at or below
//     Config.EntropyBits means the block is plainly compressible (text,
//     sparse binary, logs) and the probe accepts immediately.
//  2. A miniature LZ match probe over the same sample. High sampled entropy
//     alone cannot condemn a block: JPEG-style entropy-coded streams sit at
//     ~7.9 bits/byte yet still hold a few percent of short repeats (marker
//     stuffing, zero-coefficient runs) that the real codecs exploit. The
//     match probe hashes every 4-byte window in the sample and counts how
//     often a window recurs; a hit rate at or above Config.MinHitRate keeps
//     the block on the compression path.
//
// Only blocks that fail both tests — near-uniform byte distribution and no
// recurring 4-byte windows, i.e. already-compressed or encrypted payloads —
// are declared hopeless and sent straight to stored-raw framing, skipping
// the full compression cost.
//
// The probe reads O(sample) bytes and allocates nothing; Hopeless is safe
// for concurrent use. Probing a 128 KB block costs roughly 2 % of one
// lzfast compression pass over the same block.
package probe

import (
	"encoding/binary"
	"math"
)

// Config tunes the probe. The zero value is NOT valid; start from Default
// (or Disabled) and override fields as needed.
type Config struct {
	// Disabled turns the probe off entirely: Hopeless always reports
	// false and every block proceeds to the codec.
	Disabled bool

	// MinLen is the smallest block the probe will judge. Shorter blocks
	// are always kept: the sample would be most of the block anyway, and
	// the compression cost being saved is small.
	MinLen int

	// Chunks and ChunkBytes shape the sample: Chunks windows of
	// ChunkBytes each, spread evenly across the block so that a block
	// with mixed regions (e.g. text followed by an embedded image) is
	// seen in every region.
	Chunks     int
	ChunkBytes int

	// EntropyBits is the sampled Shannon-entropy threshold (bits/byte)
	// at or below which a block is accepted without the match probe.
	EntropyBits float64

	// MinHitRate is the minimum fraction of sampled 4-byte windows that
	// must recur for a high-entropy block to stay on the compression
	// path. Uniform random data measures ~0 here; JPEG-like entropy
	// streams measure several percent.
	MinHitRate float64
}

// Default returns the production configuration, calibrated against the
// repo's corpus kinds (internal/corpus): High (~0.6 bits/byte) and
// Moderate (~4.1) pass the entropy gate; Low (~7.9, JPEG-like) fails it
// but is rescued by the match probe (hit rate well above MinHitRate);
// uniform random and already-compressed payloads fail both and are
// skipped.
func Default() Config {
	return Config{
		MinLen:      4096,
		Chunks:      4,
		ChunkBytes:  1024,
		EntropyBits: 7.2,
		MinHitRate:  0.02,
	}
}

// Disabled returns a configuration whose Hopeless method always reports
// false, keeping every block on the compression path.
func Disabled() Config { return Config{Disabled: true} }

// valid reports whether the sampling parameters are usable.
func (c Config) valid() bool {
	return c.Chunks > 0 && c.ChunkBytes >= 8
}

// Hopeless reports whether src is judged incompressible: true means the
// caller should skip compression and frame the block stored-raw. It never
// returns true for blocks shorter than MinLen or when the probe is
// disabled or misconfigured.
func (c Config) Hopeless(src []byte) bool {
	if c.Disabled || !c.valid() || len(src) < c.MinLen {
		return false
	}
	sampleLen := c.Chunks * c.ChunkBytes
	if sampleLen >= len(src) {
		// Degenerate sampling: judge the whole block as one chunk.
		return c.entropy(src) > c.EntropyBits && c.hitRate(src) < c.MinHitRate
	}
	if c.sampledEntropy(src) <= c.EntropyBits {
		return false
	}
	return c.sampledHitRate(src) < c.MinHitRate
}

// chunk returns the i-th sample window of src (i in [0, Chunks)), spread
// evenly so chunk 0 starts at the block head and the last chunk ends at
// the block tail.
func (c Config) chunk(src []byte, i int) []byte {
	span := len(src) - c.ChunkBytes
	var off int
	if c.Chunks > 1 {
		off = span * i / (c.Chunks - 1)
	}
	return src[off : off+c.ChunkBytes]
}

// sampledEntropy folds all sample windows into one byte histogram and
// returns its Shannon entropy in bits per byte.
func (c Config) sampledEntropy(src []byte) float64 {
	var hist [256]uint32
	total := 0
	for i := 0; i < c.Chunks; i++ {
		for _, b := range c.chunk(src, i) {
			hist[b]++
		}
		total += c.ChunkBytes
	}
	return histEntropy(&hist, total)
}

// entropy is the degenerate-case variant over the whole block.
func (c Config) entropy(src []byte) float64 {
	var hist [256]uint32
	for _, b := range src {
		hist[b]++
	}
	return histEntropy(&hist, len(src))
}

func histEntropy(hist *[256]uint32, total int) float64 {
	if total == 0 {
		return 0
	}
	inv := 1 / float64(total)
	e := 0.0
	for _, n := range hist {
		if n == 0 {
			continue
		}
		p := float64(n) * inv
		e -= p * math.Log2(p)
	}
	return e
}

// probeHashLog sizes the match probe's table: 4096 slots comfortably
// covers a 1 KB chunk's distinct 4-byte windows.
const probeHashLog = 12

// sampledHitRate averages the per-chunk 4-byte recurrence rate. Each
// chunk is probed independently so a "match" never spans two sample
// windows that are far apart in the real block.
func (c Config) sampledHitRate(src []byte) float64 {
	hits, positions := 0, 0
	for i := 0; i < c.Chunks; i++ {
		h, p := chunkHits(c.chunk(src, i))
		hits += h
		positions += p
	}
	if positions == 0 {
		return 0
	}
	return float64(hits) / float64(positions)
}

// hitRate is the degenerate-case variant over the whole block.
func (c Config) hitRate(src []byte) float64 {
	h, p := chunkHits(src)
	if p == 0 {
		return 0
	}
	return float64(h) / float64(p)
}

// chunkHits counts sampled positions whose 4-byte window exactly matches
// an earlier window in the same chunk (single-probe hash table, so the
// count is a floor — collisions only ever hide matches, never invent
// them).
func chunkHits(chunk []byte) (hits, positions int) {
	var table [1 << probeHashLog]uint16
	for pos := 0; pos+4 <= len(chunk); pos++ {
		u := binary.LittleEndian.Uint32(chunk[pos:])
		h := (u * 2654435761) >> (32 - probeHashLog)
		if prev := table[h]; prev != 0 && binary.LittleEndian.Uint32(chunk[prev-1:]) == u {
			hits++
		}
		table[h] = uint16(pos + 1)
		positions++
	}
	return hits, positions
}
