package probe_test

import (
	"bytes"
	"testing"

	"adaptio/internal/compress/lzfast"
	"adaptio/internal/compress/lzheavy"
	"adaptio/internal/compress/probe"
	"adaptio/internal/corpus"
)

const blockLen = 128 << 10

// xorshift mirrors the corpus generator's RNG so the "uniform random"
// class is deterministic without importing math/rand.
func uniformRandom(n int, seed uint64) []byte {
	state := seed ^ 0x9E3779B97F4A7C15
	out := make([]byte, n)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = byte(state >> 32)
	}
	return out
}

// TestProbeDecisions is the table-driven decision matrix: every corpus
// kind must stay on the compression path — including Low, whose sampled
// entropy (~7.9 bits/byte) is indistinguishable from random but whose
// marker-stuffing repeats the match probe must find — while uniform
// random and already-compressed payloads must be skipped.
func TestProbeDecisions(t *testing.T) {
	cfg := probe.Default()

	heavyCompressed := lzheavy.Codec{}.Compress(nil, corpus.Generate(corpus.Moderate, blockLen, 7))
	if len(heavyCompressed) < cfg.MinLen {
		t.Fatalf("setup: lzheavy output too short to probe: %d bytes", len(heavyCompressed))
	}

	cases := []struct {
		name     string
		data     []byte
		hopeless bool
	}{
		{"corpus-high", corpus.Generate(corpus.High, blockLen, 1), false},
		{"corpus-moderate", corpus.Generate(corpus.Moderate, blockLen, 2), false},
		{"corpus-low", corpus.Generate(corpus.Low, blockLen, 3), false},
		{"uniform-random", uniformRandom(blockLen, 4), true},
		{"lzheavy-output", heavyCompressed, true},
		{"zeros", make([]byte, blockLen), false},
		{"short-random", uniformRandom(cfg.MinLen-1, 5), false}, // below MinLen: always kept
		{"empty", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cfg.Hopeless(tc.data); got != tc.hopeless {
				t.Errorf("Hopeless(%s) = %v, want %v", tc.name, got, tc.hopeless)
			}
		})
	}
}

// TestProbeDecisionsAcrossSeeds guards the calibration margins: the
// decisions above must hold for every seed, not just the ones in the
// table.
func TestProbeDecisionsAcrossSeeds(t *testing.T) {
	cfg := probe.Default()
	for seed := uint64(1); seed <= 16; seed++ {
		for _, kind := range corpus.Kinds() {
			if cfg.Hopeless(corpus.Generate(kind, blockLen, seed)) {
				t.Errorf("seed %d: corpus %v judged hopeless; must stay on the compression path", seed, kind)
			}
		}
		if !cfg.Hopeless(uniformRandom(blockLen, seed)) {
			t.Errorf("seed %d: uniform random judged compressible", seed)
		}
	}
}

// TestDisabledAndDegenerateConfigs: a disabled or misconfigured probe
// must never skip anything.
func TestDisabledAndDegenerateConfigs(t *testing.T) {
	rnd := uniformRandom(blockLen, 9)
	if probe.Disabled().Hopeless(rnd) {
		t.Error("disabled probe skipped a block")
	}
	var zero probe.Config
	if zero.Hopeless(rnd) {
		t.Error("zero-value (invalid) config skipped a block")
	}
	// Degenerate sampling: sample window at least as large as the block.
	small := probe.Default()
	small.MinLen = 64
	if !small.Hopeless(uniformRandom(1024, 10)) {
		t.Error("degenerate whole-block probe kept uniform random")
	}
	if small.Hopeless(bytes.Repeat([]byte("adaptive compression "), 64)) {
		t.Error("degenerate whole-block probe skipped compressible text")
	}
}

// TestSkippedBlocksAreTrulyIncompressible cross-checks the probe against
// the real codecs: anything the probe skips must be data lzfast could
// not have shrunk by more than a few percent anyway, so no meaningful
// ratio is ever left on the table.
func TestSkippedBlocksAreTrulyIncompressible(t *testing.T) {
	cfg := probe.Default()
	fast := lzfast.Fast{}
	for seed := uint64(1); seed <= 8; seed++ {
		data := uniformRandom(blockLen, seed)
		if !cfg.Hopeless(data) {
			continue
		}
		comp := fast.Compress(nil, data)
		if ratio := float64(len(comp)) / float64(len(data)); ratio < 0.98 {
			t.Errorf("seed %d: probe skipped a block lzfast compresses to %.3f", seed, ratio)
		}
	}
}

func BenchmarkProbe(b *testing.B) {
	cfg := probe.Default()
	for _, kind := range corpus.Kinds() {
		data := corpus.Generate(kind, blockLen, 1)
		b.Run(kind.String(), func(b *testing.B) {
			b.SetBytes(blockLen)
			for i := 0; i < b.N; i++ {
				cfg.Hopeless(data)
			}
		})
	}
	rnd := uniformRandom(blockLen, 1)
	b.Run("random", func(b *testing.B) {
		b.SetBytes(blockLen)
		for i := 0; i < b.N; i++ {
			cfg.Hopeless(rnd)
		}
	})
}
