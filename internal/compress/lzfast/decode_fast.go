package lzfast

// This file holds the production block decoder: an LZ4-style fast loop that
// decodes into a pre-extended output window instead of the reference
// decoder's per-byte appends. The token grammar is unchanged —
// decompressBlockRef in lzfast.go remains the executable specification, and
// the differential tests (TestDecompressDifferential, FuzzDecompressFast)
// pin this decoder to it: identical output on every valid block, agreement
// on accept/reject for every malformed one.
//
// Copy strategy per sequence:
//
//   - short runs (<= wildCopyShort bytes) take a branchless pair of 16-byte
//     "wild" copies that may overshoot the exact length — this is where the
//     decode time of match-dense corpora goes;
//   - long runs take a single exact copy (one memmove), which beats a
//     strided chunk loop on multi-KB literal runs of high-entropy data;
//   - overlapping matches (offset < mlen) take expandCopy, which doubles
//     the replicated region in O(log(mlen/offset)) memmoves instead of a
//     byte-at-a-time loop.
//
// # Safety-margin invariants
//
// A wild pair writes exactly wildCopyShort bytes from the write frontier d
// (and reads wildCopyShort bytes from its source), overshooting the true
// length by up to wildCopyShort-1 bytes. It is only taken when the
// overshoot provably stays inside the buffers:
//
//   - literal wild copy: s+wildCopyShort <= len(src) (source overread) and
//     d+wildCopyShort <= size (destination overwrite);
//   - match wild copy: additionally offset >= wildCopyMargin, so the first
//     chunk's source lies entirely behind the write frontier (fully
//     decoded); the second chunk may read the first chunk's output, which
//     is already final;
//   - overshoot bytes are garbage but always lie at or ahead of the write
//     frontier d, and the final length check (d == size) guarantees every
//     byte of the window is overwritten by a later sequence or was exact.
//
// Sequences that cannot respect the margin — near the block or input tail —
// fall back to exact copies, so no byte outside dst[start:start+size] is
// ever touched.

import "encoding/binary"

const (
	// wildCopyMargin is the chunk size of copy16; a match wild copy
	// requires offset >= wildCopyMargin so chunk sources are decoded.
	wildCopyMargin = 16
	// wildCopyShort is the run-length cutoff for the wild-copy pair; it
	// is also exactly how many bytes a wild pair writes.
	wildCopyShort = 32
)

// copy16 copies exactly 16 bytes as two 8-byte loads/stores.
func copy16(dst, src []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], binary.LittleEndian.Uint64(src[0:8]))
	binary.LittleEndian.PutUint64(dst[8:16], binary.LittleEndian.Uint64(src[8:16]))
}

// expandCopy replicates the offset-periodic pattern ending at buf[d] over
// buf[d:d+mlen] for an overlapping match (offset < mlen): it copies the
// first period exactly, then doubles the replicated region, capping every
// copy at mlen. No overshoot, so it needs no margin.
func expandCopy(buf []byte, d, offset, mlen int) {
	copy(buf[d:d+offset], buf[d-offset:d])
	for n := offset; n < mlen; n *= 2 {
		copy(buf[d+n:d+mlen], buf[d:d+n])
	}
}

// decompressBlock decodes one block, appending to dst. It accepts exactly
// the blocks decompressBlockRef accepts and produces identical bytes; only
// the copy strategy differs.
func decompressBlock(dst, src []byte, decompressedSize int) ([]byte, error) {
	if decompressedSize < 0 {
		return dst, corrupt("negative declared size %d", decompressedSize)
	}
	start := len(dst)
	if cap(dst)-start < decompressedSize {
		grown := make([]byte, start, start+decompressedSize)
		copy(grown, dst)
		dst = grown
	}
	// out is the full output window; d is the write frontier within it.
	out := dst[start : start+decompressedSize]
	d := 0
	s := 0
	for s < len(src) {
		token := src[s]
		s++
		litLen := int(token >> 4)
		if litLen == 15 {
			ext, n, err := readExtLength(src, s)
			if err != nil {
				return dst[:start+d], err
			}
			litLen += ext
			s += n
		}
		if s+litLen > len(src) {
			return dst[:start+d], corrupt("literal run of %d overruns input", litLen)
		}
		if d+litLen > decompressedSize {
			return dst[:start+d], corrupt("output exceeds declared size %d", decompressedSize)
		}
		if litLen > 0 {
			if litLen <= wildCopyShort && s+wildCopyShort <= len(src) && d+wildCopyShort <= decompressedSize {
				copy16(out[d:], src[s:])
				copy16(out[d+16:], src[s+16:])
			} else {
				copy(out[d:d+litLen], src[s:s+litLen])
			}
			d += litLen
			s += litLen
		}
		if s == len(src) {
			break // final literals-only sequence
		}
		if s+2 > len(src) {
			return dst[:start+d], corrupt("truncated match offset")
		}
		offset := int(src[s]) | int(src[s+1])<<8
		s += 2
		if offset == 0 {
			return dst[:start+d], corrupt("zero match offset")
		}
		mlen := int(token & 0x0f)
		if mlen == 15 {
			ext, n, err := readExtLength(src, s)
			if err != nil {
				return dst[:start+d], err
			}
			mlen += ext
			s += n
		}
		mlen += minMatch
		if offset > d {
			return dst[:start+d], corrupt("match offset %d exceeds produced bytes %d", offset, d)
		}
		if d+mlen > decompressedSize {
			return dst[:start+d], corrupt("match output exceeds declared size %d", decompressedSize)
		}
		if offset >= mlen {
			// Non-overlapping match.
			if mlen <= wildCopyShort && offset >= wildCopyMargin && d+wildCopyShort <= decompressedSize {
				copy16(out[d:], out[d-offset:])
				copy16(out[d+16:], out[d-offset+16:])
			} else {
				copy(out[d:d+mlen], out[d-offset:d-offset+mlen])
			}
		} else {
			// Overlapping match (offset==1 is the RLE case).
			expandCopy(out, d, offset, mlen)
		}
		d += mlen
	}
	if d != decompressedSize {
		return dst[:start+d], corrupt("decoded %d bytes, declared %d", d, decompressedSize)
	}
	return dst[:start+decompressedSize], nil
}
