package lzfast

// This file holds the production block decoder: an LZ4-style fast loop that
// decodes into a pre-extended output window instead of the reference
// decoder's per-byte appends. The token grammar is unchanged —
// decompressBlockRef in lzfast.go remains the executable specification, and
// the differential tests (TestDecompressDifferential, FuzzDecompressFast)
// pin this decoder to it: identical output on every valid block, agreement
// on accept/reject for every malformed one.
//
// Copy strategy per sequence:
//
//   - short runs (<= wildCopyShort bytes) take a branchless pair of 16-byte
//     "wild" copies that may overshoot the exact length — this is where the
//     decode time of match-dense corpora goes;
//   - long runs take a single exact copy (one memmove), which beats a
//     strided chunk loop on multi-KB literal runs of high-entropy data;
//   - overlapping matches (offset < mlen) take expandCopy, which doubles
//     the replicated region in O(log(mlen/offset)) memmoves instead of a
//     byte-at-a-time loop.
//
// # Safety-margin invariants
//
// A wild pair writes exactly wildCopyShort bytes from the write frontier d
// (and reads wildCopyShort bytes from its source), overshooting the true
// length by up to wildCopyShort-1 bytes. It is only taken when the
// overshoot provably stays inside the buffers:
//
//   - literal wild copy: s+wildCopyShort <= len(src) (source overread) and
//     d+wildCopyShort <= size (destination overwrite);
//   - match wild copy: additionally offset >= wildCopyMargin, so the first
//     chunk's source lies entirely behind the write frontier (fully
//     decoded); the second chunk may read the first chunk's output, which
//     is already final;
//   - overshoot bytes are garbage but always lie at or ahead of the write
//     frontier d, and the final length check (d == size) guarantees every
//     byte of the window is overwritten by a later sequence or was exact.
//
// Sequences that cannot respect the margin — near the block or input tail —
// fall back to exact copies, so no byte outside dst[start:start+size] is
// ever touched.

const (
	// wildCopyMargin is the chunk size of kcopy16; a match wild copy
	// requires offset >= wildCopyMargin so chunk sources are decoded.
	wildCopyMargin = 16
	// wildCopyShort is the run-length cutoff for the wild-copy pair; it
	// is also exactly how many bytes a wild pair writes.
	wildCopyShort = 32
)

// expandCopy replicates the offset-periodic pattern ending at buf[d] over
// buf[d:d+mlen] for an overlapping match (offset < mlen): it copies the
// first period exactly, then doubles the replicated region, capping every
// copy at mlen. No overshoot, so it needs no margin.
func expandCopy(buf []byte, d, offset, mlen int) {
	copy(buf[d:d+offset], buf[d-offset:d])
	for n := offset; n < mlen; n *= 2 {
		copy(buf[d+n:d+mlen], buf[d:d+n])
	}
}

// decompressBlock decodes one block, appending to dst. It accepts exactly
// the blocks decompressBlockRef accepts and produces identical bytes; only
// the copy strategy differs.
func decompressBlock(dst, src []byte, decompressedSize int) ([]byte, error) {
	if decompressedSize < 0 {
		return dst, corrupt("negative declared size %d", decompressedSize)
	}
	start := len(dst)
	if cap(dst)-start < decompressedSize {
		grown := make([]byte, start, start+decompressedSize)
		copy(grown, dst)
		dst = grown
	}
	// out is the full output window; d is the write frontier within it.
	out := dst[start : start+decompressedSize]
	d := 0
	s := 0
	for s < len(src) {
		token := src[s]
		s++
		litLen := int(token >> 4)
		if litLen == 15 {
			// Single-byte extension is the overwhelmingly common case
			// (runs of 15..269 literals); keep it inline and leave the
			// 255-chain to readExtLength.
			if s < len(src) && src[s] < 255 {
				litLen += int(src[s])
				s++
			} else {
				ext, n, err := readExtLength(src, s)
				if err != nil {
					return dst[:start+d], err
				}
				litLen += ext
				s += n
			}
		} else if s+wildCopyMargin+2 <= len(src) && d+wildCopyShort <= decompressedSize {
			// Shortcut: a short literal run (<= 14 bytes, no extension)
			// with a full wild-copy margin on both sides. One 16-byte
			// copy covers the run, and the margins prove every generic
			// check below (input overrun, output overrun, final
			// sequence) false, so jump straight to the match.
			kcopy16(out[d:], src[s:])
			s += litLen
			d += litLen
			goto match
		}
		if s+litLen > len(src) {
			return dst[:start+d], corrupt("literal run of %d overruns input", litLen)
		}
		if d+litLen > decompressedSize {
			return dst[:start+d], corrupt("output exceeds declared size %d", decompressedSize)
		}
		if litLen > 0 {
			if litLen <= wildCopyShort && s+wildCopyShort <= len(src) && d+wildCopyShort <= decompressedSize {
				kcopy16(out[d:], src[s:])
				if litLen > wildCopyMargin {
					kcopy16(out[d+16:], src[s+16:])
				}
			} else {
				copy(out[d:d+litLen], src[s:s+litLen])
			}
			d += litLen
			s += litLen
		}
		if s == len(src) {
			break // final literals-only sequence
		}
		if s+2 > len(src) {
			return dst[:start+d], corrupt("truncated match offset")
		}
	match:
		offset := int(src[s]) | int(src[s+1])<<8
		s += 2
		if offset == 0 {
			return dst[:start+d], corrupt("zero match offset")
		}
		mlen := int(token & 0x0f)
		if mlen == 15 {
			if s < len(src) && src[s] < 255 {
				mlen += int(src[s])
				s++
			} else {
				ext, n, err := readExtLength(src, s)
				if err != nil {
					return dst[:start+d], err
				}
				mlen += ext
				s += n
			}
		}
		mlen += minMatch
		if offset > d {
			return dst[:start+d], corrupt("match offset %d exceeds produced bytes %d", offset, d)
		}
		if d+mlen > decompressedSize {
			return dst[:start+d], corrupt("match output exceeds declared size %d", decompressedSize)
		}
		if offset >= mlen {
			// Non-overlapping match.
			if mlen <= wildCopyShort && offset >= wildCopyMargin && d+wildCopyShort <= decompressedSize {
				kcopy16(out[d:], out[d-offset:])
				if mlen > wildCopyMargin {
					kcopy16(out[d+16:], out[d-offset+16:])
				}
			} else {
				copy(out[d:d+mlen], out[d-offset:d-offset+mlen])
			}
		} else if mlen <= 2*wildCopyMargin {
			// Short overlapping match (the dominant shape on barely
			// compressible data: offsets 1..7, lengths 4..8). A plain
			// byte loop beats expandCopy's memmove calls at these sizes.
			koverlapCopy(out, d, offset, mlen)
		} else {
			// Long overlapping match (offset==1 is the RLE case).
			expandCopy(out, d, offset, mlen)
		}
		d += mlen
	}
	if d != decompressedSize {
		return dst[:start+d], corrupt("decoded %d bytes, declared %d", d, decompressedSize)
	}
	return dst[:start+decompressedSize], nil
}
