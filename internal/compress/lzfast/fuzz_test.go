package lzfast_test

import (
	"bytes"
	"testing"

	"adaptio/internal/compress/lzfast"
	"adaptio/internal/corpus"
)

func FuzzFastRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("abcabcabcabc"))
	f.Add(corpus.Generate(corpus.High, 4096, 1))
	f.Add(corpus.Generate(corpus.Low, 4096, 1))
	f.Add(bytes.Repeat([]byte{0}, 70000))
	f.Fuzz(func(t *testing.T, src []byte) {
		for _, c := range []interface {
			Compress(dst, src []byte) []byte
			Decompress(dst, src []byte, n int) ([]byte, error)
		}{lzfast.Fast{}, lzfast.HC{Depth: 8}} {
			comp := c.Compress(nil, src)
			out, err := c.Decompress(nil, comp, len(src))
			if err != nil {
				t.Fatalf("decompress own output: %v", err)
			}
			if !bytes.Equal(out, src) {
				t.Fatal("round trip mismatch")
			}
		}
	})
}

func FuzzFastDecompressArbitrary(f *testing.F) {
	f.Add([]byte{0x00}, 10)
	f.Add([]byte{0xF0, 1, 2, 3}, 4)
	f.Add(lzfast.Fast{}.Compress(nil, []byte("seed data for the fuzzer")), 24)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<20 {
			size %= 1 << 20
			if size < 0 {
				size = -size
			}
		}
		// Must never panic; errors and garbage output are fine (the
		// stream layer's CRC rejects garbage).
		_, _ = lzfast.Fast{}.Decompress(nil, data, size)
	})
}
