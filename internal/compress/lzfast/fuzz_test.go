package lzfast_test

import (
	"bytes"
	"testing"

	"adaptio/internal/compress/lzfast"
	"adaptio/internal/corpus"
)

func FuzzFastRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("abcabcabcabc"))
	f.Add(corpus.Generate(corpus.High, 4096, 1))
	f.Add(corpus.Generate(corpus.Low, 4096, 1))
	f.Add(bytes.Repeat([]byte{0}, 70000))
	f.Fuzz(func(t *testing.T, src []byte) {
		for _, c := range []interface {
			Compress(dst, src []byte) []byte
			Decompress(dst, src []byte, n int) ([]byte, error)
		}{lzfast.Fast{}, lzfast.HC{Depth: 8}} {
			comp := c.Compress(nil, src)
			out, err := c.Decompress(nil, comp, len(src))
			if err != nil {
				t.Fatalf("decompress own output: %v", err)
			}
			if !bytes.Equal(out, src) {
				t.Fatal("round trip mismatch")
			}
		}
	})
}

// FuzzDecompressFast differentially fuzzes the production fast-path decoder
// against the reference decoder: any input where they disagree on
// acceptance, or accept with different output, is a bug. The seeds (also
// committed under testdata/fuzz/FuzzDecompressFast) straddle the
// fast/careful path boundary: sequences ending exactly at the wild-copy
// safety margin, max-extension length runs, and offset==1 RLE.
func FuzzDecompressFast(f *testing.F) {
	// A match ending exactly 32 bytes (one wild pair) before the block
	// end, followed by final literals filling the margin — and the same
	// block with the boundary shifted by one either way.
	pattern := bytes.Repeat([]byte("abcdefgh"), 16)
	tail := corpus.Generate(corpus.Low, 33, 9)
	for i := 31; i <= 33; i++ {
		src := append(append([]byte(nil), pattern...), tail[:i]...)
		f.Add(lzfast.Fast{}.Compress(nil, src), len(src))
	}
	// offset==1 RLE with a maximal extension run.
	zeros := make([]byte, 70000)
	f.Add(lzfast.Fast{}.Compress(nil, zeros), len(zeros))
	// One giant literal run (incompressible input): extension bytes of
	// 255 on the literal side.
	noise := corpus.Generate(corpus.Low, 4096, 11)
	f.Add(lzfast.Fast{}.Compress(nil, noise), len(noise))
	// Truncated and size-skewed variants so error paths seed too.
	rle := lzfast.Fast{}.Compress(nil, zeros)
	f.Add(rle[:len(rle)-3], len(zeros))
	f.Add(rle, len(zeros)-1)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<20 {
			size %= 1 << 20
			if size < 0 {
				size = -size
			}
		}
		refOut, refErr := lzfast.DecompressRef(nil, data, size)
		fastOut, fastErr := lzfast.DecompressFast(nil, data, size)
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("acceptance diverges: ref err=%v, fast err=%v", refErr, fastErr)
		}
		if refErr == nil && !bytes.Equal(refOut, fastOut) {
			t.Fatal("decoded output diverges")
		}
	})
}

// FuzzCompressFastUnsafe differentially fuzzes the production fast-mode
// encoder against the reference encoder: on every input the two must
// produce byte-identical compressed output, and the reference decoder must
// round-trip it. Under the default build this pins the unsafe kernel tier
// to the portable reference primitives; under -tags purego (the nightly
// fuzz matrix runs both) it pins the frontier-based emit machinery alone.
// The committed seeds (testdata/fuzz/FuzzCompressFastUnsafe) straddle the
// encoder's boundaries: the 8-byte hash-load scan limit, the 16-byte
// wild-copy margin, the tiny-overlap decline window, and the 16-bit offset
// horizon.
func FuzzCompressFastUnsafe(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("12345678"))  // exactly one scan position
	f.Add([]byte("123456789")) // one byte past it
	f.Add(bytes.Repeat([]byte("ab"), 40))
	f.Add(corpus.Generate(corpus.Moderate, 4096, 2))
	f.Fuzz(func(t *testing.T, src []byte) {
		ref := lzfast.CompressFastRef(nil, src)
		fast := lzfast.CompressFast(nil, src)
		if !bytes.Equal(ref, fast) {
			t.Fatalf("encoder outputs diverge (%s tier): ref %d bytes, fast %d bytes",
				lzfast.KernelName, len(ref), len(fast))
		}
		out, err := lzfast.DecompressRef(nil, fast, len(src))
		if err != nil {
			t.Fatalf("reference decoder rejects encoder output: %v", err)
		}
		if !bytes.Equal(out, src) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzFastDecompressArbitrary(f *testing.F) {
	f.Add([]byte{0x00}, 10)
	f.Add([]byte{0xF0, 1, 2, 3}, 4)
	f.Add(lzfast.Fast{}.Compress(nil, []byte("seed data for the fuzzer")), 24)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<20 {
			size %= 1 << 20
			if size < 0 {
				size = -size
			}
		}
		// Must never panic; errors and garbage output are fine (the
		// stream layer's CRC rejects garbage).
		_, _ = lzfast.Fast{}.Decompress(nil, data, size)
	})
}
