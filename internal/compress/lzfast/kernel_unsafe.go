//go:build (amd64 || arm64) && !purego

package lzfast

// Unsafe kernel tier: raw-pointer 8/16-byte load-store primitives for the
// compression match loops and the decoder's wild copies. amd64 and arm64
// are little-endian and tolerate unaligned word access, so these primitives
// agree byte-for-byte with the binary.LittleEndian reference primitives in
// lzfast.go — they only drop the per-access slice bounds checks. The
// portable twin (kernel_portable.go, selected by the purego build tag or
// any other GOARCH) delegates to the reference primitives; the golden
// digest tests and FuzzCompressFastUnsafe pin both builds to identical
// compressed output.
//
// Every caller is responsible for bounds: a k-primitive reading or writing
// n bytes at index i requires i >= 0 and i+n <= len of the corresponding
// slice (kwildCopy callers must additionally honor its overshoot margin).

import (
	"math/bits"
	"unsafe"
)

// kernelName tells test logs which tier a build exercised.
const kernelName = "unsafe"

// kload32 returns the little-endian uint32 at b[i:i+4] without bounds
// checks.
func kload32(b []byte, i int) uint32 {
	return *(*uint32)(unsafe.Add(unsafe.Pointer(unsafe.SliceData(b)), i))
}

// kload64 returns the little-endian uint64 at b[i:i+8] without bounds
// checks.
func kload64(b []byte, i int) uint64 {
	return *(*uint64)(unsafe.Add(unsafe.Pointer(unsafe.SliceData(b)), i))
}

// kmatchLen is matchLen with the 8-byte-equal loop replaced by a single
// XOR + trailing-zero count: the first differing byte index inside a
// 64-bit window is TrailingZeros64(diff)/8 on little-endian, which is
// exactly where the reference's byte tail would have stopped.
func kmatchLen(src []byte, a, b int) int {
	n := 0
	limit := len(src) - b
	for n+8 <= limit {
		diff := kload64(src, a+n) ^ kload64(src, b+n)
		if diff != 0 {
			return n + bits.TrailingZeros64(diff)>>3
		}
		n += 8
	}
	for n < limit && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// kcopy16 copies exactly 16 bytes as two raw 8-byte load-stores.
func kcopy16(dst, src []byte) {
	d := unsafe.Pointer(unsafe.SliceData(dst))
	s := unsafe.Pointer(unsafe.SliceData(src))
	*(*uint64)(d) = *(*uint64)(s)
	*(*uint64)(unsafe.Add(d, 8)) = *(*uint64)(unsafe.Add(s, 8))
}

// kwildCopy copies n bytes from src to dst in 16-byte strides, writing up
// to wildCopyMargin-1 bytes past n. Callers guarantee both slices hold at
// least n rounded up to the next 16-byte multiple.
func kwildCopy(dst, src []byte, n int) {
	d := unsafe.Pointer(unsafe.SliceData(dst))
	s := unsafe.Pointer(unsafe.SliceData(src))
	for c := 0; c < n; c += 16 {
		*(*uint64)(unsafe.Add(d, c)) = *(*uint64)(unsafe.Add(s, c))
		*(*uint64)(unsafe.Add(d, c+8)) = *(*uint64)(unsafe.Add(s, c+8))
	}
}

// koverlapCopy replicates n bytes of the offset-periodic pattern ending at
// buf[d] onto buf[d:d+n], byte by byte so any offset >= 1 is legal.
// Callers guarantee d-offset >= 0 and d+n <= len(buf).
func koverlapCopy(buf []byte, d, offset, n int) {
	p := unsafe.Pointer(unsafe.SliceData(buf))
	for j := 0; j < n; j++ {
		*(*byte)(unsafe.Add(p, d+j)) = *(*byte)(unsafe.Add(p, d-offset+j))
	}
}
