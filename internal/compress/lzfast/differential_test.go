package lzfast_test

// Differential tests pinning the production fast-path decoder
// (decode_fast.go) to the retained reference decoder: on every input —
// valid blocks from both encoders over all corpus kinds and sizes, plus
// random truncation and corruption mutants — the two decoders must agree on
// accept/reject, and on accept produce byte-identical output. Error
// messages may differ; acceptance may not.

import (
	"bytes"
	"math/rand"
	"testing"

	"adaptio/internal/compress/lzfast"
	"adaptio/internal/corpus"
)

// diffCodecs are the encoder configurations whose output feeds the
// decoders under test.
var diffCodecs = []interface {
	Compress(dst, src []byte) []byte
	Name() string
}{
	lzfast.Fast{},
	lzfast.HC{},
	lzfast.HC{Depth: 4},
}

// checkDecodersAgree runs both decoders over one input and fails on any
// acceptance or output divergence.
func checkDecodersAgree(t *testing.T, comp []byte, size int) {
	t.Helper()
	refOut, refErr := lzfast.DecompressRef(nil, comp, size)
	fastOut, fastErr := lzfast.DecompressFast(nil, comp, size)
	if (refErr == nil) != (fastErr == nil) {
		t.Fatalf("decoder acceptance diverges for size %d: ref err=%v, fast err=%v", size, refErr, fastErr)
	}
	if refErr == nil && !bytes.Equal(refOut, fastOut) {
		t.Fatalf("decoder output diverges for size %d: ref %d bytes, fast %d bytes", size, len(refOut), len(fastOut))
	}
}

func TestDecompressDifferentialCorpus(t *testing.T) {
	kinds := []corpus.Kind{corpus.High, corpus.Moderate, corpus.Low}
	// Sizes probe both sides of the wild-copy margins: empty, shorter than
	// one chunk, exactly one chunk, around block boundaries.
	sizes := []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 1 << 12, 1 << 16, 128 << 10, (128 << 10) + 17}
	for _, c := range diffCodecs {
		for _, kind := range kinds {
			for _, n := range sizes {
				src := corpus.Generate(kind, n, 7)
				comp := c.Compress(nil, src)
				fastOut, err := lzfast.DecompressFast(nil, comp, n)
				if err != nil {
					t.Fatalf("%s/%s/%d: fast decoder rejected valid block: %v", c.Name(), kind, n, err)
				}
				if !bytes.Equal(fastOut, src) {
					t.Fatalf("%s/%s/%d: fast decoder round-trip mismatch", c.Name(), kind, n)
				}
				checkDecodersAgree(t, comp, n)
			}
		}
	}
}

func TestDecompressDifferentialMutants(t *testing.T) {
	rng := rand.New(rand.NewSource(2011))
	base := corpus.Generate(corpus.Moderate, 1<<14, 3)
	// An all-zero block exercises offset==1 RLE sequences with maximal
	// extension lengths.
	rle := make([]byte, 1<<14)
	for _, src := range [][]byte{base, rle} {
		for _, c := range diffCodecs {
			comp := c.Compress(nil, src)
			for trial := 0; trial < 400; trial++ {
				mut := append([]byte(nil), comp...)
				switch trial % 3 {
				case 0: // truncate at a random point
					mut = mut[:rng.Intn(len(mut)+1)]
				case 1: // flip a random byte
					mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
				default: // truncate and corrupt the new tail
					mut = mut[:1+rng.Intn(len(mut))]
					mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
				}
				// Also vary the declared size around the truth.
				size := len(src)
				switch trial % 5 {
				case 3:
					size = rng.Intn(len(src) + 1)
				case 4:
					size = len(src) + 1 + rng.Intn(64)
				}
				checkDecodersAgree(t, mut, size)
			}
		}
	}
}

// TestDecompressDifferentialAppend verifies both decoders agree when
// appending to a non-empty dst (the stream Reader's usage).
func TestDecompressDifferentialAppend(t *testing.T) {
	src := corpus.Generate(corpus.Moderate, 1<<12, 5)
	comp := lzfast.Fast{}.Compress(nil, src)
	prefix := []byte("prefix-already-present")
	refOut, refErr := lzfast.DecompressRef(append([]byte(nil), prefix...), comp, len(src))
	fastOut, fastErr := lzfast.DecompressFast(append([]byte(nil), prefix...), comp, len(src))
	if refErr != nil || fastErr != nil {
		t.Fatalf("unexpected errors: ref=%v fast=%v", refErr, fastErr)
	}
	if !bytes.Equal(refOut, fastOut) {
		t.Fatal("append-mode outputs diverge")
	}
	if !bytes.HasPrefix(fastOut, prefix) || !bytes.HasSuffix(fastOut, src) {
		t.Fatal("append-mode output does not preserve prefix + decoded block")
	}
}
