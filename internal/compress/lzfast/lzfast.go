// Package lzfast implements a from-scratch, byte-oriented LZ77 block
// compressor in the spirit of QuickLZ/LZ4: extremely fast greedy parsing with
// a small hash table, token-based output, 16-bit offsets.
//
// It stands in for the QuickLZ library used by the paper at compression
// levels LIGHT and MEDIUM (Section III-B): the same codec is exposed in two
// parameterizations, a greedy single-probe mode (Fast) and a hash-chain
// deep-search mode (HC) that trades speed for a better ratio, exactly as
// QuickLZ level 1 vs. level 3 do.
//
// # Wire format
//
// A compressed block is a sequence of "sequences". Each sequence is:
//
//	token    1 byte:  high nibble = literal length (15 = extended),
//	                  low nibble  = match length - 4 (15 = extended)
//	extLit   0+ bytes of 255, then one byte < 255 (only if literal nibble = 15)
//	literals litLen bytes copied verbatim
//	offset   2 bytes little endian, 1..65535 (absent in the final sequence)
//	extMatch 0+ bytes of 255, then one byte < 255 (only if match nibble = 15)
//
// The final sequence of a block consists of a token and literals only; the
// decoder detects it by reaching the end of the input after the literal copy.
// Matches always refer to previously decoded bytes of the same block, so
// blocks are fully self-contained.
package lzfast

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"adaptio/internal/compress"
	"adaptio/internal/compress/probe"
)

const (
	minMatch  = 4
	maxOffset = 65535

	// hashLog is the log2 size of the fast-mode hash table.
	hashLog = 12
	// hcHashLog is the log2 size of the hash-chain head table.
	hcHashLog = 16

	// tinyOverlapOffset: the fast parse refuses minimum-length matches
	// closer than this. A length-4 match at offset < 8 saves exactly one
	// byte of output but forces the decoder through a serialized
	// byte-at-a-time overlap copy; on barely-compressible (JPEG-like)
	// data these account for nearly half of all matches, so declining
	// them trades <1% of ratio for a major decode-throughput win.
	tinyOverlapOffset = 8
)

// defaultProbe is the entropy pre-probe consulted by the codecs' Compress
// methods when no override is set (see internal/compress/probe).
var defaultProbe = probe.Default()

// codecProbe resolves a codec's probe override.
func codecProbe(override *probe.Config) probe.Config {
	if override != nil {
		return *override
	}
	return defaultProbe
}

// Fast is the greedy single-probe parameterization (paper level LIGHT).
//
// Probe overrides the entropy pre-probe consulted before compressing a
// block: hopeless (incompressible) blocks are emitted as a single
// literals-only sequence without paying the match-loop cost. nil uses
// probe.Default(); set &probe.Disabled() to force full compression.
type Fast struct {
	Probe *probe.Config
}

// ID implements compress.Codec.
func (Fast) ID() uint8 { return compress.IDLZFast }

// Name implements compress.Codec.
func (Fast) Name() string { return "lzfast" }

// Compress implements compress.Codec.
func (f Fast) Compress(dst, src []byte) []byte {
	if codecProbe(f.Probe).Hopeless(src) {
		return emitSequence(dst, src, 0, 0)
	}
	return compressFast(dst, src)
}

// Decompress implements compress.Codec.
func (Fast) Decompress(dst, src []byte, decompressedSize int) ([]byte, error) {
	return decompressBlock(dst, src, decompressedSize)
}

// HC is the hash-chain deep-search parameterization (paper level MEDIUM).
// Depth bounds the number of candidate positions examined per input
// position; the zero value uses a default depth of 64. Probe is the same
// entropy pre-probe override as Fast.Probe.
type HC struct {
	Depth int
	Probe *probe.Config
}

// ID implements compress.Codec.
func (HC) ID() uint8 { return compress.IDLZFastH }

// Name implements compress.Codec.
func (HC) Name() string { return "lzfast-hc" }

// Compress implements compress.Codec.
func (h HC) Compress(dst, src []byte) []byte {
	if codecProbe(h.Probe).Hopeless(src) {
		return emitSequence(dst, src, 0, 0)
	}
	depth := h.Depth
	if depth <= 0 {
		depth = 64
	}
	return compressHC(dst, src, depth)
}

// Decompress implements compress.Codec.
func (HC) Decompress(dst, src []byte, decompressedSize int) ([]byte, error) {
	return decompressBlock(dst, src, decompressedSize)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

func load64(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[i:])
}

func hash4(u uint32, bits uint) uint32 {
	return (u * 2654435761) >> (32 - bits)
}

// hash5 keys the fast-mode table on the low 5 bytes of a little-endian
// 64-bit load (the same choice reference LZ4 makes on 64-bit hosts):
// prose-like data is dense with 4-byte-only matches whose emit overhead
// rivals the bytes they save, and a 5-byte key never surfaces them. The
// candidate check still verifies only 4 bytes, so a hash collision can
// still yield a legal minMatch match.
func hash5(u uint64, bits uint) uint32 {
	return uint32(((u << 24) * 889523592379) >> (64 - bits))
}

// matchLen returns the length of the common prefix of src[a:] and src[b:],
// with b > a, bounded by len(src)-b.
func matchLen(src []byte, a, b int) int {
	n := 0
	limit := len(src) - b
	for n+8 <= limit && binary.LittleEndian.Uint64(src[a+n:]) == binary.LittleEndian.Uint64(src[b+n:]) {
		n += 8
	}
	for n < limit && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// emitSequence appends one token sequence (literals + optional match) to dst.
// A match length of 0 emits a final literals-only sequence.
func emitSequence(dst, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	var token byte
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	if mlen > 0 {
		m := mlen - minMatch
		if m >= 15 {
			token |= 15
		} else {
			token |= byte(m)
		}
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = appendExtLength(dst, litLen-15)
	}
	dst = append(dst, lits...)
	if mlen > 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if m := mlen - minMatch; m >= 15 {
			dst = appendExtLength(dst, m-15)
		}
	}
	return dst
}

func appendExtLength(dst []byte, rest int) []byte {
	for rest >= 255 {
		dst = append(dst, 255)
		rest -= 255
	}
	return append(dst, byte(rest))
}

// fastState pools the fast-mode hash table across compressFast calls.
// Instead of clearing the table per call, entries are generation-stamped by
// a monotonically increasing base: the table stores base+position, and a
// stored value decodes to a valid candidate only when stored-base >= 0, i.e.
// only when it was written during the current call. base advances by
// len(src) after each call, retiring every entry at once, so the 64 KB
// clear loop disappears while candidate resolution stays byte-for-byte
// identical to a freshly -1-initialized table. The table stays int32 (cache
// footprint matters more than stamp range); when base approaches int32
// overflow the table is cleared once and base rewinds — a per-~2GB event.
type fastState struct {
	table [1 << hashLog]int32
	base  int32
}

// newFastState starts base at 1 so that the zero-valued table decodes every
// entry to a negative (invalid) candidate on first use.
func newFastState() *fastState { return &fastState{base: 1} }

var fastPool = sync.Pool{New: func() any { return newFastState() }}

// compressFastRef is the retained reference encoder: the fast-mode parse
// expressed with the bounds-checked primitives and append-based emit. The
// production encoder (compressFast in encode_fast.go) must produce exactly
// these bytes on every input, on both kernel tiers; the differential tests
// and FuzzCompressFastUnsafe enforce that. Keep this implementation boring
// — it is the executable specification of the parse.
func compressFastRef(dst, src []byte) []byte {
	if len(src) < minMatch+1 {
		return emitSequence(dst, src, 0, 0)
	}
	st := fastPool.Get().(*fastState)
	defer fastPool.Put(st)
	if int64(st.base)+int64(len(src)) >= math.MaxInt32 {
		st.table = [1 << hashLog]int32{}
		st.base = 1
	}
	base := st.base
	st.base += int32(len(src)) // retire this call's entries for the next user
	table := &st.table
	anchor := 0
	i := 0
	// The 5-byte hash loads 8 bytes per probe, so the scan stops 8 bytes
	// short of the end; the tail is emitted as literals.
	mfLimit := len(src) - 8
	misses := 0
	for i <= mfLimit {
		h := hash5(load64(src, i), hashLog)
		cand := int(table[h] - base)
		table[h] = base + int32(i)
		if cand >= 0 && i-cand <= maxOffset && load32(src, cand) == load32(src, i) {
			mlen := minMatch + matchLen(src, cand+minMatch, i+minMatch)
			if mlen > minMatch || i-cand >= tinyOverlapOffset {
				dst = emitSequence(dst, src[anchor:i], i-cand, mlen)
				// Seed the table inside the match so that subsequent
				// repetitions are found quickly.
				if mlen >= 16 && i+mlen <= mfLimit {
					mid := i + mlen/2
					if mid != i && mid <= mfLimit {
						table[hash5(load64(src, mid), hashLog)] = base + int32(mid)
					}
				}
				i += mlen
				anchor = i
				misses = 0
				continue
			}
			// Declined tiny near-overlap: step past the matched window —
			// positions inside it would only re-offer the same tiny match.
			i += minMatch
			continue
		}
		// Skip acceleration on incompressible regions: the step grows
		// as consecutive probes fail, bounding worst-case time on
		// high-entropy input (same idea as LZ4's acceleration).
		misses++
		i += 1 + misses>>5
	}
	return emitSequence(dst, src[anchor:], 0, 0)
}

// hcState carries the hash-chain match finder's tables between compressHC
// calls: the head table alone is 256 KB and the chain array scales with the
// block, so allocating them per call dwarfs every other cost of the encoder.
// The head table must be re-initialized on reuse (done in compressHC); the
// chain array needs no clearing because entries are written before they are
// read.
type hcState struct {
	head [1 << hcHashLog]int32
	prev []int32
}

var hcPool = sync.Pool{New: func() any { return new(hcState) }}

// insert links position pos into the hash chain for its 4-byte prefix.
// Being a method (not a closure over compressHC locals) lets the compiler
// inline it into the parse loop.
func (st *hcState) insert(src []byte, pos int) {
	h := hash4(kload32(src, pos), hcHashLog)
	st.prev[pos] = st.head[h]
	st.head[h] = int32(pos)
}

// bestMatch returns the longest match for position i, examining at most
// depth chain entries. Ties prefer the smaller offset. The chain walk and
// match extension run on the kernel primitives (kload32/kmatchLen), whose
// results are byte-identical to the reference primitives on every tier.
func (st *hcState) bestMatch(src []byte, i, depth int) (bLen, bOff int) {
	cand := int(st.head[hash4(kload32(src, i), hcHashLog)])
	prev := st.prev
	for d := 0; d < depth && cand >= 0; d++ {
		if i-cand > maxOffset {
			break
		}
		if bLen == 0 || (i+bLen < len(src) && src[cand+bLen] == src[i+bLen]) {
			if l := kmatchLen(src, cand, i); l >= minMatch && l > bLen {
				bLen, bOff = l, i-cand
			}
		}
		cand = int(prev[cand])
	}
	return bLen, bOff
}

// hcSkipShift controls HC's skip acceleration: after 1<<hcSkipShift
// consecutive positions without a match the step starts growing, bounding
// worst-case time on high-entropy runs. It is one notch more conservative
// than the fast path's shift (7 vs 6) because HC's job is ratio: skipped
// positions are neither probed nor inserted, so ramping too early would
// cost matches on barely-compressible data.
const hcSkipShift = 7

func compressHC(dst, src []byte, depth int) []byte {
	if len(src) < minMatch+1 {
		return emitSequence(dst, src, 0, 0)
	}
	st := hcPool.Get().(*hcState)
	defer hcPool.Put(st)
	head := st.head[:]
	for i := range head {
		head[i] = -1
	}
	if cap(st.prev) < len(src) {
		st.prev = make([]int32, len(src))
	}
	st.prev = st.prev[:len(src)]
	anchor := 0
	i := 0
	mfLimit := len(src) - minMatch
	misses := 0
	for i <= mfLimit {
		mlen, moff := st.bestMatch(src, i, depth)
		st.insert(src, i)
		if mlen == 0 {
			misses++
			i += 1 + misses>>hcSkipShift
			continue
		}
		misses = 0
		// One-step lazy matching: if the next position yields a
		// sufficiently longer match, emit this position as a literal.
		if i+1 <= mfLimit {
			nlen, _ := st.bestMatch(src, i+1, depth)
			if nlen > mlen+1 {
				i++
				continue // position i becomes a literal; i+1 reconsidered
			}
		}
		if mlen > len(src)-i {
			mlen = len(src) - i
		}
		dst = emitSequence(dst, src[anchor:i], moff, mlen)
		end := i + mlen
		for p := i + 1; p < end && p <= mfLimit; p++ {
			st.insert(src, p)
		}
		i = end
		anchor = i
	}
	return emitSequence(dst, src[anchor:], 0, 0)
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: lzfast: %s", compress.ErrCorrupt, fmt.Sprintf(format, args...))
}

// decompressBlockRef is the retained reference decoder: straightforward
// append-based decoding with per-step bounds checks. The production decoder
// (decompressBlock in decode_fast.go) must accept exactly the inputs this
// one accepts and produce identical bytes; the differential tests and
// FuzzDecompressFast enforce that. Keep this implementation boring.
func decompressBlockRef(dst, src []byte, decompressedSize int) ([]byte, error) {
	if decompressedSize < 0 {
		return dst, corrupt("negative declared size %d", decompressedSize)
	}
	start := len(dst)
	if cap(dst)-len(dst) < decompressedSize {
		grown := make([]byte, len(dst), len(dst)+decompressedSize)
		copy(grown, dst)
		dst = grown
	}
	s := 0
	for s < len(src) {
		token := src[s]
		s++
		litLen := int(token >> 4)
		if litLen == 15 {
			ext, n, err := readExtLength(src, s)
			if err != nil {
				return dst, err
			}
			litLen += ext
			s += n
		}
		if s+litLen > len(src) {
			return dst, corrupt("literal run of %d overruns input", litLen)
		}
		if len(dst)-start+litLen > decompressedSize {
			return dst, corrupt("output exceeds declared size %d", decompressedSize)
		}
		dst = append(dst, src[s:s+litLen]...)
		s += litLen
		if s == len(src) {
			break // final literals-only sequence
		}
		if s+2 > len(src) {
			return dst, corrupt("truncated match offset")
		}
		offset := int(src[s]) | int(src[s+1])<<8
		s += 2
		if offset == 0 {
			return dst, corrupt("zero match offset")
		}
		mlen := int(token & 0x0f)
		if mlen == 15 {
			ext, n, err := readExtLength(src, s)
			if err != nil {
				return dst, err
			}
			mlen += ext
			s += n
		}
		mlen += minMatch
		if offset > len(dst)-start {
			return dst, corrupt("match offset %d exceeds produced bytes %d", offset, len(dst)-start)
		}
		if len(dst)-start+mlen > decompressedSize {
			return dst, corrupt("match output exceeds declared size %d", decompressedSize)
		}
		dst = appendCopy(dst, offset, mlen)
	}
	if got := len(dst) - start; got != decompressedSize {
		return dst, corrupt("decoded %d bytes, declared %d", got, decompressedSize)
	}
	return dst, nil
}

func readExtLength(src []byte, s int) (ext, n int, err error) {
	for {
		if s+n >= len(src) {
			return 0, 0, corrupt("truncated extended length")
		}
		b := src[s+n]
		n++
		ext += int(b)
		if b < 255 {
			return ext, n, nil
		}
		if ext > 1<<30 {
			return 0, 0, corrupt("extended length overflow")
		}
	}
}

// appendCopy copies mlen bytes from dst[len(dst)-offset:] onto the end of
// dst, handling the overlapping case (offset < mlen) which implements
// run-length-style repetition.
func appendCopy(dst []byte, offset, mlen int) []byte {
	srcPos := len(dst) - offset
	if offset >= mlen {
		return append(dst, dst[srcPos:srcPos+mlen]...)
	}
	for i := 0; i < mlen; i++ {
		dst = append(dst, dst[srcPos+i])
	}
	return dst
}
