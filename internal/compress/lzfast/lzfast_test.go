package lzfast_test

import (
	"bytes"
	"testing"

	"adaptio/internal/compress"
	"adaptio/internal/compress/codectest"
	"adaptio/internal/compress/lzfast"
	"adaptio/internal/corpus"
)

func TestFastConformance(t *testing.T) { codectest.All(t, lzfast.Fast{}) }

func TestHCConformance(t *testing.T) { codectest.All(t, lzfast.HC{}) }

func TestHCDepthConfigurable(t *testing.T) {
	src := corpus.Generate(corpus.Moderate, 64<<10, 3)
	shallow := lzfast.HC{Depth: 1}.Compress(nil, src)
	deep := lzfast.HC{Depth: 256}.Compress(nil, src)
	if len(deep) > len(shallow) {
		t.Fatalf("deeper search produced worse ratio: depth1=%d depth256=%d", len(shallow), len(deep))
	}
	out, err := lzfast.HC{}.Decompress(nil, deep, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("deep round trip failed: %v", err)
	}
}

func TestHCBeatsFastOnCompressibleData(t *testing.T) {
	for _, kind := range []corpus.Kind{corpus.High, corpus.Moderate} {
		src := corpus.GenerateFile(kind, 1)[:128<<10]
		fast := lzfast.Fast{}.Compress(nil, src)
		hc := lzfast.HC{}.Compress(nil, src)
		if len(hc) >= len(fast) {
			t.Errorf("%s: HC (%d) should compress better than Fast (%d)", kind, len(hc), len(fast))
		}
	}
}

func TestWireIDs(t *testing.T) {
	if (lzfast.Fast{}).ID() != compress.IDLZFast {
		t.Fatal("Fast wire id changed")
	}
	if (lzfast.HC{}).ID() != compress.IDLZFastH {
		t.Fatal("HC wire id changed")
	}
}

func TestIncompressibleExpansionBounded(t *testing.T) {
	src := corpus.Generate(corpus.Low, 128<<10, 9)
	comp := lzfast.Fast{}.Compress(nil, src)
	// Worst case is ~1 token byte per 255-byte extension plus constant
	// slack; anything beyond 1% expansion indicates a framing bug.
	if len(comp) > len(src)+len(src)/100+16 {
		t.Fatalf("excessive expansion: %d -> %d", len(src), len(comp))
	}
}

func TestLongRunsCompressTightly(t *testing.T) {
	src := make([]byte, 1<<20) // 1 MB of zeros
	comp := lzfast.Fast{}.Compress(nil, src)
	if len(comp) > 8<<10 {
		t.Fatalf("1 MB of zeros compressed to only %d bytes", len(comp))
	}
	out, err := lzfast.Fast{}.Decompress(nil, comp, len(src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("zeros round trip failed: %v", err)
	}
}

func BenchmarkFastCompressModerate(b *testing.B) {
	benchCompress(b, lzfast.Fast{}, corpus.Moderate)
}

func BenchmarkFastCompressHigh(b *testing.B) {
	benchCompress(b, lzfast.Fast{}, corpus.High)
}

func BenchmarkFastCompressLow(b *testing.B) {
	benchCompress(b, lzfast.Fast{}, corpus.Low)
}

func BenchmarkHCCompressModerate(b *testing.B) {
	benchCompress(b, lzfast.HC{}, corpus.Moderate)
}

func BenchmarkFastDecompressModerate(b *testing.B) {
	benchDecompress(b, lzfast.Fast{}, corpus.Moderate)
}

func benchCompress(b *testing.B, c compress.Codec, kind corpus.Kind) {
	src := corpus.Generate(kind, 128<<10, 1)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = c.Compress(dst[:0], src)
	}
	b.ReportMetric(float64(len(dst))/float64(len(src)), "ratio")
}

func benchDecompress(b *testing.B, c compress.Codec, kind corpus.Kind) {
	src := corpus.Generate(kind, 128<<10, 1)
	comp := c.Compress(nil, src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var dst []byte
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = c.Decompress(dst[:0], comp, len(src))
		if err != nil {
			b.Fatal(err)
		}
	}
}
