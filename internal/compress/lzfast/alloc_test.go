package lzfast_test

import (
	"testing"

	"adaptio/internal/compress/lzfast"
	"adaptio/internal/corpus"
)

// TestDecompressPresizedNoAlloc pins the satellite guarantee that a dst
// with sufficient capacity is decoded into in place: the grown path at the
// top of decompressBlock must not trigger, and no other allocation may
// appear on the decode path.
func TestDecompressPresizedNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	raw := corpus.Generate(corpus.Moderate, 128<<10, 1)
	comp := lzfast.Fast{}.Compress(nil, raw)
	dst := make([]byte, 0, len(raw))
	avg := testing.AllocsPerRun(100, func() {
		out, err := lzfast.Fast{}.Decompress(dst, comp, len(raw))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(raw) {
			t.Fatalf("decoded %d bytes, want %d", len(out), len(raw))
		}
	})
	if avg != 0 {
		t.Fatalf("presized Decompress allocates %.1f times per run, want 0", avg)
	}
}

// BenchmarkCompressHC exercises the pooled hash-chain state; -benchmem
// shows the per-call table allocations removed by the pool.
func BenchmarkCompressHC(b *testing.B) {
	raw := corpus.Generate(corpus.Moderate, 128<<10, 1)
	dst := make([]byte, 0, 2*len(raw))
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lzfast.HC{}.Compress(dst[:0], raw)
	}
}
