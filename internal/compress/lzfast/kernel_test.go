package lzfast_test

// Differential and golden tests pinning the production fast-mode encoder
// (encode_fast.go) and the kernel primitives (kernel_unsafe.go /
// kernel_portable.go) to their reference implementations. Together with
// FuzzCompressFastUnsafe these enforce the kernel tier's core contract:
// byte-identical compressed output on every input, on every build.
//
// The golden digests at the bottom are the strongest cross-build check: the
// same constants must hold under the default build and under -tags purego
// (make test-kernels runs both), so the unsafe tier cannot drift from the
// portable tier without a test failure.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"

	"adaptio/internal/compress/lzfast"
	"adaptio/internal/corpus"
)

// diffSizes probes both sides of every boundary the encoder cares about:
// the short-input gate (minMatch+1), the 8-byte hash-load scan limit, the
// 16-byte wild-copy margin, the skip-acceleration ramp, and block sizes
// around the stream's 128 KB default.
var diffSizes = []int{
	0, 1, 4, 5, 6, 7, 8, 9, 12, 15, 16, 17, 23, 31, 32, 33, 63, 64, 65,
	127, 255, 256, 1 << 10, 4096, 65535, 65536, 65537, 128 << 10, (128 << 10) + 17,
}

func TestCompressFastDifferential(t *testing.T) {
	t.Logf("kernel tier: %s", lzfast.KernelName)
	kinds := []corpus.Kind{corpus.High, corpus.Moderate, corpus.Low}
	for _, kind := range kinds {
		for _, n := range diffSizes {
			for seed := uint64(1); seed <= 3; seed++ {
				src := corpus.Generate(kind, n, seed)
				checkEncodersAgree(t, src)
			}
		}
	}
}

// TestCompressFastDifferentialAdversarial feeds the encoder pair inputs
// that corpus generators do not produce: uniform random bytes, all-zero
// runs, an alternating pattern with period below tinyOverlapOffset, and
// random splices of the above (which straddle compressible and
// incompressible regions mid-block).
func TestCompressFastDifferentialAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 1<<16)
	rng.Read(random)
	zeros := make([]byte, 1<<16)
	period3 := make([]byte, 1<<12)
	for i := range period3 {
		period3[i] = byte(i % 3)
	}
	for _, src := range [][]byte{random, zeros, period3} {
		for _, n := range diffSizes {
			if n > len(src) {
				continue
			}
			checkEncodersAgree(t, src[:n])
		}
	}
	for trial := 0; trial < 50; trial++ {
		var spliced []byte
		for len(spliced) < 1<<14 {
			pick := [][]byte{random, zeros, period3}[rng.Intn(3)]
			off := rng.Intn(len(pick) - 64)
			end := min(off+64+rng.Intn(512), len(pick))
			spliced = append(spliced, pick[off:end]...)
		}
		checkEncodersAgree(t, spliced)
	}
}

// TestCompressFastDifferentialAppend verifies the frontier-based encoder
// respects append semantics (non-empty dst with spare capacity) exactly as
// the reference does.
func TestCompressFastDifferentialAppend(t *testing.T) {
	src := corpus.Generate(corpus.Moderate, 1<<12, 5)
	prefix := []byte("prefix-already-present")
	ref := lzfast.CompressFastRef(append([]byte(nil), prefix...), src)
	// Spare capacity beyond the prefix must not leak into the output.
	dst := make([]byte, len(prefix), len(prefix)+4*len(src))
	copy(dst, prefix)
	fast := lzfast.CompressFast(dst, src)
	if !bytes.Equal(ref, fast) {
		t.Fatal("append-mode encoder outputs diverge")
	}
	if !bytes.HasPrefix(fast, prefix) {
		t.Fatal("append-mode output does not preserve prefix")
	}
}

// checkEncodersAgree requires byte-identical output from the production and
// reference encoders, and a clean reference-decoder round trip.
func checkEncodersAgree(t *testing.T, src []byte) {
	t.Helper()
	ref := lzfast.CompressFastRef(nil, src)
	fast := lzfast.CompressFast(nil, src)
	if !bytes.Equal(ref, fast) {
		i := 0
		for i < len(ref) && i < len(fast) && ref[i] == fast[i] {
			i++
		}
		t.Fatalf("encoder outputs diverge for %d-byte input: ref %d bytes, fast %d bytes, first difference at %d",
			len(src), len(ref), len(fast), i)
	}
	out, err := lzfast.DecompressRef(nil, fast, len(src))
	if err != nil {
		t.Fatalf("reference decoder rejects fast encoder output for %d-byte input: %v", len(src), err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch for %d-byte input", len(src))
	}
}

// TestMatchLenKernelDifferential pins the kernel match-extension primitive
// to the reference byte-counting loop on random inputs, with positions
// placed to straddle the 8-byte-window boundaries and the slice end.
func TestMatchLenKernelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 4096)
	rng.Read(src)
	// Plant long equal runs so extensions cross several 8-byte windows.
	copy(src[1024:], src[0:512])
	copy(src[2048:], src[0:1024])
	for trial := 0; trial < 20000; trial++ {
		a := rng.Intn(len(src) - 1)
		b := a + 1 + rng.Intn(len(src)-a-1)
		got := lzfast.MatchLenKernel(src, a, b)
		want := lzfast.MatchLenRef(src, a, b)
		if got != want {
			t.Fatalf("matchLen(%d, %d) = %d, reference says %d", a, b, got, want)
		}
	}
	// Exhaustive tail positions: every (a, b) in the last 24 bytes.
	for b := len(src) - 24; b < len(src); b++ {
		for a := b - 16; a < b; a++ {
			if lzfast.MatchLenKernel(src, a, b) != lzfast.MatchLenRef(src, a, b) {
				t.Fatalf("matchLen tail divergence at a=%d b=%d", a, b)
			}
		}
	}
}

// goldenDigests are SHA-256 hex digests of each codec's compressed output
// on fixed corpus blocks. They pin the wire bytes across kernel tiers and
// over time: run under both the default build and -tags purego, the same
// constants prove the two tiers serialize identically, and any future
// change to the parse (which changes compressed bytes, a stream-visible
// event) has to update them consciously.
var goldenDigests = []struct {
	name   string
	kind   corpus.Kind
	size   int
	codec  interface{ Compress(dst, src []byte) []byte }
	digest string
}{
	{"fast/high/64K", corpus.High, 64 << 10, lzfast.Fast{}, "e8cdb8b18d041840498519b7a751543700d8235f9db9f63efcb4267c9f54551f"},
	{"fast/moderate/64K", corpus.Moderate, 64 << 10, lzfast.Fast{}, "606ceded89a5b46667b92c9cf32a6c31a980fbb9ba556942404feaa222963e1f"},
	{"fast/low/64K", corpus.Low, 64 << 10, lzfast.Fast{}, "d4565d7fce98d90082e3e22ba9448a058f85310da338c4d2898bdb37933e3c75"},
	{"hc/moderate/64K", corpus.Moderate, 64 << 10, lzfast.HC{}, "ae6326f0dfc79b7af4deb741e5f04110560b8bc9be827c094b4512f5e40766bc"},
	{"hc/low/64K", corpus.Low, 64 << 10, lzfast.HC{}, "c889d5677ea815185c39bec871b9e23ebc63d2f70ec367239488c3349e8a277d"},
}

func TestGoldenDigests(t *testing.T) {
	for _, g := range goldenDigests {
		src := corpus.Generate(g.kind, g.size, 1)
		sum := sha256.Sum256(g.codec.Compress(nil, src))
		if got := hex.EncodeToString(sum[:]); got != g.digest {
			t.Errorf("%s (%s tier): digest %s, want %s", g.name, lzfast.KernelName, got, g.digest)
		}
	}
}
