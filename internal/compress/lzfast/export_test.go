package lzfast

// Test-only exports: the differential tests pin the production fast-path
// decoder to the retained reference implementation.
var (
	DecompressFast = decompressBlock
	DecompressRef  = decompressBlockRef
)
