package lzfast

// Test-only exports: the differential tests pin the production fast-path
// encoder and decoder to the retained reference implementations, and the
// kernel primitives to the bounds-checked reference primitives.
var (
	DecompressFast = decompressBlock
	DecompressRef  = decompressBlockRef

	CompressFast    = compressFast
	CompressFastRef = compressFastRef

	MatchLenKernel = kmatchLen
	MatchLenRef    = matchLen
)

// KernelName reports which kernel tier this build compiled in ("unsafe" or
// "portable") so test logs show what was exercised.
const KernelName = kernelName
