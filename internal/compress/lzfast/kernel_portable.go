//go:build purego || (!amd64 && !arm64)

package lzfast

// Portable kernel tier: the k-primitives delegate to the bounds-checked
// binary.LittleEndian reference primitives in lzfast.go. This build is
// selected by the purego tag (CI forces it so the fallback cannot rot) or
// by any GOARCH without a verified unaligned-little-endian contract. The
// compressed output is byte-identical to the unsafe tier's — pinned by the
// golden digest tests and FuzzCompressFastUnsafe.

import "encoding/binary"

// kernelName tells test logs which tier a build exercised.
const kernelName = "portable"

func kload32(b []byte, i int) uint32 { return load32(b, i) }

func kload64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[i:]) }

func kmatchLen(src []byte, a, b int) int { return matchLen(src, a, b) }

// kcopy16 copies exactly 16 bytes as two 8-byte loads/stores.
func kcopy16(dst, src []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], binary.LittleEndian.Uint64(src[0:8]))
	binary.LittleEndian.PutUint64(dst[8:16], binary.LittleEndian.Uint64(src[8:16]))
}

// kwildCopy copies n bytes in 16-byte strides, writing up to
// wildCopyMargin-1 bytes past n; same contract as the unsafe tier.
func kwildCopy(dst, src []byte, n int) {
	for c := 0; c < n; c += 16 {
		kcopy16(dst[c:], src[c:])
	}
}

// koverlapCopy replicates n bytes of the offset-periodic pattern ending at
// buf[d] onto buf[d:d+n]; same contract as the unsafe tier.
func koverlapCopy(buf []byte, d, offset, n int) {
	for j := 0; j < n; j++ {
		buf[d+j] = buf[d-offset+j]
	}
}
