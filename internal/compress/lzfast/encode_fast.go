package lzfast

// This file holds the production fast-mode encoder. The parse — candidate
// acceptance, hash-table updates, mid-match seeding, skip acceleration — is
// copied decision-for-decision from compressFastRef in lzfast.go, which
// remains the executable specification; what changed is the machinery
// around it:
//
//   - source loads and match extension go through the tag-selected kernel
//     primitives (kload32/kmatchLen), dropping per-access bounds checks on
//     the unsafe tier and folding the 8-byte compare loop into a single
//     XOR + trailing-zero count;
//   - output is written through a pre-reserved frontier (one capacity check
//     per call instead of one append per emit), with literals moved by
//     16-byte wild copies that may overshoot into the reserved margin.
//
// TestCompressFastDifferential and FuzzCompressFastUnsafe pin this encoder
// to compressFastRef byte-for-byte on every input, on both kernel tiers.

import "math"

// maxCompressedLen bounds the encoder's output for an n-byte block: the
// worst case is one literals-only sequence (token + ext-length bytes +
// literals, and every match sequence saves at least one byte net), plus
// room for the final wild copy's overshoot.
func maxCompressedLen(n int) int { return n + n/255 + 2*wildCopyMargin }

func compressFast(dst, src []byte) []byte {
	if len(src) < minMatch+1 {
		return emitSequence(dst, src, 0, 0)
	}
	st := fastPool.Get().(*fastState)
	defer fastPool.Put(st)
	if int64(st.base)+int64(len(src)) >= math.MaxInt32 {
		st.table = [1 << hashLog]int32{}
		st.base = 1
	}
	base := st.base
	st.base += int32(len(src)) // retire this call's entries for the next user
	table := &st.table

	// Reserve the whole worst case up front; out is the write window and d
	// the frontier within it. Overshoot from wild copies lands between d
	// and len(out) and is either overwritten by the next emit or trimmed
	// by the final re-slice, so it never reaches the caller.
	d := len(dst)
	if need := maxCompressedLen(len(src)); cap(dst)-d < need {
		grown := make([]byte, d, d+need)
		copy(grown, dst)
		dst = grown
	}
	out := dst[:cap(dst)]

	anchor := 0
	i := 0
	// The 5-byte hash loads 8 bytes per probe, so the scan stops 8 bytes
	// short of the end; the tail is emitted as literals.
	mfLimit := len(src) - 8
	misses := 0
	for i <= mfLimit {
		u := kload64(src, i)
		h := hash5(u, hashLog)
		cand := int(table[h] - base)
		table[h] = base + int32(i)
		if cand >= 0 && i-cand <= maxOffset && kload32(src, cand) == uint32(u) {
			mlen := minMatch + kmatchLen(src, cand+minMatch, i+minMatch)
			if mlen > minMatch || i-cand >= tinyOverlapOffset {
				d = emitFast(out, d, src, anchor, i, i-cand, mlen)
				// Seed the table inside the match so that subsequent
				// repetitions are found quickly.
				if mlen >= 16 && i+mlen <= mfLimit {
					mid := i + mlen/2
					if mid != i && mid <= mfLimit {
						table[hash5(kload64(src, mid), hashLog)] = base + int32(mid)
					}
				}
				i += mlen
				anchor = i
				misses = 0
				continue
			}
			// Declined tiny near-overlap: step past the matched window —
			// positions inside it would only re-offer the same tiny match.
			i += minMatch
			continue
		}
		// Skip acceleration on incompressible regions: the step grows
		// as consecutive probes fail, bounding worst-case time on
		// high-entropy input (same idea as LZ4's acceleration).
		misses++
		i += 1 + misses>>5
	}
	d = emitFastFinal(out, d, src, anchor)
	return dst[:d]
}

// emitFast writes one token sequence (literals src[anchor:i] + match) at
// out[d:], returning the new frontier. Byte-for-byte the serialization of
// emitSequence.
func emitFast(out []byte, d int, src []byte, anchor, i, offset, mlen int) int {
	litLen := i - anchor
	var token byte
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	m := mlen - minMatch
	if m >= 15 {
		token |= 15
	} else {
		token |= byte(m)
	}
	out[d] = token
	d++
	if litLen >= 15 {
		d = putExtLength(out, d, litLen-15)
	}
	if litLen > 0 {
		// Wild-copy when the literal tail leaves a full stride of
		// readable source; i <= mfLimit usually guarantees it, but ext
		// lengths can push i within wildCopyMargin of the block end.
		if i+wildCopyMargin <= len(src) {
			kwildCopy(out[d:], src[anchor:], litLen)
		} else {
			copy(out[d:d+litLen], src[anchor:i])
		}
		d += litLen
	}
	out[d] = byte(offset)
	out[d+1] = byte(offset >> 8)
	d += 2
	if m >= 15 {
		d = putExtLength(out, d, m-15)
	}
	return d
}

// emitFastFinal writes the final literals-only sequence for src[anchor:].
func emitFastFinal(out []byte, d int, src []byte, anchor int) int {
	litLen := len(src) - anchor
	if litLen >= 15 {
		out[d] = 15 << 4
		d++
		d = putExtLength(out, d, litLen-15)
	} else {
		out[d] = byte(litLen) << 4
		d++
	}
	copy(out[d:d+litLen], src[anchor:])
	return d + litLen
}

// putExtLength is appendExtLength against a frontier.
func putExtLength(out []byte, d, rest int) int {
	for rest >= 255 {
		out[d] = 255
		d++
		rest -= 255
	}
	out[d] = byte(rest)
	d++
	return d
}
