package tunnel_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/faultio"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/tunnel"
)

// startRequestResponse runs a service that reads the full request, then
// responds with resp and half-closes. It returns the listen address and a
// function yielding the received request bytes once the conn is done.
func startRequestResponse(t *testing.T, resp []byte) (string, func() []byte) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	var got []byte
	done := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		defer conn.Close()
		req, _ := io.ReadAll(conn)
		mu.Lock()
		got = req
		mu.Unlock()
		close(done)
		conn.Write(resp)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	return ln.Addr().String(), func() []byte {
		<-done
		mu.Lock()
		defer mu.Unlock()
		return got
	}
}

// waitStats polls the collector until want reports arrived (or fails), then
// waits a settle period and asserts no extras appear: each direction must
// report exactly once.
func waitStats(t *testing.T, c *statsCollector, want int) []tunnel.ConnStats {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if stats := c.snapshot(); len(stats) >= want {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d of %d direction stats arrived", len(c.snapshot()), want)
		case <-time.After(10 * time.Millisecond):
		}
	}
	time.Sleep(50 * time.Millisecond)
	stats := c.snapshot()
	if len(stats) != want {
		t.Fatalf("got %d direction reports, want exactly %d: %+v", len(stats), want, stats)
	}
	seen := map[string]int{}
	for _, s := range stats {
		seen[s.Direction]++
	}
	for dir, n := range seen {
		if n != 1 {
			t.Fatalf("direction %s reported %d times, want once", dir, n)
		}
	}
	return stats
}

// typedErr reports whether err wraps one of the typed sentinels the chaos
// contract allows: faultio's injected errors, the tunnel's own sentinels,
// stream framing errors, or a transport net.Error.
func typedErr(err error) bool {
	if errors.Is(err, faultio.ErrInjected) ||
		errors.Is(err, tunnel.ErrIdleTimeout) ||
		errors.Is(err, tunnel.ErrDial) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// TestConnStatsUnderPeerReset injects a mid-stream connection reset on the
// exit's wire while the response is in flight. The request direction must
// account exactly (AppBytes == bytes the service received), the reset
// direction must surface a typed error, and both directions must report
// exactly once via OnDone.
func TestConnStatsUnderPeerReset(t *testing.T) {
	leakcheck.Check(t)
	request := corpus.Generate(corpus.Moderate, 1024, 3)
	response := corpus.Generate(corpus.Low, 1<<20, 4) // barely compressible: wire ~ app bytes

	target, receivedRequest := startRequestResponse(t, response)
	collector := &statsCollector{}
	cfgExit := tunnel.Config{
		Static: true, StaticLevel: 1,
		OnDone: collector.add,
		Logf:   t.Logf,
		// Reset the exit's wire conn after ~100 KB written: the tiny
		// request never trips it, the 1 MB response does.
		WrapWire: func(c net.Conn) net.Conn {
			return faultio.WrapConn(c, faultio.Config{Seed: 21, ResetAfter: 100 << 10})
		},
	}
	cfgEntry := tunnel.Config{
		Static: true, StaticLevel: 1,
		OnDone: collector.add,
		Logf:   t.Logf,
	}

	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", target, cfgExit)
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfgEntry)
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(request); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	echoed, readErr := io.ReadAll(conn)

	// The reset must not let the full response through, and whatever did
	// arrive must be an intact prefix (CRC rejects damaged frames).
	if readErr == nil && len(echoed) == len(response) {
		t.Fatal("reset at 100 KB delivered the full 1 MB response")
	}
	if !bytes.Equal(echoed, response[:len(echoed)]) {
		t.Fatalf("client received %d bytes that are not a prefix of the response", len(echoed))
	}

	if got := receivedRequest(); !bytes.Equal(got, request) {
		t.Fatalf("service received %d bytes, want the intact %d-byte request", len(got), len(request))
	}

	stats := waitStats(t, collector, 2)
	for _, s := range stats {
		switch s.Direction {
		case "entry->exit":
			// Clean direction: accounting must be exact.
			if s.Err != nil {
				t.Errorf("entry->exit err = %v, want nil", s.Err)
			}
			if s.Stats.AppBytes != int64(len(request)) {
				t.Errorf("entry->exit AppBytes = %d, want %d", s.Stats.AppBytes, len(request))
			}
		case "exit->entry":
			// Reset direction: typed error, accounting bounded by what
			// the service handed over and covering what the client got.
			if s.Err == nil {
				t.Error("exit->entry completed cleanly through a reset")
			} else if !typedErr(s.Err) {
				t.Errorf("exit->entry err %v does not wrap a typed sentinel", s.Err)
			}
			if s.Stats.AppBytes > int64(len(response)) {
				t.Errorf("exit->entry AppBytes = %d exceeds the %d-byte response", s.Stats.AppBytes, len(response))
			}
			if s.Stats.AppBytes < int64(len(echoed)) {
				t.Errorf("exit->entry AppBytes = %d below the %d delivered bytes", s.Stats.AppBytes, len(echoed))
			}
		default:
			t.Errorf("unexpected direction %q", s.Direction)
		}
	}
}

// TestIdleTimeoutTearsDownStalledWire stalls the wire mid-response: the
// relay's idle deadline must detect it, fail the direction with an error
// wrapping ErrIdleTimeout, and release the client within a bounded time.
func TestIdleTimeoutTearsDownStalledWire(t *testing.T) {
	leakcheck.Check(t)
	response := corpus.Generate(corpus.Low, 1<<20, 9)
	target, _ := startRequestResponse(t, response)
	collector := &statsCollector{}
	cfgExit := tunnel.Config{
		Static: true, StaticLevel: 1,
		OnDone:      collector.add,
		Logf:        t.Logf,
		IdleTimeout: 200 * time.Millisecond,
		WrapWire: func(c net.Conn) net.Conn {
			return faultio.WrapConn(c, faultio.Config{Seed: 5, StallAfter: 64 << 10})
		},
	}
	cfgEntry := tunnel.Config{Static: true, StaticLevel: 1, OnDone: collector.add, Logf: t.Logf, IdleTimeout: time.Second}

	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", target, cfgExit)
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfgEntry)
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("request"))
	conn.(*net.TCPConn).CloseWrite()

	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	_, readErr := io.ReadAll(conn)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stalled transfer took %v to fail, want bounded teardown", elapsed)
	}
	if readErr == nil {
		// EOF is fine: the tunnel tore the conn down; the client just
		// sees a short response.
		t.Log("client saw clean EOF after stall teardown")
	}

	stats := waitStats(t, collector, 2)
	foundTimeout := false
	for _, s := range stats {
		if s.Err != nil && errors.Is(s.Err, tunnel.ErrIdleTimeout) {
			foundTimeout = true
		}
	}
	if !foundTimeout {
		t.Errorf("no direction reported ErrIdleTimeout; stats: %+v", stats)
	}
}

// TestCorruptWireNeverDeliversDamage flips bits on the entry's wire. The
// CRC layer must reject every damaged frame: whatever reaches the service
// must be an intact prefix of the request.
func TestCorruptWireNeverDeliversDamage(t *testing.T) {
	leakcheck.Check(t)
	request := corpus.Generate(corpus.Moderate, 512<<10, 8)
	target, receivedRequest := startRequestResponse(t, []byte("ok"))
	collector := &statsCollector{}
	cfgEntry := tunnel.Config{
		Static: true, StaticLevel: 1,
		OnDone: collector.add,
		Logf:   t.Logf,
		WrapWire: func(c net.Conn) net.Conn {
			return faultio.WrapConn(c, faultio.Config{Seed: 13, CorruptBit: 0.2})
		},
	}
	cfgExit := tunnel.Config{Static: true, StaticLevel: 1, Logf: t.Logf}

	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", target, cfgExit)
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfgEntry)
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	conn.Write(request)
	conn.(*net.TCPConn).CloseWrite()
	io.Copy(io.Discard, conn) // wait for teardown or response

	got := receivedRequest()
	if !bytes.Equal(got, request[:len(got)]) {
		t.Fatalf("service received %d bytes that are not an intact prefix", len(got))
	}
	if len(got) == len(request) {
		t.Log("all frames survived corruption odds; prefix property still verified")
	}
}

// TestShutdownGraceBounds: Close with a grace period returns within a
// bounded time even when a client conn sits idle, force-closing it.
func TestShutdownGraceBounds(t *testing.T) {
	leakcheck.Check(t)
	target, _ := startRequestResponse(t, []byte("never sent"))
	cfg := tunnel.Config{ShutdownGrace: 100 * time.Millisecond, Logf: t.Logf}
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", target, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("hello"))
	time.Sleep(50 * time.Millisecond) // let the relay establish

	for name, ep := range map[string]*tunnel.Endpoint{"entry": entry, "exit": exit} {
		start := time.Now()
		if err := ep.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s close took %v, want bounded by grace + teardown", name, elapsed)
		}
	}
}
