package tunnel_test

import (
	"bytes"
	"io"
	"net"
	"testing"

	"adaptio/internal/coord"
	"adaptio/internal/corpus"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/obs"
	"adaptio/internal/tunnel"
)

// TestCoordRegistersAndDetachesStreams proves the tunnel wiring contract of
// the fleet coordinator: every served connection's compress path registers
// with the coordinator while the relay runs (coord.streams.active rises)
// and detaches when the connection closes (the gauge returns to zero, and
// the total counter remembers every registration).
func TestCoordRegistersAndDetachesStreams(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	c := coord.MustNew(coord.Config{
		Levels: 4,
		Obs:    reg.Scope("coord"),
	})
	h := startScaleHarness(t, tunnel.Config{
		Coord:       c,
		CoordWeight: 2,
		CoordTenant: "entry",
	})

	coordScope := reg.Scope("coord")
	const conns = 3
	release := make([]func(), conns)
	for i := range release {
		release[i] = holdConn(t, h.addr)
	}
	// Entry relays register one coordinated stream per connection's
	// compress path. (The exit endpoint has no coordinator configured, so
	// exactly the entry streams count.)
	waitFor(t, "streams registered", func() bool {
		return c.ActiveStreams() == conns
	})
	if got := coordScope.Gauge("streams.active").Value(); got != conns {
		t.Fatalf("coord.streams.active = %d, want %d", got, conns)
	}
	for _, r := range release {
		r()
	}
	waitFor(t, "streams detached", func() bool {
		return c.ActiveStreams() == 0
	})
	waitFor(t, "active gauge drained", func() bool {
		return coordScope.Gauge("streams.active").Value() == 0
	})
	if got := coordScope.Counter("streams.total").Value(); got != conns {
		t.Fatalf("coord.streams.total = %d, want %d", got, conns)
	}
}

// TestCoordStreamRoundTrip sends real data through a coordinated tunnel and
// verifies it arrives intact: the coordinator is a level-selection policy,
// never a correctness hazard.
func TestCoordStreamRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	c := coord.MustNew(coord.Config{Levels: 4})
	h := startScaleHarness(t, tunnel.Config{Coord: c})

	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := corpus.Generate(corpus.Moderate, 512<<10, 77)
	done := make(chan error, 1)
	go func() {
		_, werr := conn.Write(payload)
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- werr
	}()
	got, err := io.ReadAll(io.LimitReader(conn, int64(len(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatal(werr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: got %d bytes", len(got))
	}
}
