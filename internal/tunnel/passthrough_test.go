package tunnel_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/corpus"
	"adaptio/internal/faultio"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/obs"
	"adaptio/internal/tunnel"
)

// faultlessWrap wraps the wire in a transparent faultio conn (no faults
// configured). Its purpose is the type, not the behaviour: a wrapped conn
// is not a *net.TCPConn, which forces the passthrough relay off the Linux
// splice fast path onto the portable pooled-buffer loop. The matrix test
// runs both variants to prove the two data paths relay identical streams.
func faultlessWrap(c net.Conn) net.Conn {
	return faultio.WrapConn(c, faultio.Config{Seed: 1})
}

// TestPassthroughMatrix relays the same payload through a passthrough
// tunnel pair twice — once over raw TCP conns (splice(2) on Linux) and
// once with the wire wrapped so the portable copy loop runs on every
// platform — and requires a byte-identical echo from both.
func TestPassthroughMatrix(t *testing.T) {
	payload := corpus.Generate(corpus.Low, 4<<20, 17) // "already compressed" traffic
	variants := []struct {
		name string
		wrap func(net.Conn) net.Conn
	}{
		{"raw", nil},               // *net.TCPConn both sides: splice path on Linux
		{"wrapped", faultlessWrap}, // non-TCP conn type: portable fallback everywhere
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			leakcheck.Check(t)
			blocktest.Track(t) // fallback copy buffers must go back to the arena
			addr, collector := startTunnel(t, tunnel.Config{Passthrough: true, WrapWire: v.wrap})

			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			go func() {
				conn.Write(payload)
				conn.(*net.TCPConn).CloseWrite()
			}()
			echoed, err := io.ReadAll(conn)
			if err != nil {
				t.Fatalf("read echo: %v", err)
			}
			if !bytes.Equal(echoed, payload) {
				t.Fatalf("echo mismatch: got %d bytes, want %d", len(echoed), len(payload))
			}

			// Both tx directions report once, with app == wire == payload
			// (a passthrough byte is its own wire byte) and every byte
			// accounted as passthrough.
			stats := waitStats(t, collector, 2)
			for _, s := range stats {
				if s.Err != nil {
					t.Errorf("%s err = %v", s.Direction, s.Err)
				}
				if s.Stats.AppBytes != int64(len(payload)) || s.Stats.WireBytes != int64(len(payload)) {
					t.Errorf("%s app=%d wire=%d, want both %d",
						s.Direction, s.Stats.AppBytes, s.Stats.WireBytes, len(payload))
				}
				if s.Stats.PassthroughBytes != int64(len(payload)) {
					t.Errorf("%s PassthroughBytes = %d, want %d",
						s.Direction, s.Stats.PassthroughBytes, len(payload))
				}
				if s.Stats.CopiedBytes != 0 {
					t.Errorf("%s CopiedBytes = %d, want 0", s.Direction, s.Stats.CopiedBytes)
				}
			}
		})
	}
}

// TestPassthroughShortWrites drives the portable passthrough loop through
// a wire that reports short writes with nil error (faultio's PartialWrite):
// the relay's full-write retry must still deliver a byte-identical stream.
func TestPassthroughShortWrites(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	payload := corpus.Generate(corpus.Moderate, 1<<20, 23)
	addr, _ := startTunnel(t, tunnel.Config{
		Passthrough: true,
		WrapWire: func(c net.Conn) net.Conn {
			return faultio.WrapConn(c, faultio.Config{Seed: 7, ShortRead: 0.5, PartialWrite: 0.5})
		},
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		conn.Write(payload)
		conn.(*net.TCPConn).CloseWrite()
	}()
	echoed, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if !bytes.Equal(echoed, payload) {
		t.Fatalf("echo mismatch under short writes: got %d bytes, want %d", len(echoed), len(payload))
	}
}

// TestPassthroughMidStreamReset resets the exit's wire mid-response. With
// no framing there is no CRC — the contract is weaker than the framed
// relay's prefix guarantee, so the test asserts the operational properties:
// the full response does not sneak through, the failed direction reports a
// typed error exactly once, and nothing leaks.
func TestPassthroughMidStreamReset(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	request := corpus.Generate(corpus.Moderate, 1024, 3)
	response := corpus.Generate(corpus.Low, 1<<20, 4)

	target, receivedRequest := startRequestResponse(t, response)
	collector := &statsCollector{}
	cfgExit := tunnel.Config{
		Passthrough: true,
		OnDone:      collector.add,
		Logf:        t.Logf,
		WrapWire: func(c net.Conn) net.Conn {
			return faultio.WrapConn(c, faultio.Config{Seed: 29, ResetAfter: 100 << 10})
		},
	}
	cfgEntry := tunnel.Config{Passthrough: true, OnDone: collector.add, Logf: t.Logf}

	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", target, cfgExit)
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfgEntry)
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(request); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	echoed, _ := io.ReadAll(conn)
	if len(echoed) == len(response) {
		t.Fatal("reset at 100 KB delivered the full 1 MB response")
	}
	if got := receivedRequest(); !bytes.Equal(got, request) {
		t.Fatalf("service received %d bytes, want the intact %d-byte request", len(got), len(request))
	}

	stats := waitStats(t, collector, 2)
	sawTyped := false
	for _, s := range stats {
		if s.Err != nil {
			if !typedErr(s.Err) {
				t.Errorf("%s err %v does not wrap a typed sentinel", s.Direction, s.Err)
			}
			sawTyped = true
		}
	}
	if !sawTyped {
		t.Error("no direction surfaced the mid-stream reset")
	}
}

// TestPassthroughIdleTimeout stalls the wire mid-response: the passthrough
// relay's rolling deadlines (both splice and fallback paths set them) must
// tear the direction down with ErrIdleTimeout.
func TestPassthroughIdleTimeout(t *testing.T) {
	leakcheck.Check(t)
	response := corpus.Generate(corpus.Low, 1<<20, 9)
	target, _ := startRequestResponse(t, response)
	collector := &statsCollector{}
	cfgExit := tunnel.Config{
		Passthrough: true,
		OnDone:      collector.add,
		Logf:        t.Logf,
		IdleTimeout: 200 * time.Millisecond,
		WrapWire: func(c net.Conn) net.Conn {
			return faultio.WrapConn(c, faultio.Config{Seed: 5, StallAfter: 64 << 10})
		},
	}
	cfgEntry := tunnel.Config{Passthrough: true, OnDone: collector.add, Logf: t.Logf, IdleTimeout: time.Second}

	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", target, cfgExit)
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfgEntry)
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("request"))
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	start := time.Now()
	io.ReadAll(conn)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stalled passthrough took %v to fail, want bounded teardown", elapsed)
	}

	stats := waitStats(t, collector, 2)
	foundTimeout := false
	for _, s := range stats {
		if s.Err != nil && errors.Is(s.Err, tunnel.ErrIdleTimeout) {
			foundTimeout = true
		}
	}
	if !foundTimeout {
		t.Errorf("no direction reported ErrIdleTimeout; stats: %+v", stats)
	}
}

// TestRelayCoalescingFlushesPartialBlocks runs an interactive exchange —
// small request, small response, the client never half-closes — through a
// framed tunnel. Without the coalescing flush deadline a sub-block payload
// would sit in the writer until EOF and this exchange would deadlock; with
// it, each message must complete within a bound far below the test timeout.
func TestRelayCoalescingFlushesPartialBlocks(t *testing.T) {
	leakcheck.Check(t)
	addr, _ := startTunnel(t, tunnel.Config{Static: true, StaticLevel: 1})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := corpus.Generate(corpus.Moderate, 4<<10, 31)
	buf := make([]byte, len(msg))
	for round := 0; round < 3; round++ {
		start := time.Now()
		if _, err := conn.Write(msg); err != nil {
			t.Fatalf("round %d: write: %v", round, err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("round %d: echo never arrived (coalescing flush broken?): %v", round, err)
		}
		if !bytes.Equal(buf, msg) {
			t.Fatalf("round %d: echo mismatch", round)
		}
		if rtt := time.Since(start); rtt > 2*time.Second {
			t.Fatalf("round %d: interactive RTT %v, want well under a second", round, rtt)
		}
	}
}

// TestRelayFlushIntervalDisabled pins the opt-out: a negative FlushInterval
// restores only-full-blocks framing, so a sub-block payload arrives only
// after the client half-closes (writer Close flushes the remainder).
func TestRelayFlushIntervalDisabled(t *testing.T) {
	leakcheck.Check(t)
	addr, _ := startTunnel(t, tunnel.Config{Static: true, StaticLevel: 1, FlushInterval: -1})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("small interactive request")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	// No flush deadline: nothing may arrive while the conn stays open.
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if n, _ := conn.Read(make([]byte, 1)); n != 0 {
		t.Fatal("partial block flushed despite FlushInterval < 0")
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	echoed, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echoed, msg) {
		t.Fatalf("echo mismatch after close-flush: %q", echoed)
	}
}

// TestRelayCopyAccountingMetrics pins the PR's headline gate at the metric
// level: NO-level framed traffic and passthrough traffic must both relay
// with bytes_copied_per_byte_relayed ≈ 0 (< 1.0 is the CI gate), while a
// compressing level reports its codec copies.
func TestRelayCopyAccountingMetrics(t *testing.T) {
	leakcheck.Check(t)
	payload := corpus.Generate(corpus.High, 2<<20, 41)

	run := func(t *testing.T, cfg tunnel.Config) *obs.Registry {
		reg := obs.NewRegistry()
		cfg.Obs = reg.Scope("tunnel")
		addr, collector := startTunnel(t, cfg)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		go func() {
			conn.Write(payload)
			conn.(*net.TCPConn).CloseWrite()
		}()
		if _, err := io.ReadAll(conn); err != nil {
			t.Fatal(err)
		}
		waitStats(t, collector, 2)
		return reg
	}
	counter := func(t *testing.T, reg *obs.Registry, name string) int64 {
		t.Helper()
		c, ok := reg.Get(name).(*obs.Counter)
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		return c.Value()
	}
	ratioOf := func(t *testing.T, reg *obs.Registry) float64 {
		t.Helper()
		f, ok := reg.Get("tunnel.relay.bytes_copied_per_byte_relayed").(*obs.FloatFuncMetric)
		if !ok {
			t.Fatal("ratio metric not registered")
		}
		return f.Value()
	}

	t.Run("no-level", func(t *testing.T) {
		// NOTE: only the entry endpoint carries the obs scope in these
		// runs (startTunnel shares cfg, but reg is per-run), so counters
		// cover the entry's tx (ReadDirect + stored-raw vectored frames)
		// and rx (identity frames streamed direct) paths.
		reg := run(t, tunnel.Config{Static: true, StaticLevel: 0})
		if copied := counter(t, reg, "tunnel.relay.bytes_copied"); copied != 0 {
			t.Errorf("bytes_copied = %d at NO level, want 0", copied)
		}
		if pt := counter(t, reg, "tunnel.relay.passthrough_bytes"); pt < int64(len(payload)) {
			t.Errorf("passthrough_bytes = %d, want >= %d", pt, len(payload))
		}
		if ratio := ratioOf(t, reg); ratio >= 1.0 || ratio != 0 {
			t.Errorf("bytes_copied_per_byte_relayed = %v at NO level, want 0", ratio)
		}
	})
	t.Run("passthrough", func(t *testing.T) {
		reg := run(t, tunnel.Config{Passthrough: true})
		if copied := counter(t, reg, "tunnel.relay.bytes_copied"); copied != 0 {
			t.Errorf("bytes_copied = %d in passthrough, want 0", copied)
		}
		if ratio := ratioOf(t, reg); ratio != 0 {
			t.Errorf("bytes_copied_per_byte_relayed = %v in passthrough, want 0", ratio)
		}
	})
	t.Run("light-compresses-and-copies", func(t *testing.T) {
		reg := run(t, tunnel.Config{Static: true, StaticLevel: 1})
		copied := counter(t, reg, "tunnel.relay.bytes_copied")
		if copied == 0 {
			t.Error("bytes_copied = 0 at LIGHT, codec copies must be accounted")
		}
		// Even compressing, the refactor keeps the relay at about one
		// user-space copy per byte (the codec transform itself).
		if ratio := ratioOf(t, reg); ratio <= 0 || ratio > 1.5 {
			t.Errorf("bytes_copied_per_byte_relayed = %v at LIGHT, want (0, 1.5]", ratio)
		}
	})
}
