package tunnel_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/corpus"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/tunnel"
)

// startEcho runs a TCP echo server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// startTunnel builds echo <- exit <- entry and returns the entry address
// and a stats collector.
func startTunnel(t *testing.T, cfg tunnel.Config) (string, *statsCollector) {
	t.Helper()
	collector := &statsCollector{}
	cfg.OnDone = collector.add
	cfg.Logf = t.Logf

	echo := startEcho(t)
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", echo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { exit.Close() })
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { entry.Close() })
	return entry.Addr().String(), collector
}

type statsCollector struct {
	mu    sync.Mutex
	stats []tunnel.ConnStats
}

func (c *statsCollector) add(s tunnel.ConnStats) {
	c.mu.Lock()
	c.stats = append(c.stats, s)
	c.mu.Unlock()
}

func (c *statsCollector) snapshot() []tunnel.ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tunnel.ConnStats(nil), c.stats...)
}

func TestTunnelEchoRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t) // relay copy buffers and stream arenas must be released
	addr, collector := startTunnel(t, tunnel.Config{Window: 30 * time.Millisecond})
	payload := corpus.Generate(corpus.High, 4<<20, 1)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var writeErr error
	go func() {
		if _, err := conn.Write(payload); err != nil {
			writeErr = err
		}
		conn.(*net.TCPConn).CloseWrite()
	}()
	echoed, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read echo: %v", err)
	}
	if writeErr != nil {
		t.Fatalf("write: %v", writeErr)
	}
	if !bytes.Equal(echoed, payload) {
		t.Fatalf("echo mismatch: got %d bytes, want %d", len(echoed), len(payload))
	}

	// Both directions must have produced sender stats covering the
	// payload volume.
	deadline := time.After(5 * time.Second)
	for {
		stats := collector.snapshot()
		if len(stats) >= 2 {
			var dirs []string
			for _, s := range stats {
				if s.Stats.AppBytes != int64(len(payload)) {
					t.Fatalf("%s carried %d app bytes, want %d", s.Direction, s.Stats.AppBytes, len(payload))
				}
				dirs = append(dirs, s.Direction)
			}
			t.Logf("directions: %v", dirs)
			return
		}
		select {
		case <-deadline:
			t.Fatalf("only %d direction stats arrived", len(stats))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestTunnelStaticCompressionShrinksWire(t *testing.T) {
	leakcheck.Check(t)
	addr, collector := startTunnel(t, tunnel.Config{Static: true, StaticLevel: 1})
	payload := corpus.Generate(corpus.High, 2<<20, 2)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		conn.Write(payload)
		conn.(*net.TCPConn).CloseWrite()
	}()
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		stats := collector.snapshot()
		if len(stats) >= 2 {
			for _, s := range stats {
				if ratio := float64(s.Stats.WireBytes) / float64(s.Stats.AppBytes); ratio > 0.5 {
					t.Fatalf("%s: wire ratio %.2f on HIGH data at LIGHT", s.Direction, ratio)
				}
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("stats never arrived")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestTunnelDirectionsAdaptIndependently sends highly compressible data one
// way and incompressible data the other through a single connection: each
// direction has its own decision model, so the wire ratios must diverge.
func TestTunnelDirectionsAdaptIndependently(t *testing.T) {
	leakcheck.Check(t)
	collector := &statsCollector{}
	cfg := tunnel.Config{Static: true, StaticLevel: 1, OnDone: collector.add, Logf: t.Logf}

	// The "service": reads everything, then responds with LOW data.
	lowData := corpus.Generate(corpus.Low, 2<<20, 7)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
		conn.Write(lowData)
		conn.(*net.TCPConn).CloseWrite()
	}()

	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", ln.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	highData := corpus.Generate(corpus.High, 2<<20, 7)
	go func() {
		conn.Write(highData)
		conn.(*net.TCPConn).CloseWrite()
	}()
	echoed, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(echoed, lowData) {
		t.Fatalf("response corrupted: %d bytes, want %d", len(echoed), len(lowData))
	}

	deadline := time.After(5 * time.Second)
	for {
		stats := collector.snapshot()
		if len(stats) >= 2 {
			ratios := map[string]float64{}
			for _, s := range stats {
				if s.Stats.AppBytes > 0 {
					ratios[s.Direction] = float64(s.Stats.WireBytes) / float64(s.Stats.AppBytes)
				}
			}
			// HIGH data travels entry->exit; LOW data exit->entry.
			if ratios["entry->exit"] > 0.5 {
				t.Errorf("compressible direction ratio %.2f", ratios["entry->exit"])
			}
			if ratios["exit->entry"] < 0.8 {
				t.Errorf("incompressible direction ratio %.2f suspiciously low", ratios["exit->entry"])
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("stats incomplete: %d", len(stats))
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestTunnelManyConcurrentConnections(t *testing.T) {
	leakcheck.Check(t)
	addr, _ := startTunnel(t, tunnel.Config{Window: 20 * time.Millisecond})
	const conns = 16
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := corpus.Generate(corpus.Kind(i%3), 200<<10, uint64(i))
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			go func() {
				conn.Write(payload)
				conn.(*net.TCPConn).CloseWrite()
			}()
			echoed, err := io.ReadAll(conn)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(echoed, payload) {
				errs <- io.ErrUnexpectedEOF
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent connection failed: %v", err)
	}
}

func TestTunnelEndpointClose(t *testing.T) {
	leakcheck.Check(t)
	echo := startEcho(t)
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", echo, tunnel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := exit.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Dialing a closed endpoint fails quickly.
	if conn, err := net.DialTimeout("tcp", exit.Addr().String(), 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("closed endpoint still accepting")
	}
}

func TestTunnelExitDialFailure(t *testing.T) {
	leakcheck.Check(t)
	// Exit points at a dead target: client connections must be closed,
	// not hang.
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", "127.0.0.1:1", tunnel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), tunnel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()
	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection teardown")
	}
}
