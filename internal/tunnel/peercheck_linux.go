//go:build linux

package tunnel

import (
	"net"
	"syscall"
)

// peerAlive reports whether a parked connection's client is still there. A
// connection can spend a long time in the accept queue; if the client gave
// up and closed while parked, dialing the peer and spinning up a relay for
// it wastes the slot the connection just waited for. The probe is a
// non-blocking MSG_PEEK: it consumes nothing, so a live connection's
// pending bytes stay in the socket for the relay.
//
//   - 1 byte peeked: the client sent data (and may have half-closed after
//     — that data still deserves service) -> alive.
//   - 0 bytes, no error: orderly FIN with nothing pending -> dead.
//   - EAGAIN: open, nothing sent yet -> alive.
//   - ECONNRESET: dead.
//
// Any conn that does not expose a syscall descriptor is assumed alive; the
// relay's first read discovers the truth.
func peerAlive(conn net.Conn) bool {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return true
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return true
	}
	alive := true
	var buf [1]byte
	raw.Control(func(fd uintptr) {
		n, _, err := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		if (n == 0 && err == nil) || err == syscall.ECONNRESET {
			alive = false
		}
	})
	return alive
}
