//go:build !linux

package tunnel

import (
	"net"
	"time"
)

// spliceStream is the non-Linux stub: never applicable, so the passthrough
// relay always takes the portable pooled-buffer copy loop (copyDirect's
// fallback). The two paths relay byte-identical streams — see the
// passthrough matrix test.
func spliceStream(dst, src net.Conn, idle time.Duration) (n int64, ok bool, err error) {
	return 0, false, nil
}
