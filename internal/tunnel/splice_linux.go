//go:build linux

package tunnel

import (
	"net"
	"os"
	"syscall"
	"time"
)

// spliceStream moves src's byte stream into dst entirely inside the kernel
// with splice(2): socket -> pipe -> socket, no byte ever entering user
// space. It is the passthrough relay's Linux fast path.
//
// It engages only when both ends are raw *net.TCPConn (a fault-injected or
// otherwise wrapped conn is not, which is exactly the seam the chaos tests
// rely on: wrapping the wire forces the portable copy loop where faults are
// observable). ok=false means "not applicable, fall back" — returned before
// any byte moves, also when the kernel rejects the first splice with
// EINVAL/ENOSYS. Once bytes have moved there is no going back: errors are
// returned as-is, with deadline expiries satisfying net.Error.Timeout()
// like ordinary conn reads, so the caller's idle-timeout classification
// works unchanged.
//
// The pipe is non-blocking and fully drained into dst after every inbound
// splice, so an EAGAIN on the inbound side always means "source empty":
// the raw-conn Read callback then parks on readability under the rolling
// idle deadline. Each splice moves at most relayBufSize bytes — the same
// unit the portable fallback and the stream block size use.
func spliceStream(dst, src net.Conn, idle time.Duration) (n int64, ok bool, err error) {
	srcTCP, okS := src.(*net.TCPConn)
	dstTCP, okD := dst.(*net.TCPConn)
	if !okS || !okD {
		return 0, false, nil
	}
	srcRaw, err := srcTCP.SyscallConn()
	if err != nil {
		return 0, false, nil
	}
	dstRaw, err := dstTCP.SyscallConn()
	if err != nil {
		return 0, false, nil
	}
	var pipeFds [2]int
	if err := syscall.Pipe2(pipeFds[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		return 0, false, nil
	}
	defer syscall.Close(pipeFds[0])
	defer syscall.Close(pipeFds[1])

	// splice(2) flags; the syscall package exposes Splice but not these.
	const (
		spliceFMove     = 0x1 // SPLICE_F_MOVE
		spliceFNonblock = 0x2 // SPLICE_F_NONBLOCK
	)
	const flags = spliceFMove | spliceFNonblock
	var total int64
	for {
		if idle > 0 {
			if err := srcTCP.SetReadDeadline(time.Now().Add(idle)); err != nil {
				return total, true, err
			}
		}
		var in int64
		var inErr error
		waitErr := srcRaw.Read(func(fd uintptr) bool {
			for {
				in, inErr = syscall.Splice(int(fd), nil, pipeFds[1], nil, relayBufSize, flags)
				if inErr == syscall.EINTR {
					continue
				}
				// The pipe is empty (always drained below), so EAGAIN can
				// only mean the socket has no data: park until readable.
				return inErr != syscall.EAGAIN
			}
		})
		if waitErr != nil {
			return total, true, waitErr
		}
		if inErr != nil {
			if total == 0 && (inErr == syscall.EINVAL || inErr == syscall.ENOSYS) {
				return 0, false, nil
			}
			return total, true, os.NewSyscallError("splice", inErr)
		}
		if in == 0 {
			return total, true, nil // EOF
		}
		for rem := in; rem > 0; {
			if idle > 0 {
				if err := dstTCP.SetWriteDeadline(time.Now().Add(idle)); err != nil {
					return total, true, err
				}
			}
			var out int64
			var outErr error
			waitErr := dstRaw.Write(func(fd uintptr) bool {
				for {
					out, outErr = syscall.Splice(pipeFds[0], nil, int(fd), nil, int(rem), flags)
					if outErr == syscall.EINTR {
						continue
					}
					// EAGAIN here means the socket send buffer is full:
					// park until writable.
					return outErr != syscall.EAGAIN
				}
			})
			if waitErr != nil {
				return total, true, waitErr
			}
			if outErr != nil {
				return total, true, os.NewSyscallError("splice", outErr)
			}
			if out <= 0 {
				return total, true, os.NewSyscallError("splice", syscall.EIO)
			}
			rem -= out
			total += out
		}
	}
}
