package tunnel_test

import (
	"bytes"
	"context"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/faultio"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/obs"
	"adaptio/internal/tunnel"
)

// scaleHarness is an echo service behind an exit+entry pair where only the
// entry carries the admission config under test; the exit is unlimited so
// the entry is the bottleneck being observed.
type scaleHarness struct {
	reg   *obs.Registry
	entry *tunnel.Endpoint
	exit  *tunnel.Endpoint
	addr  string
}

func startScaleHarness(t *testing.T, entryCfg tunnel.Config) *scaleHarness {
	t.Helper()
	echo := startEcho(t)
	reg := obs.NewRegistry()
	entryCfg.Obs = reg.Scope("tunnel")
	entryCfg.Logf = t.Logf
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", echo, tunnel.Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { exit.Close() })
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), entryCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { entry.Close() })
	return &scaleHarness{reg: reg, entry: entry, exit: exit, addr: entry.Addr().String()}
}

func (h *scaleHarness) counter(t *testing.T, name string) int64 {
	t.Helper()
	c, ok := h.reg.Get(name).(*obs.Counter)
	if !ok {
		t.Fatalf("metric %q missing or not a counter", name)
	}
	return c.Value()
}

func (h *scaleHarness) gauge(t *testing.T, name string) int64 {
	t.Helper()
	g, ok := h.reg.Get(name).(*obs.Gauge)
	if !ok {
		t.Fatalf("metric %q missing or not a gauge", name)
	}
	return g.Value()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// holdConn dials the harness and keeps the connection open (one relay slot
// occupied) until the returned release func runs.
func holdConn(t *testing.T, addr string) func() {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hold")); err != nil {
		t.Fatal(err)
	}
	return func() { conn.Close() }
}

// TestMaxConnsShedsExcess fills every relay slot, then verifies that further
// connections are shed — closed without service — and that the admission
// metrics account for every arrival.
func TestMaxConnsShedsExcess(t *testing.T) {
	leakcheck.Check(t)
	h := startScaleHarness(t, tunnel.Config{MaxConns: 2})

	r1 := holdConn(t, h.addr)
	r2 := holdConn(t, h.addr)
	defer r1()
	defer r2()
	waitFor(t, "both slots busy", func() bool { return h.counter(t, "tunnel.conns.accepted") == 2 })

	const excess = 5
	for i := 0; i < excess; i++ {
		conn, err := net.Dial("tcp", h.addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		// A shed connection is closed without service: the read must fail
		// fast with no payload ever arriving.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if n, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatalf("shed connection %d delivered %d bytes", i, n)
		}
		conn.Close()
	}
	waitFor(t, "shed counter", func() bool { return h.counter(t, "tunnel.conns.shed") == excess })
	if accepted := h.counter(t, "tunnel.conns.accepted"); accepted != 2 {
		t.Fatalf("accepted = %d, want 2", accepted)
	}

	// Releasing a slot restores service for new arrivals.
	r1()
	waitFor(t, "slot release", func() bool { return h.gauge(t, "tunnel.conns.active") < 2 })
	conn, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := []byte("after release")
	conn.Write(payload)
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	echoed, err := io.ReadAll(conn)
	if err != nil || !bytes.Equal(echoed, payload) {
		t.Fatalf("post-shed echo failed: %q, %v", echoed, err)
	}
}

// TestAcceptQueueParksThenServes verifies the middle band: a connection
// beyond MaxConns but within AcceptQueue parks (visible in the queued
// gauge), then gets served once a slot frees, with its wait recorded in the
// queue-wait histogram.
func TestAcceptQueueParksThenServes(t *testing.T) {
	leakcheck.Check(t)
	h := startScaleHarness(t, tunnel.Config{MaxConns: 1, AcceptQueue: 4})

	release := holdConn(t, h.addr)
	waitFor(t, "slot busy", func() bool { return h.counter(t, "tunnel.conns.accepted") == 1 })

	queued, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	waitFor(t, "connection queued", func() bool { return h.gauge(t, "tunnel.conns.queued") == 1 })

	// Free the slot: the queued connection must unpark and serve normally.
	release()
	payload := []byte("queued then served")
	if _, err := queued.Write(payload); err != nil {
		t.Fatal(err)
	}
	queued.(*net.TCPConn).CloseWrite()
	queued.SetReadDeadline(time.Now().Add(10 * time.Second))
	echoed, err := io.ReadAll(queued)
	if err != nil || !bytes.Equal(echoed, payload) {
		t.Fatalf("queued echo failed: %q, %v", echoed, err)
	}

	hist, ok := h.reg.Get("tunnel.conns.queue_wait_ms").(*obs.Histogram)
	if !ok {
		t.Fatal("queue_wait_ms histogram missing")
	}
	if hist.Count() < 1 {
		t.Fatalf("queue wait histogram recorded %d observations, want >= 1", hist.Count())
	}
	if h.gauge(t, "tunnel.conns.queued") != 0 {
		t.Fatalf("queued gauge = %d after service, want 0", h.gauge(t, "tunnel.conns.queued"))
	}
}

// TestGracefulDrainCompletesInFlight closes the entry while a response is
// still being produced: Close must wait for the in-flight relay (within
// ShutdownGrace), the client must receive the complete response, and no
// goroutine may leak.
func TestGracefulDrainCompletesInFlight(t *testing.T) {
	leakcheck.Check(t)
	response := corpus.Generate(corpus.Moderate, 256<<10, 11)

	// Service: read the request, pause, then respond — so the relay is
	// mid-flight when Close begins.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
		time.Sleep(200 * time.Millisecond)
		conn.Write(response)
		conn.(*net.TCPConn).CloseWrite()
	}()

	reg := obs.NewRegistry()
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", ln.Addr().String(), tunnel.Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer exit.Close()
	entryCfg := tunnel.Config{ShutdownGrace: 10 * time.Second, Obs: reg.Scope("tunnel"), Logf: t.Logf}
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), entryCfg)
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("request"))
	conn.(*net.TCPConn).CloseWrite()

	active, _ := reg.Get("tunnel.conns.active").(*obs.Gauge)
	waitFor(t, "relay active", func() bool { return active.Value() == 1 })

	closed := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		entry.Close()
		closed <- time.Since(start)
	}()

	// New arrivals during the drain are refused (the listener is closed).
	waitNewDialsFail(t, entry.Addr().String())

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	echoed, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("in-flight transfer broken by drain: %v", err)
	}
	if !bytes.Equal(echoed, response) {
		t.Fatalf("drain truncated the response: got %d bytes, want %d", len(echoed), len(response))
	}

	elapsed := <-closed
	if elapsed > 9*time.Second {
		t.Fatalf("Close took %v: force-close fired instead of graceful completion", elapsed)
	}
}

// waitNewDialsFail asserts that addr refuses (or immediately closes) new
// connections — the endpoint has stopped accepting.
func waitNewDialsFail(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return // refused: drain confirmed
		}
		// The kernel may still complete the handshake from the backlog;
		// service must nevertheless never begin.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			conn.Close()
			t.Fatal("endpoint served a connection dialed during drain")
		}
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("dials kept succeeding after drain began")
}

// TestDrainShedsQueuedConns verifies that Close unparks connections waiting
// in the accept queue and sheds them instead of serving them.
func TestDrainShedsQueuedConns(t *testing.T) {
	leakcheck.Check(t)
	h := startScaleHarness(t, tunnel.Config{MaxConns: 1, AcceptQueue: 2, ShutdownGrace: 500 * time.Millisecond})

	release := holdConn(t, h.addr)
	defer release()
	waitFor(t, "slot busy", func() bool { return h.counter(t, "tunnel.conns.accepted") == 1 })

	queued, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	waitFor(t, "connection queued", func() bool { return h.gauge(t, "tunnel.conns.queued") == 1 })

	start := time.Now()
	if err := h.entry.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}

	// The queued connection was shed, never served.
	if shed := h.counter(t, "tunnel.conns.shed"); shed < 1 {
		t.Fatalf("shed = %d, want >= 1 (the queued conn)", shed)
	}
	if accepted := h.counter(t, "tunnel.conns.accepted"); accepted != 1 {
		t.Fatalf("accepted = %d, want 1", accepted)
	}
	queued.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := queued.Read(make([]byte, 1)); err == nil {
		t.Fatalf("shed queued connection delivered %d bytes", n)
	}
}

// TestDrainForceClosesStalledRelayUnderFaults injects a wire stall
// (internal/faultio) so an in-flight relay can never finish, then verifies
// Close force-closes it once ShutdownGrace expires — bounded teardown, no
// leaked goroutines — while shedding everything that arrives mid-drain.
func TestDrainForceClosesStalledRelayUnderFaults(t *testing.T) {
	leakcheck.Check(t)
	response := corpus.Generate(corpus.Low, 1<<20, 17)
	target, _ := startRequestResponse(t, response)

	reg := obs.NewRegistry()
	exitCfg := tunnel.Config{
		Static: true, StaticLevel: 1,
		Logf: t.Logf,
		Obs:  reg.Scope("tunnel"),
		// Stall the wire after 32 KB: the response jams mid-relay forever.
		WrapWire: func(c net.Conn) net.Conn {
			return faultio.WrapConn(c, faultio.Config{Seed: 23, StallAfter: 32 << 10})
		},
		ShutdownGrace: 300 * time.Millisecond,
		MaxConns:      4,
	}
	exit, err := tunnel.ListenExit(context.Background(), "127.0.0.1:0", target, exitCfg)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := tunnel.ListenEntry(context.Background(), "127.0.0.1:0", exit.Addr().String(), tunnel.Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer entry.Close()

	conn, err := net.Dial("tcp", entry.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("request"))
	conn.(*net.TCPConn).CloseWrite()

	active, _ := reg.Get("tunnel.conns.active").(*obs.Gauge)
	waitFor(t, "stalled relay active", func() bool { return active.Value() >= 1 })
	// Give the stall time to trip (the response hits the 32 KB threshold).
	time.Sleep(100 * time.Millisecond)

	start := time.Now()
	if err := exit.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close of a stalled relay took %v, want ~ShutdownGrace", elapsed)
	}
}

// TestGoroutineBoundUnderBurst fires far more concurrent clients than
// MaxConns+AcceptQueue and asserts the endpoint's goroutine count stays
// bounded by the pool, not the arrival rate.
func TestGoroutineBoundUnderBurst(t *testing.T) {
	leakcheck.Check(t)
	const (
		maxConns = 4
		queue    = 4
		clients  = 80
	)
	h := startScaleHarness(t, tunnel.Config{MaxConns: maxConns, AcceptQueue: queue})

	baseline := runtime.NumGoroutine()
	var peak int
	stopSampling := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := corpus.Generate(corpus.Kind(i%3), 8<<10, uint64(i))
			conn, err := net.Dial("tcp", h.addr)
			if err != nil {
				return // kernel backlog overflow under burst: fine
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(15 * time.Second))
			go func() {
				conn.Write(payload)
				conn.(*net.TCPConn).CloseWrite()
			}()
			io.Copy(io.Discard, conn)
		}(i)
	}
	wg.Wait()
	close(stopSampling)
	samplerDone.Wait()

	// Every served connection costs a handful of goroutines (serve + two
	// relay directions + shutdown watchdog) on each of the two endpoints,
	// and each client burns up to two itself (dialer + writer). Beyond
	// that, growth must not track the 80-client burst: parked queue
	// entries cost exactly one goroutine each.
	served := maxConns + queue
	bound := baseline + clients*2 + served*8 + 24
	if peak > bound {
		t.Fatalf("goroutine peak %d exceeds bound %d (baseline %d): pool not bounding concurrency", peak, bound, baseline)
	}

	accepted := h.counter(t, "tunnel.conns.accepted")
	shed := h.counter(t, "tunnel.conns.shed")
	if accepted+shed == 0 {
		t.Fatal("no admissions recorded")
	}
	if shed == 0 {
		t.Logf("burst never overflowed the queue (accepted=%d); bound still verified", accepted)
	}
	t.Logf("burst: accepted=%d shed=%d peak_goroutines=%d (baseline %d)", accepted, shed, peak, baseline)
}
