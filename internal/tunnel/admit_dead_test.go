package tunnel_test

import (
	"net"
	"testing"
	"time"

	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/tunnel"
)

// TestQueuedConnDeadPeerIsShed covers the queue-timeout edge of admit.go: a
// connection parked in the accept queue whose client disconnects before a
// relay slot frees must be shed when it finally unparks — counted in
// tunnel.conns.shed, never in conns.accepted, and with no goroutine left
// behind. Without the unpark-time liveness probe the tunnel would burn the
// freed slot dialing the peer for a client that already left.
func TestQueuedConnDeadPeerIsShed(t *testing.T) {
	leakcheck.Check(t)
	h := startScaleHarness(t, tunnel.Config{MaxConns: 1, AcceptQueue: 2})

	release := holdConn(t, h.addr)
	defer release()
	waitFor(t, "slot busy", func() bool { return h.counter(t, "tunnel.conns.accepted") == 1 })

	// Park a second connection, then hang up without sending a byte while
	// it is still waiting for the slot.
	queued, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "connection queued", func() bool { return h.gauge(t, "tunnel.conns.queued") == 1 })
	queued.Close()
	// The FIN crosses the loopback before anything can unpark the
	// connection: the slot it is waiting for is still held below.
	time.Sleep(20 * time.Millisecond)

	// Free the slot: the dead parked connection unparks, fails the
	// liveness probe, and is shed rather than served.
	release()
	waitFor(t, "dead queued conn shed", func() bool { return h.counter(t, "tunnel.conns.shed") == 1 })
	if accepted := h.counter(t, "tunnel.conns.accepted"); accepted != 1 {
		t.Fatalf("accepted = %d, want 1 (the dead queued conn must not count)", accepted)
	}
	waitFor(t, "queue drained", func() bool { return h.gauge(t, "tunnel.conns.queued") == 0 })

	// The freed slot is usable again: a live client gets served.
	next := holdConn(t, h.addr)
	defer next()
	waitFor(t, "slot reusable", func() bool { return h.counter(t, "tunnel.conns.accepted") == 2 })
}

// TestQueuedConnHalfCloseStillServed pins the probe's boundary: a client
// that sent data and half-closed while parked is NOT dead — its bytes
// deserve a relay. Only a connection with neither data nor an open write
// side is shed.
func TestQueuedConnHalfCloseStillServed(t *testing.T) {
	leakcheck.Check(t)
	h := startScaleHarness(t, tunnel.Config{MaxConns: 1, AcceptQueue: 2})

	release := holdConn(t, h.addr)
	waitFor(t, "slot busy", func() bool { return h.counter(t, "tunnel.conns.accepted") == 1 })

	queued, err := net.Dial("tcp", h.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer queued.Close()
	payload := []byte("sent before hangup")
	if _, err := queued.Write(payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "connection queued", func() bool { return h.gauge(t, "tunnel.conns.queued") == 1 })
	queued.(*net.TCPConn).CloseWrite()
	time.Sleep(20 * time.Millisecond)

	release()
	waitFor(t, "half-closed conn served", func() bool { return h.counter(t, "tunnel.conns.accepted") == 2 })
	// Its payload echoes back: the pending bytes were relayed, not peeked
	// away by the probe.
	queued.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, len(payload))
	if _, err := queued.Read(buf); err != nil {
		t.Fatalf("echo read after half-close: %v", err)
	}
	if string(buf) != string(payload) {
		t.Fatalf("echo = %q, want %q", buf, payload)
	}
	if shed := h.counter(t, "tunnel.conns.shed"); shed != 0 {
		t.Fatalf("shed = %d, want 0", shed)
	}
}
