// Package tunnel provides an adaptive-compression TCP tunnel: a pair of
// proxies that transparently compress arbitrary TCP traffic between them
// with the paper's rate-based scheme. This is the "infrastructure agnostic"
// deployment story of the paper taken literally — a cloud customer inserts
// the tunnel between application and network without touching hypervisor,
// kernel, or application:
//
//	app ──plain──▶ Entry ══compressed══▶ Exit ──plain──▶ service
//	    ◀──plain──       ◀══compressed══      ◀──plain──
//
// Each direction of every connection carries an independent adaptive
// compression stream (its own Decider), so the two directions converge to
// different levels when their data or available bandwidth differ.
//
// The tunnel is hardened against the faults shared cloud I/O actually
// produces (see docs/robustness.md and internal/faultio): per-connection
// idle deadlines tear down stalled peers, dials retry with exponential
// backoff and jitter, shutdown is bounded by a grace period, and every
// failed connection direction reports a typed, wrapped error through
// ConnStats.Err.
//
// Under heavy traffic the endpoint bounds its own resources (see
// docs/scaling.md): Config.MaxConns caps concurrently served connections,
// Config.AcceptQueue bounds how many more may wait for a slot, and
// everything beyond that is shed — closed immediately and counted — so
// goroutine and buffer demand stay O(MaxConns + AcceptQueue) no matter how
// fast clients arrive. Endpoint.Close drains gracefully: stop accepting,
// shed the queue, let in-flight relays finish within ShutdownGrace, then
// force-close the rest.
package tunnel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"adaptio/internal/compress/probe"
	"adaptio/internal/coord"
	"adaptio/internal/core"
	"adaptio/internal/obs"
	"adaptio/internal/stream"
	"adaptio/internal/xrand"
)

// Typed sentinels carried (wrapped) by ConnStats.Err and relay errors.
var (
	// ErrDial marks a connection that never reached its peer: all dial
	// attempts (including retries) failed.
	ErrDial = errors.New("tunnel: dial failed")
	// ErrIdleTimeout marks a connection direction torn down because no
	// bytes crossed it within Config.IdleTimeout.
	ErrIdleTimeout = errors.New("tunnel: idle timeout")
)

// Dial/backoff defaults; see Config.
const (
	DefaultDialTimeout = 10 * time.Second
	DefaultDialBackoff = 100 * time.Millisecond
	maxDialBackoff     = 5 * time.Second
)

// Config tunes the compression and robustness behaviour of a tunnel
// endpoint.
type Config struct {
	// Window and Alpha parameterize the decision model (zero values mean
	// the paper's t=2 s, α=0.2).
	Window time.Duration
	Alpha  float64
	// Static pins a level instead of adapting (for comparison runs).
	Static      bool
	StaticLevel int
	// Decider names the solo level-selection policy each connection's
	// compress path drives (core.PolicyNames: "algone", "bandit",
	// "ewma"); empty means the paper's Algorithm 1. Ignored in Static
	// mode and while a Coord steers the stream. See docs/deciders.md.
	Decider string
	// Probe overrides the entropy pre-probe each connection's compress
	// path consults before handing a block to the codec (see
	// stream.WriterConfig.Probe): hopeless blocks go straight to
	// stored-raw framing, zero-copy on the direct-ingest relay path. Nil
	// means probe.Default(); &probe.Disabled() compresses every block
	// unconditionally. actunnel exposes this as -no-probe.
	Probe *probe.Config
	// DeciderSeed seeds stochastic policies; every connection derives a
	// distinct per-stream seed from it, so two endpoints with the same
	// seed make reproducible decision sequences per connection index.
	DeciderSeed uint64
	// OnDone, if non-nil, receives the sender-side compression stats of
	// every finished connection direction. ConnStats.Err, when non-nil,
	// wraps a typed sentinel: ErrIdleTimeout, stream.ErrBadFrame (via
	// *stream.FrameError), or the transport's net.Error.
	OnDone func(ConnStats)
	// Logf, if non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)

	// DialTimeout bounds each dial attempt to the peer or target. Zero
	// means DefaultDialTimeout.
	DialTimeout time.Duration
	// DialRetries is the number of extra dial attempts after the first
	// fails (0 = fail fast, the pre-hardening behaviour). Retries back
	// off exponentially from DialBackoff with ±50% jitter, capped at 5s.
	DialRetries int
	// DialBackoff is the base backoff between dial attempts. Zero means
	// DefaultDialBackoff.
	DialBackoff time.Duration
	// IdleTimeout, if > 0, bounds how long a connection direction may go
	// without a byte crossing it: each read and write carries a deadline
	// of now+IdleTimeout, so a stalled or vanished peer is detected and
	// the direction fails with an error wrapping ErrIdleTimeout instead
	// of hanging forever.
	IdleTimeout time.Duration
	// ShutdownGrace bounds Endpoint.Close: active connections get this
	// long to drain before being force-closed. Zero keeps the
	// force-close-immediately behaviour.
	ShutdownGrace time.Duration
	// MaxConns bounds the number of concurrently served connections (each
	// one costs a fixed set of relay goroutines and arena buffers). Zero
	// means unlimited — the pre-scaling behaviour. See docs/scaling.md.
	MaxConns int
	// AcceptQueue bounds how many connections beyond MaxConns may wait
	// for a relay slot before excess connections are shed (closed without
	// service). Zero means no queue: once MaxConns are busy, every new
	// connection sheds immediately. Ignored when MaxConns is zero.
	AcceptQueue int
	// WrapWire, if non-nil, wraps the wire-side (compressed) connection
	// before the relay uses it. This is the seam the fault-injection
	// tests use (internal/faultio.WrapConn); production configs leave it
	// nil. Wrapping also forces the passthrough relay off the splice(2)
	// fast path (a wrapped conn is not a *net.TCPConn), so chaos tests
	// intercept every byte.
	WrapWire func(net.Conn) net.Conn

	// Passthrough relays raw bytes with no framing or compression at all:
	// the operator's declaration that this tunnel's traffic is already
	// compressed (or otherwise not worth compressing), so the relay's job
	// reduces to moving bytes — via splice(2) entirely inside the kernel
	// on Linux TCP paths, via one pooled buffer elsewhere. Both tunnel
	// endpoints must agree on Passthrough (the wire carries no frames to
	// tell them apart) and the wire loses the frame CRC: integrity rests
	// on TCP's checksums alone, as with any plain TCP proxy. Static,
	// StaticLevel, Window, Alpha and Coord are ignored. See
	// docs/performance.md, "Zero-copy relay".
	Passthrough bool
	// FlushInterval bounds how long the compress path may hold a partial
	// block waiting for more data before cutting a frame, so low-rate or
	// interactive traffic is not stalled by full-block framing. Zero
	// means DefaultFlushInterval; negative disables the deadline (a
	// partial block then waits for a full block or EOF, the pre-PR-7
	// behaviour).
	FlushInterval time.Duration

	// Obs, if non-nil, is the observability scope the endpoint registers
	// its metrics under (conventionally "tunnel"): connection counts,
	// dial retry/failure counters, idle-timeout teardowns, relay byte
	// totals, plus the compression stream's own metrics under
	// "<scope>.stream.writer". actunnel wires this to -metrics-addr.
	Obs *obs.Scope

	// Coord, if non-nil, joins every connection's compress path to the
	// fleet-level compression coordinator: the stream registers when its
	// relay starts, takes its levels from the coordinator's weighted-fair
	// budget allocation, and detaches (falling back to the solo decision
	// model) when the connection closes. Ignored in Static mode — a
	// pinned level is an explicit operator decision. See
	// docs/coordination.md.
	Coord *coord.Coordinator
	// CoordWeight is the fair-share weight of this endpoint's streams in
	// the coordinator's budget division; zero means 1.
	CoordWeight float64
	// CoordTenant labels this endpoint's streams in coordinator
	// diagnostics.
	CoordTenant string
}

// tunnelMetrics are an endpoint's instruments, resolved once per endpoint
// so per-connection work never touches the registry.
type tunnelMetrics struct {
	connsTotal    *obs.Counter
	connsActive   *obs.Gauge
	connsPeak     *obs.Gauge
	connsAccepted *obs.Counter
	connsShed     *obs.Counter
	connsQueued   *obs.Gauge
	queueWaitMs   *obs.Histogram
	dialAttempts  *obs.Counter
	dialRetries   *obs.Counter
	dialFailures  *obs.Counter
	idleTimeouts  *obs.Counter
	txAppBytes    *obs.Counter // plain->wire direction, pre-compression
	txWireBytes   *obs.Counter
	txSwitches    *obs.Counter
	rxAppBytes    *obs.Counter // wire->plain direction, post-decompression
	rxWireBytes   *obs.Counter
	rxBlocks      *obs.Counter
	// Copy accounting (docs/performance.md, "Zero-copy relay"):
	// bytesCopied counts user-space buffer-to-buffer copies on the data
	// path, passthroughBytes counts bytes relayed without any. Their sum
	// over app bytes is exposed as bytes_copied_per_byte_relayed.
	bytesCopied      *obs.Counter
	passthroughBytes *obs.Counter
	// streamScope is forwarded to every connection's stream.Writer, so
	// all connections aggregate into one set of stream metrics.
	streamScope *obs.Scope
}

func newTunnelMetrics(scope *obs.Scope) *tunnelMetrics {
	conns := scope.Scope("conns")
	dial := scope.Scope("dial")
	relay := scope.Scope("relay")
	txApp := relay.Counter("tx_app_bytes")
	rxApp := relay.Counter("rx_app_bytes")
	copied := relay.Counter("bytes_copied")
	// The copy-accounting gate's observable: user-space copies per byte
	// relayed. 0 for pure zero-copy traffic (NO-level vectored frames,
	// splice passthrough), ~1 when every byte crosses one codec
	// transform, ~2 for the pre-PR-7 staging+transform relay loop.
	relay.FloatFunc("bytes_copied_per_byte_relayed", func() float64 {
		relayed := txApp.Value() + rxApp.Value()
		if relayed == 0 {
			return 0
		}
		return float64(copied.Value()) / float64(relayed)
	})
	return &tunnelMetrics{
		connsTotal:    conns.Counter("total"),
		connsActive:   conns.Gauge("active"),
		connsPeak:     conns.Gauge("peak"),
		connsAccepted: conns.Counter("accepted"),
		connsShed:     conns.Counter("shed"),
		connsQueued:   conns.Gauge("queued"),
		queueWaitMs:   conns.Histogram("queue_wait_ms", nil),
		dialAttempts:  dial.Counter("attempts"),
		dialRetries:   dial.Counter("retries"),
		dialFailures:  dial.Counter("failures"),
		idleTimeouts:  scope.Counter("idle_timeouts"),
		txAppBytes:    txApp,
		txWireBytes:   relay.Counter("tx_wire_bytes"),
		txSwitches:    relay.Counter("tx_level_switches"),
		rxAppBytes:    rxApp,
		rxWireBytes:   relay.Counter("rx_wire_bytes"),
		rxBlocks:      relay.Counter("rx_blocks"),

		bytesCopied:      copied,
		passthroughBytes: relay.Counter("passthrough_bytes"),
		streamScope:      scope.Scope("stream").Scope("writer"),
	}
}

// ConnStats describes one finished connection direction.
type ConnStats struct {
	// Direction is "entry->exit" or "exit->entry".
	Direction string
	Stats     stream.Stats
	Err       error
}

func (c Config) writerConfig(obsScope *obs.Scope) stream.WriterConfig {
	return stream.WriterConfig{
		Window:      c.Window,
		Alpha:       c.Alpha,
		Static:      c.Static,
		StaticLevel: c.StaticLevel,
		Obs:         obsScope,
		Probe:       c.Probe,
	}
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// jitterRNG drives backoff jitter. Determinism does not matter here (it
// never decides outcomes, only spreads retry instants), but xrand keeps the
// package free of math/rand's global state.
var jitterRNG = struct {
	sync.Mutex
	*xrand.RNG
}{RNG: xrand.New(0x7ea5)}

func jitter(d time.Duration) time.Duration {
	jitterRNG.Lock()
	f := 0.5 + jitterRNG.Float64() // uniform in [0.5, 1.5)
	jitterRNG.Unlock()
	return time.Duration(float64(d) * f)
}

// dialPeer dials addr with cfg's timeout, retry and backoff policy. The
// returned error wraps ErrDial.
func dialPeer(ctx context.Context, addr string, cfg Config, m *tunnelMetrics) (net.Conn, error) {
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	backoff := cfg.DialBackoff
	if backoff <= 0 {
		backoff = DefaultDialBackoff
	}
	d := net.Dialer{Timeout: timeout}
	var lastErr error
	for attempt := 0; ; attempt++ {
		m.dialAttempts.Inc()
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if attempt >= cfg.DialRetries || ctx.Err() != nil {
			m.dialFailures.Inc()
			return nil, fmt.Errorf("%w: %s after %d attempt(s): %v", ErrDial, addr, attempt+1, lastErr)
		}
		m.dialRetries.Inc()
		wait := jitter(backoff)
		if backoff < maxDialBackoff {
			backoff *= 2
		}
		cfg.logf("tunnel: dial %s attempt %d failed (%v), retrying in %v", addr, attempt+1, err, wait)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %s after %d attempt(s): %v", ErrDial, addr, attempt+1, lastErr)
		}
	}
}

// Endpoint is a running tunnel endpoint (entry or exit).
type Endpoint struct {
	ln        net.Listener
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	grace     time.Duration
	admit     *admitter
	closeOnce sync.Once
	closeErr  error
}

// Addr returns the endpoint's listen address.
func (e *Endpoint) Addr() net.Addr { return e.ln.Addr() }

// Close drains the endpoint gracefully: it stops accepting, sheds every
// connection still queued for a relay slot, gives in-flight relays
// Config.ShutdownGrace to finish (their peers see EOF), then force-closes
// whatever remains and waits for every relay goroutine to exit. With a zero
// grace it force-closes immediately. Close is idempotent; concurrent and
// repeated calls share one drain.
func (e *Endpoint) Close() error {
	e.closeOnce.Do(func() {
		e.closeErr = e.ln.Close()
		e.admit.drain()
		done := make(chan struct{})
		go func() {
			e.wg.Wait()
			close(done)
		}()
		if e.grace > 0 {
			t := time.NewTimer(e.grace)
			select {
			case <-done:
				t.Stop()
				e.cancel()
				return
			case <-t.C:
			}
		}
		e.cancel()
		<-done
	})
	return e.closeErr
}

// halfCloser is the subset of *net.TCPConn the relay needs for half-close
// semantics.
type halfCloser interface {
	net.Conn
	CloseWrite() error
	CloseRead() error
}

// ListenEntry starts the entry endpoint: applications connect to listenAddr
// with plain TCP; traffic is adaptively compressed toward the exit endpoint
// at exitAddr. Dials to the exit retry per Config.DialRetries.
func ListenEntry(ctx context.Context, listenAddr, exitAddr string, cfg Config) (*Endpoint, error) {
	return listen(ctx, listenAddr, cfg, exitAddr, true)
}

// ListenExit starts the exit endpoint: it accepts compressed tunnel
// connections and forwards plain TCP to targetAddr.
func ListenExit(ctx context.Context, listenAddr, targetAddr string, cfg Config) (*Endpoint, error) {
	return listen(ctx, listenAddr, cfg, targetAddr, false)
}

func listen(ctx context.Context, listenAddr string, cfg Config, dialAddr string, acceptsPlain bool) (*Endpoint, error) {
	if cfg.Decider != "" && !core.ValidPolicy(cfg.Decider) {
		return nil, fmt.Errorf("tunnel: unknown decider policy %q (want one of %v)", cfg.Decider, core.PolicyNames())
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	m := newTunnelMetrics(cfg.Obs)
	ep := &Endpoint{ln: ln, cancel: cancel, grace: cfg.ShutdownGrace, admit: newAdmitter(cfg, m)}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if runCtx.Err() == nil && !errors.Is(err, net.ErrClosed) {
					cfg.logf("tunnel: accept: %v", err)
				}
				return
			}
			// Admission control (docs/scaling.md): the accept loop never
			// blocks and never spawns a goroutine for a shed connection,
			// so goroutine count is O(MaxConns + AcceptQueue) regardless
			// of arrival rate.
			decision := ep.admit.tryAdmit()
			if decision == admitShed {
				ep.admit.shed(conn)
				continue
			}
			ep.wg.Add(1)
			go func() {
				defer ep.wg.Done()
				ep.serve(runCtx, conn, decision, dialAddr, cfg, acceptsPlain, m)
			}()
		}
	}()
	return ep, nil
}

// serve runs one admitted (or queued) connection to completion: wait for a
// relay slot if queued, dial the peer, then relay until both directions
// finish.
func (e *Endpoint) serve(ctx context.Context, conn net.Conn, decision admitDecision, dialAddr string, cfg Config, acceptsPlain bool, m *tunnelMetrics) {
	if decision == admitQueued {
		if !e.admit.wait(ctx.Done()) {
			e.admit.shed(conn)
			return
		}
	}
	defer e.admit.release()
	if decision == admitQueued && !peerAlive(conn) {
		// The client hung up while parked in the accept queue: shed
		// instead of dialing the peer and relaying a dead connection.
		e.admit.shed(conn)
		return
	}
	m.connsAccepted.Inc()
	peer, err := dialPeer(ctx, dialAddr, cfg, m)
	if err != nil {
		cfg.logf("tunnel: %v", err)
		conn.Close()
		return
	}
	var plain, wire net.Conn
	if acceptsPlain {
		plain, wire = conn, peer
	} else {
		plain, wire = peer, conn
	}
	if cfg.WrapWire != nil {
		wire = cfg.WrapWire(wire)
	}
	direction := "exit->entry"
	if acceptsPlain {
		direction = "entry->exit"
	}
	if relayErr := relay(ctx, plain, wire, cfg, direction, m); relayErr != nil {
		cfg.logf("tunnel: relay: %v", relayErr)
	}
}

// idleConn applies Config.IdleTimeout as a rolling per-operation deadline:
// every read and write must make progress within the window or fail with a
// timeout. It deliberately does not forward CloseWrite — half-close stays
// with the original conns in relay.
type idleConn struct {
	net.Conn
	idle time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.idle)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *idleConn) Write(p []byte) (int, error) {
	if err := c.Conn.SetWriteDeadline(time.Now().Add(c.idle)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// WriteVectored implements stream.VectoredWriter so the relay's frame
// writer keeps its writev fast path through the idle-deadline wrapper: the
// deadline covers the whole vectored write, and the pieces are re-dispatched
// on the inner conn (writev for a raw TCP conn, writeFull fallback for
// fault-injected wrappers).
func (c *idleConn) WriteVectored(hdr, payload []byte) error {
	if err := c.Conn.SetWriteDeadline(time.Now().Add(c.idle)); err != nil {
		return err
	}
	return stream.WriteVectored(c.Conn, hdr, payload)
}

// withIdle wraps c with the idle deadline policy when configured.
func withIdle(c net.Conn, idle time.Duration) net.Conn {
	if idle <= 0 {
		return c
	}
	return &idleConn{Conn: c, idle: idle}
}

// classify wraps err with the tunnel's typed sentinels: transport timeouts
// (idle deadline expiries, stalled peers) become ErrIdleTimeout; everything
// else passes through (stream framing errors already wrap
// stream.ErrBadFrame, transport errors are net.Errors).
func classify(err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrIdleTimeout, err)
	}
	return err
}

// relay shuttles one connection until both directions finish. Each
// direction is a relayPath (internal/tunnel/relaypath.go), chosen by the
// endpoint's configuration: the framed pair (compressPath / decompressPath)
// by default, the unframed passthroughPath pair under Config.Passthrough.
// Within the framed compress path the zero-copy choice is then re-made per
// block: whenever the level scheme sits at (or falls back to) NO, frames go
// out stored-raw and vectored, aliasing the pending block — so crossing
// into or out of NO mid-stream flips the data path without reconnecting.
func relay(ctx context.Context, plain, wire net.Conn, cfg Config, direction string, m *tunnelMetrics) error {
	defer plain.Close()
	defer wire.Close()
	m.connsTotal.Inc()
	m.connsActive.Add(1)
	m.connsPeak.SetMax(m.connsActive.Value())
	defer m.connsActive.Add(-1)

	var plainCW, wireCW halfCloser
	if hc, ok := plain.(halfCloser); ok {
		plainCW = hc
	}
	if hc, ok := wire.(halfCloser); ok {
		wireCW = hc
	}

	// Tear connections down if the endpoint is shut down mid-relay.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			plain.Close()
			wire.Close()
		case <-stop:
		}
	}()

	var tx, rx relayPath
	if cfg.Passthrough {
		tx = &passthroughPath{
			cfg: cfg, m: m, src: plain, dst: wire, dstCW: wireCW,
			label: "passthrough tx", direction: direction,
			appBytes: m.txAppBytes, wireBytes: m.txWireBytes, reportDone: true,
		}
		rx = &passthroughPath{
			cfg: cfg, m: m, src: wire, dst: plain, dstCW: plainCW,
			label:    "passthrough rx",
			appBytes: m.rxAppBytes, wireBytes: m.rxWireBytes,
		}
	} else {
		plainRW := withIdle(plain, cfg.IdleTimeout)
		wireRW := withIdle(wire, cfg.IdleTimeout)
		// The compress path reads the RAW plain conn: it owns that side's
		// read deadlines (idle + coalescing flush). plainRW still applies
		// the idle policy to the decompress path's writes.
		tx = &compressPath{cfg: cfg, m: m, direction: direction, plain: plain, wire: wireRW, wireCW: wireCW}
		rx = &decompressPath{cfg: cfg, m: m, wire: wireRW, plain: plainRW, plainCW: plainCW}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, p := range []relayPath{tx, rx} {
		wg.Add(1)
		go func(p relayPath) {
			defer wg.Done()
			if err := p.run(); err != nil {
				errs <- err
			}
		}(p)
	}
	wg.Wait()
	select {
	case err := <-errs:
		if isBenignNetErr(err) {
			return nil
		}
		return err
	default:
		return nil
	}
}

// isBenignNetErr filters the errors every TCP relay sees at teardown. Idle
// timeouts and framing errors are not benign: they indicate a stalled peer
// or a corrupted wire and must be surfaced.
func isBenignNetErr(err error) bool {
	if err == nil || errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		return true
	}
	if errors.Is(err, ErrIdleTimeout) || errors.Is(err, stream.ErrBadFrame) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false
	}
	var op *net.OpError
	return errors.As(err, &op)
}
