// Package tunnel provides an adaptive-compression TCP tunnel: a pair of
// proxies that transparently compress arbitrary TCP traffic between them
// with the paper's rate-based scheme. This is the "infrastructure agnostic"
// deployment story of the paper taken literally — a cloud customer inserts
// the tunnel between application and network without touching hypervisor,
// kernel, or application:
//
//	app ──plain──▶ Entry ══compressed══▶ Exit ──plain──▶ service
//	    ◀──plain──       ◀══compressed══      ◀──plain──
//
// Each direction of every connection carries an independent adaptive
// compression stream (its own Decider), so the two directions converge to
// different levels when their data or available bandwidth differ.
package tunnel

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"adaptio/internal/stream"
)

// Config tunes the compression side of a tunnel endpoint.
type Config struct {
	// Window and Alpha parameterize the decision model (zero values mean
	// the paper's t=2 s, α=0.2).
	Window time.Duration
	Alpha  float64
	// Static pins a level instead of adapting (for comparison runs).
	Static      bool
	StaticLevel int
	// OnDone, if non-nil, receives the sender-side compression stats of
	// every finished connection direction.
	OnDone func(ConnStats)
	// Logf, if non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// ConnStats describes one finished connection direction.
type ConnStats struct {
	// Direction is "entry->exit" or "exit->entry".
	Direction string
	Stats     stream.Stats
	Err       error
}

func (c Config) writerConfig() stream.WriterConfig {
	return stream.WriterConfig{
		Window:      c.Window,
		Alpha:       c.Alpha,
		Static:      c.Static,
		StaticLevel: c.StaticLevel,
	}
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Endpoint is a running tunnel endpoint (entry or exit).
type Endpoint struct {
	ln     net.Listener
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Addr returns the endpoint's listen address.
func (e *Endpoint) Addr() net.Addr { return e.ln.Addr() }

// Close stops accepting and waits for active connections to finish
// draining (their peers see EOF).
func (e *Endpoint) Close() error {
	e.cancel()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}

// halfCloser is the subset of *net.TCPConn the relay needs for half-close
// semantics.
type halfCloser interface {
	net.Conn
	CloseWrite() error
	CloseRead() error
}

// ListenEntry starts the entry endpoint: applications connect to listenAddr
// with plain TCP; traffic is adaptively compressed toward the exit endpoint
// at exitAddr.
func ListenEntry(ctx context.Context, listenAddr, exitAddr string, cfg Config) (*Endpoint, error) {
	return listen(ctx, listenAddr, cfg, func() (net.Conn, error) {
		return net.Dial("tcp", exitAddr)
	}, true)
}

// ListenExit starts the exit endpoint: it accepts compressed tunnel
// connections and forwards plain TCP to targetAddr.
func ListenExit(ctx context.Context, listenAddr, targetAddr string, cfg Config) (*Endpoint, error) {
	return listen(ctx, listenAddr, cfg, func() (net.Conn, error) {
		return net.Dial("tcp", targetAddr)
	}, false)
}

func listen(ctx context.Context, listenAddr string, cfg Config, dial func() (net.Conn, error), acceptsPlain bool) (*Endpoint, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	ep := &Endpoint{ln: ln, cancel: cancel}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if runCtx.Err() != nil {
					return
				}
				cfg.logf("tunnel: accept: %v", err)
				return
			}
			ep.wg.Add(1)
			go func() {
				defer ep.wg.Done()
				peer, err := dial()
				if err != nil {
					cfg.logf("tunnel: dial: %v", err)
					conn.Close()
					return
				}
				var relayErr error
				if acceptsPlain {
					relayErr = relay(runCtx, conn, peer, cfg, "entry->exit")
				} else {
					relayErr = relay(runCtx, peer, conn, cfg, "exit->entry")
				}
				if relayErr != nil {
					cfg.logf("tunnel: relay: %v", relayErr)
				}
			}()
		}
	}()
	return ep, nil
}

// relay shuttles one connection: bytes from plain are compressed onto wire,
// frames from wire are decompressed onto plain. It returns when both
// directions have finished.
func relay(ctx context.Context, plain, wire net.Conn, cfg Config, direction string) error {
	defer plain.Close()
	defer wire.Close()

	plainTCP, okP := plain.(halfCloser)
	wireTCP, okW := wire.(halfCloser)

	// Tear connections down if the endpoint is shut down mid-relay.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			plain.Close()
			wire.Close()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 2)

	// plain -> compress -> wire
	wg.Add(1)
	go func() {
		defer wg.Done()
		w, err := stream.NewWriter(wire, cfg.writerConfig())
		if err != nil {
			errs <- err
			return
		}
		_, cpErr := io.Copy(w, plain)
		if closeErr := w.Close(); cpErr == nil {
			cpErr = closeErr
		}
		if okW {
			wireTCP.CloseWrite() // signal EOF downstream, keep reading
		}
		if cfg.OnDone != nil {
			cfg.OnDone(ConnStats{Direction: direction, Stats: w.Stats(), Err: cpErr})
		}
		if cpErr != nil {
			errs <- fmt.Errorf("compress path: %w", cpErr)
		}
	}()

	// wire -> decompress -> plain
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, err := stream.NewReader(wire)
		if err != nil {
			errs <- err
			return
		}
		_, cpErr := io.Copy(plain, r)
		if okP {
			plainTCP.CloseWrite()
		}
		if cpErr != nil {
			errs <- fmt.Errorf("decompress path: %w", cpErr)
		}
	}()

	wg.Wait()
	select {
	case err := <-errs:
		if isBenignNetErr(err) {
			return nil
		}
		return err
	default:
		return nil
	}
}

// isBenignNetErr filters the errors every TCP relay sees at teardown.
func isBenignNetErr(err error) bool {
	if err == nil || errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		return true
	}
	var ne *net.OpError
	return errors.As(err, &ne)
}
