package tunnel

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"adaptio/internal/block"
	"adaptio/internal/coord"
	"adaptio/internal/core"
	"adaptio/internal/obs"
	"adaptio/internal/stream"
)

// deciderSeq hands every connection's policy a distinct seed derivation
// index (process-wide; determinism per connection index, not per endpoint).
var deciderSeq atomic.Uint64

// relayBufSize is the relay's data-plane unit: the pooled copy buffer of
// the passthrough fallback, the per-splice byte cap of the Linux fast path,
// and the pending-block capacity of the compress path all use it. It is
// deliberately the stream layer's block size, so relay coalescing math and
// the block arena's size classes cannot drift apart (a relay read fills at
// most one frame, and every relay buffer comes from the same arena class
// the stream layer already keeps warm).
const relayBufSize = stream.DefaultBlockSize

// DefaultFlushInterval bounds how long the compress path may hold a partial
// block waiting for more bytes before cutting a frame (Config.FlushInterval
// = 0). 5 ms trades at most one extra frame per interval against keeping
// interactive traffic moving; see docs/performance.md, "Zero-copy relay".
const DefaultFlushInterval = 5 * time.Millisecond

// relayPath is one direction of a relayed connection, run to completion on
// its own goroutine. Three implementations cover the data-path choices
// (docs/performance.md): compressPath frames and compresses plain-side
// bytes onto the wire, decompressPath decodes wire frames back to plain
// bytes, and passthroughPath moves raw bytes with no framing at all
// (Config.Passthrough). run returns nil or an error already wrapped with
// the path's name; benign teardown errors are filtered by the caller.
type relayPath interface {
	run() error
}

// compressPath relays plain -> (adaptive compression) -> wire. It owns the
// plain side's read deadlines: Config.IdleTimeout is applied as a rolling
// deadline like everywhere else, and on top of it a coalescing flush
// deadline (Config.FlushInterval) bounds how long a partial block may sit
// buffered, so low-rate traffic keeps flowing without giving up full-block
// framing under load. Bytes are read straight into the stream writer's
// pending block (Writer.ReadDirect) — the staging copy of the former
// io.CopyBuffer relay loop is gone on every level, and at NO level the
// stored-raw vectored frame path means a relayed byte is never copied in
// user space at all.
type compressPath struct {
	cfg       Config
	m         *tunnelMetrics
	direction string
	plain     net.Conn  // raw plain-side conn: reads + deadline management
	wire      io.Writer // idle-wrapped wire side (frames out)
	wireCW    halfCloser
}

func (p *compressPath) run() error {
	wcfg := p.cfg.writerConfig(p.m.streamScope)
	if p.cfg.Coord != nil && !p.cfg.Static {
		cs := p.cfg.Coord.Register(coord.StreamConfig{
			Weight: p.cfg.CoordWeight,
			Tenant: p.cfg.CoordTenant,
		})
		wcfg.Scheme = cs
		defer cs.Detach()
	}
	if p.cfg.Decider != "" && !p.cfg.Static && wcfg.Scheme == nil {
		d, err := core.NewPolicy(p.cfg.Decider, core.PolicyConfig{
			Levels: len(stream.DefaultLadder()),
			Alpha:  p.cfg.Alpha,
			Seed:   p.cfg.DeciderSeed ^ deciderSeq.Add(1)<<20,
		})
		if err != nil {
			return err
		}
		wcfg.Decider = d
	}
	w, err := stream.NewWriter(p.wire, wcfg)
	if err != nil {
		return err
	}
	cpErr := p.pump(w)
	if closeErr := w.Close(); cpErr == nil {
		cpErr = closeErr
	}
	cpErr = classify(cpErr)
	if errors.Is(cpErr, ErrIdleTimeout) {
		p.m.idleTimeouts.Inc()
	}
	if p.wireCW != nil {
		p.wireCW.CloseWrite() // signal EOF downstream, keep reading
	}
	st := w.Stats()
	p.m.txAppBytes.Add(st.AppBytes)
	p.m.txWireBytes.Add(st.WireBytes)
	p.m.txSwitches.Add(st.LevelSwitches)
	p.m.bytesCopied.Add(st.CopiedBytes)
	p.m.passthroughBytes.Add(st.PassthroughBytes)
	if p.cfg.OnDone != nil {
		p.cfg.OnDone(ConnStats{Direction: p.direction, Stats: st, Err: cpErr})
	}
	if cpErr != nil {
		return fmt.Errorf("compress path: %w", cpErr)
	}
	return nil
}

// pump moves plain-side bytes into the writer until EOF or error. The read
// deadline on the raw plain conn is the earlier of the idle deadline
// (last activity + IdleTimeout) and, while a partial block is pending, the
// coalescing deadline (first pending byte + FlushInterval). A deadline
// expiry therefore means one of two things, told apart by wall clock: the
// direction idled out (surface it, classify wraps it in ErrIdleTimeout) or
// the pending block waited long enough (flush it and keep reading).
func (p *compressPath) pump(w *stream.Writer) error {
	flush := p.cfg.FlushInterval
	if flush == 0 {
		flush = DefaultFlushInterval
	}
	idle := p.cfg.IdleTimeout
	lastActivity := time.Now()
	var pendingSince time.Time // zero while no partial block is buffered
	for {
		var deadline time.Time
		if idle > 0 {
			deadline = lastActivity.Add(idle)
		}
		if flush > 0 && w.Buffered() > 0 {
			if fd := pendingSince.Add(flush); deadline.IsZero() || fd.Before(deadline) {
				deadline = fd
			}
		}
		if err := p.plain.SetReadDeadline(deadline); err != nil {
			return err
		}
		before := w.Buffered()
		n, err := w.ReadDirect(p.plain)
		now := time.Now()
		if n > 0 {
			lastActivity = now
			switch {
			case w.Buffered() == 0:
				pendingSince = time.Time{}
			case w.Buffered() < before+n || pendingSince.IsZero():
				// A block was cut mid-read (the remainder is fresh) or
				// these are the first pending bytes: restart the clock.
				pendingSince = now
			}
		}
		if err == nil {
			continue
		}
		if err == io.EOF {
			return nil
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if idle > 0 && now.Sub(lastActivity) >= idle {
				return err
			}
			// Coalescing deadline: push the partial block out.
			if w.Buffered() > 0 {
				if ferr := w.Flush(); ferr != nil {
					return ferr
				}
			}
			pendingSince = time.Time{}
			continue
		}
		return err
	}
}

// decompressPath relays wire -> (decode) -> plain. io.Copy takes the
// Reader's WriteTo: non-identity blocks flow from the reader's pooled arena
// buffer to the plain conn, and identity (stored-raw) frames skip even
// that — their payload is written straight from the frame buffer after CRC
// verification.
type decompressPath struct {
	cfg     Config
	m       *tunnelMetrics
	wire    io.Reader // idle-wrapped wire side (frames in)
	plain   io.Writer // idle-wrapped plain side
	plainCW halfCloser
}

func (p *decompressPath) run() error {
	r, err := stream.NewReader(p.wire)
	if err != nil {
		return err
	}
	_, cpErr := io.Copy(p.plain, r)
	raw, wireBytes, blocks := r.Counters()
	copied, passthrough := r.CopyCounters()
	p.m.rxAppBytes.Add(raw)
	p.m.rxWireBytes.Add(wireBytes)
	p.m.rxBlocks.Add(blocks)
	p.m.bytesCopied.Add(copied)
	p.m.passthroughBytes.Add(passthrough)
	r.Close() // recycle the arena buffers if the plain side failed first
	if p.plainCW != nil {
		p.plainCW.CloseWrite()
	}
	if cpErr = classify(cpErr); cpErr != nil {
		if errors.Is(cpErr, ErrIdleTimeout) {
			p.m.idleTimeouts.Inc()
		}
		return fmt.Errorf("decompress path: %w", cpErr)
	}
	return nil
}

// passthroughPath relays src -> dst with no framing, for traffic the
// operator knows is already compressed (Config.Passthrough): on Linux with
// raw TCP conns on both sides the bytes move kernel-side via splice(2) and
// never enter user space; everywhere else (and under fault-injection
// wrappers) a pooled relayBufSize buffer stages each chunk once. Either
// way the relay performs zero user-space buffer-to-buffer copies, so every
// byte counts as passthrough in the copy-accounting metrics.
type passthroughPath struct {
	cfg        Config
	m          *tunnelMetrics
	src, dst   net.Conn
	dstCW      halfCloser
	label      string
	direction  string
	appBytes   *obs.Counter
	wireBytes  *obs.Counter
	reportDone bool // the plain->wire path mirrors the compress path's OnDone
}

func (p *passthroughPath) run() error {
	n, err := copyDirect(p.dst, p.src, p.cfg.IdleTimeout)
	err = classify(err)
	if errors.Is(err, ErrIdleTimeout) {
		p.m.idleTimeouts.Inc()
	}
	if p.dstCW != nil {
		p.dstCW.CloseWrite()
	}
	// A passthrough byte is its own wire byte (ratio 1.0 by construction).
	p.appBytes.Add(n)
	p.wireBytes.Add(n)
	p.m.passthroughBytes.Add(n)
	if p.reportDone && p.cfg.OnDone != nil {
		p.cfg.OnDone(ConnStats{
			Direction: p.direction,
			Stats:     stream.Stats{AppBytes: n, WireBytes: n, PassthroughBytes: n},
			Err:       err,
		})
	}
	if err != nil {
		return fmt.Errorf("%s: %w", p.label, err)
	}
	return nil
}

// copyDirect moves src's stream into dst until EOF: splice(2) when the
// platform and conn types allow (spliceStream), else a portable loop
// through one pooled relayBufSize buffer. Config.IdleTimeout is applied as
// the usual rolling per-operation deadline on both sides.
func copyDirect(dst, src net.Conn, idle time.Duration) (int64, error) {
	if n, ok, err := spliceStream(dst, src, idle); ok {
		return n, err
	}
	buf := block.GetLen(relayBufSize)
	defer buf.Release()
	var total int64
	for {
		if idle > 0 {
			if err := src.SetReadDeadline(time.Now().Add(idle)); err != nil {
				return total, err
			}
		}
		n, rerr := src.Read(buf.B)
		if n > 0 {
			if idle > 0 {
				if err := dst.SetWriteDeadline(time.Now().Add(idle)); err != nil {
					return total, err
				}
			}
			if werr := writeFullConn(dst, buf.B[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if rerr != nil {
			if rerr == io.EOF {
				return total, nil
			}
			return total, rerr
		}
	}
}

// writeFullConn writes all of p, retrying short writes the way the stream
// layer's writeFull does — fault-injected transports legitimately report
// short counts with a nil error.
func writeFullConn(w io.Writer, p []byte) error {
	for len(p) > 0 {
		n, err := w.Write(p)
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		p = p[n:]
	}
	return nil
}
