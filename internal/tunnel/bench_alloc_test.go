package tunnel_test

import (
	"context"
	"io"
	"net"
	"testing"

	"adaptio/internal/corpus"
	"adaptio/internal/tunnel"
)

// BenchmarkAllocTunnelRoundTrip measures the per-connection cost of the
// tunnel data plane: dial through the entry proxy, send 128 KB, read the
// echo back, close. Every op pays for two relays (four adaptive streams and
// their buffers), which is exactly what the block pool amortizes under
// connection churn. Baseline in BENCH_alloc.json; run via make bench-alloc.
func BenchmarkAllocTunnelRoundTrip(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Plain echo server behind the exit.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()

	cfg := tunnel.Config{Static: true, StaticLevel: 1}
	exit, err := tunnel.ListenExit(ctx, "127.0.0.1:0", ln.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer exit.Close()
	entry, err := tunnel.ListenEntry(ctx, "127.0.0.1:0", exit.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer entry.Close()

	payload := corpus.Generate(corpus.Moderate, 128<<10, 11)
	echo := make([]byte, len(payload))
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", entry.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Write(payload); err != nil {
			b.Fatal(err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		if _, err := io.ReadFull(conn, echo); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}
