//go:build !linux

package tunnel

import "net"

// peerAlive always reports true on platforms without a cheap non-blocking
// peek; a connection that died while parked in the accept queue is instead
// discovered by the relay's first read.
func peerAlive(net.Conn) bool { return true }
