package tunnel

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/stream"
)

// tunnelFrameSeed builds a valid compressed wire image for the fuzzer to
// mutate — what a healthy peer endpoint would send.
func tunnelFrameSeed(tb testing.TB) []byte {
	tb.Helper()
	var wire bytes.Buffer
	w, err := stream.NewWriter(&wire, stream.WriterConfig{Static: true, StaticLevel: 1, BlockSize: 1024})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := w.Write(corpus.Generate(corpus.Low, 3000, 13)); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return wire.Bytes()
}

// FuzzTunnelFrame feeds arbitrary bytes to a relay's wire side — the frames
// a hostile or corrupted peer could send. The relay must terminate without
// panicking or hanging, whatever arrives: the decompress path fails with a
// framing error, the compress path drains, and both plain and wire conns
// are closed. Seeds mirror the chaos suite's failure modes (truncation,
// header and payload bit flips, garbage splices; see testdata/fuzz).
func FuzzTunnelFrame(f *testing.F) {
	wire := tunnelFrameSeed(f)
	f.Add(wire)
	f.Add(wire[:len(wire)*2/3])
	f.Add([]byte{})
	f.Add([]byte("AC\x01\x01garbage that is not a frame at all"))
	flipped := append([]byte(nil), wire...)
	flipped[5] ^= 0x10 // rawLen byte of the first frame header
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		plainApp, plainRelay := net.Pipe()
		wireFeeder, wireRelay := net.Pipe()

		relayDone := make(chan struct{})
		go func() {
			defer close(relayDone)
			relay(context.Background(), plainRelay, wireRelay,
				Config{Static: true, StaticLevel: 1}, "exit->entry",
				newTunnelMetrics(nil))
		}()

		var wg sync.WaitGroup
		wg.Add(4)
		go func() { // hostile peer: send the fuzzed frames, then EOF
			defer wg.Done()
			wireFeeder.Write(data) // unblocked by relay teardown if unread
			wireFeeder.Close()
		}()
		go func() { // drain frames the relay compresses toward the peer
			defer wg.Done()
			io.Copy(io.Discard, wireFeeder)
		}()
		go func() { // application: a short request, then hang up
			defer wg.Done()
			plainApp.Write([]byte("request"))
			plainApp.Close()
		}()
		go func() { // drain whatever the relay decompressed for the app
			defer wg.Done()
			io.Copy(io.Discard, plainApp)
		}()

		select {
		case <-relayDone:
		case <-time.After(10 * time.Second):
			t.Fatal("relay did not terminate on corrupt wire input")
		}
		// The relay closed both conns; the helper goroutines unblock.
		wg.Wait()
	})
}
