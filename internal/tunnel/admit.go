package tunnel

import (
	"net"
	"sync/atomic"
	"time"
)

// admitDecision is the outcome of the admission controller for one accepted
// TCP connection.
type admitDecision int

const (
	// admitNow: a relay slot was free; serve immediately.
	admitNow admitDecision = iota
	// admitQueued: all MaxConns slots are busy but the accept queue has
	// room; the connection holds a (bounded) parked goroutine until a slot
	// frees, shutdown begins, or the endpoint drains.
	admitQueued
	// admitShed: slots and queue are both full (or the endpoint is
	// draining); the connection is closed without service.
	admitShed
)

// admitter bounds the number of concurrently served connections. It is the
// load-shedding half of the tunnel's overload story (docs/scaling.md):
//
//   - up to MaxConns connections hold a relay slot (semaphore token);
//   - up to AcceptQueue more park waiting for a token;
//   - everything beyond that is shed: closed immediately, counted, and
//     never given a relay goroutine.
//
// With MaxConns == 0 the admitter is a no-op and every connection is served
// (the pre-scaling behaviour). Goroutine count is therefore bounded by
// O(MaxConns + AcceptQueue), never by the client arrival rate.
type admitter struct {
	sem      chan struct{} // capacity MaxConns; nil = unlimited
	queueCap int64
	queued   atomic.Int64
	draining chan struct{} // closed by Endpoint.Close before the grace wait
	m        *tunnelMetrics
}

func newAdmitter(cfg Config, m *tunnelMetrics) *admitter {
	a := &admitter{
		queueCap: int64(cfg.AcceptQueue),
		draining: make(chan struct{}),
		m:        m,
	}
	if cfg.MaxConns > 0 {
		a.sem = make(chan struct{}, cfg.MaxConns)
	}
	return a
}

// tryAdmit classifies a fresh connection. It never blocks: the accept loop
// must keep draining the kernel backlog even under overload, so queued
// waiting happens on the connection's own (bounded) goroutine via wait.
func (a *admitter) tryAdmit() admitDecision {
	select {
	case <-a.draining:
		return admitShed
	default:
	}
	if a.sem == nil {
		return admitNow
	}
	select {
	case a.sem <- struct{}{}:
		return admitNow
	default:
	}
	// Slots are full: park in the queue if it has room. The counter is
	// optimistic — undo on overflow — so two racing accepts cannot both
	// squeeze into the last queue seat.
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		return admitShed
	}
	a.m.connsQueued.Add(1)
	return admitQueued
}

// wait parks a queued connection until a relay slot frees. It returns false
// (and the caller must shed) when shutdown or drain begins first. done is
// the endpoint's run-context cancellation channel.
func (a *admitter) wait(done <-chan struct{}) bool {
	start := time.Now()
	defer func() {
		a.queued.Add(-1)
		a.m.connsQueued.Add(-1)
		a.m.queueWaitMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}()
	select {
	case a.sem <- struct{}{}:
		return true
	case <-a.draining:
		return false
	case <-done:
		return false
	}
}

// release returns a relay slot. Only connections that actually acquired a
// token (admitNow, or admitQueued + successful wait) may call it.
func (a *admitter) release() {
	if a.sem != nil {
		<-a.sem
	}
}

// drain flips the admitter into shedding mode: every connection still queued
// unparks and is shed, and every future accept sheds immediately. Safe to
// call once (Endpoint.Close guards with sync.Once).
func (a *admitter) drain() {
	close(a.draining)
}

// shed closes a connection the admitter refused and counts it.
func (a *admitter) shed(conn net.Conn) {
	a.m.connsShed.Inc()
	conn.Close()
}
