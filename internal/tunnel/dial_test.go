package tunnel

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestDialPeerRetriesUntilTargetAppears: the peer port is dead for the
// first attempts and comes up mid-retry; dialPeer must keep backing off and
// eventually connect.
func TestDialPeerRetriesUntilTargetAppears(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // port now dead (briefly reserved for us)

	up := make(chan net.Listener, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Logf("relisten on %s failed: %v", addr, err)
			up <- nil
			return
		}
		go func() {
			if c, err := ln2.Accept(); err == nil {
				c.Close()
			}
		}()
		up <- ln2
	}()

	var attempts int
	cfg := Config{
		DialRetries: 50,
		DialBackoff: 20 * time.Millisecond,
		Logf:        func(format string, args ...any) { attempts++ },
	}
	conn, err := dialPeer(context.Background(), addr, cfg, newTunnelMetrics(nil))
	ln2 := <-up
	if ln2 == nil {
		t.Skip("could not reclaim the port; environment reassigned it")
	}
	defer ln2.Close()
	if err != nil {
		t.Fatalf("dialPeer never reached the late-coming target: %v", err)
	}
	conn.Close()
	if attempts == 0 {
		t.Fatal("target was up before the first attempt; retry path not exercised")
	}
}

// TestDialPeerFailureWrapsErrDial: exhausted retries surface a typed error.
func TestDialPeerFailureWrapsErrDial(t *testing.T) {
	_, err := dialPeer(context.Background(), "127.0.0.1:1", Config{
		DialRetries: 2,
		DialBackoff: 5 * time.Millisecond,
		DialTimeout: 500 * time.Millisecond,
	}, newTunnelMetrics(nil))
	if !errors.Is(err, ErrDial) {
		t.Fatalf("got %v, want error wrapping ErrDial", err)
	}
}

// TestDialPeerHonorsContextCancel: a cancelled context aborts the retry
// loop promptly instead of sleeping out the backoff schedule.
func TestDialPeerHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := dialPeer(ctx, "127.0.0.1:1", Config{
		DialRetries: 1000,
		DialBackoff: 30 * time.Second, // would sleep ~forever without ctx
	}, newTunnelMetrics(nil))
	if !errors.Is(err, ErrDial) {
		t.Fatalf("got %v, want error wrapping ErrDial", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled dial took %v", elapsed)
	}
}

// TestBackoffJitterSpreads: jitter must actually vary within [0.5, 1.5)
// of the base so synchronized clients do not retry in lockstep.
func TestBackoffJitterSpreads(t *testing.T) {
	base := time.Second
	lo, hi := base, base
	for i := 0; i < 200; i++ {
		j := jitter(base)
		if j < base/2 || j >= base*3/2 {
			t.Fatalf("jitter %v outside [%v, %v)", j, base/2, base*3/2)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	if hi-lo < base/4 {
		t.Fatalf("jitter spread only %v across 200 draws", hi-lo)
	}
}
