// Package stats provides the small set of descriptive statistics used by the
// experiment harness: mean/standard deviation, quantiles, five-number boxplot
// summaries and fixed-width histograms.
//
// The package intentionally avoids any approximation: all summaries are exact
// over the provided samples, because the experiments compare distributions
// whose differences (e.g. cache-induced throughput spikes) live in the tails.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MeanStdDev returns both the mean and the sample standard deviation in one
// pass over the data.
func MeanStdDev(xs []float64) (mean, sd float64) {
	return Mean(xs), StdDev(xs)
}

// Min returns the smallest value in xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (type 7, the R default). The input
// slice is not modified. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return Min(xs)
	}
	if q >= 1 {
		return Max(xs)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a five-number summary plus mean, standard deviation and sample
// count. It corresponds to the information displayed by the box plots in
// Figures 2 and 3 of the paper.
type Summary struct {
	N      int
	Mean   float64
	SD     float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary over xs. The input slice is not modified.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Mean = Mean(sorted)
	s.SD = StdDev(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Q1 = quantileSorted(sorted, 0.25)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q3 = quantileSorted(sorted, 0.75)
	return s
}

// IQR returns the inter-quartile range of the summary.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// WhiskerLow and WhiskerHigh return the Tukey box-plot whisker positions
// (1.5 IQR beyond the quartiles, clamped to the observed extremes).
func (s Summary) WhiskerLow() float64 {
	w := s.Q1 - 1.5*s.IQR()
	if w < s.Min {
		return s.Min
	}
	return w
}

// WhiskerHigh returns the upper Tukey whisker position.
func (s Summary) WhiskerHigh() float64 {
	w := s.Q3 + 1.5*s.IQR()
	if w > s.Max {
		return s.Max
	}
	return w
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.1f q1=%.1f med=%.1f q3=%.1f max=%.1f",
		s.N, s.Mean, s.SD, s.Min, s.Q1, s.Median, s.Q3, s.Max)
}

// Histogram divides [min,max] into len(counts) equal-width bins and counts
// samples per bin. Values outside the range are clamped into the first or
// last bin, so the total count always equals len(xs).
type Histogram struct {
	MinValue float64
	MaxValue float64
	Counts   []int
}

// NewHistogram builds a histogram of xs with the given number of bins over
// the observed [min,max] range. bins must be >= 1.
func NewHistogram(xs []float64, bins int) Histogram {
	if bins < 1 {
		bins = 1
	}
	h := Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.MinValue = Min(xs)
	h.MaxValue = Max(xs)
	width := (h.MaxValue - h.MinValue) / float64(bins)
	for _, x := range xs {
		idx := bins - 1
		if width > 0 {
			idx = int((x - h.MinValue) / width)
			if idx < 0 {
				idx = 0
			}
			if idx >= bins {
				idx = bins - 1
			}
		}
		h.Counts[idx]++
	}
	return h
}

// Total returns the number of samples counted by the histogram.
func (h Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mode returns the index of the most populated bin (ties resolve to the
// lowest index).
func (h Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	_ = best
	return best
}

// CoefficientOfVariation returns sd/mean, a scale-free dispersion measure
// used to compare throughput fluctuation across platforms. It returns 0 when
// the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// WelchT computes Welch's unequal-variance t-test between two samples:
// the t statistic and the Welch–Satterthwaite degrees of freedom. Use
// SignificantAt05 to interpret the result. It returns (0, 0) when either
// sample has fewer than two values or both variances are zero.
func WelchT(a, b []float64) (t, df float64) {
	na, nb := float64(len(a)), float64(len(b))
	if na < 2 || nb < 2 {
		return 0, 0
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := StdDev(a), StdDev(b)
	va, vb = va*va, vb*vb
	sa, sb := va/na, vb/nb
	if sa+sb == 0 {
		return 0, 0
	}
	t = (ma - mb) / math.Sqrt(sa+sb)
	df = (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	return t, df
}

// WelchTSummary computes Welch's t from summary statistics (means, sample
// standard deviations and sizes) — the form needed when only aggregated
// results are retained, as in Table II cells.
func WelchTSummary(meanA, sdA float64, nA int, meanB, sdB float64, nB int) (t, df float64) {
	if nA < 2 || nB < 2 {
		return 0, 0
	}
	sa := sdA * sdA / float64(nA)
	sb := sdB * sdB / float64(nB)
	if sa+sb == 0 {
		return 0, 0
	}
	t = (meanA - meanB) / math.Sqrt(sa+sb)
	df = (sa + sb) * (sa + sb) / (sa*sa/float64(nA-1) + sb*sb/float64(nB-1))
	return t, df
}

// tCrit05 holds two-sided 5% critical values of the t distribution for
// small degrees of freedom; beyond the table the normal approximation is
// adequate.
var tCrit05 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
	2.042,
}

// SignificantAt05 reports whether a Welch t statistic with df degrees of
// freedom rejects equality of means at the two-sided 5% level.
func SignificantAt05(t, df float64) bool {
	if df <= 0 {
		return false
	}
	idx := int(df)
	if idx >= len(tCrit05) {
		return math.Abs(t) > 1.96
	}
	if idx < 1 {
		idx = 1
	}
	return math.Abs(t) > tCrit05[idx]
}
