package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"adaptio/internal/stats"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := stats.Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	// Sample SD with n-1 denominator: sqrt(32/7).
	if sd := stats.StdDev(xs); !approx(sd, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("sd = %v", sd)
	}
	m, sd := stats.MeanStdDev(xs)
	if !approx(m, 5, 1e-12) || !approx(sd, math.Sqrt(32.0/7), 1e-12) {
		t.Fatal("MeanStdDev mismatch")
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if stats.Mean(nil) != 0 || stats.StdDev(nil) != 0 {
		t.Fatal("empty slice should give zeros")
	}
	if stats.StdDev([]float64{42}) != 0 {
		t.Fatal("single sample SD should be 0")
	}
	if stats.Min(nil) != 0 || stats.Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
	if stats.Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	s := stats.Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if stats.Min(xs) != -1 || stats.Max(xs) != 5 {
		t.Fatalf("min/max = %v/%v", stats.Min(xs), stats.Max(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := stats.Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be modified.
	xs2 := []float64{5, 1, 3}
	stats.Quantile(xs2, 0.5)
	if xs2[0] != 5 || xs2[1] != 1 || xs2[2] != 3 {
		t.Fatal("Quantile modified its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{7, 1, 3, 5, 9}
	s := stats.Summarize(xs)
	if s.N != 5 || s.Min != 1 || s.Max != 9 || s.Median != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 3 || s.Q3 != 7 {
		t.Fatalf("quartiles = %v/%v", s.Q1, s.Q3)
	}
	if s.IQR() != 4 {
		t.Fatalf("IQR = %v", s.IQR())
	}
	if s.WhiskerLow() < s.Min || s.WhiskerHigh() > s.Max {
		t.Fatal("whiskers outside observed range")
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	// Input unmodified.
	if xs[0] != 7 {
		t.Fatal("Summarize modified its input")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := stats.NewHistogram(xs, 5)
	if h.Total() != len(xs) {
		t.Fatalf("total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Fatalf("bin %d = %d, want 2", i, c)
		}
	}
	// Degenerate inputs.
	if stats.NewHistogram(nil, 3).Total() != 0 {
		t.Fatal("empty histogram non-empty")
	}
	one := stats.NewHistogram([]float64{5, 5, 5}, 4)
	if one.Total() != 3 {
		t.Fatal("constant data lost samples")
	}
	if stats.NewHistogram(xs, 0).Total() != len(xs) {
		t.Fatal("bins<1 should clamp to 1")
	}
}

func TestHistogramMode(t *testing.T) {
	h := stats.NewHistogram([]float64{1, 1, 1, 5, 9}, 3)
	if h.Mode() != 0 {
		t.Fatalf("mode bin = %d", h.Mode())
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if stats.CoefficientOfVariation([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant data CoV should be 0")
	}
	if stats.CoefficientOfVariation(nil) != 0 {
		t.Fatal("empty CoV should be 0")
	}
	cov := stats.CoefficientOfVariation([]float64{1, 3})
	if !approx(cov, math.Sqrt2/2, 1e-12) {
		t.Fatalf("CoV = %v", cov)
	}
}

func TestWelchT(t *testing.T) {
	// Clearly different populations: significant.
	a := []float64{100, 101, 99, 100, 102, 100}
	b := []float64{120, 121, 119, 122, 120, 121}
	tt, df := stats.WelchT(a, b)
	if tt >= 0 {
		t.Fatalf("t = %v, want negative (a < b)", tt)
	}
	if df <= 0 {
		t.Fatalf("df = %v", df)
	}
	if !stats.SignificantAt05(tt, df) {
		t.Fatal("clear difference not significant")
	}
	// Same population: not significant.
	c := []float64{100, 102, 98, 101, 99, 100}
	tt, df = stats.WelchT(a, c)
	if stats.SignificantAt05(tt, df) {
		t.Fatalf("identical-population difference flagged significant (t=%v, df=%v)", tt, df)
	}
	// Degenerate inputs.
	if tt, df := stats.WelchT([]float64{1}, b); tt != 0 || df != 0 {
		t.Fatal("tiny sample should yield zeros")
	}
	if tt, df := stats.WelchT([]float64{5, 5, 5}, []float64{5, 5, 5}); tt != 0 || df != 0 {
		t.Fatal("zero-variance pair should yield zeros")
	}
	if stats.SignificantAt05(10, 0) {
		t.Fatal("df=0 should never be significant")
	}
	// Large-df path uses the normal approximation.
	if !stats.SignificantAt05(2.5, 1000) || stats.SignificantAt05(1.5, 1000) {
		t.Fatal("normal approximation thresholds wrong")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)+1)
		for i := range xs {
			xs[i] = rnd.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := stats.Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			if v < stats.Min(xs)-1e-9 || v > stats.Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize is invariant under permutation.
func TestSummarizePermutationInvariant(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)+2)
		for i := range xs {
			xs[i] = rnd.Float64() * 1000
		}
		a := stats.Summarize(xs)
		shuffled := append([]float64(nil), xs...)
		rnd.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := stats.Summarize(shuffled)
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
