// Package stream is the adaptive compression stream layer: it sits between
// the application and the I/O layer (Section III-A of the paper), cuts the
// outgoing byte stream into self-describing blocks of at most 128 KB
// (Nephele's internal buffer size, Section III-B), compresses each block with
// the level currently selected by the rate-based decision model
// (internal/core), and frames it so that the receiver can decompress a stream
// whose compression level changes over time without any coordination.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"adaptio/internal/compress"
	"adaptio/internal/compress/probe"
)

// DefaultBlockSize is Nephele's internal buffer size: "Nephele internally
// buffers data that is written to its file or network channel in memory
// blocks of at most 128 KB size" (Section III-B).
const DefaultBlockSize = 128 << 10

// MaxBlockSize bounds the raw length a frame may declare; it protects the
// receiver against hostile or corrupt headers requesting huge allocations.
const MaxBlockSize = 1 << 24

// frame header layout (little endian):
//
//	offset 0: magic "AC"        (2 bytes)
//	offset 2: version           (1 byte, currently 1)
//	offset 3: codec ID          (1 byte)
//	offset 4: raw length        (4 bytes)
//	offset 8: compressed length (4 bytes)
//	offset 12: CRC-32C of the raw (uncompressed) block (4 bytes)
const (
	headerSize   = 16
	frameVersion = 1
)

var frameMagic = [2]byte{'A', 'C'}

// crcTable is the Castagnoli polynomial table (hardware accelerated on
// modern CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame is wrapped by all framing errors.
var ErrBadFrame = errors.New("stream: bad frame")

// FrameError locates a framing error in the wire stream: Frame is the
// zero-based index of the offending frame, Offset the wire byte offset of
// its first header byte. It wraps the underlying cause, which in turn wraps
// ErrBadFrame for framing-level corruption, so both
// errors.Is(err, ErrBadFrame) and errors.As(err, *FrameError) work.
type FrameError struct {
	Frame  int64
	Offset int64
	Err    error
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("stream: frame %d at wire offset %d: %v", e.Frame, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *FrameError) Unwrap() error { return e.Err }

// writeFull writes all of p to w, retrying on short writes. The io.Writer
// contract promises an error whenever n < len(p), but fault-injected and
// load-shedding transports (see internal/faultio) legitimately report short
// counts with a nil error the way POSIX write(2) does; silently dropping
// the tail of a frame there would corrupt the stream.
func writeFull(w io.Writer, p []byte) error {
	for len(p) > 0 {
		n, err := w.Write(p)
		if err != nil {
			return err
		}
		if n <= 0 {
			return io.ErrShortWrite
		}
		p = p[n:]
	}
	return nil
}

// header is the decoded form of a frame header.
type header struct {
	codecID uint8
	rawLen  int
	compLen int
	crc     uint32
}

func putHeader(dst []byte, h header) {
	dst[0] = frameMagic[0]
	dst[1] = frameMagic[1]
	dst[2] = frameVersion
	dst[3] = h.codecID
	binary.LittleEndian.PutUint32(dst[4:], uint32(h.rawLen))
	binary.LittleEndian.PutUint32(dst[8:], uint32(h.compLen))
	binary.LittleEndian.PutUint32(dst[12:], h.crc)
}

func parseHeader(src []byte) (header, error) {
	var h header
	if src[0] != frameMagic[0] || src[1] != frameMagic[1] {
		return h, fmt.Errorf("%w: bad magic %q", ErrBadFrame, src[:2])
	}
	if src[2] != frameVersion {
		return h, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, src[2])
	}
	h.codecID = src[3]
	h.rawLen = int(binary.LittleEndian.Uint32(src[4:]))
	h.compLen = int(binary.LittleEndian.Uint32(src[8:]))
	h.crc = binary.LittleEndian.Uint32(src[12:])
	if h.rawLen > MaxBlockSize {
		return h, fmt.Errorf("%w: raw length %d exceeds limit", ErrBadFrame, h.rawLen)
	}
	if h.compLen > MaxBlockSize+MaxBlockSize/64+256 {
		return h, fmt.Errorf("%w: compressed length %d exceeds limit", ErrBadFrame, h.compLen)
	}
	return h, nil
}

// maxFrameSize bounds the encoded size of one frame for an n-byte block:
// header plus raw length plus slack for the worst-case pre-fallback
// expansion of the heaviest codec (the range coder peaks near 9 bits per
// byte on adversarial input before the stored-raw fallback trims the frame
// back to header + raw). Sizing scratch buffers to this bound keeps the
// steady-state encode path free of append regrowth; the bound also pairs
// with the block arena's 160 KB class, which holds a maxFrameSize frame
// for the default 128 KB block.
func maxFrameSize(n int) int {
	return headerSize + n + n/8 + 64
}

// encodeFramePieces compresses block with the given ladder level into
// scratch (which must be empty; its storage is reused) and returns the
// resulting frame as up to two pieces. When the codec shrank the block,
// head is the complete frame (header + compressed payload) and tail is nil.
// When the block is stored raw — an identity level, the codec failed to
// shrink it (the standard stored-block fallback, so a frame never expands
// by more than the header), or the entropy pre-probe judged it hopeless —
// head is the bare header and tail aliases block: the caller can then put
// both pieces on the wire without ever copying the block into scratch (see
// writeFrame / WriteVectored). tail is only valid until block's buffer is
// reused.
//
// The probe runs before the codec: a hopeless block (near-uniform byte
// distribution AND no recurring 4-byte windows, see internal/compress/
// probe) goes straight to stored-raw framing, so its bytes are never run
// through — or even copied by — the codec. skipped reports that outcome.
// The wire bytes are identical either way, because a codec attempt on such
// a block would fail to shrink it and take the same stored-raw fallback;
// the probe only removes the wasted work.
func encodeFramePieces(scratch []byte, ladder compress.Ladder, level int, block []byte, pr probe.Config) (head, tail []byte, codecID uint8, skipped bool) {
	crc := crc32.Checksum(block, crcTable)
	scratch = append(scratch, make([]byte, headerSize)...)
	codec := ladder[level].Codec
	codecID = codec.ID()
	if codecID != compress.IDNone {
		if pr.Hopeless(block) {
			skipped = true
			codecID = compress.IDNone
		} else {
			scratch = codec.Compress(scratch, block)
			if compLen := len(scratch) - headerSize; compLen < len(block) {
				putHeader(scratch, header{
					codecID: codecID,
					rawLen:  len(block),
					compLen: compLen,
					crc:     crc,
				})
				return scratch, nil, codecID, false
			}
			codecID = compress.IDNone
		}
	}
	putHeader(scratch, header{
		codecID: compress.IDNone,
		rawLen:  len(block),
		compLen: len(block),
		crc:     crc,
	})
	return scratch[:headerSize], block, codecID, skipped
}

// writeFrame encodes one frame into scratch and writes it to w — as two
// vectored pieces for stored-raw frames, so the block is never copied into
// scratch. It returns the number of payload (compressed) bytes written, the
// codec ID actually used, whether the entropy probe skipped the codec, the
// (possibly grown) scratch — callers keep it so a rare mid-stream growth is
// paid once, not per frame — and any I/O error.
func writeFrame(w io.Writer, ladder compress.Ladder, level int, block, scratch []byte, pr probe.Config) (payload int, codecID uint8, skipped bool, scratchOut []byte, err error) {
	head, tail, codecID, skipped := encodeFramePieces(scratch[:0], ladder, level, block, pr)
	payload = len(head) - headerSize + len(tail)
	if tail == nil {
		err = writeFull(w, head)
	} else {
		err = WriteVectored(w, head, tail)
	}
	if err != nil {
		return 0, codecID, skipped, head, err
	}
	return payload, codecID, skipped, head, nil
}

// readFrameHeader reads and parses one frame header from r into hdr. It
// returns io.EOF at a clean end of stream (no header byte read) and a
// framing error if the stream ends inside the header.
func readFrameHeader(r io.Reader, hdr *[headerSize]byte) (header, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return header{}, io.EOF
		}
		return header{}, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	return parseHeader(hdr[:])
}

// decodeFramePayload decompresses and CRC-verifies one frame payload,
// appending the raw block to dst. On error dst is returned truncated to its
// original length: no bytes of a bad frame are ever delivered.
func decodeFramePayload(dst []byte, h header, payload []byte) ([]byte, error) {
	codec, err := compress.ByID(h.codecID)
	if err != nil {
		return dst, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	start := len(dst)
	dst, err = codec.Decompress(dst, payload, h.rawLen)
	if err != nil {
		return dst[:start], fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if got := crc32.Checksum(dst[start:], crcTable); got != h.crc {
		return dst[:start], fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrBadFrame, got, h.crc)
	}
	return dst, nil
}
