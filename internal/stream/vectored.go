package stream

import (
	"io"
	"net"
	"sync"
)

// VectoredWriter is the capability seam for vectored frame writes: a
// destination that accepts a frame's header and payload as two separate
// buffers, so the sender never has to assemble them contiguously.
// Implementations must write both buffers completely or return an error —
// the same all-or-error contract as writeFull; on error the stream is
// corrupt and must be abandoned. The tunnel's idle-deadline conn wrapper
// implements it to forward vectored writes to the underlying TCP conn.
type VectoredWriter interface {
	WriteVectored(hdr, payload []byte) error
}

// WriteVectored writes hdr then payload to w without copying them into one
// buffer, via the best mechanism the destination supports:
//
//   - a VectoredWriter gets both buffers as-is and makes its own
//     writev-or-fallback choice;
//   - *net.TCPConn and *net.UnixConn take the net.Buffers path, a writev(2)
//     on platforms that have it, with the net package's write loop
//     consuming short writes;
//   - anything else falls back to two writeFull calls, preserving the
//     short-write-retry semantics that fault-injected transports
//     (internal/faultio) rely on.
//
// In every case either all bytes of both buffers are written or an error is
// returned, exactly as with writeFull over a contiguous frame.
func WriteVectored(w io.Writer, hdr, payload []byte) error {
	switch c := w.(type) {
	case VectoredWriter:
		return c.WriteVectored(hdr, payload)
	case *net.TCPConn:
		return writeBuffers(c, hdr, payload)
	case *net.UnixConn:
		return writeBuffers(c, hdr, payload)
	}
	if err := writeFull(w, hdr); err != nil {
		return err
	}
	return writeFull(w, payload)
}

// vecFrame is a pooled two-piece net.Buffers, so the steady-state frame
// writer allocates nothing per frame: net.Buffers.WriteTo consumes the
// slice by re-slicing it, so bufs is rebuilt from the backing array on
// every use and the piece references are dropped before pooling (holding
// them would pin the frame buffers past their arena release).
type vecFrame struct {
	arr  [2][]byte
	bufs net.Buffers
}

var vecFramePool = sync.Pool{New: func() any { return new(vecFrame) }}

func writeBuffers(w io.Writer, hdr, payload []byte) error {
	v := vecFramePool.Get().(*vecFrame)
	v.arr[0], v.arr[1] = hdr, payload
	v.bufs = v.arr[:]
	_, err := v.bufs.WriteTo(w)
	v.arr[0], v.arr[1] = nil, nil
	v.bufs = nil
	vecFramePool.Put(v)
	return err
}
