package stream

import (
	"bytes"
	"io"
	"testing"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/corpus"
)

// TestReadDirectRoundTrip fills the writer straight from a source reader
// (the relay's zero-copy ingest) and verifies the decoded stream is
// byte-identical, across levels and payload kinds.
func TestReadDirectRoundTrip(t *testing.T) {
	blocktest.Track(t)
	for lvl := 0; lvl < 4; lvl++ {
		for _, kind := range corpus.Kinds() {
			src := corpus.Generate(kind, 300<<10, 11)
			var wire bytes.Buffer
			w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: lvl})
			n, err := w.ReadFrom(bytes.NewReader(src))
			if err != nil {
				t.Fatalf("level %d %s: ReadFrom: %v", lvl, kind, err)
			}
			if n != int64(len(src)) {
				t.Fatalf("level %d %s: ReadFrom moved %d bytes, want %d", lvl, kind, n, len(src))
			}
			if err := w.Close(); err != nil {
				t.Fatalf("level %d %s: close: %v", lvl, kind, err)
			}
			out, err := io.ReadAll(mustReader(t, &wire))
			if err != nil {
				t.Fatalf("level %d %s: read: %v", lvl, kind, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("level %d %s: round trip mismatch", lvl, kind)
			}
		}
	}
}

// TestBufferedTracksPendingBlock: Buffered reports the pending partial
// block and returns to zero once a frame is cut.
func TestBufferedTracksPendingBlock(t *testing.T) {
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: 0, BlockSize: 8 << 10})
	if w.Buffered() != 0 {
		t.Fatalf("fresh writer Buffered = %d", w.Buffered())
	}
	if _, err := w.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if w.Buffered() != 100 {
		t.Fatalf("Buffered = %d after 100-byte write", w.Buffered())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Buffered() != 0 {
		t.Fatalf("Buffered = %d after Flush", w.Buffered())
	}
	// Filling exactly one block cuts the frame without a flush.
	if _, err := w.ReadDirect(bytes.NewReader(make([]byte, 8<<10))); err != nil {
		t.Fatal(err)
	}
	if w.Buffered() != 0 {
		t.Fatalf("Buffered = %d after full-block ReadDirect", w.Buffered())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadDirectTimeoutNotSticky: a transient source error (the relay's
// coalescing deadline expiry) must not poison the writer — subsequent
// reads and flushes proceed.
func TestReadDirectTimeoutNotSticky(t *testing.T) {
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: 0})
	src := []byte("partial block")
	if _, err := w.ReadDirect(bytes.NewReader(src)); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// The source "times out": the error surfaces but the writer stays good.
	if _, err := w.ReadDirect(errReader{}); err == nil {
		t.Fatal("transient source error swallowed")
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush after transient source error: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatalf("round trip mismatch after transient error: %q", out)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrNoProgress }

// TestCopyAccounting pins the user-space copy ledger (Stats.CopiedBytes /
// PassthroughBytes): Write() stages (one copy per byte), ReadDirect does
// not, codec transforms count one copy per raw byte, and stored-raw frames
// from direct ingest are pure passthrough.
func TestCopyAccounting(t *testing.T) {
	high := corpus.Generate(corpus.High, 256<<10, 21) // compressible: codec engages at LIGHT

	cases := []struct {
		name             string
		cfg              WriterConfig
		direct           bool // ReadDirect vs Write
		copied, passthru int64
	}{
		{"write-NO", WriterConfig{Static: true, StaticLevel: 0}, false, int64(len(high)), 0},
		{"direct-NO", WriterConfig{Static: true, StaticLevel: 0}, true, 0, int64(len(high))},
		{"write-LIGHT", WriterConfig{Static: true, StaticLevel: 1}, false, 2 * int64(len(high)), 0},
		{"direct-LIGHT", WriterConfig{Static: true, StaticLevel: 1}, true, int64(len(high)), 0},
		// Pipeline stored-raw frames ride the same vectored two-piece write
		// as the serial path, so direct-ingest identity blocks stay
		// copy-free; compressed pipeline frames cost the codec copy.
		{"pipeline-direct-NO", WriterConfig{Static: true, StaticLevel: 0, Parallelism: 4}, true, 0, int64(len(high))},
		{"pipeline-direct-LIGHT", WriterConfig{Static: true, StaticLevel: 1, Parallelism: 4}, true, int64(len(high)), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var wire bytes.Buffer
			w := mustWriter(t, &wire, tc.cfg)
			var err error
			if tc.direct {
				_, err = w.ReadFrom(bytes.NewReader(high))
			} else {
				_, err = w.Write(high)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			st := w.Stats()
			if st.CopiedBytes != tc.copied {
				t.Errorf("CopiedBytes = %d, want %d", st.CopiedBytes, tc.copied)
			}
			if st.PassthroughBytes != tc.passthru {
				t.Errorf("PassthroughBytes = %d, want %d", st.PassthroughBytes, tc.passthru)
			}
			// The decoded stream must be intact regardless of accounting.
			out, err := io.ReadAll(mustReader(t, &wire))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, high) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

// TestReaderCopyCounters: WriteTo delivers identity frames without a
// user-space copy (passthrough), decoded frames via one arena copy, and
// the plain Read path always copies out.
func TestReaderCopyCounters(t *testing.T) {
	blocktest.Track(t)
	high := corpus.Generate(corpus.High, 128<<10, 5)

	encode := func(level int) *bytes.Buffer {
		var wire bytes.Buffer
		w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: level})
		if _, err := w.ReadFrom(bytes.NewReader(high)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return &wire
	}

	// Identity frames + WriteTo: all passthrough.
	r := mustReader(t, encode(0))
	var out bytes.Buffer
	if _, err := r.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), high) {
		t.Fatal("identity WriteTo mismatch")
	}
	copied, passthru := r.CopyCounters()
	if copied != 0 || passthru != int64(len(high)) {
		t.Errorf("identity WriteTo: copied=%d passthrough=%d, want 0/%d", copied, passthru, len(high))
	}

	// Compressed frames + WriteTo: the codec's decode is the one copy.
	r = mustReader(t, encode(1))
	out.Reset()
	if _, err := r.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	copied, passthru = r.CopyCounters()
	if copied != int64(len(high)) || passthru != 0 {
		t.Errorf("decode WriteTo: copied=%d passthrough=%d, want %d/0", copied, passthru, len(high))
	}

	// Identity frames via plain Read: the arena decode copy counts.
	r = mustReader(t, encode(0))
	if _, err := io.Copy(&out, struct{ io.Reader }{r}); err != nil { // hide WriteTo
		t.Fatal(err)
	}
	copied, _ = r.CopyCounters()
	if copied != int64(len(high)) {
		t.Errorf("plain Read: copied=%d, want %d", copied, len(high))
	}
}
