package stream

import (
	"bytes"
	"io"
	"testing"

	"adaptio/internal/corpus"
)

// FuzzReader feeds arbitrary bytes to the frame reader: it must never panic
// and never allocate unboundedly, whatever arrives on the wire.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-block stream and mutations thereof.
	var wire bytes.Buffer
	w, err := NewWriter(&wire, WriterConfig{Static: true, StaticLevel: LevelLight, BlockSize: 1024})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := w.Write(corpus.Generate(corpus.Moderate, 3000, 1)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(wire.Bytes())
	f.Add([]byte{})
	f.Add([]byte("AC\x01\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		// Read everything; any error is acceptable, panics are not.
		_, _ = io.Copy(io.Discard, r)
	})
}

// FuzzWriterChunking: arbitrary chunking of arbitrary data through the
// adaptive writer round trips exactly.
func FuzzWriterChunking(f *testing.F) {
	f.Add([]byte("some application data"), uint16(7))
	f.Add(corpus.Generate(corpus.High, 5000, 2), uint16(1024))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint16) {
		n := int(chunk)%4096 + 1
		var wire bytes.Buffer
		w, err := NewWriter(&wire, WriterConfig{BlockSize: 2048})
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(data); off += n {
			end := off + n
			if end > len(data) {
				end = len(data)
			}
			if _, err := w.Write(data[off:end]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&wire)
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("round trip mismatch")
		}
	})
}
