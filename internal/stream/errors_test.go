package stream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"adaptio/internal/corpus"
	"adaptio/internal/faultio"
)

// buildWire produces a wire stream of several frames and returns it along
// with the original payload and the per-frame boundaries.
func buildWire(t *testing.T, blocks int) (wire, payload []byte, bounds []int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterConfig{Static: true, StaticLevel: LevelLight, BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	payload = corpus.Generate(corpus.Moderate, blocks*1024, 42)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wire = buf.Bytes()
	for off := 0; off < len(wire); {
		compLen := int(binary.LittleEndian.Uint32(wire[off+8:]))
		bounds = append(bounds, off)
		off += headerSize + compLen
	}
	return wire, payload, bounds
}

// TestReaderFrameErrorLocatesCorruption: a flipped payload bit in frame k
// must surface as a sticky *FrameError naming frame k and its wire offset,
// wrapping ErrBadFrame, after delivering frames 0..k-1 intact.
func TestReaderFrameErrorLocatesCorruption(t *testing.T) {
	wire, payload, bounds := buildWire(t, 4)
	if len(bounds) < 3 {
		t.Fatalf("want >= 3 frames, got %d", len(bounds))
	}
	const badFrame = 2
	mut := append([]byte(nil), wire...)
	mut[bounds[badFrame]+headerSize+3] ^= 0x10 // payload corruption -> CRC or decode failure

	r, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err == nil {
		t.Fatal("corrupted stream read succeeded")
	}
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FrameError", err)
	}
	if fe.Frame != badFrame || fe.Offset != int64(bounds[badFrame]) {
		t.Fatalf("error locates frame %d at %d, want frame %d at %d", fe.Frame, fe.Offset, badFrame, bounds[badFrame])
	}
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("error %v does not wrap ErrBadFrame", err)
	}
	if want := payload[:badFrame*1024]; !bytes.Equal(got, want) {
		t.Fatalf("delivered %d bytes before failure, want the %d intact ones", len(got), len(want))
	}
	// The error is sticky.
	if _, err2 := r.Read(make([]byte, 1)); !errors.Is(err2, ErrBadFrame) {
		t.Fatalf("second read returned %v, want sticky frame error", err2)
	}
}

// TestParallelReaderFrameErrorLocatesCorruption: same policy on the
// parallel read path.
func TestParallelReaderFrameErrorLocatesCorruption(t *testing.T) {
	wire, _, bounds := buildWire(t, 4)
	const badFrame = 1
	mut := append([]byte(nil), wire...)
	mut[bounds[badFrame]+headerSize+3] ^= 0x10

	r, err := NewParallelReader(bytes.NewReader(mut), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = io.ReadAll(r)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("error %v is not a *FrameError", err)
	}
	if fe.Frame != badFrame || fe.Offset != int64(bounds[badFrame]) {
		t.Fatalf("error locates frame %d at %d, want frame %d at %d", fe.Frame, fe.Offset, badFrame, bounds[badFrame])
	}
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("error %v does not wrap ErrBadFrame", err)
	}
}

// TestReaderTruncationReportsOffset: a stream cut mid-frame reports the
// offset of the frame it died inside.
func TestReaderTruncationReportsOffset(t *testing.T) {
	wire, _, bounds := buildWire(t, 3)
	cut := bounds[2] + headerSize + 1 // inside frame 2's payload
	r, err := NewReader(bytes.NewReader(wire[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(r)
	var fe *FrameError
	if !errors.As(err, &fe) || fe.Frame != 2 || fe.Offset != int64(bounds[2]) {
		t.Fatalf("truncation error %v, want *FrameError{Frame: 2, Offset: %d}", err, bounds[2])
	}
}

// TestWriterToleratesShortWriteTransport: a transport that reports short
// counts with nil errors (POSIX write(2) semantics, injected by faultio)
// must not corrupt the stream — writeFull resends the tail.
func TestWriterToleratesShortWriteTransport(t *testing.T) {
	payload := corpus.Generate(corpus.High, 256<<10, 5)
	var wire bytes.Buffer
	fw := faultio.NewWriter(&wire, faultio.Config{Seed: 77, PartialWrite: 0.8})
	w, err := NewWriter(fw, WriterConfig{Static: true, StaticLevel: LevelLight, BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&wire)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("short-write transport corrupted the stream")
	}
}
