package stream

import (
	"bytes"
	"io"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/vclock"
)

// recordingScheme is a WindowScheme that scripts levels and records what the
// writer fed it.
type recordingScheme struct {
	levels []int // level to return per ObserveWindowStats call
	calls  int
	rates  []float64
	app    []int64
	wire   []int64
}

func (r *recordingScheme) Level() int {
	if len(r.levels) == 0 {
		return 0
	}
	return r.levels[0]
}

func (r *recordingScheme) Observe(rate float64) int {
	return r.ObserveWindowStats(rate, 0, 0)
}

func (r *recordingScheme) ObserveWindowStats(rate float64, appBytes, wireBytes int64) int {
	r.rates = append(r.rates, rate)
	r.app = append(r.app, appBytes)
	r.wire = append(r.wire, wireBytes)
	r.calls++
	idx := r.calls
	if idx >= len(r.levels) {
		idx = len(r.levels) - 1
	}
	return r.levels[idx]
}

func TestWriterSchemeDrivesLevels(t *testing.T) {
	clk := vclock.NewManual()
	sch := &recordingScheme{levels: []int{0, 1, 2, 2, 1}}
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{
		Clock: clk, Window: time.Second, BlockSize: 16 << 10, Scheme: sch,
	})
	if w.Level() != 0 {
		t.Fatalf("initial level = %d, want Scheme.Level() = 0", w.Level())
	}
	src := corpus.Generate(corpus.Moderate, 256<<10, 3)
	for off := 0; off < len(src); off += 16 << 10 {
		if _, err := w.Write(src[off : off+16<<10]); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sch.calls == 0 {
		t.Fatal("scheme was never observed")
	}
	// The writer must have followed the script: levels 1 and 2 both saw
	// blocks, and the scheme received real window stats.
	st := w.Stats()
	if st.BlocksPerLevel[1] == 0 || st.BlocksPerLevel[2] == 0 {
		t.Fatalf("blocks per level = %v, want levels 1 and 2 used", st.BlocksPerLevel)
	}
	var app int64
	for _, a := range sch.app {
		app += a
	}
	if app == 0 {
		t.Fatal("scheme saw zero application bytes")
	}
	for i, wb := range sch.wire {
		if sch.app[i] > 0 && wb == 0 {
			t.Fatalf("window %d: app bytes %d but zero wire bytes reported", i, sch.app[i])
		}
	}
	// Round trip: mixed-level stream must still decode.
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("scheme-driven stream round trip mismatch")
	}
}

// outOfRangeScheme returns levels far outside the ladder; the writer must
// clamp instead of crash.
type outOfRangeScheme struct{ n int }

func (o *outOfRangeScheme) Level() int { return 0 }
func (o *outOfRangeScheme) Observe(float64) int {
	o.n++
	if o.n%2 == 0 {
		return -5
	}
	return 99
}

func TestWriterSchemeClampsOutOfRangeLevels(t *testing.T) {
	clk := vclock.NewManual()
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{
		Clock: clk, Window: time.Second, BlockSize: 8 << 10, Scheme: &outOfRangeScheme{},
	})
	src := corpus.Generate(corpus.Low, 64<<10, 5)
	for off := 0; off < len(src); off += 8 << 10 {
		if _, err := w.Write(src[off : off+8<<10]); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("round trip mismatch with clamped levels")
	}
}

func TestWriterSchemeStaticMutuallyExclusive(t *testing.T) {
	var wire bytes.Buffer
	_, err := NewWriter(&wire, WriterConfig{Static: true, Scheme: &recordingScheme{}})
	if err == nil {
		t.Fatal("NewWriter accepted Static together with Scheme")
	}
}

func TestWriterSchemeBadInitialLevel(t *testing.T) {
	var wire bytes.Buffer
	_, err := NewWriter(&wire, WriterConfig{Scheme: &recordingScheme{levels: []int{42}}})
	if err == nil {
		t.Fatal("NewWriter accepted a scheme starting outside the ladder")
	}
}
