package stream

import (
	"fmt"
	"strconv"

	"adaptio/internal/compress"
	"adaptio/internal/core"
	"adaptio/internal/obs"
)

// rateBuckets spans the window app-rate histogram: 1 KB/s to ~8.4 GB/s in
// powers of two.
var rateBuckets = obs.ExpBuckets(1e3, 2, 24)

// writerObs bundles the Writer's observability instruments. All metrics are
// resolved once at construction; hot-path updates are lock-free atomic
// increments (nil-scope construction yields unregistered but functional
// metrics, so the hot path never branches on "is obs configured").
type writerObs struct {
	appBytes      *obs.Counter
	wireBytes     *obs.Counter
	blocks        *obs.Counter
	levelSwitches *obs.Counter
	rawFallbacks  *obs.Counter
	// probeSkips counts the RawFallbacks subset where the entropy pre-probe
	// skipped the codec outright (Stats.ProbeSkips).
	probeSkips *obs.Counter
	// copiedBytes / passthroughBytes split the application bytes by
	// user-space copy cost (see Stats.CopiedBytes): staged or
	// codec-transformed bytes vs stored-raw bytes aliased onto the wire.
	copiedBytes      *obs.Counter
	passthroughBytes *obs.Counter
	// Per-ladder-level byte accounting, indexed by level.
	levelAppBytes  []*obs.Counter
	levelWireBytes []*obs.Counter
	// windowRate observes the application data rate (bytes/second) of
	// every completed decision window — the cdr the Decider consumes.
	windowRate *obs.Histogram
	// decisions logs the controller's probe/reward/revert transitions.
	decisions *obs.EventLog
}

func newWriterObs(scope *obs.Scope, ladder compress.Ladder) writerObs {
	o := writerObs{
		appBytes:         scope.Counter("app_bytes"),
		wireBytes:        scope.Counter("wire_bytes"),
		blocks:           scope.Counter("blocks"),
		levelSwitches:    scope.Counter("level_switches"),
		rawFallbacks:     scope.Counter("raw_fallbacks"),
		probeSkips:       scope.Counter("probe_skips"),
		copiedBytes:      scope.Counter("copied_bytes"),
		passthroughBytes: scope.Counter("passthrough_bytes"),
		windowRate:       scope.Histogram("window_rate", rateBuckets),
		decisions:        scope.EventLog("decisions", 0),
	}
	appFam := scope.CounterFamily("app_bytes", "level")
	wireFam := scope.CounterFamily("wire_bytes", "level")
	for lvl := range ladder {
		v := strconv.Itoa(lvl)
		o.levelAppBytes = append(o.levelAppBytes, appFam.With(v))
		o.levelWireBytes = append(o.levelWireBytes, wireFam.With(v))
	}
	// Derived compression ratio (wire/app; 1.0 until bytes flow).
	scope.FloatFunc("ratio", func() float64 {
		app := o.appBytes.Value()
		if app == 0 {
			return 1
		}
		return float64(o.wireBytes.Value()) / float64(app)
	})
	return o
}

// onDecision publishes one controller decision to the event log. Hold
// decisions (stable rate, backoff pending) are skipped: they carry no
// transition and would flood the bounded ring at one per window.
func (o *writerObs) onDecision(d core.Decision) {
	if d.Kind == core.DecisionHold {
		return
	}
	o.decisions.Add(d.Kind.String(), fmt.Sprintf(
		"level %d -> %d rate %.0f B/s prev %.0f B/s bck[%d]=%d",
		d.From, d.To, d.Rate, d.PrevRate, d.From, d.Backoff))
}
