package stream_test

import (
	"bytes"
	"io"
	"testing"

	"adaptio/internal/corpus"
	"adaptio/internal/stream"
)

// Allocation benchmarks for the data plane (see docs/performance.md and the
// committed baseline in BENCH_alloc.json). Run with:
//
//	make bench-alloc
//
// The *Steady benchmarks measure the per-block cost of long-lived streams —
// the paper's sustained-transfer scenario — while the *Churn benchmarks
// measure stream setup+teardown, the connection-per-request scenario the
// tunnel and Nephele channels see under heavy traffic.

// loopSource replays the same encoded wire bytes forever, allocation-free,
// so a single long-lived Reader can decode b.N frames.
type loopSource struct {
	data []byte
	off  int
}

func (l *loopSource) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// benchPipe is a minimal in-memory pipe: Write appends, Read consumes, and
// the buffer resets once drained. After one warm-up op its backing array is
// fully grown, so steady-state ops do not allocate in the transport.
type benchPipe struct {
	buf []byte
	off int
}

func (p *benchPipe) Write(b []byte) (int, error) {
	p.buf = append(p.buf, b...)
	return len(b), nil
}

func (p *benchPipe) Read(b []byte) (int, error) {
	if p.off == len(p.buf) {
		return 0, io.EOF
	}
	n := copy(b, p.buf[p.off:])
	p.off += n
	if p.off == len(p.buf) {
		p.buf = p.buf[:0]
		p.off = 0
	}
	return n, nil
}

func benchBlock(tb testing.TB, n int) []byte {
	tb.Helper()
	return corpus.Generate(corpus.Moderate, n, 7)
}

func staticCfg(level, parallelism int) stream.WriterConfig {
	return stream.WriterConfig{Static: true, StaticLevel: level, Parallelism: parallelism}
}

// encodeWire returns the wire form of data at the given static level.
func encodeWire(tb testing.TB, data []byte, level int) []byte {
	tb.Helper()
	var wire bytes.Buffer
	w, err := stream.NewWriter(&wire, staticCfg(level, 0))
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return wire.Bytes()
}

// BenchmarkAllocWriterSteady: one 128 KB block through a long-lived serial
// Writer per op.
func BenchmarkAllocWriterSteady(b *testing.B) {
	data := benchBlock(b, stream.DefaultBlockSize)
	w, err := stream.NewWriter(io.Discard, staticCfg(stream.LevelLight, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllocReaderSteady: one 128 KB frame through a long-lived serial
// Reader per op.
func BenchmarkAllocReaderSteady(b *testing.B) {
	data := benchBlock(b, stream.DefaultBlockSize)
	src := &loopSource{data: encodeWire(b, data, stream.LevelLight)}
	r, err := stream.NewReader(src)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := io.ReadFull(r, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocRoundTripSerial: 128 KB written, framed, decoded and read
// back per op through a long-lived Writer/Reader pair — the path the
// AllocsPerRun gate in alloc_test.go locks down.
func BenchmarkAllocRoundTripSerial(b *testing.B) {
	data := benchBlock(b, stream.DefaultBlockSize)
	pipe := &benchPipe{}
	w, err := stream.NewWriter(pipe, staticCfg(stream.LevelLight, 0))
	if err != nil {
		b.Fatal(err)
	}
	r, err := stream.NewReader(pipe)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, len(data))
	roundTrip := func() {
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(r, out); err != nil {
			b.Fatal(err)
		}
	}
	roundTrip() // warm-up: grow the transport and scratch buffers
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip()
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllocWriterChurn: Writer setup, one block, teardown per op — the
// per-connection cost a tunnel or Nephele channel pays.
func BenchmarkAllocWriterChurn(b *testing.B) {
	data := benchBlock(b, stream.DefaultBlockSize)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := stream.NewWriter(io.Discard, staticCfg(stream.LevelLight, 0))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocPipelineWriter: one 128 KB block per op through a long-lived
// Writer with a 4-worker parallel compression pipeline.
func BenchmarkAllocPipelineWriter(b *testing.B) {
	data := benchBlock(b, stream.DefaultBlockSize)
	w, err := stream.NewWriter(io.Discard, staticCfg(stream.LevelLight, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllocParallelReader: one 128 KB frame per op through a long-lived
// 4-worker ParallelReader.
func BenchmarkAllocParallelReader(b *testing.B) {
	data := benchBlock(b, stream.DefaultBlockSize)
	src := &loopSource{data: encodeWire(b, data, stream.LevelLight)}
	r, err := stream.NewParallelReader(src, 4)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := io.ReadFull(r, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	r.Close()
}
