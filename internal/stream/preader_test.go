package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/corpus"
	"adaptio/internal/faultio/leakcheck"
)

func buildStream(t *testing.T, kind corpus.Kind, size, level, blockSize int) ([]byte, []byte) {
	t.Helper()
	src := corpus.Generate(kind, size, 9)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: level, BlockSize: blockSize})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return src, wire.Bytes()
}

func TestParallelReaderRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	for _, workers := range []int{1, 2, 8} {
		for _, kind := range corpus.Kinds() {
			src, wire := buildStream(t, kind, 500<<10, LevelLight, 16<<10)
			r, err := NewParallelReader(bytes.NewReader(wire), workers)
			if err != nil {
				t.Fatal(err)
			}
			out, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("workers=%d %v: %v", workers, kind, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("workers=%d %v: round trip mismatch", workers, kind)
			}
			raw, wireBytes, blocks := r.Counters()
			if raw != int64(len(src)) || wireBytes != int64(len(wire)) || blocks == 0 {
				t.Fatalf("counters raw=%d wire=%d blocks=%d", raw, wireBytes, blocks)
			}
			r.Close()
		}
	}
}

func TestParallelReaderMixedLevels(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	// A stream produced by the parallel writer probing across levels must
	// decode identically on the parallel reader.
	src := corpus.Generate(corpus.High, 1<<20, 3)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Parallelism: 4, BlockSize: 8 << 10})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewParallelReader(&wire, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("mixed-level parallel round trip failed: %v", err)
	}
}

func TestParallelReaderDetectsCorruption(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	_, wire := buildStream(t, corpus.Moderate, 200<<10, LevelLight, 8<<10)
	bad := append([]byte(nil), wire...)
	bad[len(bad)/2] ^= 0xFF
	r, err := NewParallelReader(bytes.NewReader(bad), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestParallelReaderTruncation(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	_, wire := buildStream(t, corpus.Moderate, 100<<10, LevelLight, 8<<10)
	r, err := NewParallelReader(bytes.NewReader(wire[:len(wire)-3]), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := io.ReadAll(r); err == nil || err == io.EOF {
		t.Fatalf("truncation not detected: %v", err)
	}
}

func TestParallelReaderEarlyClose(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	_, wire := buildStream(t, corpus.Moderate, 400<<10, LevelLight, 8<<10)
	r, err := NewParallelReader(bytes.NewReader(wire), 4)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r.Close() // idempotent
}

func TestParallelReaderEmptyAndErrors(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t)
	if _, err := NewParallelReader(nil, 2); err == nil {
		t.Fatal("nil source accepted")
	}
	r, err := NewParallelReader(bytes.NewReader(nil), 0) // workers clamp to 1
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty stream: %d bytes, %v", len(out), err)
	}
	// Reads after EOF keep returning EOF.
	if _, err := r.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("post-EOF read: %v", err)
	}
}
