package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"adaptio/internal/corpus"
)

// corruptSeedWire builds the valid wire image the corrupt-stream fuzzer
// mutates: three blocks across two codec levels.
func corruptSeedWire(tb testing.TB) []byte {
	tb.Helper()
	var wire bytes.Buffer
	w, err := NewWriter(&wire, WriterConfig{Static: true, StaticLevel: LevelLight, BlockSize: 1024})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := w.Write(corpus.Generate(corpus.Moderate, 2500, 9)); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return wire.Bytes()
}

// FuzzReaderCorruptStream hammers both frame readers with corrupt wire
// bytes and checks the documented corrupt-frame policy differentially:
//
//   - neither Reader nor ParallelReader panics or leaks goroutines;
//   - any failure wraps ErrBadFrame (io.ErrUnexpectedEOF marks honest
//     truncation of the final frame, which the format cannot distinguish
//     from a short wire);
//   - both readers deliver the identical byte prefix and agree on whether
//     the stream is acceptable — the parallel path must never deliver
//     bytes the sequential path would reject, or vice versa.
//
// Seeds come from the chaos suite's failure modes: truncation, bit flips
// in header and payload, and garbage splices (testdata/fuzz).
func FuzzReaderCorruptStream(f *testing.F) {
	wire := corruptSeedWire(f)
	f.Add(wire)
	f.Add(wire[:len(wire)/2])
	f.Add([]byte{})
	flipped := append([]byte(nil), wire...)
	flipped[12] ^= 0x40 // CRC byte of the first frame
	f.Add(flipped)
	// A stream that ends mid-header: valid blocks followed by the first 7
	// bytes of another frame header (headerSize is 16). Exercises the
	// header-read truncation path rather than payload truncation.
	midHeader := append(append([]byte(nil), wire...), wire[:7]...)
	f.Add(midHeader)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		seqOut, seqErr := io.ReadAll(r)

		pr, err := NewParallelReader(bytes.NewReader(data), 3)
		if err != nil {
			t.Fatal(err)
		}
		parOut, parErr := io.ReadAll(pr)
		pr.Close()

		for name, err := range map[string]error{"reader": seqErr, "parallel": parErr} {
			if err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
				continue
			}
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("%s failed without wrapping ErrBadFrame: %v", name, err)
			}
		}
		if !bytes.Equal(seqOut, parOut) {
			t.Fatalf("readers disagree on delivered bytes: sequential %d, parallel %d", len(seqOut), len(parOut))
		}
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("readers disagree on acceptability: sequential err=%v, parallel err=%v", seqErr, parErr)
		}
	})
}
