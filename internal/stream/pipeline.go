package stream

import (
	"sync"

	"adaptio/internal/block"
	"adaptio/internal/compress"
	"adaptio/internal/compress/probe"
)

// pipeline is the order-preserving parallel compression engine behind
// WriterConfig.Parallelism: blocks are compressed concurrently by a worker
// pool, then written downstream in submission order. Compression dominates
// the stream layer's CPU cost, so on multicore senders the pool multiplies
// throughput without changing the wire format (frames remain strictly
// ordered and self-contained).
//
// Buffer lifecycle: submit transfers ownership of the block's arena buffer
// to the pipeline. For a compressed frame the worker releases it right
// after encoding into a fresh arena buffer; for a stored-raw frame (codec
// declined, failed to shrink, or probe-skipped) the worker keeps the block
// buffer as the frame's tail piece so the raw bytes are never copied into
// the frame buffer — the flusher puts header and block on the wire as a
// vectored write, exactly like the serial path. The flusher releases
// whatever buffers each frame still holds after the write. stop drains
// everything in flight, so by the time stop returns no pipeline-owned
// buffer is outstanding.
type pipeline struct {
	ladder compress.Ladder
	probe  probe.Config
	dst    writeSink

	jobs chan compressJob

	mu        sync.Mutex
	cond      *sync.Cond
	done      map[uint64]encodedFrame // finished but not yet written
	nextSub   uint64                  // next sequence number to assign
	nextWrite uint64                  // next sequence number to write
	err       error
	stopped   bool

	workerWG  sync.WaitGroup
	flusherWG sync.WaitGroup
}

// writeSink receives ordered frames and accounts them; implemented by
// Writer.
type writeSink interface {
	writeEncodedFrame(f encodedFrame) error
}

type compressJob struct {
	seq    uint64
	level  int
	staged int64      // raw bytes copied into the block by Write
	block  *block.Buf // owned by the pipeline once submitted
}

type encodedFrame struct {
	frame   *block.Buf // head piece (header [+ compressed payload]); released by the flusher
	tail    *block.Buf // stored-raw frames only: the block itself, written vectored after frame
	rawLen  int
	staged  int64 // carried through for the sink's copy accounting
	level   int
	codecID uint8
	skipped bool // entropy probe sent the block straight to stored-raw
}

func newPipeline(ladder compress.Ladder, pr probe.Config, dst writeSink, workers int) *pipeline {
	p := &pipeline{
		ladder: ladder,
		probe:  pr,
		dst:    dst,
		jobs:   make(chan compressJob, workers*2),
		done:   make(map[uint64]encodedFrame),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.workerWG.Add(1)
		go p.worker()
	}
	p.flusherWG.Add(1)
	go p.flusher()
	return p
}

func (p *pipeline) worker() {
	defer p.workerWG.Done()
	for job := range p.jobs {
		rawLen := len(job.block.B)
		fbuf := block.Get(maxFrameSize(rawLen))
		head, tail, codecID, skipped := encodeFramePieces(fbuf.B[:0], p.ladder, job.level, job.block.B, p.probe)
		fbuf.B = head
		ef := encodedFrame{frame: fbuf, rawLen: rawLen, staged: job.staged, level: job.level, codecID: codecID, skipped: skipped}
		if tail != nil {
			// Stored raw: tail aliases job.block.B, so the block buffer
			// travels with the frame and the flusher releases it.
			ef.tail = job.block
		} else {
			job.block.Release()
		}
		p.mu.Lock()
		p.done[job.seq] = ef
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// flusher writes finished frames downstream in sequence order.
func (p *pipeline) flusher() {
	defer p.flusherWG.Done()
	for {
		p.mu.Lock()
		for {
			if _, ok := p.done[p.nextWrite]; ok {
				break
			}
			if p.stopped && p.nextWrite == p.nextSub {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
		f := p.done[p.nextWrite]
		delete(p.done, p.nextWrite)
		p.mu.Unlock()

		err := p.dst.writeEncodedFrame(f)
		f.frame.Release()
		if f.tail != nil {
			f.tail.Release()
		}

		p.mu.Lock()
		p.nextWrite++
		if err != nil && p.err == nil {
			p.err = err
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// submit enqueues one block (whose arena buffer the pipeline takes
// ownership of) at the given level. It returns any asynchronous write
// error observed so far.
func (p *pipeline) submit(blk *block.Buf, level int, staged int64) error {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		panic("stream: submit on stopped pipeline")
	}
	seq := p.nextSub
	p.nextSub++
	err := p.err
	p.mu.Unlock()
	p.jobs <- compressJob{seq: seq, level: level, staged: staged, block: blk}
	return err
}

// drain blocks until every submitted frame has been written downstream and
// returns the first asynchronous error.
func (p *pipeline) drain() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.nextWrite < p.nextSub {
		p.cond.Wait()
	}
	return p.err
}

// stop drains, shuts the workers down and returns the first error. The
// pipeline cannot be used afterwards.
func (p *pipeline) stop() error {
	p.mu.Lock()
	if p.stopped {
		err := p.err
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()

	err := p.drain()

	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()

	close(p.jobs)
	p.workerWG.Wait()
	p.flusherWG.Wait()
	return err
}
