package stream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"

	"adaptio/internal/compress"
	"adaptio/internal/compress/probe"
	"adaptio/internal/corpus"
)

// incompressible returns n bytes of uniform pseudo-random data — even
// corpus.Low shrinks by a few percent under lzfast, but uniform noise
// cannot, which is what forces the stored-raw (vectored) frame path.
func incompressible(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

// shortWriter accepts at most chunk bytes per Write with a nil error — the
// POSIX-style transport writeFull exists for. It records every Write size
// so tests can prove the fallback path ran.
type shortWriter struct {
	buf    bytes.Buffer
	chunk  int
	writes []int
}

func (w *shortWriter) Write(p []byte) (int, error) {
	n := len(p)
	if n > w.chunk {
		n = w.chunk
	}
	w.writes = append(w.writes, n)
	return w.buf.Write(p[:n])
}

// vecRecorder implements VectoredWriter and records the piece lengths.
type vecRecorder struct {
	buf  bytes.Buffer
	hdrs []int
}

func (w *vecRecorder) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *vecRecorder) WriteVectored(hdr, payload []byte) error {
	w.hdrs = append(w.hdrs, len(hdr))
	w.buf.Write(hdr)
	w.buf.Write(payload)
	return nil
}

func TestWriteVectoredFallbackPreservesShortWrites(t *testing.T) {
	hdr := []byte("0123456789abcdef")
	payload := bytes.Repeat([]byte("x"), 1000)
	w := &shortWriter{chunk: 7}
	if err := WriteVectored(w, hdr, payload); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), hdr...), payload...)
	if !bytes.Equal(w.buf.Bytes(), want) {
		t.Fatal("fallback path lost or reordered bytes across short writes")
	}
	if len(w.writes) < len(want)/7 {
		t.Fatalf("short writer saw %d writes, expected ~%d", len(w.writes), len(want)/7)
	}
}

func TestWriteVectoredDispatchesToVectoredWriter(t *testing.T) {
	w := &vecRecorder{}
	if err := WriteVectored(w, []byte("hh"), []byte("pppp")); err != nil {
		t.Fatal(err)
	}
	if len(w.hdrs) != 1 || w.hdrs[0] != 2 {
		t.Fatalf("VectoredWriter not used: %v", w.hdrs)
	}
	if w.buf.String() != "hhpppp" {
		t.Fatalf("wrote %q", w.buf.String())
	}
}

func TestWriteVectoredTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		data, _ := io.ReadAll(c)
		got <- data
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	hdr := []byte("header--16bytes!")
	payload := bytes.Repeat([]byte("y"), 128<<10)
	if err := WriteVectored(conn.(*net.TCPConn), hdr, payload); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	want := append(append([]byte(nil), hdr...), payload...)
	if !bytes.Equal(<-got, want) {
		t.Fatal("TCP vectored write corrupted the stream")
	}
}

// TestEncodeFramePiecesRawAliasesBlock pins the zero-copy contract: a
// stored-raw frame's tail must alias the caller's block, not a copy.
func TestEncodeFramePiecesRawAliasesBlock(t *testing.T) {
	ladder := DefaultLadder()
	block := incompressible(4096, 1) // raw fallback
	scratch := make([]byte, 0, maxFrameSize(len(block)))

	head, tail, codecID, skipped := encodeFramePieces(scratch, ladder, LevelLight, block, probe.Default())
	if codecID != compress.IDNone {
		t.Fatalf("incompressible block not stored raw: codec %d", codecID)
	}
	if !skipped {
		t.Fatal("uniform random block not skipped by the entropy probe")
	}
	if len(head) != headerSize {
		t.Fatalf("raw head is %d bytes, want bare header", len(head))
	}
	if len(tail) != len(block) || &tail[0] != &block[0] {
		t.Fatal("raw tail must alias the block (zero copy)")
	}
	h, err := parseHeader(head)
	if err != nil {
		t.Fatal(err)
	}
	if h.codecID != compress.IDNone || h.rawLen != len(block) || h.compLen != len(block) {
		t.Fatalf("raw header wrong: %+v", h)
	}

	// Probe disabled: the codec runs, fails to shrink, and the standard
	// stored-raw fallback produces the identical two-piece frame.
	head2, tail2, codecID, skipped := encodeFramePieces(scratch, ladder, LevelLight, block, probe.Disabled())
	if skipped {
		t.Fatal("disabled probe reported a skip")
	}
	if codecID != compress.IDNone || !bytes.Equal(head2, head) || len(tail2) != len(block) || &tail2[0] != &block[0] {
		t.Fatal("probe skip and codec fallback disagree on the stored-raw frame")
	}

	// Identity level: Compress must not run at all; same two-piece shape,
	// and never counted as a probe skip.
	head, tail, codecID, skipped = encodeFramePieces(scratch, ladder, LevelNo, block, probe.Default())
	if codecID != compress.IDNone || len(head) != headerSize || tail == nil || skipped {
		t.Fatalf("identity level: head %d bytes, tail %v, codec %d, skipped %v", len(head), tail != nil, codecID, skipped)
	}

	// Compressible block: one contiguous piece, no tail.
	comp := corpus.Generate(corpus.High, 4096, 1)
	head, tail, codecID, skipped = encodeFramePieces(scratch, ladder, LevelLight, comp, probe.Default())
	if tail != nil || codecID == compress.IDNone || skipped {
		t.Fatalf("compressible block should be a single piece, tail %v codec %d skipped %v", tail != nil, codecID, skipped)
	}
	if len(head) >= headerSize+len(comp) {
		t.Fatalf("compressed frame did not shrink: %d bytes", len(head))
	}
}

// TestWriterVectoredFramesDecode round-trips a writer over destinations
// that exercise each WriteVectored dispatch arm and checks the reader
// accepts the wire bytes and that all arms produce identical streams.
func TestWriterVectoredFramesDecode(t *testing.T) {
	app := incompressible(300<<10, 4) // raw-fallback frames throughout
	encode := func(dst io.Writer) error {
		w, err := NewWriter(dst, WriterConfig{Static: true, StaticLevel: LevelLight})
		if err != nil {
			return err
		}
		if _, err := w.Write(app); err != nil {
			return err
		}
		return w.Close()
	}

	var plain bytes.Buffer
	if err := encode(&plain); err != nil {
		t.Fatal(err)
	}
	short := &shortWriter{chunk: 1000}
	if err := encode(short); err != nil {
		t.Fatal(err)
	}
	vec := &vecRecorder{}
	if err := encode(vec); err != nil {
		t.Fatal(err)
	}
	if len(vec.hdrs) == 0 {
		t.Fatal("VectoredWriter destination never saw a vectored frame")
	}
	if !bytes.Equal(plain.Bytes(), short.buf.Bytes()) || !bytes.Equal(plain.Bytes(), vec.buf.Bytes()) {
		t.Fatal("wire bytes differ across WriteVectored dispatch arms")
	}

	r, err := NewReader(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, app) {
		t.Fatal("vectored frames do not decode back to the application bytes")
	}
}

// errAfterWriter fails the Nth write, covering writeFrame's error path for
// vectored (two-piece) frames.
type errAfterWriter struct {
	n    int
	seen int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	w.seen++
	if w.seen > w.n {
		return 0, errors.New("boom")
	}
	return len(p), nil
}

func TestWriteFrameVectoredErrorPropagates(t *testing.T) {
	ladder := DefaultLadder()
	block := incompressible(4096, 2)
	scratch := make([]byte, 0, maxFrameSize(len(block)))
	// First write (header) succeeds, second (payload) fails.
	_, _, _, _, err := writeFrame(&errAfterWriter{n: 1}, ladder, LevelLight, block, scratch, probe.Default())
	if err == nil || err.Error() != "boom" {
		t.Fatalf("payload write error not propagated: %v", err)
	}
}
