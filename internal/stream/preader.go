package stream

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"adaptio/internal/block"
)

// ParallelReader decompresses a frame stream on a worker pool while
// delivering the application bytes strictly in order — the receive-side
// counterpart of WriterConfig.Parallelism. Frames are read from the source
// sequentially (the wire is serial anyway); decompression and CRC
// verification fan out across workers.
//
// A ParallelReader must be Closed when abandoned before EOF, or its
// goroutines leak. Reading to EOF (or any error) also releases them.
//
// ParallelReader follows the same corrupt-frame policy as Reader: the first
// bad frame surfaces as a sticky *FrameError (frame index + wire offset,
// wrapping ErrBadFrame), no corrupt bytes are delivered, allocation stays
// bounded by MaxBlockSize, and no goroutine outlives EOF, error, or Close.
//
// Buffer lifecycle (see internal/block and docs/performance.md): raw
// frames and decoded blocks ride pooled arena buffers. Ownership flows
// demultiplexer -> worker -> reorderer -> Read; each stage releases what it
// consumes, discarded frames are released by whichever stage drops them,
// and Close drains and releases everything still in flight. Reading to EOF
// or Closing therefore returns the pool to its idle state — the leak
// trackers in the test suite assert this.
type ParallelReader struct {
	out      chan pframe
	cur      []byte
	curArena *block.Buf // backing of cur; released once fully delivered
	err      error
	closeCh  chan struct{}
	once     sync.Once

	rawBytes  int64
	wireBytes int64
	blocks    int64
}

type pframe struct {
	seq  uint64
	data *block.Buf // nil on error frames
	err  error
	wire int64
	off  int64 // wire offset of the frame's first header byte
}

// release drops the frame's buffer, if any. Safe on error frames.
func (f *pframe) release() {
	if f.data != nil {
		f.data.Release()
		f.data = nil
	}
}

// NewParallelReader creates a reader over src with the given worker count
// (minimum 1).
func NewParallelReader(src io.Reader, workers int) (*ParallelReader, error) {
	if src == nil {
		return nil, errors.New("stream: nil source reader")
	}
	if workers < 1 {
		workers = 1
	}
	r := &ParallelReader{
		out:     make(chan pframe, workers*2),
		closeCh: make(chan struct{}),
	}
	jobs := make(chan pframe, workers*2)

	// Demultiplexer: read raw frames sequentially, hand them to workers.
	var wg sync.WaitGroup
	go func() {
		defer close(jobs)
		var hdr [headerSize]byte
		var seq uint64
		var off int64 // wire offset of the frame about to be read
		for {
			raw, err := readRawFrame(src, &hdr)
			if err == io.EOF {
				return
			}
			if err != nil {
				err = &FrameError{Frame: int64(seq), Offset: off, Err: err}
			}
			job := pframe{seq: seq, data: raw, err: err}
			if raw != nil {
				job.wire = int64(len(raw.B))
			}
			job.off = off
			select {
			case jobs <- job:
			case <-r.closeCh:
				job.release()
				return
			}
			if err != nil {
				return
			}
			seq++
			off += job.wire
		}
	}()

	// Workers: decompress and verify. The raw frame buffer is released
	// here; the decoded block buffer travels onward.
	results := make(chan pframe, workers*2)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if job.err != nil {
					results <- job
					continue
				}
				blk, err := decodeRawFrame(job.data)
				job.release()
				if err != nil {
					err = &FrameError{Frame: int64(job.seq), Offset: job.off, Err: err}
				}
				results <- pframe{seq: job.seq, data: blk, err: err, wire: job.wire, off: job.off}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorderer: deliver frames in sequence order. After an error or a
	// Close it keeps draining the results channel — releasing the dropped
	// frames — so the workers never block on a full channel (that would
	// leak them).
	go func() {
		defer close(r.out)
		pending := map[uint64]pframe{}
		defer func() {
			for _, f := range pending {
				f.release()
			}
		}()
		var next uint64
		dead := false
		for f := range results {
			if dead {
				f.release()
				continue
			}
			pending[f.seq] = f
			for !dead {
				nf, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case r.out <- nf:
					if nf.err != nil {
						dead = true
					}
				case <-r.closeCh:
					nf.release()
					dead = true
				}
				next++
			}
		}
	}()
	return r, nil
}

// readRawFrame reads one frame's header and payload without decoding into
// a pooled buffer holding header+payload, which the caller owns.
func readRawFrame(src io.Reader, hdr *[headerSize]byte) (*block.Buf, error) {
	h, err := readFrameHeader(src, hdr)
	if err != nil {
		return nil, err
	}
	raw := block.GetLen(headerSize + h.compLen)
	copy(raw.B, hdr[:])
	if _, err := io.ReadFull(src, raw.B[headerSize:]); err != nil {
		raw.Release()
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	return raw, nil
}

// decodeRawFrame decompresses and verifies one raw frame into a fresh
// pooled buffer. On error no buffer is retained.
func decodeRawFrame(raw *block.Buf) (*block.Buf, error) {
	h, err := parseHeader(raw.B)
	if err != nil {
		return nil, err
	}
	out := block.Get(h.rawLen)
	dst, err := decodeFramePayload(out.B[:0], h, raw.B[headerSize:])
	out.B = dst
	if err != nil {
		out.Release()
		return nil, err
	}
	return out, nil
}

// Read implements io.Reader.
func (r *ParallelReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		f, ok := <-r.out
		if !ok {
			r.err = io.EOF
			return 0, io.EOF
		}
		if f.err != nil {
			r.err = f.err
			return 0, f.err
		}
		r.setCur(f.data)
		r.rawBytes += int64(len(f.data.B))
		r.wireBytes += f.wire
		r.blocks++
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	if len(r.cur) == 0 {
		r.setCur(nil)
	}
	return n, nil
}

// setCur installs the next block buffer as the delivery cursor, releasing
// the previous one (also handles empty blocks, which are skipped by the
// Read loop).
func (r *ParallelReader) setCur(b *block.Buf) {
	if r.curArena != nil {
		r.curArena.Release()
	}
	r.curArena = b
	if b != nil {
		r.cur = b.B
	} else {
		r.cur = nil
	}
}

// Counters returns application bytes delivered, wire bytes consumed and
// frames decoded so far.
func (r *ParallelReader) Counters() (rawBytes, wireBytes, blocks int64) {
	return r.rawBytes, r.wireBytes, r.blocks
}

// Close releases the worker goroutines and returns every in-flight pooled
// buffer to the arena. It is safe to call multiple times and after EOF,
// but must not be called concurrently with Read.
func (r *ParallelReader) Close() error {
	r.once.Do(func() {
		close(r.closeCh)
		// Drain undelivered frames. The pipeline unwinds promptly once
		// closeCh is closed, so this terminates: the reorderer observes
		// closeCh (or the closed results channel) and closes r.out.
		for f := range r.out {
			f.release()
		}
		r.setCur(nil)
		if r.err == nil {
			r.err = errReaderClosed
		}
	})
	return nil
}
