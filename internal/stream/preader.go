package stream

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"adaptio/internal/compress"
)

// ParallelReader decompresses a frame stream on a worker pool while
// delivering the application bytes strictly in order — the receive-side
// counterpart of WriterConfig.Parallelism. Frames are read from the source
// sequentially (the wire is serial anyway); decompression and CRC
// verification fan out across workers.
//
// A ParallelReader must be Closed when abandoned before EOF, or its
// goroutines leak. Reading to EOF (or any error) also releases them.
//
// ParallelReader follows the same corrupt-frame policy as Reader: the first
// bad frame surfaces as a sticky *FrameError (frame index + wire offset,
// wrapping ErrBadFrame), no corrupt bytes are delivered, allocation stays
// bounded by MaxBlockSize, and no goroutine outlives EOF, error, or Close.
type ParallelReader struct {
	out     chan pframe
	cur     []byte
	err     error
	closeCh chan struct{}
	once    sync.Once

	rawBytes  int64
	wireBytes int64
	blocks    int64
}

type pframe struct {
	seq  uint64
	data []byte
	err  error
	wire int64
	off  int64 // wire offset of the frame's first header byte
}

// NewParallelReader creates a reader over src with the given worker count
// (minimum 1).
func NewParallelReader(src io.Reader, workers int) (*ParallelReader, error) {
	if src == nil {
		return nil, errors.New("stream: nil source reader")
	}
	if workers < 1 {
		workers = 1
	}
	r := &ParallelReader{
		out:     make(chan pframe, workers*2),
		closeCh: make(chan struct{}),
	}
	jobs := make(chan pframe, workers*2)

	// Demultiplexer: read raw frames sequentially, hand them to workers.
	var wg sync.WaitGroup
	go func() {
		defer close(jobs)
		var seq uint64
		var off int64 // wire offset of the frame about to be read
		for {
			raw, _, err := readRawFrame(src)
			if err == io.EOF {
				return
			}
			if err != nil {
				err = &FrameError{Frame: int64(seq), Offset: off, Err: err}
			}
			job := pframe{seq: seq, data: raw, err: err, wire: int64(len(raw)), off: off}
			select {
			case jobs <- job:
			case <-r.closeCh:
				return
			}
			if err != nil {
				return
			}
			seq++
			off += int64(len(raw))
		}
	}()

	// Workers: decompress and verify.
	results := make(chan pframe, workers*2)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if job.err != nil {
					results <- job
					continue
				}
				block, err := decodeRawFrame(job.data)
				if err != nil {
					err = &FrameError{Frame: int64(job.seq), Offset: job.off, Err: err}
				}
				results <- pframe{seq: job.seq, data: block, err: err, wire: job.wire, off: job.off}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorderer: deliver frames in sequence order. After an error or a
	// Close it keeps draining the results channel so the workers never
	// block on a full channel (that would leak them).
	go func() {
		defer close(r.out)
		pending := map[uint64]pframe{}
		var next uint64
		dead := false
		for f := range results {
			if dead {
				continue
			}
			pending[f.seq] = f
			for !dead {
				nf, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case r.out <- nf:
					if nf.err != nil {
						dead = true
					}
				case <-r.closeCh:
					dead = true
				}
				next++
			}
		}
	}()
	return r, nil
}

// readRawFrame reads one frame's header and payload without decoding. The
// returned slice holds header+payload.
func readRawFrame(src io.Reader) ([]byte, header, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, header{}, io.EOF
		}
		return nil, header{}, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	h, err := parseHeader(hdr[:])
	if err != nil {
		return nil, header{}, err
	}
	raw := make([]byte, headerSize+h.compLen)
	copy(raw, hdr[:])
	if _, err := io.ReadFull(src, raw[headerSize:]); err != nil {
		return nil, header{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	return raw, h, nil
}

// decodeRawFrame decompresses and verifies one raw frame.
func decodeRawFrame(raw []byte) ([]byte, error) {
	h, err := parseHeader(raw)
	if err != nil {
		return nil, err
	}
	codec, err := compress.ByID(h.codecID)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	block, err := codec.Decompress(nil, raw[headerSize:], h.rawLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if got := crc32.Checksum(block, crcTable); got != h.crc {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrBadFrame, got, h.crc)
	}
	return block, nil
}

// Read implements io.Reader.
func (r *ParallelReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		f, ok := <-r.out
		if !ok {
			r.err = io.EOF
			return 0, io.EOF
		}
		if f.err != nil {
			r.err = f.err
			return 0, f.err
		}
		r.cur = f.data
		r.rawBytes += int64(len(f.data))
		r.wireBytes += f.wire
		r.blocks++
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// Counters returns application bytes delivered, wire bytes consumed and
// frames decoded so far.
func (r *ParallelReader) Counters() (rawBytes, wireBytes, blocks int64) {
	return r.rawBytes, r.wireBytes, r.blocks
}

// Close releases the worker goroutines. It is safe to call multiple times
// and after EOF.
func (r *ParallelReader) Close() error {
	r.once.Do(func() { close(r.closeCh) })
	return nil
}
