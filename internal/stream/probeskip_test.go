package stream

import (
	"bytes"
	"io"
	"testing"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/compress/probe"
	"adaptio/internal/corpus"
	"adaptio/internal/obs"
)

// This file pins the stream-level entropy pre-probe property: a block the
// probe judges hopeless is framed bit-identically to a stored-raw block —
// the skip is invisible on the wire — while the ledger records the saved
// work (ProbeSkips) and, on the direct-ingest path, the bytes stay
// zero-copy (passthrough_bytes, not copied_bytes).

// encodeProbe pushes src through a writer built from cfg — via ReadFrom
// (direct ingest) or Write (staging) — and returns the wire bytes and the
// final stats.
func encodeProbe(t *testing.T, cfg WriterConfig, src []byte, direct bool) ([]byte, Stats) {
	t.Helper()
	var wire bytes.Buffer
	w := mustWriter(t, &wire, cfg)
	var err error
	if direct {
		_, err = w.ReadFrom(bytes.NewReader(src))
	} else {
		_, err = w.Write(src)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return wire.Bytes(), w.Stats()
}

// TestProbeSkipWireIdenticalToStoredRaw: for incompressible input at a
// compressing level, the probe-skipped wire stream must be byte-identical
// to the same data framed at the identity level (pure stored-raw framing) —
// and to the same level with the probe disabled, where the codec runs and
// takes the stored-raw fallback itself. One property, all three encoders.
func TestProbeSkipWireIdenticalToStoredRaw(t *testing.T) {
	blocktest.Track(t)
	src := incompressible(300<<10, 17) // spans full and partial blocks
	for lvl := 1; lvl < len(DefaultLadder()); lvl++ {
		skipped, st := encodeProbe(t, WriterConfig{Static: true, StaticLevel: lvl}, src, true)
		storedRaw, _ := encodeProbe(t, WriterConfig{Static: true, StaticLevel: LevelNo}, src, true)
		if !bytes.Equal(skipped, storedRaw) {
			t.Fatalf("level %d: probe-skipped wire differs from stored-raw framing (%d vs %d bytes)",
				lvl, len(skipped), len(storedRaw))
		}
		pr := probe.Disabled()
		codecPath, stDis := encodeProbe(t, WriterConfig{Static: true, StaticLevel: lvl, Probe: &pr}, src, true)
		if !bytes.Equal(skipped, codecPath) {
			t.Fatalf("level %d: probe skip changes the wire bytes vs the codec's own fallback", lvl)
		}
		if st.ProbeSkips != st.Blocks || st.RawFallbacks != st.Blocks {
			t.Fatalf("level %d: ProbeSkips=%d RawFallbacks=%d, want both %d", lvl, st.ProbeSkips, st.RawFallbacks, st.Blocks)
		}
		if stDis.ProbeSkips != 0 || stDis.RawFallbacks != stDis.Blocks {
			t.Fatalf("level %d disabled probe: ProbeSkips=%d RawFallbacks=%d/%d", lvl, stDis.ProbeSkips, stDis.RawFallbacks, stDis.Blocks)
		}
		// And the frames must still decode.
		out, err := io.ReadAll(mustReader(t, bytes.NewReader(skipped)))
		if err != nil || !bytes.Equal(out, src) {
			t.Fatalf("level %d: probe-skipped stream does not round-trip: %v", lvl, err)
		}
	}
}

// TestProbeSkipLedger: a skipped block's bytes never cross a user-space
// copy on the direct-ingest path (passthrough, not copied), and the skip is
// visible in both the Stats and the obs counters. Staged bytes (Write) keep
// their one staging copy but still avoid the codec copy. The parallel
// pipeline must account identically to the serial path.
func TestProbeSkipLedger(t *testing.T) {
	blocktest.Track(t)
	src := incompressible(256<<10, 23) // exactly two default blocks

	for _, tc := range []struct {
		name             string
		parallelism      int
		direct           bool
		copied, passthru int64
	}{
		{"serial-direct", 0, true, 0, int64(len(src))},
		{"serial-staged", 0, false, int64(len(src)), 0},
		{"pipeline-direct", 4, true, 0, int64(len(src))},
		{"pipeline-staged", 4, false, int64(len(src)), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			scope := reg.Scope("test").Scope("stream").Scope("writer")
			cfg := WriterConfig{Static: true, StaticLevel: LevelLight, Parallelism: tc.parallelism, Obs: scope}
			_, st := encodeProbe(t, cfg, src, tc.direct)
			if st.Blocks != 2 || st.ProbeSkips != 2 {
				t.Fatalf("Blocks=%d ProbeSkips=%d, want 2/2", st.Blocks, st.ProbeSkips)
			}
			if st.CopiedBytes != tc.copied {
				t.Errorf("CopiedBytes = %d, want %d", st.CopiedBytes, tc.copied)
			}
			if st.PassthroughBytes != tc.passthru {
				t.Errorf("PassthroughBytes = %d, want %d", st.PassthroughBytes, tc.passthru)
			}
			if v := scope.Counter("probe_skips").Value(); v != 2 {
				t.Errorf("probe_skips counter = %d, want 2", v)
			}
			if v := scope.Counter("copied_bytes").Value(); v != tc.copied {
				t.Errorf("copied_bytes counter = %d, want %d", v, tc.copied)
			}
			if v := scope.Counter("passthrough_bytes").Value(); v != tc.passthru {
				t.Errorf("passthrough_bytes counter = %d, want %d", v, tc.passthru)
			}
		})
	}
}

// TestProbeKeepsCompressibleBlocks: the probe must never divert blocks the
// codecs can shrink — including the JPEG-like Low corpus, whose high
// sampled entropy is rescued by the match probe — so compression ratios are
// untouched on real workloads.
func TestProbeKeepsCompressibleBlocks(t *testing.T) {
	for _, kind := range corpus.Kinds() {
		src := corpus.Generate(kind, 256<<10, 7)
		wire, st := encodeProbe(t, WriterConfig{Static: true, StaticLevel: LevelLight}, src, true)
		if st.ProbeSkips != 0 {
			t.Errorf("%s: %d of %d blocks probe-skipped", kind, st.ProbeSkips, st.Blocks)
		}
		out, err := io.ReadAll(mustReader(t, bytes.NewReader(wire)))
		if err != nil || !bytes.Equal(out, src) {
			t.Fatalf("%s: round trip failed: %v", kind, err)
		}
	}
}
