package stream

import (
	"io"
	"runtime"
)

// ParallelWriter compresses a frame stream on a worker pool while keeping
// the wire strictly ordered — the send-side counterpart of ParallelReader,
// and the public face of WriterConfig.Parallelism. Each 128 KB block (one
// arena buffer, handed to the pool whole, zero copy) is compressed by one
// worker; an order-preserving flusher recombines the finished frames so the
// wire bytes are identical to what a serial Writer with the same
// configuration would produce — the determinism suite pins serial and
// parallel output byte-for-byte at every ladder level.
//
// A ParallelWriter must be Closed (which flushes and stops the pool); it is
// not safe for concurrent use, exactly like Writer.
type ParallelWriter struct {
	*Writer
	workers int
}

// NewParallelWriter creates a parallel compression writer in front of dst
// with the given worker count; workers < 1 means GOMAXPROCS. cfg.Parallelism
// is overridden by workers. A single worker degrades to the serial encode
// path (same wire bytes either way).
func NewParallelWriter(dst io.Writer, cfg WriterConfig, workers int) (*ParallelWriter, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg.Parallelism = workers
	w, err := NewWriter(dst, cfg)
	if err != nil {
		return nil, err
	}
	return &ParallelWriter{Writer: w, workers: workers}, nil
}

// Workers returns the size of the compression worker pool.
func (w *ParallelWriter) Workers() int { return w.workers }

// Counters returns application bytes accepted, wire bytes written and
// frames cut so far — the mirror of ParallelReader.Counters. Frames still
// in flight in the pipeline are not yet counted; Flush first for exact
// totals.
func (w *ParallelWriter) Counters() (appBytes, wireBytes, blocks int64) {
	st := w.Stats()
	return st.AppBytes, st.WireBytes, st.Blocks
}
