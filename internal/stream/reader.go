package stream

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"adaptio/internal/block"
	"adaptio/internal/compress"
)

// errReaderClosed is the sticky error installed by Close on a reader
// abandoned before end of stream.
var errReaderClosed = errors.New("stream: reader closed")

// Reader decompresses a stream of frames produced by Writer. It is
// completely stateless across blocks — every frame carries its codec ID —
// so it needs no knowledge of the sender's ladder or decision model, exactly
// as the paper requires for transparent mid-stream level switches.
//
// Corrupt-frame policy (see docs/robustness.md): a Reader fails fast. The
// first frame that is truncated, has a damaged header, an unknown codec, a
// payload that does not decompress, or a CRC mismatch makes Read return a
// *FrameError carrying the frame index and wire byte offset and wrapping
// ErrBadFrame; the error is sticky and every later Read returns it again.
// No bytes from the bad frame are ever delivered (CRC is verified before
// delivery), allocation is bounded by MaxBlockSize however hostile the
// header, and a Reader never panics on any input.
//
// Buffer lifecycle (see internal/block and docs/performance.md): the block
// and payload buffers come from the block arena and are recycled
// automatically when the stream ends — clean EOF or any sticky error
// releases them. A Reader abandoned before end of stream should be Closed
// to return its buffers to the arena; failing to do so is not a memory
// leak (the GC reclaims them), it just bypasses the pool.
//
// Reader is not safe for concurrent use.
type Reader struct {
	src     io.Reader
	hdr     [headerSize]byte // header scratch, reused every frame
	arena   *block.Buf       // backing for block
	payload *block.Buf       // frame payload scratch
	blk     []byte           // decompressed bytes not yet delivered
	off     int
	err     error // sticky error (including io.EOF)

	// RawBytes and WireBytes count decompressed and on-the-wire bytes
	// delivered so far.
	rawBytes  int64
	wireBytes int64
	blocks    int64
	// copiedBytes / passthroughBytes split rawBytes by user-space copy
	// cost: bytes run through a codec transform into the arena vs
	// identity-frame bytes streamed from the payload buffer straight to
	// a WriteTo destination (see CopyCounters).
	copiedBytes      int64
	passthroughBytes int64
}

// NewReader creates a Reader over src.
func NewReader(src io.Reader) (*Reader, error) {
	if src == nil {
		return nil, errors.New("stream: nil source reader")
	}
	return &Reader{src: src}, nil
}

// Read implements io.Reader, delivering the original application bytes.
func (r *Reader) Read(p []byte) (int, error) {
	for r.off == len(r.blk) {
		if r.err != nil {
			return 0, r.err
		}
		if _, err := r.fill(nil); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.blk[r.off:])
	r.off += n
	return n, nil
}

// Close releases the reader's pooled buffers back to the arena and makes
// further Reads fail. It never fails and is safe to call multiple times,
// also after EOF (buffers are already recycled by then). Close does not
// close the underlying source.
func (r *Reader) Close() error {
	r.releaseBufs()
	if r.err == nil {
		r.err = errReaderClosed
	}
	return nil
}

// releaseBufs returns the pooled buffers to the arena. Called exactly once
// per buffer: either when the stream terminates (EOF or sticky error) or
// from Close.
func (r *Reader) releaseBufs() {
	if r.arena != nil {
		r.arena.Release()
		r.arena = nil
	}
	if r.payload != nil {
		r.payload.Release()
		r.payload = nil
	}
	r.blk = nil
	r.off = 0
}

// fill reads the next frame. Without a direct destination (direct == nil)
// the frame is decoded into r.blk for delivery by Read. With one, identity
// (stored-raw) frames take a zero-copy detour: the payload IS the raw block,
// so after the CRC verifies it is streamed from the payload buffer straight
// to direct — no decode copy into the arena — and fill reports the bytes
// delivered that way. Non-identity frames decode into r.blk as usual.
//
// On any terminal condition (clean EOF or framing error) the pooled buffers
// go back to the arena before the error is returned; fill is only called
// when the previous block has been fully delivered, so no live bytes are
// recycled. The CRC is verified before any byte is delivered on both paths.
func (r *Reader) fill(direct io.Writer) (int, error) {
	h, err := readFrameHeader(r.src, &r.hdr)
	if err != nil {
		r.releaseBufs()
		if err == io.EOF {
			return 0, err
		}
		// r.wireBytes counts the wire bytes of frames decoded so far,
		// which is exactly the offset of the frame that just failed.
		return 0, &FrameError{Frame: r.blocks, Offset: r.wireBytes, Err: err}
	}
	if r.payload == nil {
		r.payload = block.Get(h.compLen)
	} else if r.payload.Cap() < h.compLen {
		r.payload.Release()
		r.payload = block.Get(h.compLen)
	}
	payload := r.payload.B[:h.compLen]
	if _, err := io.ReadFull(r.src, payload); err != nil {
		r.releaseBufs()
		err = fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
		return 0, &FrameError{Frame: r.blocks, Offset: r.wireBytes, Err: err}
	}
	if direct != nil && h.codecID == compress.IDNone && h.rawLen == h.compLen {
		if got := crc32.Checksum(payload, crcTable); got != h.crc {
			r.releaseBufs()
			err := fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrBadFrame, got, h.crc)
			return 0, &FrameError{Frame: r.blocks, Offset: r.wireBytes, Err: err}
		}
		if err := writeFull(direct, payload); err != nil {
			// The frame is consumed: a retry cannot recover the lost
			// bytes, so the write error is terminal for the stream.
			r.releaseBufs()
			return 0, err
		}
		r.rawBytes += int64(h.rawLen)
		r.wireBytes += int64(headerSize + h.compLen)
		r.blocks++
		r.passthroughBytes += int64(h.rawLen)
		return h.rawLen, nil
	}
	if r.arena == nil {
		r.arena = block.Get(h.rawLen)
	} else if r.arena.Cap() < h.rawLen {
		r.arena.Release()
		r.arena = block.Get(h.rawLen)
	}
	dst, err := decodeFramePayload(r.arena.B[:0], h, payload)
	r.arena.B = dst // keep any growth with the pooled buffer
	if err != nil {
		r.releaseBufs()
		return 0, &FrameError{Frame: r.blocks, Offset: r.wireBytes, Err: err}
	}
	r.blk = dst
	r.off = 0
	r.rawBytes += int64(h.rawLen)
	r.wireBytes += int64(headerSize + h.compLen)
	r.blocks++
	r.copiedBytes += int64(h.rawLen)
	return 0, nil
}

// Counters returns the number of application bytes delivered, wire bytes
// consumed and frames decoded so far.
func (r *Reader) Counters() (rawBytes, wireBytes, blocks int64) {
	return r.rawBytes, r.wireBytes, r.blocks
}

// CopyCounters splits the delivered raw bytes by user-space copy cost:
// copied bytes went through a codec transform into the arena, passthrough
// bytes were identity-frame payloads streamed straight to a WriteTo
// destination after CRC verification (the relay's zero-copy decompress
// path, docs/performance.md).
func (r *Reader) CopyCounters() (copied, passthrough int64) {
	return r.copiedBytes, r.passthroughBytes
}

// WriteTo implements io.WriterTo, streaming all remaining blocks to w. This
// is the efficient path for relays and sinks: non-identity blocks are
// forwarded from the arena without the caller's copy loop, and identity
// (stored-raw) frames skip the arena entirely — their payload is written to
// w straight from the frame buffer once the CRC verifies.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for {
		if r.off < len(r.blk) {
			n, err := w.Write(r.blk[r.off:])
			total += int64(n)
			r.off += n
			if err != nil {
				return total, err
			}
		}
		if r.err != nil {
			if r.err == io.EOF {
				return total, nil
			}
			return total, r.err
		}
		n, err := r.fill(w)
		total += int64(n)
		if err != nil {
			r.err = err
			if err == io.EOF {
				return total, nil
			}
			return total, err
		}
	}
}
