package stream

import (
	"errors"
	"io"
)

// Reader decompresses a stream of frames produced by Writer. It is
// completely stateless across blocks — every frame carries its codec ID —
// so it needs no knowledge of the sender's ladder or decision model, exactly
// as the paper requires for transparent mid-stream level switches.
//
// Corrupt-frame policy (see docs/robustness.md): a Reader fails fast. The
// first frame that is truncated, has a damaged header, an unknown codec, a
// payload that does not decompress, or a CRC mismatch makes Read return a
// *FrameError carrying the frame index and wire byte offset and wrapping
// ErrBadFrame; the error is sticky and every later Read returns it again.
// No bytes from the bad frame are ever delivered (CRC is verified before
// delivery), allocation is bounded by MaxBlockSize however hostile the
// header, and a Reader never panics on any input.
//
// Reader is not safe for concurrent use.
type Reader struct {
	src     io.Reader
	block   []byte // decompressed bytes not yet delivered
	off     int
	payload []byte // frame payload scratch
	err     error  // sticky error (including io.EOF)

	// RawBytes and WireBytes count decompressed and on-the-wire bytes
	// delivered so far.
	rawBytes  int64
	wireBytes int64
	blocks    int64
}

// NewReader creates a Reader over src.
func NewReader(src io.Reader) (*Reader, error) {
	if src == nil {
		return nil, errors.New("stream: nil source reader")
	}
	return &Reader{src: src}, nil
}

// Read implements io.Reader, delivering the original application bytes.
func (r *Reader) Read(p []byte) (int, error) {
	for r.off == len(r.block) {
		if r.err != nil {
			return 0, r.err
		}
		if err := r.fill(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.block[r.off:])
	r.off += n
	return n, nil
}

// fill reads the next frame into r.block.
func (r *Reader) fill() error {
	block, scratch, rawLen, err := readFrame(r.src, r.block[:0], r.payload)
	r.payload = scratch
	if err != nil {
		if err == io.EOF {
			return err
		}
		// r.wireBytes counts the wire bytes of frames decoded so far,
		// which is exactly the offset of the frame that just failed.
		return &FrameError{Frame: r.blocks, Offset: r.wireBytes, Err: err}
	}
	r.block = block
	r.off = 0
	r.rawBytes += int64(rawLen)
	r.wireBytes += int64(headerSize + len(scratch))
	r.blocks++
	return nil
}

// Counters returns the number of application bytes delivered, wire bytes
// consumed and frames decoded so far.
func (r *Reader) Counters() (rawBytes, wireBytes, blocks int64) {
	return r.rawBytes, r.wireBytes, r.blocks
}

// WriteTo implements io.WriterTo, streaming all remaining blocks to w. This
// is the efficient path for relays and sinks: blocks are forwarded without
// the caller's copy loop.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for {
		if r.off < len(r.block) {
			n, err := w.Write(r.block[r.off:])
			total += int64(n)
			r.off += n
			if err != nil {
				return total, err
			}
		}
		if r.err != nil {
			if r.err == io.EOF {
				return total, nil
			}
			return total, r.err
		}
		if err := r.fill(); err != nil {
			r.err = err
			if err == io.EOF {
				return total, nil
			}
			return total, err
		}
	}
}
