package stream

import (
	"adaptio/internal/compress"
	"adaptio/internal/compress/flatecodec"
	"adaptio/internal/compress/lzfast"
	"adaptio/internal/compress/lzheavy"
)

func init() {
	// Make the default codecs resolvable by ID on the receive path.
	compress.Register(lzfast.Fast{})
	compress.Register(lzfast.HC{})
	compress.Register(lzheavy.Codec{})
	compress.Register(flatecodec.Codec{})
}

// Paper level indices for DefaultLadder (Section III-B).
const (
	LevelNo     = 0 // no compression
	LevelLight  = 1 // QuickLZ, best compression speed (our lzfast)
	LevelMedium = 2 // QuickLZ favouring compressed size (our lzfast-hc)
	LevelHeavy  = 3 // LZMA (our lzheavy)
)

// DefaultLadder returns the paper's four-level ladder: NO, LIGHT (QuickLZ
// fast — here lzfast), MEDIUM (QuickLZ better ratio — here lzfast-hc) and
// HEAVY (LZMA — here lzheavy), ordered by time/compression ratio.
func DefaultLadder() compress.Ladder {
	return compress.Ladder{
		{Name: "NO", Codec: compress.None()},
		{Name: "LIGHT", Codec: lzfast.Fast{}},
		{Name: "MEDIUM", Codec: lzfast.HC{}},
		{Name: "HEAVY", Codec: lzheavy.Codec{}},
	}
}

// ExtendedLadder returns a six-level ladder exercising the paper's remark
// that "it is conceivable to use the same compression algorithm at multiple
// levels but with different parameters": lzfast-hc appears at two search
// depths and DEFLATE sits between them and the range coder. The decision
// model needs no change for the larger ladder — dominated levels are simply
// probed and abandoned.
func ExtendedLadder() compress.Ladder {
	return compress.Ladder{
		{Name: "NO", Codec: compress.None()},
		{Name: "LIGHT", Codec: lzfast.Fast{}},
		{Name: "MEDIUM-", Codec: lzfast.HC{Depth: 16}},
		{Name: "MEDIUM+", Codec: lzfast.HC{Depth: 256}},
		{Name: "FLATE", Codec: flatecodec.Codec{Level: 6}},
		{Name: "HEAVY", Codec: lzheavy.Codec{}},
	}
}
