package stream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/compress"
	"adaptio/internal/corpus"
	"adaptio/internal/vclock"
)

func mustWriter(t *testing.T, dst io.Writer, cfg WriterConfig) *Writer {
	t.Helper()
	w, err := NewWriter(dst, cfg)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	return w
}

func mustReader(t *testing.T, src io.Reader) *Reader {
	t.Helper()
	r, err := NewReader(src)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(nil, WriterConfig{}); err == nil {
		t.Error("nil destination accepted")
	}
	if _, err := NewWriter(&buf, WriterConfig{BlockSize: -1}); err == nil {
		t.Error("negative block size accepted")
	}
	if _, err := NewWriter(&buf, WriterConfig{BlockSize: MaxBlockSize + 1}); err == nil {
		t.Error("oversized block size accepted")
	}
	if _, err := NewWriter(&buf, WriterConfig{Window: -time.Second}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewWriter(&buf, WriterConfig{Static: true, StaticLevel: 99}); err == nil {
		t.Error("out-of-ladder static level accepted")
	}
	if _, err := NewWriter(&buf, WriterConfig{Ladder: compress.Ladder{}}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewReader(nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestStaticRoundTripAllLevels(t *testing.T) {
	blocktest.Track(t) // every arena buffer must be back by test end
	for lvl := 0; lvl < 4; lvl++ {
		for _, kind := range corpus.Kinds() {
			src := corpus.Generate(kind, 300<<10, 5) // spans multiple blocks
			var wire bytes.Buffer
			w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: lvl})
			if _, err := w.Write(src); err != nil {
				t.Fatalf("level %d %s: write: %v", lvl, kind, err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("level %d %s: close: %v", lvl, kind, err)
			}
			out, err := io.ReadAll(mustReader(t, &wire))
			if err != nil {
				t.Fatalf("level %d %s: read: %v", lvl, kind, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("level %d %s: round trip mismatch", lvl, kind)
			}
		}
	}
}

func TestCompressionActuallyShrinksWire(t *testing.T) {
	src := corpus.Generate(corpus.High, 512<<10, 1)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: LevelLight})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if wire.Len() >= len(src)/2 {
		t.Fatalf("LIGHT on HIGH data: wire %d bytes for %d raw", wire.Len(), len(src))
	}
	stats := w.Stats()
	if stats.AppBytes != int64(len(src)) {
		t.Fatalf("AppBytes = %d, want %d", stats.AppBytes, len(src))
	}
	if stats.WireBytes != int64(wire.Len()) {
		t.Fatalf("WireBytes = %d, wire buffer has %d", stats.WireBytes, wire.Len())
	}
}

func TestRawFallbackOnIncompressibleBlocks(t *testing.T) {
	// Random data expands under LZ; the writer must store such blocks raw
	// so a frame never grows by more than the header.
	rnd := rand.New(rand.NewSource(3))
	src := make([]byte, 256<<10)
	rnd.Read(src)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: LevelLight})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats := w.Stats()
	if stats.RawFallbacks != stats.Blocks {
		t.Fatalf("expected all %d blocks to fall back to raw, got %d", stats.Blocks, stats.RawFallbacks)
	}
	maxWire := len(src) + int(stats.Blocks)*headerSize
	if wire.Len() > maxWire {
		t.Fatalf("wire %d exceeds raw+headers bound %d", wire.Len(), maxWire)
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("round trip after fallback failed: %v", err)
	}
}

func TestPartialBlockFlush(t *testing.T) {
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: 0})
	if _, err := w.Write([]byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if wire.Len() != 0 {
		t.Fatal("partial block written without Flush")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if wire.Len() == 0 {
		t.Fatal("Flush did not emit the partial block")
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil || string(out) != "tiny" {
		t.Fatalf("round trip: %q, %v", out, err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.n <= 0 {
		return 0, errors.New("disk full")
	}
	e.n -= len(p)
	return len(p), nil
}

func TestUnderlyingErrorSticky(t *testing.T) {
	w := mustWriter(t, &errWriter{n: 20}, WriterConfig{Static: true, StaticLevel: 0, BlockSize: 64})
	data := bytes.Repeat([]byte("y"), 64)
	var sawErr error
	for i := 0; i < 10 && sawErr == nil; i++ {
		_, sawErr = w.Write(data)
	}
	if sawErr == nil {
		t.Fatal("underlying error never surfaced")
	}
	if _, err := w.Write(data); err == nil {
		t.Fatal("error not sticky")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("Flush ignored sticky error")
	}
}

func TestAdaptiveLevelSwitchesMidStreamDecodable(t *testing.T) {
	// Drive the writer with a manual clock so every block boundary closes
	// a decision window, forcing frequent probing across levels; the
	// reader must decode the mixed-level stream transparently.
	clk := vclock.NewManual()
	src := corpus.Generate(corpus.Moderate, 1<<20, 9)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Clock: clk, Window: time.Second, BlockSize: 32 << 10})
	for off := 0; off < len(src); off += 8 << 10 {
		end := off + 8<<10
		if end > len(src) {
			end = len(src)
		}
		if _, err := w.Write(src[off:end]); err != nil {
			t.Fatal(err)
		}
		clk.Advance(600 * time.Millisecond)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	stats := w.Stats()
	if stats.LevelSwitches == 0 {
		t.Fatal("no level switches happened; test is not exercising adaptation")
	}
	used := 0
	for _, n := range stats.BlocksPerLevel {
		if n > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d distinct levels used", used)
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("mixed-level stream round trip mismatch")
	}
}

func TestOnWindowCallback(t *testing.T) {
	clk := vclock.NewManual()
	var windows []WindowStat
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{
		Clock:    clk,
		Window:   time.Second,
		OnWindow: func(ws WindowStat) { windows = append(windows, ws) },
	})
	data := make([]byte, 1000)
	for i := 0; i < 5; i++ {
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
		if _, err := w.Write(data); err != nil { // triggers window close
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(windows) < 5 {
		t.Fatalf("got %d windows, want >= 5", len(windows))
	}
	for _, ws := range windows[:5] {
		if ws.Elapsed < time.Second {
			t.Fatalf("window elapsed %v < configured t", ws.Elapsed)
		}
		if ws.Rate <= 0 {
			t.Fatalf("non-positive rate %v with data flowing", ws.Rate)
		}
	}
}

func TestStaticModeNeverSwitches(t *testing.T) {
	clk := vclock.NewManual()
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: LevelMedium, Clock: clk, Window: time.Second})
	data := corpus.Generate(corpus.Moderate, 64<<10, 2)
	for i := 0; i < 20; i++ {
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		clk.Advance(2 * time.Second)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().LevelSwitches != 0 {
		t.Fatal("static writer switched levels")
	}
	if w.Level() != LevelMedium {
		t.Fatalf("static level drifted to %d", w.Level())
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	src := corpus.Generate(corpus.Moderate, 64<<10, 4)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: LevelLight})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good := wire.Bytes()

	corruptAt := func(i int) error {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xA5
		_, err := io.ReadAll(&readerNoPanic{t: t, r: mustReader(t, bytes.NewReader(bad))})
		return err
	}
	// Corrupt a payload byte deep in the stream: CRC or codec must catch it.
	if err := corruptAt(len(good) / 2); err == nil {
		t.Fatal("payload corruption not detected")
	}
	// Corrupt the magic.
	if err := corruptAt(0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("magic corruption: got %v", err)
	}
}

// readerNoPanic wraps a Reader and converts panics into test failures.
type readerNoPanic struct {
	t *testing.T
	r io.Reader
}

func (rp *readerNoPanic) Read(p []byte) (n int, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			rp.t.Fatalf("reader panicked: %v", rec)
		}
	}()
	return rp.r.Read(p)
}

func TestReaderDetectsTruncation(t *testing.T) {
	src := corpus.Generate(corpus.Moderate, 64<<10, 4)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: LevelLight})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good := wire.Bytes()
	for _, cut := range []int{1, headerSize - 1, headerSize + 5, len(good) - 1} {
		r := mustReader(t, bytes.NewReader(good[:cut]))
		if _, err := io.ReadAll(r); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestReaderUnknownCodec(t *testing.T) {
	var hdr [headerSize]byte
	putHeader(hdr[:], header{codecID: 200, rawLen: 4, compLen: 4})
	data := append(hdr[:], 1, 2, 3, 4)
	r := mustReader(t, bytes.NewReader(data))
	if _, err := io.ReadAll(r); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestReaderRejectsOversizedHeader(t *testing.T) {
	var hdr [headerSize]byte
	putHeader(hdr[:], header{codecID: 0, rawLen: MaxBlockSize + 1, compLen: 16})
	r := mustReader(t, bytes.NewReader(hdr[:]))
	if _, err := io.ReadAll(r); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized rawLen: got %v", err)
	}
}

func TestReaderEmptyStream(t *testing.T) {
	r := mustReader(t, bytes.NewReader(nil))
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty stream produced %d bytes", len(out))
	}
}

func TestReaderWriteTo(t *testing.T) {
	src := corpus.Generate(corpus.High, 300<<10, 6)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: LevelLight})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := mustReader(t, &wire)
	var sink bytes.Buffer
	n, err := r.WriteTo(&sink)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(len(src)) || !bytes.Equal(sink.Bytes(), src) {
		t.Fatalf("WriteTo copied %d bytes, want %d", n, len(src))
	}
	raw, wireBytes, blocks := r.Counters()
	if raw != int64(len(src)) || blocks == 0 || wireBytes == 0 {
		t.Fatalf("counters: raw=%d wire=%d blocks=%d", raw, wireBytes, blocks)
	}
}

// TestQuickRoundTripArbitraryChunking is the stream-level identity property:
// any data written in any chunking pattern and read in any chunking pattern
// survives unchanged.
func TestQuickRoundTripArbitraryChunking(t *testing.T) {
	prop := func(seed int64, blockExp uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		blockSize := 1 << (uint(blockExp)%8 + 6) // 64 B .. 8 KB
		size := rnd.Intn(100_000)
		src := corpus.Generate(corpus.Kind(rnd.Intn(3)), size, uint64(seed))
		var wire bytes.Buffer
		w, err := NewWriter(&wire, WriterConfig{BlockSize: blockSize, Clock: vclock.NewManual()})
		if err != nil {
			return false
		}
		for off := 0; off < len(src); {
			n := 1 + rnd.Intn(10_000)
			if off+n > len(src) {
				n = len(src) - off
			}
			if _, err := w.Write(src[off : off+n]); err != nil {
				return false
			}
			off += n
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewReader(&wire)
		if err != nil {
			return false
		}
		var out []byte
		buf := make([]byte, 1+rnd.Intn(5000))
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
		}
		return bytes.Equal(out, src)
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedLadderRoundTrip(t *testing.T) {
	ladder := ExtendedLadder()
	if err := ladder.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ladder) != 6 {
		t.Fatalf("extended ladder has %d levels", len(ladder))
	}
	src := corpus.Generate(corpus.Moderate, 400<<10, 8)
	// Every static level round trips, including the parameterized
	// duplicates sharing a wire codec ID.
	for lvl := range ladder {
		var wire bytes.Buffer
		w := mustWriter(t, &wire, WriterConfig{Ladder: ladder, Static: true, StaticLevel: lvl})
		if _, err := w.Write(src); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(mustReader(t, &wire))
		if err != nil || !bytes.Equal(out, src) {
			t.Fatalf("level %d (%s): round trip failed: %v", lvl, ladder[lvl].Name, err)
		}
	}
	// Deeper search compresses better at the same wire ID.
	compress16 := ladder[2].Codec.Compress(nil, src[:128<<10])
	compress256 := ladder[3].Codec.Compress(nil, src[:128<<10])
	if len(compress256) >= len(compress16) {
		t.Fatalf("MEDIUM+ (%d) should out-compress MEDIUM- (%d)", len(compress256), len(compress16))
	}
}

func TestExtendedLadderAdaptive(t *testing.T) {
	// The decision model drives the six-level ladder without any change;
	// a mixed-level stream decodes transparently.
	clk := vclock.NewManual()
	src := corpus.Generate(corpus.High, 1<<20, 4)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Ladder: ExtendedLadder(), Clock: clk, Window: time.Second, BlockSize: 32 << 10})
	for off := 0; off < len(src); off += 16 << 10 {
		if _, err := w.Write(src[off : off+16<<10]); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().LevelSwitches == 0 {
		t.Fatal("no probing across the extended ladder")
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("extended adaptive round trip failed: %v", err)
	}
}

// TestStatsAccountingProperty: whatever is written in whatever chunking,
// AppBytes equals the bytes accepted, WireBytes equals what reached the
// destination, and per-level block counts sum to Blocks.
func TestStatsAccountingProperty(t *testing.T) {
	prop := func(seed int64, kindSel uint8, n uint32) bool {
		rnd := rand.New(rand.NewSource(seed))
		size := int(n % 300_000)
		src := corpus.Generate(corpus.Kind(int(kindSel)%3), size, uint64(seed))
		var wire bytes.Buffer
		w, err := NewWriter(&wire, WriterConfig{Clock: vclock.NewManual(), BlockSize: 8 << 10})
		if err != nil {
			return false
		}
		for off := 0; off < len(src); {
			c := 1 + rnd.Intn(30_000)
			if off+c > len(src) {
				c = len(src) - off
			}
			if _, err := w.Write(src[off : off+c]); err != nil {
				return false
			}
			off += c
		}
		if err := w.Close(); err != nil {
			return false
		}
		st := w.Stats()
		if st.AppBytes != int64(size) {
			return false
		}
		if st.WireBytes != int64(wire.Len()) {
			return false
		}
		var perLevel int64
		for _, b := range st.BlocksPerLevel {
			perLevel += b
		}
		return perLevel == st.Blocks
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultLadderMatchesPaper(t *testing.T) {
	l := DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{"NO", "LIGHT", "MEDIUM", "HEAVY"}
	got := l.Names()
	if len(got) != len(want) {
		t.Fatalf("ladder has %d levels, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("level %d named %q, want %q", i, got[i], want[i])
		}
	}
}

func BenchmarkWriterPerLevelPerKind(b *testing.B) {
	for lvl := 0; lvl < 4; lvl++ {
		for _, kind := range corpus.Kinds() {
			name := DefaultLadder()[lvl].Name + "/" + kind.String()
			b.Run(name, func(b *testing.B) {
				src := corpus.Generate(kind, 1<<20, 1)
				b.SetBytes(int64(len(src)))
				for i := 0; i < b.N; i++ {
					var wire countingDiscard
					w, _ := NewWriter(&wire, WriterConfig{Static: true, StaticLevel: lvl})
					if _, err := w.Write(src); err != nil {
						b.Fatal(err)
					}
					if err := w.Close(); err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(float64(wire.n)/float64(len(src)), "ratio")
					}
				}
			})
		}
	}
}

type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func BenchmarkWriterStaticLight(b *testing.B) {
	src := corpus.Generate(corpus.Moderate, 1<<20, 1)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, _ := NewWriter(io.Discard, WriterConfig{Static: true, StaticLevel: LevelLight})
		if _, err := w.Write(src); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriterAdaptive(b *testing.B) {
	src := corpus.Generate(corpus.Moderate, 1<<20, 1)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, _ := NewWriter(io.Discard, WriterConfig{})
		if _, err := w.Write(src); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReader(b *testing.B) {
	src := corpus.Generate(corpus.Moderate, 1<<20, 1)
	var wire bytes.Buffer
	w, _ := NewWriter(&wire, WriterConfig{Static: true, StaticLevel: LevelLight})
	if _, err := w.Write(src); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	data := wire.Bytes()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(bytes.NewReader(data))
		if _, err := io.Copy(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}
