package stream

import (
	"bytes"
	"io"
	"runtime"
	"testing"
	"time"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/corpus"
	"adaptio/internal/faultio/leakcheck"
	"adaptio/internal/vclock"
)

func TestParallelRoundTripAllKinds(t *testing.T) {
	leakcheck.Check(t)
	blocktest.Track(t) // pipeline workers and flusher must release every buffer
	for _, workers := range []int{2, 4, 8} {
		for _, kind := range corpus.Kinds() {
			src := corpus.Generate(kind, 600<<10, 3)
			var wire bytes.Buffer
			w := mustWriter(t, &wire, WriterConfig{
				Static: true, StaticLevel: LevelLight,
				Parallelism: workers, BlockSize: 16 << 10,
			})
			if _, err := w.Write(src); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			st := w.Stats()
			if st.AppBytes != int64(len(src)) || st.WireBytes != int64(wire.Len()) {
				t.Fatalf("workers=%d %v: stats app=%d wire=%d buf=%d",
					workers, kind, st.AppBytes, st.WireBytes, wire.Len())
			}
			out, err := io.ReadAll(mustReader(t, &wire))
			if err != nil || !bytes.Equal(out, src) {
				t.Fatalf("workers=%d %v: round trip failed: %v", workers, kind, err)
			}
		}
	}
}

// TestParallelFramesStayOrdered: the frames must arrive in submission order
// even when later blocks compress much faster than earlier ones. Blocks of
// wildly different compressibility exercise the reorder buffer.
func TestParallelFramesStayOrdered(t *testing.T) {
	leakcheck.Check(t)
	var src []byte
	for i := 0; i < 64; i++ {
		var chunk []byte
		if i%2 == 0 {
			chunk = corpus.Generate(corpus.Low, 16<<10, uint64(i)) // slow to compress
		} else {
			chunk = make([]byte, 16<<10) // zeros: instant
		}
		src = append(src, chunk...)
	}
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{
		Static: true, StaticLevel: LevelHeavy, // heavy codec amplifies the skew
		Parallelism: runtime.NumCPU(), BlockSize: 16 << 10,
	})
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src) {
		t.Fatal("frame reordering corrupted the stream")
	}
}

func TestParallelAdaptive(t *testing.T) {
	leakcheck.Check(t)
	clk := vclock.NewManual()
	src := corpus.Generate(corpus.High, 1<<20, 5)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Parallelism: 4, Clock: clk, Window: time.Second, BlockSize: 32 << 10})
	for off := 0; off < len(src); off += 16 << 10 {
		if _, err := w.Write(src[off : off+16<<10]); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Stats().LevelSwitches == 0 {
		t.Fatal("no adaptation under the parallel pipeline")
	}
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("parallel adaptive round trip failed: %v", err)
	}
}

func TestParallelFlushWaitsForInFlight(t *testing.T) {
	leakcheck.Check(t)
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{Static: true, StaticLevel: LevelHeavy, Parallelism: 4, BlockSize: 8 << 10})
	src := corpus.Generate(corpus.Moderate, 256<<10, 2)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// After Flush every submitted byte must be on the wire and counted.
	st := w.Stats()
	if st.WireBytes != int64(wire.Len()) || st.AppBytes != int64(len(src)) {
		t.Fatalf("flush left frames in flight: wire stat %d vs buffer %d", st.WireBytes, wire.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelErrorPropagates(t *testing.T) {
	leakcheck.Check(t)
	w := mustWriter(t, &errWriter{n: 100}, WriterConfig{
		Static: true, StaticLevel: 0, Parallelism: 3, BlockSize: 4 << 10,
	})
	data := bytes.Repeat([]byte("z"), 4<<10)
	var sawErr error
	for i := 0; i < 200 && sawErr == nil; i++ {
		if _, err := w.Write(data); err != nil {
			sawErr = err
			break
		}
		sawErr = w.Flush()
	}
	if sawErr == nil {
		t.Fatal("downstream error never surfaced through the pipeline")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after pipeline error should fail")
	}
}

func TestParallelConfigValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, WriterConfig{Parallelism: -2}); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	// 0 and 1 are synchronous and valid.
	for _, p := range []int{0, 1} {
		w, err := NewWriter(&buf, WriterConfig{Parallelism: p})
		if err != nil {
			t.Fatalf("parallelism %d rejected: %v", p, err)
		}
		w.Close()
	}
}

// BenchmarkParallelHeavyCompression measures the worker-pool scaling of the
// HEAVY codec. The speedup is bounded by GOMAXPROCS: on a single-CPU
// machine all worker counts perform alike (the pool adds only ordering
// overhead); on an N-core sender expect near-linear scaling until the
// downstream writer saturates.
func BenchmarkParallelHeavyCompression(b *testing.B) {
	src := corpus.Generate(corpus.Moderate, 4<<20, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName(workers), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				w, _ := NewWriter(io.Discard, WriterConfig{
					Static: true, StaticLevel: LevelHeavy, Parallelism: workers,
				})
				if _, err := w.Write(src); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	return "workers-" + string(rune('0'+workers))
}
