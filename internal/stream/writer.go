package stream

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"adaptio/internal/block"
	"adaptio/internal/compress"
	"adaptio/internal/compress/probe"
	"adaptio/internal/core"
	"adaptio/internal/obs"
	"adaptio/internal/vclock"
)

// Adaptive is the sentinel for WriterConfig.StaticLevel meaning "let the
// decision model choose" (the paper's DYNAMIC mode).
const Adaptive = -1

// Scheme is an external level-selection policy plugged into a Writer via
// WriterConfig.Scheme, replacing the internal solo decision model. It is
// the stream layer's mirror of cloudsim.Scheme: the writer feeds it every
// completed decision window and adopts the returned level for the next.
// coord.Stream satisfies it (structurally — no import), which is how a
// tunnel stream joins the fleet-level compression coordinator.
type Scheme interface {
	// Observe consumes the application data rate (bytes/second) of the
	// completed window and returns the level for the next window.
	Observe(rate float64) int
	// Level returns the currently selected level; the writer starts at it.
	Level() int
}

// WindowScheme is a Scheme that additionally receives the completed
// window's byte totals at both layers, letting it estimate the achieved
// compression ratio. When the configured Scheme satisfies it, the writer
// calls ObserveWindowStats instead of Observe.
type WindowScheme interface {
	Scheme
	ObserveWindowStats(rate float64, appBytes, wireBytes int64) int
}

// WindowStat describes one completed decision window; it feeds the
// time-series traces of Figures 4–6.
type WindowStat struct {
	// Start and Elapsed delimit the window.
	Start   time.Time
	Elapsed time.Duration
	// AppBytes is the number of application (pre-compression) bytes
	// accepted during the window.
	AppBytes int64
	// WireBytes is the number of frame bytes (headers + payloads) passed
	// to the I/O layer during the window.
	WireBytes int64
	// Rate is AppBytes/Elapsed in bytes per second — the cdr fed to the
	// decision algorithm.
	Rate float64
	// Level is the level that was active during the window; NextLevel is
	// the decision for the following window.
	Level     int
	NextLevel int
}

// Stats aggregates writer activity.
type Stats struct {
	AppBytes      int64 // bytes accepted from the application
	WireBytes     int64 // bytes handed to the I/O layer (headers + payloads)
	Blocks        int64 // frames written
	LevelSwitches int64 // times the active level changed
	// BlocksPerLevel counts frames per ladder level index.
	BlocksPerLevel []int64
	// RawFallbacks counts blocks stored uncompressed despite a compressing
	// level: the codec failed to shrink them, or the entropy pre-probe sent
	// them straight to stored-raw framing. The probe-skipped subset is also
	// counted in ProbeSkips.
	RawFallbacks int64
	// ProbeSkips counts blocks the entropy pre-probe judged hopeless, which
	// therefore skipped the codec entirely (see WriterConfig.Probe). Wire
	// bytes are unchanged by a skip — the codec would have taken the same
	// stored-raw fallback — only the compression work is saved.
	ProbeSkips int64
	// CopiedBytes counts application bytes that crossed a user-space
	// buffer-to-buffer copy on their way to the wire: bytes staged into
	// the pending block by Write (ReadDirect fills the block in place and
	// stages nothing) plus every byte run through a codec transform.
	// Stored-raw bytes that arrived via ReadDirect ride the vectored
	// write aliasing the block and are never copied; those land in
	// PassthroughBytes instead. CopiedBytes/AppBytes is the relay's
	// bytes-copied-per-byte-relayed ratio (docs/performance.md).
	CopiedBytes int64
	// PassthroughBytes counts application bytes that reached the wire
	// without any user-space copy (stored-raw frames of unstaged bytes).
	PassthroughBytes int64
}

// WriterConfig parameterizes a Writer. The zero value gives the paper's
// configuration: the four-level default ladder, t = 2 s, α = 0.2, 128 KB
// blocks, adaptive (DYNAMIC) level selection, wall-clock time.
type WriterConfig struct {
	// Ladder is the ordered compression-level ladder. Nil means
	// DefaultLadder().
	Ladder compress.Ladder
	// Window is the reconsideration interval t. Zero means 2 s.
	Window time.Duration
	// Alpha is the decision model's tolerance band α. Zero means 0.2.
	Alpha float64
	// BlockSize caps the bytes buffered before a frame is cut. Zero means
	// 128 KB. Values above MaxBlockSize are invalid.
	BlockSize int
	// StaticLevel pins the compression level (the paper's NO/LIGHT/
	// MEDIUM/HEAVY static baselines). Adaptive (-1) and 0 both exist:
	// Adaptive engages the decision model, 0 pins "no compression".
	// NOTE: the zero value engages... see NewWriter: a zero StaticLevel
	// with Static==false means Adaptive.
	StaticLevel int
	// Static marks StaticLevel as intentional. Without this flag the
	// zero-valued config would pin level 0 rather than adapt.
	Static bool
	// Scheme, if non-nil, delegates level selection to an external policy
	// (e.g. a coord.Stream handle from the fleet coordinator) instead of
	// the writer's own solo decision model. Mutually exclusive with
	// Static. The writer starts at Scheme.Level() and clamps anything the
	// scheme returns to the ladder, so a misbehaving policy can degrade
	// compression choices but never crash the stream.
	Scheme Scheme
	// Decider, if non-nil, is the solo level-selection policy instance
	// the writer drives instead of constructing the default paper
	// decider (core.AlgorithmOne) — the seam the pluggable policies
	// (core.NewPolicy: "algone", "bandit", "ewma") plug into. The
	// instance must be dedicated to this writer (policies are not safe
	// for concurrent use) and must have been built for the ladder's
	// level count. Mutually exclusive with Static and Scheme; the
	// ablation knobs below are ignored when it is set (they parameterize
	// the default construction only). If the policy implements
	// core.RatioObserver, the writer feeds it each window's achieved
	// wire/app ratio before the rate observation.
	Decider core.Decider
	// Clock supplies time; nil means the wall clock.
	Clock vclock.Clock
	// OnWindow, if non-nil, is invoked after every completed decision
	// window (also in static mode, with NextLevel == Level).
	OnWindow func(WindowStat)
	// DisableBackoff, MaxBackoffExp and DisableRevert are forwarded to
	// the decision model (ablation knobs, see internal/core).
	DisableBackoff bool
	MaxBackoffExp  int
	DisableRevert  bool
	// Obs, if non-nil, is the observability scope the writer registers
	// its metrics under (conventionally "<component>.stream.writer"):
	// byte/block counters (total and per level), the window app-rate
	// histogram, and the controller decision event log. A nil scope
	// keeps the writer fully functional with unregistered metrics.
	Obs *obs.Scope
	// Parallelism compresses blocks on an order-preserving worker pool of
	// the given size; 0 and 1 mean synchronous compression. Frames stay
	// strictly ordered on the wire, so the receiver needs no changes.
	Parallelism int
	// Probe overrides the entropy pre-probe consulted before each block is
	// handed to a compressing level's codec: blocks it judges hopeless
	// (near-uniform byte distribution and no recurring 4-byte windows) go
	// straight to stored-raw framing, skipping the codec — and, on the
	// direct-ingest path, staying zero-copy all the way to the wire. Nil
	// means probe.Default(); set &probe.Disabled() to run every block
	// through the codec unconditionally. Skips are counted in
	// Stats.ProbeSkips and the probe_skips metric.
	Probe *probe.Config
}

// Writer intercepts an application byte stream, compresses it adaptively and
// forwards self-describing frames to the underlying writer. It is not safe
// for concurrent use.
type Writer struct {
	dst    io.Writer
	cfg    WriterConfig
	ladder compress.Ladder
	clock  vclock.Clock
	dec    core.Decider // nil in static/scheme mode
	probe  probe.Config // resolved from cfg.Probe at construction

	// bufArena backs buf; scratchArena backs scratch (serial mode only —
	// pipeline workers pool their own frame buffers). Both come from the
	// block arena and return to it in Close. In parallel mode bufArena is
	// handed off whole to the pipeline on every cut block (zero copy) and
	// a fresh arena buffer takes its place.
	bufArena     *block.Buf
	scratchArena *block.Buf
	buf          []byte    // pending application bytes, cap = BlockSize
	staged       int64     // bytes of buf that arrived via Write (copied in)
	scratch      []byte    // compression scratch
	pipe         *pipeline // non-nil when Parallelism > 1

	level       int
	windowStart time.Time
	winAppBytes int64

	// statsMu guards stats and winWireBytes: with a parallel pipeline the
	// flusher goroutine accounts frames concurrently with the caller.
	statsMu      sync.Mutex
	winWireBytes int64
	stats        Stats
	obs          writerObs

	closed bool
	err    error // sticky error
}

// NewWriter creates an adaptive compression writer in front of dst.
func NewWriter(dst io.Writer, cfg WriterConfig) (*Writer, error) {
	if dst == nil {
		return nil, errors.New("stream: nil destination writer")
	}
	if cfg.Ladder == nil {
		cfg.Ladder = DefaultLadder()
	}
	if err := cfg.Ladder.Validate(); err != nil {
		return nil, err
	}
	if cfg.Window == 0 {
		cfg.Window = time.Duration(core.DefaultWindowSeconds * float64(time.Second))
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("stream: negative window %v", cfg.Window)
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.BlockSize < 1 || cfg.BlockSize > MaxBlockSize {
		return nil, fmt.Errorf("stream: block size %d out of range [1, %d]", cfg.BlockSize, MaxBlockSize)
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("stream: negative parallelism %d", cfg.Parallelism)
	}

	w := &Writer{
		dst:    dst,
		cfg:    cfg,
		ladder: cfg.Ladder,
		clock:  cfg.Clock,
		probe:  probe.Default(),
	}
	if cfg.Probe != nil {
		w.probe = *cfg.Probe
	}
	w.stats.BlocksPerLevel = make([]int64, len(cfg.Ladder))
	w.obs = newWriterObs(cfg.Obs, cfg.Ladder)

	switch {
	case cfg.Static:
		if cfg.Scheme != nil {
			return nil, errors.New("stream: Static and Scheme are mutually exclusive")
		}
		if cfg.Decider != nil {
			return nil, errors.New("stream: Static and Decider are mutually exclusive")
		}
		if cfg.StaticLevel < 0 || cfg.StaticLevel >= len(cfg.Ladder) {
			return nil, fmt.Errorf("stream: static level %d outside ladder of %d levels", cfg.StaticLevel, len(cfg.Ladder))
		}
		w.level = cfg.StaticLevel
	case cfg.Scheme != nil:
		if cfg.Decider != nil {
			return nil, errors.New("stream: Scheme and Decider are mutually exclusive")
		}
		lvl := cfg.Scheme.Level()
		if lvl < 0 || lvl >= len(cfg.Ladder) {
			return nil, fmt.Errorf("stream: scheme starts at level %d outside ladder of %d levels", lvl, len(cfg.Ladder))
		}
		w.level = lvl
	case cfg.Decider != nil:
		lvl := cfg.Decider.Level()
		if lvl < 0 || lvl >= len(cfg.Ladder) {
			return nil, fmt.Errorf("stream: decider starts at level %d outside ladder of %d levels", lvl, len(cfg.Ladder))
		}
		w.dec = cfg.Decider
		w.level = lvl
	default:
		dec, err := core.NewDecider(core.Config{
			Levels:         len(cfg.Ladder),
			Alpha:          cfg.Alpha,
			DisableBackoff: cfg.DisableBackoff,
			MaxBackoffExp:  cfg.MaxBackoffExp,
			DisableRevert:  cfg.DisableRevert,
		})
		if err != nil {
			return nil, err
		}
		w.dec = dec
	}

	// All validation passed: acquire pooled buffers (released in Close).
	w.bufArena = block.Get(cfg.BlockSize)
	// Cap buf at exactly BlockSize (the arena class may be larger): the
	// write loop cuts a block when len(buf) reaches cap(buf).
	w.buf = w.bufArena.B[:0:cfg.BlockSize]
	if cfg.Parallelism > 1 {
		w.pipe = newPipeline(w.ladder, w.probe, w, cfg.Parallelism)
	} else {
		w.scratchArena = block.Get(maxFrameSize(cfg.BlockSize))
		w.scratch = w.scratchArena.B[:0]
	}
	w.windowStart = w.clock.Now()
	return w, nil
}

// writeEncodedFrame implements writeSink for the parallel pipeline: it
// pushes one finished frame downstream — vectored when the frame carries a
// stored-raw tail piece — and accounts it. The frame's buffers are owned
// (and released) by the pipeline's flusher.
func (w *Writer) writeEncodedFrame(f encodedFrame) error {
	wire := int64(len(f.frame.B))
	if f.tail == nil {
		if err := writeFull(w.dst, f.frame.B); err != nil {
			return err
		}
	} else {
		wire += int64(len(f.tail.B))
		if err := WriteVectored(w.dst, f.frame.B, f.tail.B); err != nil {
			return err
		}
	}
	// Same ledger split as the serial path: a codec transform copies every
	// raw byte once (on top of any staging copy by Write); a stored-raw
	// frame rides the vectored write aliasing the block, so its unstaged
	// bytes reach the wire copy-free.
	rawBytes := int64(f.rawLen)
	copied, passthrough := f.staged, int64(0)
	if f.codecID != compress.IDNone {
		copied += rawBytes
	} else {
		passthrough = rawBytes - f.staged
	}
	w.statsMu.Lock()
	w.accountFrame(wire, rawBytes, copied, passthrough, f.level, f.codecID, f.skipped)
	w.statsMu.Unlock()
	return nil
}

// accountFrame updates the frame counters; callers hold statsMu. copied and
// passthrough split the frame's raw bytes by user-space copy cost: copied
// counts buffer-to-buffer memcpys (staging by Write, codec transforms,
// contiguous pipeline assembly), passthrough counts bytes that reached the
// wire aliased straight out of the block with no user-space copy.
func (w *Writer) accountFrame(wireBytes, rawBytes, copied, passthrough int64, level int, codecID uint8, skipped bool) {
	w.stats.WireBytes += wireBytes
	w.winWireBytes += wireBytes
	w.stats.Blocks++
	w.stats.BlocksPerLevel[level]++
	w.stats.CopiedBytes += copied
	w.stats.PassthroughBytes += passthrough
	w.obs.wireBytes.Add(wireBytes)
	w.obs.blocks.Inc()
	w.obs.levelAppBytes[level].Add(rawBytes)
	w.obs.levelWireBytes[level].Add(wireBytes)
	w.obs.copiedBytes.Add(copied)
	w.obs.passthroughBytes.Add(passthrough)
	if codecID == compress.IDNone && w.ladder[level].Codec.ID() != compress.IDNone {
		w.stats.RawFallbacks++
		w.obs.rawFallbacks.Inc()
		if skipped {
			w.stats.ProbeSkips++
			w.obs.probeSkips.Inc()
		}
	}
}

// Level returns the currently active compression level.
func (w *Writer) Level() int { return w.level }

// Stats returns a snapshot of the writer's counters. With a parallel
// pipeline, frames still in flight are not yet counted; Flush or Close
// first for exact totals.
func (w *Writer) Stats() Stats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	s := w.stats
	s.BlocksPerLevel = append([]int64(nil), w.stats.BlocksPerLevel...)
	return s
}

// Write implements io.Writer for application data.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, errors.New("stream: write after Close")
	}
	total := 0
	for len(p) > 0 {
		space := cap(w.buf) - len(w.buf)
		n := len(p)
		if n > space {
			n = space
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		w.staged += int64(n)
		w.stats.AppBytes += int64(n)
		w.winAppBytes += int64(n)
		w.obs.appBytes.Add(int64(n))
		if len(w.buf) == cap(w.buf) {
			if err := w.flushBlock(); err != nil {
				w.err = err
				return total, err
			}
		}
	}
	w.maybeDecide()
	return total, nil
}

// Buffered returns the number of application bytes accepted but not yet cut
// into a frame. Relays use it to decide whether a coalescing flush deadline
// is armed (docs/performance.md, "Zero-copy relay").
func (w *Writer) Buffered() int { return len(w.buf) }

// ReadDirect performs one read from r straight into the writer's pending
// block, avoiding the staging copy a Read-into-scratch-then-Write loop pays:
// the bytes land exactly where flushBlock compresses (or, for stored-raw
// frames, vector-writes) them from. It returns the bytes read and r's error
// verbatim — including timeouts, which are NOT made sticky, so a relay can
// use read deadlines on r for flush pacing and keep going. A full block is
// cut before reading (so there is always space) and immediately after the
// read that fills it.
func (w *Writer) ReadDirect(r io.Reader) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, errors.New("stream: read after Close")
	}
	if len(w.buf) == cap(w.buf) {
		if err := w.flushBlock(); err != nil {
			w.err = err
			return 0, err
		}
	}
	n, err := r.Read(w.buf[len(w.buf):cap(w.buf)])
	if n > 0 {
		w.buf = w.buf[:len(w.buf)+n]
		w.stats.AppBytes += int64(n)
		w.winAppBytes += int64(n)
		w.obs.appBytes.Add(int64(n))
		if len(w.buf) == cap(w.buf) {
			if ferr := w.flushBlock(); ferr != nil {
				w.err = ferr
				if err == nil {
					err = ferr
				}
			}
		}
	}
	w.maybeDecide()
	return n, err
}

// ReadFrom implements io.ReaderFrom by looping ReadDirect until EOF, so
// io.Copy(w, src) moves the stream without an intermediate buffer.
func (w *Writer) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	for {
		n, err := w.ReadDirect(r)
		total += int64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// Flush writes any buffered partial block downstream and, with a parallel
// pipeline, waits until every in-flight frame has reached the underlying
// writer. It does not flush the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flushBlock(); err != nil {
		w.err = err
		return err
	}
	if w.pipe != nil {
		if err := w.pipe.drain(); err != nil {
			w.err = err
			return err
		}
	}
	return nil
}

// Close flushes buffered data and finalizes the current decision window.
// It returns the writer's pooled buffers to the block arena, so a Writer
// must not be used after Close. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	defer w.releaseBufs()
	if err := w.Flush(); err != nil {
		if w.pipe != nil {
			w.pipe.stop()
		}
		return err
	}
	w.finishWindow(true)
	if w.pipe != nil {
		if err := w.pipe.stop(); err != nil && w.err == nil {
			w.err = err
			return err
		}
	}
	return w.err
}

// releaseBufs returns the writer's arena buffers. Called exactly once, from
// Close (the pipeline releases in-flight block buffers itself).
func (w *Writer) releaseBufs() {
	if w.bufArena != nil {
		w.bufArena.Release()
		w.bufArena = nil
		w.buf = nil
	}
	if w.scratchArena != nil {
		w.scratchArena.Release()
		w.scratchArena = nil
		w.scratch = nil
	}
}

func (w *Writer) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	staged := w.staged
	w.staged = 0
	if w.pipe != nil {
		// Hand the full arena buffer to the worker pool (zero copy;
		// the pipeline releases it once the frame is encoded) and
		// take a fresh one. The flusher accounts the frame when it
		// reaches the wire.
		full := w.bufArena
		full.B = w.buf
		w.bufArena = block.Get(w.cfg.BlockSize)
		w.buf = w.bufArena.B[:0:w.cfg.BlockSize]
		return w.pipe.submit(full, w.level, staged)
	}
	payload, codecID, skipped, scratch, err := writeFrame(w.dst, w.ladder, w.level, w.buf, w.scratch, w.probe)
	w.scratch = scratch[:0]
	w.scratchArena.B = scratch // keep any growth with the pooled buffer
	if err != nil {
		return err
	}
	rawBytes := int64(len(w.buf))
	// Serial stored-raw frames go out vectored, aliasing the block: only
	// the staged bytes were ever copied in user space. A codec transform
	// copies every raw byte once more.
	copied, passthrough := staged, int64(0)
	if codecID != compress.IDNone {
		copied += rawBytes
	} else {
		passthrough = rawBytes - staged
	}
	w.statsMu.Lock()
	w.accountFrame(int64(payload+headerSize), rawBytes, copied, passthrough, w.level, codecID, skipped)
	w.statsMu.Unlock()
	w.buf = w.buf[:0]
	return nil
}

// maybeDecide closes the current decision window if t has elapsed, feeds the
// measured application data rate to the decision model and installs the next
// level.
func (w *Writer) maybeDecide() {
	elapsed := w.clock.Now().Sub(w.windowStart)
	if elapsed < w.cfg.Window {
		return
	}
	w.finishWindow(false)
}

func (w *Writer) finishWindow(final bool) {
	now := w.clock.Now()
	elapsed := now.Sub(w.windowStart)
	if elapsed <= 0 {
		if !final {
			return
		}
		elapsed = time.Nanosecond
	}
	rate := float64(w.winAppBytes) / elapsed.Seconds()
	w.obs.windowRate.Observe(rate)
	next := w.level
	if !final {
		switch {
		case w.cfg.Scheme != nil:
			w.statsMu.Lock()
			winWire := w.winWireBytes
			w.statsMu.Unlock()
			if ws, ok := w.cfg.Scheme.(WindowScheme); ok {
				next = ws.ObserveWindowStats(rate, w.winAppBytes, winWire)
			} else {
				next = w.cfg.Scheme.Observe(rate)
			}
			// Clamp defensively: the scheme is external code.
			if next < 0 {
				next = 0
			}
			if next >= len(w.ladder) {
				next = len(w.ladder) - 1
			}
		case w.dec != nil:
			if ro, ok := w.dec.(core.RatioObserver); ok && w.winAppBytes > 0 {
				w.statsMu.Lock()
				winWire := w.winWireBytes
				w.statsMu.Unlock()
				ro.ObserveRatio(float64(winWire) / float64(w.winAppBytes))
			}
			next = w.dec.Observe(rate)
			w.obs.onDecision(w.dec.LastDecision())
		}
	}
	if w.cfg.OnWindow != nil {
		w.statsMu.Lock()
		winWire := w.winWireBytes
		w.statsMu.Unlock()
		w.cfg.OnWindow(WindowStat{
			Start:     w.windowStart,
			Elapsed:   elapsed,
			AppBytes:  w.winAppBytes,
			WireBytes: winWire,
			Rate:      rate,
			Level:     w.level,
			NextLevel: next,
		})
	}
	if next != w.level {
		// Cut the pending block so data buffered under the old level is
		// not compressed with the new one mid-window accounting.
		if err := w.flushBlock(); err != nil {
			w.err = err
			return
		}
		w.level = next
		w.stats.LevelSwitches++
		w.obs.levelSwitches.Inc()
	}
	w.windowStart = now
	w.winAppBytes = 0
	w.statsMu.Lock()
	w.winWireBytes = 0
	w.statsMu.Unlock()
}
