package stream

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"adaptio/internal/core"
	"adaptio/internal/obs"
	"adaptio/internal/vclock"
)

// driveWindow writes exactly n bytes into w as one decision window: n-1
// bytes, a one-second clock step, then the final byte whose Write call
// closes the window, so the observed rate is exactly n bytes/second.
func driveWindow(t *testing.T, w *Writer, clk *vclock.Manual, data []byte, n int) {
	t.Helper()
	if _, err := w.Write(data[:n-1]); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := w.Write(data[:1]); err != nil {
		t.Fatal(err)
	}
}

// TestDecisionLogShowsBackoffAfterRevert closes the latent visibility gap
// the controller used to have: after a degradation-triggered revert, nothing
// externally observable proved the probed level's backoff was reset. The
// decision event log now records every non-hold transition with the backoff
// state, so the whole paper trail — probe, reward (backoff grows), the
// backoff-suppressed silent window, and the revert (backoff reset) — is
// asserted here window by window.
func TestDecisionLogShowsBackoffAfterRevert(t *testing.T) {
	reg := obs.NewRegistry()
	clk := vclock.NewManual()
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{
		Clock:  clk,
		Window: time.Second,
		Obs:    reg.Scope("stream").Scope("writer"),
	})
	data := make([]byte, 2000)

	// Window 1: 1000 B/s. First observation primes pdr, so the rate is
	// "unchanged"; backoff 0 has expired, so the controller probes 0 -> 1.
	driveWindow(t, w, clk, data, 1000)
	// Window 2: 2000 B/s, improved: reward, bck[1] becomes 1.
	driveWindow(t, w, clk, data, 2000)
	// Window 3: 2000 B/s, stable, but c=1 < 2^bck[1]=2: hold. The backoff
	// visibly suppresses the probe — no event may be logged.
	driveWindow(t, w, clk, data, 2000)
	// Window 4: 2000 B/s, stable, c=2: backoff expired, probe 1 -> 2.
	driveWindow(t, w, clk, data, 2000)
	// Window 5: 1000 B/s, degraded: revert 2 -> 1 and reset bck[2].
	driveWindow(t, w, clk, data, 1000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	logm, ok := reg.Get("stream.writer.decisions").(*obs.EventLog)
	if !ok {
		t.Fatal("decision event log not registered")
	}
	events := logm.Events()
	wantKinds := []string{"probe", "reward", "probe", "revert"}
	if len(events) != len(wantKinds) {
		t.Fatalf("got %d decision events %v, want %d (holds must not be logged)",
			len(events), events, len(wantKinds))
	}
	for i, want := range wantKinds {
		if events[i].Kind != want {
			t.Fatalf("event %d kind = %q, want %q (events: %v)", i, events[i].Kind, want, events)
		}
	}
	// Window 3's hold left no event but still counts zero towards Total:
	// exactly the four transitions were ever appended.
	if logm.Total() != 4 {
		t.Fatalf("event log total = %d, want 4", logm.Total())
	}
	// The reward recorded the grown backoff, the revert the reset one.
	if !strings.Contains(events[1].Detail, "bck[1]=1") {
		t.Fatalf("reward event does not show grown backoff: %q", events[1].Detail)
	}
	if !strings.Contains(events[3].Detail, "level 2 -> 1") || !strings.Contains(events[3].Detail, "bck[2]=0") {
		t.Fatalf("revert event does not show reverted level and reset backoff: %q", events[3].Detail)
	}
	// The live controller state agrees with the event trail.
	if got := w.dec.(*core.AlgorithmOne).Backoff(2); got != 0 {
		t.Fatalf("decider bck[2] = %d after revert, want 0", got)
	}
	if got := w.dec.Level(); got != 1 {
		t.Fatalf("decider level = %d after revert, want 1", got)
	}
}

// TestWriterObsCounters checks the writer's byte accounting through the obs
// registry: app/wire totals, per-level label split, the derived ratio, and
// the window-rate histogram.
func TestWriterObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	clk := vclock.NewManual()
	var wire bytes.Buffer
	w := mustWriter(t, &wire, WriterConfig{
		Clock:       clk,
		Window:      time.Second,
		Static:      true,
		StaticLevel: LevelLight,
		BlockSize:   4 << 10,
		Obs:         reg.Scope("stream").Scope("writer"),
	})
	payload := bytes.Repeat([]byte("abcdefgh"), 4<<10) // 32 KiB, compressible
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	counter := func(name string) int64 {
		c, ok := reg.Get(name).(*obs.Counter)
		if !ok {
			t.Fatalf("counter %q missing (have %v)", name, reg.Names())
		}
		return c.Value()
	}
	st := w.Stats()
	if got := counter("stream.writer.app_bytes"); got != st.AppBytes || got != int64(len(payload)) {
		t.Fatalf("app_bytes = %d, stats %d, want %d", got, st.AppBytes, len(payload))
	}
	if got := counter("stream.writer.wire_bytes"); got != st.WireBytes {
		t.Fatalf("wire_bytes = %d, stats %d", got, st.WireBytes)
	}
	if got := counter("stream.writer.blocks"); got != int64(len(payload)/(4<<10)) {
		t.Fatalf("blocks = %d, want %d", got, len(payload)/(4<<10))
	}
	// Static LIGHT: every byte must be accounted to level 1's labels.
	if got := counter("stream.writer.app_bytes{level=1}"); got != int64(len(payload)) {
		t.Fatalf("level-1 app_bytes = %d, want %d", got, len(payload))
	}
	if got := counter("stream.writer.wire_bytes{level=1}"); got != st.WireBytes {
		t.Fatalf("level-1 wire_bytes = %d, want all %d", got, st.WireBytes)
	}
	ratio, ok := reg.Get("stream.writer.ratio").(*obs.FloatFuncMetric)
	if !ok {
		t.Fatal("ratio metric missing")
	}
	want := float64(st.WireBytes) / float64(st.AppBytes)
	if got := ratio.Value(); got != want {
		t.Fatalf("ratio = %v, want %v", got, want)
	}
	if want >= 1 {
		t.Fatalf("compressible payload did not compress (ratio %v); accounting suspect", want)
	}
	hist, ok := reg.Get("stream.writer.window_rate").(*obs.Histogram)
	if !ok {
		t.Fatal("window_rate histogram missing")
	}
	if hist.Count() == 0 {
		t.Fatal("window_rate saw no windows")
	}

	// The stream must still decode: instrumentation cannot perturb data.
	out, err := io.ReadAll(mustReader(t, &wire))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, payload) {
		t.Fatal("instrumented stream round trip mismatch")
	}
}
