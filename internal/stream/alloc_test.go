package stream_test

import (
	"io"
	"testing"

	"adaptio/internal/block/blocktest"
	"adaptio/internal/stream"
)

// TestRoundTripSerialAllocGate is the allocation regression gate for the
// serial data plane (see docs/performance.md): one 128 KB block written,
// framed, decoded and read back through a long-lived Writer/Reader pair
// must average at most 2 allocations. Steady state is actually 0 — the
// budget of 2 absorbs pool repopulation after a GC and keeps the gate
// deterministic — so any per-block make() sneaking back into the hot path
// blows well past it.
func TestRoundTripSerialAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	data := benchBlock(t, stream.DefaultBlockSize)
	pipe := &benchPipe{}
	w, err := stream.NewWriter(pipe, staticCfg(stream.LevelLight, 0))
	if err != nil {
		t.Fatal(err)
	}
	r, err := stream.NewReader(pipe)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	roundTrip := func() {
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(r, out); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm-up: grow the transport and scratch buffers once
	avg := testing.AllocsPerRun(100, roundTrip)
	if avg > 2 {
		t.Fatalf("serial 128 KB round trip allocates %.1f times per op, budget is 2", avg)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSerialStreamReleasesAllBuffers asserts the Writer/Reader buffer
// lifecycle contract: after Close and EOF every arena buffer acquired by a
// serial stream has been released.
func TestSerialStreamReleasesAllBuffers(t *testing.T) {
	blocktest.Track(t)
	data := benchBlock(t, 300<<10)
	pipe := &benchPipe{}
	w, err := stream.NewWriter(pipe, staticCfg(stream.LevelLight, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := stream.NewReader(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	// EOF already recycled the reader's buffers; Close must be a no-op.
	r.Close()
}

// TestParallelStreamReleasesAllBuffers asserts the same contract for the
// worker-pool paths: pipeline Writer and ParallelReader, both drained to
// completion and both abandoned mid-stream via Close.
func TestParallelStreamReleasesAllBuffers(t *testing.T) {
	blocktest.Track(t)
	data := benchBlock(t, 500<<10)

	pipe := &benchPipe{}
	w, err := stream.NewWriter(pipe, staticCfg(stream.LevelLight, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), pipe.buf...)

	// Drained to EOF.
	r, err := stream.NewParallelReader(pipe, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Abandoned mid-stream: Close must reclaim all in-flight frames.
	pipe2 := &benchPipe{}
	pipe2.buf = wire
	r2, err := stream.NewParallelReader(pipe2, 4)
	if err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 4096)
	if _, err := io.ReadFull(r2, small); err != nil {
		t.Fatal(err)
	}
	r2.Close()
}
