//go:build race

package stream_test

// raceEnabled reports that this binary was built with the race detector,
// whose ~10-20x slowdown invalidates wall-clock performance assertions
// (correctness assertions still run).
const raceEnabled = true
