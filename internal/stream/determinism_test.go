package stream_test

// Wire-determinism property: for a pinned compression level, the bytes a
// Writer puts on the wire are a pure function of the application bytes —
// independent of Parallelism (order-preserving pipeline vs serial encode
// path, which also differ in contiguous-vs-vectored framing) and of how the
// application chops its Write calls. The parallel reader relies on frames
// being self-describing, not on this property, but it pins down that the
// pipeline cannot reorder, duplicate or re-split blocks.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"adaptio/internal/corpus"
	"adaptio/internal/stream"
)

// encodeChunked writes src through a Writer in random-sized chunks drawn
// from rng and returns the wire bytes.
func encodeChunked(t *testing.T, cfg stream.WriterConfig, src []byte, rng *rand.Rand) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	writeChunked(t, w, &buf, src, rng)
	return buf.Bytes()
}

// encodeChunkedParallel is encodeChunked through the public ParallelWriter.
func encodeChunkedParallel(t *testing.T, cfg stream.WriterConfig, workers int, src []byte, rng *rand.Rand) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := stream.NewParallelWriter(&buf, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	writeChunked(t, w, &buf, src, rng)
	return buf.Bytes()
}

type chunkWriter interface {
	Write([]byte) (int, error)
	Close() error
}

func writeChunked(t *testing.T, w chunkWriter, buf *bytes.Buffer, src []byte, rng *rand.Rand) {
	t.Helper()
	for off := 0; off < len(src); {
		n := 1 + rng.Intn(96<<10)
		if off+n > len(src) {
			n = len(src) - off
		}
		if _, err := w.Write(src[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWireDeterminismSerialVsParallel(t *testing.T) {
	// Interleave all compressibility classes so the static levels see
	// compressible and incompressible blocks (i.e. both contiguous and
	// stored-raw frames).
	var src []byte
	for _, kind := range corpus.Kinds() {
		src = append(src, corpus.Generate(kind, 700<<10, 42)...)
	}
	for level := stream.LevelNo; level <= stream.LevelHeavy; level++ {
		t.Run(fmt.Sprintf("level%d", level), func(t *testing.T) {
			serialCfg := stream.WriterConfig{Static: true, StaticLevel: level}
			rng := rand.New(rand.NewSource(int64(level)))
			want := encodeChunked(t, serialCfg, src, rng)

			// The same input through the parallel pipeline (both the
			// Parallelism knob and the public ParallelWriter), and again
			// serially with a different chunking, must produce the
			// identical wire stream.
			for trial := 0; trial < 3; trial++ {
				parCfg := serialCfg
				parCfg.Parallelism = 2 + trial
				got := encodeChunked(t, parCfg, src, rng)
				if !bytes.Equal(want, got) {
					t.Fatalf("parallelism %d: wire bytes differ from serial writer (%d vs %d bytes)",
						parCfg.Parallelism, len(got), len(want))
				}
				pw := encodeChunkedParallel(t, serialCfg, 2+trial, src, rng)
				if !bytes.Equal(want, pw) {
					t.Fatalf("ParallelWriter(%d workers): wire bytes differ from serial writer (%d vs %d bytes)",
						2+trial, len(pw), len(want))
				}
				reChunked := encodeChunked(t, serialCfg, src, rng)
				if !bytes.Equal(want, reChunked) {
					t.Fatal("serial wire bytes depend on application chunk sizes")
				}
			}

			// And the stream must still decode to the application bytes.
			r, err := stream.NewReader(bytes.NewReader(want))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if _, err := out.ReadFrom(r); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), src) {
				t.Fatal("deterministic wire stream does not decode to the input")
			}
		})
	}
}
