package stream_test

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/ratelimit"
	"adaptio/internal/stream"
)

// These integration tests run the complete production path with real bytes:
// corpus data -> adaptive stream.Writer -> rate-limited real TCP connection
// -> stream.Reader. The rate limiter emulates the scarce shared-NIC
// bandwidth of a cloud VM; on compressible data the decision model must
// engage compression and push the application rate past the wire cap (the
// paper's central effect), while on incompressible data it must not burn
// CPU for nothing.

// runRealTransfer streams volume bytes of kind over throttled loopback TCP
// and returns the writer stats, the received bytes count and the elapsed
// time.
func runRealTransfer(t *testing.T, kind corpus.Kind, wireMBps float64, volume int64, window time.Duration) (stream.Stats, int64, time.Duration) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var (
		wg       sync.WaitGroup
		received int64
		recvErr  error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			recvErr = err
			return
		}
		defer conn.Close()
		r, err := stream.NewReader(conn)
		if err != nil {
			recvErr = err
			return
		}
		received, recvErr = io.Copy(io.Discard, r)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	limited, err := ratelimit.NewWriter(conn, wireMBps*1e6, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	w, err := stream.NewWriter(limited, stream.WriterConfig{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := io.CopyN(w, corpus.NewFileReader(kind, 1), volume); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	conn.Close() // EOF to the receiver
	wg.Wait()
	if recvErr != nil {
		t.Fatalf("receiver: %v", recvErr)
	}
	return w.Stats(), received, elapsed
}

func TestRealTCPAdaptiveEngagesOnCompressibleData(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time transfer")
	}
	const wireMBps = 10.0
	stats, received, elapsed := runRealTransfer(t, corpus.High, wireMBps, 24<<20, 60*time.Millisecond)
	if received != stats.AppBytes {
		t.Fatalf("received %d of %d app bytes", received, stats.AppBytes)
	}
	appRate := float64(stats.AppBytes) / 1e6 / elapsed.Seconds()
	// Uncompressed, 24 MB over a 10 MB/s wire takes >= 2.4 s. With the
	// scheme engaging LIGHT (ratio ~0.18 on HIGH data) the application
	// rate must clear the wire cap decisively. Under the race detector
	// compression itself is CPU-bound below the cap, so only correctness
	// is checked there.
	if !raceEnabled {
		if appRate < 1.5*wireMBps {
			t.Fatalf("app rate %.1f MB/s did not clear the %v MB/s wire cap", appRate, wireMBps)
		}
		if ratio := float64(stats.WireBytes) / float64(stats.AppBytes); ratio > 0.5 {
			t.Fatalf("wire ratio %.2f: compression never engaged", ratio)
		}
	}
	compressed := int64(0)
	for lvl, blocks := range stats.BlocksPerLevel {
		if lvl > 0 {
			compressed += blocks
		}
	}
	if compressed == 0 {
		t.Fatal("no blocks were compressed")
	}
}

func TestRealTCPAdaptiveBacksOffOnIncompressibleData(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time transfer")
	}
	const wireMBps = 25.0
	stats, received, _ := runRealTransfer(t, corpus.Low, wireMBps, 16<<20, 60*time.Millisecond)
	if received != stats.AppBytes {
		t.Fatalf("received %d of %d app bytes", received, stats.AppBytes)
	}
	// On JPEG-like data compression saves ~5%; whatever mix of levels the
	// prober visits, the wire volume must stay close to the app volume
	// (no catastrophic HEAVY excursions) and the stream must survive
	// whatever probing happened.
	ratio := float64(stats.WireBytes) / float64(stats.AppBytes)
	if ratio < 0.85 || ratio > 1.02 {
		t.Fatalf("wire ratio %.3f implausible for incompressible data", ratio)
	}
	if stats.BlocksPerLevel[3] > stats.Blocks/4 {
		t.Fatalf("HEAVY used for %d of %d blocks on incompressible data",
			stats.BlocksPerLevel[3], stats.Blocks)
	}
}

// TestTwoAdaptiveStreamsShareOneWire models two co-located tenants who both
// run the adaptive scheme over one shared, capped NIC: both must make
// progress, both must engage compression on compressible data, and their
// combined application throughput must exceed the raw wire capacity — the
// cooperative version of the paper's shared-I/O scenario.
func TestTwoAdaptiveStreamsShareOneWire(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("real-time transfer")
	}
	const wireMBps = 12.0
	const volume = 10 << 20

	// One shared rate limiter = the host NIC; each tenant gets its own
	// TCP connection through it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				r, err := stream.NewReader(conn)
				if err != nil {
					return
				}
				io.Copy(io.Discard, r)
			}()
		}
	}()

	// The shared limiter is the host NIC: every tenant's wire bytes pay
	// its tokens before reaching their own connection. ratelimit.Writer
	// is concurrency-safe, so it serializes the contending tenants just
	// like a physical link would.
	sharedNIC, err := ratelimit.NewWriter(io.Discard, wireMBps*1e6, 64<<10)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]stream.Stats, 2)
	elapsed := make([]time.Duration, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			// Wire writes pay shared tokens first (the contended NIC),
			// then go to the real connection.
			tenantWire := writerFunc(func(p []byte) (int, error) {
				if _, err := sharedNIC.Write(p); err != nil {
					return 0, err
				}
				return conn.Write(p)
			})
			w, err := stream.NewWriter(tenantWire, stream.WriterConfig{Window: 50 * time.Millisecond})
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			start := time.Now()
			if _, err := io.CopyN(w, corpus.NewFileReader(corpus.High, uint64(i+1)), volume); err != nil {
				t.Errorf("copy: %v", err)
				return
			}
			if err := w.Close(); err != nil {
				t.Errorf("close: %v", err)
				return
			}
			elapsed[i] = time.Since(start)
			results[i] = w.Stats()
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	var combinedApp float64
	for i, st := range results {
		rate := float64(st.AppBytes) / 1e6 / elapsed[i].Seconds()
		combinedApp += rate
		t.Logf("tenant %d: %.1f MB/s app, ratio %.3f", i, rate, float64(st.WireBytes)/float64(st.AppBytes))
		if st.AppBytes != volume {
			t.Errorf("tenant %d moved %d of %d bytes", i, st.AppBytes, volume)
		}
		if ratio := float64(st.WireBytes) / float64(st.AppBytes); ratio > 0.6 {
			t.Errorf("tenant %d never compressed (ratio %.2f)", i, ratio)
		}
	}
	if combinedApp < 1.5*wireMBps {
		t.Errorf("combined app rate %.1f MB/s does not exceed the %.0f MB/s shared wire", combinedApp, wireMBps)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestRealTCPContentionAppearsMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time transfer")
	}
	// Start with a fat wire (compression pointless), then cut the rate
	// 8x mid-stream (compression pays): the scheme must switch levels.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			recvErr = err
			return
		}
		defer conn.Close()
		r, err := stream.NewReader(conn)
		if err != nil {
			recvErr = err
			return
		}
		_, recvErr = io.Copy(io.Discard, r)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	limited, err := ratelimit.NewWriter(conn, 200e6, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var levelLog []int
	w, err := stream.NewWriter(limited, stream.WriterConfig{
		Window:   50 * time.Millisecond,
		OnWindow: func(ws stream.WindowStat) { levelLog = append(levelLog, ws.NextLevel) },
	})
	if err != nil {
		t.Fatal(err)
	}
	src := corpus.NewFileReader(corpus.High, 1)
	if _, err := io.CopyN(w, src, 24<<20); err != nil {
		t.Fatal(err)
	}
	phase1Blocks := w.Stats().BlocksPerLevel[0]
	if err := limited.SetRate(8e6); err != nil { // contention appears
		t.Fatal(err)
	}
	if _, err := io.CopyN(w, src, 16<<20); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	wg.Wait()
	if recvErr != nil {
		t.Fatalf("receiver: %v", recvErr)
	}
	stats := w.Stats()
	// Phase 1 (fat wire) should run mostly uncompressed; after the rate
	// cut more compressed blocks must appear.
	compressedAfter := (stats.Blocks - stats.BlocksPerLevel[0]) - 0
	if phase1Blocks == 0 {
		t.Log("note: phase 1 compressed everything; wire may be CPU-bound on this machine")
	}
	if compressedAfter == 0 {
		t.Fatalf("scheme never engaged compression after contention appeared (levels: %v)", levelLog)
	}
	if stats.LevelSwitches == 0 {
		t.Fatal("no level switches across the contention change")
	}
}
