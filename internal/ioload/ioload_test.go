package ioload_test

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"adaptio/internal/ioload"
)

func TestNetSendToSink(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ioload.Sink(ctx, ln)

	const volume = 64 << 20
	res, err := ioload.NetSend(ctx, ln.Addr().String(), volume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != volume {
		t.Fatalf("sent %d of %d", res.Bytes, volume)
	}
	if res.MBps() <= 0 {
		t.Fatal("non-positive throughput")
	}
	if len(res.ChunkMBps) != volume/ioload.ChunkBytes {
		t.Fatalf("chunk samples %d, want %d", len(res.ChunkMBps), volume/ioload.ChunkBytes)
	}
}

func TestNetReceive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx := context.Background()
	const volume = 24 << 20
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 1<<20)
		for sent := 0; sent < volume; sent += len(buf) {
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
	}()
	res, err := ioload.NetReceive(ctx, ln, volume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != volume {
		t.Fatalf("received %d of %d", res.Bytes, volume)
	}
}

func TestFileWriteRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.bin")
	ctx := context.Background()
	const volume = 32 << 20
	wres, err := ioload.FileWrite(ctx, path, volume)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Bytes != volume {
		t.Fatalf("wrote %d of %d", wres.Bytes, volume)
	}
	rres, err := ioload.FileRead(ctx, path, 0) // read to EOF
	if err != nil {
		t.Fatal(err)
	}
	if rres.Bytes != volume {
		t.Fatalf("read %d of %d", rres.Bytes, volume)
	}
}

func TestFileWriteValidation(t *testing.T) {
	if _, err := ioload.FileWrite(context.Background(), "/nonexistent-dir/x", 10); err == nil {
		t.Error("bad path accepted")
	}
	if _, err := ioload.FileWrite(context.Background(), filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Error("zero volume accepted")
	}
}

func TestCancellationStopsLoad(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go ioload.Sink(ctx, ln)

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Unlimited volume: only cancellation ends it.
		if _, err := ioload.NetSend(ctx, ln.Addr().String(), 0); err != nil {
			t.Errorf("cancelled send errored: %v", err)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the load generator")
	}
}
