// Package ioload implements the paper's auxiliary load generators ("We
// created a set of small auxiliary programs to generate network and file
// I/O load", Section II-A): saturating network send/receive and file
// write/read loops. cmd/acprobe runs them while sampling /proc/stat to
// reproduce the Figure 1 measurement live on a real machine; the tests use
// them as realistic I/O drivers.
//
// Like the paper's programs, the generators record a timestamp after every
// 20 MB of I/O (Section II-B), from which per-chunk throughput is derived.
package ioload

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// ChunkBytes is the throughput-measurement granularity (paper: 20 MB).
const ChunkBytes = 20 << 20

// Result summarizes one load run.
type Result struct {
	Bytes   int64
	Elapsed time.Duration
	// ChunkMBps lists the per-20MB-chunk throughput samples.
	ChunkMBps []float64
}

// MBps returns the mean throughput.
func (r Result) MBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1e6 / r.Elapsed.Seconds()
}

// chunkTracker accumulates the 20 MB timestamps.
type chunkTracker struct {
	res       Result
	start     time.Time
	lastMark  time.Time
	sinceMark int64
}

func newChunkTracker() *chunkTracker {
	now := time.Now()
	return &chunkTracker{start: now, lastMark: now}
}

func (c *chunkTracker) add(n int) {
	c.res.Bytes += int64(n)
	c.sinceMark += int64(n)
	for c.sinceMark >= ChunkBytes {
		now := time.Now()
		dt := now.Sub(c.lastMark).Seconds()
		if dt > 0 {
			c.res.ChunkMBps = append(c.res.ChunkMBps, ChunkBytes/1e6/dt)
		}
		c.lastMark = now
		c.sinceMark -= ChunkBytes
	}
}

func (c *chunkTracker) finish() Result {
	c.res.Elapsed = time.Since(c.start)
	return c.res
}

// zeroReader produces zero bytes forever (the cheapest saturating source:
// the cost measured is the I/O path, not data generation).
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// NetSend connects to addr and writes continuously until ctx is cancelled
// or totalBytes have been sent (0 = until cancel).
func NetSend(ctx context.Context, addr string, totalBytes int64) (Result, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	go closeOnDone(ctx, conn)
	return pump(ctx, conn, zeroReader{}, totalBytes)
}

// NetReceive accepts one connection on ln and reads it to completion (or
// ctx cancel / totalBytes).
func NetReceive(ctx context.Context, ln net.Listener, totalBytes int64) (Result, error) {
	conn, err := ln.Accept()
	if err != nil {
		return Result{}, err
	}
	defer conn.Close()
	go closeOnDone(ctx, conn)
	return pump(ctx, io.Discard, conn, totalBytes)
}

// FileWrite writes totalBytes to path using plain write(2) calls in 1 MB
// blocks, then syncs, mirroring the paper's raw-I/O writer.
func FileWrite(ctx context.Context, path string, totalBytes int64) (Result, error) {
	if totalBytes <= 0 {
		return Result{}, errors.New("ioload: FileWrite needs a positive volume")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	res, err := pump(ctx, f, zeroReader{}, totalBytes)
	if err != nil {
		return res, err
	}
	if err := f.Sync(); err != nil {
		return res, fmt.Errorf("ioload: sync: %w", err)
	}
	return res, nil
}

// FileRead reads the file at path completely (or until ctx / totalBytes).
func FileRead(ctx context.Context, path string, totalBytes int64) (Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	return pump(ctx, io.Discard, f, totalBytes)
}

// pump moves bytes from src to dst in 1 MB blocks, tracking 20 MB chunk
// timestamps, until totalBytes (0 = unlimited), EOF, or ctx cancellation.
func pump(ctx context.Context, dst io.Writer, src io.Reader, totalBytes int64) (Result, error) {
	tracker := newChunkTracker()
	buf := make([]byte, 1<<20)
	for totalBytes <= 0 || tracker.res.Bytes < totalBytes {
		if err := ctx.Err(); err != nil {
			return tracker.finish(), nil // cancellation ends the run cleanly
		}
		want := int64(len(buf))
		if totalBytes > 0 && totalBytes-tracker.res.Bytes < want {
			want = totalBytes - tracker.res.Bytes
		}
		n, rerr := src.Read(buf[:want])
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				if ctx.Err() != nil {
					return tracker.finish(), nil
				}
				return tracker.finish(), werr
			}
			tracker.add(n)
		}
		if rerr != nil {
			if rerr == io.EOF || ctx.Err() != nil {
				return tracker.finish(), nil
			}
			return tracker.finish(), rerr
		}
	}
	return tracker.finish(), nil
}

func closeOnDone(ctx context.Context, c io.Closer) {
	<-ctx.Done()
	c.Close()
}

// Sink runs a discarding TCP sink on ln until ctx is cancelled; it is the
// opposite endpoint for NetSend ("we made sure that the opposite part of
// the connection was ... at least as fast as the observed virtual machine").
func Sink(ctx context.Context, ln net.Listener) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			go closeOnDone(ctx, conn)
			io.Copy(io.Discard, conn)
		}()
	}
}
