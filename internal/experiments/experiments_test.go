package experiments_test

import (
	"math"
	"strings"
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/corpus"
	"adaptio/internal/experiments"
)

// Most experiment tests run with reduced volumes: the experiments are
// deterministic simulations, so shape properties hold at 10 GB just as they
// do at the paper's 50 GB, and the full volume is exercised by the root
// bench harness.
const testVolume = 10e9

func TestFig1Rows(t *testing.T) {
	rows, err := experiments.Fig1CPUAccuracy(125, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*5 {
		t.Fatalf("expected 20 rows, got %d", len(rows))
	}
	var xenFileReadGap float64
	for _, r := range rows {
		if r.Samples < 120 {
			t.Errorf("%v/%v: only %d samples (paper used >=120)", r.Platform, r.Op, r.Samples)
		}
		if r.Guest.Total() <= 0 {
			t.Errorf("%v/%v: zero guest utilization", r.Platform, r.Op)
		}
		if r.Platform == cloudsim.EC2 && r.HostVisible {
			t.Error("EC2 host should not be visible")
		}
		if r.Platform != cloudsim.EC2 && !r.HostVisible {
			t.Errorf("%v host should be visible", r.Platform)
		}
		if r.Platform == cloudsim.XenParavirt && r.Op == cloudsim.FileRead {
			xenFileReadGap = r.GapFactor()
		}
		// Virtualized platforms under-report (native is truthful).
		if r.HostVisible && r.Platform != cloudsim.Native && r.Guest.Total() >= r.Host.Total() {
			t.Errorf("%v/%v: guest %0.f%% >= host %0.f%%", r.Platform, r.Op, r.Guest.Total(), r.Host.Total())
		}
	}
	if xenFileReadGap < 8 {
		t.Errorf("XEN file-read gap %.1fx, paper reports up to 15x", xenFileReadGap)
	}
	out := experiments.RenderFig1(rows)
	for _, want := range []string{"Figure 1", "XEN", "Amazon EC2", "not observable", "STEAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 render missing %q", want)
		}
	}
}

func TestFig2Distribution(t *testing.T) {
	rows, err := experiments.Fig2NetThroughput(5e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 platforms, got %d", len(rows))
	}
	var native, ec2 experiments.DistRow
	for _, r := range rows {
		switch r.Platform {
		case cloudsim.Native:
			native = r
		case cloudsim.EC2:
			ec2 = r
		}
		if r.Summary.N == 0 {
			t.Errorf("%v: no samples", r.Platform)
		}
	}
	// EC2's spread dwarfs the local cloud's (Figure 2's key message).
	if ec2.Summary.SD <= 5*native.Summary.SD {
		t.Errorf("EC2 SD %.1f not far above native %.1f", ec2.Summary.SD, native.Summary.SD)
	}
	out := experiments.RenderDist("Figure 2", "MBit/s", rows)
	if !strings.Contains(out, "MBit/s") || !strings.Contains(out, "Native") {
		t.Error("Fig2 render incomplete")
	}
}

func TestFig3Distribution(t *testing.T) {
	rows, err := experiments.Fig3FileWriteThroughput(testVolume, 1)
	if err != nil {
		t.Fatal(err)
	}
	var xen, kvm experiments.DistRow
	for _, r := range rows {
		switch r.Platform {
		case cloudsim.XenParavirt:
			xen = r
		case cloudsim.KVMParavirt:
			kvm = r
		}
	}
	if xen.Summary.Max < 10*kvm.Summary.Max {
		t.Errorf("XEN cache bursts (max %.0f) should dwarf KVM (max %.0f)", xen.Summary.Max, kvm.Summary.Max)
	}
	if xen.CacheResidentBytes == 0 {
		t.Error("XEN run should leave bytes in the host cache")
	}
	if kvm.CacheResidentBytes != 0 {
		t.Error("KVM run should not leave bytes in the host cache")
	}
	out := experiments.RenderDist("Figure 3", "MB/s", rows)
	if !strings.Contains(out, "host cache") {
		t.Error("Fig3 render missing cache note")
	}
}

func TestTableIISmall(t *testing.T) {
	res, err := experiments.TableII(experiments.TableIIConfig{
		TotalBytes: testVolume,
		Runs:       3,
		Platform:   cloudsim.KVMParavirt,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Structural checks.
	if len(res.Kinds) != 3 || len(res.Backgrounds) != 4 {
		t.Fatalf("grid shape wrong: %v kinds, %v backgrounds", len(res.Kinds), len(res.Backgrounds))
	}
	for _, kind := range res.Kinds {
		for _, bg := range res.Backgrounds {
			cells := res.Cells[kind][bg]
			if len(cells) != 5 {
				t.Fatalf("%v/%d: %d cells", kind, bg, len(cells))
			}
			for si, c := range cells {
				if c.Mean <= 0 {
					t.Fatalf("%v/%d/%s: non-positive mean", kind, bg, experiments.SchemeNames[si])
				}
				if c.SD < 0 {
					t.Fatalf("%v/%d/%s: negative SD", kind, bg, experiments.SchemeNames[si])
				}
			}
		}
	}
	// The headline claims at reduced volume.
	for _, kind := range res.Kinds {
		for _, bg := range res.Backgrounds {
			if gap := res.DynamicGap(kind, bg); gap > 0.25 {
				t.Errorf("%v/bg=%d: dynamic gap %.0f%%", kind, bg, gap*100)
			}
		}
	}
	if res.Best(corpus.High, 0) != 1 {
		t.Errorf("HIGH/0: best scheme %s, want LIGHT", experiments.SchemeNames[res.Best(corpus.High, 0)])
	}
	if res.Best(corpus.Low, 0) != 0 {
		t.Errorf("LOW/0: best scheme %s, want NO", experiments.SchemeNames[res.Best(corpus.Low, 0)])
	}
	out := res.Render()
	for _, want := range []string{"Table II", "DYNAMIC", "HIGH", "MODERATE", "LOW", "dyn gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II render missing %q", want)
		}
	}
}

// TestTableIIDeterministic: identical configuration yields bit-identical
// grids (the regression property the deterministic RNG exists for).
func TestTableIIDeterministic(t *testing.T) {
	cfg := experiments.TableIIConfig{
		TotalBytes: 2e9, Runs: 2, Platform: cloudsim.KVMParavirt, Seed: 5,
		Backgrounds: []int{0, 3},
	}
	a, err := experiments.TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range a.Kinds {
		for _, bg := range a.Backgrounds {
			for si := range experiments.SchemeNames {
				if a.Cells[kind][bg][si] != b.Cells[kind][bg][si] {
					t.Fatalf("%v/%d/%s: %v vs %v", kind, bg, experiments.SchemeNames[si],
						a.Cells[kind][bg][si], b.Cells[kind][bg][si])
				}
			}
		}
	}
}

func TestFig4TraceProperties(t *testing.T) {
	tr, err := experiments.Fig4Trace(testVolume, 3)
	if err != nil {
		t.Fatal(err)
	}
	occ := tr.LevelOccupancy()
	if occ[1] < 0.6 {
		t.Errorf("Fig4: LIGHT occupancy %.0f%%, expected dominant", occ[1]*100)
	}
	// Probing decays: later half has no more switches than the first.
	half := tr.Duration() / 2
	first := tr.SwitchesIn(0, half)
	second := tr.SwitchesIn(half, tr.Duration()+1)
	if second > first {
		t.Errorf("Fig4: switches increased over time (%d -> %d)", first, second)
	}
	out := tr.Render("Fig 4", experiments.LevelNames, 80)
	if !strings.Contains(out, "LIGHT") {
		t.Error("Fig4 render incomplete")
	}
}

func TestFig5TraceProperties(t *testing.T) {
	tr, err := experiments.Fig5Trace(testVolume, 3)
	if err != nil {
		t.Fatal(err)
	}
	// On LOW data with contention the rates of NO, LIGHT and MEDIUM sit
	// inside the α band of one another (Table II: 1313/1440/1481 s), so
	// the algorithm keeps probing among them: Figure 5 shows sustained
	// switching rather than convergence.
	if tr.Switches() < 5 {
		t.Errorf("Fig5: only %d switches; paper shows continued probing", tr.Switches())
	}
	// What must never happen is settling on HEAVY: its rate degradation
	// is far outside α and is reverted within one window.
	occ := tr.LevelOccupancy()
	if occ[3] > 0.15 {
		t.Errorf("Fig5: HEAVY occupancy %.0f%%, should be rare", occ[3]*100)
	}
}

func TestFig6SwitchDetection(t *testing.T) {
	tr, err := experiments.Fig6Switch(0, 3) // full 50 GB: phases are 10 GB
	if err != nil {
		t.Fatal(err)
	}
	// During HIGH phases the scheme should sit at LIGHT; during LOW
	// phases at NO (mostly). Identify phase boundaries by time via the
	// recorded points' kinds... the trace doesn't carry kind, so check
	// occupancy: both NO and LIGHT see substantial time.
	occ := tr.LevelOccupancy()
	if occ[0] < 0.15 || occ[1] < 0.25 {
		t.Errorf("Fig6: occupancy NO=%.0f%% LIGHT=%.0f%%; expected both substantial", occ[0]*100, occ[1]*100)
	}
	if tr.Switches() < 4 {
		t.Errorf("Fig6: only %d switches across 5 compressibility phases", tr.Switches())
	}
}

func TestAblationAlpha(t *testing.T) {
	rows, err := experiments.AblationAlpha(nil, testVolume, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 alpha settings, got %d", len(rows))
	}
	for _, r := range rows {
		if r.CompletionSeconds <= 0 {
			t.Errorf("%s: non-positive completion", r.Label)
		}
	}
	// Small alpha probes more than large alpha.
	if rows[0].LevelSwitches < rows[len(rows)-1].LevelSwitches {
		t.Errorf("alpha=%s switches %d < alpha=%s switches %d; expected more probing at small alpha",
			rows[0].Label, rows[0].LevelSwitches, rows[len(rows)-1].Label, rows[len(rows)-1].LevelSwitches)
	}
	if out := experiments.RenderAblation("A1", rows); !strings.Contains(out, "alpha=0.20") {
		t.Error("A1 render incomplete")
	}
}

func TestAblationWindow(t *testing.T) {
	rows, err := experiments.AblationWindow(nil, testVolume, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 window settings, got %d", len(rows))
	}
	for _, r := range rows {
		if r.CompletionSeconds <= 0 || math.IsNaN(r.CompletionSeconds) {
			t.Errorf("%s: bad completion %v", r.Label, r.CompletionSeconds)
		}
	}
}

func TestAblationBackoff(t *testing.T) {
	rows, err := experiments.AblationBackoff(testVolume, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 variants, got %d", len(rows))
	}
	var paper, disabled experiments.AblationRow
	for _, r := range rows {
		if strings.Contains(r.Label, "paper") {
			paper = r
		}
		if strings.Contains(r.Label, "disabled") {
			disabled = r
		}
	}
	// Without backoff, probing never decays: far more switches and a
	// slower run on the stable Figure 4 scenario.
	if disabled.LevelSwitches <= paper.LevelSwitches {
		t.Errorf("backoff off should switch more: %d vs %d", disabled.LevelSwitches, paper.LevelSwitches)
	}
	if disabled.CompletionSeconds <= paper.CompletionSeconds {
		t.Errorf("backoff off should be slower: %.0f vs %.0f s", disabled.CompletionSeconds, paper.CompletionSeconds)
	}
}

func TestAblationBaselines(t *testing.T) {
	rows, err := experiments.AblationBaselines(testVolume, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 scenarios x (oracle + 5 schemes).
	if len(rows) != 3*6 {
		t.Fatalf("expected 18 rows, got %d", len(rows))
	}
	get := func(scheme, scenario string) float64 {
		for _, r := range rows {
			if r.Scheme == scheme && r.Scenario == scenario {
				return r.Seconds
			}
		}
		t.Fatalf("row %s/%s missing", scheme, scenario)
		return 0
	}
	// DYNAMIC is near the oracle on the paper's own scenario.
	oracle := get("best-static-oracle", "HIGH/KVM/0conns")
	dyn := get("DYNAMIC (paper)", "HIGH/KVM/0conns")
	if dyn > oracle*1.25 {
		t.Errorf("DYNAMIC %.0f s too far above oracle %.0f s", dyn, oracle)
	}
	// On EC2 the metric-driven trained scheme loses to DYNAMIC.
	if get("DYNAMIC (paper)", "HIGH/EC2/0conns") >= get("KrintzSucu", "HIGH/EC2/0conns") {
		t.Error("DYNAMIC should beat KrintzSucu on EC2's fluctuating metrics")
	}
	if out := experiments.RenderBaselines(rows); !strings.Contains(out, "NCTCSys") {
		t.Error("A4 render incomplete")
	}
}

func TestCalibrate(t *testing.T) {
	ms, profiles, err := experiments.Calibrate(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4*3 {
		t.Fatalf("expected 12 measurements, got %d", len(ms))
	}
	if err := cloudsim.ValidateLadder(profiles); err != nil {
		t.Fatalf("calibrated ladder invalid: %v", err)
	}
	byLevel := map[string]map[corpus.Kind]experiments.CodecMeasurement{}
	for _, m := range ms {
		if byLevel[m.Level] == nil {
			byLevel[m.Level] = map[corpus.Kind]experiments.CodecMeasurement{}
		}
		byLevel[m.Level][m.Kind] = m
	}
	// Speed ordering on compressible data: NO > LIGHT > MEDIUM > HEAVY.
	for _, kind := range []corpus.Kind{corpus.High, corpus.Moderate} {
		no := byLevel["NO"][kind].CompMBps
		light := byLevel["LIGHT"][kind].CompMBps
		medium := byLevel["MEDIUM"][kind].CompMBps
		heavy := byLevel["HEAVY"][kind].CompMBps
		if !(no > light && light > medium && medium > heavy) {
			t.Errorf("%v: speed ordering violated: %.0f %.0f %.0f %.0f", kind, no, light, medium, heavy)
		}
		// Ratio ordering: heavier levels compress better.
		if !(byLevel["HEAVY"][kind].Ratio < byLevel["MEDIUM"][kind].Ratio &&
			byLevel["MEDIUM"][kind].Ratio < byLevel["LIGHT"][kind].Ratio) {
			t.Errorf("%v: ratio ordering violated", kind)
		}
	}
	// A calibrated Table II cell runs end to end.
	res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
		Platform:   cloudsim.KVMParavirt,
		Kind:       cloudsim.ConstantKind(corpus.High),
		TotalBytes: 1e9,
		Scheme:     cloudsim.StaticScheme(1),
		Profiles:   profiles,
		Seed:       1,
	})
	if err != nil || res.CompletionSeconds <= 0 {
		t.Fatalf("calibrated transfer failed: %v", err)
	}
	if out := experiments.RenderCalibration(ms); !strings.Contains(out, "LIGHT") {
		t.Error("calibration render incomplete")
	}
}
