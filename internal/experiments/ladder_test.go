package experiments_test

import (
	"strings"
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/experiments"
	"adaptio/internal/stream"
)

func TestCalibrateLadderExtended(t *testing.T) {
	ms, profiles, err := experiments.CalibrateLadder(stream.ExtendedLadder(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 6 || len(ms) != 6*3 {
		t.Fatalf("extended calibration shape: %d profiles, %d measurements", len(profiles), len(ms))
	}
	if err := cloudsim.ValidateLadder(profiles); err != nil {
		t.Fatal(err)
	}
	// The two lzfast-hc parameterizations must differ: deeper search gets
	// a better ratio on compressible data.
	byLevel := map[string]map[string]float64{}
	for _, m := range ms {
		if byLevel[m.Level] == nil {
			byLevel[m.Level] = map[string]float64{}
		}
		byLevel[m.Level][m.Kind.String()] = m.Ratio
	}
	if byLevel["MEDIUM+"]["HIGH"] >= byLevel["MEDIUM-"]["HIGH"] {
		t.Errorf("MEDIUM+ ratio %.3f not better than MEDIUM- %.3f",
			byLevel["MEDIUM+"]["HIGH"], byLevel["MEDIUM-"]["HIGH"])
	}
}

func TestCalibrateLadderRejectsInvalid(t *testing.T) {
	if _, _, err := experiments.CalibrateLadder(nil, 1<<20); err == nil {
		t.Fatal("nil ladder accepted")
	}
}

func TestAblationLadder(t *testing.T) {
	rows, err := experiments.AblationLadder(testVolume, 2011)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*4 {
		t.Fatalf("expected 8 rows, got %d", len(rows))
	}
	// Structural sanity: positive times, both ladders complete every
	// scenario. (Which ladder wins is machine-dependent — that question
	// is exactly what the ablation reports.)
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s/%s: non-positive completion", r.Ladder, r.Scenario)
		}
	}
	out := experiments.RenderLadder(rows)
	for _, want := range []string{"A6", "default-4", "extended-6", "HIGH/3conns"} {
		if !strings.Contains(out, want) {
			t.Errorf("A6 render missing %q", want)
		}
	}
}
