package experiments

import (
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/ratelimit"
	"adaptio/internal/stream"
)

// RealCell is one measurement of the real-bytes Table II analogue.
type RealCell struct {
	Kind     corpus.Kind
	WireMBps float64
	Scheme   string
	Seconds  float64
	AppMBps  float64
	Ratio    float64 // wire/app bytes
	Switches int64
}

// RealTableIIConfig parameterizes the real-bytes sweep.
type RealTableIIConfig struct {
	// VolumeBytes per cell; zero means 24 MB (scaled down from the
	// paper's 50 GB so the sweep finishes in seconds).
	VolumeBytes int64
	// WireMBps are the emulated shared-NIC rates; nil means {80, 11}
	// (uncontended-ish vs heavily contended at the scaled volume).
	WireMBps []float64
	// Window is the decision interval; zero means 50 ms (scaled from 2 s
	// in proportion to the volume scaling).
	Window time.Duration
}

// RealTableII runs the Table II experiment with *real bytes*: the actual
// corpus generators, the actual from-scratch codecs, the production stream
// layer, and a real TCP loopback connection whose writer is token-bucket
// limited to the emulated wire rate. It complements the calibrated
// simulation (TableII): absolute numbers depend on this machine, but the
// orderings — LIGHT wins on compressible data on a starved wire, NO wins on
// incompressible data, DYNAMIC tracks the winner without being told —
// must match the paper.
//
// Schemes swept: NO, LIGHT (static) and DYNAMIC.
func RealTableII(cfg RealTableIIConfig) ([]RealCell, error) {
	if cfg.VolumeBytes == 0 {
		cfg.VolumeBytes = 24 << 20
	}
	if cfg.WireMBps == nil {
		cfg.WireMBps = []float64{80, 11}
	}
	if cfg.Window == 0 {
		cfg.Window = 50 * time.Millisecond
	}
	schemes := []struct {
		name string
		cfg  stream.WriterConfig
	}{
		{"NO", stream.WriterConfig{Static: true, StaticLevel: stream.LevelNo}},
		{"LIGHT", stream.WriterConfig{Static: true, StaticLevel: stream.LevelLight}},
		{"DYNAMIC", stream.WriterConfig{}},
	}
	var cells []RealCell
	for _, kind := range corpus.Kinds() {
		for _, wire := range cfg.WireMBps {
			for _, s := range schemes {
				wcfg := s.cfg
				wcfg.Window = cfg.Window
				cell, err := runRealCell(kind, wire, s.name, wcfg, cfg.VolumeBytes)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

func runRealCell(kind corpus.Kind, wireMBps float64, name string, wcfg stream.WriterConfig, volume int64) (RealCell, error) {
	var cell RealCell
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cell, err
	}
	defer ln.Close()
	recvDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			recvDone <- err
			return
		}
		defer conn.Close()
		r, err := stream.NewReader(conn)
		if err != nil {
			recvDone <- err
			return
		}
		_, err = io.Copy(io.Discard, r)
		recvDone <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return cell, err
	}
	defer conn.Close()
	limited, err := ratelimit.NewWriter(conn, wireMBps*1e6, 64<<10)
	if err != nil {
		return cell, err
	}
	w, err := stream.NewWriter(limited, wcfg)
	if err != nil {
		return cell, err
	}
	start := time.Now()
	if _, err := io.CopyN(w, corpus.NewFileReader(kind, 1), volume); err != nil {
		return cell, err
	}
	if err := w.Close(); err != nil {
		return cell, err
	}
	elapsed := time.Since(start)
	conn.Close()
	if err := <-recvDone; err != nil {
		return cell, fmt.Errorf("receiver: %w", err)
	}
	st := w.Stats()
	return RealCell{
		Kind:     kind,
		WireMBps: wireMBps,
		Scheme:   name,
		Seconds:  elapsed.Seconds(),
		AppMBps:  float64(st.AppBytes) / 1e6 / elapsed.Seconds(),
		Ratio:    float64(st.WireBytes) / float64(st.AppBytes),
		Switches: st.LevelSwitches,
	}, nil
}

// RenderRealTableII formats the real-bytes sweep grouped by wire rate.
func RenderRealTableII(cells []RealCell) string {
	var sb strings.Builder
	sb.WriteString("--- Real-bytes Table II analogue (this machine, real TCP, real codecs) ---\n")
	var last string
	for _, c := range cells {
		group := fmt.Sprintf("%v data, %.0f MB/s wire:", c.Kind, c.WireMBps)
		if group != last {
			fmt.Fprintf(&sb, "%s\n", group)
			last = group
		}
		fmt.Fprintf(&sb, "  %-8s %6.2f s  app %6.1f MB/s  ratio %.3f  switches %d\n",
			c.Scheme, c.Seconds, c.AppMBps, c.Ratio, c.Switches)
	}
	return sb.String()
}
