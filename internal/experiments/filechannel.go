package experiments

import (
	"fmt"
	"strings"

	"adaptio/internal/cloudsim"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
)

// FileChannelRow is one cell of the A5 file-channel experiment.
type FileChannelRow struct {
	Platform cloudsim.Platform
	Kind     corpus.Kind
	Scheme   string
	// CompletionSeconds is when the application finished writing (the
	// VM's view); DurableSeconds is when the bytes actually hit the disk.
	CompletionSeconds float64
	DurableSeconds    float64
	CacheResidentGB   float64
	LevelSwitches     int
	MeanLevel         float64
}

// FileChannel runs the paper's future-work experiment (DESIGN.md A5):
// adaptive compression on *file* channels. On KVM the guest's observed
// write rate tracks the disk, so the rate-based model works as it does for
// the network. On XEN the host page cache feeds the model RAM-speed bursts
// and flush stalls; the experiment quantifies the resulting decision
// quality using durable completion time (when data actually reaches the
// disk) as the honest metric.
func FileChannel(totalBytes int64, seed uint64) ([]FileChannelRow, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	var rows []FileChannelRow
	schemes := []struct {
		name string
		mk   func() cloudsim.Scheme
	}{
		{"NO", func() cloudsim.Scheme { return cloudsim.StaticScheme(0) }},
		{"LIGHT", func() cloudsim.Scheme { return cloudsim.StaticScheme(1) }},
		{"MEDIUM", func() cloudsim.Scheme { return cloudsim.StaticScheme(2) }},
		{"HEAVY", func() cloudsim.Scheme { return cloudsim.StaticScheme(3) }},
		{"DYNAMIC", func() cloudsim.Scheme { return core.MustNewDecider(core.Config{Levels: 4}) }},
	}
	for _, platform := range []cloudsim.Platform{cloudsim.KVMParavirt, cloudsim.XenParavirt} {
		for _, kind := range []corpus.Kind{corpus.High, corpus.Low} {
			for _, s := range schemes {
				res, err := cloudsim.RunFileTransfer(cloudsim.TransferConfig{
					Platform:   platform,
					Kind:       cloudsim.ConstantKind(kind),
					TotalBytes: totalBytes,
					Scheme:     s.mk(),
					Profiles:   cloudsim.ReferenceProfiles(),
					Seed:       seed ^ uint64(platform)<<16 ^ uint64(kind)<<8,
				})
				if err != nil {
					return nil, err
				}
				rows = append(rows, FileChannelRow{
					Platform:          platform,
					Kind:              kind,
					Scheme:            s.name,
					CompletionSeconds: res.CompletionSeconds,
					DurableSeconds:    res.DurableSeconds,
					CacheResidentGB:   float64(res.CacheResidentAtCompletion) / 1e9,
					LevelSwitches:     res.LevelSwitches,
					MeanLevel:         res.MeanLevel(),
				})
			}
		}
	}
	return rows, nil
}

// RenderFileChannel formats the A5 rows grouped by platform and kind.
func RenderFileChannel(rows []FileChannelRow) string {
	var sb strings.Builder
	sb.WriteString("--- Ablation A5 (paper future work): adaptive compression on file channels ---\n")
	sb.WriteString("completion = VM's view of job end; durable = data actually on disk.\n")
	var last string
	for _, r := range rows {
		group := fmt.Sprintf("%v, %v data:", r.Platform, r.Kind)
		if group != last {
			fmt.Fprintf(&sb, "%s\n", group)
			last = group
		}
		fmt.Fprintf(&sb, "  %-8s completion %6.0f s  durable %6.0f s  cached %5.1f GB  switches %3d  mean lvl %.2f\n",
			r.Scheme, r.CompletionSeconds, r.DurableSeconds, r.CacheResidentGB, r.LevelSwitches, r.MeanLevel)
	}
	return sb.String()
}
