package experiments

import (
	"fmt"

	"adaptio/internal/cloudsim"
	"adaptio/internal/compress"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/stream"
)

// CalibrateLadder measures an arbitrary compression-level ladder on the
// corpus and returns the profile ladder for the simulator (the generalized
// form of Calibrate, which covers the default four levels).
func CalibrateLadder(ladder compress.Ladder, sampleBytes int) ([]CodecMeasurement, []cloudsim.CodecProfile, error) {
	if err := ladder.Validate(); err != nil {
		return nil, nil, err
	}
	if sampleBytes <= 0 {
		sampleBytes = 4 << 20
	}
	var ms []CodecMeasurement
	profiles := make([]cloudsim.CodecProfile, len(ladder))
	for li, lvl := range ladder {
		profiles[li] = cloudsim.CodecProfile{
			Name:       lvl.Name,
			CompMBps:   map[corpus.Kind]float64{},
			DecompMBps: map[corpus.Kind]float64{},
			Ratio:      map[corpus.Kind]float64{},
		}
		for _, kind := range corpus.Kinds() {
			m, err := measureCodec(lvl.Name, lvl.Codec, kind, sampleBytes)
			if err != nil {
				return nil, nil, err
			}
			ms = append(ms, m)
			profiles[li].CompMBps[kind] = m.CompMBps
			profiles[li].DecompMBps[kind] = m.DecompMBps
			profiles[li].Ratio[kind] = m.Ratio
		}
	}
	if err := cloudsim.ValidateLadder(profiles); err != nil {
		return nil, nil, fmt.Errorf("experiments: calibrated profiles invalid: %w", err)
	}
	return ms, profiles, nil
}

// LadderRow is one (ladder, scenario) outcome of the A6 ablation.
type LadderRow struct {
	Ladder   string
	Scenario string
	Seconds  float64
	Switches int
}

// AblationLadder (A6) compares the paper's four-level ladder against the
// six-level extended ladder (same algorithms at more parameter settings),
// both live-calibrated from this repository's real codecs, on scenarios
// with different bandwidth pressure. It answers the paper's open question
// of whether more levels help: extra levels cost probing but offer finer
// rate/ratio tradeoffs when bandwidth is scarce.
func AblationLadder(totalBytes int64, seed uint64) ([]LadderRow, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	ladders := []struct {
		name   string
		ladder compress.Ladder
	}{
		{"default-4", stream.DefaultLadder()},
		{"extended-6", stream.ExtendedLadder()},
	}
	type scenario struct {
		name string
		kind corpus.Kind
		bg   int
	}
	scenarios := []scenario{
		{"HIGH/0conns", corpus.High, 0},
		{"HIGH/3conns", corpus.High, 3},
		{"MODERATE/3conns", corpus.Moderate, 3},
		{"LOW/0conns", corpus.Low, 0},
	}
	var rows []LadderRow
	for _, l := range ladders {
		_, profiles, err := CalibrateLadder(l.ladder, 2<<20)
		if err != nil {
			return nil, err
		}
		for _, sc := range scenarios {
			res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
				Platform:   cloudsim.KVMParavirt,
				Kind:       cloudsim.ConstantKind(sc.kind),
				TotalBytes: totalBytes,
				Background: sc.bg,
				Scheme:     core.MustNewDecider(core.Config{Levels: len(l.ladder)}),
				Profiles:   profiles,
				Seed:       seed,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, LadderRow{
				Ladder:   l.name,
				Scenario: sc.name,
				Seconds:  res.CompletionSeconds,
				Switches: res.LevelSwitches,
			})
		}
	}
	return rows, nil
}

// RenderLadder formats the A6 rows.
func RenderLadder(rows []LadderRow) string {
	out := "--- Ablation A6: ladder size (live-calibrated codecs) ---\n"
	out += fmt.Sprintf("%-14s %-18s %12s %10s\n", "ladder", "scenario", "completion/s", "switches")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %-18s %12.0f %10d\n", r.Ladder, r.Scenario, r.Seconds, r.Switches)
	}
	return out
}
