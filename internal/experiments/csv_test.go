package experiments_test

import (
	"encoding/csv"
	"strings"
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/experiments"
	"adaptio/internal/trace"
)

// parseCSV asserts well-formed CSV and returns the records.
func parseCSV(t *testing.T, content string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(content)).ReadAll()
	if err != nil {
		t.Fatalf("malformed CSV: %v", err)
	}
	if len(recs) < 2 {
		t.Fatalf("CSV has no data rows:\n%s", content)
	}
	for i, r := range recs {
		if len(r) != len(recs[0]) {
			t.Fatalf("row %d has %d fields, header has %d", i, len(r), len(recs[0]))
		}
	}
	return recs
}

func TestCSVExports(t *testing.T) {
	fig1, err := experiments.Fig1CPUAccuracy(120, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, experiments.CSVFig1(fig1))
	// 20 platform/op pairs: every one has a vm row, 16 have a host row.
	if got := len(recs) - 1; got != 20+16 {
		t.Fatalf("fig1 CSV has %d rows, want 36", got)
	}

	dist, err := experiments.Fig2NetThroughput(2e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, experiments.CSVDist(dist))) - 1; got != 5 {
		t.Fatalf("fig2 CSV has %d rows, want 5", got)
	}

	table, err := experiments.TableII(experiments.TableIIConfig{
		TotalBytes: 2e9, Runs: 1, Platform: cloudsim.KVMParavirt, Backgrounds: []int{0, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, table.CSVTableII())) - 1; got != 3*2*5 {
		t.Fatalf("table2 CSV has %d rows, want 30", got)
	}

	tr := trace.New(4)
	tr.Add(trace.Point{Time: 2, Level: 1, AppMBps: 10, WireMBps: 5, CPUPct: 50})
	if got := len(parseCSV(t, experiments.CSVTrace(tr))) - 1; got != 1 {
		t.Fatalf("trace CSV has %d rows, want 1", got)
	}

	a3, err := experiments.AblationBackoff(2e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	parseCSV(t, experiments.CSVAblation(a3))

	a4, err := experiments.AblationBaselines(2e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	parseCSV(t, experiments.CSVBaselines(a4))

	a5, err := experiments.FileChannel(2e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	parseCSV(t, experiments.CSVFileChannel(a5))

	ms, _, err := experiments.Calibrate(1 << 19)
	if err != nil {
		t.Fatal(err)
	}
	parseCSV(t, experiments.CSVCalibration(ms))

	cells := []experiments.RealCell{{Scheme: "NO", WireMBps: 10, Seconds: 1, AppMBps: 10, Ratio: 1}}
	parseCSV(t, experiments.CSVRealTableII(cells))
}
