package experiments_test

// Shape-fidelity suite: the paper's qualitative success criteria, encoded as
// deterministic seeded assertions against the simulator at small volume so
// they run on every `go test ./...`. These are tier-1 regression gates: any
// change to the decision model, the codec profiles, or the transfer model
// that breaks the *shape* of the paper's results (not just its absolute
// numbers) fails here.
//
// All transfers simulate 2 GB — far below the paper's 50 GB, but the
// simulator is a discrete-event model whose shape properties are volume
// independent (experiments_test.go exercises 10 GB, the root bench harness
// the full volume).

import (
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/experiments"
)

const (
	shapeVolume int64  = 2e9
	shapeSeed   uint64 = 1
	shapeRuns          = 3
	// shapeGapBound is the suite's DYNAMIC-vs-best-static acceptance bound
	// on single cells: the paper's 22% plus a little room for the short
	// 2 GB transfers. The revert sentinel below proves the bound has
	// teeth: with the revert rule disabled the measured gap more than
	// doubles past it (>= 0.46 across seeds).
	shapeGapBound = 0.25
)

// meanStatic returns the mean completion time of a static-level transfer
// over shapeRuns seeded repetitions.
func meanStatic(t *testing.T, kind corpus.Kind, bg, level int) float64 {
	t.Helper()
	var sum float64
	for run := uint64(0); run < shapeRuns; run++ {
		r, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
			Platform:   cloudsim.KVMParavirt, // the paper's evaluation platform
			Kind:       cloudsim.ConstantKind(kind),
			TotalBytes: shapeVolume,
			Background: bg,
			Scheme:     cloudsim.StaticScheme(level),
			Profiles:   cloudsim.ReferenceProfiles(),
			Seed:       shapeSeed ^ run<<16 ^ uint64(bg)<<8 ^ uint64(level)<<4,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += r.CompletionSeconds
	}
	return sum / shapeRuns
}

// meanDynamic is meanStatic for the adaptive decision model, with the
// revert-on-degradation rule optionally disabled (the sentinel's knob).
func meanDynamic(t *testing.T, kind corpus.Kind, bg int, disableRevert bool) float64 {
	t.Helper()
	var sum float64
	for run := uint64(0); run < shapeRuns; run++ {
		r, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
			Platform:   cloudsim.KVMParavirt,
			Kind:       cloudsim.ConstantKind(kind),
			TotalBytes: shapeVolume,
			Background: bg,
			Scheme:     core.MustNewDecider(core.Config{Levels: 4, DisableRevert: disableRevert}),
			Profiles:   cloudsim.ReferenceProfiles(),
			Seed:       shapeSeed ^ run<<16 ^ uint64(bg)<<8,
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += r.CompletionSeconds
	}
	return sum / shapeRuns
}

// TestShapeLightBeatsNoOnHigh: on highly compressible data even the
// lightest compression level must clearly beat raw transfer at every
// background load — Table II's HIGH column, where compression multiplies
// the effective 1 Gbit/s link.
func TestShapeLightBeatsNoOnHigh(t *testing.T) {
	for _, bg := range []int{0, 1, 2, 3} {
		no := meanStatic(t, corpus.High, bg, 0)
		light := meanStatic(t, corpus.High, bg, 1)
		if light >= no {
			t.Errorf("bg=%d: LIGHT %.1fs not faster than NO %.1fs on HIGH data", bg, light, no)
		}
		if bg == 0 && no/light < 1.5 {
			t.Errorf("bg=0: LIGHT only %.2fx faster than NO on HIGH data, want >= 1.5x", no/light)
		}
	}
}

// TestShapeNoTiesLightOnLow: on incompressible data NO and LIGHT must end
// up in the same ballpark — light compression wastes little enough CPU that
// neither choice is a disaster (Table II's "not compressible" column).
// Contrast with HIGH above, where they differ by multiples.
func TestShapeNoTiesLightOnLow(t *testing.T) {
	for _, bg := range []int{0, 1, 2, 3} {
		no := meanStatic(t, corpus.Low, bg, 0)
		light := meanStatic(t, corpus.Low, bg, 1)
		ratio := light / no
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > 1.30 {
			t.Errorf("bg=%d: NO %.1fs vs LIGHT %.1fs differ by %.2fx on LOW data, want a near-tie (<= 1.30x)",
				bg, no, light, ratio)
		}
	}
}

// TestShapeHeavyLosesAtGigabit: at 1 Gbit/s the CPU cost of the heaviest
// level dominates everything — HEAVY must lose to both NO and LIGHT on
// every compressibility and background load, by a wide margin (the paper:
// "the heavy compression scheme is unable to provide any advantage").
func TestShapeHeavyLosesAtGigabit(t *testing.T) {
	for _, kind := range corpus.Kinds() {
		for _, bg := range []int{0, 1, 2, 3} {
			no := meanStatic(t, kind, bg, 0)
			light := meanStatic(t, kind, bg, 1)
			heavy := meanStatic(t, kind, bg, 3)
			best := no
			if light < best {
				best = light
			}
			if heavy <= no || heavy <= light {
				t.Errorf("%v bg=%d: HEAVY %.1fs does not lose (NO %.1fs, LIGHT %.1fs)", kind, bg, heavy, no, light)
			}
			if heavy < 2*best {
				t.Errorf("%v bg=%d: HEAVY %.1fs only %.1fx the best static %.1fs, want >= 2x",
					kind, bg, heavy, heavy/best, best)
			}
		}
	}
}

// TestShapeDynamicWithin22Pct: the paper's headline bound — DYNAMIC at most
// 22% worse than the best statically chosen level on every Table II cell.
// Cells where the measured gap exceeds the bound are accepted only when the
// gap is not statistically significant (Welch's t at 5%): the 2 GB
// transfers are short enough that single cells are run-to-run noisy, which
// is exactly the escape hatch VerifyClaims uses at full volume.
func TestShapeDynamicWithin22Pct(t *testing.T) {
	res, err := experiments.TableII(experiments.TableIIConfig{
		TotalBytes: shapeVolume,
		Runs:       shapeRuns,
		Platform:   cloudsim.KVMParavirt,
		Seed:       shapeSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range res.Kinds {
		for _, bg := range res.Backgrounds {
			g := res.DynamicGap(kind, bg)
			if g > 0.22 && res.DynamicGapSignificant(kind, bg) {
				t.Errorf("%v bg=%d: DYNAMIC %.0f%% worse than best static (significant), paper bound is 22%%",
					kind, bg, g*100)
			}
		}
	}
}

// TestShapeGuestCPUUnderReporting: Section II's motivation — guest CPU
// metrics inside a VM wildly under-report the true cost of network sends.
// The headline gap lives on KVM with paravirtualized I/O (virtio queues
// hide the host's entire network stack from the guest; the accounting
// table encodes ~9.5x, the paper reports up to an order of magnitude);
// fully emulated KVM is the paper's documented small-discrepancy case and
// must still under-report, just not by multiples.
func TestShapeGuestCPUUnderReporting(t *testing.T) {
	rows, err := experiments.Fig1CPUAccuracy(120, shapeSeed)
	if err != nil {
		t.Fatal(err)
	}
	var sawParavirt, sawFull bool
	for _, r := range rows {
		if r.Op != cloudsim.NetSend {
			continue
		}
		switch r.Platform {
		case cloudsim.KVMParavirt:
			sawParavirt = true
			if gap := r.GapFactor(); gap < 5 {
				t.Errorf("KVM paravirt net-send: guest under-reports only %.1fx, want >= 5x", gap)
			}
		case cloudsim.KVMFull:
			sawFull = true
			if r.Guest.Total() >= r.Host.Total() {
				t.Errorf("KVM full net-send: guest %.0f%% >= host %.0f%%, guest must under-report",
					r.Guest.Total(), r.Host.Total())
			}
		}
	}
	if !sawParavirt || !sawFull {
		t.Fatal("Fig1 rows missing KVM net-send entries")
	}
}

// TestShapeSentinelRevertDisabled proves the suite genuinely depends on the
// paper's revert-on-degradation rule rather than on simulator accidents:
// with core.Config.DisableRevert the decider keeps drifting toward heavy
// levels on incompressible data (nothing undoes a bad probe), and the very
// bound the suite enforces for the real decider is violated by a wide
// margin. If a future change neuters the revert path, this test and
// TestShapeDynamicWithin22Pct fail together.
func TestShapeSentinelRevertDisabled(t *testing.T) {
	no := meanStatic(t, corpus.Low, 0, 0)
	light := meanStatic(t, corpus.Low, 0, 1)
	best := no
	if light < best {
		best = light
	}
	enabled := meanDynamic(t, corpus.Low, 0, false)
	disabled := meanDynamic(t, corpus.Low, 0, true)

	enabledGap := enabled/best - 1
	disabledGap := disabled/best - 1
	if enabledGap > shapeGapBound {
		t.Errorf("LOW bg=0: real decider %.0f%% over best static, want <= %.0f%%",
			enabledGap*100, shapeGapBound*100)
	}
	if disabledGap <= shapeGapBound {
		t.Errorf("LOW bg=0: revert-disabled decider only %.0f%% over best static — the shape bound no longer "+
			"detects a neutered revert rule (measured %.1fs vs enabled %.1fs)",
			disabledGap*100, disabled, enabled)
	}
	if disabled <= enabled {
		t.Errorf("disabling revert did not hurt: %.1fs vs %.1fs", disabled, enabled)
	}
}
