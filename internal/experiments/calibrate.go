package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"adaptio/internal/cloudsim"
	"adaptio/internal/compress"
	"adaptio/internal/corpus"
	"adaptio/internal/stream"
)

// CodecMeasurement is one live measurement of a codec on one corpus kind.
type CodecMeasurement struct {
	Level      string
	Kind       corpus.Kind
	CompMBps   float64
	DecompMBps float64
	Ratio      float64
}

// Calibrate measures this repository's own codecs (the default ladder) on
// the synthetic corpus and returns both the raw measurements and a
// cloudsim profile ladder built from them. It is the live alternative to
// cloudsim.ReferenceProfiles: run the 50 GB experiments against what *this*
// machine's codecs actually deliver instead of the paper's hardware.
//
// sampleBytes is the per-measurement volume (zero means 4 MB). Measurements
// use the stream layer's 128 KB blocks, like production traffic.
func Calibrate(sampleBytes int) ([]CodecMeasurement, []cloudsim.CodecProfile, error) {
	return CalibrateLadder(stream.DefaultLadder(), sampleBytes)
}

func measureCodec(name string, codec compress.Codec, kind corpus.Kind, sampleBytes int) (CodecMeasurement, error) {
	// Measure on the real Canterbury file when ADAPTIO_CANTERBURY_DIR is
	// set, otherwise on the synthetic stand-in, looped to the sample size.
	file, _ := corpus.LoadOrGenerate(kind, 1)
	data := make([]byte, sampleBytes)
	if _, err := io.ReadFull(corpus.NewLoopReader(file), data); err != nil {
		return CodecMeasurement{}, err
	}
	const block = stream.DefaultBlockSize

	// Warm up once so one-time allocation costs do not skew the timing.
	warm := codec.Compress(nil, data[:block])
	if _, err := codec.Decompress(nil, warm, block); err != nil {
		return CodecMeasurement{}, fmt.Errorf("experiments: %s/%v warmup: %w", name, kind, err)
	}

	var compBytes int
	var blocks [][]byte
	start := time.Now()
	for off := 0; off < len(data); off += block {
		end := off + block
		if end > len(data) {
			end = len(data)
		}
		c := codec.Compress(nil, data[off:end])
		compBytes += len(c)
		blocks = append(blocks, c)
	}
	compSec := time.Since(start).Seconds()

	start = time.Now()
	var out []byte
	for i, c := range blocks {
		size := block
		if (i+1)*block > len(data) {
			size = len(data) - i*block
		}
		var err error
		out, err = codec.Decompress(out[:0], c, size)
		if err != nil {
			return CodecMeasurement{}, fmt.Errorf("experiments: %s/%v decompress: %w", name, kind, err)
		}
	}
	decompSec := time.Since(start).Seconds()
	_ = out

	mb := float64(len(data)) / 1e6
	m := CodecMeasurement{
		Level:      name,
		Kind:       kind,
		CompMBps:   mb / maxFloat(compSec, 1e-9),
		DecompMBps: mb / maxFloat(decompSec, 1e-9),
		Ratio:      minFloat(float64(compBytes)/float64(len(data)), 1.0),
	}
	return m, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// RenderCalibration formats the live measurements next to the reference
// profile the Table II sweep uses.
func RenderCalibration(ms []CodecMeasurement) string {
	ref := cloudsim.ReferenceProfiles()
	refByName := map[string]cloudsim.CodecProfile{}
	for _, p := range ref {
		refByName[p.Name] = p
	}
	var sb strings.Builder
	sb.WriteString("--- Codec calibration: this repo's codecs vs paper-derived reference ---\n")
	fmt.Fprintf(&sb, "%-8s %-9s %12s %12s %8s %14s %10s\n",
		"level", "data", "comp MB/s", "decomp MB/s", "ratio", "ref comp MB/s", "ref ratio")
	for _, m := range ms {
		rp, ok := refByName[m.Level]
		refComp, refRatio := 0.0, 0.0
		if ok {
			refComp = rp.CompMBps[m.Kind]
			refRatio = rp.Ratio[m.Kind]
		}
		fmt.Fprintf(&sb, "%-8s %-9s %12.0f %12.0f %8.3f %14.0f %10.2f\n",
			m.Level, m.Kind, m.CompMBps, m.DecompMBps, m.Ratio, refComp, refRatio)
	}
	return sb.String()
}
