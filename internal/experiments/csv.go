package experiments

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"adaptio/internal/trace"
)

// The CSV exporters emit the raw data behind each figure/table so the
// paper's plots can be regenerated with any plotting tool (the text renders
// are for terminals; these are for gnuplot/matplotlib).

func writeCSV(rows [][]string) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	// csv.Writer on a strings.Builder cannot fail.
	_ = w.WriteAll(rows)
	w.Flush()
	return sb.String()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// CSVFig1 exports the Figure 1 accuracy rows.
func CSVFig1(rows []Fig1Row) string {
	out := [][]string{{
		"operation", "platform", "view", "usr", "sys", "hirq", "sirq", "steal", "total",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Op.String(), r.Platform.String(), "vm",
			f(r.Guest.USR), f(r.Guest.SYS), f(r.Guest.HIRQ), f(r.Guest.SIRQ), f(r.Guest.STEAL), f(r.Guest.Total()),
		})
		if r.HostVisible {
			out = append(out, []string{
				r.Op.String(), r.Platform.String(), "host",
				f(r.Host.USR), f(r.Host.SYS), f(r.Host.HIRQ), f(r.Host.SIRQ), f(r.Host.STEAL), f(r.Host.Total()),
			})
		}
	}
	return writeCSV(out)
}

// CSVDist exports Figure 2/3 distribution rows.
func CSVDist(rows []DistRow) string {
	out := [][]string{{
		"platform", "n", "mean", "sd", "min", "q1", "median", "q3", "max", "cache_resident_bytes",
	}}
	for _, r := range rows {
		s := r.Summary
		out = append(out, []string{
			r.Platform.String(), strconv.Itoa(s.N),
			f(s.Mean), f(s.SD), f(s.Min), f(s.Q1), f(s.Median), f(s.Q3), f(s.Max),
			strconv.FormatInt(r.CacheResidentBytes, 10),
		})
	}
	return writeCSV(out)
}

// CSVTableII exports the completion-time grid.
func (r TableIIResult) CSVTableII() string {
	out := [][]string{{"kind", "background", "scheme", "mean_seconds", "sd_seconds"}}
	for _, kind := range r.Kinds {
		for _, bg := range r.Backgrounds {
			for si, name := range SchemeNames {
				c := r.Cells[kind][bg][si]
				out = append(out, []string{
					kind.String(), strconv.Itoa(bg), name, f(c.Mean), f(c.SD),
				})
			}
		}
	}
	return writeCSV(out)
}

// CSVTrace exports a Figure 4/5/6 time series.
func CSVTrace(tr *trace.Trace) string {
	out := [][]string{{"time_s", "level", "app_mbps", "wire_mbps", "cpu_pct"}}
	for _, p := range tr.Points() {
		out = append(out, []string{
			f(p.Time), strconv.Itoa(p.Level), f(p.AppMBps), f(p.WireMBps), f(p.CPUPct),
		})
	}
	return writeCSV(out)
}

// CSVAblation exports A1-A3 rows.
func CSVAblation(rows []AblationRow) string {
	out := [][]string{{"variant", "completion_seconds", "level_switches", "mean_level"}}
	for _, r := range rows {
		out = append(out, []string{
			r.Label, f(r.CompletionSeconds), strconv.Itoa(r.LevelSwitches), f(r.MeanLevel),
		})
	}
	return writeCSV(out)
}

// CSVBaselines exports the A4 grid.
func CSVBaselines(rows []BaselineRow) string {
	out := [][]string{{"scenario", "scheme", "completion_seconds"}}
	for _, r := range rows {
		out = append(out, []string{r.Scenario, r.Scheme, f(r.Seconds)})
	}
	return writeCSV(out)
}

// CSVFileChannel exports the A5 grid.
func CSVFileChannel(rows []FileChannelRow) string {
	out := [][]string{{
		"platform", "kind", "scheme", "completion_seconds", "durable_seconds",
		"cache_resident_gb", "level_switches", "mean_level",
	}}
	for _, r := range rows {
		out = append(out, []string{
			r.Platform.String(), r.Kind.String(), r.Scheme,
			f(r.CompletionSeconds), f(r.DurableSeconds), f(r.CacheResidentGB),
			strconv.Itoa(r.LevelSwitches), f(r.MeanLevel),
		})
	}
	return writeCSV(out)
}

// CSVCalibration exports the live codec measurements.
func CSVCalibration(ms []CodecMeasurement) string {
	out := [][]string{{"level", "kind", "comp_mbps", "decomp_mbps", "ratio"}}
	for _, m := range ms {
		out = append(out, []string{
			m.Level, m.Kind.String(), f(m.CompMBps), f(m.DecompMBps), f(m.Ratio),
		})
	}
	return writeCSV(out)
}

// CSVRealTableII exports the real-bytes sweep.
func CSVRealTableII(cells []RealCell) string {
	out := [][]string{{"kind", "wire_mbps", "scheme", "seconds", "app_mbps", "ratio", "switches"}}
	for _, c := range cells {
		out = append(out, []string{
			c.Kind.String(), f(c.WireMBps), c.Scheme, f(c.Seconds), f(c.AppMBps), f(c.Ratio),
			fmt.Sprintf("%d", c.Switches),
		})
	}
	return writeCSV(out)
}
