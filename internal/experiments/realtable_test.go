package experiments_test

import (
	"testing"
	"time"

	"adaptio/internal/corpus"
	"adaptio/internal/experiments"
)

// TestRealTableIISingleContention runs a reduced real-bytes sweep (one wire
// rate, small volume) and checks the paper's orderings with real codecs on
// real TCP. It is skipped in -short mode because it runs in real time.
func TestRealTableIISingleContention(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time sweep")
	}
	cells, err := experiments.RealTableII(experiments.RealTableIIConfig{
		VolumeBytes: 12 << 20,
		WireMBps:    []float64{10},
		Window:      40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*3 {
		t.Fatalf("expected 9 cells, got %d", len(cells))
	}
	get := func(kind corpus.Kind, scheme string) experiments.RealCell {
		for _, c := range cells {
			if c.Kind == kind && c.Scheme == scheme {
				return c
			}
		}
		t.Fatalf("cell %v/%s missing", kind, scheme)
		return experiments.RealCell{}
	}
	// On a starved wire, LIGHT crushes NO on compressible data.
	noHigh, lightHigh := get(corpus.High, "NO"), get(corpus.High, "LIGHT")
	if lightHigh.Seconds >= noHigh.Seconds*0.6 {
		t.Errorf("HIGH: LIGHT %.1fs not clearly faster than NO %.1fs", lightHigh.Seconds, noHigh.Seconds)
	}
	// DYNAMIC tracks the winner on compressible data within a generous
	// real-time margin (probing plus timer jitter on a 12 MB run).
	dynHigh := get(corpus.High, "DYNAMIC")
	if dynHigh.Seconds > noHigh.Seconds {
		t.Errorf("HIGH: DYNAMIC %.1fs worse than NO %.1fs", dynHigh.Seconds, noHigh.Seconds)
	}
	// On incompressible data nothing helps; DYNAMIC must stay close to NO.
	noLow, dynLow := get(corpus.Low, "NO"), get(corpus.Low, "DYNAMIC")
	if dynLow.Seconds > noLow.Seconds*1.35 {
		t.Errorf("LOW: DYNAMIC %.1fs much worse than NO %.1fs", dynLow.Seconds, noLow.Seconds)
	}
	out := experiments.RenderRealTableII(cells)
	if out == "" {
		t.Fatal("empty render")
	}
}
