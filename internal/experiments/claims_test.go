package experiments_test

import (
	"strings"
	"testing"

	"adaptio/internal/experiments"
)

// TestAllPaperClaimsReproduce is the reproduction's acceptance test: every
// quantitative claim in the checklist must pass at the paper's full volume.
func TestAllPaperClaimsReproduce(t *testing.T) {
	claims, err := experiments.VerifyClaims(experiments.FiftyGB, 2011)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 9 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: %s\n  paper: %s\n  measured: %s", c.ID, c.Text, c.Paper, c.Measured)
		}
	}
	if !experiments.AllPass(claims) && !t.Failed() {
		t.Error("AllPass disagrees with individual claims")
	}
	out := experiments.RenderClaims(claims)
	for _, want := range []string{"PASS", "S4-22pct", "claims reproduced"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestClaimsStableAcrossSeeds guards against a lucky-seed reproduction: the
// checklist must hold for several seeds.
func TestClaimsStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []uint64{1, 7, 1337} {
		claims, err := experiments.VerifyClaims(experiments.FiftyGB, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range claims {
			if !c.Pass {
				t.Errorf("seed %d: claim %s failed (measured: %s)", seed, c.ID, c.Measured)
			}
		}
	}
}
