package experiments_test

// Scenario shape suite: every built-in scenario of the DSL
// (internal/scenario) is a deterministic regression surface — its claims
// encode a qualitative property of the paper's physics under a workload
// class the paper never ran, and each claim is paired with a rig that must
// break it. This file is the tier-1 gate over that matrix:
//
//   - TestScenarioBuiltinClaimsPass: all claims hold on honest runs;
//   - TestScenarioRigMatrix: every rig breaks exactly the claims it
//     targets (scenario.RigTargets) — proving the claims are load-bearing
//     and the rigs stay sharp, the DisableRevert/CheatFreeze sentinel
//     pattern applied to whole scenarios.
//
// The 1000-VM nightly scenario is skipped under -short; everything else
// simulates minutes-to-hours of fleet time in tens of milliseconds.

import (
	"sort"
	"strings"
	"testing"

	"adaptio/internal/scenario"
)

func runBuiltin(t *testing.T, name string, rig scenario.Rig) *scenario.Result {
	t.Helper()
	sc := scenario.Lookup(name)
	if sc == nil {
		t.Fatalf("built-in %q missing", name)
	}
	res, err := scenario.Run(sc, scenario.Options{Parallel: 4, Rig: rig})
	if err != nil {
		t.Fatalf("scenario %s (rig %q): %v", name, rig, err)
	}
	return res
}

func TestScenarioBuiltinClaimsPass(t *testing.T) {
	builtins := scenario.Builtins()
	if len(builtins) < 5 {
		t.Fatalf("catalog has %d built-ins, want >= 5", len(builtins))
	}
	for _, sc := range builtins {
		name := sc.Name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "diurnal-lossy-1000" {
				t.Skip("nightly-scale scenario skipped under -short")
			}
			res := runBuiltin(t, name, scenario.RigNone)
			if len(res.Claims) < 2 {
				t.Fatalf("built-in %s carries %d claims; every built-in needs at least 2", name, len(res.Claims))
			}
			for _, c := range res.Claims {
				if !c.Pass {
					t.Errorf("claim %s FAILED: %s", c.Name, c.Detail)
				} else {
					t.Logf("claim %s: %s", c.Name, c.Detail)
				}
			}
		})
	}
}

// TestScenarioRigMatrix walks the full rig catalog. For each (rig, scenario)
// pair the rig must flip its targeted claims to FAIL while leaving every
// other claim of that scenario passing — "exactly its targets" is the
// property that keeps both the claims and the rigs honest: a rig that
// breaks nothing is dead weight, and one that breaks untargeted claims
// means the claims are entangled with the wrong mechanism.
func TestScenarioRigMatrix(t *testing.T) {
	targetsByRig := scenario.RigTargets()
	if len(targetsByRig) == 0 {
		t.Fatal("RigTargets is empty")
	}
	for rig, scens := range targetsByRig {
		for name, targets := range scens {
			rig, name, targets := rig, name, targets
			t.Run(string(rig)+"/"+name, func(t *testing.T) {
				res := runBuiltin(t, name, rig)
				failed := map[string]string{}
				for _, c := range res.Claims {
					if !c.Pass {
						failed[c.Name] = c.Detail
					}
				}
				for _, want := range targets {
					if detail, ok := failed[want]; !ok {
						t.Errorf("rig %s did not break claim %s — the sentinel has gone soft", rig, want)
					} else {
						t.Logf("rig %s broke %s as designed: %s", rig, want, detail)
						delete(failed, want)
					}
				}
				for claim, detail := range failed {
					t.Errorf("rig %s broke untargeted claim %s: %s", rig, claim, detail)
				}
			})
		}
	}
}

// TestScenarioRigCoverage keeps the claim/rig bookkeeping consistent: every
// rig-targeted claim must exist in its scenario's registry, and the rigged
// scenario set must span most of the catalog.
func TestScenarioRigCoverage(t *testing.T) {
	rigged := map[string]bool{}
	for rig, scens := range scenario.RigTargets() {
		for name, targets := range scens {
			rigged[name] = true
			registered := map[string]bool{}
			for _, c := range scenario.ClaimsFor(name) {
				registered[c.Name] = true
			}
			for _, want := range targets {
				if !registered[want] {
					t.Errorf("rig %s targets unknown claim %s/%s", rig, name, want)
				}
			}
		}
	}
	var names []string
	for n := range rigged {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) < 4 {
		t.Errorf("only %d built-ins have rig coverage (%s); want >= 4",
			len(names), strings.Join(names, ", "))
	}
}
