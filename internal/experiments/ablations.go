package experiments

import (
	"fmt"
	"strings"

	"adaptio/internal/baseline"
	"adaptio/internal/cloudsim"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
)

// AblationRow is one parameter setting's outcome on a fixed scenario.
type AblationRow struct {
	Label             string
	CompletionSeconds float64
	LevelSwitches     int
	MeanLevel         float64
}

// runAblation executes one transfer with the given scheme.
func runAblation(label string, scheme cloudsim.Scheme, kind corpus.Kind, bg int, totalBytes int64, seed uint64) (AblationRow, error) {
	res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
		Platform:   cloudsim.KVMParavirt,
		Kind:       cloudsim.ConstantKind(kind),
		TotalBytes: totalBytes,
		Background: bg,
		Scheme:     scheme,
		Profiles:   cloudsim.ReferenceProfiles(),
		Seed:       seed,
	})
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Label:             label,
		CompletionSeconds: res.CompletionSeconds,
		LevelSwitches:     res.LevelSwitches,
		MeanLevel:         res.MeanLevel(),
	}, nil
}

// AblationAlpha sweeps the tolerance parameter α on the MODERATE/2-conns
// scenario (DESIGN.md A1): small α reacts to small gains but is noise-prone,
// large α goes blind to real level differences. The paper found 0.2
// reasonable.
func AblationAlpha(alphas []float64, totalBytes int64, seed uint64) ([]AblationRow, error) {
	if alphas == nil {
		alphas = []float64{0.05, 0.1, 0.2, 0.3, 0.5}
	}
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	var rows []AblationRow
	for _, a := range alphas {
		dec := core.MustNewDecider(core.Config{Levels: 4, Alpha: a})
		row, err := runAblation(fmt.Sprintf("alpha=%.2f", a), dec, corpus.Moderate, 2, totalBytes, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationWindow sweeps the decision interval t (DESIGN.md A2) on the
// Figure 6 workload where responsiveness matters: data compressibility
// flips every 10 GB.
func AblationWindow(windows []float64, totalBytes int64, seed uint64) ([]AblationRow, error) {
	if windows == nil {
		windows = []float64{0.5, 1, 2, 4, 8}
	}
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	phase := totalBytes / 5 // five compressibility phases, as in Figure 6
	if phase < 1 {
		phase = 1
	}
	var rows []AblationRow
	for _, w := range windows {
		res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
			Platform:      cloudsim.KVMParavirt,
			Kind:          cloudsim.AlternatingKinds(phase, corpus.High, corpus.Low),
			TotalBytes:    totalBytes,
			Background:    0,
			WindowSeconds: w,
			Scheme:        core.MustNewDecider(core.Config{Levels: 4}),
			Profiles:      cloudsim.ReferenceProfiles(),
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Label:             fmt.Sprintf("t=%.1fs", w),
			CompletionSeconds: res.CompletionSeconds,
			LevelSwitches:     res.LevelSwitches,
			MeanLevel:         res.MeanLevel(),
		})
	}
	return rows, nil
}

// AblationBackoff compares the full algorithm against backoff-disabled and
// backoff-capped variants (DESIGN.md A3) on the Figure 4 scenario, where
// backoff is what makes probing decay.
func AblationBackoff(totalBytes int64, seed uint64) ([]AblationRow, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	variants := []struct {
		label string
		cfg   core.Config
	}{
		{"backoff=exponential (paper)", core.Config{Levels: 4}},
		{"backoff=disabled", core.Config{Levels: 4, DisableBackoff: true}},
		{"backoff=capped(4)", core.Config{Levels: 4, MaxBackoffExp: 4}},
	}
	var rows []AblationRow
	for _, v := range variants {
		row, err := runAblation(v.label, core.MustNewDecider(v.cfg), corpus.High, 0, totalBytes, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BaselineRow is one scheme's outcome on one scenario of the A4 ablation.
type BaselineRow struct {
	Scheme   string
	Scenario string
	Seconds  float64
}

// AblationBaselines runs the related-work decision models and the paper's
// DYNAMIC scheme on three scenarios chosen to expose metric-skew failures:
// incompressible data (trained models keep compressing), EC2's fluctuating
// bandwidth (sensor-driven models flap), and the paper's own HIGH/no-load
// case (everyone should find LIGHT).
func AblationBaselines(totalBytes int64, seed uint64) ([]BaselineRow, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	type scenario struct {
		name     string
		platform cloudsim.Platform
		kind     corpus.Kind
		bg       int
	}
	scenarios := []scenario{
		{"HIGH/KVM/0conns", cloudsim.KVMParavirt, corpus.High, 0},
		{"LOW/KVM/0conns", cloudsim.KVMParavirt, corpus.Low, 0},
		{"HIGH/EC2/0conns", cloudsim.EC2, corpus.High, 0},
	}
	train := baseline.DefaultTraining()
	type namedScheme struct {
		name   string
		scheme cloudsim.Scheme
	}
	mkSchemes := func() ([]namedScheme, error) {
		ks, err := baseline.NewKrintzSucu(train)
		if err != nil {
			return nil, err
		}
		jt, err := baseline.NewJeannot(train)
		if err != nil {
			return nil, err
		}
		wm, err := baseline.NewWiseman(4)
		if err != nil {
			return nil, err
		}
		return []namedScheme{
			{"DYNAMIC (paper)", core.MustNewDecider(core.Config{Levels: 4})},
			{"NCTCSys", baseline.NewNCTCSys(4)},
			{"KrintzSucu", ks},
			{"Jeannot(AdOC)", jt},
			{"Wiseman", wm},
		}, nil
	}
	var rows []BaselineRow
	for _, sc := range scenarios {
		schemes, err := mkSchemes()
		if err != nil {
			return nil, err
		}
		// Oracle: best static level for the scenario, found by sweep.
		bestSeconds := 0.0
		for lvl := 0; lvl < 4; lvl++ {
			res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
				Platform:   sc.platform,
				Kind:       cloudsim.ConstantKind(sc.kind),
				TotalBytes: totalBytes,
				Background: sc.bg,
				Scheme:     cloudsim.StaticScheme(lvl),
				Profiles:   cloudsim.ReferenceProfiles(),
				Seed:       seed,
			})
			if err != nil {
				return nil, err
			}
			if lvl == 0 || res.CompletionSeconds < bestSeconds {
				bestSeconds = res.CompletionSeconds
			}
		}
		rows = append(rows, BaselineRow{Scheme: "best-static-oracle", Scenario: sc.name, Seconds: bestSeconds})
		for _, ns := range schemes {
			res, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
				Platform:   sc.platform,
				Kind:       cloudsim.ConstantKind(sc.kind),
				TotalBytes: totalBytes,
				Background: sc.bg,
				Scheme:     ns.scheme,
				Profiles:   cloudsim.ReferenceProfiles(),
				Seed:       seed,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, BaselineRow{Scheme: ns.name, Scenario: sc.name, Seconds: res.CompletionSeconds})
		}
	}
	return rows, nil
}

// RenderAblation formats ablation rows.
func RenderAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s ---\n", title)
	fmt.Fprintf(&sb, "%-28s %12s %10s %10s\n", "variant", "completion/s", "switches", "mean lvl")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-28s %12.0f %10d %10.2f\n", r.Label, r.CompletionSeconds, r.LevelSwitches, r.MeanLevel)
	}
	return sb.String()
}

// RenderBaselines formats the A4 grid grouped by scenario.
func RenderBaselines(rows []BaselineRow) string {
	var sb strings.Builder
	sb.WriteString("--- Ablation A4: decision models under virtualized metrics ---\n")
	byScenario := map[string][]BaselineRow{}
	var order []string
	for _, r := range rows {
		if _, ok := byScenario[r.Scenario]; !ok {
			order = append(order, r.Scenario)
		}
		byScenario[r.Scenario] = append(byScenario[r.Scenario], r)
	}
	for _, sc := range order {
		fmt.Fprintf(&sb, "%s:\n", sc)
		for _, r := range byScenario[sc] {
			fmt.Fprintf(&sb, "  %-20s %8.0f s\n", r.Scheme, r.Seconds)
		}
	}
	return sb.String()
}
