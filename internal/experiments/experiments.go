// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index): the metric-accuracy
// study of Section II (Figures 1–3), the Table II completion-time grid, the
// adaptivity traces (Figures 4–6), and the ablation studies A1–A4. Each
// experiment has a Render function producing the text equivalent of the
// paper's plot or table; cmd/expdriver prints them and the root
// bench_test.go exposes one testing.B benchmark per experiment.
package experiments

import (
	"fmt"
	"strings"

	"adaptio/internal/cloudsim"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/metrics"
	"adaptio/internal/stats"
	"adaptio/internal/trace"
)

// FiftyGB is the data volume of the paper's transfer experiments.
const FiftyGB int64 = 50e9

// SchemeNames lists Table II's rows in order; index 0..3 are the static
// levels, index 4 is the adaptive scheme.
var SchemeNames = []string{"NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC"}

// Dynamic is the scheme index of the adaptive decision model.
const Dynamic = 4

// newScheme builds the scheme for a Table II row.
func newScheme(idx int) cloudsim.Scheme {
	if idx == Dynamic {
		return core.MustNewDecider(core.Config{Levels: 4})
	}
	return cloudsim.StaticScheme(idx)
}

// ---------- Figure 1 ----------

// Fig1Row is one platform/operation cell of Figure 1: the averaged sampled
// CPU breakdown as displayed inside the VM and as observed on the host.
type Fig1Row struct {
	Platform    cloudsim.Platform
	Op          cloudsim.IOOp
	Guest       cloudsim.CPUBreakdown
	Host        cloudsim.CPUBreakdown
	HostVisible bool
	Samples     int
}

// GapFactor returns host/guest total utilization (the paper's "factor 15").
func (r Fig1Row) GapFactor() float64 {
	if !r.HostVisible || r.Guest.Total() == 0 {
		return 0
	}
	return r.Host.Total() / r.Guest.Total()
}

// Fig1CPUAccuracy reproduces the Figure 1 methodology: for every platform
// and I/O operation it samples the guest's and the host's /proc/stat-style
// counters at 1 s intervals through the real metrics.Sampler and averages at
// least `samples` individual measurements (the paper used >= 120).
func Fig1CPUAccuracy(samples int, seed uint64) ([]Fig1Row, error) {
	if samples < 1 {
		samples = 120
	}
	var rows []Fig1Row
	for _, op := range cloudsim.IOOps() {
		for _, p := range cloudsim.Platforms() {
			guestTruth, hostTruth, hostVisible := cloudsim.Accounting(p, op)
			guestAvg, err := sampleBreakdown(guestTruth, samples, seed^uint64(p)<<8^uint64(op))
			if err != nil {
				return nil, err
			}
			row := Fig1Row{Platform: p, Op: op, Guest: guestAvg, HostVisible: hostVisible, Samples: samples}
			if hostVisible {
				hostAvg, err := sampleBreakdown(hostTruth, samples, seed^uint64(p)<<8^uint64(op)^0xB0B)
				if err != nil {
					return nil, err
				}
				row.Host = hostAvg
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sampleBreakdown runs the 1 s delta-sampling loop against simulated
// counters and averages the utilization split.
func sampleBreakdown(truth cloudsim.CPUBreakdown, samples int, seed uint64) (cloudsim.CPUBreakdown, error) {
	counters := cloudsim.NewStatCounters(truth, seed)
	src := metrics.FuncSource(func() (string, error) {
		counters.Advance(1.0)
		return counters.ProcStat(), nil
	})
	sampler := metrics.NewSampler(src)
	var agg cloudsim.CPUBreakdown
	n := 0
	for n < samples {
		u, ok, err := sampler.Sample()
		if err != nil {
			return agg, err
		}
		if !ok {
			continue
		}
		agg = agg.Add(cloudsim.CPUBreakdown{USR: u.USR, SYS: u.SYS, HIRQ: u.HIRQ, SIRQ: u.SIRQ, STEAL: u.STEAL})
		n++
	}
	return agg.Scale(1 / float64(n)), nil
}

// RenderFig1 formats the Figure 1 rows as four per-operation tables.
func RenderFig1(rows []Fig1Row) string {
	var sb strings.Builder
	byOp := map[cloudsim.IOOp][]Fig1Row{}
	for _, r := range rows {
		byOp[r.Op] = append(byOp[r.Op], r)
	}
	for _, op := range cloudsim.IOOps() {
		fmt.Fprintf(&sb, "--- Figure 1: %s ---\n", op)
		fmt.Fprintf(&sb, "%-16s %-5s %6s %6s %6s %6s %6s %7s\n",
			"platform", "view", "USR", "SYS", "HIRQ", "SIRQ", "STEAL", "total")
		for _, r := range byOp[op] {
			fmt.Fprintf(&sb, "%-16s %-5s %6.1f %6.1f %6.1f %6.1f %6.1f %7.1f\n",
				r.Platform, "VM", r.Guest.USR, r.Guest.SYS, r.Guest.HIRQ, r.Guest.SIRQ, r.Guest.STEAL, r.Guest.Total())
			if r.HostVisible {
				fmt.Fprintf(&sb, "%-16s %-5s %6.1f %6.1f %6.1f %6.1f %6.1f %7.1f  (gap %.1fx)\n",
					"", "Host", r.Host.USR, r.Host.SYS, r.Host.HIRQ, r.Host.SIRQ, r.Host.STEAL, r.Host.Total(), r.GapFactor())
			} else {
				fmt.Fprintf(&sb, "%-16s %-5s %s\n", "", "Host", "(not observable)")
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---------- Figures 2 and 3 ----------

// DistRow is one platform's throughput distribution.
type DistRow struct {
	Platform cloudsim.Platform
	Summary  stats.Summary
	// CacheResidentBytes is nonzero when data remained in the host page
	// cache after the run (Figure 3, XEN).
	CacheResidentBytes int64
}

// Fig2NetThroughput reproduces Figure 2: the distribution of per-20 MB
// network send throughput (MBit/s) observed inside the sending VM on every
// platform.
func Fig2NetThroughput(totalBytes int64, seed uint64) ([]DistRow, error) {
	var rows []DistRow
	for _, p := range cloudsim.Platforms() {
		samples, err := cloudsim.NetThroughputSamples(p, totalBytes, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DistRow{Platform: p, Summary: stats.Summarize(samples)})
	}
	return rows, nil
}

// Fig3FileWriteThroughput reproduces Figure 3: the distribution of per-20 MB
// file write throughput (MB/s) observed inside the VM, including the XEN
// host-page-cache anomaly.
func Fig3FileWriteThroughput(totalBytes int64, seed uint64) ([]DistRow, error) {
	var rows []DistRow
	for _, p := range cloudsim.Platforms() {
		samples, err := cloudsim.FileWriteSamples(p, totalBytes, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DistRow{
			Platform:           p,
			Summary:            stats.Summarize(samples),
			CacheResidentBytes: cloudsim.CacheResident(p, totalBytes, seed),
		})
	}
	return rows, nil
}

// RenderDist formats distribution rows as a box-plot table.
func RenderDist(title, unit string, rows []DistRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s ---\n", title)
	fmt.Fprintf(&sb, "%-16s %8s %8s %8s %8s %8s %8s %8s %8s\n",
		"platform", "mean", "sd", "min", "q1", "median", "q3", "max", "unit")
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(&sb, "%-16s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8s",
			r.Platform, s.Mean, s.SD, s.Min, s.Q1, s.Median, s.Q3, s.Max, unit)
		if r.CacheResidentBytes > 0 {
			fmt.Fprintf(&sb, "  [%0.1f GB still in host cache]", float64(r.CacheResidentBytes)/1e9)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---------- Table II ----------

// Cell is a mean (SD) completion-time entry.
type Cell struct {
	Mean float64
	SD   float64
}

// TableIIResult holds the full grid: [kind][background][scheme].
type TableIIResult struct {
	Kinds       []corpus.Kind
	Backgrounds []int
	Cells       map[corpus.Kind]map[int][]Cell
	Runs        int
	TotalBytes  int64
}

// TableIIConfig parameterizes the Table II sweep.
type TableIIConfig struct {
	// TotalBytes per transfer; zero means the paper's 50 GB.
	TotalBytes int64
	// Runs per cell (the paper averaged multiple runs); zero means 5.
	Runs int
	// Platform; the paper evaluated on KVM with paravirtualized I/O.
	Platform cloudsim.Platform
	Seed     uint64
	// Backgrounds lists the concurrent-connection counts; nil means 0..3.
	Backgrounds []int
	// Profiles overrides the codec profile ladder; nil means the
	// paper-derived cloudsim.ReferenceProfiles. Pass the ladder from
	// Calibrate to sweep Table II against this machine's real codecs.
	Profiles []cloudsim.CodecProfile
}

// TableII runs the paper's central experiment: completion times of a bulk
// transfer for every (compressibility, background connections, scheme)
// combination, averaged over Runs repetitions.
func TableII(cfg TableIIConfig) (TableIIResult, error) {
	if cfg.TotalBytes == 0 {
		cfg.TotalBytes = FiftyGB
	}
	if cfg.Runs == 0 {
		cfg.Runs = 5
	}
	if cfg.Backgrounds == nil {
		cfg.Backgrounds = []int{0, 1, 2, 3}
	}
	if cfg.Profiles == nil {
		cfg.Profiles = cloudsim.ReferenceProfiles()
	}
	res := TableIIResult{
		Kinds:       corpus.Kinds(),
		Backgrounds: cfg.Backgrounds,
		Cells:       map[corpus.Kind]map[int][]Cell{},
		Runs:        cfg.Runs,
		TotalBytes:  cfg.TotalBytes,
	}
	for _, kind := range res.Kinds {
		res.Cells[kind] = map[int][]Cell{}
		for _, bg := range cfg.Backgrounds {
			cells := make([]Cell, len(SchemeNames))
			for si := range SchemeNames {
				times := make([]float64, cfg.Runs)
				for run := 0; run < cfg.Runs; run++ {
					r, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
						Platform:   cfg.Platform,
						Kind:       cloudsim.ConstantKind(kind),
						TotalBytes: cfg.TotalBytes,
						Background: bg,
						Scheme:     newScheme(si),
						Profiles:   cfg.Profiles,
						Seed:       cfg.Seed ^ uint64(kind)<<40 ^ uint64(bg)<<32 ^ uint64(si)<<24 ^ uint64(run),
					})
					if err != nil {
						return res, err
					}
					times[run] = r.CompletionSeconds
				}
				mean, sd := stats.MeanStdDev(times)
				cells[si] = Cell{Mean: mean, SD: sd}
			}
			res.Cells[kind][bg] = cells
		}
	}
	return res, nil
}

// Best returns the scheme index with the lowest mean in a cell group.
func (r TableIIResult) Best(kind corpus.Kind, bg int) int {
	cells := r.Cells[kind][bg]
	best := 0
	for i := range cells {
		if cells[i].Mean < cells[best].Mean {
			best = i
		}
	}
	return best
}

// DynamicGap returns how far DYNAMIC is above the best *static* scheme, as
// a fraction (0.1 = 10% worse). The paper's bound is 0.22.
func (r TableIIResult) DynamicGap(kind corpus.Kind, bg int) float64 {
	cells := r.Cells[kind][bg]
	best := cells[0].Mean
	for _, c := range cells[1:4] {
		if c.Mean < best {
			best = c.Mean
		}
	}
	return cells[Dynamic].Mean/best - 1
}

// DynamicGapSignificant reports whether the DYNAMIC-vs-best-static gap is
// statistically significant at the two-sided 5% level (Welch's t on the
// cell summaries). An insignificant gap means DYNAMIC is within run-to-run
// noise of the best static choice.
func (r TableIIResult) DynamicGapSignificant(kind corpus.Kind, bg int) bool {
	cells := r.Cells[kind][bg]
	best := cells[0]
	for _, c := range cells[1:4] {
		if c.Mean < best.Mean {
			best = c
		}
	}
	t, df := stats.WelchTSummary(cells[Dynamic].Mean, cells[Dynamic].SD, r.Runs, best.Mean, best.SD, r.Runs)
	return stats.SignificantAt05(t, df)
}

// Render formats the grid in the paper's layout: one block per background
// count, columns HIGH/MODERATE/LOW, rows NO..DYNAMIC, best mean in [].
func (r TableIIResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- Table II: completion times in seconds, mean (SD) over %d runs, %.0f GB ---\n",
		r.Runs, float64(r.TotalBytes)/1e9)
	for _, bg := range r.Backgrounds {
		fmt.Fprintf(&sb, "%d concurrent TCP connection(s):\n", bg)
		fmt.Fprintf(&sb, "%-9s", "")
		for _, k := range r.Kinds {
			fmt.Fprintf(&sb, " %16s", k)
		}
		sb.WriteString("\n")
		for si, name := range SchemeNames {
			fmt.Fprintf(&sb, "%-9s", name)
			for _, k := range r.Kinds {
				c := r.Cells[k][bg][si]
				mark := " "
				if r.Best(k, bg) == si {
					mark = "*"
				}
				fmt.Fprintf(&sb, " %9.0f (%3.0f)%s", c.Mean, c.SD, mark)
			}
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "%-9s", "dyn gap")
		for _, k := range r.Kinds {
			sig := " (ns)" // not significant: within run-to-run noise
			if r.DynamicGapSignificant(k, bg) {
				sig = "     "
			}
			fmt.Fprintf(&sb, " %10.0f%%%s", r.DynamicGap(k, bg)*100, sig)
		}
		sb.WriteString("\n\n")
	}
	return sb.String()
}

// ---------- Figures 4, 5, 6 ----------

// runTrace executes one traced transfer and returns its trace.
func runTrace(kind cloudsim.KindSchedule, bg int, totalBytes int64, seed uint64) (*trace.Trace, error) {
	tr := trace.New(4)
	_, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
		Platform:   cloudsim.KVMParavirt,
		Kind:       kind,
		TotalBytes: totalBytes,
		Background: bg,
		Scheme:     core.MustNewDecider(core.Config{Levels: 4}),
		Profiles:   cloudsim.ReferenceProfiles(),
		Seed:       seed,
		Trace: func(ws cloudsim.WindowSample) {
			tr.Add(trace.Point{
				Time:     ws.Time,
				Level:    ws.Level,
				AppMBps:  ws.AppMBps,
				WireMBps: ws.WireMBps,
				CPUPct:   ws.GuestCPU.Total(),
			})
		},
	})
	return tr, err
}

// Fig4Trace reproduces Figure 4: the adaptive scheme on highly compressible
// data with no background traffic. The trace shows fast convergence to
// LIGHT and exponentially rarer probing.
func Fig4Trace(totalBytes int64, seed uint64) (*trace.Trace, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	return runTrace(cloudsim.ConstantKind(corpus.High), 0, totalBytes, seed)
}

// Fig5Trace reproduces Figure 5: hardly compressible data with two
// concurrent background connections; level differences sit inside the α
// band so probing continues throughout.
func Fig5Trace(totalBytes int64, seed uint64) (*trace.Trace, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	return runTrace(cloudsim.ConstantKind(corpus.Low), 2, totalBytes, seed)
}

// Fig6Switch reproduces Figure 6: the data compressibility alternates
// between HIGH and LOW across five phases (the paper: every 10 GB of a
// 50 GB transfer; at reduced volumes the phase length scales so the five
// phases are preserved). The scheme must detect the switches and change
// levels accordingly.
func Fig6Switch(totalBytes int64, seed uint64) (*trace.Trace, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	phase := totalBytes / 5
	if phase < 1 {
		phase = 1
	}
	return runTrace(cloudsim.AlternatingKinds(phase, corpus.High, corpus.Low), 0, totalBytes, seed)
}

// LevelNames are the paper's names for the default ladder.
var LevelNames = []string{"NO", "LIGHT", "MEDIUM", "HEAVY"}
