package experiments

import (
	"fmt"
	"math"
	"strings"

	"adaptio/internal/cloudsim"
	"adaptio/internal/corpus"
)

// Claim is one quantitative statement from the paper checked against this
// reproduction.
type Claim struct {
	// ID is a short handle; Text quotes or paraphrases the paper.
	ID   string
	Text string
	// Paper is the paper's value (prose), Measured the reproduction's.
	Paper    string
	Measured string
	Pass     bool
}

// VerifyClaims runs the experiments behind the paper's headline quantitative
// claims and reports a pass/fail checklist. It is the one-shot answer to
// "does this reproduction actually reproduce the paper?" — cmd/expdriver
// prints it with -claims, and the test suite requires every claim to pass.
func VerifyClaims(totalBytes int64, seed uint64) ([]Claim, error) {
	if totalBytes == 0 {
		totalBytes = FiftyGB
	}
	var claims []Claim

	// --- Section II-A: CPU accounting gaps ---
	fig1, err := Fig1CPUAccuracy(120, seed)
	if err != nil {
		return nil, err
	}
	worstGap, allUnderReport := 0.0, true
	for _, r := range fig1 {
		if g := r.GapFactor(); g > worstGap {
			worstGap = g
		}
		if r.HostVisible && r.Platform != cloudsim.Native && r.Guest.Total() >= r.Host.Total() {
			allUnderReport = false
		}
	}
	claims = append(claims, Claim{
		ID:       "S2A-gap",
		Text:     "displayed CPU utilization gap 'can grow up to a factor of 15' (XEN file read)",
		Paper:    "up to 15x",
		Measured: fmt.Sprintf("worst gap %.1fx", worstGap),
		Pass:     worstGap >= 8,
	}, Claim{
		ID:       "S2A-universal",
		Text:     "discrepancy 'can be found across all considered I/O operations and virtualization techniques'",
		Paper:    "all virtualized platform/op pairs under-report",
		Measured: fmt.Sprintf("under-reporting on all pairs: %v", allUnderReport),
		Pass:     allUnderReport,
	})

	// --- Section II-B: throughput fluctuation ---
	fig2, err := Fig2NetThroughput(minVolume(totalBytes, 10e9), seed)
	if err != nil {
		return nil, err
	}
	var covNative, covEC2, covKVM float64
	for _, r := range fig2 {
		cov := r.Summary.SD / math.Max(r.Summary.Mean, 1)
		switch r.Platform {
		case cloudsim.Native:
			covNative = cov
		case cloudsim.EC2:
			covEC2 = cov
		case cloudsim.KVMParavirt:
			covKVM = cov
		}
	}
	claims = append(claims, Claim{
		ID:       "S2B-ec2",
		Text:     "EC2 shows 'heavy throughput variations' vs marginal increase on the local cloud",
		Paper:    "EC2 >> local cloud >= native",
		Measured: fmt.Sprintf("CoV native %.3f, KVM %.3f, EC2 %.3f", covNative, covKVM, covEC2),
		Pass:     covEC2 > 5*covKVM && covKVM > covNative,
	})

	fig3, err := Fig3FileWriteThroughput(minVolume(totalBytes, 20e9), seed)
	if err != nil {
		return nil, err
	}
	var xen DistRow
	var kvmMean float64
	for _, r := range fig3 {
		if r.Platform == cloudsim.XenParavirt {
			xen = r
		}
		if r.Platform == cloudsim.KVMParavirt {
			kvmMean = r.Summary.Mean
		}
	}
	claims = append(claims, Claim{
		ID:       "S2B-xen-cache",
		Text:     "XEN file writes: rate 'occasionally appeared exceedingly high' then 'dropped to a few MB/s'; data remains in host memory",
		Paper:    "bimodal + spuriously high mean + GBs unflushed",
		Measured: fmt.Sprintf("max %.0f MB/s, min %.1f MB/s, mean %.0f vs KVM %.0f, %.1f GB cached", xen.Summary.Max, xen.Summary.Min, xen.Summary.Mean, kvmMean, float64(xen.CacheResidentBytes)/1e9),
		Pass:     xen.Summary.Max > 500 && xen.Summary.Min < 10 && xen.Summary.Mean > kvmMean && xen.CacheResidentBytes > 1<<30,
	})

	// --- Section IV / Table II ---
	table, err := TableII(TableIIConfig{
		TotalBytes: totalBytes,
		Runs:       3,
		Platform:   cloudsim.KVMParavirt,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	worstDyn := 0.0
	for _, kind := range table.Kinds {
		for _, bg := range table.Backgrounds {
			if g := table.DynamicGap(kind, bg); g > worstDyn {
				worstDyn = g
			}
		}
	}
	claims = append(claims, Claim{
		ID:       "S4-22pct",
		Text:     "adaptive completion times 'at most 22% worse than the fastest ... statically set compression levels'",
		Paper:    "<= 22%",
		Measured: fmt.Sprintf("worst DYNAMIC gap %.0f%%", worstDyn*100),
		Pass:     worstDyn <= 0.22,
	})

	no := table.Cells[corpus.High][3][0].Mean
	dyn := table.Cells[corpus.High][3][Dynamic].Mean
	claims = append(claims, Claim{
		ID:       "S4-4x",
		Text:     "'improved the overall application throughput up to a factor of 4'",
		Paper:    ">= 4x vs no compression",
		Measured: fmt.Sprintf("%.1fx on HIGH data with 3 background connections", no/dyn),
		Pass:     no/dyn >= 4,
	})

	lightBest := true
	for _, bg := range table.Backgrounds {
		if table.Best(corpus.High, bg) != 1 {
			lightBest = false
		}
	}
	claims = append(claims, Claim{
		ID:       "S4-light-high",
		Text:     "LIGHT (QuickLZ fast) is the fastest static level on highly compressible data (Table II bold)",
		Paper:    "LIGHT fastest at every contention level",
		Measured: fmt.Sprintf("LIGHT fastest on HIGH at all contention levels: %v", lightBest),
		Pass:     lightBest,
	})

	// --- Figure 4: convergence and backoff decay ---
	fig4, err := Fig4Trace(totalBytes, seed)
	if err != nil {
		return nil, err
	}
	occ := fig4.LevelOccupancy()
	half := fig4.Duration() / 2
	firstHalf := fig4.SwitchesIn(0, half)
	secondHalf := fig4.SwitchesIn(half, fig4.Duration()+1)
	claims = append(claims, Claim{
		ID:       "F4-converge",
		Text:     "the algorithm 'can quickly determine ... LIGHT ... to result in the best overall application data rate'",
		Paper:    "locks onto LIGHT; probing decays exponentially",
		Measured: fmt.Sprintf("LIGHT occupancy %.0f%%, switches first/second half %d/%d", occ[1]*100, firstHalf, secondHalf),
		Pass:     occ[1] >= 0.7 && secondHalf <= firstHalf,
	})

	// --- Figure 6: compressibility switching ---
	fig6, err := Fig6Switch(totalBytes, seed)
	if err != nil {
		return nil, err
	}
	occ6 := fig6.LevelOccupancy()
	claims = append(claims, Claim{
		ID:       "F6-switch",
		Text:     "'our decision algorithm detected the changes in the data compressibility correctly and switched the compression level accordingly'",
		Paper:    "levels track HIGH/LOW phases",
		Measured: fmt.Sprintf("occupancy NO %.0f%% / LIGHT %.0f%%, %d switches across 5 phases", occ6[0]*100, occ6[1]*100, fig6.Switches()),
		Pass:     occ6[0] >= 0.15 && occ6[1] >= 0.2 && fig6.Switches() >= 4,
	})

	// --- No-training-phase design goal ---
	// Structural: the Decider needs no calibration inputs; we verify the
	// behavioural consequence — the very first windows already adapt
	// (first probe happens on observation one).
	firstSwitchTime := math.Inf(1)
	for _, p := range fig4.Points() {
		if p.Level != 0 {
			firstSwitchTime = p.Time
			break
		}
	}
	claims = append(claims, Claim{
		ID:       "S3-no-training",
		Text:     "'without requiring any calibration or training phase' — adaptation starts immediately",
		Paper:    "no offline phase",
		Measured: fmt.Sprintf("first level engaged after %.0f s (first windows)", firstSwitchTime),
		Pass:     firstSwitchTime <= 3*core2Seconds,
	})

	return claims, nil
}

// core2Seconds is the paper's decision window (t = 2 s).
const core2Seconds = 2.0

func minVolume(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// RenderClaims formats the checklist.
func RenderClaims(claims []Claim) string {
	var sb strings.Builder
	sb.WriteString("--- Paper claims checklist ---\n")
	pass := 0
	for _, c := range claims {
		mark := "FAIL"
		if c.Pass {
			mark = "PASS"
			pass++
		}
		fmt.Fprintf(&sb, "[%s] %-14s %s\n", mark, c.ID, c.Text)
		fmt.Fprintf(&sb, "       paper:    %s\n", c.Paper)
		fmt.Fprintf(&sb, "       measured: %s\n", c.Measured)
	}
	fmt.Fprintf(&sb, "%d/%d claims reproduced\n", pass, len(claims))
	return sb.String()
}

// AllPass reports whether every claim passed.
func AllPass(claims []Claim) bool {
	for _, c := range claims {
		if !c.Pass {
			return false
		}
	}
	return true
}
