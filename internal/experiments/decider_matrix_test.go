package experiments

import (
	"testing"

	"adaptio/internal/core"
)

// The decider-matrix acceptance suite: every learned policy must beat the
// paper baseline on the two-axis bound (within-or-better completion time in
// every Table II cell AND strictly fewer wasted probes over the grid), and
// the CheatStick sentinel must fail it. These are the teeth of the policy
// registry — a policy change that games one axis at the other's expense
// fails here before any baseline is regenerated.

func ciMatrix(t *testing.T) DeciderMatrixResult {
	t.Helper()
	res, err := DeciderMatrix(DeciderMatrixConfig{Seed: 2011})
	if err != nil {
		t.Fatalf("DeciderMatrix: %v", err)
	}
	return res
}

func TestDeciderMatrixTwoAxisBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy matrix skipped under -short")
	}
	res := ciMatrix(t)
	for _, policy := range []string{core.PolicyBandit, core.PolicyEWMA} {
		for _, v := range res.CheckBound(policy, core.PolicyAlgorithmOne, DefaultThroughputTolerance) {
			t.Errorf("%s violates the %s axis: %s", v.Policy, v.Axis, v.Detail)
		}
	}
	// The bound must not be vacuous: the baseline has to actually waste
	// probes for "strictly lower" to mean anything.
	if _, wasted := res.Totals(core.PolicyAlgorithmOne); wasted == 0 {
		t.Fatal("AlgorithmOne wasted no probes across the whole grid — the probe-economy axis is vacuous")
	}
}

// TestCheatStickFailsMatrixBound proves the bound is genuinely two-axis: the
// never-probe sentinel trivially wins the probe-economy axis (zero waste)
// and must be caught by the throughput axis. If this test ever passes the
// sentinel, the throughput tolerance has gone soft and the wasted-probe
// numbers of the learned policies are no longer evidence of anything.
func TestCheatStickFailsMatrixBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy matrix skipped under -short")
	}
	res := ciMatrix(t)
	violations := res.CheckBound(core.PolicyCheatStick, core.PolicyAlgorithmOne, DefaultThroughputTolerance)
	if len(violations) == 0 {
		t.Fatal("CheatStick passed the two-axis bound — the throughput axis has no teeth")
	}
	for _, v := range violations {
		if v.Axis != "throughput" {
			t.Errorf("CheatStick violated the %s axis (%s); the sentinel must win probe economy and lose throughput", v.Axis, v.Detail)
		}
	}
	// And the half-bound it is designed to exploit: zero wasted probes.
	if _, wasted := res.Totals(core.PolicyCheatStick); wasted != 0 {
		t.Errorf("CheatStick wasted %d probes; the sentinel must never probe", wasted)
	}
}

// TestDeciderMatrixBenchFile pins the artifact contract the benchdiff
// decider gate consumes: one entry per cell plus a totals entry per policy,
// all under the given set name.
func TestDeciderMatrixBenchFile(t *testing.T) {
	res, err := DeciderMatrix(DeciderMatrixConfig{
		Policies:    []string{core.PolicyAlgorithmOne},
		TotalBytes:  200e6,
		Runs:        1,
		Backgrounds: []int{0, 1},
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("DeciderMatrix: %v", err)
	}
	f := res.ToBenchFile("test artifact", "current")
	wantBenches := len(res.Kinds)*2 + 1 // cells + totals
	if got := len(f.Benchmarks); got != wantBenches {
		t.Fatalf("artifact has %d benchmarks, want %d: %v", got, wantBenches, f.Names())
	}
	totals, ok := f.Benchmarks["Decider/algone/totals"]["current"]
	if !ok {
		t.Fatal("artifact is missing the Decider/algone/totals entry")
	}
	p, w := res.Totals(core.PolicyAlgorithmOne)
	if totals.Probes != int64(p) || totals.WastedProbes != int64(w) {
		t.Fatalf("totals entry carries probes=%d wasted=%d, matrix says %d/%d",
			totals.Probes, totals.WastedProbes, p, w)
	}
	for name, sets := range f.Benchmarks {
		if name == "Decider/algone/totals" {
			continue
		}
		if m := sets["current"]; m.MBPerS <= 0 {
			t.Errorf("cell %s has no throughput measurement: %+v", name, m)
		}
	}
}
