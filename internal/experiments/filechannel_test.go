package experiments_test

import (
	"strings"
	"testing"

	"adaptio/internal/cloudsim"
	"adaptio/internal/corpus"
	"adaptio/internal/experiments"
)

// a5Rows runs A5 at the full 50 GB: the XEN page-cache distortion only
// manifests once writes outlast the 3 GB dirty limit several times over.
func a5Rows(t *testing.T) map[string]experiments.FileChannelRow {
	t.Helper()
	rows, err := experiments.FileChannel(experiments.FiftyGB, 2011)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]experiments.FileChannelRow{}
	for _, r := range rows {
		m[r.Platform.String()+"/"+r.Kind.String()+"/"+r.Scheme] = r
	}
	return m
}

func TestFileChannelGrid(t *testing.T) {
	rows, err := experiments.FileChannel(testVolume, 2011)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*5 {
		t.Fatalf("expected 20 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.CompletionSeconds <= 0 || r.DurableSeconds < r.CompletionSeconds {
			t.Errorf("%v/%v/%s: implausible times %v/%v", r.Platform, r.Kind, r.Scheme,
				r.CompletionSeconds, r.DurableSeconds)
		}
	}
	out := experiments.RenderFileChannel(rows)
	for _, want := range []string{"A5", "durable", "XEN", "DYNAMIC"} {
		if !strings.Contains(out, want) {
			t.Errorf("A5 render missing %q", want)
		}
	}
}

// TestFileChannelKVMBehavesLikeNetwork: without the cache anomaly the
// rate-based model works on file channels exactly as on network channels.
func TestFileChannelKVMBehavesLikeNetwork(t *testing.T) {
	m := a5Rows(t)
	dyn := m["KVM (Parav.)/HIGH/DYNAMIC"]
	light := m["KVM (Parav.)/HIGH/LIGHT"]
	if dyn.CompletionSeconds > light.CompletionSeconds*1.22 {
		t.Errorf("KVM/HIGH: DYNAMIC %.0f s vs best static %.0f s", dyn.CompletionSeconds, light.CompletionSeconds)
	}
	if dyn.CacheResidentGB != 0 {
		t.Error("KVM should leave nothing in a host cache")
	}
}

// TestFileChannelCompressionCuresXenCache: the extension's headline finding.
// On compressible data, compression keeps the wire rate below the disk's
// drain rate, so the XEN page cache never fills and the burst/stall
// oscillation disappears — adaptive compression inadvertently *solves* the
// problem that made the paper exclude file I/O.
func TestFileChannelCompressionCuresXenCache(t *testing.T) {
	m := a5Rows(t)
	no := m["XEN (Parav.)/HIGH/NO"]
	dyn := m["XEN (Parav.)/HIGH/DYNAMIC"]
	if no.CacheResidentGB == 0 {
		t.Error("uncompressed XEN writes should leave data in the host cache")
	}
	if dyn.CacheResidentGB != 0 {
		t.Errorf("DYNAMIC on XEN/HIGH left %.1f GB in cache; compression should keep wire below disk rate",
			dyn.CacheResidentGB)
	}
	if dyn.CompletionSeconds > no.CompletionSeconds {
		t.Errorf("DYNAMIC (%.0f s) should beat NO (%.0f s) on compressible file writes",
			dyn.CompletionSeconds, no.CompletionSeconds)
	}
}

// TestFileChannelXenDistortsDecisionsOnLowData: on incompressible data no
// level can drop the wire rate below the disk rate, so the decider keeps
// seeing phantom burst/stall rates and probes far more than on the
// undistorted KVM platform.
func TestFileChannelXenDistortsDecisionsOnLowData(t *testing.T) {
	m := a5Rows(t)
	xen := m["XEN (Parav.)/LOW/DYNAMIC"]
	kvm := m["KVM (Parav.)/LOW/DYNAMIC"]
	if xen.LevelSwitches < kvm.LevelSwitches*2 {
		t.Errorf("XEN cache should inflate probing: %d switches vs KVM's %d",
			xen.LevelSwitches, kvm.LevelSwitches)
	}
	// And the VM-visible completion time is a lie: data remains in the
	// host cache at "completion".
	if xen.CacheResidentGB <= 0 {
		t.Error("XEN/LOW run should end with unflushed cache")
	}
}

func TestRunFileTransferValidation(t *testing.T) {
	base := cloudsim.TransferConfig{
		Platform:   cloudsim.XenParavirt,
		Kind:       cloudsim.ConstantKind(corpus.High),
		TotalBytes: 1e9,
		Scheme:     cloudsim.StaticScheme(0),
		Profiles:   cloudsim.ReferenceProfiles(),
	}
	bad := base
	bad.TotalBytes = 0
	if _, err := cloudsim.RunFileTransfer(bad); err == nil {
		t.Error("zero volume accepted")
	}
	bad = base
	bad.Scheme = nil
	if _, err := cloudsim.RunFileTransfer(bad); err == nil {
		t.Error("nil scheme accepted")
	}
	bad = base
	bad.Platform = cloudsim.Platform(77)
	if _, err := cloudsim.RunFileTransfer(bad); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := cloudsim.RunFileTransfer(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
