package experiments

import (
	"fmt"
	"sort"
	"strings"

	"adaptio/internal/benchfmt"
	"adaptio/internal/cloudsim"
	"adaptio/internal/core"
	"adaptio/internal/corpus"
	"adaptio/internal/stats"
)

// DeciderCell is one (policy, kind, background) cell of the decider matrix:
// the Table II transfer repeated under a specific level-selection policy,
// with the policy's probe economics summed over the cell's runs.
type DeciderCell struct {
	MeanSeconds float64 `json:"mean_seconds"`
	SDSeconds   float64 `json:"sd_seconds"`
	MBPerS      float64 `json:"mb_per_s"`
	// Probes and WastedProbes are totals over the cell's runs.
	Probes       int `json:"probes"`
	WastedProbes int `json:"wasted_probes"`
}

// DeciderMatrixResult is the full policy comparison grid:
// [policy][kind][background] over the Table II workload matrix.
type DeciderMatrixResult struct {
	Policies    []string
	Kinds       []corpus.Kind
	Backgrounds []int
	Runs        int
	TotalBytes  int64
	Cells       map[string]map[corpus.Kind]map[int]DeciderCell
}

// DeciderMatrixConfig parameterizes the sweep. The zero value gives the CI
// configuration: every registered policy plus the CheatStick sentinel, the
// full Table II workload grid at 2 GB per transfer, 3 runs per cell.
type DeciderMatrixConfig struct {
	// Policies to sweep; nil means core.PolicyNames() + the sentinel.
	Policies []string
	// TotalBytes per transfer; zero means 2 GB (the matrix is a policy
	// comparison, not a faithful Table II reproduction — smaller volumes
	// keep the full grid inside CI seconds).
	TotalBytes int64
	// Runs per cell; zero means 3.
	Runs int
	// Backgrounds lists concurrent-connection counts; nil means 0..3.
	Backgrounds []int
	Platform    cloudsim.Platform
	Seed        uint64
}

// DeciderMatrix runs the Table II workload grid once per policy. All
// decisions are seeded and deterministic: the same config produces the same
// result, cell for cell, which is what lets CI gate on it.
func DeciderMatrix(cfg DeciderMatrixConfig) (DeciderMatrixResult, error) {
	if cfg.Policies == nil {
		cfg.Policies = append(core.PolicyNames(), core.PolicyCheatStick)
	}
	if cfg.TotalBytes == 0 {
		cfg.TotalBytes = 2e9
	}
	if cfg.Runs == 0 {
		cfg.Runs = 3
	}
	if cfg.Backgrounds == nil {
		cfg.Backgrounds = []int{0, 1, 2, 3}
	}
	res := DeciderMatrixResult{
		Policies:    cfg.Policies,
		Kinds:       corpus.Kinds(),
		Backgrounds: cfg.Backgrounds,
		Runs:        cfg.Runs,
		TotalBytes:  cfg.TotalBytes,
		Cells:       map[string]map[corpus.Kind]map[int]DeciderCell{},
	}
	profiles := cloudsim.ReferenceProfiles()
	for pi, policy := range cfg.Policies {
		if !core.ValidPolicy(policy) {
			return res, fmt.Errorf("experiments: unknown decider policy %q", policy)
		}
		res.Cells[policy] = map[corpus.Kind]map[int]DeciderCell{}
		for _, kind := range res.Kinds {
			res.Cells[policy][kind] = map[int]DeciderCell{}
			for _, bg := range cfg.Backgrounds {
				var cell DeciderCell
				times := make([]float64, cfg.Runs)
				for run := 0; run < cfg.Runs; run++ {
					// The workload seed is policy-independent (every
					// policy faces the identical environment draw);
					// the policy seed folds in the policy index so
					// stochastic policies explore independently.
					wseed := cfg.Seed ^ uint64(kind)<<40 ^ uint64(bg)<<32 ^ uint64(run)<<16
					d := core.MustNewPolicy(policy, core.PolicyConfig{
						Levels: len(profiles),
						Seed:   wseed ^ uint64(pi+1)<<8,
					})
					r, err := cloudsim.RunTransfer(cloudsim.TransferConfig{
						Platform:   cfg.Platform,
						Kind:       cloudsim.ConstantKind(kind),
						TotalBytes: cfg.TotalBytes,
						Background: bg,
						Scheme:     d,
						Profiles:   profiles,
						Seed:       wseed,
					})
					if err != nil {
						return res, err
					}
					times[run] = r.CompletionSeconds
					ps := d.PolicyStats()
					cell.Probes += ps.Probes
					cell.WastedProbes += ps.WastedProbes
				}
				cell.MeanSeconds, cell.SDSeconds = stats.MeanStdDev(times)
				if cell.MeanSeconds > 0 {
					cell.MBPerS = float64(cfg.TotalBytes) / 1e6 / cell.MeanSeconds
				}
				res.Cells[policy][kind][bg] = cell
			}
		}
	}
	return res, nil
}

// Totals sums one policy's probe economics over the whole grid.
func (r DeciderMatrixResult) Totals(policy string) (probes, wasted int) {
	for _, byKind := range r.Cells[policy] {
		for _, cell := range byKind {
			probes += cell.Probes
			wasted += cell.WastedProbes
		}
	}
	return probes, wasted
}

// BoundViolation describes one failed axis of the acceptance bound.
type BoundViolation struct {
	Policy string
	Axis   string // "throughput" or "wasted-probes"
	Detail string
}

// DefaultThroughputTolerance is how much slower (fractional mean completion
// time) a learned policy may be than AlgorithmOne in any single cell and
// still count as "within". Calibrated against the committed matrix: the
// learned policies sit within ±2% of AlgorithmOne cell-for-cell, so 8%
// leaves headroom for profile recalibration without admitting a policy that
// actually trades throughput for probe savings.
const DefaultThroughputTolerance = 0.08

// CheckBound evaluates the two-axis acceptance bound of docs/deciders.md
// for one policy against the baseline (conventionally
// core.PolicyAlgorithmOne) inside the same matrix:
//
//   - throughput: in every cell, the policy's mean completion time is
//     within tol of the baseline's (within-or-better);
//   - probe economy: summed over the grid, the policy wastes strictly
//     fewer probes than the baseline (equal allowed only when the baseline
//     wastes none).
//
// Both axes must hold; the returned violations list every failure. The
// CheatStick sentinel exists to fail the first axis — see the matrix tests.
func (r DeciderMatrixResult) CheckBound(policy, baseline string, tol float64) []BoundViolation {
	var v []BoundViolation
	base, ok := r.Cells[baseline]
	if !ok {
		return []BoundViolation{{Policy: policy, Axis: "throughput", Detail: fmt.Sprintf("baseline %q not in matrix", baseline)}}
	}
	cand, ok := r.Cells[policy]
	if !ok {
		return []BoundViolation{{Policy: policy, Axis: "throughput", Detail: fmt.Sprintf("policy %q not in matrix", policy)}}
	}
	for _, kind := range r.Kinds {
		for _, bg := range r.Backgrounds {
			b, c := base[kind][bg], cand[kind][bg]
			if c.MeanSeconds > b.MeanSeconds*(1+tol) {
				v = append(v, BoundViolation{
					Policy: policy,
					Axis:   "throughput",
					Detail: fmt.Sprintf("%s/bg=%d: %.1fs vs baseline %.1fs (>%.0f%% slower)",
						kind, bg, c.MeanSeconds, b.MeanSeconds, tol*100),
				})
			}
		}
	}
	bp, bw := r.Totals(baseline)
	_, cw := r.Totals(policy)
	switch {
	case bw == 0 && cw > 0:
		v = append(v, BoundViolation{
			Policy: policy,
			Axis:   "wasted-probes",
			Detail: fmt.Sprintf("wasted %d probes, baseline wasted none", cw),
		})
	case bw > 0 && cw >= bw:
		v = append(v, BoundViolation{
			Policy: policy,
			Axis:   "wasted-probes",
			Detail: fmt.Sprintf("wasted %d probes vs baseline %d (must be strictly lower; baseline probed %d)", cw, bw, bp),
		})
	}
	return v
}

// Render formats the matrix: one block per policy with per-cell completion
// times, then a probe-economy summary comparing every policy against the
// paper baseline.
func (r DeciderMatrixResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- Decider matrix: mean completion seconds (SD), %d runs, %.1f GB ---\n",
		r.Runs, float64(r.TotalBytes)/1e9)
	for _, policy := range r.Policies {
		fmt.Fprintf(&sb, "%s:\n", policy)
		fmt.Fprintf(&sb, "  %-9s", "bg")
		for _, k := range r.Kinds {
			fmt.Fprintf(&sb, " %16s", k)
		}
		sb.WriteString("\n")
		for _, bg := range r.Backgrounds {
			fmt.Fprintf(&sb, "  %-9d", bg)
			for _, k := range r.Kinds {
				c := r.Cells[policy][k][bg]
				fmt.Fprintf(&sb, " %9.0f (%3.0f) ", c.MeanSeconds, c.SDSeconds)
			}
			sb.WriteString("\n")
		}
	}
	fmt.Fprintf(&sb, "probe economy (grid totals):\n")
	fmt.Fprintf(&sb, "  %-12s %8s %8s\n", "policy", "probes", "wasted")
	for _, policy := range r.Policies {
		p, w := r.Totals(policy)
		fmt.Fprintf(&sb, "  %-12s %8d %8d\n", policy, p, w)
	}
	return sb.String()
}

// ToBenchFile renders the matrix as a benchfmt artifact under the given set
// name: one benchmark entry per (policy, kind, background) cell named
// "Decider/<policy>/<kind>/bg<N>", plus a "Decider/<policy>/totals" entry
// carrying the grid-total probe economics — the document cmd/benchdiff's
// decider mode diffs against the committed BENCH_decider.json baseline.
func (r DeciderMatrixResult) ToBenchFile(description, set string) *benchfmt.File {
	f := &benchfmt.File{Description: description}
	policies := append([]string(nil), r.Policies...)
	sort.Strings(policies)
	for _, policy := range policies {
		for _, kind := range r.Kinds {
			for _, bg := range r.Backgrounds {
				c := r.Cells[policy][kind][bg]
				f.Add(fmt.Sprintf("Decider/%s/%s/bg%d", policy, kind, bg), set, benchfmt.Measurement{
					MBPerS:       c.MBPerS,
					Probes:       int64(c.Probes),
					WastedProbes: int64(c.WastedProbes),
				})
			}
		}
		p, w := r.Totals(policy)
		f.Add(fmt.Sprintf("Decider/%s/totals", policy), set, benchfmt.Measurement{
			Probes:       int64(p),
			WastedProbes: int64(w),
		})
	}
	return f
}
