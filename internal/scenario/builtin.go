package scenario

import (
	"sort"
	"time"
)

// secs builds a Duration from seconds for the built-in definitions.
func secs(s float64) Duration { return Duration(time.Duration(s * float64(time.Second))) }

// builtins returns the built-in scenario catalog, freshly constructed so
// callers can mutate their copy. Each one exists to pin a qualitative claim
// from the paper's world view under a workload class the paper never ran
// (see claims.go for the claims and docs/scenarios.md for the catalog):
//
//	diurnal            sinusoidal request load over a heterogeneous fleet
//	heavytail          bursty, heavy-tailed compressibility mix
//	lossy              a WAN-ish link that degrades to 2% packet loss
//	flaps              a NIC whose capacity square-waves (tc-like flapping)
//	hetfleet           weighted tenants on skewed-CPU hosts
//	diurnal-lossy-1000 the nightly scale scenario: a 1000-VM fleet through
//	                   a simulated 3-hour diurnal cycle with an evening
//	                   loss episode, finishing in CI minutes
func builtins() []*Scenario {
	return []*Scenario{
		{
			Name:          "diurnal",
			Description:   "48 request-driven VMs through two 30-min diurnal load cycles on a shared 400 MB/s NIC; adaptive compression must win the troughs (slow hosts cannot afford HEAVY) without flapping through the peaks.",
			Windows:       1800, // 1 h simulated at the paper's 2 s windows
			WindowSeconds: 2,
			NICMBps:       400,
			NICSigma:      0.05,
			CPUSigma:      0.02,
			Fleet: []Group{{
				Name:  "web",
				Count: 48,
				CPU:   &Span{Min: 0.35, Max: 1.0},
			}},
			Demand: &Curve{
				Kind:      "diurnal",
				Value:     12,  // midline MB/s per stream
				Amplitude: 0.6, // trough 4.8, peak 19.2
				Period:    secs(1800),
				Phase:     0.75, // start at the trough
			},
		},
		{
			Name:          "heavytail",
			Description:   "64 VMs with a heavy-tailed compressibility mix (mostly fax-like HIGH with entropy outliers) and hash-scheduled demand bursts on the paper's 111 MB/s NIC; adaptive must track the best static choice.",
			Windows:       600, // 20 min simulated
			WindowSeconds: 2,
			NICMBps:       111,
			NICSigma:      0.05,
			CPUSigma:      0.03,
			MixChunkMB:    16,
			Fleet: []Group{{
				Name:  "batch",
				Count: 64,
				CPU:   &Span{Min: 0.5, Max: 1.0},
				Mix:   "high=8,moderate=3,low=1",
			}},
			Demand: &Curve{
				Kind:  "burst",
				Value: 2,  // baseline MB/s per stream
				High:  30, // burst level
				Every: secs(120),
				Width: secs(20),
				Prob:  0.35,
			},
		},
		{
			Name:          "lossy",
			Description:   "32 saturating senders on the paper's NIC; at t=120 s the shared link degrades to 2% packet loss at 15 ms RTT. Loss-limited TCP throughput is inversely proportional to effective RTT, and HEAVY's per-block compression latency dominates it, so LIGHT overtakes HEAVY.",
			Windows:       300, // 10 min simulated
			WindowSeconds: 2,
			NICMBps:       111,
			NICSigma:      0.03,
			CPUSigma:      0.02,
			Fleet: []Group{{
				Name: "replicas",
				// Healthy hosts: with full-speed CPUs, HEAVY's ratio
				// advantage wins the quiet contended NIC, which is what
				// makes the loss-induced LIGHT overtake a real crossover.
				Count: 32,
				CPU:   &Span{Min: 0.9, Max: 1.1},
			}},
			Link: &Link{
				Loss:  &Curve{Kind: "step", Value: 0, To: 0.02, At: secs(120)},
				RTTms: &Curve{Kind: "constant", Value: 15},
			},
		},
		{
			Name:          "flaps",
			Description:   "48 saturating senders on a NIC whose capacity square-waves between 100% and 35% every 80 s (a flapping uplink); solo deciders chase every edge while the coordinator's hysteresis dwell bounds per-stream switches.",
			Windows:       480, // 16 min simulated
			WindowSeconds: 2,
			NICMBps:       111,
			NICSigma:      0.04,
			CPUSigma:      0.02,
			Fleet: []Group{{
				Name:  "sync",
				Count: 48,
				CPU:   &Span{Min: 0.4, Max: 1.0},
			}},
			Link: &Link{
				Flap: &Curve{Kind: "square", High: 1.0, Low: 0.35, Period: secs(80), Duty: 0.5},
			},
		},
		{
			Name:          "hetfleet",
			Description:   "A weighted two-tenant fleet on skewed-CPU hosts: 10 gold VMs at weight 3 against 50 silver VMs at weight 1, all saturating. Weighted fairness must hold end to end: gold per-stream goodput stays a multiple of silver's.",
			Windows:       240, // 8 min simulated
			WindowSeconds: 2,
			NICMBps:       111,
			NICSigma:      0.05,
			CPUSigma:      0.03,
			Fleet: []Group{
				{
					Name:   "gold",
					Tenant: "gold",
					Count:  10,
					Weight: 3,
					CPU:    &Span{Min: 0.9, Max: 1.1},
				},
				{
					Name:   "silver",
					Tenant: "silver",
					Count:  50,
					Weight: 1,
					CPU:    &Span{Min: 0.3, Max: 1.0},
				},
			},
		},
		{
			Name:          "diurnal-lossy-1000",
			Description:   "The nightly scale gate: 1000 VMs in four tenant tiers through a 3-hour diurnal cycle on a 2 GB/s aggregation link, with an evening episode of 1% packet loss. Must finish orders of magnitude faster than real time.",
			Windows:       5400, // 3 h simulated
			WindowSeconds: 2,
			NICMBps:       2000,
			NICSigma:      0.05,
			CPUSigma:      0.03,
			Fleet: []Group{
				{Name: "gold", Tenant: "gold", Count: 100, Weight: 2, CPU: &Span{Min: 0.8, Max: 1.2}, Mix: "moderate=3,high=1"},
				{Name: "web", Tenant: "web", Count: 400, Weight: 1, CPU: &Span{Min: 0.35, Max: 1.0}},
				{Name: "batch", Tenant: "batch", Count: 300, Weight: 1, CPU: &Span{Min: 0.5, Max: 1.0}, Mix: "high=4,moderate=2,low=1"},
				{Name: "logs", Tenant: "logs", Count: 200, Weight: 1, CPU: &Span{Min: 0.4, Max: 0.9}, Mix: "moderate=4,low=1"},
			},
			Demand: &Curve{
				Kind:      "diurnal",
				Value:     6,
				Amplitude: 0.6, // trough 2.4, peak 9.6 MB/s per stream
				Period:    secs(10800),
				Phase:     0.75,
			},
			Link: &Link{
				// The "evening" loss episode: 1% loss for the middle hour.
				Loss: &Curve{Kind: "square", High: 0.01, Low: 0, Period: secs(10800), Duty: 0.34, Phase: 0.33},
				RTTms: &Curve{
					Kind: "constant", Value: 10,
				},
			},
		},
	}
}

// Builtins returns fresh copies of all built-in scenarios in catalog order.
func Builtins() []*Scenario { return builtins() }

// BuiltinNames returns the built-in scenario names, sorted.
func BuiltinNames() []string {
	bs := builtins()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	sort.Strings(names)
	return names
}

// Lookup returns a fresh copy of the named built-in, or nil.
func Lookup(name string) *Scenario {
	for _, b := range builtins() {
		if b.Name == name {
			return b
		}
	}
	return nil
}
