package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestParseExampleScenarios keeps every committed example scenario parseable:
// the files double as fuzz seeds and documentation, so a DSL change that
// orphans one must fail loudly.
func TestParseExampleScenarios(t *testing.T) {
	paths, err := filepath.Glob("testdata/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example scenarios under testdata/scenarios")
	}
	for _, p := range paths {
		sc, err := Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if sc.Name == "" {
			t.Errorf("%s: parsed scenario has no name", p)
		}
	}
}

func TestParseStrictness(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown field", `{"name":"x","windows":10,"fleet":[{"count":1}],"bogus":1}`},
		{"trailing document", `{"name":"x","windows":10,"fleet":[{"count":1}]}{}`},
		{"trailing garbage", `{"name":"x","windows":10,"fleet":[{"count":1}]} junk`},
		{"not an object", `[1,2,3]`},
		{"truncated", `{"name":"x"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.in)); err == nil {
				t.Fatalf("Parse accepted %s", tc.in)
			}
		})
	}
}

func TestParseRejectsOversizedDocument(t *testing.T) {
	big := append([]byte(`{"name":"x"`), bytes.Repeat([]byte(" "), maxScenarioBytes)...)
	_, err := Parse(big)
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("oversized document: got %v, want ErrInvalid", err)
	}
}

// TestParseTypedErrors asserts the contract the fuzz target relies on:
// malformed scenarios produce *FieldError values wrapping ErrInvalid that
// name the offending field — never panics, never unwrapped fmt errors.
func TestParseTypedErrors(t *testing.T) {
	valid := func(extra string) string {
		return `{"name":"x","windows":10,"fleet":[{"count":1}]` + extra + `}`
	}
	cases := []struct {
		name  string
		in    string
		field string
	}{
		{"negative duration", valid(`,"demand":{"kind":"burst","value":1,"high":2,"every":-3,"width":1,"prob":0.5}`), "duration"},
		{"bad duration string", valid(`,"demand":{"kind":"step","value":1,"to":2,"at":"soon"}`), "duration"},
		{"absurd duration", valid(`,"demand":{"kind":"step","value":1,"to":2,"at":"2000h"}`), "duration"},
		{"negative windows", `{"name":"x","windows":-1,"fleet":[{"count":1}]}`, "windows"},
		{"too many windows", `{"name":"x","windows":300000,"fleet":[{"count":1}]}`, "windows"},
		{"missing name", `{"windows":10,"fleet":[{"count":1}]}`, "name"},
		{"missing fleet", `{"name":"x","windows":10}`, "fleet"},
		{"zero count", `{"name":"x","windows":10,"fleet":[{"count":0}]}`, "fleet[0].count"},
		{"negative weight", `{"name":"x","windows":10,"fleet":[{"count":1,"weight":-2}]}`, "fleet[0].weight"},
		{"inverted cpu span", `{"name":"x","windows":10,"fleet":[{"count":1,"cpu":{"min":2,"max":1}}]}`, "fleet[0].cpu"},
		{"zero cpu min", `{"name":"x","windows":10,"fleet":[{"count":1,"cpu":{"min":0,"max":1}}]}`, "fleet[0].cpu"},
		{"bad mix", `{"name":"x","windows":10,"fleet":[{"count":1,"mix":"plutonium"}]}`, "fleet[0].mix"},
		{"loss above ceiling", valid(`,"link":{"loss":{"kind":"constant","value":0.6}}`), "link.loss.value"},
		{"unknown curve kind", valid(`,"demand":{"kind":"wavelet"}`), "demand.kind"},
		{"square duty zero", valid(`,"demand":{"kind":"square","high":1,"low":0,"period":10,"duty":0}`), "demand.duty"},
		{"burst width over slot", valid(`,"demand":{"kind":"burst","value":1,"high":2,"every":5,"width":9,"prob":0.5}`), "demand.width"},
		{"too many streams", `{"name":"x","windows":10,"fleet":[{"count":50000}]}`, "fleet"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.in)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error does not wrap ErrInvalid: %v", err)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a *FieldError: %v", err)
			}
			if fe.Field != tc.field {
				t.Fatalf("FieldError.Field = %q, want %q (err: %v)", fe.Field, tc.field, err)
			}
		})
	}
}

// TestValidateStructLiteralNaN covers the path JSON cannot reach: NaN and Inf
// injected through Go struct literals must still be rejected.
func TestValidateStructLiteralNaN(t *testing.T) {
	sc := &Scenario{Name: "x", Windows: 10, Fleet: []Group{{Count: 1}}}

	sc.WindowSeconds = math.NaN()
	if err := sc.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN window_seconds: got %v, want ErrInvalid", err)
	}
	sc.WindowSeconds = 0

	sc.NICMBps = math.Inf(1)
	if err := sc.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("Inf nic_mbps: got %v, want ErrInvalid", err)
	}
	sc.NICMBps = 0

	sc.Demand = &Curve{Kind: "constant", Value: math.NaN()}
	if err := sc.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("NaN curve value: got %v, want ErrInvalid", err)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90s"`), &d); err != nil || d.Seconds() != 90 {
		t.Fatalf(`"90s" -> (%v, %v), want 90 s`, d.Seconds(), err)
	}
	if err := json.Unmarshal([]byte(`1.5`), &d); err != nil || d.Seconds() != 1.5 {
		t.Fatalf(`1.5 -> (%v, %v), want 1.5 s`, d.Seconds(), err)
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var back Duration
	if err := json.Unmarshal(out, &back); err != nil || back.Seconds() != 90 {
		t.Fatalf("marshal round trip %s -> (%v, %v)", out, back.Seconds(), err)
	}
	for _, bad := range []string{`-1`, `"-5s"`, `"forever"`, `""`, `"2000h"`} {
		var d Duration
		err := json.Unmarshal([]byte(bad), &d)
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("duration %s: got %v, want ErrInvalid", bad, err)
		}
	}
}

func TestResolve(t *testing.T) {
	sc, builtin, err := Resolve("diurnal")
	if err != nil || !builtin || sc.Name != "diurnal" {
		t.Fatalf("Resolve(diurnal) = (%v, %v, %v)", sc, builtin, err)
	}

	sc, builtin, err = Resolve("testdata/scenarios/mini.json")
	if err != nil || builtin || sc.Name != "mini" {
		t.Fatalf("Resolve(file) = (%v, %v, %v)", sc, builtin, err)
	}

	_, _, err = Resolve("no-such-scenario")
	if err == nil || !strings.Contains(err.Error(), "diurnal") {
		t.Fatalf("Resolve(no-such-scenario) should list built-ins, got: %v", err)
	}
	if _, _, err = Resolve(""); err == nil {
		t.Fatal("Resolve of empty name succeeded")
	}
}

// TestBuiltinsValidate keeps the shipped catalog self-consistent: every
// built-in must pass its own DSL validation and carry registered claims.
func TestBuiltinsValidate(t *testing.T) {
	bs := Builtins()
	if len(bs) < 5 {
		t.Fatalf("built-in catalog has %d scenarios, want >= 5", len(bs))
	}
	for _, sc := range bs {
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in %s: %v", sc.Name, err)
		}
		if len(ClaimsFor(sc.Name)) == 0 {
			t.Errorf("built-in %s has no registered claims", sc.Name)
		}
	}
}
