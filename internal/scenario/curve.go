package scenario

import (
	"math"
	"strconv"
)

// Curve is a time-varying scalar: the DSL's building block for load shapes,
// capacity flaps, loss schedules and latency ramps. Evaluation is a pure
// O(1) function of time — no precomputed event lists, no internal state —
// so a hostile scenario file cannot make a curve allocate, and two workers
// evaluating the same curve at the same instant always agree.
//
// Kinds and their fields:
//
//	constant  value
//	diurnal   value (midline), amplitude (relative, [0,1]), period, phase
//	step      value (before), to (after), at
//	ramp      value (start level), to (end level), at (ramp start), over
//	square    high, low, period, duty (high fraction, (0,1)), phase
//	burst     value (baseline), high (burst level), every (slot length),
//	          width (burst length ≤ every), prob (per-slot burst
//	          probability), seed (hash salt; 0 = scenario seed)
//	product   factors (≤ MaxCurveFactors curves, multiplied pointwise)
//
// diurnal evaluates value·(1 + amplitude·sin(2π(t/period + phase))); burst
// decides per slot k = ⌊t/every⌋ from a hash of (seed, k) whether the first
// width seconds of that slot run at high — Poisson-like arrivals without an
// event queue.
type Curve struct {
	Kind string `json:"kind"`

	Value     float64  `json:"value,omitempty"`
	Amplitude float64  `json:"amplitude,omitempty"`
	Period    Duration `json:"period,omitempty"`
	Phase     float64  `json:"phase,omitempty"`

	At Duration `json:"at,omitempty"`
	To float64  `json:"to,omitempty"`

	Over Duration `json:"over,omitempty"`

	High float64 `json:"high,omitempty"`
	Low  float64 `json:"low,omitempty"`
	Duty float64 `json:"duty,omitempty"`

	Every Duration `json:"every,omitempty"`
	Width Duration `json:"width,omitempty"`
	Prob  float64  `json:"prob,omitempty"`
	Seed  uint64   `json:"seed,omitempty"`

	Factors []Curve `json:"factors,omitempty"`
}

// curveMode bounds the levels a curve may emit, by role.
type curveMode struct {
	role string
	max  float64
}

var (
	curveDemand     = curveMode{"demand (MB/s)", 1e9}
	curveMultiplier = curveMode{"multiplier", 1e3}
	curveLoss       = curveMode{"loss fraction", 0.5}
	curveRTT        = curveMode{"RTT (ms)", 60_000}
	curveSigma      = curveMode{"noise sigma", 2}
)

// validate checks the curve tree (nil is valid: "absent"). All level fields
// must be finite, non-negative and within the mode's ceiling; all durations
// non-negative (struct literals bypass Duration's decoder, so re-check);
// periodic kinds need a positive period.
func (c *Curve) validate(field string, mode curveMode) error {
	return c.validateDepth(field, mode, 0)
}

func (c *Curve) validateDepth(field string, mode curveMode, depth int) error {
	if c == nil {
		return nil
	}
	if depth > MaxCurveDepth {
		return fieldErrf(field, "curve nesting deeper than %d", MaxCurveDepth)
	}
	lvl := func(sub string, v float64) error {
		if badFloat(v) || v < 0 || v > mode.max {
			return fieldErrf(field+"."+sub, "%s must be in [0, %g], got %v", mode.role, mode.max, v)
		}
		return nil
	}
	dur := func(sub string, d Duration) error {
		if d < 0 || d > Duration(maxDuration) {
			return fieldErrf(field+"."+sub, "duration out of range: %v", d.Seconds())
		}
		return nil
	}
	for _, e := range []error{
		dur("period", c.Period), dur("at", c.At), dur("over", c.Over),
		dur("every", c.Every), dur("width", c.Width),
	} {
		if e != nil {
			return e
		}
	}
	switch c.Kind {
	case "constant":
		return lvl("value", c.Value)
	case "diurnal":
		if err := lvl("value", c.Value); err != nil {
			return err
		}
		if badFloat(c.Amplitude) || c.Amplitude < 0 || c.Amplitude > 1 {
			return fieldErrf(field+".amplitude", "must be in [0, 1], got %v", c.Amplitude)
		}
		if c.Period <= 0 {
			return fieldErrf(field+".period", "diurnal needs period > 0")
		}
		if badFloat(c.Phase) {
			return fieldErrf(field+".phase", "must be finite")
		}
		// Peak value*(1+amplitude) must respect the ceiling too.
		return lvl("value", c.Value*(1+c.Amplitude))
	case "step":
		if err := lvl("value", c.Value); err != nil {
			return err
		}
		return lvl("to", c.To)
	case "ramp":
		if err := lvl("value", c.Value); err != nil {
			return err
		}
		if c.Over <= 0 {
			return fieldErrf(field+".over", "ramp needs over > 0")
		}
		return lvl("to", c.To)
	case "square":
		if err := lvl("high", c.High); err != nil {
			return err
		}
		if err := lvl("low", c.Low); err != nil {
			return err
		}
		if c.Period <= 0 {
			return fieldErrf(field+".period", "square needs period > 0")
		}
		if badFloat(c.Duty) || c.Duty <= 0 || c.Duty >= 1 {
			return fieldErrf(field+".duty", "must be in (0, 1), got %v", c.Duty)
		}
		if badFloat(c.Phase) {
			return fieldErrf(field+".phase", "must be finite")
		}
		return nil
	case "burst":
		if err := lvl("value", c.Value); err != nil {
			return err
		}
		if err := lvl("high", c.High); err != nil {
			return err
		}
		if c.Every <= 0 {
			return fieldErrf(field+".every", "burst needs every > 0")
		}
		if c.Width <= 0 || c.Width > c.Every {
			return fieldErrf(field+".width", "burst needs 0 < width <= every")
		}
		if badFloat(c.Prob) || c.Prob < 0 || c.Prob > 1 {
			return fieldErrf(field+".prob", "must be in [0, 1], got %v", c.Prob)
		}
		return nil
	case "product":
		if len(c.Factors) == 0 {
			return fieldErrf(field+".factors", "product needs at least one factor")
		}
		if len(c.Factors) > MaxCurveFactors {
			return fieldErrf(field+".factors", "at most %d factors, got %d", MaxCurveFactors, len(c.Factors))
		}
		for i := range c.Factors {
			sub := field + ".factors[" + strconv.Itoa(i) + "]"
			if err := c.Factors[i].validateDepth(sub, mode, depth+1); err != nil {
				return err
			}
		}
		return nil
	default:
		return fieldErrf(field+".kind", "unknown curve kind %q", c.Kind)
	}
}

// eval returns the curve's level at simulated time t seconds. A validated
// curve never returns NaN/Inf/negative; an unvalidated one degrades to 0
// rather than panicking. seed substitutes for burst curves whose Seed is 0.
func (c *Curve) eval(t float64, seed uint64) float64 {
	if c == nil {
		return 0
	}
	switch c.Kind {
	case "constant":
		return c.Value
	case "diurnal":
		p := c.Period.Seconds()
		if p <= 0 {
			return c.Value
		}
		return c.Value * (1 + c.Amplitude*math.Sin(2*math.Pi*(t/p+c.Phase)))
	case "step":
		if t < c.At.Seconds() {
			return c.Value
		}
		return c.To
	case "ramp":
		start, over := c.At.Seconds(), c.Over.Seconds()
		if t <= start || over <= 0 {
			return c.Value
		}
		if t >= start+over {
			return c.To
		}
		return c.Value + (c.To-c.Value)*(t-start)/over
	case "square":
		p := c.Period.Seconds()
		if p <= 0 {
			return c.Low
		}
		pos := math.Mod(t/p+c.Phase, 1)
		if pos < 0 {
			pos++
		}
		if pos < c.Duty {
			return c.High
		}
		return c.Low
	case "burst":
		every := c.Every.Seconds()
		if every <= 0 {
			return c.Value
		}
		slot := math.Floor(t / every)
		if slot < 0 || slot > 1e15 {
			return c.Value
		}
		s := c.Seed
		if s == 0 {
			s = seed
		}
		if burstHash(s, uint64(slot)) < c.Prob && t-slot*every < c.Width.Seconds() {
			return c.High
		}
		return c.Value
	case "product":
		v := 1.0
		for i := range c.Factors {
			v *= c.Factors[i].eval(t, seed)
		}
		return v
	default:
		return 0
	}
}

// burstHash maps (seed, slot) to a uniform float64 in [0, 1) via a
// splitmix64 finalizer — the stateless coin each burst slot flips.
func burstHash(seed, slot uint64) float64 {
	x := seed ^ (slot+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// fn compiles the curve into a closure suitable for cloudsim's FleetEnv
// hooks; nil curves compile to nil so the simulator skips the hook.
func (c *Curve) fn(seed uint64) func(float64) float64 {
	if c == nil {
		return nil
	}
	return func(t float64) float64 { return c.eval(t, seed) }
}

// scaled compiles the curve with a multiplicative post-scale (unit
// conversions such as ms → s).
func (c *Curve) scaled(seed uint64, k float64) func(float64) float64 {
	if c == nil {
		return nil
	}
	return func(t float64) float64 { return c.eval(t, seed) * k }
}
