package scenario

import (
	"testing"

	"adaptio/internal/core"
)

// The scenario half of the decider acceptance bound: across the six built-in
// scenarios, each learned policy must stay within-or-better on the adaptive
// variant's converged goodput per scenario AND waste strictly fewer probes
// than AlgorithmOne in aggregate — and keep every builtin's claims passing.
// (Per-scenario waste is allowed to tie: a single builtin can be a wash, the
// aggregate cannot.) The CheatStick sentinel proves the goodput axis bites.

// deciderGoodputTolerance is how far below AlgorithmOne's goodput a learned
// policy may land on any single builtin. Measured slack: the learned
// policies sit within 3% per scenario; 5% leaves room for curve retuning
// without admitting a policy that buys probe savings with throughput.
const deciderGoodputTolerance = 0.05

// runAdaptive runs one builtin under the given policy and returns the
// adaptive variant plus the overall claim outcome.
func runAdaptive(t *testing.T, name, policy string) (*VariantResult, bool) {
	t.Helper()
	sc := Lookup(name)
	if sc == nil {
		t.Fatalf("unknown builtin %q", name)
	}
	if policy != core.PolicyAlgorithmOne {
		sc.Decider = policy
	}
	res, err := Run(sc, Options{Parallel: 6})
	if err != nil {
		t.Fatalf("%s under %s: %v", name, policy, err)
	}
	v := res.Variant("adaptive")
	if v == nil {
		t.Fatalf("%s under %s: no adaptive variant", name, policy)
	}
	return v, res.ClaimsPass()
}

func builtinNames(t *testing.T) []string {
	var names []string
	for _, sc := range Builtins() {
		if testing.Short() && sc.Name == "diurnal-lossy-1000" {
			continue // nightly-scale scenario, skipped under -short
		}
		names = append(names, sc.Name)
	}
	return names
}

func TestBuiltinsDeciderBound(t *testing.T) {
	names := builtinNames(t)
	base := make(map[string]*VariantResult, len(names))
	baseWasted := 0
	for _, name := range names {
		v, _ := runAdaptive(t, name, core.PolicyAlgorithmOne)
		base[name] = v
		baseWasted += v.WastedProbes
	}
	if baseWasted == 0 {
		t.Fatal("AlgorithmOne wasted no probes across the builtins — the probe-economy axis is vacuous")
	}
	for _, policy := range []string{core.PolicyBandit, core.PolicyEWMA} {
		t.Run(policy, func(t *testing.T) {
			wasted := 0
			for _, name := range names {
				v, claimsPass := runAdaptive(t, name, policy)
				if !claimsPass {
					t.Errorf("%s: builtin claims fail under %s", name, policy)
				}
				if floor := base[name].GoodputMBps * (1 - deciderGoodputTolerance); v.GoodputMBps < floor {
					t.Errorf("%s: goodput %.2f MB/s below %.2f (AlgorithmOne %.2f minus %.0f%%)",
						name, v.GoodputMBps, floor, base[name].GoodputMBps, deciderGoodputTolerance*100)
				}
				wasted += v.WastedProbes
			}
			if wasted >= baseWasted {
				t.Errorf("aggregate wasted probes %d not strictly below AlgorithmOne's %d", wasted, baseWasted)
			}
		})
	}
}

// TestCheatStickFailsScenarioBound is the sentinel leg: the never-probe
// policy has perfect probe economy and must be rejected by the goodput axis
// on every builtin. A hetfleet run suffices — it is the cheapest builtin
// where every corpus kind rewards some compression.
func TestCheatStickFailsScenarioBound(t *testing.T) {
	base, _ := runAdaptive(t, "hetfleet", core.PolicyAlgorithmOne)
	cheat, _ := runAdaptive(t, "hetfleet", core.PolicyCheatStick)
	if cheat.WastedProbes != 0 || cheat.Probes != 0 {
		t.Fatalf("CheatStick probed (%d probes, %d wasted); the sentinel must never probe",
			cheat.Probes, cheat.WastedProbes)
	}
	if floor := base.GoodputMBps * (1 - deciderGoodputTolerance); cheat.GoodputMBps >= floor {
		t.Fatalf("CheatStick goodput %.2f MB/s is within %.0f%% of AlgorithmOne's %.2f — the goodput axis has no teeth",
			cheat.GoodputMBps, deciderGoodputTolerance*100, base.GoodputMBps)
	}
}

// TestScenarioDeciderField pins the DSL wiring: an unknown policy is a typed
// validation error, and a valid one lands in the artifact header.
func TestScenarioDeciderField(t *testing.T) {
	sc := Lookup("hetfleet")
	sc.Decider = "nonsense"
	if err := sc.Validate(); err == nil {
		t.Fatal("unknown decider name validated")
	}
	sc.Decider = core.PolicyEWMA
	sc.Windows = 40
	res, err := Run(sc, Options{Parallel: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Decider != core.PolicyEWMA {
		t.Fatalf("result decider = %q, want %q", res.Decider, core.PolicyEWMA)
	}
}
